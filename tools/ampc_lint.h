// ampc_lint — repo-invariant static analysis for the AMPC codebase.
//
// The repository's headline contract is that every simulated cost and
// every algorithm output is a pure function of (input, seed, config):
// the determinism matrix (tests/sharding_determinism_test.cc) and every
// BENCH_*.json gate bit-identical outputs across machines x threads x
// faults. Those invariants were enforced only dynamically — a stray
// rand() or an uncharged ShardedStore access in src/core/ silently
// corrupts the cost model until a bench happens to notice. ampc_lint
// enforces them statically, at build time, on every PR.
//
// The tool is a self-contained tokenizing scanner (no libclang): it
// strips comments/strings/preprocessor noise, builds the #include graph
// of the tree, and walks the token stream of every file under src/,
// tools/, bench/, and tests/ checking the rules below. Diagnostics are
// clang-style `file:line: error[rule-id]: message` plus a JSON report.
//
// Rules (see Rules() for the one-line summaries):
//
//   determinism —
//     det-rand            banned nondeterminism primitives: rand(),
//                         srand(), std::random_device, std::mt19937,
//                         time(), clock(), gettimeofday(). All
//                         randomness must flow through common/random.h
//                         (seeded Mix64/Hash64/Rng).
//     det-wallclock       std::chrono (and the *_clock types) outside
//                         common/timer.h and bench/ wall-clock call
//                         sites. Simulated time must come from the cost
//                         model, never the host clock.
//     det-unordered-iter  range-iteration over std::unordered_map/set
//                         in output-affecting paths (src/core/,
//                         src/graph/, src/baselines/, and headers
//                         reachable only from them): hash-table order
//                         is libstdc++-version- and seed-dependent.
//     det-ptr-key         std::map/std::set keyed by a pointer type:
//                         iteration order follows the allocator.
//
//   cost-model purity (output-affecting paths only) —
//     core-store-direct   calling ShardedStore/kv::Store data methods
//                         (Lookup/Put/Contains/RecordBytes) directly
//                         instead of going through the charged
//                         MachineContext entrypoints (Lookup,
//                         LookupMany, LookupManyAsync, PullMany) or the
//                         Cluster phase runners.
//     core-make-store     constructing kv::Placement / ShardMap /
//                         ShardedStore directly instead of minting
//                         stores via Cluster::MakeStore, which is the
//                         only path that attaches caches, replicas and
//                         the shared shard map.
//
//   conventions —
//     metric-zero-guard   a Metrics::Add of a non-grandfathered counter
//                         outside any conditional: new (event/feature)
//                         counters must be zero-rate-guarded so a
//                         zero-rate config's metric output is
//                         byte-identical to a build without the feature
//                         (the PR 9 convention).
//     config-off-doc      a ClusterConfig knob whose doc comment does
//                         not document its off-state (bit-identical /
//                         disables / historical baseline wording).
//     config-dump         a ClusterConfig knob missing from the
//                         `ampc_cli --lint-config` dump — keeps the
//                         mechanically checkable knob inventory in sync
//                         with the struct.
//     bench-gate          a bench/micro_*.cc without a failing gate
//                         (`return 1` / `exit(1)` path): every
//                         microbench must be able to fail CI when its
//                         invariant regresses.
//     bad-suppression     an ampc-lint annotation that is malformed or
//                         lacks the mandatory justification.
//
// Suppression: any rule can be silenced at a specific site with an
// allow annotation naming the rule id, a colon, and a justification —
// for example:
//
//     // ampc-lint: allow(det-rand): replaying a recorded entropy trace
//
// either trailing on the offending line or in the comment block
// directly above it (a standalone annotation anchors to the next code
// line). The justification is mandatory; an empty one is itself an error
// (bad-suppression). Suppressed findings still appear in the JSON
// report, marked suppressed, so exceptions stay auditable.
#pragma once

#include <string>
#include <vector>

namespace ampc::lint {

/// One finding. `suppressed` findings don't fail the run but are kept
/// in the report so every `allow` stays auditable.
struct Diagnostic {
  std::string file;  // path relative to the scan root
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
  bool suppressed = false;
  std::string justification;  // of the suppression, when suppressed

  /// Clang-style one-line rendering: `file:line: error[rule]: message`.
  std::string ToString() const;
};

/// Scanner configuration.
struct Options {
  /// Tree root. Scanning and reporting are relative to this directory.
  std::string root = ".";
  /// Relative paths (files or directories) to scan. Empty = the default
  /// roots: src, tools, bench, tests. Directories named "lint_fixtures"
  /// are always skipped — they hold intentional violations.
  std::vector<std::string> paths;
};

/// A rule's identity for listings and the JSON report.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Every rule the scanner knows, in reporting order.
const std::vector<RuleInfo>& Rules();

/// Scan result.
struct Report {
  std::vector<Diagnostic> diagnostics;  // file order, then line order
  int files_scanned = 0;
  int include_edges = 0;  // resolved in-tree #include edges

  /// Unsuppressed findings — the count that fails the build.
  int errors() const;

  /// The machine-readable report (rule inventory, per-rule counts, and
  /// every diagnostic with its suppression state).
  std::string ToJson() const;
};

/// Runs every rule over the tree. Never throws; unreadable files are
/// skipped (a missing tree yields an empty report).
Report Run(const Options& options);

}  // namespace ampc::lint
