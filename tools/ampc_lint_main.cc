// ampc_lint CLI: runs the repo-invariant scanner and exits nonzero on
// any unsuppressed diagnostic, so `make lint` and the CI lint job fail
// the build. See tools/ampc_lint.h for the rule catalogue.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "ampc_lint.h"

namespace {

void PrintUsage() {
  std::printf(
      "usage: ampc_lint [--root DIR] [--json FILE] [--list-rules] [PATH...]\n"
      "\n"
      "Static analysis for the AMPC repo invariants (determinism,\n"
      "cost-model purity, metric/config conventions).\n"
      "\n"
      "  --root DIR    tree root to scan (default: .)\n"
      "  --json FILE   also write the machine-readable report to FILE\n"
      "  --list-rules  print every rule id + summary and exit\n"
      "  PATH...       files/dirs relative to the root (default:\n"
      "                src tools bench tests)\n"
      "\n"
      "Exit status: 0 when every finding is suppressed with a justified\n"
      "`// ampc-lint: allow(rule): reason` annotation, 1 otherwise.\n");
}

}  // namespace

int main(int argc, char** argv) {
  ampc::lint::Options options;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ampc_lint: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--list-rules") {
      for (const ampc::lint::RuleInfo& r : ampc::lint::Rules()) {
        std::printf("%-20s %s\n", r.id, r.summary);
      }
      return 0;
    } else if (arg == "--root") {
      options.root = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ampc_lint: unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      options.paths.push_back(arg);
    }
  }

  const ampc::lint::Report report = ampc::lint::Run(options);
  int suppressed = 0;
  for (const ampc::lint::Diagnostic& d : report.diagnostics) {
    if (d.suppressed) {
      ++suppressed;
      continue;  // kept in the JSON report; not console noise
    }
    std::fprintf(stderr, "%s\n", d.ToString().c_str());
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << report.ToJson();
    if (!out) {
      std::fprintf(stderr, "ampc_lint: cannot write %s\n", json_path.c_str());
      return 2;
    }
  }
  std::fprintf(stderr,
               "ampc_lint: %d files, %d include edges, %d error(s), "
               "%d suppressed\n",
               report.files_scanned, report.include_edges, report.errors(),
               suppressed);
  return report.errors() > 0 ? 1 : 0;
}
