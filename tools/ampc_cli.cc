// ampc_cli — run any algorithm in this library on a graph from a file or
// a generator, with either the AMPC engine or its MPC baseline, and print
// the round/communication/time accounting.
//
// Examples:
//   ampc_cli mis --gen rmat --nodes 16384 --edges 200000
//   ampc_cli msf --input graph.txt --engine mpc
//   ampc_cli cc --gen double_cycle --nodes 100000 --machines 16
//   ampc_cli pagerank --gen er --nodes 4096 --edges 40000 --walks 32
//   ampc_cli 1v2cycle --nodes 1000000 --cycles 2
//
// Run `ampc_cli --help` for the full flag list.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/boruvka.h"
#include "baselines/local_contraction.h"
#include "baselines/mpc_kcore.h"
#include "baselines/mpc_pagerank.h"
#include "baselines/rootset_matching.h"
#include "baselines/rootset_mis.h"
#include "common/logging.h"
#include "core/connectivity.h"
#include "core/kcore.h"
#include "core/matching.h"
#include "core/mis.h"
#include "core/msf.h"
#include "core/one_vs_two_cycle.h"
#include "core/pagerank.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "kv/network_model.h"
#include "seq/kcore.h"
#include "seq/pagerank.h"
#include "sim/cluster.h"

namespace {

using namespace ampc;

struct Args {
  std::string algorithm;
  std::string input;
  std::string gen = "rmat";
  std::string engine = "ampc";
  std::string network = "rdma";
  int64_t nodes = 1 << 14;
  int64_t edges = 1 << 17;
  int cycles = 2;  // for 1v2cycle
  uint64_t seed = 42;
  int machines = 8;
  int threads = 8;
  int walks = 16;  // pagerank walks per node
  bool caching = true;
  bool multithreading = true;
  // Elastic-cluster knobs (sim::ClusterConfig::FaultConfig).
  double fault_rate = 0.0;
  uint64_t fault_seed = 42;
  int replication = 1;
  double checkpoint_period = 0.0;
  int machines_per_domain = 0;
  double domain_fault_rate = 0.0;
  double warning_lead = 0.0;
  double slow_machine_rate = 0.0;
  bool hedge = false;
  // Frontier engine (sim::ClusterConfig::FrontierConfig).
  std::string frontier_mode = "sparse";
  double frontier_alpha = FrontierPolicy::kDefaultAlpha;
  double frontier_beta = FrontierPolicy::kDefaultBeta;
  // AutoTuner (sim::ClusterConfig::auto_tune).
  bool auto_tune = false;
};

void PrintUsage() {
  std::printf(
      "usage: ampc_cli <algorithm> [flags]\n"
      "\n"
      "algorithms:\n"
      "  mis        maximal independent set        (engines: ampc, mpc)\n"
      "  mm         maximal matching               (engines: ampc, mpc)\n"
      "  msf        minimum spanning forest        (engines: ampc, mpc)\n"
      "  cc         connected components           (engines: ampc, mpc)\n"
      "  kcore      core decomposition             (engines: ampc, mpc)\n"
      "  pagerank   PageRank                       (engines: ampc, mpc)\n"
      "  1v2cycle   1-vs-2-cycle decision          (engines: ampc, mpc)\n"
      "\n"
      "input (pick one):\n"
      "  --input FILE     text edge list: `u v` per line, # comments\n"
      "  --gen NAME       generator: rmat | er | cycle | double_cycle |\n"
      "                   grid | tree | star | complete  (default rmat)\n"
      "  --nodes N        generator size        (default 16384)\n"
      "  --edges M        generator edge count  (default 131072)\n"
      "\n"
      "engine & cluster:\n"
      "  --engine E       ampc | mpc                     (default ampc)\n"
      "  --machines P     logical machines               (default 8)\n"
      "  --threads T      worker threads per machine     (default 8)\n"
      "  --network N      rdma | tcp                     (default rdma)\n"
      "  --no-cache       disable the caching optimization\n"
      "  --no-mt          disable the multithreading optimization\n"
      "  --seed S         randomness seed                (default 42)\n"
      "  --walks W        pagerank: walks per node       (default 16)\n"
      "  --cycles C       1v2cycle: build 1 or 2 cycles  (default 2)\n"
      "\n"
      "failure model (outputs stay bit-identical; only cost changes):\n"
      "  --fault-rate R          Poisson kills per machine-second of\n"
      "                          simulated time        (default 0 = off)\n"
      "  --fault-seed S          kill-schedule seed    (default 42)\n"
      "  --replication R         copies of every DHT record (default 1)\n"
      "  --checkpoint-period T   simulated seconds between shard\n"
      "                          checkpoints           (default 0 = off)\n"
      "  --machines-per-domain D machines sharing one fault domain\n"
      "                          (rack); replicas span domains\n"
      "                                                (default 0 = off)\n"
      "  --domain-fault-rate R   Poisson rack kills per domain-second —\n"
      "                          every machine in the domain dies at\n"
      "                          once                  (default 0 = off)\n"
      "  --warning-lead T        failure warnings arrive T simulated\n"
      "                          seconds before each kill; the cluster\n"
      "                          drains the machine, migrating its\n"
      "                          shards live             (default 0 = off)\n"
      "  --slow-machine-rate R   fraction of (round, machine) pairs that\n"
      "                          run lookups 4x slow   (default 0 = off)\n"
      "  --hedge                 hedged lookups: re-issue timed-out trips\n"
      "                          to a replica, first answer wins (needs\n"
      "                          --replication 2+ and --slow-machine-rate)\n"
      "\n"
      "frontier engine (outputs stay bit-identical; only cost changes):\n"
      "  --frontier-mode M       sparse | dense | hybrid (default sparse)\n"
      "  --frontier-alpha A      hybrid: go dense when frontier out-edges\n"
      "                          exceed total_edges/A  (default 15)\n"
      "  --frontier-beta B       hybrid: back to sparse when frontier\n"
      "                          shrinks below nodes/B (default 18)\n"
      "\n"
      "auto-tuning (outputs stay bit-identical; only cost changes):\n"
      "  --auto-tune             probe-then-commit AutoTuner: the first\n"
      "                          query-bearing rounds probe placement,\n"
      "                          frontier mode, pipeline depth, batch\n"
      "                          bound, and cache capacity, then commit;\n"
      "                          prints the decision trace\n"
      "\n"
      "Instead of an algorithm, `ampc_cli --lint-config [flags]` dumps\n"
      "the effective ClusterConfig: every knob with its value and its\n"
      "off-state marker (checked against the struct by ampc_lint).\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->algorithm = argv[1];
  if (args->algorithm == "--help" || args->algorithm == "-h") return false;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--input") {
      args->input = next();
    } else if (flag == "--gen") {
      args->gen = next();
    } else if (flag == "--engine") {
      args->engine = next();
    } else if (flag == "--network") {
      args->network = next();
    } else if (flag == "--nodes") {
      args->nodes = std::atoll(next());
    } else if (flag == "--edges") {
      args->edges = std::atoll(next());
    } else if (flag == "--cycles") {
      args->cycles = std::atoi(next());
    } else if (flag == "--seed") {
      args->seed = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--machines") {
      args->machines = std::atoi(next());
    } else if (flag == "--threads") {
      args->threads = std::atoi(next());
    } else if (flag == "--walks") {
      args->walks = std::atoi(next());
    } else if (flag == "--no-cache") {
      args->caching = false;
    } else if (flag == "--no-mt") {
      args->multithreading = false;
    } else if (flag == "--fault-rate") {
      args->fault_rate = std::atof(next());
    } else if (flag == "--fault-seed") {
      args->fault_seed = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--replication") {
      args->replication = std::atoi(next());
    } else if (flag == "--checkpoint-period") {
      args->checkpoint_period = std::atof(next());
    } else if (flag == "--machines-per-domain") {
      args->machines_per_domain = std::atoi(next());
    } else if (flag == "--domain-fault-rate") {
      args->domain_fault_rate = std::atof(next());
    } else if (flag == "--warning-lead") {
      args->warning_lead = std::atof(next());
    } else if (flag == "--slow-machine-rate") {
      args->slow_machine_rate = std::atof(next());
    } else if (flag == "--hedge") {
      args->hedge = true;
    } else if (flag == "--frontier-mode") {
      args->frontier_mode = next();
    } else if (flag == "--frontier-alpha") {
      args->frontier_alpha = std::atof(next());
    } else if (flag == "--frontier-beta") {
      args->frontier_beta = std::atof(next());
    } else if (flag == "--auto-tune") {
      args->auto_tune = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

graph::EdgeList LoadInput(const Args& args) {
  if (!args.input.empty()) {
    auto list = graph::ReadEdgeListText(args.input);
    if (!list.ok()) {
      std::fprintf(stderr, "failed to read %s: %s\n", args.input.c_str(),
                   list.status().ToString().c_str());
      std::exit(2);
    }
    return *std::move(list);
  }
  const int64_t n = args.nodes;
  if (args.gen == "rmat") {
    int log2_nodes = 1;
    while ((int64_t{1} << log2_nodes) < n) ++log2_nodes;
    return graph::GenerateRmat(log2_nodes, args.edges, args.seed);
  }
  if (args.gen == "er") {
    return graph::GenerateErdosRenyi(n, args.edges, args.seed);
  }
  if (args.gen == "cycle") return graph::GenerateCycle(n);
  if (args.gen == "double_cycle") return graph::GenerateDoubleCycle(n / 2);
  if (args.gen == "grid") {
    int64_t rows = 1;
    while (rows * rows < n) ++rows;
    return graph::GenerateGrid(rows, rows);
  }
  if (args.gen == "tree") return graph::GenerateRandomTree(n, args.seed);
  if (args.gen == "star") return graph::GenerateStar(n);
  if (args.gen == "complete") return graph::GenerateComplete(n);
  std::fprintf(stderr, "unknown generator %s\n", args.gen.c_str());
  std::exit(2);
}

void PrintMetrics(sim::Cluster& cluster) {
  const Metrics& m = cluster.metrics();
  std::printf("--- cluster accounting ---\n");
  std::printf("rounds:          %lld\n",
              static_cast<long long>(m.Get("rounds")));
  std::printf("shuffles:        %lld\n",
              static_cast<long long>(m.Get("shuffles")));
  std::printf("shuffle bytes:   %lld\n",
              static_cast<long long>(m.Get("shuffle_bytes")));
  std::printf("kv reads:        %lld\n",
              static_cast<long long>(m.Get("kv_reads")));
  std::printf("kv read bytes:   %lld\n",
              static_cast<long long>(m.Get("kv_read_bytes")));
  std::printf("kv write bytes:  %lld\n",
              static_cast<long long>(m.Get("kv_write_bytes")));
  std::printf("cache hit rate:  %.3f\n",
              m.Get("cache_hits") + m.Get("cache_misses") == 0
                  ? 0.0
                  : static_cast<double>(m.Get("cache_hits")) /
                        static_cast<double>(m.Get("cache_hits") +
                                            m.Get("cache_misses")));
  if (m.Get("machines_lost") != 0 || m.Get("checkpoints") != 0 ||
      m.Get("kv_replication_bytes") != 0) {
    std::printf("machines lost:   %lld\n",
                static_cast<long long>(m.Get("machines_lost")));
    std::printf("replication bytes: %lld\n",
                static_cast<long long>(m.Get("kv_replication_bytes")));
    std::printf("checkpoints:     %lld (%lld bytes)\n",
                static_cast<long long>(m.Get("checkpoints")),
                static_cast<long long>(m.Get("checkpoint_bytes")));
    std::printf("recovery time:   %.3fs (replay %.3fs)\n",
                m.GetTime("sim:recovery"),
                m.GetTime("recovery_replay_seconds"));
  }
  if (m.Get("domains_lost") != 0 || m.Get("machines_drained") != 0) {
    std::printf("domains lost:    %lld\n",
                static_cast<long long>(m.Get("domains_lost")));
    std::printf("drained:         %lld machines, %lld shards migrated "
                "(%lld bytes, %.3fs)\n",
                static_cast<long long>(m.Get("machines_drained")),
                static_cast<long long>(m.Get("shards_migrated")),
                static_cast<long long>(m.Get("kv_migration_bytes")),
                m.GetTime("sim:drain"));
    if (m.Get("replica_wipeouts") != 0) {
      std::printf("replica wipeouts: %lld\n",
                  static_cast<long long>(m.Get("replica_wipeouts")));
    }
  }
  if (m.Get("kv_slow_trips") != 0) {
    const int64_t hedged = m.Get("kv_hedged_trips");
    std::printf("stragglers:      %lld slow trips, %lld hedged "
                "(win rate %.3f)\n",
                static_cast<long long>(m.Get("kv_slow_trips")),
                static_cast<long long>(hedged),
                hedged == 0 ? 0.0
                            : static_cast<double>(m.Get("kv_hedge_wins")) /
                                  static_cast<double>(hedged));
  }
  if (m.Get("frontier_dense_rounds") != 0 ||
      m.Get("frontier_sparse_rounds") != 0) {
    std::printf("frontier rounds: %lld dense / %lld sparse\n",
                static_cast<long long>(m.Get("frontier_dense_rounds")),
                static_cast<long long>(m.Get("frontier_sparse_rounds")));
    std::printf("frontier bytes:  %lld broadcast, %lld exchanged\n",
                static_cast<long long>(m.Get("frontier_broadcast_bytes")),
                static_cast<long long>(m.Get("frontier_exchange_bytes")));
    std::printf("lookup trips:    %lld\n",
                static_cast<long long>(m.Get("kv_lookup_trips")));
  }
  if (cluster.auto_tuner() != nullptr) {
    std::printf("auto-tune:       %lld probe rounds (%.3fs charged)\n",
                static_cast<long long>(m.Get("autotune_probe_rounds")),
                m.GetTime("sim:autotune_probe"));
    std::printf("%s\n", cluster.auto_tuner()->DecisionSummary().c_str());
  }
  std::printf("simulated time:  %.3fs\n", cluster.SimSeconds());
  std::printf("wall time:       %.3fs\n", cluster.WallSeconds());
}

// Builds the effective ClusterConfig from the parsed flags — shared by
// Run and the --lint-config dump so the dump always shows exactly what a
// run with the same flags would use. False on an unknown frontier mode.
bool BuildClusterConfig(const Args& args, sim::ClusterConfig* config) {
  config->num_machines = args.machines;
  config->threads_per_machine = args.threads;
  config->query_cache.enabled = args.caching;
  config->multithreading = args.multithreading;
  config->network = args.network == "tcp" ? kv::NetworkModel::TcpIp()
                                          : kv::NetworkModel::Rdma();
  config->seed = args.seed;
  config->faults.fault_rate_per_machine_sec = args.fault_rate;
  config->faults.fault_seed = args.fault_seed;
  config->faults.replication = args.replication;
  config->faults.checkpoint_period_sec = args.checkpoint_period;
  config->faults.machines_per_domain = args.machines_per_domain;
  config->faults.domain_fault_rate_sec = args.domain_fault_rate;
  config->faults.warning_lead_sec = args.warning_lead;
  config->faults.slow_machine_rate = args.slow_machine_rate;
  config->faults.hedge_lookups = args.hedge;
  if (!ParseFrontierMode(args.frontier_mode, &config->frontier.mode)) {
    std::fprintf(stderr, "unknown frontier mode %s\n",
                 args.frontier_mode.c_str());
    return false;
  }
  config->frontier.alpha = args.frontier_alpha;
  config->frontier.beta = args.frontier_beta;
  config->auto_tune.enabled = args.auto_tune;
  return true;
}

// `--lint-config`: prints every ClusterConfig knob (dotted name), its
// effective value under the given flags, and the knob's off-state — the
// value that reproduces the prior cost model bit-identically (or a
// note that the knob is cost-only / a scale parameter). ampc_lint's
// config-dump rule cross-checks this inventory against the struct, so
// adding a knob without extending this dump fails the lint gate.
int DumpLintConfig(const Args& args) {
  sim::ClusterConfig c;
  if (!BuildClusterConfig(args, &c)) return 2;
  const char* frontier_mode = c.frontier.mode == FrontierMode::kSparse
                                  ? "sparse"
                                  : c.frontier.mode == FrontierMode::kDense
                                        ? "dense"
                                        : "hybrid";
  std::printf("--- effective ClusterConfig (knob = value  # off-state) ---\n");
  auto row = [](const char* knob, const std::string& value,
                const char* off_state) {
    std::printf("%-33s = %-12s # %s\n", knob, value.c_str(), off_state);
  };
  auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return std::string(buf);
  };
  auto integer = [](int64_t v) { return std::to_string(v); };
  auto boolean = [](bool v) { return std::string(v ? "true" : "false"); };
  row("num_machines", integer(c.num_machines),
      "scale knob: outputs bit-identical across values");
  row("threads_per_machine", integer(c.threads_per_machine),
      "scale knob: outputs bit-identical across values");
  row("multithreading", boolean(c.multithreading),
      "false = sequential workers, bit-identical outputs");
  row("query_cache.enabled", boolean(c.query_cache.enabled),
      "false = uncached historical client, cost-only");
  row("query_cache.capacity", integer(c.query_cache.capacity),
      "cost-only: hit rate, never values");
  row("query_cache.lock_shards", integer(c.query_cache.lock_shards),
      "cost- and value-neutral concurrency knob");
  row("batch_lookups", boolean(c.batch_lookups),
      "false = scalar trip charging, bit-identical outputs");
  row("max_batch_keys", integer(c.max_batch_keys),
      "<= 0 disables sub-batch splitting, cost-only");
  row("pipeline_depth", integer(c.pipeline_depth),
      "1 = lockstep, the pre-pipelining cost model");
  row("placement_policy", kv::PlacementPolicyName(c.placement_policy),
      "hash = historical default; all policies value-identical");
  row("affinity_block", integer(c.affinity_block),
      "inert unless placement_policy = affinity");
  row("network", c.network.name,
      "cost-only: scales latencies/bytes, never values");
  row("round_spawn_sec", num(c.round_spawn_sec), "cost-only calibration");
  row("shuffle_bytes_per_sec", num(c.shuffle_bytes_per_sec),
      "cost-only calibration");
  row("shuffle_min_sec", num(c.shuffle_min_sec), "cost-only calibration");
  row("map_item_cpu_sec", num(c.map_item_cpu_sec), "cost-only calibration");
  row("faults.fault_rate_per_machine_sec",
      num(c.faults.fault_rate_per_machine_sec),
      "0 disables injection, fault-free model");
  row("faults.fault_seed", integer(int64_t(c.faults.fault_seed)),
      "inert while every fault rate is 0");
  row("faults.replication", integer(c.faults.replication),
      "1 = unreplicated historical model");
  row("faults.checkpoint_period_sec", num(c.faults.checkpoint_period_sec),
      "0 disables checkpointing");
  row("faults.machines_per_domain", integer(c.faults.machines_per_domain),
      "<= 1 keeps every machine its own domain");
  row("faults.domain_fault_rate_sec", num(c.faults.domain_fault_rate_sec),
      "0 disables correlated kills");
  row("faults.domain_aware_placement",
      boolean(c.faults.domain_aware_placement),
      "inert while machines_per_domain <= 1");
  row("faults.warning_lead_sec", num(c.faults.warning_lead_sec),
      "0 = unannounced kills, reactive historical model");
  row("faults.slow_machine_rate", num(c.faults.slow_machine_rate),
      "0 disables the straggler model");
  row("faults.straggler_slowdown", num(c.faults.straggler_slowdown),
      "inert while slow_machine_rate is 0");
  row("faults.hedge_lookups", boolean(c.faults.hedge_lookups),
      "false = wait out stragglers, historical model");
  row("frontier.mode", frontier_mode,
      "sparse = legacy engine, bit-identical cost model");
  row("frontier.alpha", num(c.frontier.alpha),
      "inert under sparse; cost-only otherwise");
  row("frontier.beta", num(c.frontier.beta),
      "inert under sparse; cost-only otherwise");
  row("frontier.min_worker_grain", integer(c.frontier.min_worker_grain),
      "inert under sparse (historical slicing)");
  row("auto_tune", boolean(c.auto_tune.enabled),
      "false constructs no tuner, byte-identical cost model");
  row("seed", integer(int64_t(c.seed)),
      "outputs a pure function of (input, seed, config)");
  row("in_memory_threshold_arcs", integer(c.in_memory_threshold_arcs),
      "baseline switchover scale, bit-identical outputs");
  return 0;
}

int Run(const Args& args) {
  const bool ampc_engine = args.engine == "ampc";
  sim::ClusterConfig config;
  if (!BuildClusterConfig(args, &config)) return 2;

  if (args.algorithm == "1v2cycle") {
    // Builds its own cycle structure; skips the generic input path.
    graph::EdgeList cycle_list = args.cycles == 1
                                     ? graph::GenerateCycle(args.nodes)
                                     : graph::GenerateDoubleCycle(
                                           args.nodes / 2);
    config.in_memory_threshold_arcs =
        std::max<int64_t>(64, 2 * args.nodes / 50);
    sim::Cluster cluster(config);
    int cycles_found = 0;
    if (ampc_engine) {
      graph::Graph cycle_graph = graph::BuildGraph(cycle_list);
      core::CycleOptions options;
      options.seed = args.seed;
      cycles_found =
          core::AmpcOneVsTwoCycle(cluster, cycle_graph, options).num_cycles;
    } else {
      cycles_found =
          baselines::MpcOneVsTwoCycle(cluster, cycle_list, args.seed);
    }
    std::printf("cycles detected: %d (built %d)\n", cycles_found,
                args.cycles);
    PrintMetrics(cluster);
    return cycles_found == args.cycles ? 0 : 1;
  }

  graph::EdgeList list = LoadInput(args);
  graph::Graph g = graph::BuildGraph(list);
  std::printf("graph: %lld nodes, %lld arcs, max degree %lld\n",
              static_cast<long long>(g.num_nodes()),
              static_cast<long long>(g.num_arcs()),
              static_cast<long long>(g.max_degree()));
  config.in_memory_threshold_arcs = std::max<int64_t>(64, g.num_arcs() / 50);
  sim::Cluster cluster(config);

  if (args.algorithm == "mis") {
    int64_t size = 0;
    if (ampc_engine) {
      core::MisResult result = core::AmpcMis(cluster, g, args.seed);
      for (uint8_t b : result.in_mis) size += b;
    } else {
      baselines::RootsetMisResult result =
          baselines::MpcRootsetMis(cluster, g, args.seed);
      for (uint8_t b : result.in_mis) size += b;
    }
    std::printf("mis size: %lld\n", static_cast<long long>(size));
  } else if (args.algorithm == "mm") {
    int64_t matched = 0;
    if (ampc_engine) {
      core::MatchingOptions options;
      options.seed = args.seed;
      core::MatchingResult result = core::AmpcMatching(cluster, g, options);
      for (graph::NodeId p : result.partner) {
        matched += p != graph::kInvalidNode;
      }
    } else {
      baselines::RootsetMatchingResult result =
          baselines::MpcRootsetMatching(cluster, g, args.seed);
      for (graph::NodeId p : result.partner) {
        matched += p != graph::kInvalidNode;
      }
    }
    std::printf("matching size: %lld\n", static_cast<long long>(matched / 2));
  } else if (args.algorithm == "msf") {
    graph::WeightedEdgeList weighted = graph::MakeDegreeWeighted(list, g);
    size_t forest = 0;
    double weight = 0;
    std::vector<graph::EdgeId> edges;
    if (ampc_engine) {
      core::MsfOptions options;
      options.seed = args.seed;
      edges = core::AmpcMsf(cluster, weighted, options).edges;
    } else {
      edges = baselines::MpcBoruvkaMsf(cluster, weighted, args.seed).edges;
    }
    forest = edges.size();
    for (graph::EdgeId id : edges) weight += weighted.edges[id].w;
    std::printf("msf: %zu edges, total weight %.1f\n", forest, weight);
  } else if (args.algorithm == "cc") {
    int64_t components = 0;
    if (ampc_engine) {
      core::MsfOptions options;
      options.seed = args.seed;
      components = core::AmpcConnectivity(cluster, list, options)
                       .num_components;
    } else {
      components =
          baselines::MpcLocalContractionCC(cluster, list, args.seed)
              .num_components;
    }
    std::printf("connected components: %lld\n",
                static_cast<long long>(components));
  } else if (args.algorithm == "kcore") {
    std::vector<int32_t> coreness;
    if (ampc_engine) {
      coreness = core::AmpcKCore(cluster, g).coreness;
    } else {
      coreness = baselines::MpcKCore(cluster, g).coreness;
    }
    std::printf("degeneracy: %d\n", seq::Degeneracy(coreness));
  } else if (args.algorithm == "pagerank") {
    std::vector<double> rank;
    if (ampc_engine) {
      core::PageRankMcOptions options;
      options.seed = args.seed;
      options.walks_per_node = args.walks;
      rank = core::AmpcMonteCarloPageRank(cluster, g, options).rank;
    } else {
      seq::PageRankOptions options;
      options.tolerance = 1e-6;
      rank = baselines::MpcPageRank(cluster, g, options).rank;
    }
    graph::NodeId best = 0;
    for (graph::NodeId v = 1; v < g.num_nodes(); ++v) {
      if (rank[v] > rank[best]) best = v;
    }
    std::printf("top vertex: %u (rank %.6f)\n", best, rank[best]);
  } else {
    std::fprintf(stderr, "unknown algorithm %s\n", args.algorithm.c_str());
    return 2;
  }
  PrintMetrics(cluster);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    PrintUsage();
    return 2;
  }
  if (args.algorithm == "--lint-config") return DumpLintConfig(args);
  return Run(args);
}
