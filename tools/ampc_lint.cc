// ampc_lint implementation: a tokenizing scanner with include-graph
// awareness. See ampc_lint.h for the rule catalogue.
//
// Design notes. The scanner works in two passes:
//
//   1. Lex every file: strip comments (keeping their text per line for
//      suppressions and doc-comment checks), strings (kept as opaque
//      string tokens so rule patterns never match inside literals),
//      and preprocessor lines (keeping #include targets). Collect the
//      type aliases the whole tree defines (`using X =
//      kv::ShardedStore<...>` etc.) so rules recognize aliased types
//      across files.
//   2. Resolve the include graph, compute the output-affecting file
//      set (src/core|graph|baselines plus src/ headers reachable only
//      from them), and run every rule over each file's token stream.
//
// Everything is flow-insensitive and name-based on purpose: the rules
// target repo conventions with distinctive spellings, and a tokenizer
// keeps the tool dependency-free, fast, and easy to extend. Known
// blind spots (macro-generated code, type inference through function
// returns) are accepted; the dynamic determinism matrix still backstops
// them.
#include "ampc_lint.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ampc::lint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Rule catalogue.

constexpr const char* kDetRand = "det-rand";
constexpr const char* kDetWallclock = "det-wallclock";
constexpr const char* kDetUnorderedIter = "det-unordered-iter";
constexpr const char* kDetPtrKey = "det-ptr-key";
constexpr const char* kCoreStoreDirect = "core-store-direct";
constexpr const char* kCoreMakeStore = "core-make-store";
constexpr const char* kMetricZeroGuard = "metric-zero-guard";
constexpr const char* kConfigOffDoc = "config-off-doc";
constexpr const char* kConfigDump = "config-dump";
constexpr const char* kBenchGate = "bench-gate";
constexpr const char* kBadSuppression = "bad-suppression";

const std::vector<RuleInfo> kRules = {
    {kDetRand,
     "banned nondeterminism primitive; use seeded common/random.h"},
    {kDetWallclock,
     "std::chrono outside common/timer.h and bench/; use WallTimer"},
    {kDetUnorderedIter,
     "range-iteration over an unordered container in an output-affecting "
     "path"},
    {kDetPtrKey, "pointer-keyed ordered container: order follows the "
                 "allocator"},
    {kCoreStoreDirect,
     "direct ShardedStore/kv::Store data access bypassing the charged "
     "MachineContext entrypoints"},
    {kCoreMakeStore,
     "Placement/ShardMap/ShardedStore built outside Cluster::MakeStore"},
    {kMetricZeroGuard,
     "new Metrics counter written without a zero-rate guard"},
    {kConfigOffDoc,
     "ClusterConfig knob without a documented off-state"},
    {kConfigDump,
     "ClusterConfig knob missing from the ampc_cli --lint-config dump"},
    {kBenchGate, "bench/micro_*.cc without a failing gate (return 1 path)"},
    {kBadSuppression,
     "malformed ampc-lint annotation or missing justification"},
};

bool KnownRule(const std::string& id) {
  for (const RuleInfo& r : kRules) {
    if (id == r.id) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Lexer.

enum class Tok : uint8_t { kIdent, kNumber, kString, kPunct };

struct Token {
  Tok kind;
  std::string text;
  int line;
};

struct Suppression {
  std::string rule;
  std::string justification;
  bool valid = false;  // well-formed with a non-empty justification
  int line = 0;
};

struct IncludeRef {
  std::string target;  // as written
  bool system = false;
  int line = 0;
};

struct SourceFile {
  std::string rel;  // path relative to the scan root, '/'-separated
  std::vector<Token> toks;
  std::map<int, std::string> comments;  // line -> accumulated text
  std::set<int> code_lines;             // lines carrying at least one token
  std::vector<Suppression> supps;
  std::vector<IncludeRef> includes;
  bool output_affecting = false;
};

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentChar(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

// Parses allow annotations (the ampc-lint directive followed by
// `allow(rule): justification`) out of one comment's text. Malformed
// annotations are recorded with valid=false so the caller can turn them
// into bad-suppression diagnostics.
void ParseSuppressions(const std::string& comment, int line,
                       std::vector<Suppression>* out) {
  const std::string tag = "ampc-lint:";
  size_t pos = 0;
  while ((pos = comment.find(tag, pos)) != std::string::npos) {
    pos += tag.size();
    Suppression s;
    s.line = line;
    size_t p = comment.find_first_not_of(" \t", pos);
    const std::string allow = "allow(";
    if (p == std::string::npos || comment.compare(p, allow.size(), allow) != 0) {
      out->push_back(s);  // invalid: not an allow(...) form
      continue;
    }
    p += allow.size();
    const size_t close = comment.find(')', p);
    if (close == std::string::npos) {
      out->push_back(s);
      continue;
    }
    s.rule = comment.substr(p, close - p);
    p = close + 1;
    p = comment.find_first_not_of(" \t", p);
    if (p == std::string::npos || comment[p] != ':') {
      out->push_back(s);  // justification separator missing
      continue;
    }
    std::string just = comment.substr(p + 1);
    // Trim.
    const size_t b = just.find_first_not_of(" \t");
    const size_t e = just.find_last_not_of(" \t\r\n");
    just = b == std::string::npos ? "" : just.substr(b, e - b + 1);
    s.justification = just;
    s.valid = !s.rule.empty() && !just.empty() && KnownRule(s.rule);
    out->push_back(s);
    pos = p;
  }
}

// Lexes one file: tokens, per-line comment text, includes, suppressions.
// Preprocessor lines other than #include are dropped wholesale (macros
// are out of scope for a tokenizing scanner).
SourceFile LexFile(const fs::path& path, std::string rel) {
  SourceFile f;
  f.rel = std::move(rel);
  std::ifstream in(path);
  if (!in) return f;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string src = buffer.str();

  auto add_comment = [&f](int line, const std::string& text) {
    std::string& slot = f.comments[line];
    if (!slot.empty()) slot += " ";
    slot += text;
  };

  size_t i = 0;
  int line = 1;
  bool at_line_start = true;
  const size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    // Preprocessor line: record #include, skip the rest (with \-joins).
    if (c == '#' && at_line_start) {
      size_t j = i;
      std::string pp;
      while (j < n) {
        if (src[j] == '\\' && j + 1 < n && src[j + 1] == '\n') {
          j += 2;
          ++line;
          continue;
        }
        if (src[j] == '\n') break;
        pp += src[j++];
      }
      size_t p = pp.find_first_not_of(" \t", 1);
      if (p != std::string::npos && pp.compare(p, 7, "include") == 0) {
        p = pp.find_first_not_of(" \t", p + 7);
        if (p != std::string::npos && (pp[p] == '"' || pp[p] == '<')) {
          const char end = pp[p] == '"' ? '"' : '>';
          const size_t close = pp.find(end, p + 1);
          if (close != std::string::npos) {
            f.includes.push_back(
                {pp.substr(p + 1, close - p - 1), pp[p] == '<', line});
            // Includes can carry diagnostics (det-wallclock), so their
            // line must be a valid anchor for standalone suppressions.
            f.code_lines.insert(line);
          }
        }
      }
      i = j;
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t j = i + 2;
      std::string text;
      while (j < n && src[j] != '\n') text += src[j++];
      add_comment(line, text);
      ParseSuppressions(text, line, &f.supps);
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t j = i + 2;
      std::string text;
      int start_line = line;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') {
          add_comment(start_line, text);
          ParseSuppressions(text, start_line, &f.supps);
          text.clear();
          ++line;
          start_line = line;
        } else {
          text += src[j];
        }
        ++j;
      }
      add_comment(start_line, text);
      ParseSuppressions(text, start_line, &f.supps);
      i = j + 2;
      continue;
    }
    // Raw strings.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      const std::string close = ")" + delim + "\"";
      const size_t end = src.find(close, j);
      std::string inner =
          end == std::string::npos ? "" : src.substr(j + 1, end - j - 1);
      f.toks.push_back({Tok::kString, inner, line});
      f.code_lines.insert(line);
      line += static_cast<int>(std::count(inner.begin(), inner.end(), '\n'));
      i = end == std::string::npos ? n : end + close.size();
      continue;
    }
    // Strings and char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      std::string inner;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          inner += src[j];
          inner += src[j + 1];
          j += 2;
          continue;
        }
        if (src[j] == '\n') break;  // unterminated; resync
        inner += src[j++];
      }
      f.toks.push_back({Tok::kString, inner, line});
      f.code_lines.insert(line);
      i = j < n ? j + 1 : n;
      continue;
    }
    // Identifiers.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(src[j])) ++j;
      f.toks.push_back({Tok::kIdent, src.substr(i, j - i), line});
      f.code_lines.insert(line);
      i = j;
      continue;
    }
    // Numbers (incl. digit separators and suffixes).
    if (IsDigit(c)) {
      size_t j = i;
      while (j < n && (IsIdentChar(src[j]) || src[j] == '.' || src[j] == '\'')) {
        ++j;
      }
      f.toks.push_back({Tok::kNumber, src.substr(i, j - i), line});
      f.code_lines.insert(line);
      i = j;
      continue;
    }
    // Punctuation; '::' and '->' kept as single tokens so scope
    // resolution and member access are one-token patterns.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      f.toks.push_back({Tok::kPunct, "::", line});
      f.code_lines.insert(line);
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      f.toks.push_back({Tok::kPunct, "->", line});
      f.code_lines.insert(line);
      i += 2;
      continue;
    }
    f.toks.push_back({Tok::kPunct, std::string(1, c), line});
    f.code_lines.insert(line);
    ++i;
  }
  return f;
}

// ---------------------------------------------------------------------------
// Token-stream helpers.

bool IsIdent(const SourceFile& f, size_t i, const char* text) {
  return i < f.toks.size() && f.toks[i].kind == Tok::kIdent &&
         f.toks[i].text == text;
}

bool IsPunct(const SourceFile& f, size_t i, const char* text) {
  return i < f.toks.size() && f.toks[i].kind == Tok::kPunct &&
         f.toks[i].text == text;
}

// Index just past a balanced <...> starting at `i` (which must point at
// '<'); returns `i` unchanged if the angle run never closes (expression
// less-than — callers treat that as "not a template").
size_t SkipAngles(const SourceFile& f, size_t i) {
  if (!IsPunct(f, i, "<")) return i;
  int depth = 0;
  size_t j = i;
  // Bounded scan: template argument lists in this tree are short; a
  // dangling comparison operator gives up quickly instead of eating the
  // file.
  const size_t limit = std::min(f.toks.size(), i + 256);
  for (; j < limit; ++j) {
    const std::string& t = f.toks[j].text;
    if (f.toks[j].kind != Tok::kPunct) continue;
    if (t == "<") ++depth;
    if (t == ">") {
      if (--depth == 0) return j + 1;
    }
    if (t == ";" || t == "{") break;  // statement ended: not a template
  }
  return i;
}

// Index just past a balanced (...) starting at `i` (pointing at '(').
size_t SkipParens(const SourceFile& f, size_t i) {
  if (!IsPunct(f, i, "(")) return i;
  int depth = 0;
  for (size_t j = i; j < f.toks.size(); ++j) {
    if (f.toks[j].kind != Tok::kPunct) continue;
    if (f.toks[j].text == "(") ++depth;
    if (f.toks[j].text == ")") {
      if (--depth == 0) return j + 1;
    }
  }
  return f.toks.size();
}

// The contiguous comment block attached to code line `line`: a trailing
// comment on the line itself plus the run of comment-only lines directly
// above it.
std::string CommentAbove(const SourceFile& f, int line) {
  std::string text;
  auto it = f.comments.find(line);
  if (it != f.comments.end()) text = it->second;
  for (int l = line - 1; l >= 1; --l) {
    auto c = f.comments.find(l);
    if (c == f.comments.end() || f.code_lines.count(l)) break;
    text = c->second + " " + text;
  }
  return text;
}

std::string Lower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

// ---------------------------------------------------------------------------
// Diagnostics sink with suppression handling.

class Sink {
 public:
  explicit Sink(std::vector<Diagnostic>* out) : out_(out) {}

  void SetFile(const SourceFile* f) {
    file_ = f;
    by_line_.clear();
    for (const Suppression& s : f->supps) {
      if (!s.valid) continue;
      // A trailing annotation covers its own line; a standalone comment
      // annotation anchors to the next code line (so a multi-line
      // justification block above the offending statement still lands).
      by_line_[s.line].push_back(&s);
      auto next_code = f->code_lines.lower_bound(s.line);
      if (next_code != f->code_lines.end()) {
        by_line_[*next_code].push_back(&s);
      }
    }
  }

  // Emits one finding, resolving suppressions: an `allow(rule)` trailing
  // on the finding's line, or in the comment block directly above it,
  // silences it (the finding is still reported, marked suppressed).
  void Report(const char* rule, int line, std::string message) {
    Diagnostic d;
    d.file = file_->rel;
    d.line = line;
    d.rule = rule;
    d.message = std::move(message);
    auto it = by_line_.find(line);
    if (it != by_line_.end()) {
      for (const Suppression* s : it->second) {
        if (s->rule == rule) {
          d.suppressed = true;
          d.justification = s->justification;
        }
      }
    }
    out_->push_back(std::move(d));
  }

 private:
  std::vector<Diagnostic>* out_;
  const SourceFile* file_ = nullptr;
  std::map<int, std::vector<const Suppression*>> by_line_;
};

// ---------------------------------------------------------------------------
// Global context shared by the rules.

struct Context {
  std::vector<SourceFile> files;
  // Type aliases collected across the whole tree, so `using AdjStore =
  // kv::ShardedStore<...>` in one file is recognized in another.
  std::set<std::string> unordered_aliases;
  std::set<std::string> store_aliases;
  const SourceFile* cluster_header = nullptr;  // src/sim/cluster.h
  const SourceFile* cli_source = nullptr;      // tools/ampc_cli.cc
};

void CollectAliases(const SourceFile& f, Context* ctx) {
  for (size_t i = 0; i + 2 < f.toks.size(); ++i) {
    if (!IsIdent(f, i, "using") && !IsIdent(f, i, "typedef")) continue;
    // `using NAME = ... unordered_map/ShardedStore ... ;`
    if (!IsIdent(f, i, "using") || f.toks[i + 1].kind != Tok::kIdent ||
        !IsPunct(f, i + 2, "=")) {
      continue;
    }
    const std::string& name = f.toks[i + 1].text;
    for (size_t j = i + 3; j < f.toks.size(); ++j) {
      if (IsPunct(f, j, ";")) break;
      const std::string& t = f.toks[j].text;
      if (t == "unordered_map" || t == "unordered_set") {
        ctx->unordered_aliases.insert(name);
        break;
      }
      if (t == "ShardedStore") {
        ctx->store_aliases.insert(name);
        break;
      }
    }
  }
}

// Variable names declared in `f` with any of the types in `type_names`
// (aliases included; templates skipped). Flow-insensitive: a name is
// tracked for the whole file.
std::set<std::string> TrackVariables(const SourceFile& f,
                                     const std::set<std::string>& type_names) {
  std::set<std::string> vars;
  for (size_t i = 0; i < f.toks.size(); ++i) {
    if (f.toks[i].kind != Tok::kIdent || !type_names.count(f.toks[i].text)) {
      continue;
    }
    size_t j = i + 1;
    j = SkipAngles(f, j);
    // Skip cv/ref/pointer decoration between type and name.
    while (IsPunct(f, j, "&") || IsPunct(f, j, "*") || IsIdent(f, j, "const")) {
      ++j;
    }
    if (j >= f.toks.size() || f.toks[j].kind != Tok::kIdent) continue;
    const std::string& name = f.toks[j].text;
    // Declarator must be followed by an initializer/terminator, so type
    // mentions inside expressions or nested templates don't register.
    if (IsPunct(f, j + 1, ";") || IsPunct(f, j + 1, "=") ||
        IsPunct(f, j + 1, "(") || IsPunct(f, j + 1, "{") ||
        IsPunct(f, j + 1, ",") || IsPunct(f, j + 1, ")")) {
      vars.insert(name);
    }
  }
  return vars;
}

// ---------------------------------------------------------------------------
// Determinism rules.

void RuleDetRand(const SourceFile& f, Sink* sink) {
  static const std::set<std::string> kTypeBanned = {
      "random_device", "mt19937",      "mt19937_64", "default_random_engine",
      "minstd_rand",   "minstd_rand0", "ranlux24",   "ranlux48",
  };
  static const std::set<std::string> kCallBanned = {
      "rand",  "srand",        "drand48",   "lrand48", "srand48",
      "time",  "gettimeofday", "localtime", "gmtime",  "ctime",
      "clock",
  };
  for (size_t i = 0; i < f.toks.size(); ++i) {
    if (f.toks[i].kind != Tok::kIdent) continue;
    const std::string& t = f.toks[i].text;
    if (kTypeBanned.count(t)) {
      sink->Report(kDetRand, f.toks[i].line,
                   "std::" + t +
                       " is nondeterministic across runs/platforms; derive "
                       "randomness from the seeded common/random.h "
                       "primitives");
      continue;
    }
    if (!kCallBanned.count(t) || !IsPunct(f, i + 1, "(")) continue;
    // Member calls (`x.time(...)`) and non-std qualified names are other
    // people's functions; `std::time` and unqualified calls are the libc
    // entrypoints being banned.
    if (i > 0) {
      const std::string& prev = f.toks[i - 1].text;
      if (prev == "." || prev == "->") continue;
      if (prev == "::" && !(i >= 2 && f.toks[i - 2].text == "std")) continue;
    }
    sink->Report(kDetRand, f.toks[i].line,
                 t + "() reads ambient entropy or wall-clock state; outputs "
                     "must be pure functions of (input, seed, config)");
  }
}

void RuleDetWallclock(const SourceFile& f, Sink* sink) {
  // common/timer.h is the one blessed wrapper; bench mains measure real
  // wall time by design (their wall_* fields are excluded from the
  // byte-identical BENCH comparisons).
  if (f.rel == "src/common/timer.h" || f.rel.rfind("bench/", 0) == 0) return;
  for (const IncludeRef& inc : f.includes) {
    if (inc.system && inc.target == "chrono") {
      sink->Report(kDetWallclock, inc.line,
                   "#include <chrono> outside common/timer.h; wall time must "
                   "flow through ampc::WallTimer, simulated time through the "
                   "cost model");
    }
  }
  static const std::set<std::string> kClockIdents = {
      "chrono", "steady_clock", "system_clock", "high_resolution_clock"};
  for (size_t i = 0; i < f.toks.size(); ++i) {
    if (f.toks[i].kind != Tok::kIdent || !kClockIdents.count(f.toks[i].text)) {
      continue;
    }
    sink->Report(kDetWallclock, f.toks[i].line,
                 "wall-clock read (" + f.toks[i].text +
                     ") outside common/timer.h; a stray clock read makes "
                     "simulated costs machine-dependent");
  }
}

void RuleDetUnorderedIter(const SourceFile& f, const Context& ctx,
                          Sink* sink) {
  if (!f.output_affecting) return;
  std::set<std::string> types = ctx.unordered_aliases;
  types.insert("unordered_map");
  types.insert("unordered_set");
  const std::set<std::string> vars = TrackVariables(f, types);
  if (vars.empty()) return;
  for (size_t i = 0; i + 2 < f.toks.size(); ++i) {
    if (!IsIdent(f, i, "for") || !IsPunct(f, i + 1, "(")) continue;
    // Find the range-for ':' at parenthesis depth 1.
    int depth = 0;
    size_t colon = 0, close = 0;
    for (size_t j = i + 1; j < f.toks.size(); ++j) {
      if (f.toks[j].kind != Tok::kPunct) continue;
      const std::string& t = f.toks[j].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") {
        if (--depth == 0) {
          close = j;
          break;
        }
      }
      if (t == ":" && depth == 1 && colon == 0) colon = j;
      if (t == ";") break;  // classic for loop
    }
    if (colon == 0 || close == 0) continue;
    // The range expression must be a plain variable / member chain (no
    // calls — rvalues and accessor results are someone else's problem).
    std::string last_ident;
    bool simple = true;
    for (size_t j = colon + 1; j < close; ++j) {
      const Token& t = f.toks[j];
      if (t.kind == Tok::kIdent) {
        last_ident = t.text;
      } else if (t.text != "." && t.text != "->" && t.text != "::" &&
                 t.text != "*" && t.text != "&") {
        simple = false;
        break;
      }
    }
    if (!simple || last_ident.empty() || !vars.count(last_ident)) continue;
    sink->Report(
        kDetUnorderedIter, f.toks[i].line,
        "range-iteration over unordered container '" + last_ident +
            "' in an output-affecting path: hash-table order varies by "
            "libstdc++ version and load factor; sort first or iterate a "
            "deterministic index");
  }
}

void RuleDetPtrKey(const SourceFile& f, Sink* sink) {
  for (size_t i = 2; i < f.toks.size(); ++i) {
    if (f.toks[i].kind != Tok::kIdent ||
        (f.toks[i].text != "map" && f.toks[i].text != "set")) {
      continue;
    }
    if (!IsPunct(f, i - 1, "::") || !IsIdent(f, i - 2, "std")) continue;
    if (!IsPunct(f, i + 1, "<")) continue;
    // Inspect the first template argument: if its last token is '*', the
    // key is a pointer and iteration order follows the allocator.
    int depth = 0;
    std::string last;
    for (size_t j = i + 1; j < std::min(f.toks.size(), i + 64); ++j) {
      const std::string& t = f.toks[j].text;
      if (f.toks[j].kind == Tok::kPunct) {
        if (t == "<" || t == "(") ++depth;
        if (t == ">" || t == ")") {
          if (--depth == 0) break;
        }
        if (t == "," && depth == 1) break;
        if (t == ";") break;
      }
      if (depth >= 1) last = t;
    }
    if (last == "*") {
      sink->Report(kDetPtrKey, f.toks[i].line,
                   "std::" + f.toks[i].text +
                       " keyed by a pointer: addresses differ per run, so "
                       "iteration order is nondeterministic; key by a stable "
                       "id instead");
    }
  }
}

// ---------------------------------------------------------------------------
// Cost-model purity rules.

void RuleCoreStoreDirect(const SourceFile& f, const Context& ctx,
                         Sink* sink) {
  if (!f.output_affecting) return;
  std::set<std::string> types = ctx.store_aliases;
  types.insert("ShardedStore");
  types.insert("Store");
  std::set<std::string> vars = TrackVariables(f, types);
  // `auto x = cluster.MakeStore<...>(...)` also mints a store.
  for (size_t i = 2; i < f.toks.size(); ++i) {
    if (!IsIdent(f, i, "MakeStore")) continue;
    for (size_t j = i; j-- > 0;) {
      const Token& t = f.toks[j];
      if (t.text == ";" || t.text == "{" || t.text == "}") break;
      if (t.text == "=" && j > 0 && f.toks[j - 1].kind == Tok::kIdent) {
        vars.insert(f.toks[j - 1].text);
        break;
      }
    }
  }
  if (vars.empty()) return;
  // The data-plane methods; metadata (capacity/ShardOf/version/...) is
  // free to read because it never represents remote traffic.
  static const std::set<std::string> kDataMethods = {"Lookup", "Put",
                                                     "Contains", "RecordBytes"};
  for (size_t i = 0; i + 3 < f.toks.size(); ++i) {
    if (f.toks[i].kind != Tok::kIdent || !vars.count(f.toks[i].text)) continue;
    if (!IsPunct(f, i + 1, ".") && !IsPunct(f, i + 1, "->")) continue;
    if (f.toks[i + 2].kind != Tok::kIdent ||
        !kDataMethods.count(f.toks[i + 2].text)) {
      continue;
    }
    if (!IsPunct(f, i + 3, "(")) continue;
    sink->Report(
        kCoreStoreDirect, f.toks[i].line,
        "direct " + f.toks[i].text + "." + f.toks[i + 2].text +
            "() bypasses cost charging; route reads through "
            "MachineContext::Lookup/LookupMany/LookupManyAsync/PullMany and "
            "writes through Cluster::RunKvWritePhase");
  }
}

void RuleCoreMakeStore(const SourceFile& f, Sink* sink) {
  if (!f.output_affecting) return;
  for (size_t i = 0; i < f.toks.size(); ++i) {
    if (f.toks[i].kind != Tok::kIdent) continue;
    const std::string& t = f.toks[i].text;
    if (t == "Placement" || t == "ShardMap") {
      sink->Report(kCoreMakeStore, f.toks[i].line,
                   t + " handled directly in an output-affecting path; key "
                       "placement must come from Cluster::MakeStore / "
                       "Cluster::MachineOf so cost charging and the shard "
                       "map stay consistent");
      continue;
    }
    // Direct construction `ShardedStore<V> name(...)` / `...name{...}`;
    // declarations initialized via MakeStore (`= cluster.MakeStore<...>`)
    // don't match because '=' follows the name.
    if (t == "ShardedStore") {
      size_t j = SkipAngles(f, i + 1);
      if (j == i + 1) continue;  // not a template use
      if (j < f.toks.size() && f.toks[j].kind == Tok::kIdent &&
          (IsPunct(f, j + 1, "(") || IsPunct(f, j + 1, "{"))) {
        sink->Report(kCoreMakeStore, f.toks[i].line,
                     "ShardedStore constructed directly; mint stores with "
                     "Cluster::MakeStore so caches, replicas and the shared "
                     "shard map are attached");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Convention rules.

// Counters that predate the zero-guard convention: they are charged on
// every code path (or pinned by the seed benches), so their presence in
// metric output is already part of every BENCH baseline.
const std::set<std::string>& GrandfatheredMetrics() {
  static const std::set<std::string> kSet = {
      "rounds",
      "shuffles",
      "shuffle_bytes",
      "shuffle_hot_machine_bytes",
      "kv_reads",
      "kv_writes",
      "kv_read_bytes",
      "kv_write_bytes",
      "kv_hot_machine_read_bytes",
      "kv_hot_machine_write_bytes",
      "kv_lookup_trips",
      "kv_batches",
      "kv_queries",
      "map_items",
      "cache_hits",
      "cache_misses",
  };
  return kSet;
}

void RuleMetricZeroGuard(const SourceFile& f, Sink* sink) {
  // The convention binds the library itself; tests and benches read
  // metrics far more than they write them.
  if (f.rel.rfind("src/", 0) != 0) return;
  // Lexical conditional tracking: a brace scope opened by if/else/switch
  // is "guarded"; so is the single statement of a braceless if. Loops
  // and plain blocks are not guards — they don't make the write
  // conditional on the feature being exercised.
  std::vector<uint8_t> scope_guarded;
  bool pending_guard = false;   // next '{' opens a guarded scope
  bool stmt_guard = false;      // inside a braceless-if statement
  for (size_t i = 0; i < f.toks.size(); ++i) {
    const Token& t = f.toks[i];
    if (t.kind == Tok::kIdent) {
      if (t.text == "if" || t.text == "switch") {
        const size_t after = SkipParens(f, i + 1);
        if (after > i + 1) {
          if (IsPunct(f, after, "{")) {
            pending_guard = true;
          } else {
            stmt_guard = true;
          }
        }
        continue;
      }
      if (t.text == "else") {
        if (IsPunct(f, i + 1, "{")) {
          pending_guard = true;
        } else if (!IsIdent(f, i + 1, "if")) {
          stmt_guard = true;  // braceless else branch
        }
        continue;
      }
    }
    if (t.kind == Tok::kPunct) {
      if (t.text == "{") {
        scope_guarded.push_back(pending_guard || stmt_guard ? 1 : 0);
        pending_guard = false;
        continue;
      }
      if (t.text == "}") {
        if (!scope_guarded.empty()) scope_guarded.pop_back();
        continue;
      }
      if (t.text == ";") {
        stmt_guard = false;
        continue;
      }
    }
    // `<receiver>.Add("name", ...)` — Metrics writes by convention.
    if (t.kind == Tok::kIdent && t.text == "Add" && i >= 1 &&
        (IsPunct(f, i - 1, ".") || IsPunct(f, i - 1, "->")) &&
        IsPunct(f, i + 1, "(") && i + 2 < f.toks.size() &&
        f.toks[i + 2].kind == Tok::kString) {
      const std::string& name = f.toks[i + 2].text;
      if (GrandfatheredMetrics().count(name)) continue;
      const bool guarded =
          stmt_guard || std::any_of(scope_guarded.begin(), scope_guarded.end(),
                                    [](uint8_t g) { return g != 0; });
      if (!guarded) {
        sink->Report(
            kMetricZeroGuard, t.line,
            "Metrics counter \"" + name +
                "\" written unconditionally: new counters must be zero-rate-"
                "guarded (if (delta != 0) ...) so an off-config's metric "
                "output stays byte-identical to a build without the feature");
      }
    }
  }
}

// Off-state vocabulary a knob's doc comment must use: the words PRs 4-9
// standardized for "this knob's off/default value reproduces the prior
// cost model".
bool HasOffStateMarker(const std::string& comment) {
  static const std::vector<std::string> kMarkers = {
      "bit-identical", "byte-identical", "bit-identically", "byte-identically",
      "identical",     "unchanged",      "disable",         "historical",
      "baseline",      "0 =",            "<= 0",            "cost-only",
      "ablation",      "default",        "inert",           "neutral",
  };
  const std::string low = Lower(comment);
  for (const std::string& m : kMarkers) {
    if (low.find(m) != std::string::npos) return true;
  }
  // "off" must stand alone as a word — substrings like "off-state",
  // "offset" or "trade-off" are not an off-state statement.
  for (size_t p = low.find("off"); p != std::string::npos;
       p = low.find("off", p + 1)) {
    const bool left_ok = p == 0 || !(IsIdentChar(low[p - 1]) ||
                                     low[p - 1] == '-');
    const size_t after = p + 3;
    const bool right_ok = after >= low.size() ||
                          !(IsIdentChar(low[after]) || low[after] == '-');
    if (left_ok && right_ok) return true;
  }
  return false;
}

struct ConfigKnob {
  std::string name;  // dotted for nested struct members
  int line = 0;      // declaration line in the config header
  bool documented = false;
};

// Parses `struct ClusterConfig { ... }` from the cluster header: every
// data member becomes a knob; members of locally defined nested structs
// (FaultConfig etc.) become dotted knobs under the outer field's name.
struct ParsedConfig {
  std::vector<ConfigKnob> knobs;
  bool found = false;
};

// Parses one struct body starting just past its '{'. Returns the index
// past the closing '};'. Nested struct definitions are parsed into
// `local_structs` keyed by type name; fields typed by a local struct
// expand into dotted knobs.
size_t ParseStructBody(
    const SourceFile& f, size_t i, const std::string& prefix,
    std::map<std::string, std::vector<ConfigKnob>>* local_structs,
    std::vector<ConfigKnob>* out) {
  while (i < f.toks.size() && !IsPunct(f, i, "}")) {
    // Nested struct definition.
    if (IsIdent(f, i, "struct") && i + 2 < f.toks.size() &&
        f.toks[i + 1].kind == Tok::kIdent && IsPunct(f, i + 2, "{")) {
      const std::string nested = f.toks[i + 1].text;
      std::vector<ConfigKnob> fields;
      i = ParseStructBody(f, i + 3, "", local_structs, &fields);
      (*local_structs)[nested] = std::move(fields);
      if (IsPunct(f, i, "}")) ++i;
      if (IsPunct(f, i, ";")) ++i;
      continue;
    }
    // One member declaration: scan to ';' at depth 0, find the name
    // (identifier before the first top-level '=' or before ';').
    size_t start = i;
    int depth = 0;
    size_t eq = 0, semi = 0;
    // Angle brackets are ignored on purpose: member declarations never
    // carry a ';' inside template arguments, while shift/comparison
    // operators in default initializers (`1 << 16`) would desync an
    // angle-depth count.
    for (size_t j = i; j < f.toks.size(); ++j) {
      const std::string& t = f.toks[j].text;
      if (f.toks[j].kind == Tok::kPunct) {
        if (t == "(" || t == "{") ++depth;
        if (t == ")" || t == "}") --depth;
        if (t == "=" && depth == 0 && eq == 0) eq = j;
        if (t == ";" && depth <= 0) {
          semi = j;
          break;
        }
      }
    }
    if (semi == 0) break;  // malformed; stop
    const size_t name_at = (eq != 0 ? eq : semi);
    if (name_at > start && f.toks[name_at - 1].kind == Tok::kIdent &&
        !IsIdent(f, start, "using") && !IsIdent(f, start, "static") &&
        !IsIdent(f, start, "friend")) {
      const std::string name = f.toks[name_at - 1].text;
      const std::string type = f.toks[start].text;
      const int line = f.toks[start].line;
      auto nested = local_structs->find(type);
      if (nested != local_structs->end()) {
        // Expand the nested struct's members as dotted knobs.
        for (const ConfigKnob& k : nested->second) {
          out->push_back({name + "." + k.name, k.line, k.documented});
        }
      } else {
        ConfigKnob knob;
        knob.name = prefix.empty() ? name : prefix + "." + name;
        knob.line = line;
        knob.documented = HasOffStateMarker(CommentAbove(f, line));
        out->push_back(knob);
      }
    }
    i = semi + 1;
  }
  return i;
}

ParsedConfig ParseClusterConfig(const SourceFile& f) {
  ParsedConfig parsed;
  for (size_t i = 0; i + 2 < f.toks.size(); ++i) {
    if (IsIdent(f, i, "struct") && IsIdent(f, i + 1, "ClusterConfig") &&
        IsPunct(f, i + 2, "{")) {
      std::map<std::string, std::vector<ConfigKnob>> local_structs;
      ParseStructBody(f, i + 3, "", &local_structs, &parsed.knobs);
      parsed.found = true;
      break;
    }
  }
  return parsed;
}

void RuleConfig(const Context& ctx, Sink* sink) {
  if (ctx.cluster_header == nullptr) return;
  const SourceFile& f = *ctx.cluster_header;
  const ParsedConfig parsed = ParseClusterConfig(f);
  if (!parsed.found) return;
  // The CLI dump's knob inventory: every string literal in ampc_cli.cc.
  std::set<std::string> dumped;
  if (ctx.cli_source != nullptr) {
    for (const Token& t : ctx.cli_source->toks) {
      if (t.kind == Tok::kString) dumped.insert(t.text);
    }
  }
  sink->SetFile(&f);
  for (const ConfigKnob& knob : parsed.knobs) {
    if (!knob.documented) {
      sink->Report(kConfigOffDoc, knob.line,
                   "ClusterConfig knob '" + knob.name +
                       "' has no documented off-state: say which value "
                       "reproduces the prior cost model bit-identically (or "
                       "mark the knob cost-only)");
    }
    if (ctx.cli_source != nullptr && !dumped.count(knob.name)) {
      sink->Report(kConfigDump, knob.line,
                   "ClusterConfig knob '" + knob.name +
                       "' missing from the ampc_cli --lint-config dump; add "
                       "it so config/doc drift stays mechanically checkable");
    }
  }
}

void RuleBenchGate(const SourceFile& f, Sink* sink) {
  if (f.rel.rfind("bench/micro_", 0) != 0 ||
      f.rel.size() < 3 || f.rel.substr(f.rel.size() - 3) != ".cc") {
    return;
  }
  for (size_t i = 0; i + 1 < f.toks.size(); ++i) {
    if (IsIdent(f, i, "return") && f.toks[i + 1].kind == Tok::kNumber &&
        f.toks[i + 1].text == "1") {
      return;
    }
    if (IsIdent(f, i, "exit") && IsPunct(f, i + 1, "(") &&
        i + 2 < f.toks.size() && f.toks[i + 2].kind == Tok::kNumber &&
        f.toks[i + 2].text != "0") {
      return;
    }
  }
  sink->Report(kBenchGate, 1,
               "microbench has no failing gate: every bench/micro_*.cc must "
               "have a `return 1` path so CI fails when its invariant "
               "regresses");
}

// Malformed annotations (and annotations naming unknown rules) are
// errors themselves: a suppression that silently fails to parse would
// look like a clean file.
void RuleBadSuppression(const SourceFile& f, Sink* sink) {
  for (const Suppression& s : f.supps) {
    if (s.valid) continue;
    std::string why;
    if (s.rule.empty()) {
      why = "annotation must be `ampc-lint: allow(rule-id): justification`";
    } else if (!KnownRule(s.rule)) {
      why = "unknown rule id '" + s.rule + "'";
    } else {
      why = "suppression of '" + s.rule +
            "' is missing its mandatory justification";
    }
    sink->Report(kBadSuppression, s.line, why);
  }
}

// ---------------------------------------------------------------------------
// File gathering and the include graph.

bool ScannableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".hpp" || ext == ".cpp";
}

bool SkippedDir(const std::string& name) {
  return name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
         name == ".git" || name == "third_party";
}

std::vector<std::string> GatherFiles(const Options& options) {
  std::vector<std::string> rels;
  const fs::path root(options.root);
  std::vector<std::string> seeds = options.paths;
  if (seeds.empty()) seeds = {"src", "tools", "bench", "tests"};
  for (const std::string& seed : seeds) {
    const fs::path p = root / seed;
    std::error_code ec;
    if (fs::is_regular_file(p, ec)) {
      rels.push_back(seed);
      continue;
    }
    if (!fs::is_directory(p, ec)) continue;
    for (fs::recursive_directory_iterator it(p, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_directory() && SkippedDir(it->path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file() || !ScannableExtension(it->path())) continue;
      rels.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  std::sort(rels.begin(), rels.end());
  rels.erase(std::unique(rels.begin(), rels.end()), rels.end());
  return rels;
}

// Resolves the in-tree include graph and marks output-affecting files:
// src/core|graph|baselines by path, plus src/ headers whose every
// (transitive) includer is output-affecting — a helper header used only
// by the algorithm layer inherits its determinism obligations.
int ResolveIncludeGraph(Context* ctx) {
  std::unordered_map<std::string, size_t> index;
  for (size_t i = 0; i < ctx->files.size(); ++i) {
    index[ctx->files[i].rel] = i;
  }
  std::vector<std::vector<size_t>> includers(ctx->files.size());
  int edges = 0;
  for (size_t i = 0; i < ctx->files.size(); ++i) {
    const SourceFile& f = ctx->files[i];
    const std::string dir = f.rel.find('/') == std::string::npos
                                ? ""
                                : f.rel.substr(0, f.rel.rfind('/'));
    for (const IncludeRef& inc : f.includes) {
      if (inc.system) continue;
      // Project convention: quoted includes are relative to src/ (or to
      // the including file's own directory for bench/tests helpers).
      size_t target = SIZE_MAX;
      for (const std::string& candidate :
           {"src/" + inc.target, dir.empty() ? inc.target : dir + "/" + inc.target,
            inc.target}) {
        auto it = index.find(candidate);
        if (it != index.end()) {
          target = it->second;
          break;
        }
      }
      if (target == SIZE_MAX) continue;
      includers[target].push_back(i);
      ++edges;
    }
  }
  auto by_path = [](const std::string& rel) {
    return rel.rfind("src/core/", 0) == 0 || rel.rfind("src/graph/", 0) == 0 ||
           rel.rfind("src/baselines/", 0) == 0;
  };
  for (SourceFile& f : ctx->files) f.output_affecting = by_path(f.rel);
  // Fixpoint: a src/ header with includers, all of them output-affecting,
  // becomes output-affecting itself.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < ctx->files.size(); ++i) {
      SourceFile& f = ctx->files[i];
      if (f.output_affecting || f.rel.rfind("src/", 0) != 0) continue;
      if (includers[i].empty()) continue;
      bool all = true;
      for (size_t inc : includers[i]) {
        if (!ctx->files[inc].output_affecting) {
          all = false;
          break;
        }
      }
      if (all) {
        f.output_affecting = true;
        changed = true;
      }
    }
  }
  return edges;
}

// ---------------------------------------------------------------------------
// JSON rendering.

void JsonEscape(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::string Diagnostic::ToString() const {
  std::string out = file + ":" + std::to_string(line) + ": ";
  out += suppressed ? "allowed" : "error";
  out += "[" + rule + "]: " + message;
  if (suppressed) out += " (justification: " + justification + ")";
  return out;
}

const std::vector<RuleInfo>& Rules() { return kRules; }

int Report::errors() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics) n += d.suppressed ? 0 : 1;
  return n;
}

std::string Report::ToJson() const {
  std::map<std::string, int> violations, suppressed_count;
  for (const Diagnostic& d : diagnostics) {
    (d.suppressed ? suppressed_count : violations)[d.rule]++;
  }
  std::string out = "{\n";
  out += "  \"files_scanned\": " + std::to_string(files_scanned) + ",\n";
  out += "  \"include_edges\": " + std::to_string(include_edges) + ",\n";
  out += "  \"errors\": " + std::to_string(errors()) + ",\n";
  out += "  \"suppressed\": " +
         std::to_string(static_cast<int>(diagnostics.size()) - errors()) +
         ",\n";
  out += "  \"rules\": [\n";
  for (size_t i = 0; i < kRules.size(); ++i) {
    const RuleInfo& r = kRules[i];
    out += "    {\"id\": \"";
    JsonEscape(r.id, &out);
    out += "\", \"summary\": \"";
    JsonEscape(r.summary, &out);
    out += "\", \"violations\": " + std::to_string(violations[r.id]) +
           ", \"suppressed\": " + std::to_string(suppressed_count[r.id]) + "}";
    out += i + 1 < kRules.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"diagnostics\": [\n";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    out += "    {\"file\": \"";
    JsonEscape(d.file, &out);
    out += "\", \"line\": " + std::to_string(d.line) + ", \"rule\": \"";
    JsonEscape(d.rule, &out);
    out += "\", \"suppressed\": ";
    out += d.suppressed ? "true" : "false";
    out += ", \"message\": \"";
    JsonEscape(d.message, &out);
    out += "\"";
    if (d.suppressed) {
      out += ", \"justification\": \"";
      JsonEscape(d.justification, &out);
      out += "\"";
    }
    out += "}";
    out += i + 1 < diagnostics.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

Report Run(const Options& options) {
  Report report;
  Context ctx;
  const fs::path root(options.root);
  for (const std::string& rel : GatherFiles(options)) {
    ctx.files.push_back(LexFile(root / rel, rel));
  }
  report.files_scanned = static_cast<int>(ctx.files.size());
  report.include_edges = ResolveIncludeGraph(&ctx);
  for (const SourceFile& f : ctx.files) {
    CollectAliases(f, &ctx);
    if (f.rel == "src/sim/cluster.h") ctx.cluster_header = &f;
    if (f.rel == "tools/ampc_cli.cc") ctx.cli_source = &f;
  }

  Sink sink(&report.diagnostics);
  for (const SourceFile& f : ctx.files) {
    sink.SetFile(&f);
    RuleDetRand(f, &sink);
    RuleDetWallclock(f, &sink);
    RuleDetUnorderedIter(f, ctx, &sink);
    RuleDetPtrKey(f, &sink);
    RuleCoreStoreDirect(f, ctx, &sink);
    RuleCoreMakeStore(f, &sink);
    RuleMetricZeroGuard(f, &sink);
    RuleBenchGate(f, &sink);
    RuleBadSuppression(f, &sink);
  }
  RuleConfig(ctx, &sink);

  std::sort(report.diagnostics.begin(), report.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return report;
}

}  // namespace ampc::lint
