// Social-network analysis: the workload family motivating the paper's
// evaluation (com-Orkut / Twitter / Friendster). On a synthetic social
// graph this example computes:
//   * connected components and the giant-component fraction,
//   * a maximal independent set (a spam-resistant seed set: no two seeds
//     are friends),
//   * a maximal matching and the induced 2-approximate vertex cover
//     (moderation targets covering every edge, Corollary 4.1),
// and compares the AMPC cost against the MPC baselines on the same data.
//
// Run:  ./build/examples/social_network_analysis
#include <cstdio>

#include "baselines/rootset_mis.h"
#include "core/connectivity.h"
#include "core/matching.h"
#include "core/mis.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "seq/greedy.h"

int main() {
  using namespace ampc;
  constexpr uint64_t kSeed = 7;

  // A 65k-vertex power-law network with ~1M friendships.
  graph::EdgeList edges = graph::GenerateRmat(16, 1'000'000, kSeed);
  graph::Graph g = graph::BuildGraph(edges);
  graph::GraphStats stats = graph::ComputeStats(g);
  std::printf("network: %s\n", stats.ToString().c_str());

  sim::ClusterConfig config;
  config.num_machines = 8;
  config.in_memory_threshold_arcs = g.num_arcs() / 100;

  // Community structure: component census.
  {
    sim::Cluster cluster(config);
    core::ConnectivityResult cc = core::AmpcConnectivity(cluster, edges);
    std::printf("components: %lld; giant component %.1f%% of users\n",
                static_cast<long long>(cc.num_components),
                100.0 * stats.largest_component / stats.num_nodes);
  }

  // Seed users for a campaign: no two seeds may know each other.
  int64_t seeds = 0;
  {
    sim::Cluster cluster(config);
    core::MisResult mis = core::AmpcMis(cluster, g, kSeed);
    for (uint8_t bit : mis.in_mis) seeds += bit;
    std::printf("independent seed set: %lld users (%.1f%%), "
                "found in %lld shuffle(s)\n",
                static_cast<long long>(seeds),
                100.0 * seeds / stats.num_nodes,
                static_cast<long long>(cluster.metrics().Get("shuffles")));
  }

  // Moderation: a vertex cover touching every friendship, via matching.
  {
    sim::Cluster cluster(config);
    core::MatchingResult mm = core::AmpcMatching(cluster, g);
    graph::EdgeList simple;
    simple.num_nodes = g.num_nodes();
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      for (graph::NodeId u : g.neighbors(v)) {
        if (v < u) simple.edges.push_back(graph::Edge{v, u});
      }
    }
    seq::MatchingResult as_edges = core::ToSeqMatching(simple, mm.partner);
    std::vector<graph::NodeId> cover =
        seq::VertexCoverFromMatching(simple, as_edges);
    std::printf("matching: %zu pairs; vertex cover (2-approx): %zu users "
                "covering all %zu friendships\n",
                as_edges.edges.size(), cover.size(), simple.edges.size());
  }

  // AMPC vs MPC on this network: same MIS, different cost.
  {
    sim::Cluster ampc_cluster(config);
    core::MisResult ampc = core::AmpcMis(ampc_cluster, g, kSeed);
    sim::Cluster mpc_cluster(config);
    baselines::RootsetMisResult mpc =
        baselines::MpcRootsetMis(mpc_cluster, g, kSeed);
    const bool identical = ampc.in_mis == mpc.in_mis;
    std::printf(
        "AMPC vs MPC MIS: identical output: %s | shuffles %lld vs %lld | "
        "simulated time %.2fs vs %.2fs (%.2fx)\n",
        identical ? "yes" : "NO (bug!)",
        static_cast<long long>(ampc_cluster.metrics().Get("shuffles")),
        static_cast<long long>(mpc_cluster.metrics().Get("shuffles")),
        ampc_cluster.SimSeconds(), mpc_cluster.SimSeconds(),
        mpc_cluster.SimSeconds() / ampc_cluster.SimSeconds());
  }
  return 0;
}
