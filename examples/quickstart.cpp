// Quickstart: build a graph, spin up a simulated AMPC cluster, and run
// the four headline algorithms — connected components, minimum spanning
// forest, maximal independent set and maximal matching — printing the
// results together with the model-level cost metrics (rounds, shuffles,
// KV communication) that the paper's evaluation is built on.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "core/connectivity.h"
#include "core/matching.h"
#include "core/mis.h"
#include "core/msf.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "seq/msf.h"

int main() {
  using namespace ampc;

  // 1. Make a graph. Any EdgeList works: load one with graph::ReadEdgeListText,
  //    or generate one. Here: a power-law RMAT graph, like a small social
  //    network.
  graph::EdgeList edges = graph::GenerateRmat(/*log2_nodes=*/14,
                                              /*num_edges=*/200'000,
                                              /*seed=*/1);
  graph::Graph g = graph::BuildGraph(edges);
  std::printf("graph: %s\n", graph::ComputeStats(g).ToString().c_str());

  // 2. Configure the simulated AMPC cluster: 8 logical machines, 8 worker
  //    threads each, RDMA-cost network, caching + multithreading on.
  sim::ClusterConfig config;
  config.num_machines = 8;
  config.threads_per_machine = 8;
  config.in_memory_threshold_arcs = g.num_arcs() / 100;

  // 3. Connected components in O(1) rounds (Theorem 1).
  {
    sim::Cluster cluster(config);
    core::ConnectivityResult cc = core::AmpcConnectivity(cluster, edges);
    std::printf("connectivity: %lld components, %lld shuffles, sim %.2fs\n",
                static_cast<long long>(cc.num_components),
                static_cast<long long>(cluster.metrics().Get("shuffles")),
                cluster.SimSeconds());
  }

  // 4. Minimum spanning forest with the paper's degree weighting.
  {
    sim::Cluster cluster(config);
    graph::WeightedEdgeList weighted = graph::MakeDegreeWeighted(edges, g);
    core::MsfResult msf = core::AmpcMsf(cluster, weighted);
    std::printf(
        "msf: %zu edges, total weight %.0f, %d contraction round(s), "
        "max pointer-jump chain %lld\n",
        msf.edges.size(), seq::TotalWeight(weighted, msf.edges), msf.rounds,
        static_cast<long long>(msf.max_jump_chain));
  }

  // 5. Maximal independent set (Figure 1) — one shuffle total.
  {
    sim::Cluster cluster(config);
    core::MisResult mis = core::AmpcMis(cluster, g, /*seed=*/42);
    int64_t size = 0;
    for (uint8_t bit : mis.in_mis) size += bit;
    std::printf("mis: %lld vertices, %lld shuffles, %lld KV reads "
                "(%lld cache hits)\n",
                static_cast<long long>(size),
                static_cast<long long>(cluster.metrics().Get("shuffles")),
                static_cast<long long>(cluster.metrics().Get("kv_reads")),
                static_cast<long long>(cluster.metrics().Get("cache_hits")));
  }

  // 6. Maximal matching (Theorem 2, O(1) rounds).
  {
    sim::Cluster cluster(config);
    core::MatchingResult mm = core::AmpcMatching(cluster, g);
    int64_t matched = 0;
    for (graph::NodeId p : mm.partner) matched += (p != graph::kInvalidNode);
    std::printf("matching: %lld matched vertices (%lld edges), sim %.2fs\n",
                static_cast<long long>(matched),
                static_cast<long long>(matched / 2), cluster.SimSeconds());
  }
  return 0;
}
