// Web-graph mining with the Section 5.7 extension algorithms: given a
// skewed web-like crawl, find its dense community core with k-core
// decomposition and its most authoritative pages with Monte-Carlo
// PageRank — both on the AMPC cluster, both with a single graph-staging
// shuffle, and both cross-checked against their MPC/exact counterparts.
//
// Run:  ./build/examples/web_mining
#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/mpc_pagerank.h"
#include "core/kcore.h"
#include "core/pagerank.h"
#include "graph/generators.h"
#include "seq/kcore.h"
#include "seq/pagerank.h"

int main() {
  using namespace ampc;

  // A web-like crawl: RMAT with heavy skew (default parameters mirror
  // the hub-dominated degree profile of the paper's CW/HL inputs).
  const graph::EdgeList edges = graph::GenerateRmat(16, 600'000, 2012);
  const graph::Graph g = graph::BuildGraph(edges);
  std::printf("crawl: %lld pages, %lld links, max degree %lld\n",
              static_cast<long long>(g.num_nodes()),
              static_cast<long long>(g.num_arcs()),
              static_cast<long long>(g.max_degree()));

  sim::ClusterConfig config;
  config.num_machines = 8;
  sim::Cluster cluster(config);

  // --- dense-community extraction ---------------------------------------
  const core::KCoreResult cores = core::AmpcKCore(cluster, g);
  const int32_t degeneracy = seq::Degeneracy(cores.coreness);
  const std::vector<graph::NodeId> community =
      seq::KCoreVertices(cores.coreness, degeneracy);
  std::printf(
      "k-core: degeneracy %d, innermost core has %zu pages "
      "(%d h-index rounds, %lld shuffles so far)\n",
      degeneracy, community.size(), cores.iterations,
      static_cast<long long>(cluster.metrics().Get("shuffles")));

  // --- authority scoring --------------------------------------------------
  core::PageRankMcOptions pr_options;
  pr_options.walks_per_node = 24;
  const core::PageRankMcResult pr =
      core::AmpcMonteCarloPageRank(cluster, g, pr_options);

  std::vector<graph::NodeId> by_rank(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) by_rank[v] = v;
  std::sort(by_rank.begin(), by_rank.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              return pr.rank[a] > pr.rank[b];
            });
  std::printf("top pages by Monte-Carlo PageRank (%lld walk steps):\n",
              static_cast<long long>(pr.total_steps));
  for (int i = 0; i < 5; ++i) {
    const graph::NodeId v = by_rank[i];
    std::printf("  #%d page %8u  rank %.5f  degree %lld  coreness %d\n",
                i + 1, v, pr.rank[v], static_cast<long long>(g.degree(v)),
                cores.coreness[v]);
  }

  // --- cross-checks ---------------------------------------------------------
  const std::vector<int32_t> exact_cores = seq::CoreDecomposition(g);
  std::printf("k-core equals sequential peeling: %s\n",
              cores.coreness == exact_cores ? "yes" : "NO");

  const seq::PageRankResult exact_pr = seq::PageRankExact(g);
  std::printf("PageRank L1 error vs exact power iteration: %.4f\n",
              seq::L1Distance(pr.rank, exact_pr.rank));
  int agree = 0;
  std::vector<graph::NodeId> exact_order(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) exact_order[v] = v;
  std::sort(exact_order.begin(), exact_order.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              return exact_pr.rank[a] > exact_pr.rank[b];
            });
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) agree += by_rank[i] == exact_order[j];
  }
  std::printf("top-5 overlap with exact ranking: %d/5\n", agree);

  std::printf(
      "total cost: %lld shuffles, %.2f simulated seconds — every "
      "iteration after graph staging ran against the DHT\n",
      static_cast<long long>(cluster.metrics().Get("shuffles")),
      cluster.SimSeconds());
  return 0;
}
