// Single-linkage hierarchical clustering via MSF — the application the
// paper highlights for its MSF algorithm ("one can use this algorithm
// together with a simple sorting step, and our connectivity algorithm to
// find any desired level of a single-linkage hierarchical clustering").
//
// Points are clustered by repeatedly merging the two closest clusters;
// equivalently, the clustering at distance threshold t is the set of
// connected components of the MSF edges with weight <= t. This example
// builds a k-NN-style similarity graph over synthetic 2-D points, runs
// the AMPC MSF, and prints the dendrogram cut at several levels.
//
// Run:  ./build/examples/single_linkage_clustering
#include <algorithm>
#include <cmath>
#include <map>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/clustering.h"

namespace {

struct Point {
  double x, y;
};

}  // namespace

int main() {
  using namespace ampc;

  // Synthetic data: four Gaussian blobs of 2500 points each.
  constexpr int kBlobs = 4;
  constexpr int kPerBlob = 2500;
  constexpr int kN = kBlobs * kPerBlob;
  const double centers[kBlobs][2] = {{0, 0}, {8, 0}, {0, 8}, {8, 8}};
  std::vector<Point> points(kN);
  Rng rng(11);
  for (int i = 0; i < kN; ++i) {
    const int blob = i / kPerBlob;
    // Box-Muller for unit Gaussians.
    const double u1 = rng.NextDouble() + 1e-12;
    const double u2 = rng.NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    points[i] = Point{centers[blob][0] + r * std::cos(6.28318530718 * u2),
                      centers[blob][1] + r * std::sin(6.28318530718 * u2)};
  }

  // Similarity graph: connect each point to its grid-bucket neighbors
  // (a cheap k-NN substitute that keeps the graph connected enough).
  graph::WeightedEdgeList edges;
  edges.num_nodes = kN;
  {
    // Bucket points on a coarse grid, connect within + adjacent buckets.
    const double cell = 0.5;
    std::vector<std::pair<int64_t, int>> keyed(kN);
    auto key_of = [&](const Point& p) {
      const int64_t gx = static_cast<int64_t>(std::floor(p.x / cell)) + 512;
      const int64_t gy = static_cast<int64_t>(std::floor(p.y / cell)) + 512;
      return gx * 4096 + gy;
    };
    for (int i = 0; i < kN; ++i) keyed[i] = {key_of(points[i]), i};
    std::sort(keyed.begin(), keyed.end());
    auto connect_range = [&](size_t a_begin, size_t a_end, size_t b_begin,
                             size_t b_end) {
      for (size_t a = a_begin; a < a_end; ++a) {
        for (size_t b = std::max(b_begin, a + 1); b < b_end; ++b) {
          const Point& p = points[keyed[a].second];
          const Point& q = points[keyed[b].second];
          const double d = std::hypot(p.x - q.x, p.y - q.y);
          if (d <= 2.0 * cell) {
            edges.edges.push_back(graph::WeightedEdge{
                static_cast<graph::NodeId>(keyed[a].second),
                static_cast<graph::NodeId>(keyed[b].second), d,
                static_cast<graph::EdgeId>(edges.edges.size())});
          }
        }
      }
    };
    // Same-bucket pairs plus pairs with the four "forward" neighbor
    // buckets (E, N, NE, SE) — every nearby pair is covered exactly once.
    size_t run_start = 0;
    std::map<int64_t, std::pair<size_t, size_t>> run_of_key;
    for (size_t i = 1; i <= keyed.size(); ++i) {
      if (i == keyed.size() || keyed[i].first != keyed[run_start].first) {
        run_of_key[keyed[run_start].first] = {run_start, i};
        run_start = i;
      }
    }
    constexpr int64_t kForward[4] = {1, 4096, 4096 + 1, 4096 - 1};
    for (const auto& [key, run] : run_of_key) {
      connect_range(run.first, run.second, run.first, run.second);
      for (int64_t delta : kForward) {
        const auto it = run_of_key.find(key + delta);
        if (it != run_of_key.end()) {
          connect_range(run.first, run.second, it->second.first,
                        it->second.second);
        }
      }
    }
  }
  std::printf("similarity graph: %d points, %zu edges\n", kN,
              edges.edges.size());

  // MSF + sort on the AMPC cluster = the single-linkage dendrogram.
  sim::ClusterConfig config;
  config.num_machines = 8;
  config.in_memory_threshold_arcs =
      std::max<int64_t>(1000, static_cast<int64_t>(edges.edges.size()) / 50);
  sim::Cluster cluster(config);
  core::Dendrogram dendrogram = core::AmpcSingleLinkage(cluster, edges);
  std::printf("dendrogram: %zu merges over %lld points, %lld shuffles, "
              "sim %.2fs\n",
              dendrogram.merges().size(),
              static_cast<long long>(dendrogram.num_nodes()),
              static_cast<long long>(cluster.metrics().Get("shuffles")),
              cluster.SimSeconds());

  // Cut the dendrogram at several levels and report cluster counts.
  for (double threshold : {0.3, 0.8, 1.5, 3.0}) {
    std::vector<graph::NodeId> labels = dendrogram.CutAtThreshold(threshold);
    // Count clusters with >= 50 points (ignore stragglers).
    std::vector<int64_t> sizes(labels.size(), 0);
    for (graph::NodeId label : labels) ++sizes[label];
    int64_t big = 0;
    for (int64_t s : sizes) big += (s >= 50);
    std::printf("cut at distance %.1f: %lld clusters (%lld with >=50 pts)\n",
                threshold,
                static_cast<long long>(core::CountClusters(labels)),
                static_cast<long long>(big));
  }
  std::printf("expected: the >=50-point count settles at %d blobs for "
              "mid-range cuts\n", kBlobs);
  return 0;
}
