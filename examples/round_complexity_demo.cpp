// The 1-vs-2-Cycle demonstration (paper Section 5.6): the canonical
// problem conjectured to need Omega(log n) MPC rounds is solved in O(1)
// adaptive rounds once machines can follow pointers through the DHT.
// This demo runs both sides over growing cycle sizes and prints how the
// MPC round count grows while the AMPC round count stays flat.
//
// Run:  ./build/examples/round_complexity_demo
#include <cstdio>

#include "baselines/local_contraction.h"
#include "core/one_vs_two_cycle.h"
#include "graph/generators.h"

int main() {
  using namespace ampc;
  constexpr uint64_t kSeed = 3;

  std::printf("%-12s %-8s %-12s %-12s %-12s %-10s\n", "k", "cycles",
              "AMPC-shuf", "MPC-shuf", "MPC-iters", "speedup");
  for (int64_t k : {20'000, 80'000, 320'000, 1'280'000}) {
    // Alternate between one 2k-cycle and two k-cycles to show both
    // answers resolve correctly.
    const bool two = (k / 20'000) % 2 == 0;
    graph::EdgeList list =
        two ? graph::GenerateDoubleCycle(k) : graph::GenerateCycle(2 * k);
    graph::Graph g = graph::BuildGraph(list);

    sim::ClusterConfig config;
    config.num_machines = 8;
    // Fixed threshold (like the paper's fixed 5e7-edge cutoff) so the
    // MPC iteration count grows with the input.
    config.in_memory_threshold_arcs = 8'000;

    sim::Cluster ampc_cluster(config);
    core::CycleOptions options;
    options.seed = kSeed;
    core::CycleResult ampc = core::AmpcOneVsTwoCycle(ampc_cluster, g, options);

    sim::Cluster mpc_cluster(config);
    baselines::LocalContractionResult mpc =
        baselines::MpcLocalContractionCC(mpc_cluster, list, kSeed);

    if (ampc.num_cycles != static_cast<int>(mpc.num_components)) {
      std::printf("MISMATCH at k=%lld!\n", static_cast<long long>(k));
      return 1;
    }
    std::printf("%-12lld %-8d %-12lld %-12lld %-12d %-10.2f\n",
                static_cast<long long>(k), ampc.num_cycles,
                static_cast<long long>(
                    ampc_cluster.metrics().Get("shuffles")),
                static_cast<long long>(mpc_cluster.metrics().Get("shuffles")),
                mpc.iterations,
                mpc_cluster.SimSeconds() / ampc_cluster.SimSeconds());
  }
  std::printf(
      "\nAMPC shuffles stay constant while MPC shuffles grow ~log(k): the\n"
      "1-vs-2-Cycle conjecture's Omega(log n) wall, sidestepped by DHT\n"
      "random access (paper Sections 1 and 5.6).\n");
  return 0;
}
