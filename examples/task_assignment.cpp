// Weighted task assignment with the Corollary 4.1 algorithms: workers and
// tasks form a bipartite affinity graph; AmpcApproxMaxWeightMatching
// assigns tasks in one maximal-matching call (weight classes become the
// permutation's major key), and AmpcVertexCover prices the assignment's
// bottleneck set. The paper motivates exactly this use: "maximum weight
// matching is an important subroutine in balanced partitioning and
// hierarchical clustering" (Section 4).
//
// Run:  ./build/examples/task_assignment
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/approx.h"
#include "graph/graph.h"
#include "seq/greedy.h"

int main() {
  using namespace ampc;

  // 3000 workers x 3000 tasks; each worker bids on ~8 tasks with an
  // affinity score that is heavy-tailed (a few dream assignments, many
  // mediocre ones).
  constexpr int64_t kWorkers = 3000;
  constexpr int64_t kTasks = 3000;
  graph::WeightedEdgeList affinity;
  affinity.num_nodes = kWorkers + kTasks;
  Rng rng(7);
  for (int64_t w = 0; w < kWorkers; ++w) {
    const int bids = 4 + static_cast<int>(rng.NextBelow(9));
    for (int b = 0; b < bids; ++b) {
      const int64_t t = kWorkers + static_cast<int64_t>(rng.NextBelow(kTasks));
      // Pareto-ish scores in [1, ~1000).
      const double score = 1.0 / (1e-3 + rng.NextDouble());
      affinity.edges.push_back(graph::WeightedEdge{
          static_cast<graph::NodeId>(w), static_cast<graph::NodeId>(t),
          score, static_cast<graph::EdgeId>(affinity.edges.size())});
    }
  }
  std::printf("affinity graph: %lld workers, %lld tasks, %zu bids\n",
              static_cast<long long>(kWorkers),
              static_cast<long long>(kTasks), affinity.edges.size());

  sim::ClusterConfig config;
  config.num_machines = 8;
  sim::Cluster cluster(config);

  core::WeightMatchingOptions options;
  options.epsilon = 0.1;
  const core::WeightMatchingResult assignment =
      core::AmpcApproxMaxWeightMatching(cluster, affinity, options);

  int64_t assigned = 0;
  for (int64_t w = 0; w < kWorkers; ++w) {
    assigned += assignment.partner[w] != graph::kInvalidNode;
  }
  std::printf(
      "assignment: %lld workers matched, total affinity %.1f "
      "(%lld weight classes, %lld shuffles, %.2f sim seconds)\n",
      static_cast<long long>(assigned), assignment.total_weight,
      static_cast<long long>(assignment.num_buckets),
      static_cast<long long>(cluster.metrics().Get("shuffles")),
      cluster.SimSeconds());

  // Reference point: plain greedy by descending exact weight (the
  // sequential 2-approximation). The bucketed distributed answer should
  // land within ~(1 + eps) of it.
  const seq::MatchingResult greedy = seq::GreedyWeightMatching(affinity);
  double greedy_weight = 0;
  for (const graph::EdgeId id : greedy.edges) {
    greedy_weight += affinity.edges[id].w;
  }
  std::printf("sequential greedy-by-weight reference: %.1f (ratio %.3f)\n",
              greedy_weight, assignment.total_weight / greedy_weight);

  // Bottleneck analysis: a 2-approximate vertex cover of the *unmatched*
  // demand shows where adding capacity helps most.
  const graph::EdgeList plain = graph::StripWeights(affinity);
  sim::Cluster cover_cluster(config);
  const core::VertexCoverResult cover =
      core::AmpcVertexCover(cover_cluster, graph::BuildGraph(plain));
  std::printf(
      "bottleneck set: %lld vertices cover every bid "
      "(any exact cover needs >= %lld)\n",
      static_cast<long long>(cover.size),
      static_cast<long long>(cover.size / 2));
  return 0;
}
