// The Section 5.1 / 5.7 systems argument, end to end: run the same MIS
// job with the AMPC engine and the MPC baseline, take their *measured*
// round traces, and project expected completion times in a shared data
// center where machines are preempted — under Flume-style per-round
// fault tolerance and under a hypothetical in-memory engine that loses
// everything on any preemption.
//
// Run:  ./build/examples/preemption_resilience
#include <cstdio>
#include <vector>

#include "baselines/rootset_mis.h"
#include "core/mis.h"
#include "graph/generators.h"
#include "sim/cluster.h"
#include "sim/faults.h"

int main() {
  using namespace ampc;

  const graph::EdgeList edges = graph::GenerateRmat(17, 1'500'000, 99);
  const graph::Graph g = graph::BuildGraph(edges);
  std::printf("input: %lld vertices, %lld arcs\n",
              static_cast<long long>(g.num_nodes()),
              static_cast<long long>(g.num_arcs()));

  sim::ClusterConfig config;
  config.num_machines = 8;
  config.in_memory_threshold_arcs = g.num_arcs() / 50;

  sim::Cluster ampc_cluster(config);
  core::AmpcMis(ampc_cluster, g, 99);
  sim::Cluster mpc_cluster(config);
  baselines::MpcRootsetMis(mpc_cluster, g, 99);

  std::printf("fault-free: AMPC %.2fs over %zu rounds | MPC %.2fs over "
              "%zu rounds\n",
              ampc_cluster.SimSeconds(), ampc_cluster.round_log().size(),
              mpc_cluster.SimSeconds(), mpc_cluster.round_log().size());

  std::printf("\n%-28s %10s %10s %12s\n", "preemption rate (per machine)",
              "AMPC-FT", "MPC-FT", "MPC-inmem");
  for (const double rate : {0.002, 0.02, 0.1, 0.3}) {
    sim::PreemptionModel model;
    model.rate_per_machine_sec = rate;
    model.machines = config.num_machines;
    const double ampc_ft = sim::ExpectedCompletionSeconds(
        ampc_cluster.round_log(), model,
        sim::RecoveryDiscipline::kFaultTolerant);
    const double mpc_ft = sim::ExpectedCompletionSeconds(
        mpc_cluster.round_log(), model,
        sim::RecoveryDiscipline::kFaultTolerant);
    const double mpc_restart = sim::ExpectedCompletionSeconds(
        mpc_cluster.round_log(), model,
        sim::RecoveryDiscipline::kInMemory);
    std::printf("%-28.3f %9.2fs %9.2fs %11.2fs\n", rate, ampc_ft, mpc_ft,
                mpc_restart);
  }

  // Sanity: the analytic projection agrees with brute-force simulation.
  sim::PreemptionModel check;
  check.rate_per_machine_sec = 0.1;
  check.machines = config.num_machines;
  const sim::PreemptionTrialStats trials = sim::SimulatePreemptions(
      mpc_cluster.round_log(), check,
      sim::RecoveryDiscipline::kFaultTolerant, 4000, 1);
  const double analytic = sim::ExpectedCompletionSeconds(
      mpc_cluster.round_log(), check,
      sim::RecoveryDiscipline::kFaultTolerant);
  std::printf(
      "\nMonte-Carlo check @0.1/s: simulated %.2fs vs analytic %.2fs "
      "(%.1f preemptions per run on average)\n",
      trials.mean_seconds, analytic, trials.mean_preemptions);
  std::printf(
      "takeaway: fault tolerance caps the damage to one round; the AMPC "
      "engine's shorter trace additionally shrinks the exposed surface.\n");
  return 0;
}
