// Tests for the MPC baselines, including the paper's key methodological
// property: given the same seed, the AMPC and MPC implementations compute
// the *same* MIS / matching / MSF (Section 5.3, "By specifying the same
// source of randomness, both the MPC and AMPC algorithms compute the same
// MIS").
#include <gtest/gtest.h>

#include "baselines/boruvka.h"
#include "baselines/local_contraction.h"
#include "baselines/rootset_matching.h"
#include "baselines/rootset_mis.h"
#include "core/matching.h"
#include "core/mis.h"
#include "core/msf.h"
#include "core/priorities.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "seq/greedy.h"
#include "seq/msf.h"

namespace ampc::baselines {
namespace {

using graph::EdgeList;
using graph::Graph;
using graph::WeightedEdgeList;

sim::ClusterConfig SmallConfig() {
  sim::ClusterConfig config;
  config.num_machines = 4;
  config.in_memory_threshold_arcs = 64;  // force distributed phases
  return config;
}

class BaselineSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BaselineSweep, RootsetMisEqualsGreedyAndAmpc) {
  const uint64_t seed = GetParam();
  EdgeList list = graph::GenerateRmat(9, 2500, seed);
  Graph g = graph::BuildGraph(list);

  sim::Cluster mpc(SmallConfig());
  RootsetMisResult rootset = MpcRootsetMis(mpc, g, seed);
  EXPECT_GE(rootset.phases, 1);

  std::vector<uint64_t> ranks = core::AllVertexRanks(g.num_nodes(), seed);
  EXPECT_EQ(rootset.in_mis, seq::GreedyMis(g, ranks));

  sim::Cluster ampc(SmallConfig());
  EXPECT_EQ(rootset.in_mis, core::AmpcMis(ampc, g, seed).in_mis);

  // Table 3's shape: MPC uses 2 shuffles per phase (plus the gather),
  // AMPC exactly one.
  EXPECT_GE(mpc.metrics().Get("shuffles"), 2 * rootset.phases);
  EXPECT_EQ(ampc.metrics().Get("shuffles"), 1);
}

TEST_P(BaselineSweep, RootsetMatchingEqualsGreedyAndAmpc) {
  const uint64_t seed = GetParam();
  EdgeList list = graph::GenerateRmat(9, 2500, seed);
  Graph g = graph::BuildGraph(list);

  sim::Cluster mpc(SmallConfig());
  RootsetMatchingResult rootset = MpcRootsetMatching(mpc, g, seed);

  sim::Cluster ampc(SmallConfig());
  core::MatchingOptions options;
  options.seed = seed;
  core::MatchingResult direct = core::AmpcMatching(ampc, g, options);
  EXPECT_EQ(rootset.partner, direct.partner);

  // Validity on the simple graph.
  EdgeList simple;
  simple.num_nodes = g.num_nodes();
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (graph::NodeId u : g.neighbors(v)) {
      if (v < u) simple.edges.push_back(graph::Edge{v, u});
    }
  }
  seq::MatchingResult as_edges = core::ToSeqMatching(simple, rootset.partner);
  EXPECT_TRUE(seq::IsMaximalMatching(simple, as_edges.edges));
}

TEST_P(BaselineSweep, BoruvkaEqualsKruskalAndAmpcMsf) {
  const uint64_t seed = GetParam();
  EdgeList raw = graph::GenerateRmat(9, 2500, seed);
  WeightedEdgeList list = graph::MakeRandomWeighted(raw, seed ^ 0x9);

  sim::Cluster mpc(SmallConfig());
  BoruvkaResult boruvka = MpcBoruvkaMsf(mpc, list, seed);
  EXPECT_EQ(boruvka.edges, seq::KruskalMsf(list));

  sim::Cluster ampc(SmallConfig());
  core::MsfOptions options;
  options.seed = seed;
  EXPECT_EQ(boruvka.edges, core::AmpcMsf(ampc, list, options).edges);

  // Borůvka needs 3 shuffles per phase and many phases; AMPC MSF uses 5
  // per round with round count ~1 — the Table 3 gap.
  EXPECT_GE(mpc.metrics().Get("shuffles"), 3 * boruvka.phases);
  EXPECT_GT(mpc.metrics().Get("shuffles"),
            ampc.metrics().Get("shuffles"));
}

TEST_P(BaselineSweep, LocalContractionMatchesBfsComponents) {
  const uint64_t seed = GetParam();
  EdgeList list = graph::GenerateErdosRenyi(400, 700, seed);  // fragmented
  sim::Cluster cluster(SmallConfig());
  LocalContractionResult r = MpcLocalContractionCC(cluster, list, seed);
  Graph g = graph::BuildGraph(list);
  std::vector<graph::NodeId> oracle = graph::SequentialComponents(g);
  EXPECT_TRUE(graph::SamePartition(r.component, oracle));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(LocalContractionTest, CycleShrinkFactorNearPaperObservation) {
  // Section 5.6: the MPC algorithm shrinks the cycle by ~2.59-3x per
  // iteration; local rank minima on a cycle survive with density 1/3.
  EdgeList list = graph::GenerateCycle(100000);
  sim::ClusterConfig config = SmallConfig();
  config.in_memory_threshold_arcs = 2000;
  sim::Cluster cluster(config);
  LocalContractionResult r = MpcLocalContractionCC(cluster, list, 7);
  EXPECT_EQ(r.num_components, 1);
  // 100000 -> 2000 at ~3x per iteration needs ~4; allow 3..10.
  EXPECT_GE(r.iterations, 3);
  EXPECT_LE(r.iterations, 10);
}

TEST(LocalContractionTest, HandlesEdgelessGraph) {
  EdgeList list;
  list.num_nodes = 5;
  sim::Cluster cluster(SmallConfig());
  LocalContractionResult r = MpcLocalContractionCC(cluster, list, 1);
  EXPECT_EQ(r.num_components, 5);
}

TEST(RootsetMisTest, InMemoryOnlyPathWorks) {
  sim::ClusterConfig config;
  config.num_machines = 2;
  config.in_memory_threshold_arcs = 1 << 20;
  sim::Cluster cluster(config);
  EdgeList list = graph::GenerateErdosRenyi(100, 300, 3);
  Graph g = graph::BuildGraph(list);
  RootsetMisResult r = MpcRootsetMis(cluster, g, 3);
  EXPECT_EQ(r.phases, 0);
  std::vector<uint64_t> ranks = core::AllVertexRanks(g.num_nodes(), 3);
  EXPECT_EQ(r.in_mis, seq::GreedyMis(g, ranks));
}

TEST(BoruvkaTest, DisconnectedInputGivesForest) {
  EdgeList raw = graph::GenerateDoubleCycle(100);
  WeightedEdgeList list = graph::MakeRandomWeighted(raw, 5);
  sim::Cluster cluster(SmallConfig());
  BoruvkaResult r = MpcBoruvkaMsf(cluster, list, 5);
  EXPECT_TRUE(seq::IsSpanningForest(list, r.edges));
  EXPECT_EQ(r.edges.size(), 198u);  // two trees of 99 edges each
}

}  // namespace
}  // namespace ampc::baselines
