#include "trees/lca.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"

namespace ampc::trees {
namespace {

using graph::kInvalidNode;
using graph::NodeId;
using graph::WeightedEdge;

std::vector<WeightedEdge> ToWeighted(const graph::EdgeList& list) {
  std::vector<WeightedEdge> edges;
  for (size_t i = 0; i < list.edges.size(); ++i) {
    edges.push_back(WeightedEdge{list.edges[i].u, list.edges[i].v, 1.0,
                                 static_cast<graph::EdgeId>(i)});
  }
  return edges;
}

// Reference LCA by walking parents.
NodeId NaiveLca(const RootedForest& f, NodeId u, NodeId v) {
  if (!f.SameTree(u, v)) return kInvalidNode;
  while (u != v) {
    if (f.depth[u] >= f.depth[v]) {
      u = f.parent[u];
    } else {
      v = f.parent[v];
    }
  }
  return u;
}

TEST(LcaTest, SmallBinaryTree) {
  // 0 has children {1, 2}; 1 has children {3, 4}.
  std::vector<WeightedEdge> edges = {
      {0, 1, 1, 0}, {0, 2, 1, 1}, {1, 3, 1, 2}, {1, 4, 1, 3}};
  RootedForest f = BuildRootedForest(5, edges);
  LcaOracle lca(f);
  EXPECT_EQ(lca.Lca(3, 4), 1u);
  EXPECT_EQ(lca.Lca(3, 2), 0u);
  EXPECT_EQ(lca.Lca(1, 3), 1u);
  EXPECT_EQ(lca.Lca(0, 4), 0u);
  EXPECT_EQ(lca.Lca(2, 2), 2u);
}

TEST(LcaTest, DifferentTreesReturnInvalid) {
  std::vector<WeightedEdge> edges = {{0, 1, 1, 0}, {2, 3, 1, 1}};
  RootedForest f = BuildRootedForest(4, edges);
  LcaOracle lca(f);
  EXPECT_EQ(lca.Lca(0, 2), kInvalidNode);
  EXPECT_EQ(lca.Lca(1, 3), kInvalidNode);
  EXPECT_EQ(lca.Lca(0, 1), 0u);
}

TEST(LcaTest, TourLengthIsTwoNMinusTrees) {
  std::vector<WeightedEdge> edges = {{0, 1, 1, 0}, {2, 3, 1, 1}};
  RootedForest f = BuildRootedForest(5, edges);  // trees: {0,1},{2,3},{4}
  LcaOracle lca(f);
  EXPECT_EQ(lca.TourLength(), 2 * 5 - 3);
}

class LcaRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LcaRandomTest, MatchesNaiveOnRandomTrees) {
  const uint64_t seed = GetParam();
  graph::EdgeList tree = graph::GenerateRandomTree(400, seed);
  RootedForest f = BuildRootedForest(400, ToWeighted(tree));
  LcaOracle lca(f);
  Rng rng(seed * 31 + 1);
  for (int q = 0; q < 500; ++q) {
    const NodeId u = static_cast<NodeId>(rng.NextBelow(400));
    const NodeId v = static_cast<NodeId>(rng.NextBelow(400));
    EXPECT_EQ(lca.Lca(u, v), NaiveLca(f, u, v)) << u << "," << v;
  }
}

TEST_P(LcaRandomTest, MatchesNaiveOnRandomForests) {
  const uint64_t seed = GetParam();
  graph::EdgeList forest = graph::GenerateRandomForest(300, 7, seed);
  RootedForest f = BuildRootedForest(300, ToWeighted(forest));
  LcaOracle lca(f);
  Rng rng(seed * 17 + 3);
  for (int q = 0; q < 500; ++q) {
    const NodeId u = static_cast<NodeId>(rng.NextBelow(300));
    const NodeId v = static_cast<NodeId>(rng.NextBelow(300));
    EXPECT_EQ(lca.Lca(u, v), NaiveLca(f, u, v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LcaRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ampc::trees
