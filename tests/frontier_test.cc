// Frontier-engine unit tests: the atomic bitmap (concurrent set /
// test-and-set with popcount accounting — run under TSAN in CI), the
// sliding-queue window semantics backing sparse frontiers, the
// alpha/beta direction-switching hysteresis, and push-vs-pull value
// parity plus cost separation on a pinned graph.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/bitmap.h"
#include "common/frontier.h"
#include "core/kcore.h"
#include "graph/generators.h"
#include "sim/cluster.h"

namespace ampc {
namespace {

TEST(AtomicBitmapTest, SetTestAndCount) {
  AtomicBitmap bits(200);
  EXPECT_EQ(bits.num_bits(), 200);
  EXPECT_EQ(bits.Count(), 0);
  for (int64_t i = 0; i < 200; i += 3) bits.Set(i);
  for (int64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(bits.Test(i), i % 3 == 0) << i;
  }
  EXPECT_EQ(bits.Count(), (200 + 2) / 3);
  bits.Clear();
  EXPECT_EQ(bits.Count(), 0);
  EXPECT_FALSE(bits.Test(0));
}

TEST(AtomicBitmapTest, TestAndSetReportsFirstWin) {
  AtomicBitmap bits(64);
  EXPECT_TRUE(bits.TestAndSet(17));
  EXPECT_FALSE(bits.TestAndSet(17));
  EXPECT_TRUE(bits.Test(17));
  EXPECT_EQ(bits.Count(), 1);
}

TEST(AtomicBitmapTest, SizeBytesRoundsUp) {
  EXPECT_EQ(AtomicBitmap(1).SizeBytes(), 1);
  EXPECT_EQ(AtomicBitmap(8).SizeBytes(), 1);
  EXPECT_EQ(AtomicBitmap(9).SizeBytes(), 2);
  EXPECT_EQ(AtomicBitmap(64).SizeBytes(), 8);
  EXPECT_EQ(AtomicBitmap(65).SizeBytes(), 9);
}

TEST(AtomicBitmapTest, ConcurrentSetIsExact) {
  // 8 threads race over interleaved strides of the same words; the OR
  // must lose no bit (TSAN checks the memory ordering in CI).
  constexpr int64_t kBits = 1 << 16;
  constexpr int kThreads = 8;
  AtomicBitmap bits(kBits);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bits, t] {
      for (int64_t i = t; i < kBits; i += kThreads) bits.Set(i);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(bits.Count(), kBits);
}

TEST(AtomicBitmapTest, ConcurrentTestAndSetElectsOneWinner) {
  // Every bit is contended by all threads; exactly one fetch_or may
  // observe it clear.
  constexpr int64_t kBits = 4096;
  constexpr int kThreads = 8;
  AtomicBitmap bits(kBits);
  std::atomic<int64_t> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int64_t i = 0; i < kBits; ++i) {
        if (bits.TestAndSet(i)) wins.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(wins.load(), kBits);
  EXPECT_EQ(bits.Count(), kBits);
}

TEST(SlidingQueueTest, WindowSemantics) {
  SlidingQueue queue(10);
  EXPECT_TRUE(queue.WindowEmpty());
  queue.Push(3);
  queue.Push(1);
  queue.Push(4);
  // Pushes land beyond the window until it slides.
  EXPECT_TRUE(queue.WindowEmpty());
  EXPECT_EQ(queue.PendingSize(), 3);
  queue.SlideWindow();
  ASSERT_EQ(queue.WindowSize(), 3);
  EXPECT_EQ(queue.Window()[0], 3);
  EXPECT_EQ(queue.Window()[1], 1);
  EXPECT_EQ(queue.Window()[2], 4);
  EXPECT_EQ(queue.PendingSize(), 0);
  // The next generation accumulates while the current window stays
  // readable, then replaces it wholesale.
  queue.Push(9);
  EXPECT_EQ(queue.WindowSize(), 3);
  queue.SlideWindow();
  ASSERT_EQ(queue.WindowSize(), 1);
  EXPECT_EQ(queue.Window()[0], 9);
  queue.SlideWindow();
  EXPECT_TRUE(queue.WindowEmpty());
  EXPECT_EQ(queue.TotalPushed(), 4);
  queue.Reset();
  EXPECT_TRUE(queue.WindowEmpty());
  EXPECT_EQ(queue.TotalPushed(), 0);
}

TEST(FrontierPolicyTest, PureModesNeverSwitch) {
  FrontierPolicy sparse(FrontierMode::kSparse, 15, 18, 1000, 10000);
  FrontierPolicy dense(FrontierMode::kDense, 15, 18, 1000, 10000);
  for (int64_t size : {int64_t{1}, int64_t{500}, int64_t{1000}}) {
    EXPECT_FALSE(sparse.UseDense(size, size * 10));
    EXPECT_TRUE(dense.UseDense(size, size * 10));
  }
}

TEST(FrontierPolicyTest, HybridGrowsDenseAndShrinksSparse) {
  // n=1800, m=18000, alpha=15, beta=18: dense above 1200 frontier
  // edges, sparse again below 100 vertices.
  FrontierPolicy policy(FrontierMode::kHybrid, 15, 18, 1800, 18000);
  EXPECT_FALSE(policy.UseDense(30, 300));     // small: push
  EXPECT_TRUE(policy.UseDense(200, 2000));    // heavy: pull
  EXPECT_FALSE(policy.UseDense(50, 500));     // collapsed: push again
}

TEST(FrontierPolicyTest, HysteresisBandDoesNotFlap) {
  // Between the two thresholds (size >= n/beta but edges <= m/alpha)
  // the policy must keep whichever representation it already has —
  // alternating calls in the band never alternate the answer.
  FrontierPolicy policy(FrontierMode::kHybrid, 15, 18, 1800, 18000);
  // In-band from the sparse side: stays sparse forever.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(policy.UseDense(600, 1000)) << i;
  }
  // Cross into dense, then hold the same in-band point: stays dense.
  EXPECT_TRUE(policy.UseDense(600, 6000));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(policy.UseDense(600, 1000)) << i;
  }
  // Only dropping below n/beta releases it.
  EXPECT_FALSE(policy.UseDense(99, 1000));
}

TEST(FrontierPolicyTest, NonPositiveThresholdsFallBackToDefaults) {
  FrontierPolicy policy(FrontierMode::kHybrid, 0, -3, 1800, 18000);
  // Same numbers as HybridGrowsDenseAndShrinksSparse (defaults 15/18).
  EXPECT_FALSE(policy.UseDense(30, 300));
  EXPECT_TRUE(policy.UseDense(200, 2000));
  EXPECT_FALSE(policy.UseDense(50, 500));
}

TEST(FrontierModeTest, NamesRoundTrip) {
  for (const FrontierMode mode :
       {FrontierMode::kSparse, FrontierMode::kDense, FrontierMode::kHybrid}) {
    FrontierMode parsed;
    ASSERT_TRUE(ParseFrontierMode(FrontierModeName(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
  FrontierMode parsed;
  EXPECT_FALSE(ParseFrontierMode("beamer", &parsed));
}

sim::Cluster MakeCluster(FrontierMode mode, double beta = 0) {
  sim::ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  config.frontier.mode = mode;
  if (beta > 0) config.frontier.beta = beta;
  return sim::Cluster(config);
}

TEST(FrontierPullTest, PullMatchesPushOnPinnedGraph) {
  // Same graph, all three modes: identical coreness and iteration
  // count, while the dense run replaces per-vertex lookup trips with
  // bitmap broadcasts (the whole point of the pull representation).
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(600, 3600, 7));

  sim::Cluster sparse = MakeCluster(FrontierMode::kSparse);
  const core::KCoreResult push = core::AmpcKCore(sparse, g);
  EXPECT_EQ(sparse.metrics().Get("frontier_dense_rounds"), 0);

  sim::Cluster dense = MakeCluster(FrontierMode::kDense);
  const core::KCoreResult pull = core::AmpcKCore(dense, g);
  EXPECT_EQ(pull.coreness, push.coreness);
  EXPECT_EQ(pull.iterations, push.iterations);
  EXPECT_GT(dense.metrics().Get("frontier_dense_rounds"), 0);
  EXPECT_GT(dense.metrics().Get("frontier_broadcast_bytes"), 0);
  EXPECT_LT(dense.metrics().Get("kv_lookup_trips"),
            sparse.metrics().Get("kv_lookup_trips"));

  // Peeling shrinks this frontier to 398 vertices at its smallest, so
  // widen the sparse threshold (below n/1.5 = 400) to make hybrid
  // genuinely exercise both representations on this graph.
  sim::Cluster hybrid = MakeCluster(FrontierMode::kHybrid, /*beta=*/1.5);
  const core::KCoreResult mixed = core::AmpcKCore(hybrid, g);
  EXPECT_EQ(mixed.coreness, push.coreness);
  EXPECT_EQ(mixed.iterations, push.iterations);
  EXPECT_GT(hybrid.metrics().Get("frontier_dense_rounds"), 0);
  EXPECT_GT(hybrid.metrics().Get("frontier_sparse_rounds"), 0);
}

}  // namespace
}  // namespace ampc
