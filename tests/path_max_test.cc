#include "trees/path_max.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "graph/generators.h"

namespace ampc::trees {
namespace {

using graph::EdgeId;
using graph::NodeId;
using graph::WeightedEdge;

std::vector<WeightedEdge> RandomWeightedTree(int64_t n, uint64_t seed) {
  graph::EdgeList tree = graph::GenerateRandomTree(n, seed);
  std::vector<WeightedEdge> edges;
  for (size_t i = 0; i < tree.edges.size(); ++i) {
    edges.push_back(WeightedEdge{
        tree.edges[i].u, tree.edges[i].v,
        ToUnitDouble(Hash64(i, seed ^ 0x77)), static_cast<EdgeId>(i)});
  }
  return edges;
}

// Reference: walk u and v up to their meeting point, tracking the max.
PathMaxOracle::MaxEdge NaiveMaxEdge(const RootedForest& f, NodeId u,
                                    NodeId v) {
  PathMaxOracle::MaxEdge best{-1e300, graph::kInvalidEdge};
  auto fold = [&](NodeId w) {
    PathMaxOracle::MaxEdge e{f.parent_weight[w], f.parent_edge_id[w]};
    if (best < e) best = e;
  };
  while (u != v) {
    if (f.depth[u] >= f.depth[v]) {
      fold(u);
      u = f.parent[u];
    } else {
      fold(v);
      v = f.parent[v];
    }
  }
  return best;
}

TEST(PathMaxTest, SimplePath) {
  // 0 -1.0- 1 -5.0- 2 -2.0- 3
  std::vector<WeightedEdge> edges = {
      {0, 1, 1.0, 0}, {1, 2, 5.0, 1}, {2, 3, 2.0, 2}};
  RootedForest f = BuildRootedForest(4, edges);
  PathMaxOracle oracle(f);
  auto e = oracle.MaxEdgeOnPath(0, 3);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->id, 1u);
  EXPECT_EQ(e->w, 5.0);
  auto e2 = oracle.MaxEdgeOnPath(2, 3);
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->id, 2u);
}

TEST(PathMaxTest, EmptyPathIsNullopt) {
  std::vector<WeightedEdge> edges = {{0, 1, 1.0, 0}};
  RootedForest f = BuildRootedForest(2, edges);
  PathMaxOracle oracle(f);
  EXPECT_FALSE(oracle.MaxEdgeOnPath(1, 1).has_value());
}

class PathMaxRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PathMaxRandomTest, MatchesNaiveWalk) {
  const uint64_t seed = GetParam();
  const int64_t n = 300;
  std::vector<WeightedEdge> edges = RandomWeightedTree(n, seed);
  RootedForest f = BuildRootedForest(n, edges);
  PathMaxOracle oracle(f);
  Rng rng(seed + 1000);
  for (int q = 0; q < 400; ++q) {
    NodeId u = static_cast<NodeId>(rng.NextBelow(n));
    NodeId v = static_cast<NodeId>(rng.NextBelow(n));
    if (u == v) continue;
    auto fast = oracle.MaxEdgeOnPath(u, v);
    auto naive = NaiveMaxEdge(f, u, v);
    ASSERT_TRUE(fast.has_value());
    EXPECT_EQ(fast->id, naive.id);
    EXPECT_EQ(fast->w, naive.w);
  }
}

TEST_P(PathMaxRandomTest, LightEdgeCountIsLogarithmic) {
  // Lemma B.1: every root path has O(log n) light edges.
  const uint64_t seed = GetParam();
  const int64_t n = 4096;
  std::vector<WeightedEdge> edges = RandomWeightedTree(n, seed);
  RootedForest f = BuildRootedForest(n, edges);
  PathMaxOracle oracle(f);
  const double bound = 2.0 * std::log2(static_cast<double>(n)) + 2;
  for (NodeId v = 0; v < n; v += 7) {
    EXPECT_LE(oracle.CountLightEdgesToRoot(v), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathMaxRandomTest,
                         ::testing::Values(11, 12, 13, 14));

TEST(PathMaxTest, StarAllPathsThroughCenter) {
  std::vector<WeightedEdge> edges;
  for (NodeId leaf = 1; leaf <= 8; ++leaf) {
    edges.push_back(WeightedEdge{0, leaf, static_cast<double>(leaf),
                                 static_cast<EdgeId>(leaf - 1)});
  }
  RootedForest f = BuildRootedForest(9, edges);
  PathMaxOracle oracle(f);
  auto e = oracle.MaxEdgeOnPath(3, 7);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->w, 7.0);
  auto e2 = oracle.MaxEdgeOnPath(0, 5);
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->w, 5.0);
}

TEST(PathMaxTest, HeavyPathTieBreaksById) {
  // Equal weights: the max edge must be the one with the larger id.
  std::vector<WeightedEdge> edges = {
      {0, 1, 3.0, 0}, {1, 2, 3.0, 1}, {2, 3, 3.0, 2}};
  RootedForest f = BuildRootedForest(4, edges);
  PathMaxOracle oracle(f);
  auto e = oracle.MaxEdgeOnPath(0, 3);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->id, 2u);
}

}  // namespace
}  // namespace ampc::trees
