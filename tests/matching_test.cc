#include "core/matching.h"

#include <gtest/gtest.h>

#include "core/priorities.h"
#include "graph/generators.h"
#include "seq/greedy.h"

namespace ampc::core {
namespace {

using graph::EdgeList;
using graph::Graph;
using graph::kInvalidNode;

sim::ClusterConfig SmallConfig(bool caching = true) {
  sim::ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  config.query_cache.enabled = caching;
  return config;
}

EdgeList ShapeGraph(int shape, uint64_t seed) {
  switch (shape) {
    case 0:
      return graph::GenerateErdosRenyi(300, 1200, seed);
    case 1:
      return graph::GenerateRmat(9, 2500, seed);
    case 2:
      return graph::GeneratePath(600);
    case 3:
      return graph::GenerateCycle(512);
    default:
      return graph::GenerateStar(200);
  }
}

TEST(AmpcMatchingTest, SingleEdgeMatches) {
  EdgeList list;
  list.num_nodes = 2;
  list.edges = {{0, 1}};
  Graph g = graph::BuildGraph(list);
  sim::Cluster cluster(SmallConfig());
  MatchingResult r = AmpcMatching(cluster, g);
  EXPECT_EQ(r.partner[0], 1u);
  EXPECT_EQ(r.partner[1], 0u);
}

TEST(AmpcMatchingTest, UsesExactlyOneShuffle) {
  Graph g = graph::BuildGraph(graph::GenerateErdosRenyi(400, 1600, 3));
  sim::Cluster cluster(SmallConfig());
  MatchingOptions options;
  options.seed = 3;
  AmpcMatching(cluster, g, options);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 1);  // Table 3
}

class MatchingEqualityTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(MatchingEqualityTest, MatchesSequentialGreedyExactly) {
  const auto [shape, seed] = GetParam();
  EdgeList list = ShapeGraph(shape, seed);
  Graph g = graph::BuildGraph(list);
  sim::Cluster cluster(SmallConfig());
  MatchingOptions options;
  options.seed = seed;
  MatchingResult ampc = AmpcMatching(cluster, g, options);

  // Build the oracle over the *deduped* edge list of g so both sides see
  // the same simple graph.
  EdgeList simple;
  simple.num_nodes = g.num_nodes();
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (graph::NodeId u : g.neighbors(v)) {
      if (v < u) simple.edges.push_back(graph::Edge{v, u});
    }
  }
  std::vector<uint64_t> ranks = AllEdgeRanks(simple, seed);
  seq::MatchingResult oracle = seq::GreedyMaximalMatching(simple, ranks);
  EXPECT_EQ(ampc.partner, oracle.partner);

  seq::MatchingResult converted = ToSeqMatching(simple, ampc.partner);
  EXPECT_TRUE(seq::IsMaximalMatching(simple, converted.edges));
  EXPECT_EQ(converted.edges, oracle.edges);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatchingEqualityTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(1u, 2u, 3u)));

TEST(AmpcMatchingTest, CachingOffStillCorrect) {
  EdgeList list = graph::GenerateErdosRenyi(150, 600, 5);
  Graph g = graph::BuildGraph(list);
  sim::Cluster with_cache(SmallConfig(true));
  sim::Cluster no_cache(SmallConfig(false));
  MatchingOptions options;
  options.seed = 5;
  EXPECT_EQ(AmpcMatching(with_cache, g, options).partner,
            AmpcMatching(no_cache, g, options).partner);
}

TEST(AmpcMatchingTest, CachingReducesKvTraffic) {
  EdgeList list = graph::GenerateErdosRenyi(200, 1600, 7);
  Graph g = graph::BuildGraph(list);
  sim::Cluster with_cache(SmallConfig(true));
  sim::Cluster no_cache(SmallConfig(false));
  MatchingOptions options;
  options.seed = 7;
  AmpcMatching(with_cache, g, options);
  AmpcMatching(no_cache, g, options);
  EXPECT_LT(with_cache.metrics().Get("kv_read_bytes"),
            no_cache.metrics().Get("kv_read_bytes"));
}

TEST(AmpcMatchingTest, TruncationRetriesUntilSettled) {
  EdgeList list = graph::GenerateErdosRenyi(200, 900, 11);
  Graph g = graph::BuildGraph(list);
  sim::Cluster cluster(SmallConfig());
  MatchingOptions options;
  options.seed = 11;
  options.max_queries_per_vertex = 8;  // aggressive truncation
  MatchingResult r = AmpcMatching(cluster, g, options);
  EXPECT_GE(r.phases, 1);

  sim::Cluster unlimited(SmallConfig());
  MatchingOptions wide;
  wide.seed = 11;
  MatchingResult full = AmpcMatching(unlimited, g, wide);
  EXPECT_EQ(r.partner, full.partner);  // truncation changes cost, not output
}

TEST(AmpcMatchingTest, DeterministicAcrossClusterShapes) {
  EdgeList list = graph::GenerateRmat(9, 3000, 13);
  Graph g = graph::BuildGraph(list);
  sim::ClusterConfig one;
  one.num_machines = 1;
  one.threads_per_machine = 1;
  sim::ClusterConfig many;
  many.num_machines = 11;
  many.threads_per_machine = 3;
  sim::Cluster c1(one), c2(many);
  MatchingOptions options;
  options.seed = 17;
  EXPECT_EQ(AmpcMatching(c1, g, options).partner,
            AmpcMatching(c2, g, options).partner);
}

class SampledMatchingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SampledMatchingTest, SampledVariantEqualsGreedyToo) {
  const uint64_t seed = GetParam();
  EdgeList list = graph::GenerateRmat(9, 3000, seed);
  Graph g = graph::BuildGraph(list);
  sim::Cluster cluster(SmallConfig());
  MatchingOptions options;
  options.seed = seed;
  MatchingResult sampled = AmpcMatchingSampled(cluster, g, options);

  sim::Cluster direct_cluster(SmallConfig());
  MatchingResult direct = AmpcMatching(direct_cluster, g, options);
  // Algorithm 4's union of per-level matchings is the global LFMM.
  EXPECT_EQ(sampled.partner, direct.partner);
  EXPECT_GE(sampled.phases, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SampledMatchingTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(AmpcMatchingTest, LongPathNoStackOverflow) {
  Graph g = graph::BuildGraph(graph::GeneratePath(120000));
  sim::Cluster cluster(SmallConfig());
  MatchingOptions options;
  options.seed = 23;
  MatchingResult r = AmpcMatching(cluster, g, options);
  // Validate as a matching on the path.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (r.partner[v] != kInvalidNode) {
      EXPECT_EQ(r.partner[r.partner[v]], v);
    }
  }
}

}  // namespace
}  // namespace ampc::core
