#include "common/random.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

namespace ampc {
namespace {

TEST(Mix64Test, DeterministicAndDispersive) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Hash64Test, SeedSeparatesStreams) {
  EXPECT_NE(Hash64(7, 1), Hash64(7, 2));
  EXPECT_EQ(Hash64(7, 1), Hash64(7, 1));
}

TEST(HashEdgeTest, SymmetricInEndpoints) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    EXPECT_EQ(HashEdge(3, 9, seed), HashEdge(9, 3, seed));
    EXPECT_NE(HashEdge(3, 9, seed), HashEdge(3, 10, seed));
  }
}

TEST(ToUnitDoubleTest, RangeIsHalfOpen) {
  EXPECT_GE(ToUnitDouble(0), 0.0);
  EXPECT_LT(ToUnitDouble(~0ULL), 1.0);
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = ToUnitDouble(rng.Next());
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123), c(124);
  bool all_equal_c = true;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) all_equal_c = false;
  }
  EXPECT_FALSE(all_equal_c);
}

TEST(RngTest, NextBelowIsInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(99);
  std::map<uint64_t, int> counts;
  const int kTrials = 64000;
  for (int i = 0; i < kTrials; ++i) ++counts[rng.NextBelow(8)];
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(count, kTrials / 8, kTrials / 80) << "value " << value;
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(7);
  int hits = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) hits += rng.NextBernoulli(0.25);
  EXPECT_NEAR(hits, kTrials / 4, kTrials / 50);
}

TEST(HashCombineTest, OrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

}  // namespace
}  // namespace ampc
