#include "common/status.h"

#include <gtest/gtest.h>

namespace ampc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad graph");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad graph");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad graph");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IO_ERROR");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

Status FailingStep() { return Status::Internal("boom"); }

Status UsesReturnIfError() {
  AMPC_RETURN_IF_ERROR(Status::OK());
  AMPC_RETURN_IF_ERROR(FailingStep());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = UsesReturnIfError();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace ampc
