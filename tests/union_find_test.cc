#include "seq/union_find.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace ampc::seq {
namespace {

TEST(UnionFindTest, InitiallyAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.size(), 5);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(uf.Find(i), i);
  EXPECT_FALSE(uf.Connected(0, 1));
}

TEST(UnionFindTest, UnionConnects) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_TRUE(uf.Union(1, 3));
  EXPECT_TRUE(uf.Connected(0, 2));
}

TEST(UnionFindTest, RedundantUnionReturnsFalse) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_FALSE(uf.Union(0, 0));
}

TEST(UnionFindTest, TransitiveClosureOnRandomUnions) {
  const int64_t n = 2000;
  UnionFind uf(n);
  // Naive labels as the oracle.
  std::vector<int64_t> label(n);
  for (int64_t i = 0; i < n; ++i) label[i] = i;
  Rng rng(3);
  for (int i = 0; i < 1500; ++i) {
    const int64_t a = static_cast<int64_t>(rng.NextBelow(n));
    const int64_t b = static_cast<int64_t>(rng.NextBelow(n));
    uf.Union(a, b);
    const int64_t la = label[a], lb = label[b];
    if (la != lb) {
      for (int64_t v = 0; v < n; ++v) {
        if (label[v] == lb) label[v] = la;
      }
    }
  }
  for (int i = 0; i < 4000; ++i) {
    const int64_t a = static_cast<int64_t>(rng.NextBelow(n));
    const int64_t b = static_cast<int64_t>(rng.NextBelow(n));
    EXPECT_EQ(uf.Connected(a, b), label[a] == label[b]);
  }
}

TEST(UnionFindTest, ChainCompressionStillCorrect) {
  const int64_t n = 100000;
  UnionFind uf(n);
  for (int64_t i = 0; i + 1 < n; ++i) uf.Union(i, i + 1);
  EXPECT_TRUE(uf.Connected(0, n - 1));
  const int64_t root = uf.Find(0);
  for (int64_t i = 0; i < n; i += 997) EXPECT_EQ(uf.Find(i), root);
}

}  // namespace
}  // namespace ampc::seq
