#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/stats.h"

namespace ampc::graph {
namespace {

TEST(GeneratorsTest, ErdosRenyiShape) {
  EdgeList list = GenerateErdosRenyi(100, 300, 1);
  EXPECT_EQ(list.num_nodes, 100);
  EXPECT_EQ(list.edges.size(), 300u);
  for (const Edge& e : list.edges) {
    EXPECT_LT(e.u, 100u);
    EXPECT_LT(e.v, 100u);
  }
}

TEST(GeneratorsTest, ErdosRenyiDeterministicPerSeed) {
  EdgeList a = GenerateErdosRenyi(50, 100, 3);
  EdgeList b = GenerateErdosRenyi(50, 100, 3);
  EdgeList c = GenerateErdosRenyi(50, 100, 4);
  EXPECT_EQ(a.edges.size(), b.edges.size());
  bool same_as_c = a.edges.size() == c.edges.size();
  for (size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i], b.edges[i]);
    if (same_as_c && !(a.edges[i] == c.edges[i])) same_as_c = false;
  }
  EXPECT_FALSE(same_as_c);
}

TEST(GeneratorsTest, RmatIsSkewed) {
  EdgeList list = GenerateRmat(12, 40000, 5);
  EXPECT_EQ(list.num_nodes, 4096);
  Graph g = BuildGraph(list);
  // Heavy-tailed: the max degree should far exceed the average.
  const double avg = static_cast<double>(g.num_arcs()) / g.num_nodes();
  EXPECT_GT(g.max_degree(), 8 * avg);
}

TEST(GeneratorsTest, CycleIsTwoRegularAndConnected) {
  EdgeList list = GenerateCycle(50);
  Graph g = BuildGraph(list);
  EXPECT_EQ(g.num_arcs(), 100);
  for (int64_t v = 0; v < 50; ++v) {
    EXPECT_EQ(g.degree(static_cast<NodeId>(v)), 2);
  }
  GraphStats stats = ComputeStats(g);
  EXPECT_EQ(stats.num_components, 1);
}

TEST(GeneratorsTest, DoubleCycleHasTwoComponents) {
  EdgeList list = GenerateDoubleCycle(40);
  EXPECT_EQ(list.num_nodes, 80);
  Graph g = BuildGraph(list);
  for (int64_t v = 0; v < 80; ++v) {
    EXPECT_EQ(g.degree(static_cast<NodeId>(v)), 2);
  }
  GraphStats stats = ComputeStats(g);
  EXPECT_EQ(stats.num_components, 2);
  EXPECT_EQ(stats.largest_component, 40);
}

TEST(GeneratorsTest, PathAndStarAndComplete) {
  Graph path = BuildGraph(GeneratePath(10));
  EXPECT_EQ(path.num_arcs(), 18);
  Graph star = BuildGraph(GenerateStar(10));
  EXPECT_EQ(star.degree(0), 9);
  EXPECT_EQ(star.max_degree(), 9);
  Graph complete = BuildGraph(GenerateComplete(6));
  EXPECT_EQ(complete.num_arcs(), 30);
}

TEST(GeneratorsTest, GridShape) {
  EdgeList list = GenerateGrid(3, 4);
  EXPECT_EQ(list.num_nodes, 12);
  // 3*3 horizontal + 2*4 vertical = 17 edges.
  EXPECT_EQ(list.edges.size(), 17u);
  Graph g = BuildGraph(list);
  GraphStats stats = ComputeStats(g);
  EXPECT_EQ(stats.num_components, 1);
}

TEST(GeneratorsTest, RandomTreeIsSpanningTree) {
  EdgeList list = GenerateRandomTree(200, 7);
  EXPECT_EQ(list.edges.size(), 199u);
  Graph g = BuildGraph(list);
  GraphStats stats = ComputeStats(g);
  EXPECT_EQ(stats.num_components, 1);
}

TEST(GeneratorsTest, RandomForestHasRequestedTrees) {
  EdgeList list = GenerateRandomForest(100, 5, 9);
  EXPECT_EQ(list.edges.size(), 95u);
  Graph g = BuildGraph(list);
  GraphStats stats = ComputeStats(g);
  EXPECT_EQ(stats.num_components, 5);
}

TEST(GeneratorsTest, TernaryTreeRespectsDegreeBound) {
  EdgeList list = GenerateRandomTernaryTree(500, 11);
  EXPECT_EQ(list.edges.size(), 499u);
  Graph g = BuildGraph(list);
  EXPECT_LE(g.max_degree(), 3);
  GraphStats stats = ComputeStats(g);
  EXPECT_EQ(stats.num_components, 1);
}

}  // namespace
}  // namespace ampc::graph
