// Tests for the Section 5.3 rejected baseline: simulating the AMPC MIS
// query process in MPC, one shuffle per synchronized lookup round.
#include "baselines/ampc_simulation.h"

#include <gtest/gtest.h>

#include "baselines/rootset_mis.h"
#include "core/mis.h"
#include "core/priorities.h"
#include "graph/generators.h"
#include "seq/greedy.h"

namespace ampc::baselines {
namespace {

using graph::Graph;
using graph::NodeId;

sim::ClusterConfig SmallConfig() {
  sim::ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  return config;
}

TEST(SimulatedAmpcMisTest, ComputesTheSameMisAsAmpc) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = graph::BuildGraph(graph::GenerateErdosRenyi(200, 600, seed));
    sim::Cluster sim_cluster(SmallConfig());
    SimulatedAmpcMisResult simulated =
        MpcSimulatedAmpcMis(sim_cluster, g, seed);

    sim::Cluster ampc_cluster(SmallConfig());
    core::MisResult ampc = core::AmpcMis(ampc_cluster, g, seed);
    EXPECT_EQ(simulated.in_mis, ampc.in_mis) << "seed " << seed;
  }
}

TEST(SimulatedAmpcMisTest, OutputIsLexicographicallyFirstMis) {
  Graph g = graph::BuildGraph(graph::GenerateRmat(8, 1500, 7));
  sim::Cluster cluster(SmallConfig());
  SimulatedAmpcMisResult result = MpcSimulatedAmpcMis(cluster, g, 7);
  std::vector<uint64_t> ranks =
      core::AllVertexRanks(g.num_nodes(), 7);
  EXPECT_EQ(result.in_mis, seq::GreedyMis(g, ranks));
}

TEST(SimulatedAmpcMisTest, ShuffleCountBlowsUp) {
  // The point of the experiment: per-query shuffles make the round count
  // explode compared to both the AMPC implementation (1 shuffle) and the
  // rootset MPC baseline (tens).
  Graph g = graph::BuildGraph(graph::GenerateRmat(10, 12000, 42));
  sim::Cluster cluster(SmallConfig());
  SimulatedAmpcMisResult result = MpcSimulatedAmpcMis(cluster, g, 42);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), result.rounds + 1);
  EXPECT_GT(result.rounds, 50);

  sim::Cluster rootset_cluster(SmallConfig());
  MpcRootsetMis(rootset_cluster, g, 42);
  EXPECT_GT(result.rounds,
            4 * rootset_cluster.metrics().Get("shuffles"));
}

TEST(SimulatedAmpcMisTest, IsolatedAndTinyGraphs) {
  graph::EdgeList list;
  list.num_nodes = 3;
  Graph g = graph::BuildGraph(list);
  sim::Cluster cluster(SmallConfig());
  SimulatedAmpcMisResult result = MpcSimulatedAmpcMis(cluster, g, 1);
  // No edges: everyone is in the MIS after zero lookups.
  EXPECT_EQ(result.in_mis, (std::vector<uint8_t>{1, 1, 1}));
  EXPECT_EQ(result.rounds, 0);
  EXPECT_EQ(result.total_queries, 0);
}

TEST(SimulatedAmpcMisTest, SingleEdgeTakesOneRound) {
  graph::EdgeList list;
  list.num_nodes = 2;
  list.edges = {{0, 1}};
  Graph g = graph::BuildGraph(list);
  sim::Cluster cluster(SmallConfig());
  SimulatedAmpcMisResult result = MpcSimulatedAmpcMis(cluster, g, 9);
  // The later-ranked endpoint queries the earlier one; one lookup round.
  EXPECT_EQ(result.rounds, 1);
  EXPECT_EQ(result.total_queries, 1);
  EXPECT_EQ(result.in_mis[0] + result.in_mis[1], 1);
}

}  // namespace
}  // namespace ampc::baselines
