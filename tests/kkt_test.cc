#include "core/kkt.h"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <unordered_set>
#include <utility>

#include "graph/generators.h"
#include "seq/msf.h"

namespace ampc::core {
namespace {

using graph::EdgeId;
using graph::WeightedEdgeList;

sim::ClusterConfig SmallConfig() {
  sim::ClusterConfig config;
  config.num_machines = 4;
  config.in_memory_threshold_arcs = 64;
  return config;
}

WeightedEdgeList RandomWeighted(int64_t n, int64_t m, uint64_t seed) {
  return graph::MakeRandomWeighted(graph::GenerateErdosRenyi(n, m, seed),
                                   seed ^ 0xf00d);
}

TEST(FindLightEdgesTest, ForestEdgesAreAlwaysLight) {
  WeightedEdgeList list = RandomWeighted(120, 400, 1);
  std::vector<EdgeId> forest = seq::KruskalMsf(list);
  sim::Cluster cluster(SmallConfig());
  std::vector<uint8_t> light = FindLightEdges(cluster, list, forest);
  std::unordered_set<EdgeId> in_forest(forest.begin(), forest.end());
  for (size_t i = 0; i < list.edges.size(); ++i) {
    if (in_forest.contains(list.edges[i].id)) {
      EXPECT_TRUE(light[i]) << "forest edge " << i << " classified heavy";
    }
  }
}

TEST(FindLightEdgesTest, CrossTreeEdgesAreLight) {
  // Forest: only the two path edges; the bridge between components is
  // light by the w_F = infinity rule.
  WeightedEdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1, 1.0, 0}, {2, 3, 1.0, 1}, {1, 2, 99.0, 2}};
  sim::Cluster cluster(SmallConfig());
  std::vector<uint8_t> light = FindLightEdges(cluster, list, {0, 1});
  EXPECT_TRUE(light[2]);
}

TEST(FindLightEdgesTest, HeavyCycleEdgeClassifiedHeavy) {
  // Triangle: forest holds the two light edges; the heavy closing edge
  // must be F-heavy.
  WeightedEdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 1, 1.0, 0}, {1, 2, 2.0, 1}, {2, 0, 3.0, 2}};
  sim::Cluster cluster(SmallConfig());
  std::vector<uint8_t> light = FindLightEdges(cluster, list, {0, 1});
  EXPECT_TRUE(light[0]);
  EXPECT_TRUE(light[1]);
  EXPECT_FALSE(light[2]);
}

TEST(FindLightEdgesTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed : {3u, 4u, 5u}) {
    WeightedEdgeList list = RandomWeighted(80, 240, seed);
    // Random forest: MSF of a random half of the edges.
    WeightedEdgeList half;
    half.num_nodes = list.num_nodes;
    for (size_t i = 0; i < list.edges.size(); i += 2) {
      half.edges.push_back(list.edges[i]);
    }
    std::vector<EdgeId> forest = seq::KruskalMsf(half);
    sim::Cluster cluster(SmallConfig());
    std::vector<uint8_t> light = FindLightEdges(cluster, list, forest);

    // Brute force: Proposition 3.8 condition via per-query BFS max-edge.
    std::unordered_set<EdgeId> fset(forest.begin(), forest.end());
    std::vector<graph::WeightedEdge> fedges;
    for (const auto& e : list.edges) {
      if (fset.contains(e.id)) fedges.push_back(e);
    }
    // Path max by DFS for every pair needed.
    auto path_max = [&](graph::NodeId s, graph::NodeId t)
        -> std::optional<std::pair<double, EdgeId>> {
      std::vector<std::optional<std::pair<double, EdgeId>>> best(
          list.num_nodes);
      std::vector<uint8_t> seen(list.num_nodes, 0);
      std::vector<graph::NodeId> stack{s};
      seen[s] = 1;
      while (!stack.empty()) {
        graph::NodeId v = stack.back();
        stack.pop_back();
        for (const auto& e : fedges) {
          graph::NodeId other = graph::kInvalidNode;
          if (e.u == v) other = e.v;
          if (e.v == v) other = e.u;
          if (other == graph::kInvalidNode || seen[other]) continue;
          seen[other] = 1;
          std::pair<double, EdgeId> cand = std::make_pair(e.w, e.id);
          if (best[v].has_value() && *best[v] > cand) cand = *best[v];
          best[other] = cand;
          stack.push_back(other);
        }
      }
      if (!seen[t]) return std::nullopt;
      return best[t];
    };
    for (size_t i = 0; i < list.edges.size(); ++i) {
      const auto& e = list.edges[i];
      if (e.u == e.v) continue;
      auto max_on_path = path_max(e.u, e.v);
      bool expect_light;
      if (!max_on_path.has_value()) {
        expect_light = true;
      } else {
        expect_light = std::make_pair(e.w, e.id) <= *max_on_path;
      }
      EXPECT_EQ(static_cast<bool>(light[i]), expect_light)
          << "edge " << i << " seed " << seed;
    }
  }
}

class KktTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KktTest, EndToEndMatchesKruskal) {
  const uint64_t seed = GetParam();
  WeightedEdgeList list = RandomWeighted(250, 1500, seed);
  sim::Cluster cluster(SmallConfig());
  KktOptions options;
  options.msf.seed = seed;
  KktResult r = AmpcMsfKkt(cluster, list, options);
  EXPECT_EQ(r.msf_edges, seq::KruskalMsf(list));
  EXPECT_GT(r.sampled_edges, 0);
  EXPECT_GE(r.light_edges,
            static_cast<int64_t>(r.msf_edges.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KktTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(KktTest, LightEdgeCountNearTheoreticalBound) {
  // Lemma 3.9: E[#light] = O(n/p). With p = 1/log2(n) expect about
  // n*log2(n) light edges; allow a wide constant.
  const int64_t n = 500;
  WeightedEdgeList list = RandomWeighted(n, 8000, 99);
  sim::Cluster cluster(SmallConfig());
  KktOptions options;
  options.msf.seed = 99;
  KktResult r = AmpcMsfKkt(cluster, list, options);
  const double bound = 8.0 * n * std::log2(static_cast<double>(n));
  EXPECT_LT(static_cast<double>(r.light_edges), bound);
  EXPECT_EQ(r.msf_edges, seq::KruskalMsf(list));
}

}  // namespace
}  // namespace ampc::core
