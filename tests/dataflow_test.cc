#include "mpc/dataflow.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/random.h"

namespace ampc::mpc {
namespace {

sim::Cluster MakeCluster() {
  sim::ClusterConfig config;
  config.num_machines = 4;
  return sim::Cluster(config);
}

TEST(DataflowTest, ParDoTransformsAndCountsRound) {
  sim::Cluster cluster = MakeCluster();
  PCollection<int> input = {1, 2, 3, 4};
  PCollection<int> doubled = ParDo<int, int>(
      cluster, "double", input,
      [](const int& x, auto emit) { emit(x * 2); });
  std::sort(doubled.begin(), doubled.end());
  EXPECT_EQ(doubled, (PCollection<int>{2, 4, 6, 8}));
  EXPECT_EQ(cluster.metrics().Get("rounds"), 1);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 0);
}

TEST(DataflowTest, ParDoCanFanOutAndFilter) {
  sim::Cluster cluster = MakeCluster();
  PCollection<int> input = {1, 2, 3};
  PCollection<int> out = ParDo<int, int>(
      cluster, "fan", input, [](const int& x, auto emit) {
        if (x % 2 == 1) {
          emit(x);
          emit(x * 10);
        }
      });
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (PCollection<int>{1, 3, 10, 30}));
}

TEST(DataflowTest, GroupByKeyGroupsAndCountsShuffle) {
  sim::Cluster cluster = MakeCluster();
  PCollection<KV<uint32_t, uint32_t>> records = {
      {2, 20}, {1, 10}, {2, 21}, {3, 30}, {1, 11}};
  auto groups = GroupByKey(cluster, "group", std::move(records));
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].first, 1u);
  EXPECT_EQ(groups[1].first, 2u);
  EXPECT_EQ(groups[2].first, 3u);
  std::vector<uint32_t> ones = groups[0].second;
  std::sort(ones.begin(), ones.end());
  EXPECT_EQ(ones, (std::vector<uint32_t>{10, 11}));
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 1);
  // 5 records x (4 + 4) bytes.
  EXPECT_EQ(cluster.metrics().Get("shuffle_bytes"), 40);
}

TEST(DataflowTest, ShuffleBytesComputesWireSize) {
  PCollection<KV<uint64_t, uint32_t>> records = {{1, 2}, {3, 4}};
  EXPECT_EQ(ShuffleBytes(records), 2 * (8 + 4));
}

TEST(DataflowTest, KeysAndFlatten) {
  PCollection<KV<int, int>> records = {{5, 0}, {6, 0}};
  EXPECT_EQ((Keys(records)), (PCollection<int>{5, 6}));
  PCollection<int> flat = Flatten<int>({{1, 2}, {3}, {}});
  EXPECT_EQ(flat, (PCollection<int>{1, 2, 3}));
}

TEST(DataflowTest, WordCountPipeline) {
  // A miniature end-to-end Flume-style pipeline.
  sim::Cluster cluster = MakeCluster();
  PCollection<std::string> lines = {"a b", "b c", "c b"};
  auto words = ParDo<std::string, KV<char, uint32_t>>(
      cluster, "split", lines, [](const std::string& line, auto emit) {
        for (char c : line) {
          if (c != ' ') emit(KV<char, uint32_t>{c, 1});
        }
      });
  auto grouped = GroupByKey(cluster, "shuffle", std::move(words));
  auto counts = ParDo<KV<char, std::vector<uint32_t>>, KV<char, size_t>>(
      cluster, "count", grouped, [](const auto& group, auto emit) {
        emit(KV<char, size_t>{group.first, group.second.size()});
      });
  std::sort(counts.begin(), counts.end());
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], (KV<char, size_t>{'a', 1}));
  EXPECT_EQ(counts[1], (KV<char, size_t>{'b', 3}));
  EXPECT_EQ(counts[2], (KV<char, size_t>{'c', 2}));
  EXPECT_EQ(cluster.metrics().Get("rounds"), 3);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 1);
}

TEST(DataflowTest, ParDoOutputIsDeterministicAndInSerialOrder) {
  // Per-chunk slots are assembled in index order, so the output must be
  // exactly the serial emission sequence — on every run.
  const int64_t n = 100000;
  PCollection<uint32_t> input(n);
  for (int64_t i = 0; i < n; ++i) input[i] = static_cast<uint32_t>(i);
  auto fan = [](const uint32_t& x, auto emit) {
    if (x % 3 == 0) return;  // filtering changes slot sizes
    emit(x);
    if (x % 5 == 0) emit(x + 1000000);
  };
  PCollection<uint32_t> serial;
  auto serial_emit = [&serial](uint32_t v) { serial.push_back(v); };
  for (const uint32_t& x : input) fan(x, serial_emit);

  PCollection<uint32_t> first;
  for (int run = 0; run < 3; ++run) {
    sim::Cluster cluster = MakeCluster();
    auto out = ParDo<uint32_t, uint32_t>(cluster, "fan", input, fan);
    EXPECT_EQ(out, serial);
    if (run == 0) {
      first = std::move(out);
    } else {
      EXPECT_EQ(out, first);
    }
  }
}

TEST(DataflowTest, GroupByKeyLargeInputMatchesSerialReference) {
  // Large enough to take the sharded parallel path (>= kShardCutoff).
  const int64_t n = 200000;
  Rng rng(7);
  PCollection<KV<uint32_t, uint32_t>> records(n);
  for (int64_t i = 0; i < n; ++i) {
    records[i] = {static_cast<uint32_t>(rng.NextBelow(5000)),
                  static_cast<uint32_t>(i)};
  }
  // Serial reference: stable sort by key, then scan.
  auto reference = records;
  std::stable_sort(reference.begin(), reference.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  PCollection<KV<uint32_t, std::vector<uint32_t>>> want;
  for (size_t i = 0; i < reference.size();) {
    size_t j = i;
    std::vector<uint32_t> values;
    while (j < reference.size() &&
           reference[j].first == reference[i].first) {
      values.push_back(reference[j].second);
      ++j;
    }
    want.emplace_back(reference[i].first, std::move(values));
    i = j;
  }

  sim::Cluster cluster = MakeCluster();
  auto groups = GroupByKey(cluster, "big", std::move(records));
  ASSERT_EQ(groups.size(), want.size());
  EXPECT_EQ(groups, want);  // key-sorted, values in input order
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 1);
  EXPECT_EQ(cluster.metrics().Get("rounds"), 1);
  EXPECT_EQ(cluster.metrics().Get("shuffle_bytes"), n * (4 + 4));
}

TEST(DataflowTest, GroupByKeyDeterministicAcrossThreadCounts) {
  const int64_t n = 60000;
  Rng rng(9);
  PCollection<KV<uint64_t, uint64_t>> records(n);
  for (int64_t i = 0; i < n; ++i) {
    records[i] = {rng.NextBelow(300), static_cast<uint64_t>(i)};
  }
  std::vector<PCollection<KV<uint64_t, std::vector<uint64_t>>>> results;
  for (int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    auto copy = records;
    auto groups = GroupByKeyEngine(pool, std::move(copy));
    EXPECT_TRUE(std::is_sorted(groups.begin(), groups.end(),
                               [](const auto& a, const auto& b) {
                                 return a.first < b.first;
                               }));
    results.push_back(std::move(groups));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(DataflowTest, ShuffleBytesParallelOverloadMatchesSerial) {
  ThreadPool pool(4);
  Rng rng(11);
  PCollection<KV<uint64_t, uint32_t>> records(50000);
  for (auto& r : records) {
    r = {rng.Next(), static_cast<uint32_t>(rng.NextBelow(100))};
  }
  EXPECT_EQ(ShuffleBytes(pool, records), ShuffleBytes(records));
}

TEST(DataflowTest, EmptyInputsAreFine) {
  sim::Cluster cluster = MakeCluster();
  PCollection<int> empty;
  auto out = ParDo<int, int>(cluster, "e", empty,
                             [](const int& x, auto emit) { emit(x); });
  EXPECT_TRUE(out.empty());
  auto groups =
      GroupByKey(cluster, "g", PCollection<KV<int, int>>{});
  EXPECT_TRUE(groups.empty());
}

}  // namespace
}  // namespace ampc::mpc
