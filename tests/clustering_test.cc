// Tests for single-linkage clustering: dendrogram structure, flat cuts,
// equivalence with the naive agglomerative algorithm, and the AMPC
// connectivity-based cut of the paper's Section 1 recipe.
#include "core/clustering.h"

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ampc::core {
namespace {

using graph::NodeId;
using graph::Weight;
using graph::WeightedEdge;
using graph::WeightedEdgeList;

sim::ClusterConfig SmallConfig() {
  sim::ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  config.in_memory_threshold_arcs = 64;
  return config;
}

// Naive O(n^2 m) single-linkage: repeatedly merge the two clusters with
// the smallest inter-cluster edge. Returns canonical labels at
// threshold t.
std::vector<NodeId> NaiveSingleLinkage(const WeightedEdgeList& list,
                                       Weight t) {
  const int64_t n = list.num_nodes;
  std::vector<NodeId> label(n);
  for (int64_t v = 0; v < n; ++v) label[v] = static_cast<NodeId>(v);
  for (;;) {
    Weight best = std::numeric_limits<Weight>::infinity();
    NodeId la = 0, lb = 0;
    for (const WeightedEdge& e : list.edges) {
      if (label[e.u] == label[e.v]) continue;
      if (e.w < best) {
        best = e.w;
        la = label[e.u];
        lb = label[e.v];
      }
    }
    if (best > t) break;
    const NodeId to = std::min(la, lb);
    const NodeId from = std::max(la, lb);
    for (int64_t v = 0; v < n; ++v) {
      if (label[v] == from) label[v] = to;
    }
  }
  // Canonicalize to the smallest member id.
  std::vector<NodeId> smallest(n, graph::kInvalidNode);
  for (int64_t v = 0; v < n; ++v) {
    smallest[label[v]] = std::min(smallest[label[v]], static_cast<NodeId>(v));
  }
  for (int64_t v = 0; v < n; ++v) label[v] = smallest[label[v]];
  return label;
}

// Two 4-cliques with internal weight 1, bridged by a weight-10 edge.
WeightedEdgeList TwoBlobs() {
  WeightedEdgeList list;
  list.num_nodes = 8;
  graph::EdgeId id = 0;
  for (NodeId base : {NodeId{0}, NodeId{4}}) {
    for (NodeId a = 0; a < 4; ++a) {
      for (NodeId b = a + 1; b < 4; ++b) {
        list.edges.push_back(WeightedEdge{base + a, base + b, 1.0, id++});
      }
    }
  }
  list.edges.push_back(WeightedEdge{0, 4, 10.0, id++});
  return list;
}

TEST(DendrogramTest, MergeCountEqualsNodesMinusComponents) {
  WeightedEdgeList list = TwoBlobs();
  sim::Cluster cluster(SmallConfig());
  Dendrogram d = AmpcSingleLinkage(cluster, list);
  EXPECT_EQ(d.num_nodes(), 8);
  EXPECT_EQ(d.num_components(), 1);
  EXPECT_EQ(d.merges().size(), 7u);
  // The bridge must be the final (heaviest) merge.
  EXPECT_EQ(d.merges().back().weight, 10.0);
}

TEST(DendrogramTest, CutBetweenBlobScalesGivesTwoClusters) {
  WeightedEdgeList list = TwoBlobs();
  sim::Cluster cluster(SmallConfig());
  Dendrogram d = AmpcSingleLinkage(cluster, list);

  std::vector<NodeId> at5 = d.CutAtThreshold(5.0);
  EXPECT_EQ(CountClusters(at5), 2);
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(at5[v], 0u);
  for (NodeId v = 4; v < 8; ++v) EXPECT_EQ(at5[v], 4u);

  EXPECT_EQ(CountClusters(d.CutAtThreshold(10.0)), 1);
  EXPECT_EQ(CountClusters(d.CutAtThreshold(0.5)), 8);
}

TEST(DendrogramTest, CutToClustersOnWeightedPath) {
  // Path 0-1-2-3-4 with weights 5, 1, 9, 2: cutting to k clusters removes
  // the k-1 heaviest dendrogram merges, i.e. the heaviest path edges.
  WeightedEdgeList list;
  list.num_nodes = 5;
  list.edges = {{0, 1, 5.0, 0}, {1, 2, 1.0, 1}, {2, 3, 9.0, 2},
                {3, 4, 2.0, 3}};
  sim::Cluster cluster(SmallConfig());
  Dendrogram d = AmpcSingleLinkage(cluster, list);

  std::vector<NodeId> two = d.CutToClusters(2);
  // Removing the weight-9 edge splits {0,1,2} | {3,4}.
  EXPECT_EQ(two, (std::vector<NodeId>{0, 0, 0, 3, 3}));

  std::vector<NodeId> three = d.CutToClusters(3);
  // Also removing weight-5: {0} | {1,2} | {3,4}.
  EXPECT_EQ(three, (std::vector<NodeId>{0, 1, 1, 3, 3}));

  EXPECT_EQ(CountClusters(d.CutToClusters(5)), 5);
  EXPECT_EQ(CountClusters(d.CutToClusters(1)), 1);
}

TEST(DendrogramTest, ThresholdMonotonicity) {
  // Raising the threshold can only merge clusters: the clustering at t1
  // refines the clustering at t2 > t1.
  graph::EdgeList raw = graph::GenerateErdosRenyi(40, 90, 17);
  WeightedEdgeList list = graph::MakeRandomWeighted(raw, 17);
  sim::Cluster cluster(SmallConfig());
  Dendrogram d = AmpcSingleLinkage(cluster, list);
  std::vector<NodeId> prev = d.CutAtThreshold(0.0);
  for (double t : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    std::vector<NodeId> cur = d.CutAtThreshold(t);
    EXPECT_LE(CountClusters(cur), CountClusters(prev));
    // Refinement: same prev-label => same cur-label.
    for (size_t a = 0; a < prev.size(); ++a) {
      EXPECT_EQ(cur[a], cur[prev[a]])
          << "cluster of " << a << " split when raising the threshold";
    }
    prev = std::move(cur);
  }
}

TEST(DendrogramTest, MatchesNaiveAgglomerativeClustering) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    graph::EdgeList raw = graph::GenerateErdosRenyi(18, 35, seed);
    WeightedEdgeList list = graph::MakeRandomWeighted(raw, seed + 7);
    sim::Cluster cluster(SmallConfig());
    ClusteringOptions options;
    options.msf.seed = seed;
    Dendrogram d = AmpcSingleLinkage(cluster, list, options);
    for (double t : {0.1, 0.3, 0.5, 0.9}) {
      EXPECT_EQ(d.CutAtThreshold(t), NaiveSingleLinkage(list, t))
          << "seed " << seed << " t " << t;
    }
  }
}

TEST(DendrogramTest, DisconnectedGraphKeepsComponentsApart) {
  // Two disjoint triangles: even an infinite threshold leaves 2 clusters.
  WeightedEdgeList list;
  list.num_nodes = 6;
  list.edges = {{0, 1, 1.0, 0}, {1, 2, 1.0, 1}, {2, 0, 1.0, 2},
                {3, 4, 1.0, 3}, {4, 5, 1.0, 4}, {5, 3, 1.0, 5}};
  sim::Cluster cluster(SmallConfig());
  Dendrogram d = AmpcSingleLinkage(cluster, list);
  EXPECT_EQ(d.num_components(), 2);
  std::vector<NodeId> labels =
      d.CutAtThreshold(std::numeric_limits<Weight>::infinity());
  EXPECT_EQ(CountClusters(labels), 2);
  EXPECT_EQ(CountClusters(d.CutToClusters(2)), 2);
}

TEST(DendrogramTest, AmpcCutMatchesLocalCut) {
  graph::EdgeList raw = graph::GenerateErdosRenyi(60, 140, 23);
  WeightedEdgeList list = graph::MakeRandomWeighted(raw, 23);
  sim::Cluster cluster(SmallConfig());
  Dendrogram d = AmpcSingleLinkage(cluster, list);
  for (double t : {0.25, 0.75}) {
    sim::Cluster cut_cluster(SmallConfig());
    EXPECT_EQ(AmpcCutAtThreshold(cut_cluster, d, t), d.CutAtThreshold(t))
        << "t " << t;
    // The distributed cut must go through AMPC rounds.
    EXPECT_GE(cut_cluster.metrics().Get("shuffles"), 1);
  }
}

TEST(DendrogramTest, EmptyAndSingletonGraphs) {
  WeightedEdgeList empty;
  empty.num_nodes = 0;
  sim::Cluster cluster(SmallConfig());
  Dendrogram d0 = AmpcSingleLinkage(cluster, empty);
  EXPECT_EQ(d0.num_nodes(), 0);
  EXPECT_TRUE(d0.CutAtThreshold(1.0).empty());

  WeightedEdgeList one;
  one.num_nodes = 1;
  sim::Cluster cluster1(SmallConfig());
  Dendrogram d1 = AmpcSingleLinkage(cluster1, one);
  EXPECT_EQ(d1.num_components(), 1);
  EXPECT_EQ(d1.CutAtThreshold(0.0), std::vector<NodeId>{0});
}

}  // namespace
}  // namespace ampc::core
