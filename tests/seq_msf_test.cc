#include "seq/msf.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/random.h"
#include "seq/union_find.h"
#include "graph/generators.h"

namespace ampc::seq {
namespace {

using graph::EdgeId;
using graph::NodeId;
using graph::WeightedEdge;
using graph::WeightedEdgeList;

WeightedEdgeList RandomWeighted(int64_t n, int64_t m, uint64_t seed) {
  graph::EdgeList raw = graph::GenerateErdosRenyi(n, m, seed);
  return graph::MakeRandomWeighted(raw, seed ^ 0xabc);
}

TEST(KruskalTest, TriangleDropsHeaviest) {
  WeightedEdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 1, 1.0, 0}, {1, 2, 2.0, 1}, {2, 0, 3.0, 2}};
  std::vector<EdgeId> msf = KruskalMsf(list);
  EXPECT_EQ(msf, (std::vector<EdgeId>{0, 1}));
  EXPECT_EQ(TotalWeight(list, msf), 3.0);
}

TEST(KruskalTest, TieBreaksByEdgeId) {
  WeightedEdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 1, 1.0, 0}, {1, 2, 1.0, 1}, {2, 0, 1.0, 2}};
  std::vector<EdgeId> msf = KruskalMsf(list);
  EXPECT_EQ(msf, (std::vector<EdgeId>{0, 1}));
}

TEST(KruskalTest, DisconnectedGraphGivesForest) {
  WeightedEdgeList list;
  list.num_nodes = 6;
  list.edges = {{0, 1, 1.0, 0}, {1, 2, 2.0, 1}, {3, 4, 1.0, 2}};
  std::vector<EdgeId> msf = KruskalMsf(list);
  EXPECT_EQ(msf.size(), 3u);
  EXPECT_TRUE(IsSpanningForest(list, msf));
}

TEST(KruskalTest, SelfLoopsIgnored) {
  WeightedEdgeList list;
  list.num_nodes = 2;
  list.edges = {{0, 0, 0.5, 0}, {0, 1, 1.0, 1}};
  EXPECT_EQ(KruskalMsf(list), (std::vector<EdgeId>{1}));
}

TEST(KruskalTest, EmptyGraph) {
  WeightedEdgeList list;
  list.num_nodes = 5;
  EXPECT_TRUE(KruskalMsf(list).empty());
}

class MsfCrossCheckTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MsfCrossCheckTest, KruskalPrimBoruvkaAgree) {
  const uint64_t seed = GetParam();
  WeightedEdgeList list = RandomWeighted(200, 600, seed);
  std::vector<EdgeId> kruskal = KruskalMsf(list);
  std::vector<EdgeId> boruvka = BoruvkaMsf(list);
  graph::WeightedGraph g = graph::BuildWeightedGraph(list);
  std::vector<EdgeId> prim = PrimMsf(g);
  // Unique weights (hash-based + id tie-break): identical edge sets.
  EXPECT_EQ(kruskal, boruvka);
  // Prim runs on the deduped graph: compare total weight and size, then
  // set equality via spanning-forest checks.
  EXPECT_EQ(kruskal.size(), prim.size());
  EXPECT_DOUBLE_EQ(TotalWeight(list, kruskal), TotalWeight(list, prim));
  EXPECT_TRUE(IsSpanningForest(list, kruskal));
  EXPECT_TRUE(IsSpanningForest(list, prim));
}

TEST_P(MsfCrossCheckTest, MsfIsMinimalAgainstSwaps) {
  // Exchange property spot check: replacing an MSF edge with any non-MSF
  // edge of smaller order must disconnect something (i.e., total weight
  // of any spanning forest >= MSF weight).
  const uint64_t seed = GetParam();
  WeightedEdgeList list = RandomWeighted(60, 150, seed + 100);
  std::vector<EdgeId> msf = KruskalMsf(list);
  const double best = TotalWeight(list, msf);
  Rng rng(seed);
  for (int trial = 0; trial < 30; ++trial) {
    // Random spanning forest via randomized Kruskal order.
    std::vector<uint32_t> order(list.edges.size());
    std::iota(order.begin(), order.end(), 0u);
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBelow(i)]);
    }
    UnionFind uf(list.num_nodes);
    double total = 0;
    for (uint32_t idx : order) {
      const WeightedEdge& e = list.edges[idx];
      if (e.u != e.v && uf.Union(e.u, e.v)) total += e.w;
    }
    EXPECT_GE(total, best - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsfCrossCheckTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SpanningForestCheckTest, DetectsCycleAndNonSpanning) {
  WeightedEdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 1, 1.0, 0}, {1, 2, 1.0, 1}, {2, 0, 1.0, 2}};
  EXPECT_FALSE(IsSpanningForest(list, {0, 1, 2}));  // cycle
  EXPECT_FALSE(IsSpanningForest(list, {0}));        // not spanning
  EXPECT_TRUE(IsSpanningForest(list, {0, 2}));
}

TEST(TotalWeightTest, SumsSelectedEdges) {
  WeightedEdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 1, 1.5, 7}, {1, 2, 2.5, 9}};
  EXPECT_DOUBLE_EQ(TotalWeight(list, {7, 9}), 4.0);
  EXPECT_DOUBLE_EQ(TotalWeight(list, {9}), 2.5);
}

}  // namespace
}  // namespace ampc::seq
