#include "sim/cluster.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

namespace ampc::sim {
namespace {

ClusterConfig TestConfig() {
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  config.network = kv::NetworkModel::Rdma();
  return config;
}

TEST(ClusterTest, MachineOfIsStableAndInRange) {
  Cluster cluster(TestConfig());
  for (uint64_t k = 0; k < 1000; ++k) {
    const int m = cluster.MachineOf(k);
    EXPECT_GE(m, 0);
    EXPECT_LT(m, 4);
    EXPECT_EQ(m, cluster.MachineOf(k));
  }
}

TEST(ClusterTest, ShuffleAccounting) {
  Cluster cluster(TestConfig());
  cluster.AccountShuffle("phase", 1000);
  cluster.AccountShuffle("phase", 500);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 2);
  EXPECT_EQ(cluster.metrics().Get("rounds"), 2);
  EXPECT_EQ(cluster.metrics().Get("shuffle_bytes"), 1500);
  EXPECT_GT(cluster.SimSeconds(), 0.0);
}

TEST(ClusterTest, MapRoundCountsRoundNotShuffle) {
  Cluster cluster(TestConfig());
  cluster.AccountMapRound("m");
  EXPECT_EQ(cluster.metrics().Get("rounds"), 1);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 0);
}

TEST(ClusterTest, RunMapPhaseVisitsEveryItemOnce) {
  Cluster cluster(TestConfig());
  const int64_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  cluster.RunMapPhase("visit", n, [&](int64_t item, MachineContext&) {
    hits[item].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  EXPECT_EQ(cluster.metrics().Get("map_items"), n);
  EXPECT_EQ(cluster.metrics().Get("rounds"), 1);
}

TEST(ClusterTest, MapPhaseRoutesItemsToOwningMachine) {
  Cluster cluster(TestConfig());
  std::atomic<int> mismatches{0};
  cluster.RunMapPhase("route", 2000, [&](int64_t item, MachineContext& ctx) {
    if (cluster.MachineOf(item) != ctx.machine_id()) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ClusterTest, KvWriteAndLookupAccounting) {
  Cluster cluster(TestConfig());
  kv::Store<int64_t> store(100);
  cluster.RunKvWritePhase("w", store, 100, [](int64_t k) { return k * 3; });
  EXPECT_EQ(cluster.metrics().Get("kv_writes"), 100);
  EXPECT_GT(cluster.metrics().Get("kv_write_bytes"), 0);

  std::atomic<int64_t> sum{0};
  cluster.RunMapPhase("r", 100, [&](int64_t item, MachineContext& ctx) {
    const int64_t* v = ctx.Lookup(store, item);
    ASSERT_NE(v, nullptr);
    sum.fetch_add(*v);
  });
  EXPECT_EQ(sum.load(), 3 * 99 * 100 / 2);
  EXPECT_EQ(cluster.metrics().Get("kv_reads"), 100);
  EXPECT_GT(cluster.metrics().Get("kv_read_bytes"), 0);
}

TEST(ClusterTest, LocalLookupNotCharged) {
  Cluster cluster(TestConfig());
  kv::Store<int64_t> store(10);
  cluster.RunKvWritePhase("w", store, 10, [](int64_t k) { return k; });
  cluster.RunMapPhase("r", 10, [&](int64_t item, MachineContext& ctx) {
    ctx.LookupLocal(store, item);
  });
  EXPECT_EQ(cluster.metrics().Get("kv_reads"), 0);
}

TEST(ClusterTest, CacheCountersFlow) {
  Cluster cluster(TestConfig());
  cluster.RunMapPhase("c", 10, [&](int64_t item, MachineContext& ctx) {
    if (item % 2 == 0) {
      ctx.CountCacheHit();
    } else {
      ctx.CountCacheMiss();
    }
  });
  EXPECT_EQ(cluster.metrics().Get("cache_hits"), 5);
  EXPECT_EQ(cluster.metrics().Get("cache_misses"), 5);
}

TEST(ClusterTest, MissingKeyLookupReturnsNullAndCharges) {
  Cluster cluster(TestConfig());
  kv::Store<int64_t> store(10);  // nothing written
  std::atomic<int> nulls{0};
  cluster.RunMapPhase("miss", 10, [&](int64_t item, MachineContext& ctx) {
    if (ctx.Lookup(store, item) == nullptr) nulls.fetch_add(1);
  });
  EXPECT_EQ(nulls.load(), 10);
  EXPECT_EQ(cluster.metrics().Get("kv_reads"), 10);
}

TEST(ClusterTest, SimTimeScalesWithMachines) {
  // The same KV-heavy phase should be faster (in simulated time) on more
  // machines — the Figure 8 self-speedup mechanism.
  auto run = [](int machines) {
    ClusterConfig config;
    config.num_machines = machines;
    config.threads_per_machine = 1;
    Cluster cluster(config);
    kv::Store<int64_t> store(20000);
    cluster.RunKvWritePhase("w", store, 20000,
                            [](int64_t k) { return k; });
    cluster.RunMapPhase("r", 20000, [&](int64_t item, MachineContext& ctx) {
      ctx.Lookup(store, (item * 7919) % 20000);
    });
    return cluster.metrics().GetTime("sim:r");
  };
  EXPECT_GT(run(1), run(16));
}

TEST(ClusterTest, MultithreadingReducesSimTime) {
  auto run = [](bool multithreading) {
    ClusterConfig config;
    config.num_machines = 2;
    config.threads_per_machine = 8;
    config.multithreading = multithreading;
    Cluster cluster(config);
    kv::Store<int64_t> store(20000);
    cluster.RunKvWritePhase("w", store, 20000,
                            [](int64_t k) { return k; });
    cluster.RunMapPhase("r", 20000, [&](int64_t item, MachineContext& ctx) {
      ctx.Lookup(store, (item * 13) % 20000);
    });
    return cluster.metrics().GetTime("sim:r");
  };
  EXPECT_GT(run(false), run(true));
}

TEST(ClusterTest, TcpSlowerThanRdmaInSimTime) {
  auto run = [](kv::NetworkModel model) {
    ClusterConfig config;
    config.num_machines = 2;
    config.network = model;
    Cluster cluster(config);
    kv::Store<int64_t> store(20000);
    cluster.RunKvWritePhase("w", store, 20000,
                            [](int64_t k) { return k; });
    cluster.RunMapPhase("r", 20000, [&](int64_t item, MachineContext& ctx) {
      ctx.Lookup(store, (item * 13) % 20000);
    });
    return cluster.metrics().GetTime("sim:r");
  };
  EXPECT_GT(run(kv::NetworkModel::TcpIp()), run(kv::NetworkModel::Rdma()));
}

TEST(ClusterTest, InMemoryFinishChargesGatherShuffle) {
  Cluster cluster(TestConfig());
  cluster.AccountInMemoryFinish("f", 1000, 500);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 1);
  cluster.AccountInMemoryCompute("g", 500);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 1);  // compute adds none
}

}  // namespace
}  // namespace ampc::sim
