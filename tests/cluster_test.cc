#include "sim/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

namespace ampc::sim {
namespace {

ClusterConfig TestConfig() {
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  config.network = kv::NetworkModel::Rdma();
  return config;
}

TEST(ClusterTest, MachineOfIsStableAndInRange) {
  Cluster cluster(TestConfig());
  for (uint64_t k = 0; k < 1000; ++k) {
    const int m = cluster.MachineOf(k);
    EXPECT_GE(m, 0);
    EXPECT_LT(m, 4);
    EXPECT_EQ(m, cluster.MachineOf(k));
  }
}

TEST(ClusterTest, ShuffleAccounting) {
  Cluster cluster(TestConfig());
  cluster.AccountShuffle("phase", 1000);
  cluster.AccountShuffle("phase", 500);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 2);
  EXPECT_EQ(cluster.metrics().Get("rounds"), 2);
  EXPECT_EQ(cluster.metrics().Get("shuffle_bytes"), 1500);
  EXPECT_GT(cluster.SimSeconds(), 0.0);
}

TEST(ClusterTest, MapRoundCountsRoundNotShuffle) {
  Cluster cluster(TestConfig());
  cluster.AccountMapRound("m");
  EXPECT_EQ(cluster.metrics().Get("rounds"), 1);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 0);
}

TEST(ClusterTest, RunMapPhaseVisitsEveryItemOnce) {
  Cluster cluster(TestConfig());
  const int64_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  cluster.RunMapPhase("visit", n, [&](int64_t item, MachineContext&) {
    hits[item].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  EXPECT_EQ(cluster.metrics().Get("map_items"), n);
  EXPECT_EQ(cluster.metrics().Get("rounds"), 1);
}

TEST(ClusterTest, MapPhaseRoutesItemsToOwningMachine) {
  Cluster cluster(TestConfig());
  std::atomic<int> mismatches{0};
  cluster.RunMapPhase("route", 2000, [&](int64_t item, MachineContext& ctx) {
    if (cluster.MachineOf(item) != ctx.machine_id()) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ClusterTest, KvWriteAndLookupAccounting) {
  Cluster cluster(TestConfig());
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(100);
  cluster.RunKvWritePhase("w", store, 100, [](int64_t k) { return k * 3; });
  EXPECT_EQ(cluster.metrics().Get("kv_writes"), 100);
  EXPECT_GT(cluster.metrics().Get("kv_write_bytes"), 0);

  std::atomic<int64_t> sum{0};
  cluster.RunMapPhase("r", 100, [&](int64_t item, MachineContext& ctx) {
    const int64_t* v = ctx.Lookup(store, item);
    ASSERT_NE(v, nullptr);
    sum.fetch_add(*v);
  });
  EXPECT_EQ(sum.load(), 3 * 99 * 100 / 2);
  EXPECT_EQ(cluster.metrics().Get("kv_reads"), 100);
  EXPECT_GT(cluster.metrics().Get("kv_read_bytes"), 0);
}

TEST(ClusterTest, LocalLookupNotCharged) {
  Cluster cluster(TestConfig());
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(10);
  cluster.RunKvWritePhase("w", store, 10, [](int64_t k) { return k; });
  cluster.RunMapPhase("r", 10, [&](int64_t item, MachineContext& ctx) {
    ctx.LookupLocal(store, item);
  });
  EXPECT_EQ(cluster.metrics().Get("kv_reads"), 0);
}

TEST(ClusterTest, CacheCountersFlow) {
  Cluster cluster(TestConfig());
  cluster.RunMapPhase("c", 10, [&](int64_t item, MachineContext& ctx) {
    if (item % 2 == 0) {
      ctx.CountCacheHit();
    } else {
      ctx.CountCacheMiss();
    }
  });
  EXPECT_EQ(cluster.metrics().Get("cache_hits"), 5);
  EXPECT_EQ(cluster.metrics().Get("cache_misses"), 5);
}

TEST(ClusterTest, MissingKeyLookupReturnsNullAndCharges) {
  Cluster cluster(TestConfig());
  kv::ShardedStore<int64_t> store =
      cluster.MakeStore<int64_t>(10);  // nothing written
  std::atomic<int> nulls{0};
  cluster.RunMapPhase("miss", 10, [&](int64_t item, MachineContext& ctx) {
    if (ctx.Lookup(store, item) == nullptr) nulls.fetch_add(1);
  });
  EXPECT_EQ(nulls.load(), 10);
  EXPECT_EQ(cluster.metrics().Get("kv_reads"), 10);
}

TEST(ClusterTest, SimTimeScalesWithMachines) {
  // The same KV-heavy phase should be faster (in simulated time) on more
  // machines — the Figure 8 self-speedup mechanism.
  auto run = [](int machines) {
    ClusterConfig config;
    config.num_machines = machines;
    config.threads_per_machine = 1;
    Cluster cluster(config);
    kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(20000);
    cluster.RunKvWritePhase("w", store, 20000,
                            [](int64_t k) { return k; });
    cluster.RunMapPhase("r", 20000, [&](int64_t item, MachineContext& ctx) {
      ctx.Lookup(store, (item * 7919) % 20000);
    });
    return cluster.metrics().GetTime("sim:r");
  };
  EXPECT_GT(run(1), run(16));
}

TEST(ClusterTest, MultithreadingReducesSimTime) {
  auto run = [](bool multithreading) {
    ClusterConfig config;
    config.num_machines = 2;
    config.threads_per_machine = 8;
    config.multithreading = multithreading;
    Cluster cluster(config);
    kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(20000);
    cluster.RunKvWritePhase("w", store, 20000,
                            [](int64_t k) { return k; });
    cluster.RunMapPhase("r", 20000, [&](int64_t item, MachineContext& ctx) {
      ctx.Lookup(store, (item * 13) % 20000);
    });
    return cluster.metrics().GetTime("sim:r");
  };
  EXPECT_GT(run(false), run(true));
}

TEST(ClusterTest, TcpSlowerThanRdmaInSimTime) {
  auto run = [](kv::NetworkModel model) {
    ClusterConfig config;
    config.num_machines = 2;
    config.network = model;
    Cluster cluster(config);
    kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(20000);
    cluster.RunKvWritePhase("w", store, 20000,
                            [](int64_t k) { return k; });
    cluster.RunMapPhase("r", 20000, [&](int64_t item, MachineContext& ctx) {
      ctx.Lookup(store, (item * 13) % 20000);
    });
    return cluster.metrics().GetTime("sim:r");
  };
  EXPECT_GT(run(kv::NetworkModel::TcpIp()), run(kv::NetworkModel::Rdma()));
}


TEST(ClusterTest, MakeStoreShardingMatchesMachineOf) {
  Cluster cluster(TestConfig());
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(500);
  ASSERT_EQ(store.num_shards(), cluster.config().num_machines);
  for (uint64_t k = 0; k < 500; ++k) {
    EXPECT_EQ(store.ShardOf(k), cluster.MachineOf(k)) << k;
  }
}

TEST(ClusterTest, WritePhaseChargesOwningShards) {
  Cluster cluster(TestConfig());
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(1000);
  cluster.RunKvWritePhase("w", store, 1000, [](int64_t k) { return k; });
  const int64_t record = kv::kKeyBytes + static_cast<int64_t>(sizeof(int64_t));
  int64_t expected_hot = 0;
  for (int m = 0; m < store.num_shards(); ++m) {
    EXPECT_EQ(store.ShardBytes(m), store.ShardSize(m) * record);
    EXPECT_EQ(cluster.machine_kv_write_bytes()[m], store.ShardBytes(m));
    expected_hot = std::max(expected_hot, store.ShardBytes(m));
  }
  EXPECT_EQ(cluster.metrics().Get("kv_hot_machine_write_bytes"),
            expected_hot);
}

// Regression for the old uniform bytes/num_machines charging: a skewed
// key distribution (~90% of the bytes landing on one machine's shard)
// must cost strictly more simulated write time than a uniform one of the
// same total byte volume.
TEST(ClusterTest, SkewedWriteBytesCostMoreThanUniform) {
  const int64_t n = 4000;
  auto run = [&](bool skewed) {
    ClusterConfig config = TestConfig();
    Cluster cluster(config);
    // Count keys on machine 0 so both producers emit the same total.
    int64_t hot_keys = 0;
    for (int64_t k = 0; k < n; ++k) hot_keys += cluster.MachineOf(k) == 0;
    const int64_t total_values = 64 * n;
    const int64_t hot_value = total_values * 9 / (10 * hot_keys);
    const int64_t cold_value =
        (total_values - hot_value * hot_keys) / (n - hot_keys);
    auto store = cluster.MakeStore<std::vector<uint8_t>>(n);
    cluster.RunKvWritePhase(
        "w", store, n, [&](int64_t k) {
          int64_t len = 64;
          if (skewed) {
            len = cluster.MachineOf(k) == 0 ? hot_value : cold_value;
          }
          return std::vector<uint8_t>(static_cast<size_t>(len), 0);
        });
    return cluster.metrics().GetTime("sim:w");
  };
  EXPECT_GT(run(true), run(false));
}

TEST(ClusterTest, HotKeyLookupsCostMoreThanSpread) {
  const int64_t n = 4000;
  auto run = [&](bool hot) {
    Cluster cluster(TestConfig());
    auto store = cluster.MakeStore<std::vector<uint8_t>>(n);
    cluster.RunKvWritePhase("w", store, n, [](int64_t) {
      return std::vector<uint8_t>(256, 1);
    });
    cluster.RunMapPhase("r", n, [&](int64_t item, MachineContext& ctx) {
      ctx.Lookup(store, hot ? 0 : static_cast<uint64_t>(item));
    });
    return cluster.metrics().GetTime("sim:r");
  };
  // Every record fetched in the hot run ships from one machine's shard.
  EXPECT_GT(run(true), run(false));
}

TEST(ClusterTest, ShardedShuffleSkewCostsMore) {
  Cluster a(TestConfig()), b(TestConfig());
  a.AccountShardedShuffle("s", {25'000'000, 25'000'000, 25'000'000,
                                25'000'000});
  b.AccountShardedShuffle("s", {91'000'000, 3'000'000, 3'000'000,
                                3'000'000});
  EXPECT_EQ(a.metrics().Get("shuffle_bytes"),
            b.metrics().Get("shuffle_bytes"));
  EXPECT_GT(b.metrics().GetTime("sim:s"), a.metrics().GetTime("sim:s"));
  EXPECT_EQ(b.metrics().Get("shuffle_hot_machine_bytes"), 91'000'000);
}

// Pins the skew-aware settle math: the round lasts as long as the
// slowest machine's client latency plus the bytes its own shard serves,
// plus the spawn overhead.
TEST(ClusterTest, SettleMathChargesServerSideBytes) {
  ClusterConfig config;
  config.num_machines = 2;
  config.threads_per_machine = 1;
  config.map_item_cpu_sec = 0.0;
  config.round_spawn_sec = 0.125;
  config.network.lookup_latency_sec = 1e-3;
  config.network.bytes_per_sec = 1e6;
  config.network.aggregate_bytes_per_sec = 1e18;  // floor never binds
  Cluster cluster(config);

  const int64_t n = 64;
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
  cluster.RunKvWritePhase("w", store, n, [](int64_t k) { return k; });

  const uint64_t hot = 3;
  const int hot_owner = cluster.MachineOf(hot);
  cluster.RunMapPhase("r", n, [&](int64_t item, MachineContext& ctx) {
    const int64_t* v = ctx.Lookup(store, hot);
    ASSERT_NE(v, nullptr);
    (void)item;
  });

  // Each machine issues one query per item it owns and receives that
  // record through its own NIC; every record ships *from* the hot key's
  // owner.
  std::vector<int64_t> queries(2, 0);
  for (int64_t i = 0; i < n; ++i) ++queries[cluster.MachineOf(i)];
  const int64_t record =
      kv::kKeyBytes + static_cast<int64_t>(sizeof(int64_t));
  double slowest = 0;
  for (int m = 0; m < 2; ++m) {
    const double client =
        queries[m] * config.network.lookup_latency_sec +
        static_cast<double>(queries[m]) * record /
            config.network.bytes_per_sec;
    const double server =
        m == hot_owner ? static_cast<double>(n) * record /
                             config.network.bytes_per_sec
                       : 0.0;
    slowest = std::max(slowest, client + server);
  }
  EXPECT_NEAR(cluster.metrics().GetTime("sim:r"),
              slowest + config.round_spawn_sec, 1e-12);
  EXPECT_EQ(cluster.metrics().Get("kv_hot_machine_read_bytes"),
            n * record);
}

// Pins the write-phase settle math symmetrically.
TEST(ClusterTest, WriteSettleMathChargesOwningShard) {
  ClusterConfig config;
  config.num_machines = 2;
  config.threads_per_machine = 1;
  config.round_spawn_sec = 0.25;
  config.network.write_latency_sec = 1e-4;
  config.network.bytes_per_sec = 1e6;
  config.network.aggregate_bytes_per_sec = 1e18;
  Cluster cluster(config);

  const int64_t n = 64;
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
  cluster.RunKvWritePhase("w", store, n, [](int64_t k) { return k; });

  const int64_t record =
      kv::kKeyBytes + static_cast<int64_t>(sizeof(int64_t));
  double slowest = 0;
  for (int m = 0; m < 2; ++m) {
    const double machine_time =
        store.ShardSize(m) * config.network.write_latency_sec +
        static_cast<double>(store.ShardBytes(m)) /
            config.network.bytes_per_sec;
    slowest = std::max(slowest, machine_time);
  }
  EXPECT_EQ(store.ShardBytes(0) + store.ShardBytes(1), n * record);
  EXPECT_NEAR(cluster.metrics().GetTime("sim:w"),
              slowest + config.round_spawn_sec, 1e-12);
}

TEST(ClusterTest, InMemoryFinishChargesGatherShuffle) {
  Cluster cluster(TestConfig());
  cluster.AccountInMemoryFinish("f", 1000, 500);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 1);
  cluster.AccountInMemoryCompute("g", 500);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 1);  // compute adds none
}

}  // namespace
}  // namespace ampc::sim
