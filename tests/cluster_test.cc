#include "sim/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

namespace ampc::sim {
namespace {

ClusterConfig TestConfig() {
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  config.network = kv::NetworkModel::Rdma();
  return config;
}

TEST(ClusterTest, MachineOfIsStableAndInRange) {
  Cluster cluster(TestConfig());
  for (uint64_t k = 0; k < 1000; ++k) {
    const int m = cluster.MachineOf(k);
    EXPECT_GE(m, 0);
    EXPECT_LT(m, 4);
    EXPECT_EQ(m, cluster.MachineOf(k));
  }
}

TEST(ClusterTest, ShuffleAccounting) {
  Cluster cluster(TestConfig());
  cluster.AccountShuffle("phase", 1000);
  cluster.AccountShuffle("phase", 500);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 2);
  EXPECT_EQ(cluster.metrics().Get("rounds"), 2);
  EXPECT_EQ(cluster.metrics().Get("shuffle_bytes"), 1500);
  EXPECT_GT(cluster.SimSeconds(), 0.0);
}

TEST(ClusterTest, MapRoundCountsRoundNotShuffle) {
  Cluster cluster(TestConfig());
  cluster.AccountMapRound("m");
  EXPECT_EQ(cluster.metrics().Get("rounds"), 1);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 0);
}

TEST(ClusterTest, RunMapPhaseVisitsEveryItemOnce) {
  Cluster cluster(TestConfig());
  const int64_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  cluster.RunMapPhase("visit", n, [&](int64_t item, MachineContext&) {
    hits[item].fetch_add(1);
  });
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  EXPECT_EQ(cluster.metrics().Get("map_items"), n);
  EXPECT_EQ(cluster.metrics().Get("rounds"), 1);
}

TEST(ClusterTest, MapPhaseRoutesItemsToOwningMachine) {
  Cluster cluster(TestConfig());
  std::atomic<int> mismatches{0};
  cluster.RunMapPhase("route", 2000, [&](int64_t item, MachineContext& ctx) {
    if (cluster.MachineOf(item) != ctx.machine_id()) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ClusterTest, KvWriteAndLookupAccounting) {
  Cluster cluster(TestConfig());
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(100);
  cluster.RunKvWritePhase("w", store, 100, [](int64_t k) { return k * 3; });
  EXPECT_EQ(cluster.metrics().Get("kv_writes"), 100);
  EXPECT_GT(cluster.metrics().Get("kv_write_bytes"), 0);

  std::atomic<int64_t> sum{0};
  cluster.RunMapPhase("r", 100, [&](int64_t item, MachineContext& ctx) {
    const int64_t* v = ctx.Lookup(store, item);
    ASSERT_NE(v, nullptr);
    sum.fetch_add(*v);
  });
  EXPECT_EQ(sum.load(), 3 * 99 * 100 / 2);
  EXPECT_EQ(cluster.metrics().Get("kv_reads"), 100);
  EXPECT_GT(cluster.metrics().Get("kv_read_bytes"), 0);
}

TEST(ClusterTest, LocalLookupNotCharged) {
  Cluster cluster(TestConfig());
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(10);
  cluster.RunKvWritePhase("w", store, 10, [](int64_t k) { return k; });
  cluster.RunMapPhase("r", 10, [&](int64_t item, MachineContext& ctx) {
    ctx.LookupLocal(store, item);
  });
  EXPECT_EQ(cluster.metrics().Get("kv_reads"), 0);
}

TEST(ClusterTest, CacheCountersFlow) {
  Cluster cluster(TestConfig());
  cluster.RunMapPhase("c", 10, [&](int64_t item, MachineContext& ctx) {
    if (item % 2 == 0) {
      ctx.CountCacheHit();
    } else {
      ctx.CountCacheMiss();
    }
  });
  EXPECT_EQ(cluster.metrics().Get("cache_hits"), 5);
  EXPECT_EQ(cluster.metrics().Get("cache_misses"), 5);
}

TEST(ClusterTest, MissingKeyLookupReturnsNullAndCharges) {
  Cluster cluster(TestConfig());
  kv::ShardedStore<int64_t> store =
      cluster.MakeStore<int64_t>(10);  // nothing written
  std::atomic<int> nulls{0};
  cluster.RunMapPhase("miss", 10, [&](int64_t item, MachineContext& ctx) {
    if (ctx.Lookup(store, item) == nullptr) nulls.fetch_add(1);
  });
  EXPECT_EQ(nulls.load(), 10);
  EXPECT_EQ(cluster.metrics().Get("kv_reads"), 10);
}

TEST(ClusterTest, SimTimeScalesWithMachines) {
  // The same KV-heavy phase should be faster (in simulated time) on more
  // machines — the Figure 8 self-speedup mechanism.
  auto run = [](int machines) {
    ClusterConfig config;
    config.num_machines = machines;
    config.threads_per_machine = 1;
    Cluster cluster(config);
    kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(20000);
    cluster.RunKvWritePhase("w", store, 20000,
                            [](int64_t k) { return k; });
    cluster.RunMapPhase("r", 20000, [&](int64_t item, MachineContext& ctx) {
      ctx.Lookup(store, (item * 7919) % 20000);
    });
    return cluster.metrics().GetTime("sim:r");
  };
  EXPECT_GT(run(1), run(16));
}

TEST(ClusterTest, MultithreadingReducesSimTime) {
  auto run = [](bool multithreading) {
    ClusterConfig config;
    config.num_machines = 2;
    config.threads_per_machine = 8;
    config.multithreading = multithreading;
    Cluster cluster(config);
    kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(20000);
    cluster.RunKvWritePhase("w", store, 20000,
                            [](int64_t k) { return k; });
    cluster.RunMapPhase("r", 20000, [&](int64_t item, MachineContext& ctx) {
      ctx.Lookup(store, (item * 13) % 20000);
    });
    return cluster.metrics().GetTime("sim:r");
  };
  EXPECT_GT(run(false), run(true));
}

TEST(ClusterTest, TcpSlowerThanRdmaInSimTime) {
  auto run = [](kv::NetworkModel model) {
    ClusterConfig config;
    config.num_machines = 2;
    config.network = model;
    Cluster cluster(config);
    kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(20000);
    cluster.RunKvWritePhase("w", store, 20000,
                            [](int64_t k) { return k; });
    cluster.RunMapPhase("r", 20000, [&](int64_t item, MachineContext& ctx) {
      ctx.Lookup(store, (item * 13) % 20000);
    });
    return cluster.metrics().GetTime("sim:r");
  };
  EXPECT_GT(run(kv::NetworkModel::TcpIp()), run(kv::NetworkModel::Rdma()));
}


TEST(ClusterTest, MakeStoreShardingMatchesMachineOf) {
  Cluster cluster(TestConfig());
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(500);
  ASSERT_EQ(store.num_shards(), cluster.config().num_machines);
  for (uint64_t k = 0; k < 500; ++k) {
    EXPECT_EQ(store.ShardOf(k), cluster.MachineOf(k)) << k;
  }
}

TEST(ClusterTest, WritePhaseChargesOwningShards) {
  Cluster cluster(TestConfig());
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(1000);
  cluster.RunKvWritePhase("w", store, 1000, [](int64_t k) { return k; });
  const int64_t record = kv::kKeyBytes + static_cast<int64_t>(sizeof(int64_t));
  int64_t expected_hot = 0;
  for (int m = 0; m < store.num_shards(); ++m) {
    EXPECT_EQ(store.ShardBytes(m), store.ShardSize(m) * record);
    EXPECT_EQ(cluster.machine_kv_write_bytes()[m], store.ShardBytes(m));
    expected_hot = std::max(expected_hot, store.ShardBytes(m));
  }
  EXPECT_EQ(cluster.metrics().Get("kv_hot_machine_write_bytes"),
            expected_hot);
}

// Regression for the old uniform bytes/num_machines charging: a skewed
// key distribution (~90% of the bytes landing on one machine's shard)
// must cost strictly more simulated write time than a uniform one of the
// same total byte volume.
TEST(ClusterTest, SkewedWriteBytesCostMoreThanUniform) {
  const int64_t n = 4000;
  auto run = [&](bool skewed) {
    ClusterConfig config = TestConfig();
    Cluster cluster(config);
    // Count keys on machine 0 so both producers emit the same total.
    int64_t hot_keys = 0;
    for (int64_t k = 0; k < n; ++k) hot_keys += cluster.MachineOf(k) == 0;
    const int64_t total_values = 64 * n;
    const int64_t hot_value = total_values * 9 / (10 * hot_keys);
    const int64_t cold_value =
        (total_values - hot_value * hot_keys) / (n - hot_keys);
    auto store = cluster.MakeStore<std::vector<uint8_t>>(n);
    cluster.RunKvWritePhase(
        "w", store, n, [&](int64_t k) {
          int64_t len = 64;
          if (skewed) {
            len = cluster.MachineOf(k) == 0 ? hot_value : cold_value;
          }
          return std::vector<uint8_t>(static_cast<size_t>(len), 0);
        });
    return cluster.metrics().GetTime("sim:w");
  };
  EXPECT_GT(run(true), run(false));
}

TEST(ClusterTest, HotKeyLookupsCostMoreThanSpread) {
  const int64_t n = 4000;
  auto run = [&](bool hot) {
    ClusterConfig config = TestConfig();
    // Uncached client: this test pins the raw hot-shard penalty (the
    // query cache would absorb the repeated key after one fetch per
    // machine — QueryCacheRescuesHotKeyReads covers that).
    config.query_cache.enabled = false;
    Cluster cluster(config);
    auto store = cluster.MakeStore<std::vector<uint8_t>>(n);
    cluster.RunKvWritePhase("w", store, n, [](int64_t) {
      return std::vector<uint8_t>(256, 1);
    });
    cluster.RunMapPhase("r", n, [&](int64_t item, MachineContext& ctx) {
      ctx.Lookup(store, hot ? 0 : static_cast<uint64_t>(item));
    });
    return cluster.metrics().GetTime("sim:r");
  };
  // Every record fetched in the hot run ships from one machine's shard.
  EXPECT_GT(run(true), run(false));
}

TEST(ClusterTest, ShardedShuffleSkewCostsMore) {
  Cluster a(TestConfig()), b(TestConfig());
  a.AccountShardedShuffle("s", {25'000'000, 25'000'000, 25'000'000,
                                25'000'000});
  b.AccountShardedShuffle("s", {91'000'000, 3'000'000, 3'000'000,
                                3'000'000});
  EXPECT_EQ(a.metrics().Get("shuffle_bytes"),
            b.metrics().Get("shuffle_bytes"));
  EXPECT_GT(b.metrics().GetTime("sim:s"), a.metrics().GetTime("sim:s"));
  EXPECT_EQ(b.metrics().Get("shuffle_hot_machine_bytes"), 91'000'000);
}

// Pins the skew-aware settle math: the round lasts as long as the
// slowest machine's client latency plus the bytes its own shard serves,
// plus the spawn overhead.
TEST(ClusterTest, SettleMathChargesServerSideBytes) {
  ClusterConfig config;
  config.num_machines = 2;
  config.threads_per_machine = 1;
  config.query_cache.enabled = false;  // pins the uncached client math
  config.map_item_cpu_sec = 0.0;
  config.round_spawn_sec = 0.125;
  config.network.lookup_latency_sec = 1e-3;
  config.network.bytes_per_sec = 1e6;
  config.network.aggregate_bytes_per_sec = 1e18;  // floor never binds
  Cluster cluster(config);

  const int64_t n = 64;
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
  cluster.RunKvWritePhase("w", store, n, [](int64_t k) { return k; });

  const uint64_t hot = 3;
  const int hot_owner = cluster.MachineOf(hot);
  cluster.RunMapPhase("r", n, [&](int64_t item, MachineContext& ctx) {
    const int64_t* v = ctx.Lookup(store, hot);
    ASSERT_NE(v, nullptr);
    (void)item;
  });

  // Each machine issues one query per item it owns and receives that
  // record through its own NIC; every record ships *from* the hot key's
  // owner.
  std::vector<int64_t> queries(2, 0);
  for (int64_t i = 0; i < n; ++i) ++queries[cluster.MachineOf(i)];
  const int64_t record =
      kv::kKeyBytes + static_cast<int64_t>(sizeof(int64_t));
  double slowest = 0;
  for (int m = 0; m < 2; ++m) {
    const double client =
        queries[m] * config.network.lookup_latency_sec +
        static_cast<double>(queries[m]) * record /
            config.network.bytes_per_sec;
    const double server =
        m == hot_owner ? static_cast<double>(n) * record /
                             config.network.bytes_per_sec
                       : 0.0;
    slowest = std::max(slowest, client + server);
  }
  EXPECT_NEAR(cluster.metrics().GetTime("sim:r"),
              slowest + config.round_spawn_sec, 1e-12);
  EXPECT_EQ(cluster.metrics().Get("kv_hot_machine_read_bytes"),
            n * record);
}

// Pins the write-phase settle math symmetrically.
TEST(ClusterTest, WriteSettleMathChargesOwningShard) {
  ClusterConfig config;
  config.num_machines = 2;
  config.threads_per_machine = 1;
  config.round_spawn_sec = 0.25;
  config.network.write_latency_sec = 1e-4;
  config.network.bytes_per_sec = 1e6;
  config.network.aggregate_bytes_per_sec = 1e18;
  Cluster cluster(config);

  const int64_t n = 64;
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
  cluster.RunKvWritePhase("w", store, n, [](int64_t k) { return k; });

  const int64_t record =
      kv::kKeyBytes + static_cast<int64_t>(sizeof(int64_t));
  double slowest = 0;
  for (int m = 0; m < 2; ++m) {
    const double machine_time =
        store.ShardSize(m) * config.network.write_latency_sec +
        static_cast<double>(store.ShardBytes(m)) /
            config.network.bytes_per_sec;
    slowest = std::max(slowest, machine_time);
  }
  EXPECT_EQ(store.ShardBytes(0) + store.ShardBytes(1), n * record);
  EXPECT_NEAR(cluster.metrics().GetTime("sim:w"),
              slowest + config.round_spawn_sec, 1e-12);
}

TEST(ClusterTest, InMemoryFinishChargesGatherShuffle) {
  Cluster cluster(TestConfig());
  cluster.AccountInMemoryFinish("f", 1000, 500);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 1);
  cluster.AccountInMemoryCompute("g", 500);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 1);  // compute adds none
}

TEST(ClusterTest, LookupManyReturnsSameValuesAsScalarLookup) {
  ClusterConfig config = TestConfig();
  // Uncached: the second LookupMany below re-fetches every key, so the
  // two batches' byte/destination accounting must be identical.
  config.query_cache.enabled = false;
  Cluster cluster(config);
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(200);
  cluster.RunKvWritePhase("w", store, 100, [](int64_t k) { return 5 * k; });
  std::atomic<int> mismatches{0};
  cluster.RunBatchMapPhase(
      "r", 200, [&](std::span<const int64_t> items, MachineContext& ctx) {
        // Exercise both entry points: the span overload and the
        // LookupBatch request object must answer identically.
        std::vector<uint64_t> keys(items.begin(), items.end());
        const auto batch = ctx.LookupMany(store, keys);
        kv::LookupBatch request;
        request.keys = keys;
        const auto from_request = ctx.LookupMany(store, request);
        ASSERT_EQ(batch.values.size(), keys.size());
        ASSERT_EQ(from_request.values, batch.values);
        ASSERT_EQ(from_request.destinations, batch.destinations);
        ASSERT_EQ(from_request.bytes, batch.bytes);
        for (size_t i = 0; i < keys.size(); ++i) {
          // Keys >= 100 were never written: both paths must agree on
          // absence too.
          const int64_t* scalar = store.Lookup(keys[i]);
          if (batch.values[i] != scalar) mismatches.fetch_add(1);
        }
      });
  EXPECT_EQ(mismatches.load(), 0);
  // Batch metrics flowed: both batches charged all 200 keys each.
  EXPECT_EQ(cluster.metrics().Get("kv_reads"), 400);
  EXPECT_GT(cluster.metrics().Get("kv_batches"), 0);
}

// Pins the batched settle math: a batch charges one round-trip latency
// per distinct destination machine — not one per key — while bytes stay
// charged per machine (client receives, owner serves).
TEST(ClusterTest, BatchSettleMathChargesPerDestination) {
  ClusterConfig config;
  config.num_machines = 2;
  config.threads_per_machine = 1;
  config.query_cache.enabled = false;  // pins the uncached batch math
  config.map_item_cpu_sec = 0.0;
  config.round_spawn_sec = 0.125;
  config.network.lookup_latency_sec = 1e-3;
  config.network.bytes_per_sec = 1e6;
  config.network.aggregate_bytes_per_sec = 1e18;  // floor never binds
  Cluster cluster(config);

  const int64_t n = 64;
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
  cluster.RunKvWritePhase("w", store, n, [](int64_t k) { return k; });

  // Every item fetches the whole key space in one batch: exactly 2
  // destinations per batch regardless of the 64 keys inside.
  std::vector<uint64_t> all_keys(n);
  for (int64_t k = 0; k < n; ++k) all_keys[k] = static_cast<uint64_t>(k);
  cluster.RunMapPhase("r", n, [&](int64_t, MachineContext& ctx) {
    const auto batch = ctx.LookupMany(store, all_keys);
    ASSERT_EQ(batch.destinations, 2);
  });

  const int64_t record =
      kv::kKeyBytes + static_cast<int64_t>(sizeof(int64_t));
  std::vector<int64_t> items_on(2, 0), keys_on(2, 0);
  for (int64_t i = 0; i < n; ++i) ++items_on[cluster.MachineOf(i, n)];
  for (int64_t k = 0; k < n; ++k) ++keys_on[cluster.MachineOf(k, n)];
  double slowest = 0;
  for (int m = 0; m < 2; ++m) {
    // Client: one batch per item it runs, 2 trips per batch; it receives
    // all n records per batch through its NIC.
    const double client =
        items_on[m] * 2 * config.network.lookup_latency_sec +
        static_cast<double>(items_on[m]) * n * record /
            config.network.bytes_per_sec;
    // Server: its shard serves its keys_on[m] records to every item.
    const double server = static_cast<double>(n) * keys_on[m] * record /
                          config.network.bytes_per_sec;
    slowest = std::max(slowest, client + server);
  }
  EXPECT_NEAR(cluster.metrics().GetTime("sim:r"),
              slowest + config.round_spawn_sec, 1e-9);
  EXPECT_EQ(cluster.metrics().Get("kv_lookup_trips"), n * 2);
  EXPECT_EQ(cluster.metrics().Get("kv_reads"), n * n);
  EXPECT_EQ(cluster.metrics().Get("kv_batches"), n);
}

// The ablation toggle: the same batched workload costs strictly more
// simulated time when batch_lookups is off (every key pays a full round
// trip) — and returns bit-identical values either way.
TEST(ClusterTest, BatchingStrictlyCheaperThanScalarCharging) {
  auto run = [](bool batch) {
    ClusterConfig config;
    config.num_machines = 4;
    config.threads_per_machine = 1;
    config.batch_lookups = batch;
    Cluster cluster(config);
    kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(4000);
    cluster.RunKvWritePhase("w", store, 4000,
                            [](int64_t k) { return k; });
    std::atomic<int64_t> sum{0};
    cluster.RunBatchMapPhase(
        "r", 4000, [&](std::span<const int64_t> items, MachineContext& ctx) {
          std::vector<uint64_t> keys;
          for (const int64_t item : items) {
            keys.push_back(static_cast<uint64_t>((item * 13) % 4000));
          }
          const auto batch_result = ctx.LookupMany(store, keys);
          int64_t local = 0;
          for (const int64_t* v : batch_result.values) local += *v;
          sum.fetch_add(local);
        });
    return std::pair<double, int64_t>(cluster.metrics().GetTime("sim:r"),
                                      sum.load());
  };
  const auto [batched_time, batched_sum] = run(true);
  const auto [scalar_time, scalar_sum] = run(false);
  EXPECT_LT(batched_time, scalar_time);
  EXPECT_EQ(batched_sum, scalar_sum);
}

TEST(ClusterTest, RoundFootprintsAlignWithRoundLog) {
  Cluster cluster(TestConfig());
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(500);
  cluster.AccountShuffle("shuffle", 1000);
  cluster.RunKvWritePhase("w", store, 500, [](int64_t k) { return k; });
  cluster.RunMapPhase("r", 500, [&](int64_t item, MachineContext& ctx) {
    ctx.Lookup(store, static_cast<uint64_t>(item));
  });
  const auto& footprints = cluster.round_footprints();
  ASSERT_EQ(footprints.size(), cluster.round_log().size());
  ASSERT_EQ(footprints.size(), 3u);
  // The shuffle round carries no KV traffic.
  for (const int64_t b : footprints[0].kv_write_bytes) EXPECT_EQ(b, 0);
  // The write round's per-machine bytes match the shards' footprint and
  // the cumulative counter.
  const int64_t record =
      kv::kKeyBytes + static_cast<int64_t>(sizeof(int64_t));
  int64_t write_total = 0;
  for (int m = 0; m < cluster.config().num_machines; ++m) {
    EXPECT_EQ(footprints[1].kv_write_bytes[m], store.ShardBytes(m));
    EXPECT_EQ(footprints[1].kv_write_bytes[m],
              cluster.machine_kv_write_bytes()[m]);
    write_total += footprints[1].kv_write_bytes[m];
  }
  EXPECT_EQ(write_total, 500 * record);
  // The map round records what each machine's shard served.
  int64_t read_total = 0;
  for (const int64_t b : footprints[2].kv_read_bytes) read_total += b;
  EXPECT_EQ(read_total, 500 * record);
  // RoundKvWriteBytes is the write column view.
  const auto write_rows = cluster.RoundKvWriteBytes();
  ASSERT_EQ(write_rows.size(), 3u);
  EXPECT_EQ(write_rows[1], footprints[1].kv_write_bytes);
}

// --- Query-result caching (the Section 5.3 cache stage) -------------------

// A hot key is fetched remotely once per machine; every later lookup is
// a cache hit served locally: no trip, no client bytes, no owner bytes.
TEST(ClusterTest, QueryCacheHitsSkipTripsAndBytes) {
  ClusterConfig config;
  config.num_machines = 2;
  config.threads_per_machine = 1;
  Cluster cluster(config);
  const int64_t n = 64;
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
  cluster.RunKvWritePhase("w", store, n, [](int64_t k) { return k * 3; });

  const uint64_t hot = 3;
  std::atomic<int64_t> sum{0};
  cluster.RunMapPhase("r", n, [&](int64_t, MachineContext& ctx) {
    const int64_t* v = ctx.Lookup(store, hot);
    ASSERT_NE(v, nullptr);
    sum.fetch_add(*v);
  });
  EXPECT_EQ(sum.load(), n * hot * 3);

  const int64_t record =
      kv::kKeyBytes + static_cast<int64_t>(sizeof(int64_t));
  // One miss per machine (single worker each), the rest hits.
  EXPECT_EQ(cluster.metrics().Get("cache_misses"), 2);
  EXPECT_EQ(cluster.metrics().Get("cache_hits"), n - 2);
  EXPECT_EQ(cluster.metrics().Get("kv_lookup_trips"), 2);
  EXPECT_EQ(cluster.metrics().Get("kv_read_bytes"), 2 * record);
  EXPECT_EQ(cluster.metrics().Get("kv_hot_machine_read_bytes"), 2 * record);
  // Queries still count every logical read.
  EXPECT_EQ(cluster.metrics().Get("kv_reads"), n);
}

// The caching ablation axis: the same hot-key read storm costs strictly
// less simulated time with the cache on, and returns identical values.
TEST(ClusterTest, QueryCacheRescuesHotKeyReads) {
  const int64_t n = 4000;
  auto run = [&](bool cached) {
    ClusterConfig config = TestConfig();
    config.query_cache.enabled = cached;
    Cluster cluster(config);
    auto store = cluster.MakeStore<std::vector<uint8_t>>(n);
    cluster.RunKvWritePhase("w", store, n, [](int64_t) {
      return std::vector<uint8_t>(256, 1);
    });
    std::atomic<int64_t> sum{0};
    cluster.RunMapPhase("r", n, [&](int64_t, MachineContext& ctx) {
      const auto* v = ctx.Lookup(store, 0);
      sum.fetch_add(static_cast<int64_t>(v->size()));
    });
    return std::pair<double, int64_t>(cluster.metrics().GetTime("sim:r"),
                                      sum.load());
  };
  const auto [cached_time, cached_sum] = run(true);
  const auto [uncached_time, uncached_sum] = run(false);
  EXPECT_LT(cached_time, uncached_time);
  EXPECT_EQ(cached_sum, uncached_sum);
}

// Stale reads are impossible: a write phase invalidates every earlier
// cache entry, including cached negatives.
TEST(ClusterTest, QueryCacheEpochInvalidationAfterWritePhase) {
  ClusterConfig config;
  config.num_machines = 1;
  config.threads_per_machine = 1;
  Cluster cluster(config);
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(64);
  cluster.RunKvWritePhase("w1", store, 32, [](int64_t k) { return k; });

  const uint64_t probe = 40;  // not yet written
  cluster.RunMapPhase("r1", 1, [&](int64_t, MachineContext& ctx) {
    EXPECT_EQ(ctx.Lookup(store, probe), nullptr);  // miss, caches negative
  });
  cluster.RunMapPhase("r2", 1, [&](int64_t, MachineContext& ctx) {
    EXPECT_EQ(ctx.Lookup(store, probe), nullptr);  // hit on the negative
  });
  EXPECT_EQ(cluster.metrics().Get("cache_misses"), 1);
  EXPECT_EQ(cluster.metrics().Get("cache_hits"), 1);

  // Writing the key moves the store's version (write phases are the
  // normal vehicle for these Puts; RunKvWritePhase covers [0, n) so the
  // remaining range is written directly here): the cached negative must
  // not survive the write.
  store.Put(probe, static_cast<int64_t>(probe) * 7);
  cluster.RunMapPhase("r3", 1, [&](int64_t, MachineContext& ctx) {
    const int64_t* v = ctx.Lookup(store, probe);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, static_cast<int64_t>(probe) * 7);
  });
  EXPECT_EQ(cluster.metrics().Get("cache_misses"), 2);
  EXPECT_EQ(cluster.metrics().Get("cache_hits"), 1);
}

// Duplicate keys inside one batch are fetched once: the first occurrence
// misses and is charged, the repeats hit the warming cache.
TEST(ClusterTest, LookupManyCoalescesDuplicateKeysWithinBatch) {
  ClusterConfig config;
  config.num_machines = 2;
  config.threads_per_machine = 1;
  Cluster cluster(config);
  const int64_t n = 64;
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
  cluster.RunKvWritePhase("w", store, n, [](int64_t k) { return k; });

  const std::vector<uint64_t> keys = {5, 5, 5, 9};
  int expected_destinations = 1 + (store.ShardOf(5) != store.ShardOf(9));
  cluster.RunMapPhase("r", 1, [&](int64_t, MachineContext& ctx) {
    const auto batch = ctx.LookupMany(store, keys);
    ASSERT_EQ(batch.values.size(), keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_NE(batch.values[i], nullptr);
      EXPECT_EQ(*batch.values[i], static_cast<int64_t>(keys[i]));
    }
    EXPECT_EQ(batch.destinations, expected_destinations);
  });
  const int64_t record =
      kv::kKeyBytes + static_cast<int64_t>(sizeof(int64_t));
  EXPECT_EQ(cluster.metrics().Get("kv_reads"), 4);
  EXPECT_EQ(cluster.metrics().Get("cache_hits"), 2);
  EXPECT_EQ(cluster.metrics().Get("cache_misses"), 2);
  EXPECT_EQ(cluster.metrics().Get("kv_read_bytes"), 2 * record);
  EXPECT_EQ(cluster.metrics().Get("kv_lookup_trips"), expected_destinations);
}

// The Figure-4 axes stay independent: with batching off but caching on,
// each missed key pays a full scalar trip, hits pay nothing, and no wire
// batch is formed.
TEST(ClusterTest, CachingSkipsTripsEvenWithBatchingOff) {
  ClusterConfig config;
  config.num_machines = 2;
  config.threads_per_machine = 1;
  config.batch_lookups = false;
  Cluster cluster(config);
  const int64_t n = 64;
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
  cluster.RunKvWritePhase("w", store, n, [](int64_t k) { return k; });

  const std::vector<uint64_t> keys = {5, 5, 9};
  cluster.RunMapPhase("r", 1, [&](int64_t, MachineContext& ctx) {
    const auto batch = ctx.LookupMany(store, keys);
    ASSERT_EQ(batch.values.size(), 3u);
  });
  EXPECT_EQ(cluster.metrics().Get("kv_lookup_trips"), 2);  // the misses
  EXPECT_EQ(cluster.metrics().Get("cache_hits"), 1);
  EXPECT_EQ(cluster.metrics().Get("kv_batches"), 0);
}

// --- Adaptive sub-batching (ClusterConfig::max_batch_keys) ----------------

// A bounded sub-batch pays one trip per distinct destination *per
// sub-batch*: range placement over two machines makes the arithmetic
// exact. Values are identical regardless of the bound. Pipelining is
// pinned off (depth 1): the lockstep charge is the baseline the
// pipelined tests below discount from.
TEST(ClusterTest, SubBatchingSplitsTripAccounting) {
  auto run = [](int64_t max_batch_keys) {
    ClusterConfig config;
    config.num_machines = 2;
    config.threads_per_machine = 1;
    config.placement_policy = kv::PlacementPolicy::kRange;
    config.query_cache.enabled = false;
    config.max_batch_keys = max_batch_keys;
    config.pipeline_depth = 1;
    Cluster cluster(config);
    const int64_t n = 64;  // range placement: keys 0-31 -> m0, 32-63 -> m1
    kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
    cluster.RunKvWritePhase("w", store, n, [](int64_t k) { return k * 2; });
    std::vector<uint64_t> keys(n);
    for (int64_t k = 0; k < n; ++k) keys[k] = static_cast<uint64_t>(k);
    std::atomic<int64_t> sum{0};
    cluster.RunMapPhase("r", 1, [&](int64_t, MachineContext& ctx) {
      const auto batch = ctx.LookupMany(store, keys);
      int64_t local = 0;
      for (const int64_t* v : batch.values) local += *v;
      sum.fetch_add(local);
    });
    return std::tuple<int64_t, int64_t, int64_t>(
        cluster.metrics().Get("kv_lookup_trips"),
        cluster.metrics().Get("kv_batches"), sum.load());
  };
  // Unbounded: one batch, one trip per destination machine.
  const auto [trips_whole, batches_whole, sum_whole] = run(0);
  EXPECT_EQ(trips_whole, 2);
  EXPECT_EQ(batches_whole, 1);
  // Bounded at 8 keys: 8 sub-batches of 8 consecutive keys, each wholly
  // owned by one range machine -> one trip each.
  const auto [trips_sub, batches_sub, sum_sub] = run(8);
  EXPECT_EQ(trips_sub, 8);
  EXPECT_EQ(batches_sub, 8);
  EXPECT_EQ(sum_sub, sum_whole);
}

// --- Pipelined lookups (ClusterConfig::pipeline_depth) --------------------

// The pipelined trip discount, pinned exactly: range placement over two
// machines, 64 keys in windows of 8 — windows 0-3 wholly on machine 0,
// 4-7 on machine 1. One LookupMany forms one overlap group of 8
// windows, so each destination's 4 windows serialize into
// ceil(4 / depth) trips. Values and batches are depth-invariant.
TEST(ClusterTest, PipelinedSubBatchesOverlapTrips) {
  auto run = [](int pipeline_depth) {
    ClusterConfig config;
    config.num_machines = 2;
    config.threads_per_machine = 1;
    config.placement_policy = kv::PlacementPolicy::kRange;
    config.query_cache.enabled = false;
    config.max_batch_keys = 8;
    config.pipeline_depth = pipeline_depth;
    Cluster cluster(config);
    const int64_t n = 64;
    kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
    cluster.RunKvWritePhase("w", store, n, [](int64_t k) { return k * 2; });
    std::vector<uint64_t> keys(n);
    for (int64_t k = 0; k < n; ++k) keys[k] = static_cast<uint64_t>(k);
    std::atomic<int64_t> sum{0};
    cluster.RunMapPhase("r", 1, [&](int64_t, MachineContext& ctx) {
      const auto batch = ctx.LookupMany(store, keys);
      int64_t local = 0;
      for (const int64_t* v : batch.values) local += *v;
      sum.fetch_add(local);
    });
    return std::tuple<int64_t, int64_t, int64_t>(
        cluster.metrics().Get("kv_lookup_trips"),
        cluster.metrics().Get("kv_batches"), sum.load());
  };
  const auto [trips1, batches1, sum1] = run(1);
  const auto [trips2, batches2, sum2] = run(2);
  const auto [trips4, batches4, sum4] = run(4);
  const auto [trips8, batches8, sum8] = run(8);
  EXPECT_EQ(trips1, 8);  // lockstep: one trip per window per destination
  EXPECT_EQ(trips2, 4);  // ceil(4/2) per destination
  EXPECT_EQ(trips4, 2);  // ceil(4/4) per destination
  EXPECT_EQ(trips8, 2);  // ceil never drops below one trip
  EXPECT_EQ(batches1, 8);
  EXPECT_EQ(batches4, 8);  // every window still ships as a wire batch
  EXPECT_EQ(batches8, 8);
  EXPECT_EQ(sum2, sum1);
  EXPECT_EQ(sum4, sum1);
  EXPECT_EQ(sum8, sum1);
}

// The async primitives directly: tickets resolve to exactly what the
// store holds, and the drained overlap group charges ceil(windows /
// depth) serialized trips per destination.
TEST(ClusterTest, AsyncTicketsResolveValuesAndChargeCeilTrips) {
  ClusterConfig config;
  config.num_machines = 2;
  config.threads_per_machine = 1;
  config.placement_policy = kv::PlacementPolicy::kRange;
  config.query_cache.enabled = false;
  config.pipeline_depth = 2;
  Cluster cluster(config);
  const int64_t n = 64;  // range placement: keys 0-31 -> m0, 32-63 -> m1
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
  cluster.RunKvWritePhase("w", store, 32, [](int64_t k) { return k + 100; });
  cluster.RunMapPhase("r", 1, [&](int64_t, MachineContext& ctx) {
    // Three windows to machine 0 (one holding an absent key), one to
    // machine 1, all in flight together: m0 charges ceil(3/2) = 2
    // trips, m1 ceil(1/2) = 1.
    const std::vector<std::vector<uint64_t>> windows = {
        {0, 1}, {2, 3}, {30, 31}, {40, 41}};
    std::vector<kv::LookupTicket<int64_t>> tickets;
    for (const auto& w : windows) {
      tickets.push_back(ctx.LookupManyAsync(store, w));
    }
    for (size_t i = 0; i < windows.size(); ++i) {
      const auto batch = ctx.Await(tickets[i]);
      ASSERT_EQ(batch.values.size(), windows[i].size());
      for (size_t j = 0; j < windows[i].size(); ++j) {
        EXPECT_EQ(batch.values[j], store.Lookup(windows[i][j]));
      }
    }
  });
  EXPECT_EQ(cluster.metrics().Get("kv_lookup_trips"), 3);
  EXPECT_EQ(cluster.metrics().Get("kv_batches"), 4);
  EXPECT_EQ(cluster.metrics().Get("kv_reads"), 8);
}

// Satellite regression: a version bump while earlier windows are still
// in flight must never let a later window hit a stale cached value —
// the epoch is captured per issued window, not per multi-window call.
TEST(ClusterTest, VersionBumpBetweenInFlightWindowsNeverServesStale) {
  ClusterConfig config;
  config.num_machines = 1;
  config.threads_per_machine = 1;
  config.pipeline_depth = 4;
  Cluster cluster(config);
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(64);
  cluster.RunKvWritePhase("w", store, 32, [](int64_t k) { return k; });

  const uint64_t probe = 40;  // not yet written
  cluster.RunMapPhase("r", 1, [&](int64_t, MachineContext& ctx) {
    const std::vector<uint64_t> keys = {probe};
    // Window 0 misses and caches the negative under the current epoch.
    kv::LookupTicket<int64_t> first = ctx.LookupManyAsync(store, keys);
    // A write settles while the window is still in flight.
    store.Put(probe, 7);
    // Window 1, issued against the bumped version, must re-fetch: the
    // in-flight window's cached negative is stale for it.
    kv::LookupTicket<int64_t> second = ctx.LookupManyAsync(store, keys);
    const auto first_result = ctx.Await(first);
    const auto second_result = ctx.Await(second);
    EXPECT_EQ(first_result.values[0], nullptr);
    ASSERT_NE(second_result.values[0], nullptr);
    EXPECT_EQ(*second_result.values[0], 7);
  });
  EXPECT_EQ(cluster.metrics().Get("cache_misses"), 2);
  EXPECT_EQ(cluster.metrics().Get("cache_hits"), 0);
}

// The depth x max_batch_keys memory trade-off is measured: a worker
// holding depth windows of 8 keys peaks at depth * 8 in-flight keys.
TEST(ClusterTest, PeakInflightKeysTracksDepthTimesWindow) {
  auto run = [](int pipeline_depth) {
    ClusterConfig config;
    config.num_machines = 2;
    config.threads_per_machine = 1;
    config.query_cache.enabled = false;
    config.max_batch_keys = 8;
    config.pipeline_depth = pipeline_depth;
    Cluster cluster(config);
    const int64_t n = 64;
    kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
    cluster.RunKvWritePhase("w", store, n, [](int64_t k) { return k; });
    std::vector<uint64_t> keys(n);
    for (int64_t k = 0; k < n; ++k) keys[k] = static_cast<uint64_t>(k);
    cluster.RunMapPhase("r", 1, [&](int64_t, MachineContext& ctx) {
      ctx.LookupMany(store, keys);
    });
    return cluster.metrics().Get("kv_peak_inflight_keys");
  };
  EXPECT_EQ(run(1), 8);   // lockstep: one window in flight
  EXPECT_EQ(run(4), 32);  // four windows of 8 keys held at once
}

TEST(ClusterTest, ScalarLookupPeaksAtOneInflightKey) {
  Cluster cluster(TestConfig());
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(64);
  cluster.RunKvWritePhase("w", store, 64, [](int64_t k) { return k; });
  cluster.RunMapPhase("r", 64, [&](int64_t item, MachineContext& ctx) {
    ctx.Lookup(store, static_cast<uint64_t>(item));
  });
  EXPECT_EQ(cluster.metrics().Get("kv_peak_inflight_keys"), 1);
}

// The ablation axis end to end: the same latency-bound pointer-jump
// workload costs strictly less simulated time at depth 4 than at depth
// 1 (lockstep), and resolves identical roots.
TEST(ClusterTest, PipeliningStrictlyCheaperThanLockstep) {
  const int64_t n = 4096;
  const int64_t chain = 64;
  auto run = [&](int pipeline_depth) {
    ClusterConfig config;
    config.num_machines = 4;
    config.threads_per_machine = 1;
    config.query_cache.enabled = false;
    config.max_batch_keys = 16;  // forces many windows per adaptive step
    config.pipeline_depth = pipeline_depth;
    Cluster cluster(config);
    kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
    cluster.RunKvWritePhase("w", store, n, [&](int64_t k) {
      return k % chain == 0 ? int64_t{-1} : k - 1;
    });
    std::vector<int64_t> roots(n, -1);
    cluster.RunBatchMapPhase(
        "jump", n, [&](std::span<const int64_t> items, MachineContext& ctx) {
          struct Chain {
            int64_t item;
            uint64_t cur;
            bool done = false;
          };
          std::vector<Chain> chains;
          chains.reserve(items.size());
          for (const int64_t item : items) {
            chains.push_back(Chain{item, static_cast<uint64_t>(item)});
          }
          DriveLookupPipelined(
              ctx, store, chains, [](const Chain& c) { return c.done; },
              [](const Chain& c) { return c.cur; },
              [&](Chain& c, const int64_t* p) {
                if (p == nullptr || *p < 0) {
                  roots[c.item] = static_cast<int64_t>(c.cur);
                  c.done = true;
                } else {
                  c.cur = static_cast<uint64_t>(*p);
                }
              });
        });
    return std::pair<double, std::vector<int64_t>>(
        cluster.metrics().GetTime("sim:jump"), std::move(roots));
  };
  const auto [lockstep_time, lockstep_roots] = run(1);
  const auto [pipelined_time, pipelined_roots] = run(4);
  EXPECT_LT(pipelined_time, lockstep_time);
  EXPECT_EQ(pipelined_roots, lockstep_roots);
}

// --- Driver edge cases (DriveLookupLockstep / DriveLookupPipelined) -------

struct DriverChain {
  int64_t item;
  uint64_t cur;
  int64_t hops = 0;
  bool done = false;
};

// Scalar-resolution oracle: chase the parent chain directly on the
// store (parent < 0 or absent = root).
std::pair<int64_t, int64_t> OracleChase(const kv::ShardedStore<int64_t>& store,
                                        int64_t start) {
  uint64_t cur = static_cast<uint64_t>(start);
  int64_t hops = 0;
  for (;;) {
    const int64_t* p = store.Lookup(cur);
    ++hops;
    if (p == nullptr || *p < 0) {
      return {static_cast<int64_t>(cur), hops};
    }
    cur = static_cast<uint64_t>(*p);
  }
}

// Runs both drivers over every chain of `parent_of` under the given
// sub-batch bound and depth, and pins roots and hop counts against the
// scalar oracle. Chains of different lengths finish mid-window, so the
// compaction path is exercised throughout.
void CheckDriversAgainstOracle(int64_t n, int64_t max_batch_keys,
                               int pipeline_depth,
                               const std::function<int64_t(int64_t)>&
                                   parent_of) {
  for (const bool pipelined : {false, true}) {
    ClusterConfig config;
    config.num_machines = 2;
    config.threads_per_machine = 2;
    config.max_batch_keys = max_batch_keys;
    config.pipeline_depth = pipeline_depth;
    Cluster cluster(config);
    kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
    cluster.RunKvWritePhase("w", store, n, parent_of);
    std::vector<int64_t> roots(n, -1), hops(n, -1);
    cluster.RunBatchMapPhase(
        "drive", n,
        [&](std::span<const int64_t> items, MachineContext& ctx) {
          std::vector<DriverChain> chains;
          chains.reserve(items.size());
          for (const int64_t item : items) {
            chains.push_back(DriverChain{item, static_cast<uint64_t>(item)});
          }
          const auto is_done = [](const DriverChain& c) { return c.done; };
          const auto key_of = [](const DriverChain& c) { return c.cur; };
          const auto resume = [&](DriverChain& c, const int64_t* p) {
            ++c.hops;
            if (p == nullptr || *p < 0) {
              roots[c.item] = static_cast<int64_t>(c.cur);
              hops[c.item] = c.hops;
              c.done = true;
            } else {
              c.cur = static_cast<uint64_t>(*p);
            }
          };
          if (pipelined) {
            DriveLookupPipelined(ctx, store, chains, is_done, key_of, resume);
          } else {
            DriveLookupLockstep(ctx, store, chains, is_done, key_of, resume);
          }
        });
    for (int64_t v = 0; v < n; ++v) {
      const auto [oracle_root, oracle_hops] = OracleChase(store, v);
      EXPECT_EQ(roots[v], oracle_root)
          << (pipelined ? "pipelined" : "lockstep") << " window "
          << max_batch_keys << " depth " << pipeline_depth << " key " << v;
      EXPECT_EQ(hops[v], oracle_hops);
    }
  }
}

// Mixed-length chains: key k chases down to the nearest multiple of its
// band length, so states finish at different adaptive steps and windows
// shrink as the frontier drains.
int64_t MixedChainParent(int64_t k) {
  const int64_t band = (k % 3 == 0) ? 1 : (k % 3 == 1) ? 8 : 32;
  return (k % band == 0) ? int64_t{-1} : k - 1;
}

TEST(ClusterDriverTest, EmptyStateVectorIsANoOp) {
  Cluster cluster(TestConfig());
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(16);
  cluster.RunKvWritePhase("w", store, 16, [](int64_t) { return int64_t{-1}; });
  cluster.RunBatchMapPhase(
      "drive", 16, [&](std::span<const int64_t>, MachineContext& ctx) {
        std::vector<DriverChain> none;
        DriveLookupPipelined(
            ctx, store, none, [](const DriverChain& c) { return c.done; },
            [](const DriverChain& c) { return c.cur; },
            [](DriverChain&, const int64_t*) { FAIL() << "resumed"; });
        DriveLookupLockstep(
            ctx, store, none, [](const DriverChain& c) { return c.done; },
            [](const DriverChain& c) { return c.cur; },
            [](DriverChain&, const int64_t*) { FAIL() << "resumed"; });
      });
  EXPECT_EQ(cluster.metrics().Get("kv_reads"), 0);
}

TEST(ClusterDriverTest, AllStatesInitiallyDoneIssueNoLookups) {
  Cluster cluster(TestConfig());
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(16);
  cluster.RunKvWritePhase("w", store, 16, [](int64_t) { return int64_t{-1}; });
  cluster.RunBatchMapPhase(
      "drive", 16, [&](std::span<const int64_t> items, MachineContext& ctx) {
        std::vector<DriverChain> chains;
        for (const int64_t item : items) {
          chains.push_back(
              DriverChain{item, static_cast<uint64_t>(item), 0, true});
        }
        DriveLookupPipelined(
            ctx, store, chains, [](const DriverChain& c) { return c.done; },
            [](const DriverChain& c) { return c.cur; },
            [](DriverChain&, const int64_t*) { FAIL() << "resumed"; });
      });
  EXPECT_EQ(cluster.metrics().Get("kv_reads"), 0);
}

TEST(ClusterDriverTest, WindowSizeOneMatchesOracle) {
  CheckDriversAgainstOracle(48, /*max_batch_keys=*/1, /*pipeline_depth=*/4,
                            MixedChainParent);
}

TEST(ClusterDriverTest, DepthExceedsWindowCountMatchesOracle) {
  // Frontiers of at most 48/2 machines/2 workers = 12 states split into
  // windows of 4: three windows, depth 64 far beyond them.
  CheckDriversAgainstOracle(48, /*max_batch_keys=*/4, /*pipeline_depth=*/64,
                            MixedChainParent);
}

TEST(ClusterDriverTest, StatesFinishingMidWindowMatchOracle) {
  CheckDriversAgainstOracle(96, /*max_batch_keys=*/8, /*pipeline_depth=*/2,
                            MixedChainParent);
  CheckDriversAgainstOracle(96, /*max_batch_keys=*/0, /*pipeline_depth=*/4,
                            MixedChainParent);  // unbounded window
}

TEST(ClusterTest, PlacementPoliciesCoLocateWorkAndRecords) {
  for (const kv::PlacementPolicy policy :
       {kv::PlacementPolicy::kHash, kv::PlacementPolicy::kRange,
        kv::PlacementPolicy::kAffinity}) {
    ClusterConfig config = TestConfig();
    config.placement_policy = policy;
    Cluster cluster(config);
    const int64_t n = 1000;
    kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
    for (uint64_t k = 0; k < static_cast<uint64_t>(n); ++k) {
      EXPECT_EQ(store.ShardOf(k), cluster.MachineOf(k, n))
          << kv::PlacementPolicyName(policy) << " key " << k;
    }
    cluster.RunKvWritePhase("w", store, n, [](int64_t k) { return k; });
    std::atomic<int> mismatches{0};
    cluster.RunMapPhase("route", n, [&](int64_t item, MachineContext& ctx) {
      if (store.ShardOf(static_cast<uint64_t>(item)) != ctx.machine_id()) {
        mismatches.fetch_add(1);
      }
      const int64_t* v = ctx.Lookup(store, static_cast<uint64_t>(item));
      if (v == nullptr || *v != item) mismatches.fetch_add(1);
    });
    EXPECT_EQ(mismatches.load(), 0) << kv::PlacementPolicyName(policy);
  }
}

// --- Elastic-cluster fault model (ClusterConfig::faults) ------------------

TEST(ClusterTest, ReplicatedWritePhaseChargesFollowerCopies) {
  ClusterConfig config = TestConfig();
  config.faults.replication = 2;
  Cluster cluster(config);
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(1000);
  EXPECT_EQ(store.replication(), 2);
  cluster.RunKvWritePhase("w", store, 1000, [](int64_t k) { return k; });

  // Primary-only semantics of the historical counters are preserved:
  // kv_write_bytes counts each record once, the follower stream has its
  // own counter, and with exactly one follower per shard they're equal.
  const int64_t primary = cluster.metrics().Get("kv_write_bytes");
  const int64_t followers = cluster.metrics().Get("kv_replication_bytes");
  EXPECT_EQ(primary, store.total_bytes());
  EXPECT_EQ(followers, primary);

  // Per-machine NIC charging includes inbound follower copies: the
  // resident-byte rows sum to R * total, and match the store's own
  // replicated snapshot machine by machine.
  const std::vector<int64_t> resident = store.ReplicatedShardBytesSnapshot();
  int64_t resident_total = 0;
  for (int m = 0; m < config.num_machines; ++m) {
    EXPECT_EQ(cluster.machine_kv_write_bytes()[m], resident[m]) << m;
    resident_total += resident[m];
  }
  EXPECT_EQ(resident_total, 2 * primary);

  // The hot-machine counter stays primary-only (skew diagnosis is about
  // where records live, not where copies stream).
  int64_t expected_hot = 0;
  for (int s = 0; s < store.num_shards(); ++s) {
    expected_hot = std::max(expected_hot, store.ShardBytes(s));
  }
  EXPECT_EQ(cluster.metrics().Get("kv_hot_machine_write_bytes"),
            expected_hot);
}

TEST(ClusterTest, DefaultFaultConfigDoesNotDriftTheCostModel) {
  // fault_rate = 0, replication = 1, checkpoint_period = 0 must be
  // bit-identical to a cluster that predates the fault model: same
  // counters, same timers, no fault metrics at all.
  auto run = [](bool spell_out_defaults) {
    ClusterConfig config = TestConfig();
    if (spell_out_defaults) {
      config.faults.fault_rate_per_machine_sec = 0.0;
      config.faults.replication = 1;
      config.faults.checkpoint_period_sec = 0.0;
      config.faults.fault_seed = 12345;  // unused at rate 0
      config.faults.machines_per_domain = 0;
      config.faults.domain_fault_rate_sec = 0.0;
      config.faults.domain_aware_placement = true;
      config.faults.warning_lead_sec = 0.0;
      config.faults.slow_machine_rate = 0.0;
      config.faults.straggler_slowdown = 4.0;  // unused at rate 0
      config.faults.hedge_lookups = false;
    }
    Cluster cluster(config);
    kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(2000);
    cluster.AccountShuffle("shuffle", 4096);
    cluster.RunKvWritePhase("w", store, 2000, [](int64_t k) { return 2 * k; });
    cluster.RunMapPhase("r", 2000, [&](int64_t item, MachineContext& ctx) {
      ctx.Lookup(store, static_cast<uint64_t>((item * 31) % 2000));
    });
    return cluster.metrics().Snapshot();
  };
  const MetricsSnapshot a = run(false);
  const MetricsSnapshot b = run(true);
  EXPECT_EQ(a.counters, b.counters);
  // Simulated timers must be bit-identical; wall timers measure the
  // host and are excluded.
  for (const auto& [name, seconds] : a.timers_sec) {
    if (name.rfind("sim", 0) != 0) continue;
    ASSERT_TRUE(b.timers_sec.count(name)) << name;
    EXPECT_DOUBLE_EQ(seconds, b.timers_sec.at(name)) << name;
  }
  EXPECT_EQ(a.counters.count("machines_lost"), 0u);
  EXPECT_EQ(a.counters.count("kv_replication_bytes"), 0u);
  EXPECT_EQ(a.counters.count("checkpoints"), 0u);
  EXPECT_EQ(a.counters.count("domains_lost"), 0u);
  EXPECT_EQ(a.counters.count("machines_drained"), 0u);
  EXPECT_EQ(a.counters.count("shards_migrated"), 0u);
  EXPECT_EQ(a.counters.count("kv_slow_trips"), 0u);
  EXPECT_EQ(a.counters.count("kv_hedged_trips"), 0u);
}

TEST(ClusterTest, SimClockTracksTheSimTotalTimer) {
  ClusterConfig config = TestConfig();
  Cluster cluster(config);
  EXPECT_DOUBLE_EQ(cluster.sim_clock(), 0.0);
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(500);
  cluster.AccountShuffle("shuffle", 2048);
  cluster.RunKvWritePhase("w", store, 500, [](int64_t k) { return k; });
  cluster.RunMapPhase("r", 500, [&](int64_t item, MachineContext& ctx) {
    ctx.Lookup(store, static_cast<uint64_t>(item));
  });
  // The metrics timer quantizes to integer nanoseconds; the clock is an
  // exact double sum, so agreement is to timer resolution.
  EXPECT_NEAR(cluster.sim_clock(), cluster.metrics().GetTime("sim_total"),
              1e-8);
}

TEST(ClusterTest, InjectedFailureDropsTheMachinesQueryCaches) {
  ClusterConfig config;
  config.num_machines = 2;
  config.threads_per_machine = 1;
  config.faults.replication = 2;  // replica path: cheap, deterministic
  Cluster cluster(config);
  const int64_t n = 64;
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
  cluster.RunKvWritePhase("w", store, n, [](int64_t k) { return k; });
  // Warm both machines' read-through caches on a hot key.
  cluster.RunMapPhase("r", n, [&](int64_t, MachineContext& ctx) {
    ctx.Lookup(store, 3);
  });
  const int victim = 1 - store.ShardOf(3);  // the machine caching remotely
  ASSERT_GT(store.QueryCacheFor(victim)->size(), 0);

  cluster.InjectMachineFailure(victim);
  EXPECT_EQ(cluster.metrics().Get("machines_lost"), 1);
  EXPECT_GT(cluster.metrics().GetTime("sim:recovery"), 0.0);
  EXPECT_EQ(store.QueryCacheFor(victim)->size(), 0);  // cold replacement
  // The surviving machine's cache is untouched.
  EXPECT_GT(store.QueryCacheFor(1 - victim)->size(), 0);
}

TEST(ClusterTest, DrainMigratesShardsAndAbsorbsTheWarnedKill) {
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 1;
  Cluster cluster(config);  // replication 1: the full-re-stream case
  const int64_t n = 400;
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
  cluster.RunKvWritePhase("w", store, n, [](int64_t k) { return k; });

  const int victim = 2;
  const int64_t victim_bytes = store.ShardBytes(victim);
  ASSERT_GT(victim_bytes, 0);
  cluster.DrainMachine(victim);

  // The migration arithmetic: one shard moved, its resident bytes
  // re-streamed at shuffle bandwidth on the sim clock.
  EXPECT_EQ(cluster.metrics().Get("machines_drained"), 1);
  EXPECT_EQ(cluster.metrics().Get("shards_migrated"), 1);
  EXPECT_EQ(cluster.metrics().Get("kv_migration_bytes"), victim_bytes);
  EXPECT_NEAR(cluster.metrics().GetTime("sim:drain"),
              static_cast<double>(victim_bytes) / config.shuffle_bytes_per_sec,
              1e-8);
  // The shard map hot-swapped mid-job: work and server charges for the
  // victim's shard now follow the new host; the drained machine hosts
  // nothing and its resident bytes moved with the shard.
  const int new_host = cluster.HostOf(victim);
  EXPECT_NE(new_host, victim);
  EXPECT_EQ(cluster.machine_kv_write_bytes()[victim], 0);
  for (uint64_t key = 0; key < static_cast<uint64_t>(n); ++key) {
    if (store.ShardOf(key) == victim) {
      EXPECT_EQ(cluster.MachineOf(key, n), new_host);
    }
  }

  // The payoff: the announced kill lands on a machine holding nothing
  // and replays nothing — against the whole-job restart an unwarned
  // kill would cost at replication 1.
  const double before = cluster.SimSeconds();
  cluster.InjectMachineFailure(victim);
  EXPECT_EQ(cluster.metrics().Get("machines_lost"), 1);
  EXPECT_DOUBLE_EQ(cluster.SimSeconds(), before);
  EXPECT_DOUBLE_EQ(cluster.metrics().GetTime("sim:recovery"), 0.0);
  // The drain is one-shot: the machine rejoined empty, and a second,
  // unwarned kill pays the normal reactive price.
  cluster.InjectMachineFailure(victim);
  EXPECT_GT(cluster.SimSeconds(), before);
  EXPECT_GT(cluster.metrics().GetTime("sim:recovery"), 0.0);
}

TEST(ClusterTest, DrainDropsTheSourceMachinesQueryCaches) {
  ClusterConfig config;
  config.num_machines = 2;
  config.threads_per_machine = 1;
  Cluster cluster(config);
  const int64_t n = 64;
  kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(n);
  cluster.RunKvWritePhase("w", store, n, [](int64_t k) { return k; });
  // Warm both machines' read-through caches on a hot key.
  cluster.RunMapPhase("r", n, [&](int64_t, MachineContext& ctx) {
    ctx.Lookup(store, 3);
  });
  const int victim = 1 - store.ShardOf(3);  // the machine caching remotely
  ASSERT_GT(store.QueryCacheFor(victim)->size(), 0);

  cluster.DrainMachine(victim);
  // The drained machine's cached results leave with it; the shard's new
  // host starts cold. The surviving machine's cache is untouched.
  EXPECT_EQ(store.QueryCacheFor(victim)->size(), 0);
  EXPECT_GT(store.QueryCacheFor(1 - victim)->size(), 0);
}

TEST(ClusterTest, DomainFailureWipesNaiveReplicasButNotDomainAware) {
  // One rack kill at replication 2: domain-oblivious chained
  // declustering can hold both copies of a shard inside the dead
  // domain (a wiped ReplicaSet, whole-job fallback); domain-aware
  // placement never can.
  auto run = [](bool aware) {
    ClusterConfig config;
    config.num_machines = 4;
    config.threads_per_machine = 1;
    config.faults.replication = 2;
    config.faults.machines_per_domain = 2;  // domains {0, 1} and {2, 3}
    config.faults.domain_aware_placement = aware;
    Cluster cluster(config);
    kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(400);
    cluster.RunKvWritePhase("w", store, 400, [](int64_t k) { return k; });
    if (aware) {
      for (int s = 0; s < store.num_shards(); ++s) {
        EXPECT_TRUE(store.ReplicasOfShard(s).SpansDomains(
            2, config.num_machines))
            << "shard " << s;
      }
    }
    cluster.InjectDomainFailure(0);
    EXPECT_EQ(cluster.metrics().Get("domains_lost"), 1);
    EXPECT_EQ(cluster.metrics().Get("machines_lost"), 2);
    return cluster.metrics().Get("replica_wipeouts");
  };
  EXPECT_GT(run(/*aware=*/false), 0);
  EXPECT_EQ(run(/*aware=*/true), 0);
}

TEST(ClusterTest, HedgingRecoversStragglerTrips) {
  // A quarter of (round, machine) pairs run lookups 4x slow. Without
  // hedging the client waits out every slow destination; with it, the
  // re-issued trip to the shard's replica wins whenever the replica's
  // host is not itself slow that round — strictly cheaper, same
  // answers, and both trips charged.
  struct Outcome {
    double sim_sec;
    int64_t slow, hedged, wins;
  };
  auto run = [](bool hedge) {
    ClusterConfig config;
    config.num_machines = 4;
    config.threads_per_machine = 1;
    config.faults.replication = 2;
    config.faults.slow_machine_rate = 0.25;
    config.faults.hedge_lookups = hedge;
    Cluster cluster(config);
    kv::ShardedStore<int64_t> store = cluster.MakeStore<int64_t>(400);
    cluster.RunKvWritePhase("w", store, 400, [](int64_t k) { return k; });
    for (int round = 0; round < 8; ++round) {
      cluster.RunMapPhase("r", 400, [&](int64_t item, MachineContext& ctx) {
        EXPECT_NE(ctx.Lookup(store, static_cast<uint64_t>((item * 31) % 400)),
                  nullptr);
      });
    }
    return Outcome{cluster.SimSeconds(),
                   cluster.metrics().Get("kv_slow_trips"),
                   cluster.metrics().Get("kv_hedged_trips"),
                   cluster.metrics().Get("kv_hedge_wins")};
  };
  const Outcome waited = run(false);
  const Outcome hedged = run(true);
  EXPECT_GT(waited.slow, 0);
  EXPECT_EQ(waited.hedged, 0);
  EXPECT_GT(hedged.hedged, 0);
  EXPECT_GT(hedged.wins, 0);
  EXPECT_LT(hedged.sim_sec, waited.sim_sec);
}

}  // namespace
}  // namespace ampc::sim
