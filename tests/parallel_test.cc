#include "common/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"

namespace ampc {
namespace {

std::vector<uint64_t> RandomVector(int64_t n, uint64_t seed,
                                   uint64_t bound = 0) {
  Rng rng(seed);
  std::vector<uint64_t> out(n);
  for (auto& x : out) x = bound == 0 ? rng.Next() : rng.NextBelow(bound);
  return out;
}

TEST(SplitIndexChunksTest, CoversRangeExactlyOnce) {
  const auto chunks = SplitIndexChunks(3, 1000, 7, 13);
  ASSERT_FALSE(chunks.empty());
  EXPECT_LE(static_cast<int64_t>(chunks.size()), 13);
  int64_t expect = 3;
  for (const IndexChunk& c : chunks) {
    EXPECT_EQ(c.begin, expect);
    EXPECT_LT(c.begin, c.end);
    expect = c.end;
  }
  EXPECT_EQ(expect, 1000);
}

TEST(SplitIndexChunksTest, EmptyAndDegenerateRanges) {
  EXPECT_TRUE(SplitIndexChunks(5, 5, 4, 8).empty());
  EXPECT_TRUE(SplitIndexChunks(9, 2, 4, 8).empty());
  // grain larger than the range: one chunk.
  const auto chunks = SplitIndexChunks(0, 10, 1000, 8);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].begin, 0);
  EXPECT_EQ(chunks[0].end, 10);
  // grain 0 is clamped to 1.
  EXPECT_FALSE(SplitIndexChunks(0, 4, 0, 4).empty());
}

TEST(ParallelTabulateTest, ProducesGenOfIndex) {
  ThreadPool pool(4);
  const auto v = ParallelTabulate<int64_t>(pool, 100000,
                                          [](int64_t i) { return 3 * i; });
  ASSERT_EQ(v.size(), 100000u);
  for (int64_t i = 0; i < 100000; i += 997) EXPECT_EQ(v[i], 3 * i);
  EXPECT_TRUE(
      (ParallelTabulate<int>(pool, 0, [](int64_t) { return 1; }).empty()));
}

TEST(ParallelReduceTest, SumsMatchSerial) {
  ThreadPool pool(4);
  const int64_t n = 123457;
  const int64_t got = ParallelSum<int64_t>(pool, n, 0,
                                           [](int64_t i) { return i * i; });
  int64_t want = 0;
  for (int64_t i = 0; i < n; ++i) want += i * i;
  EXPECT_EQ(got, want);
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  ThreadPool pool(4);
  EXPECT_EQ(ParallelSum<int64_t>(pool, 0, 42, [](int64_t) { return 1; }), 42);
  EXPECT_EQ((ParallelReduce<int64_t>(
                pool, 10, 5, 7, [](int64_t) { return 1; },
                [](int64_t a, int64_t b) { return a + b; })),
            7);
}

TEST(ParallelReduceTest, GrainEdgeCases) {
  ThreadPool pool(4);
  // grain 1 (maximal parallelism) and grain >> n (single chunk) agree.
  const auto map = [](int64_t i) { return i + 1; };
  EXPECT_EQ((ParallelSum<int64_t>(pool, 1000, 0, map, /*grain=*/1)),
            1000 * 1001 / 2);
  EXPECT_EQ((ParallelSum<int64_t>(pool, 1000, 0, map, /*grain=*/1 << 30)),
            1000 * 1001 / 2);
}

TEST(ParallelReduceTest, NonCommutativeOperatorKeepsIndexOrder) {
  ThreadPool pool(4);
  // String concatenation is associative but not commutative; the result
  // must be the in-order concatenation regardless of scheduling.
  std::string want;
  const int64_t n = 2000;
  for (int64_t i = 0; i < n; ++i) want += static_cast<char>('a' + i % 26);
  for (int trial = 0; trial < 3; ++trial) {
    const std::string got = ParallelReduce<std::string>(
        pool, 0, n, "",
        [](int64_t i) { return std::string(1, 'a' + i % 26); },
        [](std::string a, std::string b) { return std::move(a) += b; },
        /*grain=*/16);
    EXPECT_EQ(got, want);
  }
}

TEST(ParallelSortTest, MatchesStdSortOnRandomInput) {
  ThreadPool pool(8);
  auto v = RandomVector(200000, /*seed=*/1);
  auto want = v;
  std::sort(want.begin(), want.end());
  ParallelSort(pool, v);
  EXPECT_EQ(v, want);
}

TEST(ParallelSortTest, SortedAndReverseSortedInputs) {
  ThreadPool pool(8);
  std::vector<uint64_t> asc(150000);
  for (size_t i = 0; i < asc.size(); ++i) asc[i] = i;
  auto want = asc;
  auto v = asc;
  ParallelSort(pool, v);
  EXPECT_EQ(v, want);
  std::vector<uint64_t> desc(asc.rbegin(), asc.rend());
  ParallelSort(pool, desc);
  EXPECT_EQ(desc, want);
}

TEST(ParallelSortTest, DuplicateHeavyInput) {
  ThreadPool pool(8);
  // Only 10 distinct values over 300k elements: every chunk's runs are
  // dominated by ties, stressing the splitter/merge path.
  auto v = RandomVector(300000, /*seed=*/2, /*bound=*/10);
  auto want = v;
  std::sort(want.begin(), want.end());
  ParallelSort(pool, v);
  EXPECT_EQ(v, want);
}

TEST(ParallelSortTest, CustomComparatorAndSmallInputs) {
  ThreadPool pool(4);
  auto v = RandomVector(50000, /*seed=*/3);
  auto want = v;
  std::sort(want.begin(), want.end(), std::greater<uint64_t>());
  ParallelSort(pool, v, std::greater<uint64_t>());
  EXPECT_EQ(v, want);

  std::vector<uint64_t> empty;
  ParallelSort(pool, empty);
  EXPECT_TRUE(empty.empty());
  std::vector<uint64_t> one = {7};
  ParallelSort(pool, one);
  EXPECT_EQ(one, (std::vector<uint64_t>{7}));
  std::vector<uint64_t> tiny = {3, 1, 2};  // below the parallel cutoff
  ParallelSort(pool, tiny);
  EXPECT_EQ(tiny, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(ParallelSortTest, StableAndDeterministicAcrossThreadCounts) {
  // Sort key-value pairs by key only; ParallelSort promises stable-sort
  // semantics, so tie order must equal input order for every pool size.
  const int64_t n = 100000;
  Rng rng(4);
  std::vector<std::pair<uint32_t, uint32_t>> input(n);
  for (int64_t i = 0; i < n; ++i) {
    input[i] = {static_cast<uint32_t>(rng.NextBelow(64)),
                static_cast<uint32_t>(i)};
  }
  const auto by_key = [](const std::pair<uint32_t, uint32_t>& a,
                         const std::pair<uint32_t, uint32_t>& b) {
    return a.first < b.first;
  };
  auto want = input;
  std::stable_sort(want.begin(), want.end(), by_key);
  for (int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    auto v = input;
    ParallelSort(pool, v, by_key);
    EXPECT_EQ(v, want) << "threads=" << threads;
  }
}

TEST(ParallelSortTest, SplitPointMergeHandlesTiesAcrossSegments) {
  // Large enough that merged run pairs exceed the split-point merge
  // grain, so every pass is planned as multiple segments — with so few
  // distinct keys that ties straddle nearly every split point. Stability
  // must survive the segmented merges.
  const int64_t n = 1 << 20;
  Rng rng(9);
  std::vector<std::pair<uint32_t, uint32_t>> input(n);
  for (int64_t i = 0; i < n; ++i) {
    input[i] = {static_cast<uint32_t>(rng.NextBelow(3)),
                static_cast<uint32_t>(i)};
  }
  const auto by_key = [](const std::pair<uint32_t, uint32_t>& a,
                         const std::pair<uint32_t, uint32_t>& b) {
    return a.first < b.first;
  };
  auto want = input;
  std::stable_sort(want.begin(), want.end(), by_key);
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    auto v = input;
    ParallelSort(pool, v, by_key);
    EXPECT_EQ(v, want) << "threads=" << threads;
  }

  // Fully constant keys: the merge degenerates to pure segmented copies
  // that must still preserve input order exactly.
  std::vector<std::pair<uint32_t, uint32_t>> constant(n);
  for (int64_t i = 0; i < n; ++i) {
    constant[i] = {7u, static_cast<uint32_t>(i)};
  }
  auto constant_want = constant;
  ThreadPool pool(8);
  ParallelSort(pool, constant, by_key);
  EXPECT_EQ(constant, constant_want);
}

TEST(ParallelForEachChunkTest, VisitsEveryChunkOnce) {
  ThreadPool pool(4);
  const auto chunks = SplitIndexChunks(0, 100000, 64, 32);
  std::vector<std::atomic<int>> visits(chunks.size());
  for (auto& v : visits) v.store(0);
  ParallelForEachChunk(pool, chunks,
                       [&](int64_t c) { visits[c].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

}  // namespace
}  // namespace ampc
