#include "seq/exact_matching.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "seq/greedy.h"

namespace ampc::seq {
namespace {

using graph::Edge;
using graph::EdgeList;
using graph::WeightedEdge;
using graph::WeightedEdgeList;

TEST(ExactMatchingTest, EmptyGraph) {
  EdgeList list;
  list.num_nodes = 5;
  EXPECT_EQ(ExactMaximumMatchingSize(list), 0);
}

TEST(ExactMatchingTest, SingleEdge) {
  EdgeList list;
  list.num_nodes = 2;
  list.edges = {{0, 1}};
  EXPECT_EQ(ExactMaximumMatchingSize(list), 1);
}

TEST(ExactMatchingTest, PathGraphsMatchFloorFormula) {
  // A path on n vertices has a maximum matching of floor(n / 2).
  for (int64_t n = 1; n <= 12; ++n) {
    EXPECT_EQ(ExactMaximumMatchingSize(graph::GeneratePath(n)), n / 2)
        << "n=" << n;
  }
}

TEST(ExactMatchingTest, OddCycleLeavesOneFree) {
  EdgeList list;
  list.num_nodes = 7;
  for (int64_t i = 0; i < 7; ++i) {
    list.edges.push_back(Edge{static_cast<graph::NodeId>(i),
                              static_cast<graph::NodeId>((i + 1) % 7)});
  }
  EXPECT_EQ(ExactMaximumMatchingSize(list), 3);
}

TEST(ExactMatchingTest, BlossomStructure) {
  // Triangle with a pendant on each corner: the maximum matching pairs
  // each corner with its pendant (size 3); greedy inside the triangle
  // would find only 2. The DP must see through the odd cycle.
  EdgeList list;
  list.num_nodes = 6;
  list.edges = {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {1, 4}, {2, 5}};
  EXPECT_EQ(ExactMaximumMatchingSize(list), 3);
}

TEST(ExactMatchingTest, SelfLoopsIgnored) {
  EdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 0}, {1, 1}, {0, 1}};
  EXPECT_EQ(ExactMaximumMatchingSize(list), 1);
}

TEST(ExactMatchingTest, CompleteGraphIsPerfect) {
  EdgeList k6 = graph::GenerateComplete(6);
  EXPECT_EQ(ExactMaximumMatchingSize(k6), 3);
  EdgeList k7 = graph::GenerateComplete(7);
  EXPECT_EQ(ExactMaximumMatchingSize(k7), 3);
}

TEST(ExactMatchingTest, AtLeastAnyGreedyMatching) {
  // The exact optimum dominates greedy maximal matchings on random
  // graphs, and never exceeds twice their size (maximality bound).
  for (uint64_t seed = 0; seed < 20; ++seed) {
    EdgeList list = graph::GenerateErdosRenyi(14, 25, seed);
    const std::vector<uint64_t> ranks = [&] {
      std::vector<uint64_t> r(list.edges.size());
      for (size_t i = 0; i < r.size(); ++i) r[i] = Hash64(i, seed);
      return r;
    }();
    const MatchingResult greedy = GreedyMaximalMatching(list, ranks);
    const int64_t exact = ExactMaximumMatchingSize(list);
    EXPECT_GE(exact, static_cast<int64_t>(greedy.edges.size()));
    EXPECT_LE(exact, 2 * static_cast<int64_t>(greedy.edges.size()));
  }
}

TEST(ExactWeightMatchingTest, EmptyAndNegative) {
  WeightedEdgeList list;
  list.num_nodes = 4;
  EXPECT_EQ(ExactMaximumWeightMatching(list), 0.0);
  list.edges = {{0, 1, -5.0, 0}, {2, 3, -1.0, 1}};
  EXPECT_EQ(ExactMaximumWeightMatching(list), 0.0);
}

TEST(ExactWeightMatchingTest, PrefersHeavyOverMany) {
  // Path a-b-c-d with weights 1, 10, 1: optimum takes the middle edge
  // only when 10 > 1 + 1 is false... it is true, so optimum = 10? No:
  // taking (a,b) and (c,d) yields 2, taking (b,c) yields 10. Optimum 10.
  WeightedEdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1, 1.0, 0}, {1, 2, 10.0, 1}, {2, 3, 1.0, 2}};
  EXPECT_EQ(ExactMaximumWeightMatching(list), 10.0);
}

TEST(ExactWeightMatchingTest, PrefersManyOverHeavy) {
  WeightedEdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1, 6.0, 0}, {1, 2, 10.0, 1}, {2, 3, 6.0, 2}};
  EXPECT_EQ(ExactMaximumWeightMatching(list), 12.0);
}

TEST(ExactWeightMatchingTest, ParallelEdgesCollapseToHeaviest) {
  WeightedEdgeList list;
  list.num_nodes = 2;
  list.edges = {{0, 1, 3.0, 0}, {0, 1, 7.0, 1}, {1, 0, 5.0, 2}};
  EXPECT_EQ(ExactMaximumWeightMatching(list), 7.0);
}

TEST(ExactWeightMatchingTest, DominatesGreedyByWeight) {
  // Greedy by descending weight is a 2-approximation; the exact optimum
  // must sit within [greedy, 2 * greedy].
  for (uint64_t seed = 100; seed < 115; ++seed) {
    graph::EdgeList raw = graph::GenerateErdosRenyi(13, 22, seed);
    WeightedEdgeList list = graph::MakeRandomWeighted(raw, seed);
    const MatchingResult greedy = GreedyWeightMatching(list);
    graph::Weight greedy_weight = 0;
    for (graph::EdgeId id : greedy.edges) greedy_weight += list.edges[id].w;
    const graph::Weight exact = ExactMaximumWeightMatching(list);
    EXPECT_GE(exact, greedy_weight - 1e-9);
    EXPECT_LE(exact, 2 * greedy_weight + 1e-9);
  }
}

}  // namespace
}  // namespace ampc::seq
