#include "core/mis.h"

#include <gtest/gtest.h>

#include "core/priorities.h"
#include "graph/generators.h"
#include "seq/greedy.h"

namespace ampc::core {
namespace {

using graph::EdgeList;
using graph::Graph;

sim::ClusterConfig SmallConfig(bool caching = true, bool mt = true) {
  sim::ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  config.query_cache.enabled = caching;
  config.multithreading = mt;
  return config;
}

TEST(AmpcMisTest, EmptyAndSingletonGraphs) {
  sim::Cluster cluster(SmallConfig());
  EdgeList list;
  list.num_nodes = 5;  // no edges: everyone joins the MIS
  Graph g = graph::BuildGraph(list);
  MisResult r = AmpcMis(cluster, g, 1);
  EXPECT_EQ(r.in_mis, (std::vector<uint8_t>{1, 1, 1, 1, 1}));
}

TEST(AmpcMisTest, TriangleHasOneMember) {
  sim::Cluster cluster(SmallConfig());
  Graph g = graph::BuildGraph(graph::GenerateComplete(3));
  MisResult r = AmpcMis(cluster, g, 7);
  int members = r.in_mis[0] + r.in_mis[1] + r.in_mis[2];
  EXPECT_EQ(members, 1);
}

TEST(AmpcMisTest, UsesExactlyOneShuffle) {
  sim::Cluster cluster(SmallConfig());
  Graph g = graph::BuildGraph(graph::GenerateErdosRenyi(500, 2000, 3));
  AmpcMis(cluster, g, 3);
  // Table 3: the AMPC MIS implementation uses a single shuffle.
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 1);
}

class MisEqualityTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(MisEqualityTest, MatchesSequentialGreedyExactly) {
  const auto [shape, seed] = GetParam();
  EdgeList list;
  switch (shape) {
    case 0:
      list = graph::GenerateErdosRenyi(400, 1600, seed);
      break;
    case 1:
      list = graph::GenerateRmat(9, 3000, seed);
      break;
    case 2:
      list = graph::GeneratePath(700);
      break;
    case 3:
      list = graph::GenerateCycle(512);
      break;
    default:
      list = graph::GenerateStar(300);
  }
  Graph g = graph::BuildGraph(list);
  sim::Cluster cluster(SmallConfig());
  MisResult ampc = AmpcMis(cluster, g, seed);
  std::vector<uint64_t> ranks = AllVertexRanks(g.num_nodes(), seed);
  std::vector<uint8_t> oracle = seq::GreedyMis(g, ranks);
  EXPECT_EQ(ampc.in_mis, oracle);
  EXPECT_TRUE(seq::IsMaximalIndependentSet(g, ampc.in_mis));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MisEqualityTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(1u, 2u, 3u)));

TEST(AmpcMisTest, CachingOffStillCorrect) {
  EdgeList list = graph::GenerateErdosRenyi(200, 800, 5);
  Graph g = graph::BuildGraph(list);
  sim::Cluster with_cache(SmallConfig(/*caching=*/true));
  sim::Cluster no_cache(SmallConfig(/*caching=*/false));
  MisResult a = AmpcMis(with_cache, g, 5);
  MisResult b = AmpcMis(no_cache, g, 5);
  EXPECT_EQ(a.in_mis, b.in_mis);
}

TEST(AmpcMisTest, CachingReducesKvTraffic) {
  EdgeList list = graph::GenerateErdosRenyi(300, 2400, 9);
  Graph g = graph::BuildGraph(list);
  sim::Cluster with_cache(SmallConfig(/*caching=*/true));
  sim::Cluster no_cache(SmallConfig(/*caching=*/false));
  AmpcMis(with_cache, g, 9);
  AmpcMis(no_cache, g, 9);
  // The Section 5.3 claim: caching cuts bytes read from the KV store.
  EXPECT_LT(with_cache.metrics().Get("kv_read_bytes"),
            no_cache.metrics().Get("kv_read_bytes"));
  EXPECT_GT(with_cache.metrics().Get("cache_hits"), 0);
}

TEST(AmpcMisTest, DifferentSeedsUsuallyDiffer) {
  EdgeList list = graph::GenerateErdosRenyi(300, 1500, 11);
  Graph g = graph::BuildGraph(list);
  sim::Cluster c1(SmallConfig());
  sim::Cluster c2(SmallConfig());
  MisResult a = AmpcMis(c1, g, 100);
  MisResult b = AmpcMis(c2, g, 200);
  EXPECT_NE(a.in_mis, b.in_mis);
}

TEST(AmpcMisTest, DeterministicAcrossClusterShapes) {
  // The output must not depend on machine count or threading — only on
  // the seed.
  EdgeList list = graph::GenerateRmat(9, 4000, 13);
  Graph g = graph::BuildGraph(list);
  sim::ClusterConfig one;
  one.num_machines = 1;
  one.threads_per_machine = 1;
  sim::ClusterConfig many;
  many.num_machines = 13;
  many.threads_per_machine = 4;
  sim::Cluster c1(one), c2(many);
  EXPECT_EQ(AmpcMis(c1, g, 21).in_mis, AmpcMis(c2, g, 21).in_mis);
}

TEST(AmpcMisTest, DeepRankChainDoesNotOverflowStack) {
  // A long path is the worst case for the recursion depth; the iterative
  // implementation must handle it at any seed.
  Graph g = graph::BuildGraph(graph::GeneratePath(200000));
  sim::Cluster cluster(SmallConfig());
  MisResult r = AmpcMis(cluster, g, 2);
  EXPECT_TRUE(seq::IsMaximalIndependentSet(g, r.in_mis));
}

}  // namespace
}  // namespace ampc::core
