#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace ampc {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Schedule([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) pool.Schedule([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelForTest, CoversExactRange) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, 0, 1000, 1, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  ParallelFor(pool, 5, 5, 1, [&](int64_t) { ++count; });
  ParallelFor(pool, 7, 3, 1, [&](int64_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
}

TEST(ParallelForChunkedTest, ChunksPartitionRange) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  ParallelForChunked(pool, 10, 1010, 1, [&](int64_t lo, int64_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  int64_t expect = 10;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expect);
    EXPECT_LT(lo, hi);
    expect = hi;
  }
  EXPECT_EQ(expect, 1010);
}

TEST(ParallelForTest, LargeGrainRunsInline) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  ParallelFor(pool, 0, 10, 1000, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelForTest, ConcurrentCallersDoNotInterfere) {
  ThreadPool pool(8);
  std::atomic<int64_t> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&pool, &total] {
      ParallelFor(pool, 0, 2500, 1, [&](int64_t) { total.fetch_add(1); });
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(total.load(), 10000);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> count{0};
  ParallelFor(ThreadPool::Global(), 0, 64, 1,
              [&](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

}  // namespace
}  // namespace ampc
