#include "core/one_vs_two_cycle.h"

#include <gtest/gtest.h>

#include "baselines/local_contraction.h"
#include "graph/generators.h"

namespace ampc::core {
namespace {

sim::ClusterConfig SmallConfig() {
  sim::ClusterConfig config;
  config.num_machines = 4;
  config.in_memory_threshold_arcs = 64;
  return config;
}

class OneVsTwoCycleTest
    : public ::testing::TestWithParam<std::tuple<int64_t, uint64_t>> {};

TEST_P(OneVsTwoCycleTest, DistinguishesOneFromTwo) {
  const auto [k, seed] = GetParam();
  CycleOptions options;
  options.seed = seed;
  options.sample_probability = 1.0 / 32;

  graph::Graph one = graph::BuildGraph(graph::GenerateCycle(2 * k));
  sim::Cluster c1(SmallConfig());
  EXPECT_EQ(AmpcOneVsTwoCycle(c1, one, options).num_cycles, 1);

  graph::Graph two = graph::BuildGraph(graph::GenerateDoubleCycle(k));
  sim::Cluster c2(SmallConfig());
  EXPECT_EQ(AmpcOneVsTwoCycle(c2, two, options).num_cycles, 2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OneVsTwoCycleTest,
    ::testing::Combine(::testing::Values<int64_t>(64, 500, 4096),
                       ::testing::Values(1u, 2u, 3u)));

TEST(OneVsTwoCycleTest, SparseSamplingRetriesOnTinyCycles) {
  // With probability 1/1024 on a 12-vertex instance, several attempts may
  // sample nothing; the retry loop must still resolve correctly.
  CycleOptions options;
  options.seed = 5;
  options.sample_probability = 1.0 / 1024;
  graph::Graph two = graph::BuildGraph(graph::GenerateDoubleCycle(6));
  sim::Cluster cluster(SmallConfig());
  CycleResult r = AmpcOneVsTwoCycle(cluster, two, options);
  EXPECT_EQ(r.num_cycles, 2);
  EXPECT_GE(r.attempts, 1);
}

TEST(OneVsTwoCycleTest, SingleShuffleForStaging) {
  graph::Graph g = graph::BuildGraph(graph::GenerateCycle(5000));
  sim::Cluster cluster(SmallConfig());
  CycleOptions options;
  options.sample_probability = 1.0 / 64;
  CycleResult r = AmpcOneVsTwoCycle(cluster, g, options);
  EXPECT_EQ(r.num_cycles, 1);
  // One staging shuffle + one gather per attempt (Section 5.6: "a single
  // shuffle used to write the graph to the key-value store").
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 1 + r.attempts);
}

TEST(OneVsTwoCycleDeathTest, RejectsNonCycleInputs) {
  graph::Graph star = graph::BuildGraph(graph::GenerateStar(10));
  sim::Cluster cluster(SmallConfig());
  EXPECT_DEATH(AmpcOneVsTwoCycle(cluster, star), "union of cycles");
}

TEST(OneVsTwoCycleTest, AgreesWithMpcBaseline) {
  for (uint64_t seed : {7u, 8u}) {
    for (int cycles = 1; cycles <= 2; ++cycles) {
      graph::EdgeList list = cycles == 1 ? graph::GenerateCycle(3000)
                                         : graph::GenerateDoubleCycle(1500);
      graph::Graph g = graph::BuildGraph(list);
      sim::Cluster ampc_cluster(SmallConfig());
      CycleOptions options;
      options.seed = seed;
      options.sample_probability = 1.0 / 64;
      const int ampc = AmpcOneVsTwoCycle(ampc_cluster, g, options).num_cycles;

      sim::Cluster mpc_cluster(SmallConfig());
      const int mpc =
          baselines::MpcOneVsTwoCycle(mpc_cluster, list, seed);
      EXPECT_EQ(ampc, cycles);
      EXPECT_EQ(mpc, cycles);
      // The headline claim: AMPC needs far fewer shuffles than MPC.
      EXPECT_LT(ampc_cluster.metrics().Get("shuffles"),
                mpc_cluster.metrics().Get("shuffles"));
    }
  }
}

}  // namespace
}  // namespace ampc::core
