#include "seq/greedy.h"

#include <gtest/gtest.h>

#include "core/priorities.h"
#include "graph/generators.h"

namespace ampc::seq {
namespace {

using graph::EdgeList;
using graph::Graph;
using graph::kInvalidNode;
using graph::NodeId;

TEST(GreedyMisTest, PathAlternates) {
  EdgeList list = graph::GeneratePath(5);
  Graph g = graph::BuildGraph(list);
  std::vector<uint64_t> rank = {0, 10, 20, 30, 40};  // left to right
  std::vector<uint8_t> mis = GreedyMis(g, rank);
  EXPECT_EQ(mis, (std::vector<uint8_t>{1, 0, 1, 0, 1}));
}

TEST(GreedyMisTest, RankOrderChangesResult) {
  EdgeList list = graph::GeneratePath(3);
  Graph g = graph::BuildGraph(list);
  std::vector<uint8_t> middle_first = GreedyMis(g, std::vector<uint64_t>{10, 0, 20});
  EXPECT_EQ(middle_first, (std::vector<uint8_t>{0, 1, 0}));
}

TEST(GreedyMisTest, ValidatorsAcceptAndReject) {
  EdgeList list = graph::GeneratePath(4);
  Graph g = graph::BuildGraph(list);
  EXPECT_TRUE(IsMaximalIndependentSet(g, std::vector<uint8_t>{1, 0, 1, 0}));
  EXPECT_TRUE(IsMaximalIndependentSet(g, std::vector<uint8_t>{0, 1, 0, 1}));
  // Adjacent pair: not independent.
  EXPECT_FALSE(IsIndependentSet(g, std::vector<uint8_t>{1, 1, 0, 0}));
  // Independent but not maximal (vertex 3 could join).
  EXPECT_FALSE(IsMaximalIndependentSet(g, std::vector<uint8_t>{1, 0, 0, 0}));
}

class GreedyRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyRandomTest, MisIsAlwaysMaximalIndependent) {
  const uint64_t seed = GetParam();
  EdgeList list = graph::GenerateErdosRenyi(150, 500, seed);
  Graph g = graph::BuildGraph(list);
  std::vector<uint64_t> rank = core::AllVertexRanks(150, seed ^ 1);
  std::vector<uint8_t> mis = GreedyMis(g, rank);
  EXPECT_TRUE(IsMaximalIndependentSet(g, mis));
}

TEST_P(GreedyRandomTest, MatchingIsAlwaysMaximal) {
  const uint64_t seed = GetParam();
  EdgeList list = graph::GenerateErdosRenyi(150, 500, seed);
  std::vector<uint64_t> rank = core::AllEdgeRanks(list, seed ^ 2);
  MatchingResult mm = GreedyMaximalMatching(list, rank);
  EXPECT_TRUE(IsMaximalMatching(list, mm.edges));
  // Partner array is symmetric.
  for (NodeId v = 0; v < 150; ++v) {
    if (mm.partner[v] != kInvalidNode) {
      EXPECT_EQ(mm.partner[mm.partner[v]], v);
    }
  }
}

TEST_P(GreedyRandomTest, VertexCoverCoversAndIsTwoApprox) {
  const uint64_t seed = GetParam();
  EdgeList list = graph::GenerateErdosRenyi(120, 360, seed);
  std::vector<uint64_t> rank = core::AllEdgeRanks(list, seed ^ 3);
  MatchingResult mm = GreedyMaximalMatching(list, rank);
  std::vector<NodeId> cover = VertexCoverFromMatching(list, mm);
  EXPECT_TRUE(IsVertexCover(list, cover));
  // |cover| = 2|M| and any vertex cover has size >= |M|.
  EXPECT_EQ(cover.size(), 2 * mm.edges.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(GreedyMatchingTest, RespectsRankOrder) {
  // Path 0-1-2-3 with middle edge ranked first: M = {(1,2)} then nothing.
  EdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1}, {1, 2}, {2, 3}};
  MatchingResult mm =
      GreedyMaximalMatching(list, std::vector<uint64_t>{5, 1, 9});
  EXPECT_EQ(mm.edges, (std::vector<graph::EdgeId>{1}));
  EXPECT_EQ(mm.partner[1], 2u);
  EXPECT_EQ(mm.partner[0], kInvalidNode);
}

TEST(GreedyWeightMatchingTest, PrefersHeavyEdges) {
  graph::WeightedEdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1, 1.0, 0}, {1, 2, 10.0, 1}, {2, 3, 1.0, 2}};
  MatchingResult mm = GreedyWeightMatching(list);
  EXPECT_EQ(mm.edges, (std::vector<graph::EdgeId>{1}));
}

TEST(GreedyWeightMatchingTest, TwoApproximationOnStars) {
  // Star with one heavy edge: greedy picks exactly the heavy edge; the
  // optimum is the same here, and the 2-approx bound holds trivially.
  graph::WeightedEdgeList list;
  list.num_nodes = 5;
  list.edges = {
      {0, 1, 5.0, 0}, {0, 2, 3.0, 1}, {0, 3, 2.0, 2}, {0, 4, 1.0, 3}};
  MatchingResult mm = GreedyWeightMatching(list);
  EXPECT_EQ(mm.edges, (std::vector<graph::EdgeId>{0}));
}

TEST(MatchingValidatorTest, RejectsBadMatchings) {
  EdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1}, {1, 2}, {2, 3}};
  EXPECT_FALSE(IsMatching(list, {0, 1}));          // share vertex 1
  EXPECT_FALSE(IsMatching(list, {5}));             // bogus id
  EXPECT_TRUE(IsMatching(list, {0}));              // valid
  EXPECT_FALSE(IsMaximalMatching(list, {0}));      // (2,3) addable
  EXPECT_TRUE(IsMaximalMatching(list, {0, 2}));
}

}  // namespace
}  // namespace ampc::seq
