// Fixture: a microbench with no failing gate.
#include <cstdio>

int main() {
  std::printf("all good, always\n");
  return 0;
}
