// Fixture: a microbench with a proper failing gate.
#include <cstdio>

int main() {
  const bool invariant_holds = true;
  if (!invariant_holds) {
    std::fprintf(stderr, "invariant regressed\n");
    return 1;
  }
  return 0;
}
