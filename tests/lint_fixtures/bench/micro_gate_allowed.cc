// ampc-lint: allow(bench-gate): fixture for the suppression path.
#include <cstdio>

int main() {
  std::printf("gateless by design\n");
  return 0;
}
