// Fixture: the identical iteration outside an output-affecting path —
// must produce no diagnostic (tools/ is not output-affecting).
#include <unordered_map>

long SumValuesInTool() {
  std::unordered_map<long, long> values;
  long sum = 0;
  for (const auto& [k, v] : values) sum += v;
  return sum;
}
