// Fixture CLI dump: lists the documented knobs but omits
// knob_undocumented, knob_allowed (suppressed at its declaration) and
// nested.tuning_knob, so config-dump fires for exactly those three.
#include <cstdio>

int DumpFixtureConfig() {
  std::printf("%s\n", "knob_documented");
  std::printf("%s\n", "nested.rate");
  return 0;
}
