// Fixture: wall-clock reads outside common/timer.h and bench/.
#include <chrono>

double Now() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
