// Fixture: an unconditional new-counter write, silenced.
#include "common/metrics.h"

void AccountAllowed(ampc::Metrics& metrics) {
  // ampc-lint: allow(metric-zero-guard): fixture; callers gate on the
  // feature being active.
  metrics.Add("shiny_new_counter", 1);
}
