// Fixture: a new counter written unconditionally (error), a guarded
// write (clean), and a grandfathered counter (clean).
#include "common/metrics.h"

void Account(ampc::Metrics& metrics, long delta) {
  metrics.Add("shiny_new_counter", delta);
  if (delta != 0) {
    metrics.Add("guarded_new_counter", delta);
  }
  metrics.Add("rounds", 1);
}
