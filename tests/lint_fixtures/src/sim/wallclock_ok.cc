// Fixture: the same wall-clock reads, silenced by justified annotations.
// ampc-lint: allow(det-wallclock): fixture exercising suppression.
#include <chrono>

double NowAllowed() {
  // ampc-lint: allow(det-wallclock): fixture exercising suppression.
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();  // ampc-lint: allow(det-wallclock): trailing form.
}
