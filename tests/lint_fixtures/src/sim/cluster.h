// Fixture ClusterConfig for the config-off-doc / config-dump rules. The
// scanner keys on the path src/sim/cluster.h relative to its scan root,
// so this shadow copy exercises the real parsing logic.
#pragma once

namespace ampc::sim {

struct ClusterConfig {
  /// Fully documented: false disables the feature and reproduces the
  /// prior cost model bit-identically. Also present in the CLI dump.
  bool knob_documented = false;
  /// Scales the widget flux; also absent from the CLI dump.
  int knob_undocumented = 3;
  int knob_allowed = 4;  // ampc-lint: allow(config-off-doc): fixture. ampc-lint: allow(config-dump): fixture.
  /// Nested knobs expand to dotted names. Defaults are all-off.
  struct NestedConfig {
    /// 0 disables the nested feature entirely.
    double rate = 0.0;
    /// Shapes the nested feature's aggressiveness; also undumped.
    double tuning_knob = 1.5;
  };
  NestedConfig nested;
};

}  // namespace ampc::sim
