// Fixture: malformed annotations — each is its own error.
int JustCode() {
  // ampc-lint: allow(det-rand)
  int no_justification = 1;
  // ampc-lint: allow(not-a-real-rule): confident justification.
  int unknown_rule = 2;
  // ampc-lint: suppress-everything please
  int not_even_allow = 3;
  return no_justification + unknown_rule + not_even_allow;
}
