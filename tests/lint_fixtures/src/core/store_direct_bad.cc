// Fixture: direct ShardedStore data access in src/core/, unsuppressed.
#include "kv/sharded_store.h"
#include "sim/cluster.h"

int64_t ReadBehindTheMeter(kv::ShardedStore<int64_t>& store,
                           sim::Cluster& cluster) {
  store.Put(1, 2);
  auto mirror = cluster.MakeStore<int64_t>(100);
  return store.Lookup(1) + mirror.Lookup(7);
}
