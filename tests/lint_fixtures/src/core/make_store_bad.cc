// Fixture: placement machinery handled directly in src/core/,
// unsuppressed.
#include "kv/placement.h"
#include "kv/sharded_store.h"

int64_t HandRolledPlacement() {
  kv::Placement placement;
  placement.num_shards = 4;
  kv::ShardedStore<int64_t> store(placement);
  return store.num_shards();
}
