// Fixture: every banned nondeterminism primitive, unsuppressed.
#include <cstdlib>
#include <ctime>
#include <random>

int EntropySoup() {
  std::random_device rd;
  std::mt19937 gen(rd());
  srand(static_cast<unsigned>(time(nullptr)));
  return rand() + static_cast<int>(clock());
}
