// Fixture: the same iteration, silenced with a justification.
#include <unordered_map>

long SumValuesAllowed() {
  std::unordered_map<long, long> values;
  long sum = 0;
  // ampc-lint: allow(det-unordered-iter): sum is order-independent.
  for (const auto& [k, v] : values) sum += v;
  return sum;
}
