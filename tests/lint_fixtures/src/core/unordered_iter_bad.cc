// Fixture: range-iteration over unordered containers in an
// output-affecting path (src/core/), unsuppressed.
#include <unordered_map>
#include <unordered_set>

using NodeSet = std::unordered_set<long>;

long SumValues() {
  std::unordered_map<long, long> values;
  NodeSet nodes;
  long sum = 0;
  for (const auto& [k, v] : values) sum += v;
  for (long n : nodes) sum += n;
  return sum;
}
