// Fixture: the same construction, silenced with a justification.
#include "kv/placement.h"

int64_t HandRolledPlacementAllowed() {
  // ampc-lint: allow(core-make-store): fixture exercising suppression.
  kv::Placement placement;
  placement.num_shards = 4;
  return placement.num_shards;
}
