// Fixture: a suppressed pointer-keyed map.
#include <map>

struct Node {
  int id;
};

int CountDistinctAllowed(Node* a) {
  // ampc-lint: allow(det-ptr-key): only membership is tested, never order.
  std::map<Node*, int> by_node;
  by_node[a] = 1;
  return static_cast<int>(by_node.size());
}
