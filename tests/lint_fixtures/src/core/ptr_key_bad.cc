// Fixture: pointer-keyed ordered containers, unsuppressed.
#include <map>
#include <set>

struct Node {
  int id;
};

int CountDistinct(Node* a, Node* b) {
  std::map<Node*, int> by_node;
  std::set<const Node*> seen;
  by_node[a] = 1;
  seen.insert(b);
  return static_cast<int>(by_node.size() + seen.size());
}
