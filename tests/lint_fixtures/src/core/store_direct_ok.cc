// Fixture: the same access, silenced; metadata reads need no annotation.
#include "kv/sharded_store.h"

int64_t ReadBehindTheMeterAllowed(kv::ShardedStore<int64_t>& store) {
  // ampc-lint: allow(core-store-direct): fixture exercising suppression.
  const int64_t v = store.Lookup(1);
  return v + store.num_shards();
}
