// Fixture: the same primitives, silenced by justified annotations.
#include <cstdlib>

int EntropySoupAllowed() {
  // ampc-lint: allow(det-rand): fixture exercising the suppression path.
  int a = rand();
  int b = rand();  // ampc-lint: allow(det-rand): trailing-form fixture.
  return a + b;
}
