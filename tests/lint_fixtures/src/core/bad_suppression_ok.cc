// Fixture: a malformed annotation silenced by a valid bad-suppression
// allow on the same line (the one self-referential case).
int JustCodeAllowed() {
  int x = 1;  // ampc-lint: allow(bad-suppression): doc example follows. ampc-lint: allow(det-rand)
  return x;
}
