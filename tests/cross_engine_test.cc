// Whole-library integration sweeps: for every (generator, seed) input,
// all three engines — the AMPC algorithm, its MPC baseline, and the
// sequential oracle — must agree, across every problem at once. This is
// the paper's comparison methodology ("By specifying the same source of
// randomness, both the MPC and AMPC algorithms compute the same MIS")
// lifted to a cross-module contract.
#include <cstdint>
#include <tuple>

#include <gtest/gtest.h>

#include "baselines/boruvka.h"
#include "baselines/mpc_kcore.h"
#include "baselines/rootset_matching.h"
#include "baselines/rootset_mis.h"
#include "core/connectivity.h"
#include "core/kcore.h"
#include "core/matching.h"
#include "core/mis.h"
#include "core/msf.h"
#include "core/priorities.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "seq/greedy.h"
#include "seq/kcore.h"
#include "seq/msf.h"

namespace ampc {
namespace {

using graph::EdgeList;
using graph::Graph;
using graph::NodeId;
using graph::WeightedEdgeList;

sim::ClusterConfig SmallConfig() {
  sim::ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  config.in_memory_threshold_arcs = 128;
  return config;
}

// Generator shapes covering the structural variety of the evaluation:
// skewed (web-like), uniform, high-diameter, tree, grid, dense.
EdgeList ShapeGraph(int shape, uint64_t seed) {
  switch (shape) {
    case 0:
      return graph::GenerateRmat(8, 1200, seed);
    case 1:
      return graph::GenerateErdosRenyi(220, 700, seed);
    case 2:
      return graph::GenerateCycle(150);
    case 3:
      return graph::GenerateRandomForest(160, 8, seed);
    case 4:
      return graph::GenerateGrid(12, 13);
    case 5:
      return graph::GenerateComplete(24);
    default:
      return graph::GenerateStar(80);
  }
}

class CrossEngineTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {
 protected:
  EdgeList list_ = ShapeGraph(std::get<0>(GetParam()),
                              std::get<1>(GetParam()));
  Graph g_ = graph::BuildGraph(list_);
  uint64_t seed_ = std::get<1>(GetParam()) * 7919 + std::get<0>(GetParam());
};

TEST_P(CrossEngineTest, MisAgreesAcrossAllThreeEngines) {
  sim::Cluster ampc_cluster(SmallConfig());
  const core::MisResult ampc = core::AmpcMis(ampc_cluster, g_, seed_);

  sim::Cluster mpc_cluster(SmallConfig());
  const baselines::RootsetMisResult mpc =
      baselines::MpcRootsetMis(mpc_cluster, g_, seed_);

  const std::vector<uint8_t> oracle =
      seq::GreedyMis(g_, core::AllVertexRanks(g_.num_nodes(), seed_));
  EXPECT_EQ(ampc.in_mis, oracle);
  EXPECT_EQ(mpc.in_mis, oracle);
  EXPECT_TRUE(seq::IsMaximalIndependentSet(g_, ampc.in_mis));
}

TEST_P(CrossEngineTest, MatchingAgreesAcrossAllThreeEngines) {
  core::MatchingOptions options;
  options.seed = seed_;
  sim::Cluster ampc_cluster(SmallConfig());
  const core::MatchingResult ampc =
      core::AmpcMatching(ampc_cluster, g_, options);

  sim::Cluster mpc_cluster(SmallConfig());
  const baselines::RootsetMatchingResult mpc =
      baselines::MpcRootsetMatching(mpc_cluster, g_, seed_);
  EXPECT_EQ(ampc.partner, mpc.partner);

  // The oracle runs on the deduplicated edge set realized by the CSR.
  EdgeList simple;
  simple.num_nodes = g_.num_nodes();
  for (NodeId v = 0; v < g_.num_nodes(); ++v) {
    for (const NodeId u : g_.neighbors(v)) {
      if (v < u) simple.edges.push_back(graph::Edge{v, u});
    }
  }
  std::vector<uint64_t> ranks(simple.edges.size());
  for (size_t i = 0; i < simple.edges.size(); ++i) {
    ranks[i] =
        core::EdgeRank(simple.edges[i].u, simple.edges[i].v, seed_);
  }
  const seq::MatchingResult oracle =
      seq::GreedyMaximalMatching(simple, ranks);
  EXPECT_EQ(ampc.partner, oracle.partner);
  EXPECT_TRUE(seq::IsMaximalMatching(
      simple, core::ToSeqMatching(simple, ampc.partner).edges));
}

TEST_P(CrossEngineTest, MsfAgreesAcrossAllThreeEngines) {
  const WeightedEdgeList weighted =
      graph::MakeRandomWeighted(list_, seed_ ^ 0xfeed);
  core::MsfOptions options;
  options.seed = seed_;
  sim::Cluster ampc_cluster(SmallConfig());
  const core::MsfResult ampc =
      core::AmpcMsf(ampc_cluster, weighted, options);

  sim::Cluster mpc_cluster(SmallConfig());
  const baselines::BoruvkaResult mpc =
      baselines::MpcBoruvkaMsf(mpc_cluster, weighted, seed_);

  const std::vector<graph::EdgeId> oracle = seq::KruskalMsf(weighted);
  EXPECT_EQ(ampc.edges, oracle);
  EXPECT_EQ(mpc.edges, oracle);
}

TEST_P(CrossEngineTest, ConnectivityMatchesBfsCensus) {
  core::MsfOptions options;
  options.seed = seed_;
  sim::Cluster cluster(SmallConfig());
  const core::ConnectivityResult cc =
      core::AmpcConnectivity(cluster, list_, options);

  const std::vector<NodeId> bfs = graph::SequentialComponents(g_);
  EXPECT_EQ(cc.num_components,
            static_cast<int64_t>(graph::ComponentSizes(bfs).size()));
  EXPECT_TRUE(graph::SamePartition(bfs, cc.component));
}

TEST_P(CrossEngineTest, KCoreAgreesAcrossAllThreeEngines) {
  sim::Cluster ampc_cluster(SmallConfig());
  const core::KCoreResult ampc = core::AmpcKCore(ampc_cluster, g_);
  sim::Cluster mpc_cluster(SmallConfig());
  const baselines::MpcKCoreResult mpc =
      baselines::MpcKCore(mpc_cluster, g_);
  const std::vector<int32_t> oracle = seq::CoreDecomposition(g_);
  EXPECT_EQ(ampc.coreness, oracle);
  EXPECT_EQ(mpc.coreness, oracle);
}

TEST_P(CrossEngineTest, RoundComplexityContracts) {
  // Table 1 / Table 3 contracts at any input shape: AMPC MIS and MM use
  // exactly one shuffle; AMPC kcore one; MSF stays within its O(1) round
  // budget.
  {
    sim::Cluster cluster(SmallConfig());
    core::AmpcMis(cluster, g_, seed_);
    EXPECT_EQ(cluster.metrics().Get("shuffles"), 1);
  }
  {
    sim::Cluster cluster(SmallConfig());
    core::MatchingOptions options;
    options.seed = seed_;
    core::AmpcMatching(cluster, g_, options);
    EXPECT_EQ(cluster.metrics().Get("shuffles"), 1);
  }
  {
    sim::Cluster cluster(SmallConfig());
    const WeightedEdgeList weighted =
        graph::MakeRandomWeighted(list_, seed_);
    core::MsfOptions options;
    options.seed = seed_;
    const core::MsfResult msf = core::AmpcMsf(cluster, weighted, options);
    EXPECT_LE(cluster.metrics().Get("shuffles"),
              5 * std::max(1, msf.rounds) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossEngineTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6),
                       ::testing::Values(11u, 12u, 13u)));

}  // namespace
}  // namespace ampc
