#include "graph/contraction.h"

#include <gtest/gtest.h>

namespace ampc::graph {
namespace {

WeightedEdgeList PathFour() {
  WeightedEdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1, 1.0, 0}, {1, 2, 2.0, 1}, {2, 3, 3.0, 2}};
  return list;
}

TEST(ContractionTest, IdentityMappingDropsNothing) {
  WeightedEdgeList list = PathFour();
  std::vector<NodeId> cluster_of = {0, 1, 2, 3};
  ContractedGraph c = ContractEdgeList(list, cluster_of);
  EXPECT_EQ(c.list.num_nodes, 4);
  EXPECT_EQ(c.list.edges.size(), 3u);
}

TEST(ContractionTest, MergingEndpointsRemovesSelfLoops) {
  WeightedEdgeList list = PathFour();
  std::vector<NodeId> cluster_of = {0, 0, 2, 2};  // {0,1} and {2,3}
  ContractedGraph c = ContractEdgeList(list, cluster_of);
  EXPECT_EQ(c.list.num_nodes, 2);
  ASSERT_EQ(c.list.edges.size(), 1u);
  EXPECT_EQ(c.list.edges[0].id, 1u);  // the 1-2 edge survives
  EXPECT_EQ(c.list.edges[0].w, 2.0);
}

TEST(ContractionTest, IsolatedClustersRemoved) {
  WeightedEdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1, 1.0, 0}};  // 2 and 3 isolated
  std::vector<NodeId> cluster_of = {0, 1, 2, 3};
  ContractedGraph c = ContractEdgeList(list, cluster_of);
  EXPECT_EQ(c.list.num_nodes, 2);
  EXPECT_EQ(c.compact_of_vertex[2], kInvalidNode);
  EXPECT_EQ(c.compact_of_vertex[3], kInvalidNode);
  EXPECT_NE(c.compact_of_vertex[0], kInvalidNode);
}

TEST(ContractionTest, RepresentativeTracksClusterRoot) {
  WeightedEdgeList list = PathFour();
  std::vector<NodeId> cluster_of = {3, 3, 2, 3};  // cluster roots 3 and 2
  ContractedGraph c = ContractEdgeList(list, cluster_of);
  EXPECT_EQ(c.list.num_nodes, 2);
  // Every compacted id maps back to its root.
  for (int64_t v = 0; v < 4; ++v) {
    const NodeId compact = c.compact_of_vertex[v];
    ASSERT_NE(compact, kInvalidNode);
    EXPECT_EQ(c.representative[compact], cluster_of[v]);
  }
}

TEST(ContractionTest, ParallelEdgesKept) {
  WeightedEdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 2, 1.0, 0}, {1, 3, 2.0, 1}};
  std::vector<NodeId> cluster_of = {0, 0, 2, 2};
  ContractedGraph c = ContractEdgeList(list, cluster_of);
  EXPECT_EQ(c.list.num_nodes, 2);
  EXPECT_EQ(c.list.edges.size(), 2u);  // both cross edges survive
}

TEST(ContractionTest, EndpointsRelabeledConsistently) {
  WeightedEdgeList list = PathFour();
  std::vector<NodeId> mapping = {0, 0, 3, 3};
  ContractedGraph c = ContractEdgeList(list, mapping);
  ASSERT_EQ(c.list.edges.size(), 1u);
  const WeightedEdge& e = c.list.edges[0];
  EXPECT_NE(e.u, e.v);
  EXPECT_LT(e.u, 2u);
  EXPECT_LT(e.v, 2u);
}

}  // namespace
}  // namespace ampc::graph
