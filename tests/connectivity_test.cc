#include "core/connectivity.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/stats.h"
#include "seq/msf.h"

namespace ampc::core {
namespace {

using graph::EdgeList;

sim::ClusterConfig SmallConfig() {
  sim::ClusterConfig config;
  config.num_machines = 4;
  config.in_memory_threshold_arcs = 64;
  return config;
}

TEST(ConnectivityTest, CountsComponentsOnForests) {
  EdgeList list = graph::GenerateRandomForest(200, 7, 3);
  sim::Cluster cluster(SmallConfig());
  ConnectivityResult r = AmpcConnectivity(cluster, list);
  EXPECT_EQ(r.num_components, 7);
}

class ConnectivityEqualityTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(ConnectivityEqualityTest, PartitionMatchesBfs) {
  const auto [shape, seed] = GetParam();
  EdgeList list;
  switch (shape) {
    case 0:
      list = graph::GenerateErdosRenyi(300, 500, seed);  // fragmented
      break;
    case 1:
      list = graph::GenerateRmat(9, 1200, seed);
      break;
    case 2:
      list = graph::GenerateDoubleCycle(150);
      break;
    default:
      list = graph::GenerateGrid(15, 20);
  }
  sim::Cluster cluster(SmallConfig());
  MsfOptions options;
  options.seed = seed;
  ConnectivityResult r = AmpcConnectivity(cluster, list, options);

  graph::Graph g = graph::BuildGraph(list);
  std::vector<graph::NodeId> oracle = graph::SequentialComponents(g);
  EXPECT_TRUE(graph::SamePartition(r.component, oracle));
  EXPECT_EQ(r.num_components,
            static_cast<int64_t>(graph::ComponentSizes(oracle).size()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConnectivityEqualityTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1u, 2u, 3u)));

TEST(ConnectivityTest, ForestEdgesFormSpanningForest) {
  EdgeList list = graph::GenerateRmat(8, 800, 5);
  sim::Cluster cluster(SmallConfig());
  ConnectivityResult r = AmpcConnectivity(cluster, list);
  graph::WeightedEdgeList weighted = graph::MakeUnitWeighted(list);
  EXPECT_TRUE(seq::IsSpanningForest(weighted, r.forest_edges));
}

TEST(ConnectivityTest, IsolatedVerticesGetOwnComponent) {
  EdgeList list;
  list.num_nodes = 6;
  list.edges = {{0, 1}};
  sim::Cluster cluster(SmallConfig());
  ConnectivityResult r = AmpcConnectivity(cluster, list);
  EXPECT_EQ(r.num_components, 5);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_NE(r.component[2], r.component[3]);
}

}  // namespace
}  // namespace ampc::core
