#include "graph/ternarize.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "seq/msf.h"

namespace ampc::graph {
namespace {

WeightedEdgeList StarWithWeights(int64_t leaves) {
  WeightedEdgeList list;
  list.num_nodes = leaves + 1;
  for (int64_t i = 1; i <= leaves; ++i) {
    list.edges.push_back(WeightedEdge{0, static_cast<NodeId>(i),
                                      static_cast<Weight>(i),
                                      static_cast<EdgeId>(i - 1)});
  }
  return list;
}

TEST(TernarizeTest, LowDegreeGraphUnchangedStructurally) {
  WeightedEdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1, 1.0, 0}, {1, 2, 2.0, 1}, {2, 3, 3.0, 2}};
  Ternarized t = TernarizeGraph(list);
  EXPECT_EQ(t.list.num_nodes, 4);
  EXPECT_EQ(t.list.edges.size(), 3u);
  EXPECT_EQ(t.first_dummy_id, 3u);
}

TEST(TernarizeTest, HighDegreeVertexBecomesCycle) {
  WeightedEdgeList star = StarWithWeights(5);
  Ternarized t = TernarizeGraph(star);
  // Center (deg 5) -> 5 vertices; leaves stay single: 5 + 5 = 10.
  EXPECT_EQ(t.list.num_nodes, 10);
  // 5 original + 5 dummy cycle edges.
  EXPECT_EQ(t.list.edges.size(), 10u);
  // Max degree must now be <= 3.
  Graph g = BuildGraph(StripWeights(t.list));
  EXPECT_LE(g.max_degree(), 3);
}

TEST(TernarizeTest, OrigOfNodeMapsBack) {
  WeightedEdgeList star = StarWithWeights(5);
  Ternarized t = TernarizeGraph(star);
  int64_t center_copies = 0;
  for (NodeId orig : t.orig_of_node) center_copies += (orig == 0);
  EXPECT_EQ(center_copies, 5);
}

TEST(TernarizeTest, DummyWeightBelowLightestRealEdge) {
  WeightedEdgeList star = StarWithWeights(4);
  Ternarized t = TernarizeGraph(star);
  EXPECT_LT(t.dummy_weight, 1.0);
  for (const WeightedEdge& e : t.list.edges) {
    if (e.id >= t.first_dummy_id) {
      EXPECT_EQ(e.w, t.dummy_weight);
    }
  }
}

TEST(TernarizeTest, PreservesConnectivity) {
  EdgeList raw = GenerateRmat(8, 1500, 21);
  Graph g = BuildGraph(raw);
  // Rebuild a simple (deduped) edge list from the graph.
  WeightedEdgeList simple;
  simple.num_nodes = g.num_nodes();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (v < u) {
        simple.edges.push_back(WeightedEdge{
            v, u, 1.0, static_cast<EdgeId>(simple.edges.size())});
      }
    }
  }
  Ternarized t = TernarizeGraph(simple);
  Graph tg = BuildGraph(StripWeights(t.list));
  EXPECT_LE(tg.max_degree(), 3);

  // Components must correspond 1:1 through orig_of_node.
  std::vector<NodeId> orig_labels = SequentialComponents(g);
  std::vector<NodeId> tern_labels = SequentialComponents(tg);
  std::vector<NodeId> lifted(tern_labels.size());
  for (size_t i = 0; i < tern_labels.size(); ++i) {
    lifted[i] = orig_labels[t.orig_of_node[tern_labels[i]]];
  }
  for (size_t i = 0; i < lifted.size(); ++i) {
    EXPECT_EQ(lifted[i], orig_labels[t.orig_of_node[i]]);
  }
}

TEST(TernarizeTest, MsfOfTernarizedMatchesOriginal) {
  // MSF(ternarized) minus dummies == MSF(original) by edge id.
  EdgeList raw = GenerateErdosRenyi(60, 200, 33);
  Graph g = BuildGraph(raw);
  WeightedEdgeList simple;
  simple.num_nodes = g.num_nodes();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId u : g.neighbors(v)) {
      if (v < u) {
        simple.edges.push_back(WeightedEdge{
            v, u, ToUnitDouble(HashEdge(v, u, 5)),
            static_cast<EdgeId>(simple.edges.size())});
      }
    }
  }
  Ternarized t = TernarizeGraph(simple);
  std::vector<EdgeId> tern_msf = seq::KruskalMsf(t.list);
  std::vector<EdgeId> recovered = StripDummyEdges(t, tern_msf);
  std::vector<EdgeId> direct = seq::KruskalMsf(simple);
  EXPECT_EQ(recovered, direct);
}

TEST(TernarizeTest, SelfLoopsAreDropped) {
  // Self-loops can never join an MSF; ternarization must skip them rather
  // than give the looped vertex phantom cycle slots.
  WeightedEdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 0, 0.5, 0}, {0, 1, 1.0, 1}, {1, 2, 2.0, 2},
                {2, 2, 0.1, 3}};
  Ternarized t = TernarizeGraph(list);
  EXPECT_EQ(t.list.num_nodes, 3);
  EXPECT_EQ(t.list.edges.size(), 2u);
  for (const WeightedEdge& e : t.list.edges) EXPECT_NE(e.u, e.v);
  std::vector<EdgeId> msf = StripDummyEdges(t, seq::KruskalMsf(t.list));
  EXPECT_EQ(msf, (std::vector<EdgeId>{1, 2}));
}

TEST(TernarizeTest, SelfLoopOnHighDegreeVertex) {
  WeightedEdgeList star = StarWithWeights(5);
  star.edges.push_back(
      WeightedEdge{0, 0, 0.25, static_cast<EdgeId>(star.edges.size())});
  Ternarized t = TernarizeGraph(star);
  // Same layout as the loop-free star: center deg 5 -> 5 cycle slots.
  EXPECT_EQ(t.list.num_nodes, 10);
  EXPECT_EQ(t.list.edges.size(), 10u);
  Graph g = BuildGraph(StripWeights(t.list));
  EXPECT_LE(g.max_degree(), 3);
}

TEST(TernarizeTest, StripDummyEdgesFilters) {
  Ternarized t;
  t.first_dummy_id = 10;
  std::vector<EdgeId> mixed = {1, 5, 10, 11, 9};
  std::vector<EdgeId> real = StripDummyEdges(t, mixed);
  EXPECT_EQ(real, (std::vector<EdgeId>{1, 5, 9}));
}

}  // namespace
}  // namespace ampc::graph
