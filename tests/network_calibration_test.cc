// Pins the RDMA-vs-TCP calibration of kv::NetworkModel against the
// paper's Table 4: the simulated TCP/RDMA slowdown must land *inside*
// the published bands, not merely preserve the ordering.
//
//   * 1-vs-2-Cycle (latency-bound sequential walks): TCP is 1.74x-5.90x
//     slower than RDMA.
//   * MIS (bandwidth-heavier adjacency fetches): TCP is 1.50x-1.85x
//     slower.
//
// The probes isolate the data-dependent component of a round
// (round_spawn_sec = 0; spawn overhead and durable-storage shuffles are
// network-model independent, and at this library's reduced scale they
// would otherwise swamp the KV terms the paper measures at 1e8-1e11
// arcs).
#include <gtest/gtest.h>

#include <vector>

#include "kv/network_model.h"
#include "sim/cluster.h"

namespace ampc {
namespace {

sim::Cluster MakeCluster(const kv::NetworkModel& network) {
  sim::ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  config.round_spawn_sec = 0.0;
  config.network = network;
  return sim::Cluster(config);
}

TEST(NetworkCalibrationTest, ConstantsMatchPaperAnchors) {
  const kv::NetworkModel rdma = kv::NetworkModel::Rdma();
  const kv::NetworkModel tcp = kv::NetworkModel::TcpIp();
  // Section 5.3: RDMA lookups take ~2.5us.
  EXPECT_DOUBLE_EQ(rdma.lookup_latency_sec, 2.5e-6);
  // Section 5.7: ~80 Gb/s aggregate ceiling = 1e10 bytes/s.
  EXPECT_DOUBLE_EQ(rdma.aggregate_bytes_per_sec, 1.0e10);
  // Table 4 latency band: the TCP latency multiple must itself sit
  // inside 1.74-5.90, or a purely latency-bound phase could not.
  const double latency_ratio =
      tcp.lookup_latency_sec / rdma.lookup_latency_sec;
  EXPECT_GE(latency_ratio, 1.74);
  EXPECT_LE(latency_ratio, 5.90);
  // Table 4 MIS band for the bandwidth multiple.
  const double bandwidth_ratio = rdma.bytes_per_sec / tcp.bytes_per_sec;
  EXPECT_GE(bandwidth_ratio, 1.50);
  EXPECT_LE(bandwidth_ratio, 1.85);
}

// Latency-bound probe: pointer-chase walks fetching tiny records — the
// 1-vs-2-Cycle shape. The simulated TCP/RDMA ratio must land in the
// published 1.74-5.90 band.
TEST(NetworkCalibrationTest, LatencyBoundRatioInOneVsTwoCycleBand) {
  const int64_t n = 20000;
  auto run = [&](const kv::NetworkModel& network) {
    sim::Cluster cluster = MakeCluster(network);
    kv::ShardedStore<uint32_t> store = cluster.MakeStore<uint32_t>(n);
    cluster.RunKvWritePhase("w", store, n, [&](int64_t k) {
      return static_cast<uint32_t>((k + 1) % n);
    });
    cluster.RunMapPhase("chase", n,
                        [&](int64_t item, sim::MachineContext& ctx) {
                          uint64_t key = static_cast<uint64_t>(item);
                          for (int hop = 0; hop < 4; ++hop) {
                            const uint32_t* next = ctx.Lookup(store, key);
                            ASSERT_NE(next, nullptr);
                            key = *next;
                          }
                        });
    return cluster.metrics().GetTime("sim:chase");
  };
  const double ratio =
      run(kv::NetworkModel::TcpIp()) / run(kv::NetworkModel::Rdma());
  EXPECT_GE(ratio, 1.74);
  EXPECT_LE(ratio, 5.90);
}

// Bandwidth-bound probe: few lookups shipping fat adjacency records —
// the MIS shape. The ratio must land in the published 1.50-1.85 band.
TEST(NetworkCalibrationTest, BandwidthBoundRatioInMisBand) {
  const int64_t n = 2000;
  auto run = [&](const kv::NetworkModel& network) {
    sim::Cluster cluster = MakeCluster(network);
    auto store = cluster.MakeStore<std::vector<uint8_t>>(n);
    cluster.RunKvWritePhase("w", store, n, [](int64_t) {
      return std::vector<uint8_t>(1 << 16, 7);
    });
    cluster.RunMapPhase("fetch", n,
                        [&](int64_t item, sim::MachineContext& ctx) {
                          ctx.Lookup(store, static_cast<uint64_t>(item));
                        });
    return cluster.metrics().GetTime("sim:fetch");
  };
  const double ratio =
      run(kv::NetworkModel::TcpIp()) / run(kv::NetworkModel::Rdma());
  EXPECT_GE(ratio, 1.50);
  EXPECT_LE(ratio, 1.85);
}

}  // namespace
}  // namespace ampc
