#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ampc::graph {
namespace {

EdgeList Triangle() {
  EdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 1}, {1, 2}, {2, 0}};
  return list;
}

TEST(GraphTest, TriangleBasics) {
  Graph g = BuildGraph(Triangle());
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_arcs(), 6);
  EXPECT_EQ(g.num_undirected_edges(), 3);
  EXPECT_EQ(g.max_degree(), 2);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2);
}

TEST(GraphTest, AdjacencySortedByNeighborId) {
  EdgeList list;
  list.num_nodes = 5;
  list.edges = {{0, 4}, {0, 2}, {0, 1}, {0, 3}};
  Graph g = BuildGraph(list);
  auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(GraphTest, SelfLoopsRemovedByDefault) {
  EdgeList list;
  list.num_nodes = 2;
  list.edges = {{0, 0}, {0, 1}, {1, 1}};
  Graph g = BuildGraph(list);
  EXPECT_EQ(g.num_arcs(), 2);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(GraphTest, ParallelEdgesDeduped) {
  EdgeList list;
  list.num_nodes = 2;
  list.edges = {{0, 1}, {1, 0}, {0, 1}};
  Graph g = BuildGraph(list);
  EXPECT_EQ(g.num_arcs(), 2);
  BuildOptions keep;
  keep.dedup = false;
  Graph multi = BuildGraph(list, keep);
  EXPECT_EQ(multi.num_arcs(), 6);
}

TEST(GraphTest, EmptyGraph) {
  EdgeList list;
  list.num_nodes = 4;
  Graph g = BuildGraph(list);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_arcs(), 0);
  EXPECT_EQ(g.max_degree(), 0);
}

TEST(GraphTest, AdjacencyBytesCountsRecordSize) {
  Graph g = BuildGraph(Triangle());
  EXPECT_EQ(g.AdjacencyBytes(0),
            static_cast<int64_t>(sizeof(NodeId)) * 3);  // key + 2 neighbors
}

TEST(WeightedGraphTest, CarriesWeightsAndIds) {
  WeightedEdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 1, 5.0, 0}, {1, 2, 3.0, 1}, {2, 0, 4.0, 2}};
  WeightedGraph g = BuildWeightedGraph(list);
  EXPECT_EQ(g.num_arcs(), 6);
  auto nbrs = g.neighbors(1);
  auto ws = g.weights(1);
  auto ids = g.edge_ids(1);
  ASSERT_EQ(nbrs.size(), 2u);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == 0) {
      EXPECT_EQ(ws[i], 5.0);
      EXPECT_EQ(ids[i], 0u);
    } else {
      EXPECT_EQ(nbrs[i], 2u);
      EXPECT_EQ(ws[i], 3.0);
      EXPECT_EQ(ids[i], 1u);
    }
  }
}

TEST(WeightedGraphTest, DedupKeepsLightestParallelEdge) {
  WeightedEdgeList list;
  list.num_nodes = 2;
  list.edges = {{0, 1, 9.0, 0}, {0, 1, 2.0, 1}, {1, 0, 5.0, 2}};
  WeightedGraph g = BuildWeightedGraph(list);
  EXPECT_EQ(g.num_arcs(), 2);
  EXPECT_EQ(g.weights(0)[0], 2.0);
  EXPECT_EQ(g.edge_ids(0)[0], 1u);
}

TEST(WeightedGraphTest, SortAdjacenciesByWeight) {
  WeightedEdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1, 9.0, 0}, {0, 2, 2.0, 1}, {0, 3, 5.0, 2}};
  WeightedGraph g = BuildWeightedGraph(list);
  g.SortAdjacenciesByWeight();
  auto ws = g.weights(0);
  EXPECT_TRUE(std::is_sorted(ws.begin(), ws.end()));
  EXPECT_EQ(g.neighbors(0)[0], 2u);
}

TEST(WeightedGraphTest, MinWeight) {
  WeightedEdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 1, 5.0, 0}, {1, 2, -3.0, 1}};
  WeightedGraph g = BuildWeightedGraph(list);
  EXPECT_EQ(g.MinWeight(), -3.0);
}

TEST(WeightingTest, DegreeWeights) {
  EdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1}, {0, 2}, {0, 3}};  // star: deg(0)=3, leaves 1
  Graph g = BuildGraph(list);
  WeightedEdgeList w = MakeDegreeWeighted(list, g);
  ASSERT_EQ(w.edges.size(), 3u);
  for (const WeightedEdge& e : w.edges) EXPECT_EQ(e.w, 4.0);
  EXPECT_EQ(w.edges[2].id, 2u);
}

TEST(WeightingTest, RandomWeightsDeterministicAndSymmetric) {
  EdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 1}, {1, 2}};
  WeightedEdgeList a = MakeRandomWeighted(list, 7);
  WeightedEdgeList b = MakeRandomWeighted(list, 7);
  WeightedEdgeList c = MakeRandomWeighted(list, 8);
  EXPECT_EQ(a.edges[0].w, b.edges[0].w);
  EXPECT_NE(a.edges[0].w, c.edges[0].w);
  for (const WeightedEdge& e : a.edges) {
    EXPECT_GE(e.w, 0.0);
    EXPECT_LT(e.w, 1.0);
  }
}

TEST(WeightingTest, UnitAndStripRoundTrip) {
  EdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 1}, {1, 2}};
  WeightedEdgeList w = MakeUnitWeighted(list);
  for (const WeightedEdge& e : w.edges) EXPECT_EQ(e.w, 1.0);
  EdgeList back = StripWeights(w);
  EXPECT_EQ(back.num_nodes, list.num_nodes);
  ASSERT_EQ(back.edges.size(), list.edges.size());
  for (size_t i = 0; i < back.edges.size(); ++i) {
    EXPECT_EQ(back.edges[i], list.edges[i]);
  }
}

}  // namespace
}  // namespace ampc::graph
