#include "core/msf.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "seq/msf.h"

namespace ampc::core {
namespace {

using graph::EdgeList;
using graph::WeightedEdgeList;

sim::ClusterConfig SmallConfig() {
  sim::ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  // Force the distributed path even on the small test graphs.
  config.in_memory_threshold_arcs = 64;
  return config;
}

WeightedEdgeList ShapeWeighted(int shape, uint64_t seed) {
  EdgeList raw;
  switch (shape) {
    case 0:
      raw = graph::GenerateErdosRenyi(300, 1200, seed);
      break;
    case 1:
      raw = graph::GenerateRmat(9, 2500, seed);
      break;
    case 2:
      raw = graph::GeneratePath(500);
      break;
    case 3:
      raw = graph::GenerateGrid(20, 25);
      break;
    default:
      raw = graph::GenerateDoubleCycle(250);
  }
  return graph::MakeRandomWeighted(raw, seed ^ 0xbeef);
}

TEST(AmpcMsfTest, TinyGraphInMemoryPath) {
  sim::ClusterConfig config;
  config.num_machines = 2;
  config.in_memory_threshold_arcs = 1 << 20;  // everything in-memory
  sim::Cluster cluster(config);
  WeightedEdgeList list = ShapeWeighted(0, 1);
  MsfResult r = AmpcMsf(cluster, list);
  EXPECT_EQ(r.edges, seq::KruskalMsf(list));
  EXPECT_EQ(r.rounds, 0);
}

class MsfEqualityTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(MsfEqualityTest, ExactlyMatchesKruskal) {
  const auto [shape, seed] = GetParam();
  WeightedEdgeList list = ShapeWeighted(shape, seed);
  sim::Cluster cluster(SmallConfig());
  MsfOptions options;
  options.seed = seed;
  MsfResult r = AmpcMsf(cluster, list, options);
  EXPECT_EQ(r.edges, seq::KruskalMsf(list));
  EXPECT_GE(r.rounds, 1);  // the distributed path really ran
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MsfEqualityTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(1u, 2u, 3u)));

TEST(AmpcMsfTest, TernarizedPathMatchesKruskalToo) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    WeightedEdgeList list;
    {
      // Ternarize needs a simple graph: dedupe through the CSR.
      EdgeList raw = graph::GenerateRmat(8, 1200, seed);
      graph::Graph g = graph::BuildGraph(raw);
      list.num_nodes = g.num_nodes();
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        for (graph::NodeId u : g.neighbors(v)) {
          if (v < u) {
            list.edges.push_back(graph::WeightedEdge{
                v, u, ToUnitDouble(HashEdge(v, u, seed)),
                static_cast<graph::EdgeId>(list.edges.size())});
          }
        }
      }
    }
    sim::Cluster cluster(SmallConfig());
    MsfOptions options;
    options.seed = seed;
    options.ternarize = true;
    MsfResult r = AmpcMsf(cluster, list, options);
    EXPECT_EQ(r.edges, seq::KruskalMsf(list)) << "seed " << seed;
  }
}

TEST(AmpcMsfTest, FiveShufflesPerContractionRound) {
  WeightedEdgeList list = ShapeWeighted(1, 5);
  sim::Cluster cluster(SmallConfig());
  MsfOptions options;
  options.seed = 5;
  MsfResult r = AmpcMsf(cluster, list, options);
  // Section 5.5 / Table 3: 5 shuffles per search+contract round.
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 5 * r.rounds);
}

TEST(AmpcMsfTest, SearchLimitChangesCostNotOutput) {
  WeightedEdgeList list = ShapeWeighted(0, 9);
  MsfOptions tight;
  tight.seed = 9;
  tight.search_limit = 2;
  MsfOptions loose;
  loose.seed = 9;
  loose.search_limit = 64;
  sim::Cluster c1(SmallConfig()), c2(SmallConfig());
  EXPECT_EQ(AmpcMsf(c1, list, tight).edges, AmpcMsf(c2, list, loose).edges);
}

TEST(AmpcMsfTest, DeterministicAcrossClusterShapes) {
  WeightedEdgeList list = ShapeWeighted(1, 13);
  sim::ClusterConfig one;
  one.num_machines = 1;
  one.in_memory_threshold_arcs = 64;
  sim::ClusterConfig many;
  many.num_machines = 9;
  many.threads_per_machine = 4;
  many.in_memory_threshold_arcs = 64;
  sim::Cluster c1(one), c2(many);
  MsfOptions options;
  options.seed = 13;
  EXPECT_EQ(AmpcMsf(c1, list, options).edges,
            AmpcMsf(c2, list, options).edges);
}

TEST(AmpcMsfTest, DegreeWeightedInputsWork) {
  // The weighting scheme used by the paper's MSF experiments.
  EdgeList raw = graph::GenerateRmat(9, 2500, 17);
  graph::Graph g = graph::BuildGraph(raw);
  WeightedEdgeList list = graph::MakeDegreeWeighted(raw, g);
  sim::Cluster cluster(SmallConfig());
  MsfOptions options;
  options.seed = 17;
  MsfResult r = AmpcMsf(cluster, list, options);
  EXPECT_EQ(r.edges, seq::KruskalMsf(list));
}

TEST(AmpcMsfTest, EmptyAndEdgelessGraphs) {
  sim::Cluster cluster(SmallConfig());
  WeightedEdgeList list;
  list.num_nodes = 10;
  MsfResult r = AmpcMsf(cluster, list);
  EXPECT_TRUE(r.edges.empty());
}

TEST(AmpcMsfTest, ParallelEdgesAndSelfLoopsTolerated) {
  WeightedEdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 1, 5.0, 0}, {0, 1, 1.0, 1}, {1, 1, 0.5, 2},
                {1, 2, 2.0, 3}};
  sim::Cluster cluster(SmallConfig());
  MsfResult r = AmpcMsf(cluster, list);
  EXPECT_EQ(r.edges, seq::KruskalMsf(list));
  EXPECT_EQ(r.edges, (std::vector<graph::EdgeId>{1, 3}));
}

TEST(AmpcMsfTest, PointerJumpChainsStayShort) {
  // The paper observed a maximum chain length of 33 across all graphs;
  // ours should likewise stay far below n.
  WeightedEdgeList list = ShapeWeighted(1, 19);
  sim::Cluster cluster(SmallConfig());
  MsfOptions options;
  options.seed = 19;
  MsfResult r = AmpcMsf(cluster, list, options);
  EXPECT_LE(r.max_jump_chain, 64);
}

}  // namespace
}  // namespace ampc::core
