#include "trees/rooted_forest.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ampc::trees {
namespace {

using graph::NodeId;
using graph::WeightedEdge;

std::vector<WeightedEdge> PathEdges(int64_t n) {
  std::vector<WeightedEdge> edges;
  for (int64_t i = 0; i + 1 < n; ++i) {
    edges.push_back(WeightedEdge{static_cast<NodeId>(i),
                                 static_cast<NodeId>(i + 1),
                                 static_cast<double>(i), static_cast<graph::EdgeId>(i)});
  }
  return edges;
}

TEST(RootedForestTest, PathRootsAtZero) {
  RootedForest f = BuildRootedForest(5, PathEdges(5));
  EXPECT_TRUE(f.IsRoot(0));
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_EQ(f.parent[v], v - 1);
    EXPECT_EQ(f.depth[v], v);
    EXPECT_EQ(f.root[v], 0u);
    EXPECT_EQ(f.parent_weight[v], static_cast<double>(v - 1));
    EXPECT_EQ(f.parent_edge_id[v], v - 1);
  }
}

TEST(RootedForestTest, MultipleTrees) {
  std::vector<WeightedEdge> edges = {{0, 1, 1.0, 0}, {3, 4, 2.0, 1}};
  RootedForest f = BuildRootedForest(5, edges);
  EXPECT_TRUE(f.IsRoot(0));
  EXPECT_TRUE(f.IsRoot(2));
  EXPECT_TRUE(f.IsRoot(3));
  EXPECT_TRUE(f.SameTree(0, 1));
  EXPECT_TRUE(f.SameTree(3, 4));
  EXPECT_FALSE(f.SameTree(0, 3));
  EXPECT_FALSE(f.SameTree(2, 4));
}

TEST(RootedForestTest, ChildrenCsrIsConsistent) {
  std::vector<WeightedEdge> edges = {
      {0, 1, 1, 0}, {0, 2, 1, 1}, {1, 3, 1, 2}};
  RootedForest f = BuildRootedForest(4, edges);
  // Children of 0 are {1, 2}; of 1 are {3}.
  std::vector<NodeId> c0(f.children.begin() + f.child_offsets[0],
                         f.children.begin() + f.child_offsets[1]);
  std::sort(c0.begin(), c0.end());
  EXPECT_EQ(c0, (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(f.child_offsets[2] - f.child_offsets[1], 1);
  EXPECT_EQ(f.children[f.child_offsets[1]], 3u);
}

TEST(RootedForestTest, BfsOrderParentsFirst) {
  graph::EdgeList tree = graph::GenerateRandomTree(300, 9);
  std::vector<WeightedEdge> edges;
  for (size_t i = 0; i < tree.edges.size(); ++i) {
    edges.push_back(WeightedEdge{tree.edges[i].u, tree.edges[i].v, 1.0,
                                 static_cast<graph::EdgeId>(i)});
  }
  RootedForest f = BuildRootedForest(300, edges);
  std::vector<int64_t> position(300, -1);
  for (size_t i = 0; i < f.bfs_order.size(); ++i) {
    position[f.bfs_order[i]] = static_cast<int64_t>(i);
  }
  for (NodeId v = 0; v < 300; ++v) {
    ASSERT_NE(position[v], -1);
    if (!f.IsRoot(v)) {
      EXPECT_LT(position[f.parent[v]], position[v]);
    }
  }
}

TEST(RootedForestTest, DepthsAreConsistent) {
  graph::EdgeList tree = graph::GenerateRandomTree(500, 4);
  std::vector<WeightedEdge> edges;
  for (size_t i = 0; i < tree.edges.size(); ++i) {
    edges.push_back(WeightedEdge{tree.edges[i].u, tree.edges[i].v, 1.0,
                                 static_cast<graph::EdgeId>(i)});
  }
  RootedForest f = BuildRootedForest(500, edges);
  for (NodeId v = 0; v < 500; ++v) {
    if (f.IsRoot(v)) {
      EXPECT_EQ(f.depth[v], 0);
    } else {
      EXPECT_EQ(f.depth[v], f.depth[f.parent[v]] + 1);
    }
  }
}

TEST(RootedForestDeathTest, CycleIsRejected) {
  std::vector<WeightedEdge> edges = {
      {0, 1, 1, 0}, {1, 2, 1, 1}, {2, 0, 1, 2}};
  EXPECT_DEATH(BuildRootedForest(3, edges), "cycle");
}

}  // namespace
}  // namespace ampc::trees
