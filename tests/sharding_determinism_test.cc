// Acceptance test for the sharded DHT: every core algorithm's output is
// a pure function of the input and seed — bit-identical across
// num_machines (1, 3, 8), thread counts, lookup batching mode (LookupMany
// vs scalar round-trip charging), query-result caching on/off, adaptive
// sub-batch bounds, pipeline depth (lockstep vs bounded-depth in-flight
// windows), and the AutoTuner on/off — while the *cost model* is free to differ
// (that is the point of per-machine accounting).
// A separate test pins outputs across placement policies.
#include <gtest/gtest.h>

#include <vector>

#include "core/connectivity.h"
#include "core/kcore.h"
#include "core/matching.h"
#include "core/mis.h"
#include "core/msf.h"
#include "core/one_vs_two_cycle.h"
#include "core/pagerank.h"
#include "graph/generators.h"
#include "sim/cluster.h"

namespace ampc {
namespace {

struct ClusterShape {
  int machines;
  int threads;
  bool batch_lookups = true;
  bool query_cache = true;
  int64_t max_batch_keys = 4096;  // the ClusterConfig default
  int pipeline_depth = 4;         // the ClusterConfig default
  bool auto_tune = false;
};

// Machine/thread grid crossed with the lookup-pipeline toggles: batching
// on/off x caching on/off x pipeline depth {1, 4}, plus a deliberately
// tiny sub-batch bound that forces DriveLookupPipelined's frontier
// windows and LookupMany's sub-batch splitting on every workload (and,
// at depth 4, several windows genuinely in flight per step).
const ClusterShape kShapes[] = {
    // batch on, cache on (the optimized client; depth 4 = the default)
    {1, 1, true, true},
    {3, 2, true, true},
    {8, 4, true, true},
    {3, 1, true, true},
    {8, 1, true, true},
    // batch off, cache on
    {1, 1, false, true},
    {3, 2, false, true},
    {8, 4, false, true},
    {8, 1, false, true},
    // batch on, cache off (the PR 3 pipeline)
    {1, 1, true, false},
    {8, 4, true, false},
    // batch off, cache off (the unoptimized scalar client)
    {3, 2, false, false},
    {8, 4, false, false},
    // sub-batching forced: windows of 16 in-flight keys
    {8, 4, true, true, /*max_batch_keys=*/16},
    {3, 2, true, false, /*max_batch_keys=*/16},
    // pipelining forced off (lockstep) across the toggle grid
    {8, 4, true, true, 4096, /*pipeline_depth=*/1},
    {3, 2, true, false, 4096, /*pipeline_depth=*/1},
    {8, 1, false, true, 4096, /*pipeline_depth=*/1},
    // lockstep x forced windows, and a deep pipeline over tiny windows
    {8, 4, true, true, /*max_batch_keys=*/16, /*pipeline_depth=*/1},
    {3, 2, true, true, /*max_batch_keys=*/16, /*pipeline_depth=*/8},
    // AutoTuner on: probe rounds run candidate configs and the commit
    // hot-swaps knobs (including placement) mid-job — outputs still
    // must not move.
    {3, 2, true, true, 4096, 4, /*auto_tune=*/true},
    {8, 4, true, true, 4096, 4, /*auto_tune=*/true},
    {8, 4, true, false, /*max_batch_keys=*/16, /*pipeline_depth=*/1,
     /*auto_tune=*/true},
};

sim::Cluster MakeCluster(const ClusterShape& shape) {
  sim::ClusterConfig config;
  config.num_machines = shape.machines;
  config.threads_per_machine = shape.threads;
  config.batch_lookups = shape.batch_lookups;
  config.query_cache.enabled = shape.query_cache;
  config.max_batch_keys = shape.max_batch_keys;
  config.pipeline_depth = shape.pipeline_depth;
  config.auto_tune.enabled = shape.auto_tune;
  return sim::Cluster(config);
}

sim::Cluster MakeCluster(int machines, kv::PlacementPolicy policy) {
  sim::ClusterConfig config;
  config.num_machines = machines;
  config.threads_per_machine = 2;
  config.placement_policy = policy;
  return sim::Cluster(config);
}

const kv::PlacementPolicy kPolicies[] = {kv::PlacementPolicy::kHash,
                                         kv::PlacementPolicy::kRange,
                                         kv::PlacementPolicy::kAffinity};

TEST(ShardingDeterminismTest, MisIdenticalAcrossMachineCounts) {
  graph::Graph g = graph::BuildGraph(graph::GenerateRmat(9, 3000, 17));
  sim::Cluster reference = MakeCluster(kShapes[0]);
  const core::MisResult expected = core::AmpcMis(reference, g, 17);
  for (const ClusterShape& shape : kShapes) {
    sim::Cluster cluster = MakeCluster(shape);
    EXPECT_EQ(core::AmpcMis(cluster, g, 17).in_mis, expected.in_mis)
        << shape.machines << " machines, " << shape.threads << " threads";
  }
}

TEST(ShardingDeterminismTest, KCoreIdenticalAcrossMachineCounts) {
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(400, 2400, 23));
  sim::Cluster reference = MakeCluster(kShapes[0]);
  const core::KCoreResult expected = core::AmpcKCore(reference, g);
  for (const ClusterShape& shape : kShapes) {
    sim::Cluster cluster = MakeCluster(shape);
    const core::KCoreResult got = core::AmpcKCore(cluster, g);
    EXPECT_EQ(got.coreness, expected.coreness);
    EXPECT_EQ(got.iterations, expected.iterations);
  }
}

TEST(ShardingDeterminismTest, MsfIdenticalAcrossMachineCounts) {
  graph::WeightedEdgeList list = graph::MakeRandomWeighted(
      graph::GenerateErdosRenyi(500, 2500, 31), /*seed=*/31);
  core::MsfOptions options;
  options.seed = 31;
  sim::Cluster reference = MakeCluster(kShapes[0]);
  const core::MsfResult expected =
      core::AmpcMsf(reference, list, options);
  for (const ClusterShape& shape : kShapes) {
    sim::Cluster cluster = MakeCluster(shape);
    EXPECT_EQ(core::AmpcMsf(cluster, list, options).edges, expected.edges)
        << shape.machines << " machines";
  }
}

TEST(ShardingDeterminismTest, MatchingIdenticalAcrossMachineCounts) {
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(300, 1500, 41));
  core::MatchingOptions options;
  options.seed = 41;
  sim::Cluster reference = MakeCluster(kShapes[0]);
  const core::MatchingResult expected =
      core::AmpcMatching(reference, g, options);
  for (const ClusterShape& shape : kShapes) {
    sim::Cluster cluster = MakeCluster(shape);
    EXPECT_EQ(core::AmpcMatching(cluster, g, options).partner,
              expected.partner);
  }
}

TEST(ShardingDeterminismTest, PageRankIdenticalAcrossMachineCounts) {
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(200, 1000, 53));
  core::PageRankMcOptions options;
  options.seed = 53;
  options.walks_per_node = 4;
  sim::Cluster reference = MakeCluster(kShapes[0]);
  const core::PageRankMcResult expected =
      core::AmpcMonteCarloPageRank(reference, g, options);
  for (const ClusterShape& shape : kShapes) {
    sim::Cluster cluster = MakeCluster(shape);
    const core::PageRankMcResult got =
        core::AmpcMonteCarloPageRank(cluster, g, options);
    EXPECT_EQ(got.rank, expected.rank);
    EXPECT_EQ(got.total_steps, expected.total_steps);
  }
}

TEST(ShardingDeterminismTest, ConnectivityIdenticalAcrossMachineCounts) {
  graph::EdgeList list = graph::GenerateErdosRenyi(400, 900, 61);
  sim::Cluster reference = MakeCluster(kShapes[0]);
  const core::ConnectivityResult expected =
      core::AmpcConnectivity(reference, list, {});
  for (const ClusterShape& shape : kShapes) {
    sim::Cluster cluster = MakeCluster(shape);
    const core::ConnectivityResult got =
        core::AmpcConnectivity(cluster, list, {});
    EXPECT_EQ(got.component, expected.component);
    EXPECT_EQ(got.num_components, expected.num_components);
  }
}

TEST(ShardingDeterminismTest, OneVsTwoCycleIdenticalAcrossMachineCounts) {
  graph::Graph g = graph::BuildGraph(graph::GenerateCycle(600));
  core::CycleOptions options;
  options.seed = 71;
  sim::Cluster reference = MakeCluster(kShapes[0]);
  const core::CycleResult expected =
      core::AmpcOneVsTwoCycle(reference, g, options);
  for (const ClusterShape& shape : kShapes) {
    sim::Cluster cluster = MakeCluster(shape);
    const core::CycleResult got =
        core::AmpcOneVsTwoCycle(cluster, g, options);
    EXPECT_EQ(got.num_cycles, expected.num_cycles);
    EXPECT_EQ(got.attempts, expected.attempts);
  }
}

// Placement only moves records and work between machines; it must never
// change what an algorithm computes.
TEST(ShardingDeterminismTest, MisIdenticalAcrossPlacementPolicies) {
  graph::Graph g = graph::BuildGraph(graph::GenerateRmat(9, 3000, 17));
  sim::Cluster reference = MakeCluster(1, kv::PlacementPolicy::kHash);
  const core::MisResult expected = core::AmpcMis(reference, g, 17);
  for (const kv::PlacementPolicy policy : kPolicies) {
    for (const int machines : {3, 8}) {
      sim::Cluster cluster = MakeCluster(machines, policy);
      EXPECT_EQ(core::AmpcMis(cluster, g, 17).in_mis, expected.in_mis)
          << kv::PlacementPolicyName(policy) << " x " << machines;
    }
  }
}

TEST(ShardingDeterminismTest, MsfIdenticalAcrossPlacementPolicies) {
  graph::WeightedEdgeList list = graph::MakeRandomWeighted(
      graph::GenerateErdosRenyi(500, 2500, 31), /*seed=*/31);
  core::MsfOptions options;
  options.seed = 31;
  sim::Cluster reference = MakeCluster(1, kv::PlacementPolicy::kHash);
  const core::MsfResult expected = core::AmpcMsf(reference, list, options);
  for (const kv::PlacementPolicy policy : kPolicies) {
    for (const int machines : {3, 8}) {
      sim::Cluster cluster = MakeCluster(machines, policy);
      EXPECT_EQ(core::AmpcMsf(cluster, list, options).edges, expected.edges)
          << kv::PlacementPolicyName(policy) << " x " << machines;
    }
  }
}

TEST(ShardingDeterminismTest, KCoreIdenticalAcrossPlacementPolicies) {
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(400, 2400, 23));
  sim::Cluster reference = MakeCluster(1, kv::PlacementPolicy::kHash);
  const core::KCoreResult expected = core::AmpcKCore(reference, g);
  for (const kv::PlacementPolicy policy : kPolicies) {
    sim::Cluster cluster = MakeCluster(8, policy);
    const core::KCoreResult got = core::AmpcKCore(cluster, g);
    EXPECT_EQ(got.coreness, expected.coreness)
        << kv::PlacementPolicyName(policy);
    EXPECT_EQ(got.iterations, expected.iterations);
  }
}

// --- Injected churn -------------------------------------------------
// Machine failures are a *cost* event, never a correctness event: the
// recovery machinery (replica re-streaming, checkpoint restore, round
// replay, cache drops) must leave every output bit-identical to a
// fault-free run, across kill seeds, machine counts, and pipeline
// depths.

sim::Cluster MakeChurnCluster(int machines, int depth, uint64_t kill_seed,
                              int replication, double checkpoint_period,
                              double rate = 1.0) {
  sim::ClusterConfig config;
  config.num_machines = machines;
  config.threads_per_machine = 2;
  config.pipeline_depth = depth;
  // Simulated jobs here run ~0.2-1 second; one kill per machine-second
  // guarantees churn actually happens without drowning the job.
  config.faults.fault_rate_per_machine_sec = rate;
  config.faults.fault_seed = kill_seed;
  config.faults.replication = replication;
  config.faults.checkpoint_period_sec = checkpoint_period;
  return sim::Cluster(config);
}

TEST(ShardingDeterminismTest, MisIdenticalUnderReplicatedChurn) {
  graph::Graph g = graph::BuildGraph(graph::GenerateRmat(9, 3000, 17));
  sim::Cluster reference = MakeCluster(kShapes[0]);  // fault-free
  const core::MisResult expected = core::AmpcMis(reference, g, 17);
  int64_t kills = 0;
  for (const uint64_t kill_seed : {1u, 7u, 99u}) {
    for (const int machines : {3, 8}) {
      for (const int depth : {1, 4}) {
        sim::Cluster cluster =
            MakeChurnCluster(machines, depth, kill_seed,
                             /*replication=*/2, /*checkpoint_period=*/0.0);
        EXPECT_EQ(core::AmpcMis(cluster, g, 17).in_mis, expected.in_mis)
            << "kill seed " << kill_seed << ", " << machines
            << " machines, depth " << depth;
        kills += cluster.metrics().Get("machines_lost");
      }
    }
  }
  // The axis is vacuous unless machines actually died along the way.
  EXPECT_GT(kills, 0);
}

TEST(ShardingDeterminismTest, KCoreIdenticalUnderCheckpointedChurn) {
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(400, 2400, 23));
  sim::Cluster reference = MakeCluster(kShapes[0]);
  const core::KCoreResult expected = core::AmpcKCore(reference, g);
  int64_t kills = 0;
  for (const uint64_t kill_seed : {5u, 13u}) {
    for (const int machines : {3, 8}) {
      sim::Cluster cluster =
          MakeChurnCluster(machines, /*depth=*/4, kill_seed,
                           /*replication=*/1, /*checkpoint_period=*/0.3);
      const core::KCoreResult got = core::AmpcKCore(cluster, g);
      EXPECT_EQ(got.coreness, expected.coreness)
          << "kill seed " << kill_seed << ", " << machines << " machines";
      EXPECT_EQ(got.iterations, expected.iterations);
      kills += cluster.metrics().Get("machines_lost");
    }
  }
  EXPECT_GT(kills, 0);
}

TEST(ShardingDeterminismTest, MatchingIdenticalUnderUnprotectedChurn) {
  // Even with neither replicas nor checkpoints (whole-job-restart
  // charging, the most expensive recovery), outputs never move.
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(300, 1500, 41));
  core::MatchingOptions options;
  options.seed = 41;
  sim::Cluster reference = MakeCluster(kShapes[0]);
  const core::MatchingResult expected =
      core::AmpcMatching(reference, g, options);
  for (const uint64_t kill_seed : {3u, 21u}) {
    sim::Cluster cluster =
        MakeChurnCluster(8, /*depth=*/4, kill_seed,
                         /*replication=*/1, /*checkpoint_period=*/0.0);
    EXPECT_EQ(core::AmpcMatching(cluster, g, options).partner,
              expected.partner)
        << "kill seed " << kill_seed;
  }
}

TEST(ShardingDeterminismTest, ChurnCostModelIsDeterministic) {
  // The injected schedule is a pure function of (rate, seed, machines):
  // the same run twice loses the same machines and charges the same
  // simulated cost, bit for bit, despite real threads underneath.
  graph::Graph g = graph::BuildGraph(graph::GenerateRmat(9, 3000, 17));
  // Rate high enough that this one short job certainly loses machines.
  sim::Cluster a = MakeChurnCluster(8, 4, /*kill_seed=*/7,
                                    /*replication=*/2,
                                    /*checkpoint_period=*/0.0, /*rate=*/5.0);
  sim::Cluster b = MakeChurnCluster(8, 4, /*kill_seed=*/7,
                                    /*replication=*/2,
                                    /*checkpoint_period=*/0.0, /*rate=*/5.0);
  EXPECT_EQ(core::AmpcMis(a, g, 17).in_mis, core::AmpcMis(b, g, 17).in_mis);
  EXPECT_EQ(a.metrics().Get("machines_lost"),
            b.metrics().Get("machines_lost"));
  EXPECT_GT(a.metrics().Get("machines_lost"), 0);
  EXPECT_DOUBLE_EQ(a.SimSeconds(), b.SimSeconds());
  EXPECT_DOUBLE_EQ(a.metrics().GetTime("sim:recovery"),
                   b.metrics().GetTime("sim:recovery"));
}

// --- Correlated domains, proactive drain, hedging -------------------
// The degradation layers stack the same way churn does: rack-level
// domain kills, failure warnings that drain and migrate shards
// mid-job, straggling destinations, and hedged lookups are all cost
// events. Outputs stay bit-identical across machine and thread counts
// under every combination, and the charged cost is itself a pure
// function of the config.

sim::Cluster MakeDegradeCluster(int machines, int threads,
                                uint64_t kill_seed, double warning_lead,
                                bool hedge) {
  sim::ClusterConfig config;
  config.num_machines = machines;
  config.threads_per_machine = threads;
  config.faults.fault_seed = kill_seed;
  config.faults.replication = 2;
  // Per-machine and rack-level kill streams both run: jobs here last
  // ~0.2-1 simulated second, so these rates land a handful of each.
  config.faults.fault_rate_per_machine_sec = 1.0;
  config.faults.machines_per_domain = 2;
  config.faults.domain_fault_rate_sec = 2.0;
  config.faults.warning_lead_sec = warning_lead;
  config.faults.slow_machine_rate = 0.25;
  config.faults.hedge_lookups = hedge;
  return sim::Cluster(config);
}

TEST(ShardingDeterminismTest, MisIdenticalUnderDomainDrainHedgeChurn) {
  graph::Graph g = graph::BuildGraph(graph::GenerateRmat(9, 3000, 17));
  sim::Cluster reference = MakeCluster(kShapes[0]);  // fault-free
  const core::MisResult expected = core::AmpcMis(reference, g, 17);
  int64_t domain_kills = 0, drains = 0;
  for (const double warning_lead : {0.0, 0.05}) {
    for (const bool hedge : {false, true}) {
      for (const int machines : {4, 8}) {
        for (const int threads : {1, 4}) {
          sim::Cluster cluster = MakeDegradeCluster(
              machines, threads, /*kill_seed=*/7, warning_lead, hedge);
          EXPECT_EQ(core::AmpcMis(cluster, g, 17).in_mis, expected.in_mis)
              << machines << " machines, " << threads
              << " threads, lead " << warning_lead << ", hedge " << hedge;
          domain_kills += cluster.metrics().Get("domains_lost");
          drains += cluster.metrics().Get("machines_drained");
        }
      }
    }
  }
  // The axis is vacuous unless racks actually died and warned machines
  // actually drained along the way.
  EXPECT_GT(domain_kills, 0);
  EXPECT_GT(drains, 0);
}

TEST(ShardingDeterminismTest, DegradeCostModelIsDeterministic) {
  // The full degradation stack — domain kills, drains with live shard
  // migration, stragglers, hedging — charges the same simulated cost
  // bit for bit on identical configs, despite real threads underneath.
  graph::Graph g = graph::BuildGraph(graph::GenerateRmat(9, 3000, 17));
  sim::Cluster a = MakeDegradeCluster(8, 4, /*kill_seed=*/7,
                                      /*warning_lead=*/0.05, /*hedge=*/true);
  sim::Cluster b = MakeDegradeCluster(8, 4, /*kill_seed=*/7,
                                      /*warning_lead=*/0.05, /*hedge=*/true);
  EXPECT_EQ(core::AmpcMis(a, g, 17).in_mis, core::AmpcMis(b, g, 17).in_mis);
  for (const char* counter :
       {"machines_lost", "domains_lost", "machines_drained",
        "shards_migrated", "kv_migration_bytes", "kv_slow_trips",
        "kv_hedged_trips", "kv_hedge_wins"}) {
    EXPECT_EQ(a.metrics().Get(counter), b.metrics().Get(counter))
        << counter;
  }
  EXPECT_GT(a.metrics().Get("machines_drained"), 0);
  EXPECT_GT(a.metrics().Get("kv_hedge_wins"), 0);
  EXPECT_DOUBLE_EQ(a.SimSeconds(), b.SimSeconds());
  EXPECT_DOUBLE_EQ(a.metrics().GetTime("sim:drain"),
                   b.metrics().GetTime("sim:drain"));
  EXPECT_DOUBLE_EQ(a.metrics().GetTime("sim:recovery"),
                   b.metrics().GetTime("sim:recovery"));
}

// --- Frontier engine ------------------------------------------------
// The frontier representation (push pipeline vs bitmap-broadcast pull)
// is a cost decision, never a value decision: every mode must produce
// the sparse mode's outputs bit for bit, across machine and thread
// counts. Alpha is forced low / beta high in one axis entry so hybrid
// actually flips representations mid-run on these small graphs.

struct FrontierShape {
  FrontierMode mode;
  double alpha;
  double beta;
  int machines;
  int threads;
};

const FrontierShape kFrontierShapes[] = {
    {FrontierMode::kSparse, 0, 0, 3, 2},
    {FrontierMode::kDense, 0, 0, 1, 1},
    {FrontierMode::kDense, 0, 0, 3, 2},
    {FrontierMode::kDense, 0, 0, 8, 4},
    {FrontierMode::kHybrid, 0, 0, 3, 2},
    {FrontierMode::kHybrid, 0, 0, 8, 4},
    {FrontierMode::kHybrid, 0, 0, 8, 1},
    // Aggressive thresholds: dense from nearly any frontier, back to
    // sparse only when almost empty — maximizes mid-run flips.
    {FrontierMode::kHybrid, 1e6, 2, 8, 4},
    {FrontierMode::kHybrid, 1e6, 2, 3, 2},
};

sim::Cluster MakeFrontierCluster(const FrontierShape& shape) {
  sim::ClusterConfig config;
  config.num_machines = shape.machines;
  config.threads_per_machine = shape.threads;
  config.frontier.mode = shape.mode;
  if (shape.alpha > 0) config.frontier.alpha = shape.alpha;
  if (shape.beta > 0) config.frontier.beta = shape.beta;
  return sim::Cluster(config);
}

TEST(ShardingDeterminismTest, KCoreIdenticalAcrossFrontierModes) {
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(400, 2400, 23));
  sim::Cluster reference = MakeCluster(kShapes[0]);  // pre-frontier path
  const core::KCoreResult expected = core::AmpcKCore(reference, g);
  for (const FrontierShape& shape : kFrontierShapes) {
    sim::Cluster cluster = MakeFrontierCluster(shape);
    const core::KCoreResult got = core::AmpcKCore(cluster, g);
    EXPECT_EQ(got.coreness, expected.coreness)
        << FrontierModeName(shape.mode) << " x " << shape.machines
        << " machines, " << shape.threads << " threads";
    EXPECT_EQ(got.iterations, expected.iterations);
  }
}

TEST(ShardingDeterminismTest, PageRankIdenticalAcrossFrontierModes) {
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(200, 1000, 53));
  core::PageRankMcOptions options;
  options.seed = 53;
  options.walks_per_node = 4;
  sim::Cluster reference = MakeCluster(kShapes[0]);
  const core::PageRankMcResult expected =
      core::AmpcMonteCarloPageRank(reference, g, options);
  for (const FrontierShape& shape : kFrontierShapes) {
    sim::Cluster cluster = MakeFrontierCluster(shape);
    const core::PageRankMcResult got =
        core::AmpcMonteCarloPageRank(cluster, g, options);
    EXPECT_EQ(got.rank, expected.rank)
        << FrontierModeName(shape.mode) << " x " << shape.machines;
    EXPECT_EQ(got.total_steps, expected.total_steps);
  }
}

TEST(ShardingDeterminismTest, ConnectivityIdenticalAcrossFrontierModes) {
  graph::EdgeList list = graph::GenerateErdosRenyi(400, 900, 61);
  sim::Cluster reference = MakeCluster(kShapes[0]);
  const core::ConnectivityResult expected =
      core::AmpcConnectivity(reference, list, {});
  for (const FrontierShape& shape : kFrontierShapes) {
    sim::Cluster cluster = MakeFrontierCluster(shape);
    const core::ConnectivityResult got =
        core::AmpcConnectivity(cluster, list, {});
    EXPECT_EQ(got.component, expected.component)
        << FrontierModeName(shape.mode) << " x " << shape.machines;
    EXPECT_EQ(got.num_components, expected.num_components);
  }
}

TEST(ShardingDeterminismTest, PersonalizedPageRankIdenticalAcrossFrontierModes) {
  // The one-vertex source frontier must stay sparse under hybrid and
  // still match when forced dense.
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(300, 1800, 67));
  core::PageRankMcOptions options;
  options.seed = 67;
  options.walks_per_node = 4;
  sim::Cluster reference = MakeCluster(kShapes[0]);
  const core::PageRankMcResult expected =
      core::AmpcPersonalizedPageRank(reference, g, /*source=*/5, options);
  for (const FrontierShape& shape : kFrontierShapes) {
    sim::Cluster cluster = MakeFrontierCluster(shape);
    const core::PageRankMcResult got =
        core::AmpcPersonalizedPageRank(cluster, g, /*source=*/5, options);
    EXPECT_EQ(got.rank, expected.rank)
        << FrontierModeName(shape.mode) << " x " << shape.machines;
    EXPECT_EQ(got.total_steps, expected.total_steps);
  }
}

TEST(ShardingDeterminismTest, PageRankIdenticalAcrossPlacementPolicies) {
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(200, 1000, 53));
  core::PageRankMcOptions options;
  options.seed = 53;
  options.walks_per_node = 4;
  sim::Cluster reference = MakeCluster(1, kv::PlacementPolicy::kHash);
  const core::PageRankMcResult expected =
      core::AmpcMonteCarloPageRank(reference, g, options);
  for (const kv::PlacementPolicy policy : kPolicies) {
    sim::Cluster cluster = MakeCluster(8, policy);
    const core::PageRankMcResult got =
        core::AmpcMonteCarloPageRank(cluster, g, options);
    EXPECT_EQ(got.rank, expected.rank) << kv::PlacementPolicyName(policy);
    EXPECT_EQ(got.total_steps, expected.total_steps);
  }
}

}  // namespace
}  // namespace ampc
