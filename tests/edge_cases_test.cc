// Adversarial-input coverage: empty graphs, singletons, self-loops,
// parallel edges, fully disconnected inputs and contract violations,
// pushed through every public algorithm. Distributed systems die on the
// inputs nobody benchmarked.
#include <gtest/gtest.h>

#include "baselines/mpc_kcore.h"
#include "baselines/mpc_pagerank.h"
#include "baselines/rootset_matching.h"
#include "baselines/rootset_mis.h"
#include "core/approx.h"
#include "core/clustering.h"
#include "core/connectivity.h"
#include "core/kcore.h"
#include "core/matching.h"
#include "core/mis.h"
#include "core/msf.h"
#include "core/pagerank.h"
#include "graph/generators.h"
#include "kv/store.h"
#include "seq/msf.h"

namespace ampc {
namespace {

using graph::EdgeList;
using graph::Graph;
using graph::kInvalidNode;
using graph::NodeId;
using graph::WeightedEdgeList;

sim::ClusterConfig SmallConfig() {
  sim::ClusterConfig config;
  config.num_machines = 2;
  config.threads_per_machine = 2;
  return config;
}

// ---------------------------------------------------------------------------
// Empty and singleton graphs through every algorithm.
// ---------------------------------------------------------------------------

TEST(EdgeCasesTest, EmptyGraphEverywhere) {
  EdgeList empty;
  empty.num_nodes = 0;
  Graph g = graph::BuildGraph(empty);

  sim::Cluster c1(SmallConfig());
  EXPECT_TRUE(core::AmpcMis(c1, g, 1).in_mis.empty());

  sim::Cluster c2(SmallConfig());
  EXPECT_TRUE(core::AmpcMatching(c2, g).partner.empty());

  sim::Cluster c3(SmallConfig());
  WeightedEdgeList wempty;
  wempty.num_nodes = 0;
  EXPECT_TRUE(core::AmpcMsf(c3, wempty).edges.empty());

  sim::Cluster c4(SmallConfig());
  EXPECT_EQ(core::AmpcConnectivity(c4, empty).num_components, 0);

  sim::Cluster c5(SmallConfig());
  EXPECT_TRUE(core::AmpcKCore(c5, g).coreness.empty());

  sim::Cluster c6(SmallConfig());
  EXPECT_TRUE(core::AmpcMonteCarloPageRank(c6, g).rank.empty());

  sim::Cluster c7(SmallConfig());
  EXPECT_EQ(core::AmpcVertexCover(c7, g).size, 0);
}

TEST(EdgeCasesTest, EdgelessGraphEverywhere) {
  EdgeList isolated;
  isolated.num_nodes = 7;
  Graph g = graph::BuildGraph(isolated);

  sim::Cluster c1(SmallConfig());
  const core::MisResult mis = core::AmpcMis(c1, g, 5);
  EXPECT_EQ(std::count(mis.in_mis.begin(), mis.in_mis.end(), 1), 7);

  sim::Cluster c2(SmallConfig());
  const core::MatchingResult mm = core::AmpcMatching(c2, g);
  for (const NodeId p : mm.partner) EXPECT_EQ(p, kInvalidNode);

  sim::Cluster c3(SmallConfig());
  EXPECT_EQ(core::AmpcConnectivity(c3, isolated).num_components, 7);

  sim::Cluster c4(SmallConfig());
  for (const int32_t c : core::AmpcKCore(c4, g).coreness) EXPECT_EQ(c, 0);

  // PageRank over isolated vertices: pure teleporting, uniform mass.
  sim::Cluster c5(SmallConfig());
  core::PageRankMcOptions pr;
  pr.walks_per_node = 50;
  for (const double r : core::AmpcMonteCarloPageRank(c5, g, pr).rank) {
    EXPECT_NEAR(r, 1.0 / 7, 0.05);
  }
}

// ---------------------------------------------------------------------------
// Self-loops and parallel edges survive the builders and the engines.
// ---------------------------------------------------------------------------

TEST(EdgeCasesTest, SelfLoopsAndParallelEdgesAreCanonicalized) {
  EdgeList noisy;
  noisy.num_nodes = 4;
  noisy.edges = {{0, 0}, {0, 1}, {1, 0}, {0, 1}, {2, 2}, {2, 3}, {3, 2}};
  Graph g = graph::BuildGraph(noisy);
  EXPECT_EQ(g.num_arcs(), 4);  // {0,1} and {2,3} once each, both arcs

  sim::Cluster c1(SmallConfig());
  const core::MisResult mis = core::AmpcMis(c1, g, 3);
  EXPECT_TRUE(seq::IsMaximalIndependentSet(g, mis.in_mis));

  sim::Cluster c2(SmallConfig());
  const core::MatchingResult mm = core::AmpcMatching(c2, g);
  EXPECT_EQ(mm.partner[0], 1u);
  EXPECT_EQ(mm.partner[2], 3u);

  sim::Cluster c3(SmallConfig());
  EXPECT_EQ(core::AmpcConnectivity(c3, noisy).num_components, 2);
}

TEST(EdgeCasesTest, MsfWithParallelAndLoopEdgesKeepsCheapest) {
  WeightedEdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 1, 9.0, 0}, {0, 1, 2.0, 1}, {1, 1, 0.1, 2},
                {1, 2, 5.0, 3}, {2, 1, 4.0, 4}};
  sim::Cluster cluster(SmallConfig());
  const core::MsfResult msf = core::AmpcMsf(cluster, list);
  EXPECT_EQ(msf.edges, seq::KruskalMsf(list));
  EXPECT_EQ(msf.edges, (std::vector<graph::EdgeId>{1, 4}));
}

// ---------------------------------------------------------------------------
// Extreme shapes.
// ---------------------------------------------------------------------------

TEST(EdgeCasesTest, StarHubThroughEverything) {
  // One vertex adjacent to all others stresses the skew paths.
  Graph g = graph::BuildGraph(graph::GenerateStar(500));
  sim::Cluster c1(SmallConfig());
  const core::MisResult mis = core::AmpcMis(c1, g, 17);
  // Either the hub alone or all leaves.
  const int64_t size =
      std::count(mis.in_mis.begin(), mis.in_mis.end(), 1);
  EXPECT_TRUE(size == 1 || size == 499) << size;

  sim::Cluster c2(SmallConfig());
  const core::MatchingResult mm = core::AmpcMatching(c2, g);
  int64_t matched = 0;
  for (const NodeId p : mm.partner) matched += p != kInvalidNode;
  EXPECT_EQ(matched, 2);  // the hub pairs with exactly one leaf

  sim::Cluster c3(SmallConfig());
  const core::KCoreResult cores = core::AmpcKCore(c3, g);
  EXPECT_EQ(cores.coreness[0], 1);
}

TEST(EdgeCasesTest, TwoVertexGraph) {
  EdgeList pair;
  pair.num_nodes = 2;
  pair.edges = {{0, 1}};
  Graph g = graph::BuildGraph(pair);

  sim::Cluster c1(SmallConfig());
  const core::MatchingResult mm = core::AmpcMatching(c1, g);
  EXPECT_EQ(mm.partner[0], 1u);

  sim::Cluster c2(SmallConfig());
  const core::VertexCoverResult cover = core::AmpcVertexCover(c2, g);
  EXPECT_EQ(cover.size, 2);

  sim::Cluster c3(SmallConfig());
  core::ApproxMatchingOptions approx;
  approx.epsilon = 0.01;
  EXPECT_EQ(core::AmpcApproxMaximumMatching(c3, g, approx).size, 1);
}

// ---------------------------------------------------------------------------
// Contract violations die loudly (AMPC_CHECK), not silently.
// ---------------------------------------------------------------------------

TEST(EdgeCasesDeathTest, CutToClustersRejectsInfeasibleK) {
  WeightedEdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1, 1.0, 0}, {2, 3, 1.0, 1}};  // two components
  sim::Cluster cluster(SmallConfig());
  const core::Dendrogram d = core::AmpcSingleLinkage(cluster, list);
  EXPECT_DEATH(d.CutToClusters(1), "");   // below num_components
  EXPECT_DEATH(d.CutToClusters(5), "");   // above num_nodes
}

TEST(EdgeCasesDeathTest, SampledMatchingRejectsBuckets) {
  Graph g = graph::BuildGraph(graph::GenerateCycle(8));
  sim::Cluster cluster(SmallConfig());
  core::MatchingOptions options;
  core::EdgeBucketMap buckets;
  options.edge_buckets = &buckets;
  EXPECT_DEATH(core::AmpcMatchingSampled(cluster, g, options), "");
}

TEST(EdgeCasesDeathTest, StoreRejectsDuplicateAndOversizedKeys) {
  kv::Store<int> store(4);
  store.Put(2, 10);
  EXPECT_DEATH(store.Put(2, 11), "duplicate");
  EXPECT_DEATH(store.Put(9, 1), "");
  EXPECT_EQ(store.Lookup(9), nullptr);  // out-of-range reads are benign
}

TEST(EdgeCasesDeathTest, ApproxOptionsRejectNonPositiveEpsilon) {
  Graph g = graph::BuildGraph(graph::GenerateCycle(6));
  WeightedEdgeList w;
  w.num_nodes = 6;
  sim::Cluster cluster(SmallConfig());
  core::WeightMatchingOptions bad;
  bad.epsilon = 0.0;
  EXPECT_DEATH(core::AmpcApproxMaxWeightMatching(cluster, w, bad), "");
  core::ApproxMatchingOptions bad2;
  bad2.epsilon = -1.0;
  EXPECT_DEATH(core::AmpcApproxMaximumMatching(cluster, g, bad2), "");
}

}  // namespace
}  // namespace ampc
