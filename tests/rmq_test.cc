#include "trees/rmq.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace ampc::trees {
namespace {

TEST(SparseTableTest, MinOnSmallArray) {
  MinSparseTable<int64_t> rmq({5, 2, 8, 2, 9});
  EXPECT_EQ(rmq.Query(0, 4), 2);
  EXPECT_EQ(rmq.QueryIndex(0, 4), 1);  // ties break to the left
  EXPECT_EQ(rmq.QueryIndex(2, 4), 3);
  EXPECT_EQ(rmq.Query(2, 2), 8);
  EXPECT_EQ(rmq.Query(4, 4), 9);
}

TEST(SparseTableTest, MaxOnSmallArray) {
  MaxSparseTable<int64_t> rmq({5, 2, 8, 2, 9});
  EXPECT_EQ(rmq.Query(0, 4), 9);
  EXPECT_EQ(rmq.Query(0, 2), 8);
  EXPECT_EQ(rmq.QueryIndex(0, 1), 0);
}

TEST(SparseTableTest, SingleElement) {
  MinSparseTable<int64_t> rmq({42});
  EXPECT_EQ(rmq.Query(0, 0), 42);
}

TEST(SparseTableTest, MatchesNaiveOnRandomArrays) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const int64_t k = 1 + static_cast<int64_t>(rng.NextBelow(200));
    std::vector<int64_t> values(k);
    for (auto& v : values) v = static_cast<int64_t>(rng.NextBelow(50));
    MinSparseTable<int64_t> min_rmq(values);
    MaxSparseTable<int64_t> max_rmq(values);
    for (int q = 0; q < 100; ++q) {
      int64_t lo = static_cast<int64_t>(rng.NextBelow(k));
      int64_t hi = static_cast<int64_t>(rng.NextBelow(k));
      if (lo > hi) std::swap(lo, hi);
      const auto begin = values.begin() + lo;
      const auto end = values.begin() + hi + 1;
      EXPECT_EQ(min_rmq.Query(lo, hi), *std::min_element(begin, end));
      EXPECT_EQ(max_rmq.Query(lo, hi), *std::max_element(begin, end));
    }
  }
}

TEST(SparseTableTest, TieBreaksToSmallestIndex) {
  MinSparseTable<int64_t> rmq({3, 3, 3, 3});
  for (int64_t lo = 0; lo < 4; ++lo) {
    for (int64_t hi = lo; hi < 4; ++hi) {
      EXPECT_EQ(rmq.QueryIndex(lo, hi), lo);
    }
  }
}

TEST(SparseTableTest, WorksWithCustomOrderedType) {
  struct Slot {
    double w;
    int id;
    bool operator<(const Slot& o) const { return w < o.w; }
    bool operator>(const Slot& o) const { return o < *this; }
  };
  MaxSparseTable<Slot> rmq({{1.0, 0}, {5.0, 1}, {2.0, 2}});
  EXPECT_EQ(rmq.Query(0, 2).id, 1);
  EXPECT_EQ(rmq.Query(2, 2).id, 2);
}

}  // namespace
}  // namespace ampc::trees
