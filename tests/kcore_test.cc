// Tests for the Section 5.7 k-core extension: the sequential peeling
// oracle, the AMPC h-index engine, the MPC dataflow baseline, and the
// shuffle-count contrast between the two.
#include "core/kcore.h"

#include <gtest/gtest.h>

#include "baselines/mpc_kcore.h"
#include "graph/generators.h"
#include "seq/kcore.h"

namespace ampc {
namespace {

using graph::Graph;
using graph::NodeId;

sim::ClusterConfig SmallConfig() {
  sim::ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  return config;
}

// ---------------------------------------------------------------------------
// Sequential oracle.
// ---------------------------------------------------------------------------

TEST(SeqKCoreTest, CompleteGraphCorenessIsNMinusOne) {
  Graph g = graph::BuildGraph(graph::GenerateComplete(7));
  std::vector<int32_t> coreness = seq::CoreDecomposition(g);
  for (const int32_t c : coreness) EXPECT_EQ(c, 6);
  EXPECT_EQ(seq::Degeneracy(coreness), 6);
}

TEST(SeqKCoreTest, TreesHaveCorenessOne) {
  Graph g = graph::BuildGraph(graph::GenerateRandomTree(64, 3));
  std::vector<int32_t> coreness = seq::CoreDecomposition(g);
  for (const int32_t c : coreness) EXPECT_EQ(c, 1);
}

TEST(SeqKCoreTest, CycleHasCorenessTwo) {
  Graph g = graph::BuildGraph(graph::GenerateCycle(20));
  for (const int32_t c : seq::CoreDecomposition(g)) EXPECT_EQ(c, 2);
}

TEST(SeqKCoreTest, CliqueWithPendantsSeparatesLevels) {
  // K5 with a pendant vertex on each clique member: pendants peel at 1,
  // the clique stays at 4.
  graph::EdgeList list = graph::GenerateComplete(5);
  list.num_nodes = 10;
  for (NodeId v = 0; v < 5; ++v) {
    list.edges.push_back(graph::Edge{v, static_cast<NodeId>(5 + v)});
  }
  Graph g = graph::BuildGraph(list);
  std::vector<int32_t> coreness = seq::CoreDecomposition(g);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(coreness[v], 4);
  for (NodeId v = 5; v < 10; ++v) EXPECT_EQ(coreness[v], 1);
  EXPECT_EQ(seq::KCoreVertices(coreness, 2),
            (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(SeqKCoreTest, KCoreSubgraphHasMinDegreeK) {
  // Defining property: within the k-core, every vertex keeps >= k
  // neighbors that are also in the k-core.
  Graph g = graph::BuildGraph(graph::GenerateRmat(9, 3000, 77));
  std::vector<int32_t> coreness = seq::CoreDecomposition(g);
  const int32_t degeneracy = seq::Degeneracy(coreness);
  ASSERT_GT(degeneracy, 1);
  for (int32_t k = 1; k <= degeneracy; ++k) {
    std::vector<uint8_t> in_core(g.num_nodes(), 0);
    for (NodeId v : seq::KCoreVertices(coreness, k)) in_core[v] = 1;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (!in_core[v]) continue;
      int64_t internal = 0;
      for (NodeId u : g.neighbors(v)) internal += in_core[u];
      EXPECT_GE(internal, k) << "vertex " << v << " at k=" << k;
    }
  }
  // Maximality: the (degeneracy+1)-core is empty.
  EXPECT_TRUE(seq::KCoreVertices(coreness, degeneracy + 1).empty());
}

TEST(SeqKCoreTest, EmptyGraph) {
  graph::EdgeList list;
  list.num_nodes = 0;
  Graph g = graph::BuildGraph(list);
  EXPECT_TRUE(seq::CoreDecomposition(g).empty());
  EXPECT_EQ(seq::Degeneracy({}), 0);
}

// ---------------------------------------------------------------------------
// h-index primitive.
// ---------------------------------------------------------------------------

TEST(HIndexTest, KnownValues) {
  std::vector<int32_t> a = {3, 0, 6, 1, 5};
  EXPECT_EQ(core::HIndex(a), 3);
  std::vector<int32_t> b = {10, 8, 5, 4, 3};
  EXPECT_EQ(core::HIndex(b), 4);
  std::vector<int32_t> empty;
  EXPECT_EQ(core::HIndex(empty), 0);
  std::vector<int32_t> zeros = {0, 0, 0};
  EXPECT_EQ(core::HIndex(zeros), 0);
  std::vector<int32_t> ones = {1, 1, 1};
  EXPECT_EQ(core::HIndex(ones), 1);
}

// ---------------------------------------------------------------------------
// AMPC engine vs oracle vs MPC baseline.
// ---------------------------------------------------------------------------

TEST(AmpcKCoreTest, MatchesOracleOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = graph::BuildGraph(graph::GenerateErdosRenyi(200, 700, seed));
    sim::Cluster cluster(SmallConfig());
    core::KCoreResult result = core::AmpcKCore(cluster, g);
    EXPECT_EQ(result.coreness, seq::CoreDecomposition(g)) << "seed " << seed;
    EXPECT_GE(result.iterations, 1);
  }
}

TEST(AmpcKCoreTest, MatchesOracleOnSkewedGraph) {
  Graph g = graph::BuildGraph(graph::GenerateRmat(10, 8000, 5));
  sim::Cluster cluster(SmallConfig());
  core::KCoreResult result = core::AmpcKCore(cluster, g);
  EXPECT_EQ(result.coreness, seq::CoreDecomposition(g));
}

TEST(AmpcKCoreTest, PathConvergesSlowlyButCorrectly) {
  // The h-index fixpoint's worst case: values on a path shrink by one
  // hop per iteration from the endpoints inward.
  Graph g = graph::BuildGraph(graph::GeneratePath(40));
  sim::Cluster cluster(SmallConfig());
  core::KCoreResult result = core::AmpcKCore(cluster, g);
  for (const int32_t c : result.coreness) EXPECT_EQ(c, 1);
  EXPECT_GE(result.iterations, 40 / 2 - 2);
}

TEST(AmpcKCoreTest, UsesExactlyOneShuffle) {
  Graph g = graph::BuildGraph(graph::GenerateErdosRenyi(300, 1200, 9));
  sim::Cluster cluster(SmallConfig());
  core::KCoreResult result = core::AmpcKCore(cluster, g);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 1);
  EXPECT_GT(result.iterations, 1);
}

TEST(MpcKCoreTest, MatchesAmpcAndPaysOneShufflePerIteration) {
  Graph g = graph::BuildGraph(graph::GenerateErdosRenyi(300, 1200, 9));
  sim::Cluster ampc_cluster(SmallConfig());
  core::KCoreResult ampc = core::AmpcKCore(ampc_cluster, g);

  sim::Cluster mpc_cluster(SmallConfig());
  baselines::MpcKCoreResult mpc = baselines::MpcKCore(mpc_cluster, g);

  EXPECT_EQ(mpc.coreness, ampc.coreness);
  EXPECT_EQ(mpc.iterations, ampc.iterations);
  EXPECT_EQ(mpc_cluster.metrics().Get("shuffles"), mpc.iterations);
}

TEST(MpcKCoreTest, IsolatedVerticesStayZero) {
  graph::EdgeList list;
  list.num_nodes = 6;
  list.edges = {{0, 1}, {1, 2}, {2, 0}};
  Graph g = graph::BuildGraph(list);
  sim::Cluster cluster(SmallConfig());
  baselines::MpcKCoreResult result = baselines::MpcKCore(cluster, g);
  EXPECT_EQ(result.coreness,
            (std::vector<int32_t>{2, 2, 2, 0, 0, 0}));
}

}  // namespace
}  // namespace ampc
