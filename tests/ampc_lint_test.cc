// ampc_lint's own tests: every rule id must fire on its fixture under
// tests/lint_fixtures/, every rule must be silenced by a justified
// allow annotation, and the real tree must lint clean (the same check
// the `ampc_lint` ctest and the CI lint job run, kept here too so a
// plain test binary reproduces the gate).
#include "ampc_lint.h"

#include <algorithm>
#include <map>
#include <string>

#include "gtest/gtest.h"

namespace ampc::lint {
namespace {

#ifndef AMPC_SOURCE_ROOT
#error "build must define AMPC_SOURCE_ROOT"
#endif

Report FixtureReport() {
  Options options;
  options.root = std::string(AMPC_SOURCE_ROOT) + "/tests/lint_fixtures";
  return Run(options);
}

// violations/suppressions per rule id.
struct RuleCounts {
  int violations = 0;
  int suppressed = 0;
};

std::map<std::string, RuleCounts> CountByRule(const Report& report) {
  std::map<std::string, RuleCounts> counts;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.suppressed) {
      counts[d.rule].suppressed++;
    } else {
      counts[d.rule].violations++;
    }
  }
  return counts;
}

TEST(AmpcLintTest, EveryRuleFiresOnItsFixture) {
  const Report report = FixtureReport();
  ASSERT_GT(report.files_scanned, 0) << "fixture tree missing";
  const auto counts = CountByRule(report);
  for (const RuleInfo& rule : Rules()) {
    const auto it = counts.find(rule.id);
    ASSERT_NE(it, counts.end()) << rule.id << " never fired on any fixture";
    EXPECT_GT(it->second.violations, 0)
        << rule.id << " has no unsuppressed fixture violation";
  }
}

TEST(AmpcLintTest, EveryRuleIsSilencedByItsAllowAnnotation) {
  const auto counts = CountByRule(FixtureReport());
  for (const RuleInfo& rule : Rules()) {
    const auto it = counts.find(rule.id);
    ASSERT_NE(it, counts.end());
    EXPECT_GT(it->second.suppressed, 0)
        << rule.id << " has no suppressed fixture case";
  }
}

TEST(AmpcLintTest, SuppressedFindingsCarryTheirJustification) {
  const Report report = FixtureReport();
  int suppressed = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (!d.suppressed) continue;
    ++suppressed;
    EXPECT_FALSE(d.justification.empty())
        << d.file << ":" << d.line << " [" << d.rule << "]";
  }
  EXPECT_GT(suppressed, 0);
}

TEST(AmpcLintTest, DiagnosticsAreClangStyleAndSorted) {
  const Report report = FixtureReport();
  ASSERT_FALSE(report.diagnostics.empty());
  const Diagnostic& first = report.diagnostics.front();
  const std::string line = first.ToString();
  EXPECT_NE(line.find(first.file + ":" + std::to_string(first.line) + ": "),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("[" + first.rule + "]"), std::string::npos) << line;
  EXPECT_TRUE(std::is_sorted(
      report.diagnostics.begin(), report.diagnostics.end(),
      [](const Diagnostic& a, const Diagnostic& b) {
        return a.file < b.file || (a.file == b.file && a.line < b.line);
      }));
}

TEST(AmpcLintTest, MalformedAnnotationsAreErrorsThemselves) {
  const Report report = FixtureReport();
  int malformed = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.rule == "bad-suppression" && !d.suppressed) ++malformed;
  }
  // bad_suppression_bad.cc carries one of each malformation: missing
  // justification, unknown rule id, and a non-allow directive.
  EXPECT_EQ(malformed, 3);
}

TEST(AmpcLintTest, ScopeChecksKeepNonOutputAffectingPathsQuiet) {
  const Report report = FixtureReport();
  for (const Diagnostic& d : report.diagnostics) {
    // The identical unordered-map iteration placed under tools/ must not
    // fire: only output-affecting paths carry the determinism burden.
    EXPECT_NE(d.file, "tools/unordered_iter_tool.cc") << d.ToString();
    // The gated and annotation-silenced microbenches stay clean/quiet.
    EXPECT_NE(d.file, "bench/micro_gate_ok.cc") << d.ToString();
    if (d.file == "bench/micro_gate_allowed.cc") {
      EXPECT_TRUE(d.suppressed);
    }
  }
}

TEST(AmpcLintTest, GuardedAndGrandfatheredMetricsAreClean) {
  const Report report = FixtureReport();
  for (const Diagnostic& d : report.diagnostics) {
    if (d.file != "src/sim/metric_bad.cc") continue;
    // Only the unguarded new counter may fire — the zero-rate-guarded
    // counter and the grandfathered "rounds" write are conventions-clean.
    EXPECT_EQ(d.rule, "metric-zero-guard") << d.ToString();
    EXPECT_NE(d.message.find("shiny_new_counter"), std::string::npos)
        << d.ToString();
  }
}

TEST(AmpcLintTest, JsonReportIsWellFormedAndComplete) {
  const Report report = FixtureReport();
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"errors\": " + std::to_string(report.errors())),
            std::string::npos);
  for (const RuleInfo& rule : Rules()) {
    EXPECT_NE(json.find(std::string("\"id\": \"") + rule.id + "\""),
              std::string::npos)
        << rule.id;
  }
  // Suppressed findings stay in the report, marked as such.
  EXPECT_NE(json.find("\"suppressed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"justification\": "), std::string::npos);
}

TEST(AmpcLintTest, MissingTreeYieldsEmptyReport) {
  Options options;
  options.root = std::string(AMPC_SOURCE_ROOT) + "/no/such/tree";
  const Report report = ::ampc::lint::Run(options);
  EXPECT_EQ(report.files_scanned, 0);
  EXPECT_EQ(report.errors(), 0);
}

// The integration gate: the real tree must be clean. Identical to what
// `make lint`, the `ampc_lint` ctest, and the CI lint job enforce.
TEST(AmpcLintTest, RealTreeIsClean) {
  Options options;
  options.root = AMPC_SOURCE_ROOT;
  const Report report = ::ampc::lint::Run(options);
  ASSERT_GT(report.files_scanned, 100) << "scan missed the tree";
  for (const Diagnostic& d : report.diagnostics) {
    EXPECT_TRUE(d.suppressed) << d.ToString();
  }
  EXPECT_EQ(report.errors(), 0);
}

}  // namespace
}  // namespace ampc::lint
