// Tests for the Corollary 4.1 approximation algorithms: validity of every
// output plus the approximation guarantee against exact small-graph
// oracles and analytic optima on structured graphs.
#include "core/approx.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/priorities.h"
#include "graph/generators.h"
#include "seq/exact_matching.h"
#include "seq/greedy.h"

namespace ampc::core {
namespace {

using graph::EdgeList;
using graph::Graph;
using graph::kInvalidNode;
using graph::NodeId;
using graph::Weight;
using graph::WeightedEdgeList;

sim::ClusterConfig SmallConfig() {
  sim::ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  return config;
}

int64_t MatchingSize(const std::vector<NodeId>& partner) {
  int64_t matched = 0;
  for (NodeId p : partner) matched += p != kInvalidNode;
  return matched / 2;
}

// Checks that `partner` is symmetric and uses only edges of `g`.
void ExpectValidMatching(const Graph& g, const std::vector<NodeId>& partner) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId p = partner[v];
    if (p == kInvalidNode) continue;
    ASSERT_LT(p, g.num_nodes());
    EXPECT_EQ(partner[p], v) << "partner array must be symmetric";
    bool is_edge = false;
    for (NodeId u : g.neighbors(v)) is_edge |= (u == p);
    EXPECT_TRUE(is_edge) << "matched pair (" << v << "," << p
                         << ") is not an edge";
  }
}

// ---------------------------------------------------------------------------
// Vertex cover.
// ---------------------------------------------------------------------------

TEST(VertexCoverTest, CoversEveryEdgeAndIsWithinTwiceOptimal) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    EdgeList list = graph::GenerateErdosRenyi(16, 30, seed);
    Graph g = graph::BuildGraph(list);
    sim::Cluster cluster(SmallConfig());
    MatchingOptions options;
    options.seed = seed;
    VertexCoverResult cover = AmpcVertexCover(cluster, g, options);

    std::vector<NodeId> cover_nodes;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (cover.in_cover[v]) cover_nodes.push_back(v);
    }
    EXPECT_EQ(static_cast<int64_t>(cover_nodes.size()), cover.size);
    EXPECT_TRUE(seq::IsVertexCover(list, cover_nodes));

    // LP duality sandwich: max matching <= min cover <= |cover| <= 2 * mm.
    const int64_t exact_mm = seq::ExactMaximumMatchingSize(list);
    EXPECT_LE(cover.size, 2 * exact_mm);
    EXPECT_GE(cover.size, exact_mm);
  }
}

TEST(VertexCoverTest, StarNeedsOnlyTwoVertices) {
  Graph g = graph::BuildGraph(graph::GenerateStar(50));
  sim::Cluster cluster(SmallConfig());
  VertexCoverResult cover = AmpcVertexCover(cluster, g);
  // Any maximal matching of a star has one edge -> cover size exactly 2
  // (optimal is 1: the hub), demonstrating the worst-case factor.
  EXPECT_EQ(cover.size, 2);
}

TEST(VertexCoverTest, EmptyGraphNeedsNoCover) {
  EdgeList list;
  list.num_nodes = 4;
  Graph g = graph::BuildGraph(list);
  sim::Cluster cluster(SmallConfig());
  VertexCoverResult cover = AmpcVertexCover(cluster, g);
  EXPECT_EQ(cover.size, 0);
}

// ---------------------------------------------------------------------------
// (2 + eps)-approximate maximum weight matching.
// ---------------------------------------------------------------------------

TEST(WeightMatchingTest, GuaranteeOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    graph::EdgeList raw = graph::GenerateErdosRenyi(15, 28, seed);
    WeightedEdgeList list = graph::MakeRandomWeighted(raw, seed + 1000);
    // Spread weights across several orders of magnitude to exercise
    // multiple buckets.
    for (auto& e : list.edges) e.w = std::pow(10.0, 3.0 * e.w);

    sim::Cluster cluster(SmallConfig());
    WeightMatchingOptions options;
    options.epsilon = 0.2;
    options.matching.seed = seed;
    WeightMatchingResult result =
        AmpcApproxMaxWeightMatching(cluster, list, options);

    Graph g = graph::BuildGraph(raw);
    ExpectValidMatching(g, result.partner);

    const Weight exact = seq::ExactMaximumWeightMatching(list);
    const double ratio =
        2.0 * (1.0 + options.epsilon) / (1.0 - options.epsilon / 2.0);
    EXPECT_GE(result.total_weight * ratio, exact - 1e-9)
        << "seed " << seed << ": got " << result.total_weight
        << " vs exact " << exact;
    EXPECT_LE(result.total_weight, exact + 1e-9);
  }
}

TEST(WeightMatchingTest, TotalWeightMatchesPartnerArray) {
  graph::EdgeList raw = graph::GenerateGrid(4, 5);
  WeightedEdgeList list = graph::MakeRandomWeighted(raw, 7);
  sim::Cluster cluster(SmallConfig());
  WeightMatchingResult result = AmpcApproxMaxWeightMatching(cluster, list);

  Weight recomputed = 0;
  for (NodeId v = 0; v < list.num_nodes; ++v) {
    const NodeId p = result.partner[v];
    if (p == kInvalidNode || p < v) continue;
    Weight best = 0;
    for (const auto& e : list.edges) {
      if ((e.u == v && e.v == p) || (e.u == p && e.v == v)) {
        best = std::max(best, e.w);
      }
    }
    recomputed += best;
  }
  EXPECT_NEAR(result.total_weight, recomputed, 1e-9);
}

TEST(WeightMatchingTest, NonPositiveWeightsYieldEmptyMatching) {
  graph::EdgeList raw = graph::GenerateCycle(6);
  WeightedEdgeList list;
  list.num_nodes = raw.num_nodes;
  for (size_t i = 0; i < raw.edges.size(); ++i) {
    list.edges.push_back(graph::WeightedEdge{
        raw.edges[i].u, raw.edges[i].v, -1.0, static_cast<graph::EdgeId>(i)});
  }
  sim::Cluster cluster(SmallConfig());
  WeightMatchingResult result = AmpcApproxMaxWeightMatching(cluster, list);
  EXPECT_EQ(MatchingSize(result.partner), 0);
  EXPECT_EQ(result.total_weight, 0.0);
}

TEST(WeightMatchingTest, SingleHeavyEdgeBeatsLightTriangleNeighbors) {
  // Path with weights 1, 100, 1: the rounded-class greedy must take the
  // heavy middle edge, exactly like greedy by true weight.
  WeightedEdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1, 1.0, 0}, {1, 2, 100.0, 1}, {2, 3, 1.0, 2}};
  sim::Cluster cluster(SmallConfig());
  WeightMatchingResult result = AmpcApproxMaxWeightMatching(cluster, list);
  EXPECT_EQ(result.partner[1], 2u);
  EXPECT_EQ(result.partner[2], 1u);
  EXPECT_EQ(result.total_weight, 100.0);
}

TEST(WeightMatchingTest, BucketCountIsLogarithmic) {
  // Weights in [1, n^3] with eps = 0.5: bucket count is at most
  // log_{1.5}(n / eps * max/min-kept) and certainly far below m.
  graph::EdgeList raw = graph::GenerateErdosRenyi(64, 300, 5);
  WeightedEdgeList list = graph::MakeRandomWeighted(raw, 5);
  for (auto& e : list.edges) e.w = 1.0 + e.w * 64.0 * 64.0 * 64.0;
  sim::Cluster cluster(SmallConfig());
  WeightMatchingOptions options;
  options.epsilon = 0.5;
  WeightMatchingResult result =
      AmpcApproxMaxWeightMatching(cluster, list, options);
  const double bound =
      std::log(64.0 * 64 * 64 * 64 / options.epsilon) /
      std::log1p(options.epsilon);
  EXPECT_GT(result.num_buckets, 0);
  EXPECT_LE(result.num_buckets, static_cast<int64_t>(bound) + 2);
}

TEST(WeightMatchingTest, MatchesSequentialGreedyOnSameBuckets) {
  // With a single weight class the reduction degenerates to the plain
  // random-order LFMM, which equals the sequential oracle exactly.
  graph::EdgeList raw = graph::GenerateErdosRenyi(40, 90, 11);
  WeightedEdgeList list;
  list.num_nodes = raw.num_nodes;
  for (size_t i = 0; i < raw.edges.size(); ++i) {
    list.edges.push_back(graph::WeightedEdge{
        raw.edges[i].u, raw.edges[i].v, 1.0, static_cast<graph::EdgeId>(i)});
  }
  sim::Cluster cluster(SmallConfig());
  WeightMatchingOptions options;
  options.matching.seed = 99;
  WeightMatchingResult result =
      AmpcApproxMaxWeightMatching(cluster, list, options);

  Graph g = graph::BuildGraph(raw);
  std::vector<uint64_t> ranks(raw.edges.size());
  for (size_t i = 0; i < raw.edges.size(); ++i) {
    ranks[i] = EdgeRank(raw.edges[i].u, raw.edges[i].v, 99);
  }
  seq::MatchingResult oracle = seq::GreedyMaximalMatching(raw, ranks);
  EXPECT_EQ(result.partner, oracle.partner);
}

// ---------------------------------------------------------------------------
// (1 + eps)-approximate maximum cardinality matching.
// ---------------------------------------------------------------------------

TEST(ApproxMatchingTest, GuaranteeOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    EdgeList list = graph::GenerateErdosRenyi(16, 30, seed);
    Graph g = graph::BuildGraph(list);
    sim::Cluster cluster(SmallConfig());
    ApproxMatchingOptions options;
    options.epsilon = 0.34;  // k = 3, paths up to length 5
    options.matching.seed = seed;
    ApproxMatchingResult result =
        AmpcApproxMaximumMatching(cluster, g, options);

    ExpectValidMatching(g, result.partner);
    EXPECT_EQ(MatchingSize(result.partner), result.size);

    const int64_t exact = seq::ExactMaximumMatchingSize(list);
    EXPECT_GE(static_cast<double>(result.size) * (1.0 + options.epsilon),
              static_cast<double>(exact))
        << "seed " << seed;
    EXPECT_LE(result.size, exact);
  }
}

TEST(ApproxMatchingTest, SmallEpsilonIsExactOnSmallGraphs) {
  // With eps < 2/n the searched path length covers any augmenting path,
  // so the result is an exact maximum matching.
  for (uint64_t seed = 50; seed < 56; ++seed) {
    EdgeList list = graph::GenerateErdosRenyi(12, 20, seed);
    Graph g = graph::BuildGraph(list);
    sim::Cluster cluster(SmallConfig());
    ApproxMatchingOptions options;
    options.epsilon = 0.12;  // k = 9 > n/2
    options.matching.seed = seed;
    ApproxMatchingResult result =
        AmpcApproxMaximumMatching(cluster, g, options);
    EXPECT_EQ(result.size, seq::ExactMaximumMatchingSize(list))
        << "seed " << seed;
  }
}

TEST(ApproxMatchingTest, AugmentsGreedyOnLongPath) {
  // On an even path, an adversarial greedy can leave isolated free
  // vertices; augmentation must recover the perfect matching when eps is
  // small enough to search across the path.
  const int64_t n = 10;
  EdgeList list = graph::GeneratePath(n);
  Graph g = graph::BuildGraph(list);
  sim::Cluster cluster(SmallConfig());
  ApproxMatchingOptions options;
  options.epsilon = 0.1;  // k = 10: path length up to 19 covers the graph
  ApproxMatchingResult result = AmpcApproxMaximumMatching(cluster, g, options);
  EXPECT_EQ(result.size, n / 2);
}

TEST(ApproxMatchingTest, EpsilonOneIsJustMaximal) {
  // k = 1: no augmentation; the result equals the maximal matching.
  EdgeList list = graph::GenerateErdosRenyi(30, 60, 3);
  Graph g = graph::BuildGraph(list);
  sim::Cluster cluster(SmallConfig());
  ApproxMatchingOptions options;
  options.epsilon = 1.0;
  options.matching.seed = 3;
  ApproxMatchingResult approx = AmpcApproxMaximumMatching(cluster, g, options);

  sim::Cluster cluster2(SmallConfig());
  MatchingResult maximal = AmpcMatching(cluster2, g, options.matching);
  EXPECT_EQ(approx.partner, maximal.partner);
  EXPECT_EQ(approx.paths_applied, 0);
}

TEST(ApproxMatchingTest, BipartiteCrownNeedsAugmentation) {
  // Crown graph S_3^0 (K_{3,3} minus a perfect matching) plus a bad seed:
  // whatever the greedy does, augmentation must reach the perfect
  // matching of size 3 when the search length is >= 3.
  EdgeList list;
  list.num_nodes = 6;
  for (NodeId a = 0; a < 3; ++a) {
    for (NodeId b = 3; b < 6; ++b) {
      if (b - 3 != a) list.edges.push_back(graph::Edge{a, b});
    }
  }
  Graph g = graph::BuildGraph(list);
  for (uint64_t seed = 0; seed < 6; ++seed) {
    sim::Cluster cluster(SmallConfig());
    ApproxMatchingOptions options;
    options.epsilon = 0.4;  // k = 3: paths up to length 5
    options.matching.seed = seed;
    ApproxMatchingResult result =
        AmpcApproxMaximumMatching(cluster, g, options);
    EXPECT_EQ(result.size, 3) << "seed " << seed;
  }
}

TEST(ApproxMatchingTest, ReportsRoundsAndPaths) {
  EdgeList list = graph::GeneratePath(8);
  Graph g = graph::BuildGraph(list);
  sim::Cluster cluster(SmallConfig());
  ApproxMatchingOptions options;
  options.epsilon = 0.2;
  ApproxMatchingResult result = AmpcApproxMaximumMatching(cluster, g, options);
  EXPECT_EQ(result.max_path_length, 2 * 5 - 1);
  EXPECT_GE(result.augment_phases, 1);
  // Metrics must show the staged graph and any commits.
  EXPECT_GE(cluster.metrics().Get("shuffles"), 2);
}

}  // namespace
}  // namespace ampc::core
