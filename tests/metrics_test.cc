#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ampc {
namespace {

TEST(MetricsTest, CountersStartAtZero) {
  Metrics m;
  EXPECT_EQ(m.Get("anything"), 0);
}

TEST(MetricsTest, AddAccumulates) {
  Metrics m;
  m.Add("kv_reads", 3);
  m.Add("kv_reads", 4);
  EXPECT_EQ(m.Get("kv_reads"), 7);
}

TEST(MetricsTest, TimersAccumulate) {
  Metrics m;
  m.AddTime("sim:shuffle", 1.5);
  m.AddTime("sim:shuffle", 0.25);
  EXPECT_NEAR(m.GetTime("sim:shuffle"), 1.75, 1e-9);
  EXPECT_EQ(m.GetTime("missing"), 0.0);
}

TEST(MetricsTest, SnapshotCapturesEverything) {
  Metrics m;
  m.Add("a", 1);
  m.Add("b", 2);
  m.AddTime("t", 0.5);
  MetricsSnapshot snap = m.Snapshot();
  EXPECT_EQ(snap.counters.at("a"), 1);
  EXPECT_EQ(snap.counters.at("b"), 2);
  EXPECT_NEAR(snap.timers_sec.at("t"), 0.5, 1e-9);
}

TEST(MetricsTest, DeltaSubtracts) {
  Metrics m;
  m.Add("x", 10);
  MetricsSnapshot before = m.Snapshot();
  m.Add("x", 5);
  m.AddTime("t", 1.0);
  MetricsSnapshot delta = m.Snapshot().Delta(before);
  EXPECT_EQ(delta.counters.at("x"), 5);
  EXPECT_NEAR(delta.timers_sec.at("t"), 1.0, 1e-9);
}

TEST(MetricsTest, ResetZeroes) {
  Metrics m;
  m.Add("x", 10);
  m.AddTime("t", 1.0);
  m.Reset();
  EXPECT_EQ(m.Get("x"), 0);
  EXPECT_EQ(m.GetTime("t"), 0.0);
}

TEST(MetricsTest, ConcurrentAddsAreExact) {
  Metrics m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&m] {
      for (int i = 0; i < 10000; ++i) m.Add("hits", 1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.Get("hits"), 80000);
}

TEST(MetricsTest, ToStringMentionsCounters) {
  Metrics m;
  m.Add("shuffles", 5);
  const std::string s = m.Snapshot().ToString();
  EXPECT_NE(s.find("shuffles=5"), std::string::npos);
}

}  // namespace
}  // namespace ampc
