#include "trees/treap.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/priorities.h"
#include "graph/generators.h"

namespace ampc::trees {
namespace {

using graph::Edge;
using graph::NodeId;

TEST(TreapTest, PathTreapRootIsMinRank) {
  graph::EdgeList path = graph::GeneratePath(16);
  std::vector<uint64_t> rank(16);
  for (int i = 0; i < 16; ++i) rank[i] = 1000 - i;  // vertex 15 is min
  TernaryTreap treap = BuildTernaryTreap(16, path.edges, rank);
  EXPECT_EQ(treap.parent[15], 15u);
  EXPECT_EQ(treap.depth[15], 0);
  EXPECT_EQ(treap.subtree_size[15], 16);
}

TEST(TreapTest, DecreasingRanksOnPathGiveChain) {
  // Min at one end: each removal splits off one component.
  graph::EdgeList path = graph::GeneratePath(8);
  std::vector<uint64_t> rank = {0, 1, 2, 3, 4, 5, 6, 7};
  TernaryTreap treap = BuildTernaryTreap(8, path.edges, rank);
  EXPECT_EQ(treap.height, 8);
  for (NodeId v = 1; v < 8; ++v) EXPECT_EQ(treap.parent[v], v - 1);
}

TEST(TreapTest, ParentHasLowerRank) {
  graph::EdgeList tree = graph::GenerateRandomTernaryTree(512, 5);
  std::vector<uint64_t> rank = core::AllVertexRanks(512, 77);
  TernaryTreap treap = BuildTernaryTreap(512, tree.edges, rank);
  for (NodeId v = 0; v < 512; ++v) {
    if (treap.parent[v] != v) {
      EXPECT_LT(rank[treap.parent[v]], rank[v]);
      EXPECT_EQ(treap.depth[v], treap.depth[treap.parent[v]] + 1);
    }
  }
}

TEST(TreapTest, SubtreeSizesSumCorrectly) {
  graph::EdgeList tree = graph::GenerateRandomTernaryTree(256, 9);
  std::vector<uint64_t> rank = core::AllVertexRanks(256, 3);
  TernaryTreap treap = BuildTernaryTreap(256, tree.edges, rank);
  // Every vertex's subtree size = 1 + children's sizes.
  std::vector<int64_t> expected(256, 1);
  std::vector<NodeId> order(256);
  for (NodeId v = 0; v < 256; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return treap.depth[a] > treap.depth[b];
  });
  for (NodeId v : order) {
    if (treap.parent[v] != v) expected[treap.parent[v]] += expected[v];
  }
  for (NodeId v = 0; v < 256; ++v) {
    EXPECT_EQ(treap.subtree_size[v], expected[v]);
  }
  // The root's subtree covers the whole (connected) tree.
  for (NodeId v = 0; v < 256; ++v) {
    if (treap.parent[v] == v) {
      EXPECT_EQ(treap.subtree_size[v], 256);
    }
  }
}

TEST(TreapTest, ForestBuildsOneTreapPerComponent) {
  graph::EdgeList paths;
  paths.num_nodes = 12;
  paths.edges = {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {6, 7}};
  std::vector<uint64_t> rank = core::AllVertexRanks(12, 8);
  TernaryTreap treap = BuildTernaryTreap(12, paths.edges, rank);
  int roots = 0;
  for (NodeId v = 0; v < 12; ++v) roots += (treap.parent[v] == v);
  EXPECT_EQ(roots, 12 - 5);  // n - edges components
}

// Lemma A.1 height behaviour. For path-shaped trees the ternary treap is
// an ordinary treap and its height concentrates around 3*log2 n. For
// *balanced* ternary trees the expected number of ancestors of i is
// sum_j 1/(dist(i,j)+1), which grows like n/log n because the number of
// vertices at distance d grows exponentially — so no O(log n) bound can
// hold there (the MSF algorithm is protected by Prim stopping rule (1),
// which truncates searches regardless; see DESIGN.md "fidelity notes").
class TreapHeightTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TreapHeightTest, HeightIsLogarithmicOnPaths) {
  const uint64_t seed = GetParam();
  const int64_t n = 8192;
  graph::EdgeList path = graph::GeneratePath(n);
  std::vector<uint64_t> rank = core::AllVertexRanks(n, seed ^ 0x9999);
  TernaryTreap treap = BuildTernaryTreap(n, path.edges, rank);
  EXPECT_LE(treap.height, 8 * std::log2(static_cast<double>(n)));
  EXPECT_GE(treap.height, std::log2(static_cast<double>(n)) / 2);
}

TEST_P(TreapHeightTest, HeightOnBalancedTreesIsSublinearNotLogarithmic) {
  const uint64_t seed = GetParam();
  const int64_t n = 8192;
  graph::EdgeList tree = graph::GenerateRandomTernaryTree(n, seed);
  std::vector<uint64_t> rank = core::AllVertexRanks(n, seed ^ 0x9999);
  TernaryTreap treap = BuildTernaryTreap(n, tree.edges, rank);
  // Far below n, far above log n: the n/polylog regime.
  EXPECT_LE(treap.height, n / 4);
  EXPECT_GE(treap.height, 4 * std::log2(static_cast<double>(n)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreapHeightTest,
                         ::testing::Values(21, 22, 23, 24, 25));

TEST(TreapDeathTest, RejectsHighDegree) {
  graph::EdgeList star = graph::GenerateStar(5);  // center degree 4
  std::vector<uint64_t> rank = core::AllVertexRanks(5, 1);
  EXPECT_DEATH(BuildTernaryTreap(5, star.edges, rank), "degree");
}

}  // namespace
}  // namespace ampc::trees
