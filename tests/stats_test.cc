#include "graph/stats.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace ampc::graph {
namespace {

TEST(StatsTest, PathStats) {
  Graph g = BuildGraph(GeneratePath(10));
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 10);
  EXPECT_EQ(s.num_arcs, 18);
  EXPECT_EQ(s.num_components, 1);
  EXPECT_EQ(s.largest_component, 10);
  EXPECT_EQ(s.diameter_lower_bound, 9);
}

TEST(StatsTest, DoubleCycleStats) {
  Graph g = BuildGraph(GenerateDoubleCycle(20));
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_components, 2);
  EXPECT_EQ(s.largest_component, 20);
  EXPECT_EQ(s.diameter_lower_bound, 10);  // eccentricity within one cycle
}

TEST(StatsTest, IsolatedVerticesAreComponents) {
  EdgeList list;
  list.num_nodes = 5;
  list.edges = {{0, 1}};
  Graph g = BuildGraph(list);
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_components, 4);
  EXPECT_EQ(s.largest_component, 2);
}

TEST(StatsTest, SequentialComponentsLabelsBySmallestId) {
  EdgeList list;
  list.num_nodes = 6;
  list.edges = {{3, 4}, {1, 2}};
  Graph g = BuildGraph(list);
  std::vector<NodeId> labels = SequentialComponents(g);
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[2], 1u);
  EXPECT_EQ(labels[3], 3u);
  EXPECT_EQ(labels[4], 3u);
  EXPECT_EQ(labels[5], 5u);
}

TEST(StatsTest, ComponentSizesSortedDescending) {
  std::vector<NodeId> labels = {0, 0, 0, 3, 3, 5};
  std::vector<int64_t> sizes = ComponentSizes(labels);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 3);
  EXPECT_EQ(sizes[1], 2);
  EXPECT_EQ(sizes[2], 1);
}

TEST(StatsTest, SamePartitionIgnoresLabelNames) {
  std::vector<NodeId> a = {0, 0, 2, 2};
  std::vector<NodeId> b = {7, 7, 9, 9};
  std::vector<NodeId> c = {7, 7, 9, 7};
  EXPECT_TRUE(SamePartition(a, b));
  EXPECT_FALSE(SamePartition(a, c));
  EXPECT_FALSE(SamePartition(a, {0, 0, 2}));
}

TEST(StatsTest, SamePartitionCatchesMergedClasses) {
  // b maps two distinct classes of a onto one label.
  std::vector<NodeId> a = {0, 1};
  std::vector<NodeId> b = {5, 5};
  EXPECT_FALSE(SamePartition(a, b));
  EXPECT_FALSE(SamePartition(b, a));
}

TEST(StatsTest, RmatStatsSane) {
  Graph g = BuildGraph(GenerateRmat(10, 8000, 3));
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 1024);
  EXPECT_GT(s.num_components, 0);
  EXPECT_GE(s.largest_component, s.num_nodes / 2);
  EXPECT_GT(s.diameter_lower_bound, 1);
  const std::string str = s.ToString();
  EXPECT_NE(str.find("n=1024"), std::string::npos);
}

}  // namespace
}  // namespace ampc::graph
