// Tests for the preemption model: closed forms, the Monte-Carlo
// cross-check, the cluster round log it consumes, and the fault-tolerance
// ordering the paper's Section 5.7 positioning relies on.
#include "sim/faults.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/mis.h"
#include "graph/generators.h"
#include "sim/cluster.h"

namespace ampc::sim {
namespace {

TEST(FaultsTest, ZeroRateIsPlainSum) {
  const std::vector<double> rounds = {1.0, 2.5, 0.5};
  PreemptionModel off;
  off.machines = 10;
  EXPECT_DOUBLE_EQ(ExpectedCompletionSeconds(
                       rounds, off, RecoveryDiscipline::kFaultTolerant),
                   4.0);
  EXPECT_DOUBLE_EQ(
      ExpectedCompletionSeconds(rounds, off, RecoveryDiscipline::kInMemory),
      4.0);
}

TEST(FaultsTest, SingleRoundClosedForm) {
  // One round of length t: both disciplines give (e^{Lt} - 1) / L.
  const std::vector<double> rounds = {2.0};
  PreemptionModel model;
  model.rate_per_machine_sec = 0.05;
  model.machines = 4;
  const double lambda = 0.05 * 4;
  const double expected = std::expm1(lambda * 2.0) / lambda;
  EXPECT_NEAR(ExpectedCompletionSeconds(rounds, model,
                                        RecoveryDiscipline::kFaultTolerant),
              expected, 1e-12);
  EXPECT_NEAR(ExpectedCompletionSeconds(rounds, model,
                                        RecoveryDiscipline::kInMemory),
              expected, 1e-12);
}

TEST(FaultsTest, FaultToleranceNeverLosesOnMultiRoundJobs) {
  // Splitting a job into rounds strictly helps under restarts (convexity
  // of e^x): FT expected time < in-memory expected time.
  const std::vector<double> rounds = {1.0, 1.0, 1.0, 1.0};
  for (const double rate : {0.01, 0.1, 0.5}) {
    PreemptionModel model;
    model.rate_per_machine_sec = rate;
    model.machines = 8;
    const double ft = ExpectedCompletionSeconds(
        rounds, model, RecoveryDiscipline::kFaultTolerant);
    const double restart = ExpectedCompletionSeconds(
        rounds, model, RecoveryDiscipline::kInMemory);
    EXPECT_LT(ft, restart) << "rate " << rate;
    // And both upper-bound the fault-free runtime.
    EXPECT_GT(ft, 4.0);
  }
}

TEST(FaultsTest, FewerLongerRoundsHurtUnderFaultTolerance) {
  // The same total work in one long round costs more than in ten short
  // ones — the reason shuffling often beats monolithic rounds in shared
  // clusters.
  PreemptionModel model;
  model.rate_per_machine_sec = 0.02;
  model.machines = 10;
  const std::vector<double> monolithic = {10.0};
  const std::vector<double> split(10, 1.0);
  EXPECT_GT(ExpectedCompletionSeconds(monolithic, model,
                                      RecoveryDiscipline::kFaultTolerant),
            ExpectedCompletionSeconds(split, model,
                                      RecoveryDiscipline::kFaultTolerant));
}

TEST(FaultsTest, MonteCarloAgreesWithAnalyticModel) {
  const std::vector<double> rounds = {0.4, 1.2, 0.8};
  PreemptionModel model;
  model.rate_per_machine_sec = 0.05;
  model.machines = 6;
  for (const auto discipline : {RecoveryDiscipline::kFaultTolerant,
                                RecoveryDiscipline::kInMemory}) {
    const double analytic =
        ExpectedCompletionSeconds(rounds, model, discipline);
    const PreemptionTrialStats stats =
        SimulatePreemptions(rounds, model, discipline, 20000, 11);
    EXPECT_NEAR(stats.mean_seconds, analytic, 0.05 * analytic);
    EXPECT_GE(stats.max_seconds, stats.mean_seconds);
  }
}

TEST(FaultsTest, MonteCarloZeroRateIsDeterministic) {
  const std::vector<double> rounds = {1.0, 2.0};
  PreemptionModel off;
  const PreemptionTrialStats stats = SimulatePreemptions(
      rounds, off, RecoveryDiscipline::kInMemory, 10, 3);
  EXPECT_DOUBLE_EQ(stats.mean_seconds, 3.0);
  EXPECT_DOUBLE_EQ(stats.mean_preemptions, 0.0);
}

TEST(FaultsTest, UniformPerMachineRatesMatchHomogeneousModel) {
  const std::vector<double> rounds = {0.7, 1.3, 0.2};
  PreemptionModel model;
  model.rate_per_machine_sec = 0.03;
  model.machines = 5;
  const std::vector<double> rates(5, 0.03);
  for (const auto discipline : {RecoveryDiscipline::kFaultTolerant,
                                RecoveryDiscipline::kInMemory}) {
    EXPECT_DOUBLE_EQ(
        ExpectedCompletionSeconds(rounds, rates, discipline),
        ExpectedCompletionSeconds(rounds, model, discipline));
  }
}

TEST(FaultsTest, MemoryPressureRatesPenalizeOnlyOvershoot) {
  PreemptionModel base;
  base.rate_per_machine_sec = 0.01;
  base.machines = 4;
  // Machines at or under the soft limit keep the base rate; the one at
  // 3x the limit is penalized proportionally to its overshoot.
  const std::vector<int64_t> bytes = {500, 1000, 3000, 0};
  const std::vector<double> rates =
      MemoryPressureRates(base, bytes, /*soft_limit_bytes=*/1000,
                          /*overshoot_penalty=*/2.0);
  ASSERT_EQ(rates.size(), 4u);
  EXPECT_DOUBLE_EQ(rates[0], 0.01);
  EXPECT_DOUBLE_EQ(rates[1], 0.01);
  EXPECT_DOUBLE_EQ(rates[2], 0.01 * (1.0 + 2.0 * 2.0));
  EXPECT_DOUBLE_EQ(rates[3], 0.01);
}

TEST(FaultsTest, SkewedShardsRaiseExpectedCompletion) {
  // Same total DHT footprint, same job: concentrating the bytes on one
  // machine pushes it past its memory budget and slows the whole job.
  const std::vector<double> rounds = {1.0, 1.0, 1.0};
  PreemptionModel base;
  base.rate_per_machine_sec = 0.05;
  base.machines = 4;
  const std::vector<int64_t> uniform = {1000, 1000, 1000, 1000};
  const std::vector<int64_t> skewed = {3700, 100, 100, 100};
  const int64_t limit = 1200;
  const double uniform_time = ExpectedCompletionSeconds(
      rounds, MemoryPressureRates(base, uniform, limit),
      RecoveryDiscipline::kFaultTolerant);
  const double skewed_time = ExpectedCompletionSeconds(
      rounds, MemoryPressureRates(base, skewed, limit),
      RecoveryDiscipline::kFaultTolerant);
  EXPECT_GT(skewed_time, uniform_time);
}

TEST(FaultsTest, ClusterExposesPerMachineFootprintForPressure) {
  // End-to-end: run an algorithm, feed the cluster's per-machine KV
  // footprint into the pressure model, and get a usable rate vector.
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(150, 600, 3));
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  Cluster cluster(config);
  core::AmpcMis(cluster, g, 3);
  const std::vector<int64_t>& footprint = cluster.machine_kv_write_bytes();
  ASSERT_EQ(footprint.size(), 4u);
  int64_t total = 0;
  for (const int64_t b : footprint) total += b;
  EXPECT_EQ(total, cluster.metrics().Get("kv_write_bytes"));
  PreemptionModel base;
  base.rate_per_machine_sec = 0.01;
  base.machines = config.num_machines;
  const std::vector<double> rates =
      MemoryPressureRates(base, footprint, /*soft_limit_bytes=*/1);
  const double with_pressure = ExpectedCompletionSeconds(
      cluster.round_log(), rates, RecoveryDiscipline::kFaultTolerant);
  const double without = ExpectedCompletionSeconds(
      cluster.round_log(), base, RecoveryDiscipline::kFaultTolerant);
  EXPECT_GT(with_pressure, without);
}

TEST(FaultsTest, ClusterRoundLogMatchesRoundMetric) {
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(100, 300, 5));
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  Cluster cluster(config);
  core::AmpcMis(cluster, g, 5);
  EXPECT_EQ(static_cast<int64_t>(cluster.round_log().size()),
            cluster.metrics().Get("rounds"));
  double total = 0;
  for (const double r : cluster.round_log()) {
    EXPECT_GT(r, 0.0);
    total += r;
  }
  EXPECT_NEAR(total, cluster.SimSeconds(), 1e-9);
}

TEST(FaultsTest, ReplayWithoutOvershootMatchesBaseRates) {
  // Footprints below the soft limit never elevate the rate, so the
  // replay equals the homogeneous fault-tolerant closed form.
  const std::vector<double> rounds = {1.0, 2.0, 0.5};
  const std::vector<std::vector<int64_t>> bytes = {
      {100, 100}, {200, 50}, {0, 300}};
  PreemptionModel base;
  base.rate_per_machine_sec = 0.02;
  base.machines = 2;
  const double replayed = ReplayMemoryPressureSeconds(
      rounds, bytes, base, /*soft_limit_bytes=*/1'000'000);
  EXPECT_NEAR(replayed,
              ExpectedCompletionSeconds(rounds, base,
                                        RecoveryDiscipline::kFaultTolerant),
              1e-12);
}

TEST(FaultsTest, ReplayChargesPressureOnlyToLaterRounds) {
  // Machine 0 blows past the limit in round 2. The final-footprint
  // judgment (MemoryPressureRates on the cumulative bytes) taxes every
  // round including the early ones; the replay taxes only rounds 2+ and
  // must land strictly between the base model and the final-footprint
  // model.
  const std::vector<double> rounds = {5.0, 5.0, 5.0, 5.0};
  const int64_t limit = 1000;
  const std::vector<std::vector<int64_t>> bytes = {
      {100, 100}, {100, 100}, {5000, 100}, {0, 0}};
  PreemptionModel base;
  base.rate_per_machine_sec = 0.02;
  base.machines = 2;
  const double replayed =
      ReplayMemoryPressureSeconds(rounds, bytes, base, limit);
  const double base_only = ExpectedCompletionSeconds(
      rounds, base, RecoveryDiscipline::kFaultTolerant);
  std::vector<int64_t> final_footprint = {5200, 300};
  const double final_judged = ExpectedCompletionSeconds(
      rounds, MemoryPressureRates(base, final_footprint, limit),
      RecoveryDiscipline::kFaultTolerant);
  EXPECT_GT(replayed, base_only);
  EXPECT_LT(replayed, final_judged);
}

TEST(FaultsTest, ClusterFootprintHistoryDrivesReplay) {
  // End-to-end: the cluster's per-round footprint log feeds the replay
  // directly, and a tight memory budget makes the replayed completion
  // strictly worse than the pressure-free one.
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(150, 600, 3));
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  Cluster cluster(config);
  core::AmpcMis(cluster, g, 3);
  const auto history = cluster.RoundKvWriteBytes();
  ASSERT_EQ(history.size(), cluster.round_log().size());
  // The history's column sums reproduce the cumulative footprint.
  std::vector<int64_t> summed(config.num_machines, 0);
  for (const auto& round : history) {
    for (int m = 0; m < config.num_machines; ++m) summed[m] += round[m];
  }
  EXPECT_EQ(summed, cluster.machine_kv_write_bytes());
  PreemptionModel base;
  base.rate_per_machine_sec = 0.01;
  base.machines = config.num_machines;
  const double replayed = ReplayMemoryPressureSeconds(
      cluster.round_log(), history, base, /*soft_limit_bytes=*/1);
  const double base_only = ExpectedCompletionSeconds(
      cluster.round_log(), base, RecoveryDiscipline::kFaultTolerant);
  EXPECT_GT(replayed, base_only);
}

TEST(FaultsTest, EndToEndAmpcJobDegradesGracefully) {
  // An AMPC MIS run (few short rounds) under increasing preemption rates:
  // expected completion grows smoothly, far below in-memory restarts.
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(200, 800, 13));
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  Cluster cluster(config);
  core::AmpcMis(cluster, g, 13);

  PreemptionModel model;
  model.machines = config.num_machines;
  double previous = cluster.SimSeconds();
  for (const double rate : {0.001, 0.01, 0.1}) {
    model.rate_per_machine_sec = rate;
    const double ft = ExpectedCompletionSeconds(
        cluster.round_log(), model, RecoveryDiscipline::kFaultTolerant);
    EXPECT_GE(ft, previous);
    EXPECT_LE(ft, ExpectedCompletionSeconds(cluster.round_log(), model,
                                            RecoveryDiscipline::kInMemory));
    previous = ft;
  }
}

}  // namespace
}  // namespace ampc::sim
