// Tests for the preemption model: closed forms, the Monte-Carlo
// cross-check, the cluster round log it consumes, and the fault-tolerance
// ordering the paper's Section 5.7 positioning relies on.
#include "sim/faults.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/mis.h"
#include "graph/generators.h"
#include "sim/cluster.h"

namespace ampc::sim {
namespace {

TEST(FaultsTest, ZeroRateIsPlainSum) {
  const std::vector<double> rounds = {1.0, 2.5, 0.5};
  PreemptionModel off;
  off.machines = 10;
  EXPECT_DOUBLE_EQ(ExpectedCompletionSeconds(
                       rounds, off, RecoveryDiscipline::kFaultTolerant),
                   4.0);
  EXPECT_DOUBLE_EQ(
      ExpectedCompletionSeconds(rounds, off, RecoveryDiscipline::kInMemory),
      4.0);
}

TEST(FaultsTest, SingleRoundClosedForm) {
  // One round of length t: both disciplines give (e^{Lt} - 1) / L.
  const std::vector<double> rounds = {2.0};
  PreemptionModel model;
  model.rate_per_machine_sec = 0.05;
  model.machines = 4;
  const double lambda = 0.05 * 4;
  const double expected = std::expm1(lambda * 2.0) / lambda;
  EXPECT_NEAR(ExpectedCompletionSeconds(rounds, model,
                                        RecoveryDiscipline::kFaultTolerant),
              expected, 1e-12);
  EXPECT_NEAR(ExpectedCompletionSeconds(rounds, model,
                                        RecoveryDiscipline::kInMemory),
              expected, 1e-12);
}

TEST(FaultsTest, FaultToleranceNeverLosesOnMultiRoundJobs) {
  // Splitting a job into rounds strictly helps under restarts (convexity
  // of e^x): FT expected time < in-memory expected time.
  const std::vector<double> rounds = {1.0, 1.0, 1.0, 1.0};
  for (const double rate : {0.01, 0.1, 0.5}) {
    PreemptionModel model;
    model.rate_per_machine_sec = rate;
    model.machines = 8;
    const double ft = ExpectedCompletionSeconds(
        rounds, model, RecoveryDiscipline::kFaultTolerant);
    const double restart = ExpectedCompletionSeconds(
        rounds, model, RecoveryDiscipline::kInMemory);
    EXPECT_LT(ft, restart) << "rate " << rate;
    // And both upper-bound the fault-free runtime.
    EXPECT_GT(ft, 4.0);
  }
}

TEST(FaultsTest, FewerLongerRoundsHurtUnderFaultTolerance) {
  // The same total work in one long round costs more than in ten short
  // ones — the reason shuffling often beats monolithic rounds in shared
  // clusters.
  PreemptionModel model;
  model.rate_per_machine_sec = 0.02;
  model.machines = 10;
  const std::vector<double> monolithic = {10.0};
  const std::vector<double> split(10, 1.0);
  EXPECT_GT(ExpectedCompletionSeconds(monolithic, model,
                                      RecoveryDiscipline::kFaultTolerant),
            ExpectedCompletionSeconds(split, model,
                                      RecoveryDiscipline::kFaultTolerant));
}

TEST(FaultsTest, MonteCarloAgreesWithAnalyticModel) {
  const std::vector<double> rounds = {0.4, 1.2, 0.8};
  PreemptionModel model;
  model.rate_per_machine_sec = 0.05;
  model.machines = 6;
  for (const auto discipline : {RecoveryDiscipline::kFaultTolerant,
                                RecoveryDiscipline::kInMemory}) {
    const double analytic =
        ExpectedCompletionSeconds(rounds, model, discipline);
    const PreemptionTrialStats stats =
        SimulatePreemptions(rounds, model, discipline, 20000, 11);
    EXPECT_NEAR(stats.mean_seconds, analytic, 0.05 * analytic);
    EXPECT_GE(stats.max_seconds, stats.mean_seconds);
  }
}

TEST(FaultsTest, MonteCarloZeroRateIsDeterministic) {
  const std::vector<double> rounds = {1.0, 2.0};
  PreemptionModel off;
  const PreemptionTrialStats stats = SimulatePreemptions(
      rounds, off, RecoveryDiscipline::kInMemory, 10, 3);
  EXPECT_DOUBLE_EQ(stats.mean_seconds, 3.0);
  EXPECT_DOUBLE_EQ(stats.mean_preemptions, 0.0);
}

TEST(FaultsTest, UniformPerMachineRatesMatchHomogeneousModel) {
  const std::vector<double> rounds = {0.7, 1.3, 0.2};
  PreemptionModel model;
  model.rate_per_machine_sec = 0.03;
  model.machines = 5;
  const std::vector<double> rates(5, 0.03);
  for (const auto discipline : {RecoveryDiscipline::kFaultTolerant,
                                RecoveryDiscipline::kInMemory}) {
    EXPECT_DOUBLE_EQ(
        ExpectedCompletionSeconds(rounds, rates, discipline),
        ExpectedCompletionSeconds(rounds, model, discipline));
  }
}

TEST(FaultsTest, MemoryPressureRatesPenalizeOnlyOvershoot) {
  PreemptionModel base;
  base.rate_per_machine_sec = 0.01;
  base.machines = 4;
  // Machines at or under the soft limit keep the base rate; the one at
  // 3x the limit is penalized proportionally to its overshoot.
  const std::vector<int64_t> bytes = {500, 1000, 3000, 0};
  const std::vector<double> rates =
      MemoryPressureRates(base, bytes, /*soft_limit_bytes=*/1000,
                          /*overshoot_penalty=*/2.0);
  ASSERT_EQ(rates.size(), 4u);
  EXPECT_DOUBLE_EQ(rates[0], 0.01);
  EXPECT_DOUBLE_EQ(rates[1], 0.01);
  EXPECT_DOUBLE_EQ(rates[2], 0.01 * (1.0 + 2.0 * 2.0));
  EXPECT_DOUBLE_EQ(rates[3], 0.01);
}

TEST(FaultsTest, SkewedShardsRaiseExpectedCompletion) {
  // Same total DHT footprint, same job: concentrating the bytes on one
  // machine pushes it past its memory budget and slows the whole job.
  const std::vector<double> rounds = {1.0, 1.0, 1.0};
  PreemptionModel base;
  base.rate_per_machine_sec = 0.05;
  base.machines = 4;
  const std::vector<int64_t> uniform = {1000, 1000, 1000, 1000};
  const std::vector<int64_t> skewed = {3700, 100, 100, 100};
  const int64_t limit = 1200;
  const double uniform_time = ExpectedCompletionSeconds(
      rounds, MemoryPressureRates(base, uniform, limit),
      RecoveryDiscipline::kFaultTolerant);
  const double skewed_time = ExpectedCompletionSeconds(
      rounds, MemoryPressureRates(base, skewed, limit),
      RecoveryDiscipline::kFaultTolerant);
  EXPECT_GT(skewed_time, uniform_time);
}

TEST(FaultsTest, ClusterExposesPerMachineFootprintForPressure) {
  // End-to-end: run an algorithm, feed the cluster's per-machine KV
  // footprint into the pressure model, and get a usable rate vector.
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(150, 600, 3));
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  Cluster cluster(config);
  core::AmpcMis(cluster, g, 3);
  const std::vector<int64_t>& footprint = cluster.machine_kv_write_bytes();
  ASSERT_EQ(footprint.size(), 4u);
  int64_t total = 0;
  for (const int64_t b : footprint) total += b;
  EXPECT_EQ(total, cluster.metrics().Get("kv_write_bytes"));
  PreemptionModel base;
  base.rate_per_machine_sec = 0.01;
  base.machines = config.num_machines;
  const std::vector<double> rates =
      MemoryPressureRates(base, footprint, /*soft_limit_bytes=*/1);
  const double with_pressure = ExpectedCompletionSeconds(
      cluster.round_log(), rates, RecoveryDiscipline::kFaultTolerant);
  const double without = ExpectedCompletionSeconds(
      cluster.round_log(), base, RecoveryDiscipline::kFaultTolerant);
  EXPECT_GT(with_pressure, without);
}

TEST(FaultsTest, ClusterRoundLogMatchesRoundMetric) {
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(100, 300, 5));
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  Cluster cluster(config);
  core::AmpcMis(cluster, g, 5);
  EXPECT_EQ(static_cast<int64_t>(cluster.round_log().size()),
            cluster.metrics().Get("rounds"));
  double total = 0;
  for (const double r : cluster.round_log()) {
    EXPECT_GT(r, 0.0);
    total += r;
  }
  EXPECT_NEAR(total, cluster.SimSeconds(), 1e-9);
}

TEST(FaultsTest, ReplayWithoutOvershootMatchesBaseRates) {
  // Footprints below the soft limit never elevate the rate, so the
  // replay equals the homogeneous fault-tolerant closed form.
  const std::vector<double> rounds = {1.0, 2.0, 0.5};
  const std::vector<std::vector<int64_t>> bytes = {
      {100, 100}, {200, 50}, {0, 300}};
  PreemptionModel base;
  base.rate_per_machine_sec = 0.02;
  base.machines = 2;
  const double replayed = ReplayMemoryPressureSeconds(
      rounds, bytes, base, /*soft_limit_bytes=*/1'000'000);
  EXPECT_NEAR(replayed,
              ExpectedCompletionSeconds(rounds, base,
                                        RecoveryDiscipline::kFaultTolerant),
              1e-12);
}

TEST(FaultsTest, ReplayChargesPressureOnlyToLaterRounds) {
  // Machine 0 blows past the limit in round 2. The final-footprint
  // judgment (MemoryPressureRates on the cumulative bytes) taxes every
  // round including the early ones; the replay taxes only rounds 2+ and
  // must land strictly between the base model and the final-footprint
  // model.
  const std::vector<double> rounds = {5.0, 5.0, 5.0, 5.0};
  const int64_t limit = 1000;
  const std::vector<std::vector<int64_t>> bytes = {
      {100, 100}, {100, 100}, {5000, 100}, {0, 0}};
  PreemptionModel base;
  base.rate_per_machine_sec = 0.02;
  base.machines = 2;
  const double replayed =
      ReplayMemoryPressureSeconds(rounds, bytes, base, limit);
  const double base_only = ExpectedCompletionSeconds(
      rounds, base, RecoveryDiscipline::kFaultTolerant);
  std::vector<int64_t> final_footprint = {5200, 300};
  const double final_judged = ExpectedCompletionSeconds(
      rounds, MemoryPressureRates(base, final_footprint, limit),
      RecoveryDiscipline::kFaultTolerant);
  EXPECT_GT(replayed, base_only);
  EXPECT_LT(replayed, final_judged);
}

TEST(FaultsTest, ClusterFootprintHistoryDrivesReplay) {
  // End-to-end: the cluster's per-round footprint log feeds the replay
  // directly, and a tight memory budget makes the replayed completion
  // strictly worse than the pressure-free one.
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(150, 600, 3));
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  Cluster cluster(config);
  core::AmpcMis(cluster, g, 3);
  const auto history = cluster.RoundKvWriteBytes();
  ASSERT_EQ(history.size(), cluster.round_log().size());
  // The history's column sums reproduce the cumulative footprint.
  std::vector<int64_t> summed(config.num_machines, 0);
  for (const auto& round : history) {
    for (int m = 0; m < config.num_machines; ++m) summed[m] += round[m];
  }
  EXPECT_EQ(summed, cluster.machine_kv_write_bytes());
  PreemptionModel base;
  base.rate_per_machine_sec = 0.01;
  base.machines = config.num_machines;
  const double replayed = ReplayMemoryPressureSeconds(
      cluster.round_log(), history, base, /*soft_limit_bytes=*/1);
  const double base_only = ExpectedCompletionSeconds(
      cluster.round_log(), base, RecoveryDiscipline::kFaultTolerant);
  EXPECT_GT(replayed, base_only);
}

TEST(FaultsTest, HeterogeneousMonteCarloAgreesWithAnalyticModel) {
  // The per-machine-rate simulator validates the per-machine-rate
  // closed form the same way the homogeneous pair validates each other
  // (Poisson superposition: only the summed rate matters).
  const std::vector<double> rounds = {0.4, 1.2, 0.8};
  const std::vector<double> rates = {0.02, 0.0, 0.15, 0.08, 0.05, 0.0};
  for (const auto discipline : {RecoveryDiscipline::kFaultTolerant,
                                RecoveryDiscipline::kInMemory}) {
    const double analytic =
        ExpectedCompletionSeconds(rounds, rates, discipline);
    const PreemptionTrialStats stats =
        SimulatePreemptions(rounds, rates, discipline, 20000, 19);
    EXPECT_NEAR(stats.mean_seconds, analytic, 0.05 * analytic);
    EXPECT_GE(stats.max_seconds, stats.mean_seconds);
  }
}

TEST(FaultsTest, HeterogeneousMonteCarloMatchesHomogeneousAtUniformRates) {
  // Identical trial seeds + identical summed rate => bit-identical
  // trials: the two overloads share one simulation core.
  const std::vector<double> rounds = {0.5, 1.5};
  PreemptionModel model;
  model.rate_per_machine_sec = 0.04;
  model.machines = 5;
  const std::vector<double> rates(5, 0.04);
  const PreemptionTrialStats a = SimulatePreemptions(
      rounds, model, RecoveryDiscipline::kFaultTolerant, 500, 23);
  const PreemptionTrialStats b = SimulatePreemptions(
      rounds, rates, RecoveryDiscipline::kFaultTolerant, 500, 23);
  EXPECT_DOUBLE_EQ(a.mean_seconds, b.mean_seconds);
  EXPECT_DOUBLE_EQ(a.max_seconds, b.max_seconds);
  EXPECT_DOUBLE_EQ(a.mean_preemptions, b.mean_preemptions);
}

// --- FaultInjector: the injected (as opposed to analytic) model -----

TEST(FaultsTest, InjectorIsDeterministicInSeed) {
  FaultInjector a(/*rate=*/0.5, /*machines=*/4, /*seed=*/11);
  FaultInjector b(/*rate=*/0.5, /*machines=*/4, /*seed=*/11);
  const std::vector<FaultEvent> ka = a.AdvanceTo(20.0);
  const std::vector<FaultEvent> kb = b.AdvanceTo(20.0);
  ASSERT_EQ(ka.size(), kb.size());
  EXPECT_FALSE(ka.empty());
  for (size_t i = 0; i < ka.size(); ++i) {
    EXPECT_DOUBLE_EQ(ka[i].time, kb[i].time);
    EXPECT_EQ(ka[i].machine, kb[i].machine);
  }
  // A different seed yields a different schedule.
  FaultInjector c(0.5, 4, /*seed=*/12);
  const std::vector<FaultEvent> kc = c.AdvanceTo(20.0);
  bool same = kc.size() == ka.size();
  for (size_t i = 0; same && i < ka.size(); ++i) {
    same = kc[i].time == ka[i].time && kc[i].machine == ka[i].machine;
  }
  EXPECT_FALSE(same);
}

TEST(FaultsTest, InjectorWindowingDoesNotChangeTheSchedule) {
  // Harvesting in many small windows is the same schedule as one big
  // window: arrivals are a property of the streams, not of when the
  // cluster looks.
  FaultInjector whole(0.3, 3, 7);
  const std::vector<FaultEvent> all = whole.AdvanceTo(30.0);
  FaultInjector windowed(0.3, 3, 7);
  std::vector<FaultEvent> stitched;
  for (double t = 1.0; t <= 30.0; t += 1.0) {
    const std::vector<FaultEvent> window = windowed.AdvanceTo(t);
    stitched.insert(stitched.end(), window.begin(), window.end());
  }
  ASSERT_EQ(stitched.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_DOUBLE_EQ(stitched[i].time, all[i].time);
    EXPECT_EQ(stitched[i].machine, all[i].machine);
  }
}

TEST(FaultsTest, InjectorEventsAreOrderedAndInWindow) {
  FaultInjector injector(0.8, 5, 3);
  double last = 0.0;
  for (const double t : {2.0, 5.0, 9.0}) {
    const double lo = injector.now();
    for (const FaultEvent& e : injector.AdvanceTo(t)) {
      EXPECT_GT(e.time, lo);
      EXPECT_LE(e.time, t);
      EXPECT_GE(e.time, last);
      EXPECT_GE(e.machine, 0);
      EXPECT_LT(e.machine, 5);
      last = e.time;
    }
    EXPECT_DOUBLE_EQ(injector.now(), t);
  }
}

TEST(FaultsTest, InjectorSkipToYieldsNoEventsInSkippedInterval) {
  FaultInjector injector(1.0, 4, 5);
  injector.SkipTo(10.0);
  EXPECT_DOUBLE_EQ(injector.now(), 10.0);
  // Nothing can land inside a skipped interval; later windows still
  // produce kills (arrivals were redrawn from the skip point).
  const std::vector<FaultEvent> later = injector.AdvanceTo(30.0);
  EXPECT_FALSE(later.empty());
  for (const FaultEvent& e : later) EXPECT_GT(e.time, 10.0);
}

TEST(FaultsTest, DisabledInjectorNeverFires) {
  FaultInjector off;
  EXPECT_FALSE(off.enabled());
  EXPECT_TRUE(off.AdvanceTo(1e9).empty());
  FaultInjector zero(0.0, 8, 42);
  EXPECT_FALSE(zero.enabled());
  EXPECT_TRUE(zero.AdvanceTo(1e9).empty());
}

// --- Warnings, fault domains, stragglers ----------------------------

TEST(FaultsTest, WarningsLeadTheirKillsByExactlyTheLead) {
  FaultInjector::Config config;
  config.rate_per_machine_sec = 0.4;
  config.machines = 4;
  config.seed = 11;
  config.warning_lead_sec = 0.25;
  FaultInjector injector(config);
  const std::vector<FaultEvent> events = injector.AdvanceTo(40.0);
  int kills = 0, warnings = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].warning) {
      ++warnings;
      continue;
    }
    ++kills;
    // Every kill was announced by exactly one earlier warning for the
    // same machine, warning_lead seconds ahead (clamped to the window
    // start for arrivals inside the very first lead interval).
    const double expected_warning =
        std::max(0.0, events[i].time - config.warning_lead_sec);
    int announcements = 0;
    for (size_t j = 0; j < i; ++j) {
      if (events[j].warning && events[j].machine == events[i].machine &&
          std::abs(events[j].time - expected_warning) < 1e-9) {
        ++announcements;
      }
    }
    EXPECT_EQ(announcements, 1)
        << "kill of machine " << events[i].machine << " at "
        << events[i].time;
  }
  EXPECT_GT(kills, 0);
  // Warnings can outnumber kills: the last lead interval announces
  // arrivals landing beyond the window.
  EXPECT_GE(warnings, kills);
}

TEST(FaultsTest, WarningWindowingDoesNotChangeTheSchedule) {
  // Warnings, like kills, are a property of the streams: harvesting in
  // many small windows announces each arrival at the same instant as
  // one big window (the clamp can only bite in the window the arrival's
  // lead interval actually starts in).
  FaultInjector::Config config;
  config.rate_per_machine_sec = 0.3;
  config.machines = 3;
  config.seed = 7;
  config.warning_lead_sec = 0.4;
  FaultInjector whole(config);
  const std::vector<FaultEvent> all = whole.AdvanceTo(30.0);
  FaultInjector windowed(config);
  std::vector<FaultEvent> stitched;
  for (double t = 1.0; t <= 30.0; t += 1.0) {
    const std::vector<FaultEvent> window = windowed.AdvanceTo(t);
    stitched.insert(stitched.end(), window.begin(), window.end());
  }
  ASSERT_EQ(stitched.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_NEAR(stitched[i].time, all[i].time, 1e-9);
    EXPECT_EQ(stitched[i].machine, all[i].machine);
    EXPECT_EQ(stitched[i].warning, all[i].warning);
  }
}

TEST(FaultsTest, DomainKillsTakeWholeRacksAtOnce) {
  FaultInjector::Config config;
  config.machines = 10;
  config.machines_per_domain = 4;  // domains {0-3}, {4-7}, {8, 9}
  config.domain_fault_rate_sec = 0.2;
  config.seed = 9;
  FaultInjector injector(config);
  EXPECT_TRUE(injector.enabled());
  const std::vector<FaultEvent> events = injector.AdvanceTo(30.0);
  EXPECT_FALSE(events.empty());
  // Every event belongs to a contiguous group covering its whole
  // domain — one kill per member machine, all at the same instant,
  // including the ragged last domain of two machines.
  for (size_t i = 0; i < events.size();) {
    const FaultEvent& head = events[i];
    EXPECT_FALSE(head.warning);
    ASSERT_GE(head.domain, 0);
    const int lo = head.domain * config.machines_per_domain;
    const int hi = std::min(config.machines, lo + config.machines_per_domain);
    for (int m = lo; m < hi; ++m, ++i) {
      ASSERT_LT(i, events.size());
      EXPECT_EQ(events[i].machine, m);
      EXPECT_EQ(events[i].domain, head.domain);
      EXPECT_DOUBLE_EQ(events[i].time, head.time);
    }
  }
  // Deterministic in the seed, like the per-machine streams.
  FaultInjector twin(config);
  const std::vector<FaultEvent> again = twin.AdvanceTo(30.0);
  ASSERT_EQ(again.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(again[i].time, events[i].time);
    EXPECT_EQ(again[i].machine, events[i].machine);
    EXPECT_EQ(again[i].domain, events[i].domain);
  }
}

TEST(FaultsTest, SkipToCommitsWarnedArrivals) {
  // A warned arrival is committed: skipping the clock past it (drain
  // and recovery intervals are failure-free) must not redraw it — the
  // cluster drained the machine on the warning and would otherwise
  // leave it drained forever, waiting for a kill that never comes.
  FaultInjector::Config config;
  config.rate_per_machine_sec = 0.5;
  config.machines = 3;
  config.seed = 13;
  config.warning_lead_sec = 5.0;
  FaultInjector injector(config);
  // The twin (no lead) shares the per-machine gap streams, so its kill
  // times are the committed arrivals the warned injector must honor.
  FaultInjector::Config bare = config;
  bare.warning_lead_sec = 0.0;
  FaultInjector twin(bare);
  const std::vector<FaultEvent> truth = twin.AdvanceTo(100.0);
  ASSERT_FALSE(truth.empty());

  const std::vector<FaultEvent> early = injector.AdvanceTo(0.1);
  std::vector<int> warned;
  for (const FaultEvent& e : early) {
    ASSERT_TRUE(e.warning);  // lead 5.0 >> window 0.1: no kill yet
    warned.push_back(e.machine);
  }
  ASSERT_FALSE(warned.empty());
  injector.SkipTo(2.0);
  const std::vector<FaultEvent> later = injector.AdvanceTo(100.0);
  for (const int machine : warned) {
    double committed = -1.0;
    for (const FaultEvent& e : truth) {
      if (e.machine == machine) {
        committed = e.time;
        break;
      }
    }
    double landed = -1.0;
    for (const FaultEvent& e : later) {
      if (!e.warning && e.machine == machine) {
        landed = e.time;
        break;
      }
    }
    EXPECT_NEAR(landed, committed, 1e-9) << "machine " << machine;
  }
}

TEST(FaultsTest, StragglerModelIsDeterministicAndRateBounded) {
  StragglerModel model;
  model.slow_rate = 0.25;
  model.seed = 7;
  EXPECT_TRUE(model.enabled());
  const StragglerModel twin = model;
  int slow = 0, total = 0;
  for (int64_t round = 0; round < 64; ++round) {
    for (int machine = 0; machine < 16; ++machine) {
      EXPECT_EQ(model.Slow(round, machine), twin.Slow(round, machine));
      slow += model.Slow(round, machine) ? 1 : 0;
      ++total;
    }
  }
  // A pure hash of (round, machine, seed): some pairs straggle, most
  // don't, and the empirical rate tracks the configured one.
  EXPECT_GT(slow, 0);
  EXPECT_LT(slow, total);
  EXPECT_NEAR(static_cast<double>(slow) / total, 0.25, 0.05);
  StragglerModel off;
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.Slow(3, 2));
}

// --- Replay-vs-restart arithmetic on a known kill schedule ----------
// Cluster::InjectMachineFailure kills a machine at the end of the last
// charged round, so the recovery charge is a closed-form function of
// round_log() the tests can pin exactly.

TEST(FaultsTest, UnprotectedKillReplaysTheWholeJob) {
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 1;
  Cluster cluster(config);  // no replicas, no checkpoints
  cluster.AccountMapRound("a");
  cluster.AccountMapRound("b");
  cluster.AccountShuffle("c", 64 << 20);
  const double before = cluster.SimSeconds();
  cluster.InjectMachineFailure(2);
  // Whole-job restart: every completed round plus the full in-flight
  // round replays — recovery time equals the job so far.
  EXPECT_NEAR(cluster.metrics().GetTime("sim:recovery"), before, 1e-8);
  EXPECT_NEAR(cluster.metrics().GetTime("recovery_replay_seconds"), before,
              1e-8);
  EXPECT_NEAR(cluster.SimSeconds(), 2 * before, 1e-8);
  EXPECT_EQ(cluster.metrics().Get("machines_lost"), 1);
}

TEST(FaultsTest, ReplicatedKillPaysOnlyTransferAndInFlightSlice) {
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 1;
  config.faults.replication = 2;
  Cluster cluster(config);
  cluster.AccountMapRound("a");
  cluster.AccountMapRound("b");
  cluster.AccountShuffle("c", 64 << 20);
  const std::vector<double> rounds = cluster.round_log();
  cluster.InjectMachineFailure(1);
  // No KV bytes resident => no replica stream to pay; the in-flight
  // round replays whole (KV-free rounds have share 1).
  EXPECT_NEAR(cluster.metrics().GetTime("sim:recovery"), rounds.back(),
              1e-8);
  EXPECT_NEAR(cluster.metrics().GetTime("recovery_replay_seconds"),
              rounds.back(), 1e-8);
}

TEST(FaultsTest, CheckpointedKillReplaysOnlySinceTheCheckpoint) {
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 1;
  // A period smaller than any round: a checkpoint lands after every
  // round, so a kill replays only the in-flight round.
  config.faults.checkpoint_period_sec = 1e-9;
  Cluster cluster(config);
  cluster.AccountMapRound("a");
  cluster.AccountMapRound("b");
  cluster.AccountShuffle("c", 64 << 20);
  const std::vector<double> rounds = cluster.round_log();
  const double restart_cost = cluster.SimSeconds();
  cluster.InjectMachineFailure(3);
  const double recovery = cluster.metrics().GetTime("sim:recovery");
  EXPECT_NEAR(recovery, rounds.back(), 1e-8);
  EXPECT_LT(recovery, restart_cost);
}

TEST(FaultsTest, ReplicatedRecoveryChargesTheReplicaStream) {
  // With resident KV bytes, the replica path pays the dead machine's
  // footprint over its NIC plus the in-flight slice.
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  config.faults.replication = 2;
  Cluster cluster(config);
  auto store = cluster.MakeStore<int64_t>(4096);
  cluster.RunKvWritePhase<int64_t>(
      "write", store, 4096, [](int64_t key) { return key * 3; });
  const int machine = 1;
  const int64_t resident = cluster.machine_kv_write_bytes()[machine];
  ASSERT_GT(resident, 0);
  const double last_round = cluster.round_log().back();
  // The write round's in-flight slice is footprint-scaled.
  int64_t hottest = 0;
  const auto& fp = cluster.round_footprints().back();
  for (int m = 0; m < config.num_machines; ++m) {
    hottest = std::max(hottest, fp.kv_read_bytes[m] + fp.kv_write_bytes[m]);
  }
  const double share =
      static_cast<double>(fp.kv_read_bytes[machine] +
                          fp.kv_write_bytes[machine]) /
      static_cast<double>(hottest);
  cluster.InjectMachineFailure(machine);
  const double expected =
      static_cast<double>(resident) / config.network.bytes_per_sec +
      last_round * share;
  EXPECT_NEAR(cluster.metrics().GetTime("sim:recovery"), expected, 1e-8);
  EXPECT_NEAR(cluster.metrics().GetTime("recovery_replay_seconds"),
              last_round * share, 1e-8);
}

TEST(FaultsTest, RecoveryOrderingMatchesTheAnalyticDisciplines) {
  // The injected model reproduces the Section 5.7 ordering the analytic
  // model predicts: replicated < checkpointed < unprotected recovery
  // for the same kill at the end of the same job.
  auto run_and_kill = [](int replication, double period) {
    ClusterConfig config;
    config.num_machines = 4;
    config.threads_per_machine = 2;
    config.faults.replication = replication;
    config.faults.checkpoint_period_sec = period;
    Cluster cluster(config);
    auto store = cluster.MakeStore<int64_t>(4096);
    cluster.RunKvWritePhase<int64_t>(
        "write", store, 4096, [](int64_t key) { return key * 3; });
    for (int r = 0; r < 6; ++r) cluster.AccountMapRound("map");
    cluster.InjectMachineFailure(1);
    return cluster.metrics().GetTime("sim:recovery");
  };
  const double replicated = run_and_kill(2, 0.0);
  const double checkpointed = run_and_kill(1, 0.2);
  const double unprotected = run_and_kill(1, 0.0);
  EXPECT_LT(replicated, checkpointed);
  EXPECT_LT(checkpointed, unprotected);
}

TEST(FaultsTest, EndToEndAmpcJobDegradesGracefully) {
  // An AMPC MIS run (few short rounds) under increasing preemption rates:
  // expected completion grows smoothly, far below in-memory restarts.
  graph::Graph g =
      graph::BuildGraph(graph::GenerateErdosRenyi(200, 800, 13));
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  Cluster cluster(config);
  core::AmpcMis(cluster, g, 13);

  PreemptionModel model;
  model.machines = config.num_machines;
  double previous = cluster.SimSeconds();
  for (const double rate : {0.001, 0.01, 0.1}) {
    model.rate_per_machine_sec = rate;
    const double ft = ExpectedCompletionSeconds(
        cluster.round_log(), model, RecoveryDiscipline::kFaultTolerant);
    EXPECT_GE(ft, previous);
    EXPECT_LE(ft, ExpectedCompletionSeconds(cluster.round_log(), model,
                                            RecoveryDiscipline::kInMemory));
    previous = ft;
  }
}

}  // namespace
}  // namespace ampc::sim
