// Tests for the Section 5.7 random-walk extension: the exact sequential
// oracle, the MPC power-iteration baseline, the AMPC Monte-Carlo
// estimator, and the walk-corpus sampler.
#include "core/pagerank.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/mpc_pagerank.h"
#include "graph/generators.h"
#include "seq/pagerank.h"

namespace ampc {
namespace {

using graph::Graph;
using graph::NodeId;

sim::ClusterConfig SmallConfig() {
  sim::ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  return config;
}

double Sum(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return s;
}

// ---------------------------------------------------------------------------
// Exact oracle.
// ---------------------------------------------------------------------------

TEST(PageRankExactTest, SumsToOneAndConverges) {
  Graph g = graph::BuildGraph(graph::GenerateRmat(9, 2500, 3));
  seq::PageRankResult result = seq::PageRankExact(g);
  EXPECT_NEAR(Sum(result.rank), 1.0, 1e-9);
  EXPECT_LT(result.iterations, 1000);
}

TEST(PageRankExactTest, UniformOnVertexTransitiveGraphs) {
  for (const auto& list :
       {graph::GenerateCycle(12), graph::GenerateComplete(9)}) {
    Graph g = graph::BuildGraph(list);
    seq::PageRankResult result = seq::PageRankExact(g);
    for (const double r : result.rank) {
      EXPECT_NEAR(r, 1.0 / g.num_nodes(), 1e-9);
    }
  }
}

TEST(PageRankExactTest, StarHubDominates) {
  // Star on 1 + k leaves: hub rank has the closed form
  // (1 - d + d) * ... — verify the fixpoint equations directly instead:
  // rank(hub) = (1-d)/n + d * k * rank(leaf),
  // rank(leaf) = (1-d)/n + d * rank(hub) / k.
  const int64_t k = 9;
  Graph g = graph::BuildGraph(graph::GenerateStar(k + 1));
  seq::PageRankResult result = seq::PageRankExact(g);
  const double d = 0.85;
  const double n = static_cast<double>(k + 1);
  const double hub = result.rank[0];
  const double leaf = result.rank[1];
  EXPECT_NEAR(hub, (1 - d) / n + d * k * leaf, 1e-9);
  EXPECT_NEAR(leaf, (1 - d) / n + d * hub / k, 1e-9);
  for (int64_t v = 1; v <= k; ++v) EXPECT_NEAR(result.rank[v], leaf, 1e-12);
}

TEST(PageRankExactTest, IsolatedVerticesKeepTeleportMass) {
  graph::EdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1}};  // 2 and 3 isolated
  Graph g = graph::BuildGraph(list);
  seq::PageRankResult result = seq::PageRankExact(g);
  EXPECT_NEAR(Sum(result.rank), 1.0, 1e-9);
  // Isolated vertices receive only the uniform terms and are equal.
  EXPECT_NEAR(result.rank[2], result.rank[3], 1e-12);
  EXPECT_GT(result.rank[0], result.rank[2]);
}

TEST(PageRankExactTest, L1DistanceHelper) {
  EXPECT_EQ(seq::L1Distance({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_NEAR(seq::L1Distance({1.0, 0.0}, {0.0, 1.0}), 2.0, 1e-12);
}

// ---------------------------------------------------------------------------
// MPC power iteration.
// ---------------------------------------------------------------------------

TEST(MpcPageRankTest, MatchesExactOracle) {
  Graph g = graph::BuildGraph(graph::GenerateErdosRenyi(150, 500, 8));
  sim::Cluster cluster(SmallConfig());
  baselines::MpcPageRankResult mpc = baselines::MpcPageRank(cluster, g);
  seq::PageRankResult exact = seq::PageRankExact(g);
  EXPECT_LT(seq::L1Distance(mpc.rank, exact.rank), 1e-8);
  EXPECT_EQ(mpc.iterations, exact.iterations);
}

TEST(MpcPageRankTest, OneShufflePerIteration) {
  Graph g = graph::BuildGraph(graph::GenerateErdosRenyi(100, 350, 4));
  sim::Cluster cluster(SmallConfig());
  baselines::MpcPageRankResult mpc = baselines::MpcPageRank(cluster, g);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), mpc.iterations);
}

// ---------------------------------------------------------------------------
// AMPC Monte-Carlo estimator.
// ---------------------------------------------------------------------------

TEST(AmpcPageRankTest, EstimateConvergesToExact) {
  Graph g = graph::BuildGraph(graph::GenerateErdosRenyi(64, 200, 12));
  seq::PageRankResult exact = seq::PageRankExact(g);

  sim::Cluster cluster(SmallConfig());
  core::PageRankMcOptions options;
  options.walks_per_node = 4000;
  core::PageRankMcResult mc = core::AmpcMonteCarloPageRank(cluster, g,
                                                           options);
  EXPECT_NEAR(Sum(mc.rank), 1.0, 1e-9);
  EXPECT_LT(seq::L1Distance(mc.rank, exact.rank), 0.05);
  // Expected steps: n * R * d / (1 - d) transitions.
  const double expected_steps = 64.0 * 4000 * 0.85 / 0.15;
  EXPECT_NEAR(static_cast<double>(mc.total_steps), expected_steps,
              0.1 * expected_steps);
}

TEST(AmpcPageRankTest, MoreWalksReduceError) {
  Graph g = graph::BuildGraph(graph::GenerateRmat(7, 500, 5));
  seq::PageRankResult exact = seq::PageRankExact(g);
  double previous_error = 1e9;
  for (const int walks : {20, 2000}) {
    sim::Cluster cluster(SmallConfig());
    core::PageRankMcOptions options;
    options.walks_per_node = walks;
    core::PageRankMcResult mc =
        core::AmpcMonteCarloPageRank(cluster, g, options);
    const double error = seq::L1Distance(mc.rank, exact.rank);
    EXPECT_LT(error, previous_error);
    previous_error = error;
  }
}

TEST(AmpcPageRankTest, UsesOneShuffleAndIsSchedulingDeterministic) {
  Graph g = graph::BuildGraph(graph::GenerateErdosRenyi(80, 250, 21));
  core::PageRankMcOptions options;
  options.walks_per_node = 50;

  sim::Cluster a(SmallConfig());
  core::PageRankMcResult first = core::AmpcMonteCarloPageRank(a, g, options);
  EXPECT_EQ(a.metrics().Get("shuffles"), 1);

  // A different machine layout must not change the estimate: walk
  // randomness is keyed by (seed, vertex, walk), not by placement.
  sim::ClusterConfig other = SmallConfig();
  other.num_machines = 7;
  other.threads_per_machine = 3;
  sim::Cluster b(other);
  core::PageRankMcResult second = core::AmpcMonteCarloPageRank(b, g, options);
  EXPECT_EQ(first.rank, second.rank);
  EXPECT_EQ(first.total_steps, second.total_steps);
}

TEST(AmpcPageRankTest, HandlesDanglingVertices) {
  graph::EdgeList list;
  list.num_nodes = 5;
  list.edges = {{0, 1}, {1, 2}};  // 3 and 4 isolated
  Graph g = graph::BuildGraph(list);
  seq::PageRankResult exact = seq::PageRankExact(g);
  sim::Cluster cluster(SmallConfig());
  core::PageRankMcOptions options;
  options.walks_per_node = 20000;
  core::PageRankMcResult mc =
      core::AmpcMonteCarloPageRank(cluster, g, options);
  EXPECT_LT(seq::L1Distance(mc.rank, exact.rank), 0.03);
}

// ---------------------------------------------------------------------------
// Personalized PageRank.
// ---------------------------------------------------------------------------

TEST(PersonalizedPageRankTest, ExactOracleConcentratesAroundSource) {
  Graph g = graph::BuildGraph(graph::GenerateErdosRenyi(60, 180, 31));
  const NodeId source = 5;
  seq::PageRankResult ppr = seq::PersonalizedPageRankExact(g, source);
  EXPECT_NEAR(Sum(ppr.rank), 1.0, 1e-9);
  // The source holds more mass than any global-PageRank vertex would.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v != source) {
      EXPECT_GT(ppr.rank[source], ppr.rank[v] * 0.999);
    }
  }
}

TEST(PersonalizedPageRankTest, McEstimateMatchesExact) {
  Graph g = graph::BuildGraph(graph::GenerateRmat(6, 300, 9));
  const NodeId source = 3;
  seq::PageRankResult exact = seq::PersonalizedPageRankExact(g, source);
  sim::Cluster cluster(SmallConfig());
  core::PageRankMcOptions options;
  options.walks_per_node = 3000;
  core::PageRankMcResult mc =
      core::AmpcPersonalizedPageRank(cluster, g, source, options);
  EXPECT_LT(seq::L1Distance(mc.rank, exact.rank), 0.05);
  EXPECT_EQ(cluster.metrics().Get("shuffles"), 1);
}

TEST(PersonalizedPageRankTest, DistinguishesNeighborhoods) {
  // Two triangles joined by one bridge edge: personalization from vertex
  // 0 keeps most mass on its own triangle.
  graph::EdgeList list;
  list.num_nodes = 6;
  list.edges = {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}};
  Graph g = graph::BuildGraph(list);
  sim::Cluster cluster(SmallConfig());
  core::PageRankMcOptions options;
  options.walks_per_node = 2000;
  core::PageRankMcResult mc =
      core::AmpcPersonalizedPageRank(cluster, g, 0, options);
  const double own = mc.rank[0] + mc.rank[1] + mc.rank[2];
  const double other = mc.rank[3] + mc.rank[4] + mc.rank[5];
  EXPECT_GT(own, 2 * other);
}

TEST(PersonalizedPageRankTest, DanglingWalkReturnsToSource) {
  // Source connected to a pendant, plus isolated vertices: mass must
  // stay on {source, pendant} and sum to 1.
  graph::EdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1}};
  Graph g = graph::BuildGraph(list);
  seq::PageRankResult exact = seq::PersonalizedPageRankExact(g, 0);
  sim::Cluster cluster(SmallConfig());
  core::PageRankMcOptions options;
  options.walks_per_node = 4000;
  core::PageRankMcResult mc =
      core::AmpcPersonalizedPageRank(cluster, g, 0, options);
  EXPECT_LT(seq::L1Distance(mc.rank, exact.rank), 0.02);
  EXPECT_NEAR(mc.rank[2] + mc.rank[3], 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Walk corpus sampler.
// ---------------------------------------------------------------------------

TEST(SampleWalksTest, WalksAreValidPaths) {
  Graph g = graph::BuildGraph(graph::GenerateErdosRenyi(60, 180, 2));
  sim::Cluster cluster(SmallConfig());
  core::WalkOptions options;
  options.length = 6;
  options.walks_per_node = 3;
  auto walks = core::AmpcSampleWalks(cluster, g, options);
  ASSERT_EQ(walks.size(), 60u * 3u);
  for (size_t i = 0; i < walks.size(); ++i) {
    const auto& walk = walks[i];
    ASSERT_GE(walk.size(), 1u);
    EXPECT_LE(walk.size(), 7u);
    EXPECT_EQ(walk[0], static_cast<NodeId>(i / 3));
    for (size_t s = 0; s + 1 < walk.size(); ++s) {
      const auto nbrs = g.neighbors(walk[s]);
      EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), walk[s + 1]) !=
                  nbrs.end())
          << "walk step " << s << " is not an edge";
    }
  }
}

TEST(SampleWalksTest, IsolatedStartStaysPut) {
  graph::EdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 1}};
  Graph g = graph::BuildGraph(list);
  sim::Cluster cluster(SmallConfig());
  core::WalkOptions options;
  options.length = 5;
  auto walks = core::AmpcSampleWalks(cluster, g, options);
  EXPECT_EQ(walks[2], std::vector<NodeId>{2});
  // Connected vertices bounce along the single edge for the full length.
  EXPECT_EQ(walks[0].size(), 6u);
}

TEST(SampleWalksTest, SeedChangesCorpus) {
  Graph g = graph::BuildGraph(graph::GenerateComplete(10));
  core::WalkOptions options;
  options.length = 4;
  sim::Cluster a(SmallConfig());
  auto first = core::AmpcSampleWalks(a, g, options);
  options.seed = 43;
  sim::Cluster b(SmallConfig());
  auto second = core::AmpcSampleWalks(b, g, options);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace ampc
