#include "kv/store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "kv/byte_size.h"
#include "kv/network_model.h"
#include "kv/query_cache.h"
#include "kv/sharded_store.h"

namespace ampc::kv {
namespace {

TEST(ByteSizeTest, ScalarsAndVectors) {
  EXPECT_EQ(KvByteSize(uint32_t{5}), 4);
  EXPECT_EQ(KvByteSize(double{1.0}), 8);
  std::vector<uint32_t> v = {1, 2, 3};
  EXPECT_EQ(KvByteSize(v), 8 + 12);  // length word + payload
  std::pair<uint64_t, uint32_t> p{1, 2};
  EXPECT_EQ(KvByteSize(p), 12);
}

TEST(StoreTest, PutThenLookup) {
  Store<int> store(10);
  EXPECT_EQ(store.Put(3, 42), kKeyBytes + 4);
  const int* v = store.Lookup(3);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 42);
}

TEST(StoreTest, MissingKeyReturnsNull) {
  Store<int> store(10);
  EXPECT_EQ(store.Lookup(3), nullptr);
  EXPECT_EQ(store.Lookup(999), nullptr);  // out of capacity: absent
  EXPECT_FALSE(store.Contains(3));
  EXPECT_EQ(store.RecordBytes(3), 0);
}

TEST(StoreTest, VectorValuesByteAccounting) {
  Store<std::vector<uint32_t>> store(4);
  std::vector<uint32_t> value = {7, 8, 9};
  const int64_t bytes = store.Put(0, value);
  EXPECT_EQ(bytes, kKeyBytes + 8 + 12);
  EXPECT_EQ(store.RecordBytes(0), bytes);
}

TEST(StoreTest, SizeCountsPresentKeys) {
  Store<int> store(100);
  store.Put(1, 10);
  store.Put(50, 20);
  EXPECT_EQ(store.size(), 2);
  EXPECT_EQ(store.capacity(), 100);
}

TEST(StoreTest, ConcurrentWritersDisjointKeys) {
  const int64_t n = 10000;
  Store<int64_t> store(n);
  std::vector<std::thread> writers;
  for (int t = 0; t < 8; ++t) {
    writers.emplace_back([&store, t] {
      for (int64_t k = t; k < n; k += 8) store.Put(k, k * 2);
    });
  }
  for (auto& t : writers) t.join();
  for (int64_t k = 0; k < n; ++k) {
    const int64_t* v = store.Lookup(k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k * 2);
  }
  // The O(1) insert counter must agree with the slot scan's answer even
  // after concurrent writers.
  EXPECT_EQ(store.size(), n);
}

TEST(StoreTest, SizeIsConstantTimeNotCapacityScan) {
  // A huge, nearly-empty store: size() must not depend on capacity.
  const int64_t capacity = 1 << 22;
  Store<int64_t> store(capacity);
  EXPECT_EQ(store.size(), 0);
  store.Put(0, 1);
  store.Put(capacity - 1, 2);
  WallTimer timer;
  int64_t total = 0;
  for (int i = 0; i < 100000; ++i) total += store.size();
  EXPECT_EQ(total, 2 * 100000);
  // 1e5 calls over a 4M-slot store: far under a second when O(1),
  // minutes when O(capacity).
  EXPECT_LT(timer.Seconds(), 2.0);
}

TEST(StoreTest, ConcurrentReadersDuringWrites) {
  const int64_t n = 4096;
  Store<int64_t> store(n);
  std::thread writer([&store] {
    for (int64_t k = 0; k < n; ++k) store.Put(k, k + 1);
  });
  // Spin until the writer finishes, verifying we never observe a
  // half-written value on the way.
  int64_t observed = 0;
  while (store.Lookup(n - 1) == nullptr) {
    const int64_t k = observed % n;
    const int64_t* v = store.Lookup(k);
    if (v != nullptr) {
      EXPECT_EQ(*v, k + 1);
    }
    ++observed;
  }
  writer.join();
  for (int64_t k = 0; k < n; ++k) {
    const int64_t* v = store.Lookup(k);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k + 1);
  }
}

TEST(ShardedStoreTest, PutThenLookupAcrossShards) {
  const int64_t n = 1000;
  ShardedStore<int64_t> store(n, 8, /*seed=*/7);
  EXPECT_EQ(store.capacity(), n);
  EXPECT_EQ(store.num_shards(), 8);
  for (int64_t k = 0; k < n; ++k) {
    EXPECT_EQ(store.Put(k, k * 5), kKeyBytes + 8);
  }
  for (int64_t k = 0; k < n; ++k) {
    const int64_t* v = store.Lookup(k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k * 5);
  }
  EXPECT_EQ(store.Lookup(n + 5), nullptr);
  EXPECT_EQ(store.size(), n);
}

TEST(ShardedStoreTest, ShardOwnershipMatchesPlacementHash) {
  const uint64_t seed = 42;
  ShardedStore<int> store(300, 5, seed);
  for (uint64_t k = 0; k < 300; ++k) {
    EXPECT_EQ(store.ShardOf(k), ShardForKey(k, seed, 5)) << k;
  }
}

TEST(ShardedStoreTest, PerShardOccupancyTotalsAndCapacity) {
  const int64_t n = 2048;
  const int shards = 6;
  ShardedStore<int32_t> store(n, shards, /*seed=*/11);
  // Write only even keys; shard sizes must sum to the written count and
  // match a direct ownership count, and capacities partition [0, n).
  std::vector<int64_t> expected_size(shards, 0),
      expected_capacity(shards, 0);
  for (int64_t k = 0; k < n; ++k) {
    ++expected_capacity[store.ShardOf(k)];
    if (k % 2 == 0) {
      store.Put(k, static_cast<int32_t>(k));
      ++expected_size[store.ShardOf(k)];
    }
  }
  int64_t total_size = 0, total_capacity = 0;
  for (int s = 0; s < shards; ++s) {
    EXPECT_EQ(store.ShardSize(s), expected_size[s]) << s;
    EXPECT_EQ(store.ShardCapacity(s), expected_capacity[s]) << s;
    EXPECT_NEAR(store.ShardOccupancy(s),
                expected_capacity[s] == 0
                    ? 0.0
                    : static_cast<double>(expected_size[s]) /
                          expected_capacity[s],
                1e-15)
        << s;
    total_size += store.ShardSize(s);
    total_capacity += store.ShardCapacity(s);
  }
  EXPECT_EQ(total_size, n / 2);
  EXPECT_EQ(total_size, store.size());
  EXPECT_EQ(total_capacity, n);
}

TEST(ShardedStoreTest, PerShardByteAccounting) {
  ShardedStore<std::vector<uint32_t>> store(64, 4, /*seed=*/3);
  int64_t expected_total = 0;
  for (int64_t k = 0; k < 64; ++k) {
    expected_total +=
        store.Put(k, std::vector<uint32_t>(static_cast<size_t>(k % 7), 9u));
  }
  const std::vector<int64_t> snapshot = store.ShardBytesSnapshot();
  int64_t total = 0;
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(snapshot[s], store.ShardBytes(s));
    total += snapshot[s];
  }
  EXPECT_EQ(total, expected_total);
  EXPECT_EQ(total, store.total_bytes());
}

TEST(ShardedStoreTest, ConcurrentCrossShardWrites) {
  // Writers race across every shard simultaneously (each key is written
  // once). Run under TSAN in CI: the per-slot release/acquire publication
  // plus the per-shard atomic counters must stay race-free.
  const int64_t n = 20000;
  ShardedStore<int64_t> store(n, 8, /*seed=*/123);
  std::vector<std::thread> writers;
  for (int t = 0; t < 8; ++t) {
    writers.emplace_back([&store, t] {
      for (int64_t k = t; k < n; k += 8) store.Put(k, k * 2);
    });
  }
  for (auto& t : writers) t.join();
  for (int64_t k = 0; k < n; ++k) {
    const int64_t* v = store.Lookup(k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k * 2);
  }
  EXPECT_EQ(store.size(), n);
  int64_t shard_total = 0;
  for (int s = 0; s < store.num_shards(); ++s) {
    shard_total += store.ShardSize(s);
  }
  EXPECT_EQ(shard_total, n);
}

TEST(ShardedStoreTest, ConcurrentReadersDuringCrossShardWrites) {
  const int64_t n = 4096;
  ShardedStore<int64_t> store(n, 4, /*seed=*/99);
  std::thread writer([&store] {
    for (int64_t k = 0; k < n; ++k) store.Put(k, k + 1);
  });
  int64_t observed = 0;
  while (store.Lookup(n - 1) == nullptr) {
    const int64_t k = observed % n;
    const int64_t* v = store.Lookup(k);
    if (v != nullptr) {
      EXPECT_EQ(*v, k + 1);
    }
    ++observed;
  }
  writer.join();
  for (int64_t k = 0; k < n; ++k) {
    const int64_t* v = store.Lookup(k);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k + 1);
  }
}

TEST(ShardedStoreTest, SingleShardBehavesLikeDenseStore) {
  ShardedStore<int> sharded(100, 1, /*seed=*/1);
  Store<int> dense(100);
  for (int64_t k = 0; k < 100; k += 3) {
    EXPECT_EQ(sharded.Put(k, static_cast<int>(k)),
              dense.Put(k, static_cast<int>(k)));
  }
  for (int64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(sharded.Contains(k), dense.Contains(k)) << k;
    EXPECT_EQ(sharded.RecordBytes(k), dense.RecordBytes(k)) << k;
  }
  EXPECT_EQ(sharded.ShardCapacity(0), 100);
  EXPECT_EQ(sharded.ShardSize(0), sharded.size());
}

TEST(ShardedStoreTest, MovableAcrossFactoryReturns) {
  auto make = [] {
    ShardedStore<int64_t> store(50, 3, /*seed=*/5);
    store.Put(10, 77);
    return store;
  };
  ShardedStore<int64_t> store = make();
  ShardedStore<int64_t> moved = std::move(store);
  const int64_t* v = moved.Lookup(10);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 77);
  EXPECT_EQ(moved.size(), 1);
}

TEST(PlacementTest, RangePolicyKeepsRangesContiguousAndCoversAllShards) {
  Placement placement;
  placement.policy = PlacementPolicy::kRange;
  placement.num_shards = 4;
  placement.capacity = 1000;
  int prev = 0;
  std::vector<int64_t> counts(4, 0);
  for (int64_t k = 0; k < 1000; ++k) {
    const int s = placement.ShardOf(k);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    EXPECT_GE(s, prev) << "range shards must be monotone in the key";
    prev = s;
    ++counts[s];
  }
  for (const int64_t c : counts) EXPECT_EQ(c, 250);
  // Keys past the capacity clamp to the last range owner.
  EXPECT_EQ(placement.ShardOf(5000), 3);
}

TEST(PlacementTest, AffinityPolicyKeepsBlocksTogether) {
  Placement placement;
  placement.policy = PlacementPolicy::kAffinity;
  placement.num_shards = 8;
  placement.seed = 42;
  placement.affinity_block = 32;
  std::vector<int64_t> shard_counts(8, 0);
  for (int64_t block = 0; block < 64; ++block) {
    const int owner = placement.ShardOf(block * 32);
    ++shard_counts[owner];
    for (int64_t k = block * 32; k < (block + 1) * 32; ++k) {
      EXPECT_EQ(placement.ShardOf(k), owner);
    }
  }
  // ...while distinct blocks scatter like the hash baseline.
  int populated = 0;
  for (const int64_t c : shard_counts) populated += c > 0;
  EXPECT_GT(populated, 4);
}

TEST(PlacementTest, HashPolicyMatchesShardForKey) {
  Placement placement;
  placement.policy = PlacementPolicy::kHash;
  placement.num_shards = 5;
  placement.seed = 7;
  for (uint64_t k = 0; k < 500; ++k) {
    EXPECT_EQ(placement.ShardOf(k), ShardForKey(k, 7, 5));
  }
}

TEST(PlacementTest, EqualityDistinguishesPolicies) {
  Placement hash;
  hash.num_shards = 4;
  hash.seed = 1;
  Placement range = hash;
  range.policy = PlacementPolicy::kRange;
  range.capacity = 100;
  EXPECT_FALSE(hash == range);
  Placement hash2 = hash;
  hash2.capacity = 999;  // capacity is irrelevant to the hash policy
  EXPECT_TRUE(hash == hash2);
}

TEST(ShardedStoreTest, RoundTripsUnderEveryPlacementPolicy) {
  for (const PlacementPolicy policy :
       {PlacementPolicy::kHash, PlacementPolicy::kRange,
        PlacementPolicy::kAffinity}) {
    Placement placement;
    placement.policy = policy;
    placement.num_shards = 4;
    placement.seed = 42;
    placement.capacity = 300;
    ShardedStore<int64_t> store(ShardMap::Build(placement));
    EXPECT_TRUE(store.placement() == placement);
    for (int64_t k = 0; k < 300; ++k) store.Put(k, k * 7);
    int64_t total = 0;
    for (int s = 0; s < 4; ++s) total += store.ShardSize(s);
    EXPECT_EQ(total, 300) << PlacementPolicyName(policy);
    for (uint64_t k = 0; k < 300; ++k) {
      const int64_t* v = store.Lookup(k);
      ASSERT_NE(v, nullptr) << PlacementPolicyName(policy) << " key " << k;
      EXPECT_EQ(*v, static_cast<int64_t>(k) * 7);
      EXPECT_EQ(store.ShardOf(k), placement.ShardOf(k));
    }
  }
}

TEST(QueryCacheTest, PutGetRoundTripAndEpochValidation) {
  QueryCache<int> cache(/*capacity=*/16, /*lock_shards=*/1);
  EXPECT_EQ(cache.Get(7, /*epoch=*/1), std::nullopt);
  cache.Put(7, 1, 70);
  EXPECT_EQ(cache.Get(7, 1), std::optional<int>(70));
  // An entry from another epoch is stale: absent, and dropped for good
  // (epochs only move forward).
  EXPECT_EQ(cache.Get(7, 2), std::nullopt);
  EXPECT_EQ(cache.Get(7, 1), std::nullopt);
  EXPECT_EQ(cache.size(), 0);
}

TEST(QueryCacheTest, CapacityEvictionIsLeastRecentlyUsed) {
  QueryCache<int> cache(/*capacity=*/4, /*lock_shards=*/1);
  EXPECT_EQ(cache.capacity(), 4);
  for (uint64_t k = 0; k < 4; ++k) {
    cache.Put(k, 0, static_cast<int>(k) * 10);
  }
  EXPECT_EQ(cache.size(), 4);
  // Touch key 0 so key 1 becomes the least recently used entry.
  EXPECT_EQ(cache.Get(0, 0), std::optional<int>(0));
  cache.Put(9, 0, 90);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.Get(1, 0), std::nullopt);  // evicted
  EXPECT_EQ(cache.Get(0, 0), std::optional<int>(0));
  EXPECT_EQ(cache.Get(9, 0), std::optional<int>(90));
  EXPECT_EQ(cache.size(), 4);
}

// Satellite regression: tiny capacities must not be silently inflated
// by the lock-shard split. Before the clamp, a capacity-4 cache with 8
// lock shards got 8 one-entry shards and held up to 8 entries; the
// effective shard count is now min(lock_shards, capacity), so
// capacity() never exceeds the requested budget.
TEST(QueryCacheTest, TinyCapacityNotInflatedByLockShards) {
  QueryCache<int> cache(/*capacity=*/4, /*lock_shards=*/8);
  EXPECT_EQ(cache.capacity(), 4);
  for (uint64_t k = 0; k < 64; ++k) {
    cache.Put(k, 0, static_cast<int>(k));
  }
  EXPECT_LE(cache.size(), 4);
  EXPECT_GE(cache.evictions(), 60);

  QueryCache<int> single(/*capacity=*/1, /*lock_shards=*/8);
  EXPECT_EQ(single.capacity(), 1);
  single.Put(1, 0, 10);
  single.Put(2, 0, 20);
  EXPECT_EQ(single.size(), 1);

  // Budgets at or above the shard count keep the full split (and a
  // budget that does not divide evenly still never exceeds the bound).
  QueryCache<int> wide(/*capacity=*/20, /*lock_shards=*/8);
  EXPECT_LE(wide.capacity(), 20);
  QueryCache<int> exact(/*capacity=*/16, /*lock_shards=*/8);
  EXPECT_EQ(exact.capacity(), 16);
}

TEST(QueryCacheTest, UpdateIsReadModifyWrite) {
  QueryCache<int> cache(/*capacity=*/8, /*lock_shards=*/1);
  // Absent: fn sees nullopt and seeds the entry.
  cache.Update(3, 1, [](std::optional<int> cur) {
    EXPECT_EQ(cur, std::nullopt);
    return 5;
  });
  // Present and epoch-valid: fn sees the current value.
  cache.Update(3, 1, [](std::optional<int> cur) {
    return cur.value_or(0) + 2;
  });
  EXPECT_EQ(cache.Get(3, 1), std::optional<int>(7));
  // Stale: fn sees nullopt again (the old-epoch value must not leak).
  cache.Update(3, 2, [](std::optional<int> cur) {
    EXPECT_EQ(cur, std::nullopt);
    return 11;
  });
  EXPECT_EQ(cache.Get(3, 2), std::optional<int>(11));
}

TEST(QueryCacheTest, ConcurrentMixedOpsStayConsistent) {
  // Run under TSAN in CI: threads race Get/Put/Update over overlapping
  // keys of one shared cache (as a machine's worker threads do). Every
  // value written for key k is k * 2, so any hit must read k * 2.
  QueryCache<int64_t> cache(/*capacity=*/128, /*lock_shards=*/4);
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &bad, t] {
      for (int round = 0; round < 50; ++round) {
        for (uint64_t k = 0; k < 64; ++k) {
          if ((k + t) % 3 == 0) {
            cache.Put(k, 0, static_cast<int64_t>(k) * 2);
          } else if ((k + t) % 3 == 1) {
            cache.Update(k, 0, [k](std::optional<int64_t> cur) {
              return cur.value_or(static_cast<int64_t>(k) * 2);
            });
          } else if (const std::optional<int64_t> hit = cache.Get(k, 0)) {
            if (*hit != static_cast<int64_t>(k) * 2) bad.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(QueryCacheTest, MachineCachesDisabledReturnsNull) {
  MachineCaches<int> disabled;
  EXPECT_FALSE(disabled.enabled());
  EXPECT_EQ(disabled.ForMachine(0), nullptr);
  MachineCaches<int> enabled(/*num_machines=*/3, /*capacity=*/16);
  EXPECT_TRUE(enabled.enabled());
  for (int m = 0; m < 3; ++m) {
    ASSERT_NE(enabled.ForMachine(m), nullptr);
  }
  // Machines do not share entries.
  enabled.ForMachine(0)->Put(1, 0, 10);
  EXPECT_EQ(enabled.ForMachine(1)->Get(1, 0), std::nullopt);
  EXPECT_EQ(enabled.ForMachine(0)->Get(1, 0), std::optional<int>(10));
}

TEST(ShardedStoreTest, VersionMovesOnEveryWrite) {
  ShardedStore<int64_t> store(100, 4, /*seed=*/7);
  EXPECT_EQ(store.version(), 0u);
  store.Put(3, 30);
  EXPECT_EQ(store.version(), 1u);
  store.Put(60, 600);
  EXPECT_EQ(store.version(), 2u);
}

TEST(ShardedStoreTest, QueryCacheForIsPerMachine) {
  ShardedStore<int64_t> store(100, 4, /*seed=*/7);
  EXPECT_EQ(store.QueryCacheFor(0), nullptr);  // off by default
  store.EnableQueryCache(/*capacity_per_machine=*/32);
  for (int m = 0; m < 4; ++m) {
    ASSERT_NE(store.QueryCacheFor(m), nullptr);
  }
  EXPECT_NE(store.QueryCacheFor(0), store.QueryCacheFor(1));
  // The caches hold pointers into the store's stable slot tables.
  store.Put(5, 55);
  const int64_t* record = store.Lookup(5);
  store.QueryCacheFor(0)->Put(5, store.version(), record);
  const auto hit = store.QueryCacheFor(0)->Get(5, store.version());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, record);
}

TEST(PlacementReplicationTest, ReplicasAreDistinctStableAndPrimaryFirst) {
  for (const int shards : {2, 5, 8}) {
    for (const int replication : {1, 2, 3}) {
      Placement placement;
      placement.num_shards = shards;
      placement.seed = 17;
      placement.replication = replication;
      const int copies = std::min(replication, shards);
      for (int s = 0; s < shards; ++s) {
        const ReplicaSet set = placement.ReplicasOfShard(s);
        ASSERT_EQ(set.replication(), copies) << s;
        EXPECT_EQ(set.primary(), s);
        std::set<int> distinct(set.machines.begin(), set.machines.end());
        EXPECT_EQ(static_cast<int>(distinct.size()), copies) << s;
        for (const int m : set.machines) {
          EXPECT_GE(m, 0);
          EXPECT_LT(m, shards);
        }
        // Pure function of (seed, shards, replication).
        EXPECT_EQ(placement.ReplicasOfShard(s).machines, set.machines);
      }
    }
  }
}

TEST(PlacementReplicationTest, EffectiveReplicationClampsToMachineCount) {
  Placement placement;
  placement.num_shards = 3;
  placement.replication = 8;
  EXPECT_EQ(placement.EffectiveReplication(), 3);
  placement.replication = 1;
  EXPECT_EQ(placement.EffectiveReplication(), 1);
}

TEST(PlacementReplicationTest, FailoverSkipsDeadFollowers) {
  Placement placement;
  placement.num_shards = 6;
  placement.seed = 3;
  placement.replication = 3;
  const ReplicaSet set = placement.ReplicasOfShard(2);
  ASSERT_EQ(set.machines.size(), 3u);
  std::vector<uint8_t> dead(6, 0);
  EXPECT_EQ(set.FailoverTarget(dead), set.machines[1]);
  dead[set.machines[1]] = 1;
  EXPECT_EQ(set.FailoverTarget(dead), set.machines[2]);
  dead[set.machines[2]] = 1;
  EXPECT_EQ(set.FailoverTarget(dead), -1);  // every copy lost
}

TEST(ShardedStoreTest, ReplicatedSnapshotAddsFollowerCopies) {
  Placement placement;
  placement.num_shards = 4;
  placement.seed = 9;
  placement.capacity = 512;
  placement.replication = 2;
  ShardedStore<int64_t> store(ShardMap::Build(placement));
  for (int64_t k = 0; k < 512; ++k) store.Put(k, k);
  EXPECT_EQ(store.replication(), 2);
  const std::vector<int64_t> primary = store.ShardBytesSnapshot();
  const std::vector<int64_t> replicated =
      store.ReplicatedShardBytesSnapshot();
  int64_t primary_total = 0, replicated_total = 0;
  for (int s = 0; s < 4; ++s) {
    primary_total += primary[s];
    replicated_total += replicated[s];
    EXPECT_GE(replicated[s], primary[s]) << s;
  }
  // Every record exists exactly twice cluster-wide.
  EXPECT_EQ(replicated_total, 2 * primary_total);
  // ReplicasOf agrees with the shard-level query.
  for (uint64_t k = 0; k < 512; ++k) {
    EXPECT_EQ(store.ReplicasOf(k).primary(), store.ShardOf(k));
  }
}

TEST(ShardedStoreTest, ReplicationOneSnapshotIsUnchanged) {
  ShardedStore<int64_t> store(256, 4, /*seed=*/5);
  for (int64_t k = 0; k < 256; ++k) store.Put(k, k);
  EXPECT_EQ(store.replication(), 1);
  EXPECT_EQ(store.ReplicatedShardBytesSnapshot(),
            store.ShardBytesSnapshot());
}

TEST(QueryCacheTest, ClearDropsEveryEntryWithoutCountingEvictions) {
  QueryCache<int> cache(/*capacity=*/64, /*lock_shards=*/4);
  for (uint64_t k = 0; k < 32; ++k) {
    cache.Put(k, /*epoch=*/1, static_cast<int>(k));
  }
  EXPECT_GT(cache.size(), 0);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.evictions(), 0);
  for (uint64_t k = 0; k < 32; ++k) {
    EXPECT_FALSE(cache.Get(k, 1).has_value()) << k;
  }
  // The cache re-warms normally after the drop.
  cache.Put(7, 1, 70);
  EXPECT_EQ(cache.Get(7, 1).value_or(-1), 70);
}

TEST(CacheDropRegistryTest, DropsOnlyTheDeadMachinesLiveCaches) {
  CacheDropRegistry registry;
  auto cache0 = std::make_shared<QueryCache<int>>(16);
  auto cache1 = std::make_shared<QueryCache<int>>(16);
  registry.Register(0, cache0);
  registry.Register(1, cache1);
  cache0->Put(1, 1, 10);
  cache1->Put(2, 1, 20);
  EXPECT_EQ(registry.DropMachine(1), 1);
  EXPECT_EQ(cache0->size(), 1);  // machine 0 untouched
  EXPECT_EQ(cache1->size(), 0);
  // Out-of-range machines and machines with no caches are harmless.
  EXPECT_EQ(registry.DropMachine(7), 0);
  EXPECT_EQ(registry.DropMachine(-1), 0);
}

TEST(CacheDropRegistryTest, ExpiredCachesArePrunedNotResurrected) {
  CacheDropRegistry registry;
  {
    auto ephemeral = std::make_shared<QueryCache<int>>(16);
    registry.Register(2, ephemeral);
    EXPECT_EQ(registry.DropMachine(2), 1);
  }  // cache dies with its store
  EXPECT_EQ(registry.DropMachine(2), 0);
}

TEST(ShardedStoreTest, EnableQueryCacheRegistersPerMachineCaches) {
  CacheDropRegistry registry;
  ShardedStore<int64_t> store(256, 4, /*seed=*/5);
  store.EnableQueryCache(/*capacity_per_machine=*/64, /*lock_shards=*/2,
                         &registry);
  for (int64_t k = 0; k < 256; ++k) store.Put(k, k * 2);
  // Warm machine 1's read-through cache by hand.
  const int64_t* record = store.Lookup(10);
  store.QueryCacheFor(1)->Put(10, store.version(), record);
  EXPECT_EQ(store.QueryCacheFor(1)->size(), 1);
  EXPECT_EQ(registry.DropMachine(1), 1);
  EXPECT_EQ(store.QueryCacheFor(1)->size(), 0);
  // Other machines' caches were registered under their own ids.
  EXPECT_EQ(registry.DropMachine(0), 1);
  EXPECT_EQ(registry.DropMachine(4), 0);  // no such machine
}

TEST(NetworkModelTest, PresetsAreOrdered) {
  const NetworkModel rdma = NetworkModel::Rdma();
  const NetworkModel tcp = NetworkModel::TcpIp();
  EXPECT_LT(rdma.lookup_latency_sec, tcp.lookup_latency_sec);
  EXPECT_GE(rdma.bytes_per_sec, tcp.bytes_per_sec);
  EXPECT_EQ(rdma.name, "RDMA");
  EXPECT_EQ(tcp.name, "TCP/IP");
  const NetworkModel free = NetworkModel::Free();
  EXPECT_EQ(free.lookup_latency_sec, 0);
}

}  // namespace
}  // namespace ampc::kv
