#include "kv/store.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/timer.h"
#include "kv/byte_size.h"
#include "kv/network_model.h"

namespace ampc::kv {
namespace {

TEST(ByteSizeTest, ScalarsAndVectors) {
  EXPECT_EQ(KvByteSize(uint32_t{5}), 4);
  EXPECT_EQ(KvByteSize(double{1.0}), 8);
  std::vector<uint32_t> v = {1, 2, 3};
  EXPECT_EQ(KvByteSize(v), 8 + 12);  // length word + payload
  std::pair<uint64_t, uint32_t> p{1, 2};
  EXPECT_EQ(KvByteSize(p), 12);
}

TEST(StoreTest, PutThenLookup) {
  Store<int> store(10);
  EXPECT_EQ(store.Put(3, 42), kKeyBytes + 4);
  const int* v = store.Lookup(3);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 42);
}

TEST(StoreTest, MissingKeyReturnsNull) {
  Store<int> store(10);
  EXPECT_EQ(store.Lookup(3), nullptr);
  EXPECT_EQ(store.Lookup(999), nullptr);  // out of capacity: absent
  EXPECT_FALSE(store.Contains(3));
  EXPECT_EQ(store.RecordBytes(3), 0);
}

TEST(StoreTest, VectorValuesByteAccounting) {
  Store<std::vector<uint32_t>> store(4);
  std::vector<uint32_t> value = {7, 8, 9};
  const int64_t bytes = store.Put(0, value);
  EXPECT_EQ(bytes, kKeyBytes + 8 + 12);
  EXPECT_EQ(store.RecordBytes(0), bytes);
}

TEST(StoreTest, SizeCountsPresentKeys) {
  Store<int> store(100);
  store.Put(1, 10);
  store.Put(50, 20);
  EXPECT_EQ(store.size(), 2);
  EXPECT_EQ(store.capacity(), 100);
}

TEST(StoreTest, ConcurrentWritersDisjointKeys) {
  const int64_t n = 10000;
  Store<int64_t> store(n);
  std::vector<std::thread> writers;
  for (int t = 0; t < 8; ++t) {
    writers.emplace_back([&store, t] {
      for (int64_t k = t; k < n; k += 8) store.Put(k, k * 2);
    });
  }
  for (auto& t : writers) t.join();
  for (int64_t k = 0; k < n; ++k) {
    const int64_t* v = store.Lookup(k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k * 2);
  }
  // The O(1) insert counter must agree with the slot scan's answer even
  // after concurrent writers.
  EXPECT_EQ(store.size(), n);
}

TEST(StoreTest, SizeIsConstantTimeNotCapacityScan) {
  // A huge, nearly-empty store: size() must not depend on capacity.
  const int64_t capacity = 1 << 22;
  Store<int64_t> store(capacity);
  EXPECT_EQ(store.size(), 0);
  store.Put(0, 1);
  store.Put(capacity - 1, 2);
  WallTimer timer;
  int64_t total = 0;
  for (int i = 0; i < 100000; ++i) total += store.size();
  EXPECT_EQ(total, 2 * 100000);
  // 1e5 calls over a 4M-slot store: far under a second when O(1),
  // minutes when O(capacity).
  EXPECT_LT(timer.Seconds(), 2.0);
}

TEST(StoreTest, ConcurrentReadersDuringWrites) {
  const int64_t n = 4096;
  Store<int64_t> store(n);
  std::thread writer([&store] {
    for (int64_t k = 0; k < n; ++k) store.Put(k, k + 1);
  });
  // Spin until the writer finishes, verifying we never observe a
  // half-written value on the way.
  int64_t observed = 0;
  while (store.Lookup(n - 1) == nullptr) {
    const int64_t k = observed % n;
    const int64_t* v = store.Lookup(k);
    if (v != nullptr) {
      EXPECT_EQ(*v, k + 1);
    }
    ++observed;
  }
  writer.join();
  for (int64_t k = 0; k < n; ++k) {
    const int64_t* v = store.Lookup(k);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k + 1);
  }
}

TEST(NetworkModelTest, PresetsAreOrdered) {
  const NetworkModel rdma = NetworkModel::Rdma();
  const NetworkModel tcp = NetworkModel::TcpIp();
  EXPECT_LT(rdma.lookup_latency_sec, tcp.lookup_latency_sec);
  EXPECT_GE(rdma.bytes_per_sec, tcp.bytes_per_sec);
  EXPECT_EQ(rdma.name, "RDMA");
  EXPECT_EQ(tcp.name, "TCP/IP");
  const NetworkModel free = NetworkModel::Free();
  EXPECT_EQ(free.lookup_latency_sec, 0);
}

}  // namespace
}  // namespace ampc::kv
