// Tests for the probe-then-commit AutoTuner (src/sim/autotuner.h).
//
// The decision machine is cluster-agnostic, so the schedule/hysteresis
// tests drive it with synthetic RoundSignals; the cost-charging and
// value-neutrality tests run real clusters over the adaptive cores.
#include "sim/autotuner.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "core/connectivity.h"
#include "core/kcore.h"
#include "core/mis.h"
#include "core/msf.h"
#include "core/one_vs_two_cycle.h"
#include "core/pagerank.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::sim {
namespace {

// An informative round: carries queries and data-dependent cost.
// Trips > 0 gates the placement and frontier candidates in; everything
// else is shaped to gate the depth/batch/cache candidates out, so the
// probe plan is exactly [placement, frontier].
RoundSignals Round(double per_query_cost) {
  RoundSignals s;
  s.kv_queries = 1000;
  s.kv_lookup_trips = 200;
  s.kv_batches = 64;          // ~3 keys/batch: far from the 4096 bound
  s.cache_hits = 900;         // hit rate 0.9: cache probe gated out
  s.cache_misses = 100;
  s.peak_inflight_keys = 64;  // pipeline nowhere near saturated
  s.data_sim_seconds = per_query_cost * 1000.0;
  return s;
}

TEST(AutoTunerTest, ProbeScheduleInterleavesAndCommits) {
  AutoTuneConfig config;
  config.enabled = true;
  AutoTuner tuner(config, TunedKnobs{}, /*caching_enabled=*/true);
  ASSERT_TRUE(tuner.probing());

  // Base round 0: builds the plan, schedules candidate 0 (placement).
  tuner.ObserveRound(Round(1.0));
  EXPECT_EQ(tuner.KnobsForNextRound().placement_policy,
            kv::PlacementPolicy::kRange);
  // Candidate 0 runs much cheaper than base.
  tuner.ObserveRound(Round(0.5));
  // Base round 1: scores placement (accepted), schedules candidate 1
  // (frontier sparse->hybrid).
  tuner.ObserveRound(Round(1.0));
  EXPECT_EQ(tuner.KnobsForNextRound().frontier_mode, FrontierMode::kHybrid);
  EXPECT_EQ(tuner.KnobsForNextRound().placement_policy,
            kv::PlacementPolicy::kHash);  // single-axis candidates
  // Candidate 1 runs at parity: rejected (ratio 1.0 >= 0.97).
  tuner.ObserveRound(Round(1.0));
  // Base round 2: scores frontier, plan exhausted, commit.
  tuner.ObserveRound(Round(1.0));

  ASSERT_TRUE(tuner.committed());
  EXPECT_EQ(tuner.commits(), 1);
  EXPECT_EQ(tuner.probe_rounds_observed(), 5);
  EXPECT_EQ(tuner.committed_knobs().placement_policy,
            kv::PlacementPolicy::kRange);
  EXPECT_EQ(tuner.committed_knobs().frontier_mode, FrontierMode::kSparse);
  // Unmoved axes stay at base.
  EXPECT_EQ(tuner.committed_knobs().pipeline_depth,
            TunedKnobs{}.pipeline_depth);
}

TEST(AutoTunerTest, NonInformativeRoundsPassThrough) {
  AutoTuneConfig config;
  config.enabled = true;
  AutoTuner tuner(config, TunedKnobs{}, /*caching_enabled=*/true);
  RoundSignals kv_write;  // kv_queries == 0: a write/spawn-only round
  kv_write.data_sim_seconds = 5.0;
  for (int i = 0; i < 10; ++i) tuner.ObserveRound(kv_write);
  EXPECT_TRUE(tuner.probing());
  EXPECT_EQ(tuner.probe_rounds_observed(), 0);
}

TEST(AutoTunerTest, DecisionsAreDeterministic) {
  const std::vector<double> costs = {1.0, 0.5, 1.0, 1.0, 1.0, 0.9, 1.1};
  AutoTuneConfig config;
  config.enabled = true;
  AutoTuner a(config, TunedKnobs{}, /*caching_enabled=*/true);
  AutoTuner b(config, TunedKnobs{}, /*caching_enabled=*/true);
  for (const double cost : costs) {
    a.ObserveRound(Round(cost));
    b.ObserveRound(Round(cost));
  }
  EXPECT_EQ(a.committed_knobs(), b.committed_knobs());
  EXPECT_EQ(a.commits(), b.commits());
  EXPECT_EQ(a.reprobes(), b.reprobes());
  EXPECT_EQ(a.DecisionSummary(), b.DecisionSummary());
}

// Drives a tuner to its first commit (plan [placement, frontier], both
// rejected at parity costs) and returns it; committed cost ref is 1.0.
AutoTuner CommittedTuner(const AutoTuneConfig& config) {
  AutoTuner tuner(config, TunedKnobs{}, /*caching_enabled=*/true);
  for (int i = 0; i < 5; ++i) tuner.ObserveRound(Round(1.0));
  EXPECT_TRUE(tuner.committed());
  return tuner;
}

TEST(AutoTunerTest, OscillatingSignalsNeverReprobe) {
  AutoTuneConfig config;
  config.enabled = true;
  AutoTuner tuner = CommittedTuner(config);
  // Alternating drifted / in-band rounds: the streak never reaches
  // drift_patience (3), so the commit must hold forever.
  for (int i = 0; i < 100; ++i) {
    tuner.ObserveRound(Round(i % 2 == 0 ? 5.0 : 1.0));
  }
  EXPECT_TRUE(tuner.committed());
  EXPECT_EQ(tuner.reprobes(), 0);
  // Even two consecutive drifts (patience - 1) followed by recovery.
  for (int i = 0; i < 30; ++i) {
    tuner.ObserveRound(Round(i % 3 == 2 ? 1.0 : 5.0));
  }
  EXPECT_EQ(tuner.reprobes(), 0);
}

TEST(AutoTunerTest, SustainedDriftReprobesAfterCooldown) {
  AutoTuneConfig config;
  config.enabled = true;
  AutoTuner tuner = CommittedTuner(config);
  // Cooldown window: drift is not even counted.
  for (int i = 0; i < config.reprobe_cooldown_rounds; ++i) {
    tuner.ObserveRound(Round(5.0));
    EXPECT_TRUE(tuner.committed());
  }
  // Sustained drift past the patience threshold: exactly one re-probe.
  for (int i = 0; i < config.drift_patience; ++i) {
    EXPECT_EQ(tuner.reprobes(), 0);
    tuner.ObserveRound(Round(5.0));
  }
  EXPECT_EQ(tuner.reprobes(), 1);
  EXPECT_TRUE(tuner.probing());
}

// ---- Real-cluster coverage ----

ClusterConfig TunedConfig() {
  ClusterConfig config;
  config.num_machines = 4;
  config.threads_per_machine = 2;
  config.network = kv::NetworkModel::Rdma();
  config.query_cache.enabled = true;
  config.auto_tune.enabled = true;
  return config;
}

// A query-bearing workload: pointer jumping along parent chains, enough
// phases for the tuner to probe and commit.
void RunChains(Cluster& cluster, int64_t n, int phases) {
  auto parent = cluster.MakeStore<graph::NodeId>(n);
  cluster.RunKvWritePhase("build", parent, n, [&](int64_t k) {
    return k % 64 == 0 ? graph::kInvalidNode
                       : static_cast<graph::NodeId>(k - 1);
  });
  for (int p = 0; p < phases; ++p) {
    cluster.RunBatchMapPhase(
        "jump", n,
        [&](std::span<const int64_t> items, MachineContext& ctx) {
          struct Chain {
            graph::NodeId cur;
            bool done = false;
          };
          std::vector<Chain> chains;
          for (const int64_t item : items) {
            chains.push_back(Chain{static_cast<graph::NodeId>(item)});
          }
          DriveLookupPipelined(
              ctx, parent, chains,
              [](const Chain& c) { return c.done; },
              [](const Chain& c) { return static_cast<uint64_t>(c.cur); },
              [](Chain& c, const graph::NodeId* v) {
                if (v == nullptr || *v == graph::kInvalidNode) {
                  c.done = true;
                } else {
                  c.cur = *v;
                }
              });
        });
  }
}

TEST(AutoTunerClusterTest, ProbeCostIsChargedOnTheSimClock) {
  Cluster cluster(TunedConfig());
  RunChains(cluster, 20'000, /*phases=*/8);
  ASSERT_NE(cluster.auto_tuner(), nullptr);
  EXPECT_GT(cluster.auto_tuner()->probe_rounds_observed(), 0);
  // Probe rounds are real rounds: they were counted and their seconds
  // landed on the simulated clock.
  EXPECT_GT(cluster.metrics().Get("autotune_probe_rounds"), 0);
  const double probe_sec = cluster.metrics().GetTime("sim:autotune_probe");
  EXPECT_GT(probe_sec, 0.0);
  EXPECT_LE(probe_sec, cluster.SimSeconds());
}

TEST(AutoTunerClusterTest, DecisionsIdenticalAcrossThreadCounts) {
  ClusterConfig narrow = TunedConfig();
  narrow.threads_per_machine = 2;
  ClusterConfig wide = TunedConfig();
  wide.threads_per_machine = 8;
  Cluster a(narrow);
  Cluster b(wide);
  RunChains(a, 20'000, /*phases=*/8);
  RunChains(b, 20'000, /*phases=*/8);
  ASSERT_TRUE(a.auto_tuner() != nullptr && b.auto_tuner() != nullptr);
  // The cost model is simulated from the *configured* thread count and
  // never from wall clocks, so the decision trace cannot depend on real
  // parallelism. (threads_per_machine is part of the simulated config —
  // both runs here share it logically through identical signals only if
  // the tuner consumed deterministic telemetry; the traces differing
  // would mean a wall-clock leak.)
  EXPECT_EQ(a.auto_tuner()->commits(), b.auto_tuner()->commits());
  EXPECT_EQ(a.auto_tuner()->probe_rounds_observed(),
            b.auto_tuner()->probe_rounds_observed());
}

// Value-neutrality: the tuner may only move cost knobs, so every core's
// output must be bit-identical with the tuner on and off.
TEST(AutoTunerClusterTest, TunedOutputsBitIdenticalOnAllSixCores) {
  const graph::EdgeList er = graph::GenerateErdosRenyi(2'000, 6'000, 7);
  const graph::Graph g = graph::BuildGraph(er);
  const graph::WeightedEdgeList weighted = graph::MakeRandomWeighted(er, 11);
  const graph::EdgeList cycles = graph::GenerateDoubleCycle(500);
  const graph::Graph cycle_graph = graph::BuildGraph(cycles);

  ClusterConfig untuned = TunedConfig();
  untuned.auto_tune.enabled = false;

  {
    Cluster a(TunedConfig()), b(untuned);
    EXPECT_EQ(core::AmpcMis(a, g, 42).in_mis, core::AmpcMis(b, g, 42).in_mis);
  }
  {
    Cluster a(TunedConfig()), b(untuned);
    EXPECT_EQ(core::AmpcMsf(a, weighted).edges,
              core::AmpcMsf(b, weighted).edges);
  }
  {
    Cluster a(TunedConfig()), b(untuned);
    EXPECT_EQ(core::AmpcKCore(a, g).coreness, core::AmpcKCore(b, g).coreness);
  }
  {
    Cluster a(TunedConfig()), b(untuned);
    EXPECT_EQ(core::AmpcMonteCarloPageRank(a, g).rank,
              core::AmpcMonteCarloPageRank(b, g).rank);
  }
  {
    Cluster a(TunedConfig()), b(untuned);
    EXPECT_EQ(core::AmpcConnectivity(a, er).component,
              core::AmpcConnectivity(b, er).component);
  }
  {
    Cluster a(TunedConfig()), b(untuned);
    EXPECT_EQ(core::AmpcOneVsTwoCycle(a, cycle_graph).num_cycles,
              core::AmpcOneVsTwoCycle(b, cycle_graph).num_cycles);
  }
}

}  // namespace
}  // namespace ampc::sim
