#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/generators.h"

namespace ampc::graph {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ampc_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, TextRoundTrip) {
  EdgeList list = GenerateErdosRenyi(50, 120, 3);
  ASSERT_TRUE(WriteEdgeListText(list, Path("g.txt")).ok());
  auto read = ReadEdgeListText(Path("g.txt"));
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->num_nodes, 50);
  ASSERT_EQ(read->edges.size(), list.edges.size());
  for (size_t i = 0; i < list.edges.size(); ++i) {
    EXPECT_EQ(read->edges[i], list.edges[i]);
  }
}

TEST_F(IoTest, WeightedTextRoundTrip) {
  WeightedEdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1, 2.5, 0}, {2, 3, -1.25, 1}};
  ASSERT_TRUE(WriteWeightedEdgeListText(list, Path("w.txt")).ok());
  auto read = ReadWeightedEdgeListText(Path("w.txt"));
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->edges.size(), 2u);
  EXPECT_EQ(read->edges[0].w, 2.5);
  EXPECT_EQ(read->edges[1].w, -1.25);
  EXPECT_EQ(read->num_nodes, 4);
}

TEST_F(IoTest, BinaryRoundTrip) {
  EdgeList list = GenerateErdosRenyi(1000, 5000, 17);
  ASSERT_TRUE(WriteEdgeListBinary(list, Path("g.bin")).ok());
  auto read = ReadEdgeListBinary(Path("g.bin"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_nodes, list.num_nodes);
  ASSERT_EQ(read->edges.size(), list.edges.size());
  for (size_t i = 0; i < list.edges.size(); ++i) {
    EXPECT_EQ(read->edges[i], list.edges[i]);
  }
}

TEST_F(IoTest, MissingFileIsIoError) {
  auto read = ReadEdgeListText(Path("nope.txt"));
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, MalformedLineIsInvalidArgument) {
  {
    std::ofstream out(Path("bad.txt"));
    out << "1 2\nthree four\n";
  }
  auto read = ReadEdgeListText(Path("bad.txt"));
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, NodeCountHeaderOverridesMaxId) {
  {
    std::ofstream out(Path("h.txt"));
    out << "# nodes 10\n0 1\n";
  }
  auto read = ReadEdgeListText(Path("h.txt"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->num_nodes, 10);
}

TEST_F(IoTest, EdgeBeyondDeclaredNodesRejected) {
  {
    std::ofstream out(Path("over.txt"));
    out << "# nodes 2\n0 5\n";
  }
  auto read = ReadEdgeListText(Path("over.txt"));
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, CorruptBinaryRejected) {
  {
    std::ofstream out(Path("junk.bin"), std::ios::binary);
    out << "this is not a graph";
  }
  auto read = ReadEdgeListBinary(Path("junk.bin"));
  EXPECT_FALSE(read.ok());
}

TEST_F(IoTest, CommentsAndBlankLinesIgnored) {
  {
    std::ofstream out(Path("c.txt"));
    out << "# a comment\n\n0 1\n# another\n1 2\n";
  }
  auto read = ReadEdgeListText(Path("c.txt"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->edges.size(), 2u);
}

}  // namespace
}  // namespace ampc::graph
