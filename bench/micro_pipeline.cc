// micro_pipeline — bounded-depth pipelined lookups on a latency-bound
// pointer-jump workload.
//
// The paper's DHT client stacks three optimizations (Section 5.3):
// batching, caching, and *pipelining* of asynchronous lookups. This
// bench drives the simulator's pipeline stage (LookupManyAsync/Await
// tickets behind DriveLookupPipelined, ClusterConfig::pipeline_depth)
// over the canonical latency-bound workload — pointer jumping along
// long parent chains — with the sub-batch bound forced small enough
// that every adaptive step splits into many windows, so the depth knob
// has windows to overlap. The full depth {1,2,4,8} x batching x caching
// grid is reported from one binary, together with the measured peak
// in-flight keys per worker: the depth x max_batch_keys memory
// trade-off ROADMAP asks about, as a column rather than a formula.
//
// The run FAILS (exit 1) if any depth > 1 does not *strictly* reduce
// simulated time versus depth 1 (lockstep) on the batched uncached
// pointer-jump phase — the pipeline stage's whole point — so CI
// regression-tests the overlapped cost model here. Depth 1 reproduces
// the lockstep (PR 4) cost model bit-identically, which
// tests/cluster_test.cc pins.
//
//   AMPC_BENCH_SCALE   scales the key count (default 1.0 => 100k keys)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/graph.h"
#include "sim/cluster.h"

namespace {

using ampc::graph::kInvalidNode;
using ampc::graph::NodeId;

constexpr int kMachines = 8;
constexpr int64_t kChainLength = 64;
// Forced sub-batch bound: per-worker frontiers split into many windows
// of this size, giving the pipeline windows to keep in flight.
constexpr int64_t kMaxBatchKeys = 64;

struct RunResult {
  double sim_sec = 0;
  int64_t trips = 0;
  int64_t lookups = 0;
  int64_t peak_inflight_keys = 0;
};

// Pointer jumping over parent chains of kChainLength hops: every item
// chases its chain to the root. Latency-bound (4-byte records, long
// chains); each adaptive step's frontier ships as windows of
// kMaxBatchKeys keys with up to `depth` windows in flight.
RunResult RunPointerJump(int64_t n, const ampc::bench::GridCell& cell) {
  ampc::sim::ClusterConfig config;
  config.num_machines = kMachines;
  cell.ApplyTo(config);
  config.max_batch_keys = kMaxBatchKeys;
  // Track only the data-dependent (latency/bandwidth) component.
  config.round_spawn_sec = 0.0;
  ampc::sim::Cluster cluster(config);

  auto parent_store = cluster.MakeStore<NodeId>(n);
  cluster.RunKvWritePhase("build", parent_store, n, [&](int64_t k) {
    // Chains of kChainLength consecutive keys; chain heads are roots.
    return k % kChainLength == 0 ? kInvalidNode
                                 : static_cast<NodeId>(k - 1);
  });

  cluster.RunBatchMapPhase(
      "jump", n,
      [&](std::span<const int64_t> items, ampc::sim::MachineContext& ctx) {
        struct Chain {
          NodeId cur;
          bool done = false;
        };
        std::vector<Chain> chains;
        chains.reserve(items.size());
        for (const int64_t item : items) {
          chains.push_back(Chain{static_cast<NodeId>(item)});
        }
        ampc::sim::DriveLookupPipelined(
            ctx, parent_store, chains,
            [](const Chain& c) { return c.done; },
            [](const Chain& c) { return static_cast<uint64_t>(c.cur); },
            [](Chain& c, const NodeId* p) {
              if (p == nullptr || *p == kInvalidNode) {
                c.done = true;  // at root
              } else {
                c.cur = *p;
              }
            });
      });

  RunResult result;
  result.sim_sec = cluster.metrics().GetTime("sim:jump");
  result.trips = cluster.metrics().Get("kv_lookup_trips");
  result.lookups = cluster.metrics().Get("kv_reads");
  result.peak_inflight_keys = cluster.metrics().Get("kv_peak_inflight_keys");
  return result;
}

}  // namespace

int main() {
  const int64_t n = std::max<int64_t>(
      kChainLength, static_cast<int64_t>(100'000 * ampc::bench::BenchScale()));

  std::printf(
      "micro_pipeline: %lld keys, %d machines, chains of %lld hops, "
      "windows of %lld keys\n",
      static_cast<long long>(n), kMachines,
      static_cast<long long>(kChainLength),
      static_cast<long long>(kMaxBatchKeys));

  struct GridRow {
    int depth;
    bool batch;
    bool cache;
    RunResult r;
  };
  ampc::bench::GridAxes axes;
  axes.batch = {true, false};
  axes.cache = {false, true};
  axes.depth = {1, 2, 4, 8};
  std::vector<GridRow> grid;
  for (const ampc::bench::GridCell& cell : ampc::bench::ConfigGrid(axes)) {
    grid.push_back(
        GridRow{cell.depth, cell.batch, cell.cache, RunPointerJump(n, cell)});
  }
  auto find = [&](int depth, bool batch, bool cache) -> const RunResult& {
    for (const GridRow& row : grid) {
      if (row.depth == depth && row.batch == batch && row.cache == cache) {
        return row.r;
      }
    }
    std::abort();
  };

  ampc::bench::PrintHeader(
      "micro_pipeline: pointer-jump simulated phase seconds",
      {"depth", "batch", "cache", "sim sec", "trips", "peak keys"});
  for (const GridRow& row : grid) {
    ampc::bench::PrintRow(
        {std::to_string(row.depth), row.batch ? "on" : "off",
         row.cache ? "on" : "off",
         ampc::bench::FmtDouble(row.r.sim_sec, 6),
         ampc::bench::FmtInt(row.r.trips),
         ampc::bench::FmtInt(row.r.peak_inflight_keys)});
  }
  const RunResult& lockstep = find(1, true, false);
  const RunResult& deep = find(4, true, false);
  ampc::bench::PrintPaperNote(
      "pipelining overlaps the round trips of in-flight sub-batches "
      "(Section 5.3): per adaptive step a destination contacted by w "
      "windows costs ceil(w / depth) serialized trips instead of w, at "
      "the price of depth x max_batch_keys keys held in flight per "
      "worker");

  // Regression gates: pipelining must strictly beat lockstep on the
  // batched latency-bound phase at every depth > 1, and the measured
  // in-flight watermark must actually grow with depth (the memory cost
  // is real, not a formula).
  for (const int depth : {2, 4, 8}) {
    const RunResult& r = find(depth, true, false);
    if (r.sim_sec >= lockstep.sim_sec) {
      std::fprintf(stderr,
                   "FATAL: pipeline depth %d did not strictly reduce "
                   "simulated time (depth-%d %.6f, lockstep %.6f)\n",
                   depth, depth, r.sim_sec, lockstep.sim_sec);
      return 1;
    }
  }
  if (deep.peak_inflight_keys <= lockstep.peak_inflight_keys) {
    std::fprintf(stderr,
                 "FATAL: depth 4 did not raise the in-flight key "
                 "watermark (depth-4 %lld, lockstep %lld)\n",
                 static_cast<long long>(deep.peak_inflight_keys),
                 static_cast<long long>(lockstep.peak_inflight_keys));
    return 1;
  }

  FILE* out = std::fopen("BENCH_pipeline.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_pipeline.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"micro_pipeline\",\n"
               "  \"num_keys\": %lld,\n"
               "  \"machines\": %d,\n"
               "  \"chain_length\": %lld,\n"
               "  \"max_batch_keys\": %lld,\n"
               "  \"pipeline_speedup_depth4\": %.4f,\n"
               "  \"trip_reduction_depth4\": %.4f,\n"
               "  \"grid\": [\n",
               static_cast<long long>(n), kMachines,
               static_cast<long long>(kChainLength),
               static_cast<long long>(kMaxBatchKeys),
               lockstep.sim_sec / deep.sim_sec,
               static_cast<double>(lockstep.trips) /
                   static_cast<double>(std::max<int64_t>(1, deep.trips)));
  for (size_t i = 0; i < grid.size(); ++i) {
    const GridRow& row = grid[i];
    std::fprintf(
        out,
        "    {\"depth\": %d, \"batch\": %s, \"cache\": %s, "
        "\"sim_sec\": %.9f, \"trips\": %lld, \"lookups\": %lld, "
        "\"peak_inflight_keys\": %lld}%s\n",
        row.depth, row.batch ? "true" : "false",
        row.cache ? "true" : "false", row.r.sim_sec,
        static_cast<long long>(row.r.trips),
        static_cast<long long>(row.r.lookups),
        static_cast<long long>(row.r.peak_inflight_keys),
        i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_pipeline.json\n");
  return 0;
}
