// Reproduces Figure 8: self-speedup of the AMPC MIS algorithm when run on
// 1..100 machines. Simulated time divides the per-machine KV work across
// machines while fixed round-spawn overheads and the cluster-wide network
// ceiling (Section 5.7's ~80Gb/s observation) flatten the curve — the
// same mechanisms the paper credits for its sublinear speedups.
#include "bench_common.h"

#include "core/mis.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  constexpr uint64_t kSeed = 42;
  const int machine_counts[] = {1, 2, 4, 8, 16, 32, 64, 100};

  std::vector<std::string> header = {"Dataset"};
  for (int m : machine_counts) header.push_back("P=" + FmtInt(m));
  header.push_back("Speedup100/1");
  PrintHeader("Figure 8: AMPC MIS self-speedup (simulated seconds)", header);

  for (const Dataset& d : LoadDatasets()) {
    std::vector<std::string> row = {d.name};
    double t1 = 0, t100 = 0;
    for (int machines : machine_counts) {
      sim::ClusterConfig config = BenchConfig(d.graph.num_arcs());
      config.num_machines = machines;
      sim::Cluster cluster(config);
      core::AmpcMis(cluster, d.graph, kSeed);
      const double t = cluster.SimSeconds();
      if (machines == 1) t1 = t;
      if (machines == 100) t100 = t;
      row.push_back(FmtDouble(t));
    }
    row.push_back(FmtDouble(t1 / t100));
    PrintRow(row);
  }
  PrintPaperNote(
      "Figure 8: 100-machine time 1.64-7.76x faster than 1-machine for "
      "smaller graphs, better speedups for larger graphs, sublinear "
      "because of round overheads and the shared network ceiling.");
  return 0;
}
