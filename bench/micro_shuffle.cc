// micro_shuffle — serial vs parallel shuffle-engine throughput.
//
// The paper's evaluation revolves around shuffle cost (Table 3, Fig. 3):
// a credible MPC baseline needs a shuffle that scales with cores. This
// bench times the seed's serial GroupByKey (single-threaded std::sort +
// scan) against the sharded engine in mpc/dataflow.h and the ParallelSort
// primitive across thread counts, prints a table, and writes the
// measurements to BENCH_shuffle.json (overwritten per run; CI uploads it
// as an artifact so shuffle throughput is tracked across PRs).
//
//   AMPC_BENCH_SCALE     scales the record count (default 1.0 => 1M)
//   AMPC_SHUFFLE_REPS    repetitions per timing, best-of (default 3)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "mpc/dataflow.h"

namespace {

using ampc::Rng;
using ampc::ThreadPool;
using ampc::WallTimer;
using ampc::mpc::GroupByKeyEngine;
using ampc::mpc::KV;
using ampc::mpc::PCollection;

using Record = KV<uint64_t, uint64_t>;
using Groups = PCollection<KV<uint64_t, std::vector<uint64_t>>>;

// The seed repository's shuffle: one std::sort plus a serial scan. Kept
// verbatim as the baseline the sharded engine is measured against.
Groups SerialGroupByKey(PCollection<Record> records) {
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) {
              return a.first < b.first;
            });
  Groups out;
  for (size_t i = 0; i < records.size();) {
    size_t j = i;
    std::vector<uint64_t> values;
    while (j < records.size() && records[j].first == records[i].first) {
      values.push_back(records[j].second);
      ++j;
    }
    out.emplace_back(records[i].first, std::move(values));
    i = j;
  }
  return out;
}

}  // namespace

int main() {
  const int64_t n =
      static_cast<int64_t>(1'000'000 * ampc::bench::BenchScale());
  const uint64_t distinct_keys = std::max<int64_t>(1, n / 16);
  const int reps = ampc::bench::Reps("AMPC_SHUFFLE_REPS");
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));

  Rng rng(0x5eed);
  PCollection<Record> records(n);
  for (int64_t i = 0; i < n; ++i) {
    records[i] = {rng.NextBelow(distinct_keys), static_cast<uint64_t>(i)};
  }

  std::printf("micro_shuffle: %lld records, %llu distinct keys, "
              "%d hardware threads, best of %d reps\n",
              static_cast<long long>(n),
              static_cast<unsigned long long>(distinct_keys), hw, reps);

  const double serial_group_sec = ampc::bench::BestOf(reps, [&] {
    auto copy = records;
    WallTimer timer;
    Groups groups = SerialGroupByKey(std::move(copy));
    const double sec = timer.Seconds();
    if (groups.empty()) std::abort();
    return sec;
  });
  const double serial_sort_sec = ampc::bench::BestOf(reps, [&] {
    auto copy = records;
    WallTimer timer;
    std::sort(copy.begin(), copy.end());
    return timer.Seconds();
  });

  const Groups reference = SerialGroupByKey(records);

  std::vector<int> thread_counts = {1, 2, 4, 8};
  if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
      thread_counts.end()) {
    thread_counts.push_back(hw);
    std::sort(thread_counts.begin(), thread_counts.end());
  }

  struct Row {
    int threads;
    double group_sec;
    double sort_sec;
  };
  std::vector<Row> rows;
  for (int threads : thread_counts) {
    ThreadPool pool(threads);
    const double group_sec = ampc::bench::BestOf(reps, [&] {
      auto copy = records;
      WallTimer timer;
      Groups groups = GroupByKeyEngine(pool, std::move(copy));
      const double sec = timer.Seconds();
      if (groups.size() != reference.size()) {
        std::fprintf(stderr, "FATAL: parallel group count %zu != %zu\n",
                     groups.size(), reference.size());
        std::abort();
      }
      return sec;
    });
    const double sort_sec = ampc::bench::BestOf(reps, [&] {
      auto copy = records;
      WallTimer timer;
      ampc::ParallelSort(pool, copy);
      return timer.Seconds();
    });
    rows.push_back({threads, group_sec, sort_sec});
  }

  ampc::bench::PrintHeader(
      "micro_shuffle (serial GroupByKey = " +
          ampc::bench::FmtDouble(serial_group_sec * 1e3) + " ms)",
      {"threads", "GroupByKey ms", "speedup", "ParallelSort ms", "speedup"});
  for (const Row& row : rows) {
    ampc::bench::PrintRow(
        {ampc::bench::FmtInt(row.threads),
         ampc::bench::FmtDouble(row.group_sec * 1e3),
         ampc::bench::FmtDouble(serial_group_sec / row.group_sec) + "x",
         ampc::bench::FmtDouble(row.sort_sec * 1e3),
         ampc::bench::FmtDouble(serial_sort_sec / row.sort_sec) + "x"});
  }
  ampc::bench::PrintPaperNote(
      "shuffle dominates MPC cost (Table 3 / Fig. 3); the sharded engine "
      "must scale with cores for the MPC baselines to be fair");

  FILE* out = std::fopen("BENCH_shuffle.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_shuffle.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"micro_shuffle\",\n"
               "  \"num_records\": %lld,\n"
               "  \"distinct_keys\": %llu,\n"
               "  \"hardware_concurrency\": %d,\n"
               "  \"reps\": %d,\n"
               "  \"serial_group_by_key_sec\": %.6f,\n"
               "  \"serial_sort_sec\": %.6f,\n"
               "  \"parallel\": [\n",
               static_cast<long long>(n),
               static_cast<unsigned long long>(distinct_keys), hw, reps,
               serial_group_sec, serial_sort_sec);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"threads\": %d, \"group_by_key_sec\": %.6f, "
                 "\"group_speedup\": %.3f, \"parallel_sort_sec\": %.6f, "
                 "\"sort_speedup\": %.3f}%s\n",
                 rows[i].threads, rows[i].group_sec,
                 serial_group_sec / rows[i].group_sec, rows[i].sort_sec,
                 serial_sort_sec / rows[i].sort_sec,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_shuffle.json\n");
  return 0;
}
