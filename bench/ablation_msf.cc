// Ablation of the MSF design choices called out in DESIGN.md:
//  (a) ternarization pre-pass (faithful Algorithm 2) vs the practical
//      single-search path the paper ships (Section 5.5),
//  (b) the KKT sampling reduction (Algorithm 3) vs direct MSF,
//  (c) the Prim search truncation limit (stopping rule 1).
// All variants must produce the identical MSF; the table shows what each
// choice costs in shuffles, KV traffic and simulated time.
#include "bench_common.h"

#include "common/logging.h"
#include "core/kkt.h"
#include "core/msf.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  constexpr uint64_t kSeed = 42;

  PrintHeader("Ablation: MSF design choices",
              {"Dataset", "Variant", "Shuffles", "KV-bytes", "Sim(s)",
               "MSF-size"});
  for (const Dataset& d : LoadDatasets(3)) {
    graph::WeightedEdgeList weighted =
        graph::MakeDegreeWeighted(d.edges, d.graph);
    size_t reference_size = 0;

    auto run = [&](const char* variant, auto fn) {
      sim::Cluster cluster(BenchConfig(d.graph.num_arcs()));
      std::vector<graph::EdgeId> edges = fn(cluster);
      if (reference_size == 0) reference_size = edges.size();
      AMPC_CHECK_EQ(edges.size(), reference_size)
          << "variant " << variant << " changed the MSF";
      PrintRow({d.name, variant,
                FmtInt(cluster.metrics().Get("shuffles")),
                FmtBytes(cluster.metrics().Get("kv_read_bytes") +
                         cluster.metrics().Get("kv_write_bytes")),
                FmtDouble(cluster.SimSeconds()),
                FmtInt(static_cast<int64_t>(edges.size()))});
    };

    run("practical", [&](sim::Cluster& cluster) {
      core::MsfOptions options;
      options.seed = kSeed;
      return core::AmpcMsf(cluster, weighted, options).edges;
    });
    run("ternarized", [&](sim::Cluster& cluster) {
      core::MsfOptions options;
      options.seed = kSeed;
      options.ternarize = true;
      return core::AmpcMsf(cluster, weighted, options).edges;
    });
    run("kkt", [&](sim::Cluster& cluster) {
      core::KktOptions options;
      options.msf.seed = kSeed;
      return core::AmpcMsfKkt(cluster, weighted, options).msf_edges;
    });
    for (int64_t limit : {8, 64, 1024}) {
      std::string name = "prim-limit-" + FmtInt(limit);
      run(name.c_str(), [&](sim::Cluster& cluster) {
        core::MsfOptions options;
        options.seed = kSeed;
        options.search_limit = limit;
        return core::AmpcMsf(cluster, weighted, options).edges;
      });
    }
  }
  PrintPaperNote(
      "Section 5.5: one search pass without ternarization suffices in "
      "practice; ternarization/kkt add shuffles and traffic for the same "
      "forest. Larger Prim limits shrink the contracted graph further "
      "per round at higher per-round query cost.");
  return 0;
}
