// Ablation of the in-memory fallback threshold (the paper tuned 5e7
// edges for its MPC baselines, Section 5.3/5.4) and of the matching
// query-truncation budget (Lemma 4.7's n^epsilon).
#include "bench_common.h"

#include "baselines/rootset_mis.h"
#include "core/matching.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  constexpr uint64_t kSeed = 42;

  PrintHeader("Ablation: MPC in-memory fallback threshold (rootset MIS)",
              {"Dataset", "Threshold", "Phases", "Shuffles", "Sim(s)"});
  for (const Dataset& d : LoadDatasets(2)) {
    const int64_t arcs = d.graph.num_arcs();
    for (int64_t divisor : {4, 20, 100, 1000}) {
      sim::ClusterConfig config = BenchConfig(arcs);
      config.in_memory_threshold_arcs = std::max<int64_t>(64, arcs / divisor);
      sim::Cluster cluster(config);
      baselines::RootsetMisResult r =
          baselines::MpcRootsetMis(cluster, d.graph, kSeed);
      PrintRow({d.name, FmtInt(config.in_memory_threshold_arcs),
                FmtInt(r.phases),
                FmtInt(cluster.metrics().Get("shuffles")),
                FmtDouble(cluster.SimSeconds())});
    }
  }
  PrintPaperNote(
      "Section 5.3: 5e7 edges balanced phase-spawn overhead vs the cost "
      "of one machine finishing; too-small thresholds add phases, "
      "too-large thresholds serialize the tail.");

  PrintHeader("Ablation: matching truncation budget (Lemma 4.7)",
              {"Dataset", "Budget", "Phases", "KV-reads", "Sim(s)"});
  for (const Dataset& d : LoadDatasets(2)) {
    for (int64_t budget : {0, 16, 256, 4096}) {
      sim::Cluster cluster(BenchConfig(d.graph.num_arcs()));
      core::MatchingOptions options;
      options.seed = kSeed;
      options.max_queries_per_vertex = budget;
      core::MatchingResult r = core::AmpcMatching(cluster, d.graph, options);
      PrintRow({d.name, budget == 0 ? "unlimited" : FmtInt(budget),
                FmtInt(r.phases),
                FmtInt(cluster.metrics().Get("kv_reads")),
                FmtDouble(cluster.SimSeconds())});
    }
  }
  PrintPaperNote(
      "Theorem 2 part 2: the n^eps truncation bounds per-vertex work at "
      "the cost of O(1/eps) repeated rounds; the practical configuration "
      "runs untruncated in a single round.");
  return 0;
}
