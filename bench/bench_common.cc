#include "bench_common.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "graph/generators.h"

namespace ampc::bench {
namespace {

struct Spec {
  const char* name;
  const char* stands_for;
  int log2_nodes;
  int64_t edges;
  double rmat_a;  // higher a = heavier degree skew (web-like)
};

// Size ordering and skew mirror Table 2: two social networks, one large
// social network, two web crawls with extreme hubs.
constexpr Spec kSpecs[] = {
    {"OK'", "com-Orkut (3.07M nodes / 234M arcs)", 15, 500'000, 0.57},
    {"TW'", "Twitter (41.6M / 2.4B)", 16, 1'200'000, 0.60},
    {"FS'", "Friendster (65.6M / 3.6B)", 17, 2'000'000, 0.57},
    {"CW'", "ClueWeb (0.978B / 74.7B)", 18, 4'000'000, 0.65},
    {"HL'", "Hyperlink2012 (3.56B / 225.8B)", 19, 6'000'000, 0.65},
};

}  // namespace

double BenchScale() {
  const char* env = std::getenv("AMPC_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0 ? scale : 1.0;
}

int Reps(const char* env_name, int default_reps) {
  const char* env = std::getenv(env_name);
  const int reps = env == nullptr ? default_reps : std::atoi(env);
  return reps > 0 ? reps : default_reps;
}

std::vector<Dataset> LoadDatasets(int max_datasets) {
  const double scale = BenchScale();
  std::vector<Dataset> datasets;
  for (const Spec& spec : kSpecs) {
    if (static_cast<int>(datasets.size()) >= max_datasets) break;
    Dataset d;
    d.name = spec.name;
    d.stands_for = spec.stands_for;
    graph::RmatOptions options;
    options.a = spec.rmat_a;
    options.b = (1.0 - spec.rmat_a) / 3.0;
    options.c = (1.0 - spec.rmat_a) / 3.0;
    d.edges = graph::GenerateRmat(
        spec.log2_nodes, static_cast<int64_t>(spec.edges * scale),
        /*seed=*/0x5eed0 + spec.log2_nodes, options);
    d.graph = graph::BuildGraph(d.edges);
    datasets.push_back(std::move(d));
  }
  return datasets;
}

void GridCell::ApplyTo(sim::ClusterConfig& config) const {
  config.placement_policy = placement;
  config.frontier.mode = frontier;
  config.batch_lookups = batch;
  config.query_cache.enabled = cache;
  config.multithreading = multithreading;
  config.pipeline_depth = depth;
  config.auto_tune.enabled = auto_tune;
}

std::vector<GridCell> ConfigGrid(const GridAxes& axes) {
  std::vector<GridCell> cells;
  for (const kv::PlacementPolicy placement : axes.placement) {
    for (const FrontierMode frontier : axes.frontier) {
      for (const bool batch : axes.batch) {
        for (const bool cache : axes.cache) {
          for (const bool multithreading : axes.multithreading) {
            for (const int depth : axes.depth) {
              for (const bool auto_tune : axes.auto_tune) {
                GridCell cell;
                cell.placement = placement;
                cell.frontier = frontier;
                cell.batch = batch;
                cell.cache = cache;
                cell.multithreading = multithreading;
                cell.depth = depth;
                cell.auto_tune = auto_tune;
                std::vector<std::string> parts;
                if (axes.placement.size() > 1) {
                  parts.push_back(kv::PlacementPolicyName(placement));
                }
                if (axes.frontier.size() > 1) {
                  parts.push_back(FrontierModeName(frontier));
                }
                if (axes.batch.size() > 1) {
                  parts.push_back(batch ? "batch" : "nobatch");
                }
                if (axes.cache.size() > 1) {
                  parts.push_back(cache ? "cache" : "nocache");
                }
                if (axes.multithreading.size() > 1) {
                  parts.push_back(multithreading ? "mt" : "nomt");
                }
                if (axes.depth.size() > 1) {
                  parts.push_back("depth" + std::to_string(depth));
                }
                if (axes.auto_tune.size() > 1) {
                  parts.push_back(auto_tune ? "auto" : "manual");
                }
                std::string label;
                for (const std::string& part : parts) {
                  if (!label.empty()) label += "+";
                  label += part;
                }
                cell.label = label.empty() ? "default" : label;
                cells.push_back(std::move(cell));
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

sim::ClusterConfig BenchConfig(int64_t num_arcs) {
  sim::ClusterConfig config;
  config.num_machines = 8;
  config.threads_per_machine = 8;
  config.query_cache.enabled = true;
  config.multithreading = true;
  config.network = kv::NetworkModel::Rdma();
  config.in_memory_threshold_arcs = std::max<int64_t>(10'000, num_arcs / 100);
  return config;
}

void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const std::string& c : columns) std::printf("%-16s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("%-16s", "----");
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& c : cells) std::printf("%-16s", c.c_str());
  std::printf("\n");
}

void PrintPaperNote(const std::string& note) {
  std::printf("# paper: %s\n", note.c_str());
}

std::string FmtInt(int64_t v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string FmtDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FmtBytes(int64_t bytes) {
  char buf[64];
  if (bytes >= (int64_t{1} << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGB",
                  static_cast<double>(bytes) / (1 << 30));
  } else if (bytes >= (1 << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= (1 << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2fKB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "B", bytes);
  }
  return buf;
}

}  // namespace ampc::bench
