// fig4_optimizations — the Figure 4 optimization grid on all six
// adaptive cores, with an auto-tuned column.
//
// The paper's Figure 4 ablates caching and multithreading on four
// algorithms; PRs 2–7 grew the optimization surface to five axes
// (batching, caching, multithreading, pipeline depth, placement policy,
// plus the frontier engine's push/pull mode), and this bench sweeps the
// full grid on every adaptive core: mis, msf, kcore, pagerank,
// connectivity, and 1-vs-2-cycle, each on a workload shaped to its
// access pattern. Alongside the hand-picked grid runs one *auto-tuned*
// job per core — ClusterConfig::auto_tune.enabled, everything else the
// stock BenchConfig — whose probe rounds are charged through the same
// simulated clock as the work they do.
//
// The run FAILS (exit 1) if, on any core:
//   * the auto-tuned job is not within kAutoTolerance (5%) of the best
//     hand-picked cell's simulated time, probe overhead included — the
//     AutoTuner's acceptance bar (ROADMAP item 5); or
//   * any cell (or the auto-tuned job) returns outputs that are not
//     bit-identical to the first cell's — every axis, the tuner
//     included, must stay strictly a cost decision.
//
// Writes BENCH_fig4.json: the per-core grid (simulated seconds and KV
// read bytes per cell, read via Metrics::DeltaSince), the best cell,
// and the auto-tuned column with its probe-round bill.
//
//   AMPC_BENCH_SCALE   scales every workload (default 1.0)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/connectivity.h"
#include "core/kcore.h"
#include "core/mis.h"
#include "core/msf.h"
#include "core/one_vs_two_cycle.h"
#include "core/pagerank.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace {

using ampc::bench::ConfigGrid;
using ampc::bench::GridAxes;
using ampc::bench::GridCell;

constexpr uint64_t kSeed = 42;
constexpr double kAutoTolerance = 1.05;

// One core's workload and output serialization. The runner executes the
// algorithm on the given cluster and returns its output as bytes — the
// bit-identity currency of the value-neutrality gate.
struct CoreSpec {
  const char* name;
  int64_t num_arcs;
  // Whether the core routes frontiers through the engine (msf, kcore,
  // pagerank, connectivity): only then does the grid sweep the
  // sparse/hybrid axis — mis and 1-vs-2-cycle would run identical
  // lookup paths under either label.
  bool frontier_core;
  std::function<std::vector<uint8_t>(ampc::sim::Cluster&)> run;
};

template <typename T>
std::vector<uint8_t> PodBytes(const std::vector<T>& values) {
  std::vector<uint8_t> out(values.size() * sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), values.data(), out.size());
  return out;
}

struct CellResult {
  std::string label;
  double sim_sec = 0;
  int64_t kv_read_bytes = 0;
};

struct RunOutcome {
  double sim_sec = 0;
  int64_t kv_read_bytes = 0;
  std::vector<uint8_t> output;
  int64_t probe_rounds = 0;
  double probe_sim_sec = 0;
  std::string tuner_summary;
};

RunOutcome RunOnce(const CoreSpec& core, const ampc::sim::ClusterConfig& config) {
  ampc::sim::Cluster cluster(config);
  // Per-variant telemetry via the snapshot/delta API (the cluster is
  // fresh, but the delta form is what phase-scoped readers use).
  const ampc::MetricsSnapshot before = cluster.metrics().Snapshot();
  RunOutcome outcome;
  outcome.output = core.run(cluster);
  const ampc::MetricsSnapshot delta = cluster.metrics().DeltaSince(before);
  outcome.sim_sec = cluster.SimSeconds();
  const auto it = delta.counters.find("kv_read_bytes");
  outcome.kv_read_bytes = it == delta.counters.end() ? 0 : it->second;
  if (cluster.auto_tuner() != nullptr) {
    outcome.probe_rounds = cluster.metrics().Get("autotune_probe_rounds");
    outcome.probe_sim_sec = cluster.metrics().GetTime("sim:autotune_probe");
    outcome.tuner_summary = cluster.auto_tuner()->DecisionSummary();
  }
  return outcome;
}

// The pruned hand-picked grid: with batching off, depth/placement/
// frontier have nothing to act on (scalar charging pays per key
// regardless), so only cache x mt vary; with batching on, the full
// cache x mt x depth x placement (x frontier, for frontier cores) cube.
std::vector<GridCell> CoreGrid(bool frontier_core) {
  GridAxes off;
  off.batch = {false};
  off.cache = {true, false};
  off.multithreading = {true, false};
  off.depth = {1};
  GridAxes on;
  on.batch = {true};
  on.cache = {true, false};
  on.multithreading = {true, false};
  on.depth = {1, 4};
  on.placement = {ampc::kv::PlacementPolicy::kHash,
                  ampc::kv::PlacementPolicy::kRange};
  if (frontier_core) {
    on.frontier = {ampc::FrontierMode::kSparse, ampc::FrontierMode::kHybrid};
  }
  std::vector<GridCell> cells;
  for (GridCell cell : ConfigGrid(off)) {
    cell.label = "nobatch+" + cell.label;
    cells.push_back(std::move(cell));
  }
  for (GridCell cell : ConfigGrid(on)) {
    cell.label = "batch+" + cell.label;
    cells.push_back(std::move(cell));
  }
  return cells;
}

}  // namespace

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  const double scale = BenchScale();
  const auto scaled = [scale](int64_t v) {
    return std::max<int64_t>(1000, static_cast<int64_t>(v * scale));
  };

  // Workloads shaped to each core's access pattern (RMAT skew for the
  // social-graph cores, dense ER for kcore's peeling, the paper's 2xk
  // double cycle for Section 5.6).
  const graph::EdgeList mis_edges =
      graph::GenerateRmat(14, scaled(100'000), /*seed=*/0x5eedf1);
  const graph::Graph mis_graph = graph::BuildGraph(mis_edges);
  const graph::EdgeList msf_base =
      graph::GenerateErdosRenyi(8'000, scaled(40'000), /*seed=*/0x5eedf2);
  const graph::WeightedEdgeList msf_edges =
      graph::MakeRandomWeighted(msf_base, /*seed=*/0x5eedf3);
  const graph::EdgeList kcore_edges =
      graph::GenerateErdosRenyi(8'000, scaled(48'000), /*seed=*/0x5eedf4);
  const graph::Graph kcore_graph = graph::BuildGraph(kcore_edges);
  const graph::EdgeList pr_edges =
      graph::GenerateRmat(13, scaled(60'000), /*seed=*/0x5eedf5);
  const graph::Graph pr_graph = graph::BuildGraph(pr_edges);
  const graph::EdgeList cc_edges =
      graph::GenerateErdosRenyi(10'000, scaled(15'000), /*seed=*/0x5eedf6);
  const graph::EdgeList cycle_edges = graph::GenerateDoubleCycle(
      std::max<int64_t>(64, static_cast<int64_t>(4'000 * scale)));
  const graph::Graph cycle_graph = graph::BuildGraph(cycle_edges);

  const CoreSpec cores[] = {
      {"mis", mis_graph.num_arcs(), false,
       [&](sim::Cluster& c) {
         return PodBytes(core::AmpcMis(c, mis_graph, kSeed).in_mis);
       }},
      {"msf", static_cast<int64_t>(msf_edges.edges.size()) * 2, true,
       [&](sim::Cluster& c) {
         return PodBytes(core::AmpcMsf(c, msf_edges).edges);
       }},
      {"kcore", kcore_graph.num_arcs(), true,
       [&](sim::Cluster& c) {
         return PodBytes(core::AmpcKCore(c, kcore_graph).coreness);
       }},
      {"pagerank", pr_graph.num_arcs(), true,
       [&](sim::Cluster& c) {
         core::PageRankMcOptions options;
         options.seed = kSeed;
         options.walks_per_node = 4;
         return PodBytes(
             core::AmpcMonteCarloPageRank(c, pr_graph, options).rank);
       }},
      {"connectivity", static_cast<int64_t>(cc_edges.edges.size()) * 2, true,
       [&](sim::Cluster& c) {
         return PodBytes(core::AmpcConnectivity(c, cc_edges).component);
       }},
      {"1v2cycle", cycle_graph.num_arcs(), false,
       [&](sim::Cluster& c) {
         const core::CycleResult r = core::AmpcOneVsTwoCycle(c, cycle_graph);
         return PodBytes(std::vector<int32_t>{r.num_cycles});
       }},
  };

  struct CoreReport {
    std::string name;
    std::vector<CellResult> grid;
    std::string best_label;
    double best_sim = 0;
    double worst_sim = 0;
    double auto_sim = 0;
    int64_t auto_probe_rounds = 0;
    double auto_probe_sim = 0;
  };
  std::vector<CoreReport> reports;

  for (const CoreSpec& core : cores) {
    CoreReport report;
    report.name = core.name;
    std::vector<uint8_t> reference_output;
    bool have_reference = false;
    for (const GridCell& cell : CoreGrid(core.frontier_core)) {
      sim::ClusterConfig config = BenchConfig(core.num_arcs);
      cell.ApplyTo(config);
      const RunOutcome outcome = RunOnce(core, config);
      if (!have_reference) {
        reference_output = outcome.output;
        have_reference = true;
        report.best_sim = report.worst_sim = outcome.sim_sec;
        report.best_label = cell.label;
      } else {
        if (outcome.output != reference_output) {
          std::fprintf(stderr,
                       "FATAL: %s cell '%s' changed the output — "
                       "optimization toggles must be cost-only\n",
                       core.name, cell.label.c_str());
          return 1;
        }
        if (outcome.sim_sec < report.best_sim) {
          report.best_sim = outcome.sim_sec;
          report.best_label = cell.label;
        }
        report.worst_sim = std::max(report.worst_sim, outcome.sim_sec);
      }
      report.grid.push_back(
          CellResult{cell.label, outcome.sim_sec, outcome.kv_read_bytes});
    }

    // The auto-tuned column: stock config + the tuner; probe rounds are
    // real rounds on the same simulated clock.
    sim::ClusterConfig auto_config = BenchConfig(core.num_arcs);
    auto_config.auto_tune.enabled = true;
    const RunOutcome auto_outcome = RunOnce(core, auto_config);
    if (auto_outcome.output != reference_output) {
      std::fprintf(stderr,
                   "FATAL: %s auto-tuned run changed the output — tuning "
                   "must be strictly a cost decision\n",
                   core.name);
      return 1;
    }
    report.auto_sim = auto_outcome.sim_sec;
    report.auto_probe_rounds = auto_outcome.probe_rounds;
    report.auto_probe_sim = auto_outcome.probe_sim_sec;
    reports.push_back(std::move(report));

    std::printf("[%s] tuner decisions:\n%s\n", core.name,
                auto_outcome.tuner_summary.c_str());
  }

  PrintHeader(
      "Figure 4: optimization grid + auto-tuned column (simulated seconds)",
      {"core", "best cell", "best", "worst", "auto", "auto/best",
       "probe rounds"});
  bool failed = false;
  for (const CoreReport& report : reports) {
    const double ratio = report.auto_sim / report.best_sim;
    PrintRow({report.name, report.best_label, FmtDouble(report.best_sim, 4),
              FmtDouble(report.worst_sim, 4), FmtDouble(report.auto_sim, 4),
              FmtDouble(ratio, 4), FmtInt(report.auto_probe_rounds)});
    if (report.auto_sim > kAutoTolerance * report.best_sim) {
      std::fprintf(stderr,
                   "FATAL: %s auto-tuned run %.4fs exceeds %.0f%% of the "
                   "best hand-picked cell '%s' (%.4fs), probe overhead "
                   "included\n",
                   report.name.c_str(), report.auto_sim,
                   (kAutoTolerance - 1.0) * 100.0, report.best_label.c_str(),
                   report.best_sim);
      failed = true;
    }
  }
  PrintPaperNote(
      "Figure 4 ablates caching and multithreading; the grown grid adds "
      "batching, pipeline depth, placement, and frontier mode. The "
      "auto-tuned column lands within a few percent of the best "
      "hand-picked cell on every core without a human sweeping the grid "
      "(ROADMAP item 5), with probe rounds charged on the same clock.");
  if (failed) return 1;

  FILE* out = std::fopen("BENCH_fig4.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fig4.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"fig4_optimizations\",\n"
               "  \"auto_tolerance\": %.2f,\n"
               "  \"cores\": [\n",
               kAutoTolerance);
  for (size_t c = 0; c < reports.size(); ++c) {
    const CoreReport& report = reports[c];
    std::fprintf(out,
                 "    {\"core\": \"%s\", \"best_label\": \"%s\", "
                 "\"best_sim_sec\": %.9f, \"worst_sim_sec\": %.9f, "
                 "\"auto_sim_sec\": %.9f, \"auto_over_best\": %.4f, "
                 "\"auto_probe_rounds\": %lld, "
                 "\"auto_probe_sim_sec\": %.9f,\n"
                 "     \"grid\": [\n",
                 report.name.c_str(), report.best_label.c_str(),
                 report.best_sim, report.worst_sim, report.auto_sim,
                 report.auto_sim / report.best_sim,
                 static_cast<long long>(report.auto_probe_rounds),
                 report.auto_probe_sim);
    for (size_t i = 0; i < report.grid.size(); ++i) {
      const CellResult& cell = report.grid[i];
      std::fprintf(out,
                   "      {\"label\": \"%s\", \"sim_sec\": %.9f, "
                   "\"kv_read_bytes\": %lld}%s\n",
                   cell.label.c_str(), cell.sim_sec,
                   static_cast<long long>(cell.kv_read_bytes),
                   i + 1 < report.grid.size() ? "," : "");
    }
    std::fprintf(out, "     ]}%s\n", c + 1 < reports.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_fig4.json\n");
  return 0;
}
