// Reproduces Figure 4: the effect of the caching and multithreading
// optimizations on the AMPC MIS implementation — simulated running time
// of the four variants, reported as slowdown relative to the fastest.
#include <algorithm>

#include "bench_common.h"

#include "core/mis.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  constexpr uint64_t kSeed = 42;

  struct Variant {
    const char* name;
    bool caching;
    bool multithreading;
  };
  const Variant variants[] = {
      {"Cache+MT", true, true},
      {"OnlyMT", false, true},
      {"OnlyCache", true, false},
      {"Unoptimized", false, false},
  };

  PrintHeader("Figure 4: AMPC MIS optimization ablation (slowdown vs fastest)",
              {"Dataset", "Cache+MT", "OnlyMT", "OnlyCache", "Unopt",
               "KVbytes C/NC"});
  for (const Dataset& d : LoadDatasets(3)) {
    double times[4];
    int64_t kv_bytes_cached = 0, kv_bytes_uncached = 0;
    for (int i = 0; i < 4; ++i) {
      sim::ClusterConfig config = BenchConfig(d.graph.num_arcs());
      config.query_cache.enabled = variants[i].caching;
      config.multithreading = variants[i].multithreading;
      sim::Cluster cluster(config);
      core::AmpcMis(cluster, d.graph, kSeed);
      times[i] = cluster.SimSeconds();
      if (i == 0) kv_bytes_cached = cluster.metrics().Get("kv_read_bytes");
      if (i == 1) kv_bytes_uncached = cluster.metrics().Get("kv_read_bytes");
    }
    const double fastest = *std::min_element(times, times + 4);
    PrintRow({d.name, FmtDouble(times[0] / fastest),
              FmtDouble(times[1] / fastest), FmtDouble(times[2] / fastest),
              FmtDouble(times[3] / fastest),
              FmtDouble(static_cast<double>(kv_bytes_uncached) /
                        std::max<int64_t>(1, kv_bytes_cached))});
  }
  PrintPaperNote(
      "Figure 4: both optimizations help; fastest = caching+MT. "
      "Multithreading alone 1.26-2.59x over unoptimized, caching alone "
      "1.47-3.99x; caching cuts KV bytes 1.96-12.2x.");
  return 0;
}
