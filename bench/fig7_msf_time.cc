// Reproduces Figure 7: running-time breakdown for the AMPC MSF
// implementation (SortGraph, KV-Write, PrimSearch, PointerJump, Contract)
// against the MPC Boruvka baseline, on degree-weighted inputs
// (w(u,v) = deg(u) + deg(v), the paper's Section 5.2 weighting).
#include "bench_common.h"

#include "baselines/boruvka.h"
#include "core/msf.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  constexpr uint64_t kSeed = 42;

  PrintHeader(
      "Figure 7: MSF time breakdown (simulated seconds)",
      {"Dataset", "SortGraph", "KV-Write", "PrimSearch", "PointerJump",
       "Contract", "AMPC-tot", "MPC-tot", "Speedup"});
  for (const Dataset& d : LoadDatasets()) {
    graph::WeightedEdgeList weighted =
        graph::MakeDegreeWeighted(d.edges, d.graph);

    sim::Cluster ampc_cluster(BenchConfig(d.graph.num_arcs()));
    core::MsfOptions options;
    options.seed = kSeed;
    core::AmpcMsf(ampc_cluster, weighted, options);
    Metrics& am = ampc_cluster.metrics();
    const double sort = am.GetTime("sim:SortGraph");
    const double kv_write = am.GetTime("sim:KV-Write") +
                            am.GetTime("sim:PointerJumpBuild");
    const double prim = am.GetTime("sim:PrimSearch");
    const double jump = am.GetTime("sim:PointerJump");
    const double contract =
        am.GetTime("sim:Contract") + am.GetTime("sim:Combine");
    const double ampc_total = ampc_cluster.SimSeconds();

    sim::Cluster mpc_cluster(BenchConfig(d.graph.num_arcs()));
    baselines::MpcBoruvkaMsf(mpc_cluster, weighted, kSeed);
    const double mpc_total = mpc_cluster.SimSeconds();

    PrintRow({d.name, FmtDouble(sort), FmtDouble(kv_write), FmtDouble(prim),
              FmtDouble(jump), FmtDouble(contract), FmtDouble(ampc_total),
              FmtDouble(mpc_total), FmtDouble(mpc_total / ampc_total)});
  }
  PrintPaperNote(
      "Figure 7: AMPC MSF 2.6-7.19x faster than MPC Boruvka; graph "
      "contraction is the largest AMPC fraction, pointer jumping ~10%, "
      "max pointer-jump chain length observed 33.");
  return 0;
}
