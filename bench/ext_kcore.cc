// Extension experiment (paper Section 5.7, "Sub-structure Extraction"):
// core decomposition with the AMPC engine (adjacency staged in the DHT
// once, value rounds are shuffle-free) against the MPC dataflow baseline
// (one shuffle per h-index iteration). Both run the identical fixpoint,
// so the contrast isolates what the DHT buys for peeling-style workloads.
#include "bench_common.h"

#include "baselines/mpc_kcore.h"
#include "common/logging.h"
#include "core/kcore.h"
#include "seq/kcore.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;

  PrintHeader("Extension: k-core decomposition (Section 5.7)",
              {"Dataset", "Engine", "Iters", "Shuffles", "Shuf-bytes",
               "KV-bytes", "Sim(s)", "Degeneracy"});
  for (const Dataset& d : LoadDatasets()) {
    std::vector<int32_t> reference;
    {
      sim::Cluster cluster(BenchConfig(d.graph.num_arcs()));
      core::KCoreResult result = core::AmpcKCore(cluster, d.graph);
      reference = result.coreness;
      PrintRow({d.name, "AMPC", FmtInt(result.iterations),
                FmtInt(cluster.metrics().Get("shuffles")),
                FmtBytes(cluster.metrics().Get("shuffle_bytes")),
                FmtBytes(cluster.metrics().Get("kv_read_bytes") +
                         cluster.metrics().Get("kv_write_bytes")),
                FmtDouble(cluster.SimSeconds()),
                FmtInt(seq::Degeneracy(result.coreness))});
    }
    {
      sim::Cluster cluster(BenchConfig(d.graph.num_arcs()));
      baselines::MpcKCoreResult result =
          baselines::MpcKCore(cluster, d.graph);
      AMPC_CHECK(result.coreness == reference)
          << "MPC coreness diverged from AMPC on " << d.name;
      PrintRow({d.name, "MPC", FmtInt(result.iterations),
                FmtInt(cluster.metrics().Get("shuffles")),
                FmtBytes(cluster.metrics().Get("shuffle_bytes")),
                FmtBytes(cluster.metrics().Get("kv_read_bytes") +
                         cluster.metrics().Get("kv_write_bytes")),
                FmtDouble(cluster.SimSeconds()), ""});
    }
  }
  PrintPaperNote(
      "Section 5.7 poses k-core as future AMPC work. Expected shape: "
      "identical iteration counts, but AMPC uses 1 shuffle total while "
      "MPC pays one per iteration, mirroring the MIS/MM round contrast.");
  return 0;
}
