// Reproduces the Section 5.3 baseline-selection experiment: "We also
// considered an MPC implementation of the AMPC algorithm as a potential
// baseline, in which each step of querying the key-value store was mapped
// to a shuffle. We observed that this algorithm requires over 1000
// shuffles even for the Orkut and Friendster graphs, and is over 50x
// slower than the rootset-based algorithm."
//
// Three engines, same MIS: the AMPC implementation (1 shuffle), the
// rootset MPC baseline (tens of shuffles), and the shuffle-per-query MPC
// simulation of the AMPC algorithm (longest query chain = thousands).
#include "bench_common.h"

#include "baselines/ampc_simulation.h"
#include "baselines/rootset_mis.h"
#include "common/logging.h"
#include "core/mis.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  constexpr uint64_t kSeed = 42;

  PrintHeader("Section 5.3: MPC simulation of the AMPC MIS algorithm",
              {"Dataset", "Engine", "Shuffles", "Shuf-bytes", "Sim(s)",
               "vs-rootset"});
  // The paper ran this comparison on its smaller graphs (Orkut,
  // Friendster); mirror that with the first stand-ins.
  for (const Dataset& d : LoadDatasets(2)) {
    std::vector<uint8_t> reference;
    double rootset_sim = 0;
    {
      sim::Cluster cluster(BenchConfig(d.graph.num_arcs()));
      core::MisResult mis = core::AmpcMis(cluster, d.graph, kSeed);
      reference = mis.in_mis;
      PrintRow({d.name, "AMPC",
                FmtInt(cluster.metrics().Get("shuffles")),
                FmtBytes(cluster.metrics().Get("shuffle_bytes")),
                FmtDouble(cluster.SimSeconds()), ""});
    }
    {
      sim::Cluster cluster(BenchConfig(d.graph.num_arcs()));
      baselines::RootsetMisResult mis =
          baselines::MpcRootsetMis(cluster, d.graph, kSeed);
      AMPC_CHECK(mis.in_mis == reference);
      rootset_sim = cluster.SimSeconds();
      PrintRow({d.name, "MPC rootset",
                FmtInt(cluster.metrics().Get("shuffles")),
                FmtBytes(cluster.metrics().Get("shuffle_bytes")),
                FmtDouble(cluster.SimSeconds()), "1.00x"});
    }
    {
      sim::Cluster cluster(BenchConfig(d.graph.num_arcs()));
      baselines::SimulatedAmpcMisResult sim_mis =
          baselines::MpcSimulatedAmpcMis(cluster, d.graph, kSeed);
      AMPC_CHECK(sim_mis.in_mis == reference);
      PrintRow({d.name, "MPC sim-AMPC",
                FmtInt(cluster.metrics().Get("shuffles")),
                FmtBytes(cluster.metrics().Get("shuffle_bytes")),
                FmtDouble(cluster.SimSeconds()),
                FmtDouble(cluster.SimSeconds() / rootset_sim) + "x"});
    }
  }
  PrintPaperNote(
      "Section 5.3: the shuffle-per-query simulation needs >1000 shuffles "
      "even on the smaller graphs and is >50x slower than the rootset "
      "baseline — which is why the rootset algorithm is the MPC baseline "
      "throughout the paper.");
  return 0;
}
