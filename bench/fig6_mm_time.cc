// Reproduces Figure 6: normalized running times for the AMPC and MPC
// Maximal Matching implementations with the AMPC phase breakdown
// (PermuteGraph shuffle, KV-Write, IsInMM search).
#include "bench_common.h"

#include "baselines/rootset_matching.h"
#include "core/matching.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  constexpr uint64_t kSeed = 42;

  PrintHeader("Figure 6: Maximal Matching time breakdown (simulated seconds)",
              {"Dataset", "PermuteGraph", "KV-Write", "IsInMM", "AMPC-total",
               "MPC-total", "Speedup"});
  for (const Dataset& d : LoadDatasets()) {
    sim::Cluster ampc_cluster(BenchConfig(d.graph.num_arcs()));
    core::MatchingOptions options;
    options.seed = kSeed;
    core::AmpcMatching(ampc_cluster, d.graph, options);
    Metrics& am = ampc_cluster.metrics();
    const double permute = am.GetTime("sim:PermuteGraph");
    const double kv_write = am.GetTime("sim:KV-Write");
    const double search = am.GetTime("sim:IsInMM");
    const double ampc_total = ampc_cluster.SimSeconds();

    sim::Cluster mpc_cluster(BenchConfig(d.graph.num_arcs()));
    baselines::MpcRootsetMatching(mpc_cluster, d.graph, kSeed);
    const double mpc_total = mpc_cluster.SimSeconds();

    PrintRow({d.name, FmtDouble(permute), FmtDouble(kv_write),
              FmtDouble(search), FmtDouble(ampc_total),
              FmtDouble(mpc_total), FmtDouble(mpc_total / ampc_total)});
  }
  PrintPaperNote(
      "Figure 6: AMPC MM 1.16-1.72x faster than MPC MM — a smaller gap "
      "than MIS because the permuted graph keeps all edges (bigger "
      "shuffle) and IsInMM issues more queries.");
  return 0;
}
