// Reproduces the Section 5.7 negative result on connected components:
// "We tried to apply our MSF algorithm over a graph with random edge
// weights, but were not able to obtain significant speedups over this
// MPC result [local contraction] due to the high cost of graph
// contraction on the first step (contracting the initial graph takes
// about 2/3 of the overall running time)."
//
// Runs MSF-based AMPC connectivity (random unit-range weights) against
// the local-contraction MPC baseline on the real-graph stand-ins, and
// reports what fraction of AMPC time the contraction step eats.
#include "bench_common.h"

#include "baselines/local_contraction.h"
#include "common/logging.h"
#include "core/connectivity.h"
#include "graph/stats.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  constexpr uint64_t kSeed = 42;

  PrintHeader("Section 5.7: connected components via MSF vs MPC",
              {"Dataset", "Engine", "CC", "Shuffles", "Sim(s)",
               "Contract-frac"});
  for (const Dataset& d : LoadDatasets()) {
    int64_t reference = 0;
    {
      sim::Cluster cluster(BenchConfig(d.graph.num_arcs()));
      core::MsfOptions options;
      options.seed = kSeed;
      core::ConnectivityResult cc =
          core::AmpcConnectivity(cluster, d.edges, options);
      reference = cc.num_components;
      const double contract =
          cluster.metrics().GetTime("sim:Contract") +
          cluster.metrics().GetTime("sim:PointerJumpBuild") +
          cluster.metrics().GetTime("sim:Combine");
      PrintRow({d.name, "AMPC (MSF)", FmtInt(cc.num_components),
                FmtInt(cluster.metrics().Get("shuffles")),
                FmtDouble(cluster.SimSeconds()),
                FmtDouble(contract / cluster.SimSeconds(), 2)});
    }
    {
      sim::Cluster cluster(BenchConfig(d.graph.num_arcs()));
      baselines::LocalContractionResult cc =
          baselines::MpcLocalContractionCC(cluster, d.edges, kSeed);
      AMPC_CHECK_EQ(cc.num_components, reference)
          << "engines disagree on " << d.name;
      PrintRow({d.name, "MPC local-contr", FmtInt(cc.num_components),
                FmtInt(cluster.metrics().Get("shuffles")),
                FmtDouble(cluster.SimSeconds()), ""});
    }
  }
  PrintPaperNote(
      "Section 5.7 reports NO significant AMPC speedup for general "
      "connectivity because graph contraction ate ~2/3 of their time. "
      "DEVIATION: under this library's cost model the contraction share "
      "is smaller (~16-38%, largest single phase on the small graphs), "
      "so AMPC does come out ahead here. The paper's negative result is "
      "substrate-specific (their production shuffle was costlier "
      "relative to KV reads than our simulated one); the reproducible "
      "part is that contraction, not the Prim search, is the AMPC "
      "bottleneck for connectivity.");
  return 0;
}
