// micro_degrade — graceful degradation under correlated failures,
// failure warnings, and stragglers: proactive drain + live shard
// migration vs reactive recovery, domain-aware vs domain-oblivious
// replica placement under rack-level kills, and hedged lookups vs
// waiting out slow machines.
//
// The paper's preemption argument (Sections 5.1/5.7) is that AMPC jobs
// survive machine loss at bounded cost. This bench stresses the three
// ways real clusters degrade that independent single-machine kills
// don't capture:
//   1. failures arrive with *warnings* (preemption notices, health
//      alarms): a warned machine can drain — migrate its primary
//      shards to their least-loaded replicas at shuffle bandwidth —
//      so the kill, when it lands, loses zero in-flight work;
//   2. failures are *correlated* (a rack/fault domain dies at once):
//      domain-oblivious replica placement can lose every copy of a
//      shard in one blast, while domain-aware chained declustering
//      keeps each ReplicaSet spanning domains;
//   3. machines *straggle* without dying: a seeded straggler model
//      slows a machine's lookups for a round, and hedged lookups
//      re-issue the trip to a replica after a timeout, taking
//      whichever answer lands first (both trips are charged).
//
// One job — the adaptive cores MIS, maximal matching and connected
// components back to back on one stand-in graph — runs under each
// treatment, and the run FAILS (exit 1) unless
//   (a) proactive drain strictly beats reactive recovery at every
//       warned-kill rate (and kills actually landed, and drains
//       actually ran — the sweep is vacuous otherwise),
//   (b) domain-aware placement survives rack loss that wipes whole
//       ReplicaSets under naive placement (naive sees wipeouts, aware
//       sees none, and aware is strictly cheaper),
//   (c) hedging strictly cuts simulated time under stragglers (and
//       slow trips, hedges, and hedge wins were all nonzero), and
//   (d) every cell's outputs are bit-identical to the fault-free run:
//       degradation is a cost event, never a correctness event.
// Everything is a pure function of the seeds, so the gates are
// deterministic: CI regression-tests the degradation cost model here.
//
//   AMPC_BENCH_SCALE   scales the graph (default 1.0 => 4096 nodes)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/connectivity.h"
#include "core/matching.h"
#include "core/mis.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "sim/cluster.h"

namespace {

constexpr int kMachines = 8;
constexpr uint64_t kAlgoSeed = 17;
constexpr uint64_t kKillSeed = 42;
constexpr int kMachinesPerDomain = 4;  // 8 machines => 2 fault domains

struct JobOutputs {
  std::vector<uint8_t> mis;
  std::vector<ampc::graph::NodeId> matching;
  std::vector<ampc::graph::NodeId> components;

  bool operator==(const JobOutputs&) const = default;
};

// One treatment cell: the fault/straggler shape layered onto an
// otherwise identical cluster.
struct Treatment {
  const char* part;   // "drain", "domain", or "hedge"
  const char* name;
  double fault_rate = 0.0;
  double warning_lead = 0.0;
  int replication = 1;
  double domain_fault_rate = 0.0;
  bool domain_aware = true;
  double slow_rate = 0.0;
  bool hedge = false;
};

struct CellResult {
  JobOutputs outputs;
  double sim_sec = 0;
  double recovery_sec = 0;
  double drain_sec = 0;
  int64_t machines_lost = 0;
  int64_t domains_lost = 0;
  int64_t machines_drained = 0;
  int64_t shards_migrated = 0;
  int64_t migration_bytes = 0;
  int64_t replica_wipeouts = 0;
  int64_t slow_trips = 0;
  int64_t hedged_trips = 0;
  int64_t hedge_wins = 0;
};

// One job: three adaptive cores back to back on one cluster, so the
// kill/warning/straggler schedule sees scalar lookups, batched and
// pipelined frontiers, write phases, and shuffles in one simulated
// timeline.
CellResult RunJob(const ampc::graph::EdgeList& edges,
                  const ampc::graph::Graph& g, const Treatment& t) {
  ampc::sim::ClusterConfig config;
  config.num_machines = kMachines;
  config.threads_per_machine = 4;
  config.faults.fault_seed = kKillSeed;
  config.faults.fault_rate_per_machine_sec = t.fault_rate;
  config.faults.warning_lead_sec = t.warning_lead;
  config.faults.replication = t.replication;
  config.faults.machines_per_domain =
      t.domain_fault_rate > 0.0 ? kMachinesPerDomain : 0;
  config.faults.domain_fault_rate_sec = t.domain_fault_rate;
  config.faults.domain_aware_placement = t.domain_aware;
  config.faults.slow_machine_rate = t.slow_rate;
  config.faults.hedge_lookups = t.hedge;
  ampc::sim::Cluster cluster(config);

  CellResult cell;
  cell.outputs.mis = ampc::core::AmpcMis(cluster, g, kAlgoSeed).in_mis;
  ampc::core::MatchingOptions matching_options;
  matching_options.seed = kAlgoSeed;
  cell.outputs.matching =
      ampc::core::AmpcMatching(cluster, g, matching_options).partner;
  cell.outputs.components =
      ampc::core::AmpcConnectivity(cluster, edges).component;

  cell.sim_sec = cluster.SimSeconds();
  cell.recovery_sec = cluster.metrics().GetTime("sim:recovery");
  cell.drain_sec = cluster.metrics().GetTime("sim:drain");
  cell.machines_lost = cluster.metrics().Get("machines_lost");
  cell.domains_lost = cluster.metrics().Get("domains_lost");
  cell.machines_drained = cluster.metrics().Get("machines_drained");
  cell.shards_migrated = cluster.metrics().Get("shards_migrated");
  cell.migration_bytes = cluster.metrics().Get("kv_migration_bytes");
  cell.replica_wipeouts = cluster.metrics().Get("replica_wipeouts");
  cell.slow_trips = cluster.metrics().Get("kv_slow_trips");
  cell.hedged_trips = cluster.metrics().Get("kv_hedged_trips");
  cell.hedge_wins = cluster.metrics().Get("kv_hedge_wins");
  return cell;
}

}  // namespace

int main() {
  const double scale = ampc::bench::BenchScale();
  const int64_t nodes =
      std::max<int64_t>(256, static_cast<int64_t>(4096 * scale));
  const int64_t num_edges =
      std::max<int64_t>(1024, static_cast<int64_t>(24576 * scale));
  int log2_nodes = 1;
  while ((int64_t{1} << log2_nodes) < nodes) ++log2_nodes;
  const ampc::graph::EdgeList edges =
      ampc::graph::GenerateRmat(log2_nodes, num_edges, kAlgoSeed);
  const ampc::graph::Graph g = ampc::graph::BuildGraph(edges);

  std::printf(
      "micro_degrade: %lld nodes, %lld arcs, %d machines, "
      "%d per domain, kill seed %llu\n",
      static_cast<long long>(g.num_nodes()),
      static_cast<long long>(g.num_arcs()), kMachines, kMachinesPerDomain,
      static_cast<unsigned long long>(kKillSeed));

  // The fault-free reference: the bit-identity baseline for gate (d).
  const Treatment kReference = {"reference", "fault-free"};
  const CellResult reference = RunJob(edges, g, kReference);

  std::vector<Treatment> treatments;
  // Part 1 — warned kills at replication 1: reactive recovery has
  // nothing persisted and restarts the whole job; proactive drain
  // migrates the warned machine's shards and loses nothing. The rates
  // match micro_churn's sweep (higher rates overflow the
  // nanosecond-resolution timers on the unprotected side).
  const double kWarnedRates[] = {0.25, 0.5, 1.0};
  for (const double rate : kWarnedRates) {
    treatments.push_back({"drain", "reactive", rate, 0.0});
    treatments.push_back({"drain", "drain", rate, 0.05});
  }
  // Part 2 — rack-level kills at replication 2: the same correlated
  // domain-kill stream against domain-oblivious ("naive") and
  // domain-aware replica placement. The job runs well under a simulated
  // second, so the per-domain rate has to be high for a couple of rack
  // kills to actually land.
  const double kDomainRate = 4.0;
  treatments.push_back(
      {"domain", "naive", 0.0, 0.0, 2, kDomainRate, false});
  treatments.push_back(
      {"domain", "aware", 0.0, 0.0, 2, kDomainRate, true});
  // Part 3 — stragglers at replication 2, no kills: a quarter of
  // (round, machine) pairs run lookups 4x slow; hedging re-issues the
  // timed-out trip to the shard's first replica.
  const double kSlowRate = 0.25;
  treatments.push_back(
      {"hedge", "no-hedge", 0.0, 0.0, 2, 0.0, true, kSlowRate, false});
  treatments.push_back(
      {"hedge", "hedged", 0.0, 0.0, 2, 0.0, true, kSlowRate, true});

  struct GridRow {
    const Treatment* treatment;
    CellResult cell;
  };
  std::vector<GridRow> grid;
  for (const Treatment& t : treatments) {
    grid.push_back(GridRow{&t, RunJob(edges, g, t)});
  }

  ampc::bench::PrintHeader(
      "micro_degrade: drain vs reactive, domain-aware vs naive, hedged "
      "vs not",
      {"part", "treatment", "rate", "sim sec", "lost", "drained",
       "migrated", "wipeouts", "hedge wins"});
  for (const GridRow& row : grid) {
    const Treatment& t = *row.treatment;
    ampc::bench::PrintRow(
        {t.part, t.name,
         ampc::bench::FmtDouble(
             t.fault_rate + t.domain_fault_rate + t.slow_rate, 2),
         ampc::bench::FmtDouble(row.cell.sim_sec, 4),
         ampc::bench::FmtInt(row.cell.machines_lost),
         ampc::bench::FmtInt(row.cell.machines_drained),
         ampc::bench::FmtInt(row.cell.shards_migrated),
         ampc::bench::FmtInt(row.cell.replica_wipeouts),
         ampc::bench::FmtInt(row.cell.hedge_wins)});
  }
  ampc::bench::PrintPaperNote(
      "graceful degradation extends the preemption story (Section 5.7): "
      "a warned machine drains its shards ahead of the kill instead of "
      "replaying lost work, replica placement that spans fault domains "
      "survives rack loss that wipes co-located copies, and hedged "
      "lookups bound the tail a straggling machine adds to every "
      "latency-bearing round trip");

  // Gate (d): outputs never move — every cell bit-identical to the
  // fault-free reference.
  for (const GridRow& row : grid) {
    if (!(row.cell.outputs == reference.outputs)) {
      std::fprintf(stderr,
                   "FATAL: outputs diverged (part %s, treatment %s) — "
                   "degradation must never be a correctness event\n",
                   row.treatment->part, row.treatment->name);
      return 1;
    }
  }

  auto find = [&](const char* part, const char* name,
                  double rate) -> const CellResult& {
    for (const GridRow& row : grid) {
      if (std::string(row.treatment->part) == part &&
          std::string(row.treatment->name) == name &&
          row.treatment->fault_rate == rate) {
        return row.cell;
      }
    }
    std::abort();
  };

  // Gate (a): drain strictly beats reactive at every warned-kill rate,
  // non-vacuously.
  for (const double rate : kWarnedRates) {
    const CellResult& reactive = find("drain", "reactive", rate);
    const CellResult& drain = find("drain", "drain", rate);
    if (reactive.machines_lost == 0 || drain.machines_lost == 0 ||
        drain.machines_drained == 0 || drain.shards_migrated == 0) {
      std::fprintf(
          stderr,
          "FATAL: vacuous drain sweep at rate %.2f (reactive lost "
          "%lld, drain lost %lld, drained %lld, migrated %lld)\n",
          rate, static_cast<long long>(reactive.machines_lost),
          static_cast<long long>(drain.machines_lost),
          static_cast<long long>(drain.machines_drained),
          static_cast<long long>(drain.shards_migrated));
      return 1;
    }
    if (drain.sim_sec >= reactive.sim_sec) {
      std::fprintf(stderr,
                   "FATAL: proactive drain did not strictly beat "
                   "reactive recovery at rate %.2f (%.4f vs %.4f "
                   "simulated seconds)\n",
                   rate, drain.sim_sec, reactive.sim_sec);
      return 1;
    }
  }

  // Gate (b): under the same rack-kill stream, naive placement loses
  // whole ReplicaSets and pays for it; domain-aware placement never
  // does and is strictly cheaper.
  const CellResult& naive = find("domain", "naive", 0.0);
  const CellResult& aware = find("domain", "aware", 0.0);
  if (naive.domains_lost == 0 || aware.domains_lost == 0) {
    std::fprintf(stderr,
                 "FATAL: vacuous domain sweep (naive lost %lld "
                 "domains, aware %lld) — raise the domain rate\n",
                 static_cast<long long>(naive.domains_lost),
                 static_cast<long long>(aware.domains_lost));
    return 1;
  }
  if (naive.replica_wipeouts == 0) {
    std::fprintf(stderr,
                 "FATAL: naive placement survived every rack kill — "
                 "the domain sweep shows nothing\n");
    return 1;
  }
  if (aware.replica_wipeouts != 0) {
    std::fprintf(stderr,
                 "FATAL: domain-aware placement lost %lld whole "
                 "ReplicaSets — SpansDomains is not holding\n",
                 static_cast<long long>(aware.replica_wipeouts));
    return 1;
  }
  if (aware.sim_sec >= naive.sim_sec) {
    std::fprintf(stderr,
                 "FATAL: domain-aware placement did not strictly beat "
                 "naive under rack kills (%.4f vs %.4f simulated "
                 "seconds)\n",
                 aware.sim_sec, naive.sim_sec);
    return 1;
  }

  // Gate (c): hedging strictly cuts the straggler tail, non-vacuously.
  const CellResult& no_hedge = find("hedge", "no-hedge", 0.0);
  const CellResult& hedged = find("hedge", "hedged", 0.0);
  if (no_hedge.slow_trips == 0 || hedged.hedged_trips == 0 ||
      hedged.hedge_wins == 0) {
    std::fprintf(stderr,
                 "FATAL: vacuous straggler sweep (slow %lld, hedged "
                 "%lld, wins %lld)\n",
                 static_cast<long long>(no_hedge.slow_trips),
                 static_cast<long long>(hedged.hedged_trips),
                 static_cast<long long>(hedged.hedge_wins));
    return 1;
  }
  if (hedged.sim_sec >= no_hedge.sim_sec) {
    std::fprintf(stderr,
                 "FATAL: hedging did not strictly beat waiting out "
                 "stragglers (%.4f vs %.4f simulated seconds)\n",
                 hedged.sim_sec, no_hedge.sim_sec);
    return 1;
  }

  FILE* out = std::fopen("BENCH_degrade.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_degrade.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"micro_degrade\",\n"
               "  \"nodes\": %lld,\n"
               "  \"edges\": %lld,\n"
               "  \"machines\": %d,\n"
               "  \"machines_per_domain\": %d,\n"
               "  \"kill_seed\": %llu,\n"
               "  \"fault_free_sim_sec\": %.9f,\n"
               "  \"grid\": [\n",
               static_cast<long long>(g.num_nodes()),
               static_cast<long long>(g.num_arcs()), kMachines,
               kMachinesPerDomain,
               static_cast<unsigned long long>(kKillSeed),
               reference.sim_sec);
  for (size_t i = 0; i < grid.size(); ++i) {
    const GridRow& row = grid[i];
    const Treatment& t = *row.treatment;
    std::fprintf(
        out,
        "    {\"part\": \"%s\", \"treatment\": \"%s\", "
        "\"fault_rate\": %.2f, \"domain_fault_rate\": %.2f, "
        "\"slow_machine_rate\": %.2f, \"replication\": %d, "
        "\"sim_sec\": %.9f, \"recovery_sec\": %.9f, "
        "\"drain_sec\": %.9f, \"machines_lost\": %lld, "
        "\"domains_lost\": %lld, \"machines_drained\": %lld, "
        "\"shards_migrated\": %lld, \"kv_migration_bytes\": %lld, "
        "\"replica_wipeouts\": %lld, \"kv_slow_trips\": %lld, "
        "\"kv_hedged_trips\": %lld, \"kv_hedge_wins\": %lld, "
        "\"outputs_identical\": true}%s\n",
        t.part, t.name, t.fault_rate, t.domain_fault_rate, t.slow_rate,
        t.replication, row.cell.sim_sec, row.cell.recovery_sec,
        row.cell.drain_sec, static_cast<long long>(row.cell.machines_lost),
        static_cast<long long>(row.cell.domains_lost),
        static_cast<long long>(row.cell.machines_drained),
        static_cast<long long>(row.cell.shards_migrated),
        static_cast<long long>(row.cell.migration_bytes),
        static_cast<long long>(row.cell.replica_wipeouts),
        static_cast<long long>(row.cell.slow_trips),
        static_cast<long long>(row.cell.hedged_trips),
        static_cast<long long>(row.cell.hedge_wins),
        i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_degrade.json\n");
  return 0;
}
