// Reproduces Section 5.6: AMPC-1-vs-2-Cycle vs the MPC local-contraction
// connectivity baseline on a family of 2xk cycle graphs — speedups,
// shuffle counts, MPC iteration counts and per-iteration shrink factor.
#include <cmath>

#include "bench_common.h"

#include "baselines/local_contraction.h"
#include "core/one_vs_two_cycle.h"
#include "graph/generators.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  constexpr uint64_t kSeed = 42;

  PrintHeader("Section 5.6: 1-vs-2-Cycle, AMPC vs MPC local contraction",
              {"k", "AMPC-shuf", "MPC-shuf", "MPC-iters", "Shrink/iter",
               "AMPC-sim(s)", "MPC-sim(s)", "Speedup"});
  const double scale = BenchScale();
  for (int64_t base_k : {50'000, 200'000, 800'000, 3'200'000}) {
    const int64_t k = static_cast<int64_t>(base_k * scale);
    graph::EdgeList list = graph::GenerateDoubleCycle(k);
    graph::Graph g = graph::BuildGraph(list);

    sim::Cluster ampc_cluster(BenchConfig(g.num_arcs()));
    core::CycleOptions options;
    options.seed = kSeed;
    core::CycleResult ampc = core::AmpcOneVsTwoCycle(ampc_cluster, g, options);
    AMPC_CHECK_EQ(ampc.num_cycles, 2);

    sim::Cluster mpc_cluster(BenchConfig(g.num_arcs()));
    baselines::LocalContractionResult mpc =
        baselines::MpcLocalContractionCC(mpc_cluster, list, kSeed);
    AMPC_CHECK_EQ(mpc.num_components, 2);

    // Average shrink factor per iteration: k -> threshold over iters.
    const double start = static_cast<double>(2 * k);
    const double end = static_cast<double>(
        mpc_cluster.config().in_memory_threshold_arcs);
    const double shrink =
        mpc.iterations > 0
            ? std::exp(std::log(start / std::max(1.0, end / 2)) /
                       mpc.iterations)
            : 1.0;

    PrintRow({FmtInt(k), FmtInt(ampc_cluster.metrics().Get("shuffles")),
              FmtInt(mpc_cluster.metrics().Get("shuffles")),
              FmtInt(mpc.iterations), FmtDouble(shrink),
              FmtDouble(ampc_cluster.SimSeconds()),
              FmtDouble(mpc_cluster.SimSeconds()),
              FmtDouble(mpc_cluster.SimSeconds() /
                        ampc_cluster.SimSeconds())});
  }
  PrintPaperNote(
      "Section 5.6: AMPC 3.40-9.87x faster, growing with n; AMPC uses a "
      "single staging shuffle, MPC 12-27 shuffles over 4-9 iterations "
      "shrinking the cycle ~2.59-3x per iteration.");
  return 0;
}
