// micro_cache — query-result caching on a convergent pointer-jump
// workload.
//
// The paper reports caching as the single largest Figure-4 optimization:
// adaptive query processes keep revisiting hot structure, and a
// per-machine query cache answers those revisits locally instead of
// paying the DHT round trip. This bench drives the simulator's cache
// stage (kv::QueryCache behind MachineContext::Lookup/LookupMany,
// ClusterConfig::query_cache) over the canonical cache-friendly
// workload — pointer jumping up a binary tree whose chains all converge
// on one root — and reports hit rates plus the simulated-time and
// round-trip deltas of the full batching x caching ablation grid, so
// Figure-4-style "batching vs batching+caching" curves fall out of one
// binary.
//
// The run FAILS (exit 1) if caching does not *strictly* reduce
// kv_lookup_trips, or simulated time, versus the batching-only pipeline
// on the convergent-roots phase — the cache stage's whole point — so CI
// regression-tests the cached cost model here. With
// query_cache.enabled = false the pipeline charges exactly PR 3's
// batching-only values (pinned by tests/cluster_test.cc).
//
//   AMPC_BENCH_SCALE   scales the key count (default 1.0 => 100k keys)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <span>
#include <vector>

#include "bench_common.h"
#include "graph/graph.h"
#include "sim/cluster.h"

namespace {

using ampc::graph::kInvalidNode;
using ampc::graph::NodeId;

constexpr int kMachines = 8;

struct RunResult {
  double sim_sec = 0;
  int64_t trips = 0;
  int64_t lookups = 0;
  int64_t hits = 0;
  int64_t misses = 0;
};

// Pointer jumping up a binary tree: parent(k) = (k - 1) / 2, root 0.
// Every chain converges through the same O(log n) ancestors, so a
// machine's first few jumps warm the cache for everything after them —
// the "roots near convergence" pattern of pointer-jump phases.
RunResult RunConvergentJump(int64_t n, const ampc::bench::GridCell& cell) {
  ampc::sim::ClusterConfig config;
  config.num_machines = kMachines;
  cell.ApplyTo(config);
  // Track only the data-dependent (latency/bandwidth) component.
  config.round_spawn_sec = 0.0;
  ampc::sim::Cluster cluster(config);

  auto parent_store = cluster.MakeStore<NodeId>(n);
  cluster.RunKvWritePhase("build", parent_store, n, [&](int64_t k) {
    return k == 0 ? kInvalidNode : static_cast<NodeId>((k - 1) / 2);
  });

  cluster.RunBatchMapPhase(
      "converge", n,
      [&](std::span<const int64_t> items, ampc::sim::MachineContext& ctx) {
        struct Chain {
          NodeId cur;
          bool done = false;
        };
        std::vector<Chain> chains;
        chains.reserve(items.size());
        for (const int64_t item : items) {
          chains.push_back(Chain{static_cast<NodeId>(item)});
        }
        ampc::sim::DriveLookupLockstep(
            ctx, parent_store, chains,
            [](const Chain& c) { return c.done; },
            [](const Chain& c) { return static_cast<uint64_t>(c.cur); },
            [](Chain& c, const NodeId* p) {
              if (p == nullptr || *p == kInvalidNode) {
                c.done = true;  // at the root
              } else {
                c.cur = *p;
              }
            });
      });

  RunResult result;
  result.sim_sec = cluster.metrics().GetTime("sim:converge");
  result.trips = cluster.metrics().Get("kv_lookup_trips");
  result.lookups = cluster.metrics().Get("kv_reads");
  result.hits = cluster.metrics().Get("cache_hits");
  result.misses = cluster.metrics().Get("cache_misses");
  return result;
}

}  // namespace

int main() {
  const int64_t n = std::max<int64_t>(
      64, static_cast<int64_t>(100'000 * ampc::bench::BenchScale()));

  std::printf("micro_cache: %lld keys, %d machines, binary-tree chains\n",
              static_cast<long long>(n), kMachines);

  // The full Figure-4-style grid from one binary. Pipelining off
  // (depth 1, the lockstep baseline): this bench isolates the caching
  // stage, so its grid tracks the PR 4 cost model bit-identically;
  // bench/micro_pipeline sweeps the depth axis.
  ampc::bench::GridAxes axes;
  axes.batch = {true, false};
  axes.cache = {true, false};
  axes.depth = {1};
  const std::vector<ampc::bench::GridCell> cells =
      ampc::bench::ConfigGrid(axes);
  const RunResult cache_batch = RunConvergentJump(n, cells[0]);
  const RunResult batch_only = RunConvergentJump(n, cells[1]);
  const RunResult cache_only = RunConvergentJump(n, cells[2]);
  const RunResult neither = RunConvergentJump(n, cells[3]);

  const double hit_rate =
      static_cast<double>(cache_batch.hits) /
      static_cast<double>(std::max<int64_t>(1, cache_batch.hits +
                                                   cache_batch.misses));
  ampc::bench::PrintHeader(
      "micro_cache: convergent pointer-jump simulated phase seconds",
      {"variant", "sim sec", "trips", "hit rate"});
  auto row = [&](const char* name, const RunResult& r, bool cached) {
    ampc::bench::PrintRow(
        {name, ampc::bench::FmtDouble(r.sim_sec, 6),
         ampc::bench::FmtInt(r.trips),
         cached ? ampc::bench::FmtDouble(
                      static_cast<double>(r.hits) /
                          static_cast<double>(std::max<int64_t>(
                              1, r.hits + r.misses)),
                      4)
                : std::string("-")});
  };
  row("cache+batch", cache_batch, true);
  row("batch only", batch_only, false);
  row("cache only", cache_only, true);
  row("neither", neither, false);
  ampc::bench::PrintPaperNote(
      "caching is the paper's largest Figure-4 win: the convergent "
      "ancestors are fetched once per machine and every revisit is served "
      "locally — no round trip, no owner bytes (Sections 5.3-5.4)");

  if (cache_batch.trips >= batch_only.trips) {
    std::fprintf(stderr,
                 "FATAL: caching did not strictly reduce kv_lookup_trips "
                 "on the convergent-roots phase (cached %lld, uncached "
                 "%lld)\n",
                 static_cast<long long>(cache_batch.trips),
                 static_cast<long long>(batch_only.trips));
    return 1;
  }
  if (cache_batch.sim_sec >= batch_only.sim_sec) {
    std::fprintf(stderr,
                 "FATAL: caching did not strictly reduce simulated time "
                 "(cached %.6f, uncached %.6f)\n",
                 cache_batch.sim_sec, batch_only.sim_sec);
    return 1;
  }

  FILE* out = std::fopen("BENCH_cache.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_cache.json\n");
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"micro_cache\",\n"
      "  \"num_keys\": %lld,\n"
      "  \"machines\": %d,\n"
      "  \"workload\": \"convergent_pointer_jump\",\n"
      "  \"hit_rate\": %.6f,\n"
      "  \"trip_reduction\": %.4f,\n"
      "  \"sim_speedup_over_batching_only\": %.4f,\n"
      "  \"grid\": [\n"
      "    {\"variant\": \"cache+batch\", \"sim_sec\": %.9f, \"trips\": "
      "%lld, \"lookups\": %lld},\n"
      "    {\"variant\": \"batch_only\", \"sim_sec\": %.9f, \"trips\": "
      "%lld, \"lookups\": %lld},\n"
      "    {\"variant\": \"cache_only\", \"sim_sec\": %.9f, \"trips\": "
      "%lld, \"lookups\": %lld},\n"
      "    {\"variant\": \"neither\", \"sim_sec\": %.9f, \"trips\": "
      "%lld, \"lookups\": %lld}\n"
      "  ]\n"
      "}\n",
      static_cast<long long>(n), kMachines, hit_rate,
      static_cast<double>(batch_only.trips) /
          static_cast<double>(std::max<int64_t>(1, cache_batch.trips)),
      batch_only.sim_sec / cache_batch.sim_sec, cache_batch.sim_sec,
      static_cast<long long>(cache_batch.trips),
      static_cast<long long>(cache_batch.lookups), batch_only.sim_sec,
      static_cast<long long>(batch_only.trips),
      static_cast<long long>(batch_only.lookups), cache_only.sim_sec,
      static_cast<long long>(cache_only.trips),
      static_cast<long long>(cache_only.lookups), neither.sim_sec,
      static_cast<long long>(neither.trips),
      static_cast<long long>(neither.lookups));
  std::fclose(out);
  std::printf("wrote BENCH_cache.json\n");
  return 0;
}
