// micro_frontier — push vs pull vs hybrid frontier representations on
// the two workloads that bracket the direction-optimization trade-off.
//
// The frontier engine (common/frontier.h, sim::Cluster::RunPullPhase)
// gives every frontier-shaped phase two cost models: *push* routes each
// active vertex's reads through the batched/pipelined lookup path
// (latency-bearing round trips), *pull* broadcasts the frontier bitmap
// and sweeps each machine's local shard (bytes, zero per-vertex trips).
// The hybrid policy picks per round via Beamer's alpha/beta thresholds.
// This bench runs the sparse/dense/hybrid grid on:
//
//  - a *dense* workload: h-index core decomposition of a low-diameter
//    ER graph, whose frontier covers most of the graph every round —
//    pull territory;
//  - a *sparse* workload: personalized PageRank walks over a
//    high-diameter chain, whose source frontier is a single vertex —
//    push territory (forced dense pays a bitmap broadcast per walk
//    step for nothing).
//
// The run FAILS (exit 1) unless, on the dense workload, hybrid cuts
// kv_lookup_trips >= 10x versus pure sparse AND strictly beats pure
// sparse's simulated time, AND on both workloads hybrid is never worse
// than the better pure mode (to float tolerance) — the whole point of
// a direction *policy*. Outputs must match bit-identically across all
// modes on both workloads; frontier modes only move cost.
//
//   AMPC_BENCH_SCALE   scales both graphs (default 1.0 => 20k vertices)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/frontier.h"
#include "core/kcore.h"
#include "core/pagerank.h"
#include "graph/generators.h"
#include "sim/cluster.h"

namespace {

using ampc::FrontierMode;
using ampc::FrontierModeName;

constexpr int kMachines = 8;

struct RunResult {
  double sim_sec = 0;
  int64_t trips = 0;
  int64_t dense_rounds = 0;
  int64_t sparse_rounds = 0;
  int64_t broadcast_bytes = 0;
};

ampc::sim::Cluster MakeCluster(FrontierMode mode) {
  ampc::sim::ClusterConfig config;
  config.num_machines = kMachines;
  // Track only the data-dependent (latency/bandwidth/CPU) component;
  // the per-round spawn constant is identical across modes (frontier
  // modes never change round counts) and would drown the signal.
  config.round_spawn_sec = 0.0;
  config.frontier.mode = mode;
  return ampc::sim::Cluster(config);
}

RunResult Collect(ampc::sim::Cluster& cluster) {
  RunResult r;
  r.sim_sec = cluster.SimSeconds();
  r.trips = cluster.metrics().Get("kv_lookup_trips");
  r.dense_rounds = cluster.metrics().Get("frontier_dense_rounds");
  r.sparse_rounds = cluster.metrics().Get("frontier_sparse_rounds");
  r.broadcast_bytes = cluster.metrics().Get("frontier_broadcast_bytes");
  return r;
}

}  // namespace

int main() {
  const int64_t n = std::max<int64_t>(
      256, static_cast<int64_t>(20'000 * ampc::bench::BenchScale()));

  // Dense workload: ER graph at average degree 8 — the peeling frontier
  // stays near n for every h-index round.
  ampc::graph::Graph er = ampc::graph::BuildGraph(
      ampc::graph::GenerateErdosRenyi(n, 4 * n, /*seed=*/7));
  // Sparse workload: a chain — personalized walks from one source, the
  // canonical always-sparse frontier.
  ampc::graph::Graph chain =
      ampc::graph::BuildGraph(ampc::graph::GeneratePath(n));
  ampc::core::PageRankMcOptions ppr_options;
  ppr_options.seed = 7;
  ppr_options.walks_per_node = 2;

  std::printf(
      "micro_frontier: %lld vertices, %d machines; kcore on ER "
      "(%lld arcs) vs personalized pagerank on a chain\n",
      static_cast<long long>(n), kMachines,
      static_cast<long long>(er.num_arcs()));

  const FrontierMode kModes[] = {FrontierMode::kSparse, FrontierMode::kDense,
                                 FrontierMode::kHybrid};
  struct GridRow {
    const char* workload;
    FrontierMode mode;
    RunResult r;
  };
  std::vector<GridRow> grid;
  std::vector<int32_t> kcore_reference;
  std::vector<double> ppr_reference;
  for (const FrontierMode mode : kModes) {
    ampc::sim::Cluster cluster = MakeCluster(mode);
    const ampc::core::KCoreResult kcore = ampc::core::AmpcKCore(cluster, er);
    grid.push_back(GridRow{"kcore/er", mode, Collect(cluster)});
    if (mode == FrontierMode::kSparse) {
      kcore_reference = kcore.coreness;
    } else if (kcore.coreness != kcore_reference) {
      std::fprintf(stderr, "FATAL: kcore output changed in %s mode\n",
                   FrontierModeName(mode));
      return 1;
    }
  }
  for (const FrontierMode mode : kModes) {
    ampc::sim::Cluster cluster = MakeCluster(mode);
    const ampc::core::PageRankMcResult ppr =
        ampc::core::AmpcPersonalizedPageRank(cluster, chain, /*source=*/0,
                                             ppr_options);
    grid.push_back(GridRow{"ppr/chain", mode, Collect(cluster)});
    if (mode == FrontierMode::kSparse) {
      ppr_reference = ppr.rank;
    } else if (ppr.rank != ppr_reference) {
      std::fprintf(stderr, "FATAL: pagerank output changed in %s mode\n",
                   FrontierModeName(mode));
      return 1;
    }
  }
  auto find = [&](const std::string& workload,
                  FrontierMode mode) -> const RunResult& {
    for (const GridRow& row : grid) {
      if (workload == row.workload && mode == row.mode) return row.r;
    }
    std::abort();
  };

  ampc::bench::PrintHeader(
      "micro_frontier: simulated seconds by frontier mode",
      {"workload", "mode", "sim sec", "trips", "dense", "sparse",
       "bcast bytes"});
  for (const GridRow& row : grid) {
    ampc::bench::PrintRow(
        {row.workload, FrontierModeName(row.mode),
         ampc::bench::FmtDouble(row.r.sim_sec, 6),
         ampc::bench::FmtInt(row.r.trips),
         ampc::bench::FmtInt(row.r.dense_rounds),
         ampc::bench::FmtInt(row.r.sparse_rounds),
         ampc::bench::FmtInt(row.r.broadcast_bytes)});
  }
  ampc::bench::PrintPaperNote(
      "direction optimization for the AMPC DHT: a dense round replaces "
      "per-vertex lookup round trips with one frontier-bitmap broadcast "
      "plus one aggregate exchange, so large frontiers cost bandwidth "
      "instead of latency; the alpha/beta policy keeps small frontiers "
      "on the batched push path");

  // Regression gates. Dense workload: hybrid must gut the trip count
  // (>= 10x) and strictly beat pure sparse, and must track pure dense
  // to 0.1% (it may differ only by cheap sparse tail rounds).
  const RunResult& er_sparse = find("kcore/er", FrontierMode::kSparse);
  const RunResult& er_dense = find("kcore/er", FrontierMode::kDense);
  const RunResult& er_hybrid = find("kcore/er", FrontierMode::kHybrid);
  if (er_sparse.trips < 10 * std::max<int64_t>(1, er_hybrid.trips)) {
    std::fprintf(stderr,
                 "FATAL: hybrid did not cut lookup trips 10x on the dense "
                 "workload (sparse %lld, hybrid %lld)\n",
                 static_cast<long long>(er_sparse.trips),
                 static_cast<long long>(er_hybrid.trips));
    return 1;
  }
  if (er_hybrid.sim_sec >= er_sparse.sim_sec) {
    std::fprintf(stderr,
                 "FATAL: hybrid did not beat sparse on the dense workload "
                 "(hybrid %.6f, sparse %.6f)\n",
                 er_hybrid.sim_sec, er_sparse.sim_sec);
    return 1;
  }
  if (er_hybrid.sim_sec > er_dense.sim_sec * 1.001) {
    std::fprintf(stderr,
                 "FATAL: hybrid worse than pure dense on the dense "
                 "workload (hybrid %.6f, dense %.6f)\n",
                 er_hybrid.sim_sec, er_dense.sim_sec);
    return 1;
  }
  // Sparse workload: hybrid must stay on the push path (bit-identical
  // cost to pure sparse) and never exceed pure dense.
  const RunResult& pr_sparse = find("ppr/chain", FrontierMode::kSparse);
  const RunResult& pr_dense = find("ppr/chain", FrontierMode::kDense);
  const RunResult& pr_hybrid = find("ppr/chain", FrontierMode::kHybrid);
  if (pr_hybrid.sim_sec > pr_sparse.sim_sec * (1.0 + 1e-9)) {
    std::fprintf(stderr,
                 "FATAL: hybrid worse than sparse on the sparse workload "
                 "(hybrid %.9f, sparse %.9f)\n",
                 pr_hybrid.sim_sec, pr_sparse.sim_sec);
    return 1;
  }
  if (pr_hybrid.sim_sec > pr_dense.sim_sec) {
    std::fprintf(stderr,
                 "FATAL: hybrid worse than dense on the sparse workload "
                 "(hybrid %.6f, dense %.6f)\n",
                 pr_hybrid.sim_sec, pr_dense.sim_sec);
    return 1;
  }

  FILE* out = std::fopen("BENCH_frontier.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_frontier.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"micro_frontier\",\n"
               "  \"num_vertices\": %lld,\n"
               "  \"machines\": %d,\n"
               "  \"dense_trip_reduction\": %.4f,\n"
               "  \"dense_speedup_vs_sparse\": %.4f,\n"
               "  \"grid\": [\n",
               static_cast<long long>(n), kMachines,
               static_cast<double>(er_sparse.trips) /
                   static_cast<double>(std::max<int64_t>(1, er_hybrid.trips)),
               er_sparse.sim_sec / er_hybrid.sim_sec);
  for (size_t i = 0; i < grid.size(); ++i) {
    const GridRow& row = grid[i];
    std::fprintf(
        out,
        "    {\"workload\": \"%s\", \"mode\": \"%s\", \"sim_sec\": %.9f, "
        "\"trips\": %lld, \"dense_rounds\": %lld, \"sparse_rounds\": %lld, "
        "\"broadcast_bytes\": %lld}%s\n",
        row.workload, FrontierModeName(row.mode), row.r.sim_sec,
        static_cast<long long>(row.r.trips),
        static_cast<long long>(row.r.dense_rounds),
        static_cast<long long>(row.r.sparse_rounds),
        static_cast<long long>(row.r.broadcast_bytes),
        i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_frontier.json\n");
  return 0;
}
