// Corollary 4.1 in practice: the approximation algorithms derived from
// the maximal-matching black box, measured on the stand-in datasets.
//   * vertex cover: size vs the matching lower bound (ratio <= 2);
//   * (2+eps) max weight matching on the degree-weighted graphs of §5.2:
//     one maximal-matching call regardless of the weight spread, weight
//     within a whisker of sequential greedy-by-exact-weight;
//   * (1+eps) maximum matching: size gained over the maximal matching by
//     short augmenting paths over the DHT.
#include "bench_common.h"

#include "core/approx.h"
#include "core/matching.h"
#include "seq/greedy.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  constexpr uint64_t kSeed = 42;

  PrintHeader("Corollary 4.1: approximation algorithms",
              {"Dataset", "Algorithm", "Result", "Reference", "Ratio",
               "Shuffles", "Sim(s)"});
  for (const Dataset& d : LoadDatasets(3)) {
    int64_t mm_size = 0;
    {
      sim::Cluster cluster(BenchConfig(d.graph.num_arcs()));
      core::MatchingOptions options;
      options.seed = kSeed;
      const core::MatchingResult mm =
          core::AmpcMatching(cluster, d.graph, options);
      for (const graph::NodeId p : mm.partner) {
        mm_size += p != graph::kInvalidNode;
      }
      mm_size /= 2;
    }
    {
      sim::Cluster cluster(BenchConfig(d.graph.num_arcs()));
      core::MatchingOptions options;
      options.seed = kSeed;
      const core::VertexCoverResult cover =
          core::AmpcVertexCover(cluster, d.graph, options);
      PrintRow({d.name, "vertex cover", FmtInt(cover.size),
                FmtInt(mm_size) + " (mm lower bd)",
                FmtDouble(static_cast<double>(cover.size) /
                          static_cast<double>(mm_size)),
                FmtInt(cluster.metrics().Get("shuffles")),
                FmtDouble(cluster.SimSeconds())});
    }
    {
      const graph::WeightedEdgeList weighted =
          graph::MakeDegreeWeighted(d.edges, d.graph);
      sim::Cluster cluster(BenchConfig(d.graph.num_arcs()));
      core::WeightMatchingOptions options;
      options.epsilon = 0.2;
      options.matching.seed = kSeed;
      const core::WeightMatchingResult result =
          core::AmpcApproxMaxWeightMatching(cluster, weighted, options);
      const seq::MatchingResult greedy = seq::GreedyWeightMatching(weighted);
      double greedy_weight = 0;
      for (const graph::EdgeId id : greedy.edges) {
        greedy_weight += weighted.edges[id].w;
      }
      PrintRow({d.name, "(2+eps) weight mm",
                FmtDouble(result.total_weight, 0),
                FmtDouble(greedy_weight, 0) + " (greedy)",
                FmtDouble(result.total_weight / greedy_weight),
                FmtInt(cluster.metrics().Get("shuffles")),
                FmtDouble(cluster.SimSeconds())});
    }
    {
      sim::Cluster cluster(BenchConfig(d.graph.num_arcs()));
      core::ApproxMatchingOptions options;
      options.epsilon = 0.5;  // augmenting paths up to length 3
      options.matching.seed = kSeed;
      const core::ApproxMatchingResult result =
          core::AmpcApproxMaximumMatching(cluster, d.graph, options);
      PrintRow({d.name, "(1+eps) max mm", FmtInt(result.size),
                FmtInt(mm_size) + " (maximal)",
                FmtDouble(static_cast<double>(result.size) /
                          static_cast<double>(mm_size)),
                FmtInt(cluster.metrics().Get("shuffles")),
                FmtDouble(cluster.SimSeconds())});
    }
  }
  PrintPaperNote(
      "Corollary 4.1 guarantees: cover <= 2x optimal (mm size is the "
      "lower bound, so ratio 2.00 here is the worst case, usually "
      "pessimistic); bucketed weight matching within 2(1+eps) of optimal "
      "in ONE matching call; (1+eps) matching strictly grows the maximal "
      "matching toward optimal via DHT-resident augmenting paths.");
  return 0;
}
