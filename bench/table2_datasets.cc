// Reproduces Table 2: the dataset census (n, m, diameter estimate,
// number of components, largest component) over the stand-in inputs,
// plus the 2xk cycle family used by Section 5.6.
#include "bench_common.h"

#include "graph/generators.h"
#include "graph/stats.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;

  PrintHeader("Table 2: graph inputs (stand-ins)",
              {"Dataset", "n", "m(arcs)", "maxdeg", "Diam>=", "NumCC",
               "LargestCC"});
  for (const Dataset& d : LoadDatasets()) {
    graph::GraphStats stats = graph::ComputeStats(d.graph);
    PrintRow({d.name, FmtInt(stats.num_nodes), FmtInt(stats.num_arcs),
              FmtInt(stats.max_degree), FmtInt(stats.diameter_lower_bound),
              FmtInt(stats.num_components), FmtInt(stats.largest_component)});
  }
  for (int64_t k : {100'000, 1'000'000}) {
    graph::Graph g = graph::BuildGraph(graph::GenerateDoubleCycle(k));
    graph::GraphStats stats = graph::ComputeStats(g);
    PrintRow({"2x" + FmtInt(k), FmtInt(stats.num_nodes),
              FmtInt(stats.num_arcs), FmtInt(stats.max_degree),
              FmtInt(stats.diameter_lower_bound),
              FmtInt(stats.num_components),
              FmtInt(stats.largest_component)});
  }
  PrintPaperNote(
      "Table 2 spans OK 3.07M/234M ... HL 3.56B/225.8B plus 2xk cycles; "
      "stand-ins keep the ordering, web graphs keep the giant-hub skew, "
      "2xk rows keep 2 components of size k.");
  return 0;
}
