// micro_lookup — batched vs scalar DHT lookups on a latency-bound
// pointer-jump workload.
//
// The paper's DHT hides its ~2.5us round trip by batching and pipelining
// adaptive queries (Section 5.3). This bench drives the simulator's
// batched read path (MachineContext::LookupMany through
// RunBatchMapPhase) over the canonical latency-bound workload — pointer
// jumping along long parent chains — and compares the simulated phase
// time against the same workload charged scalar (one round trip per
// key, batch_lookups = off). Placement policies are swept alongside to
// show how key->machine affinity changes the destination fan-out per
// batch.
//
// The run FAILS (exit 1) if batching is not strictly cheaper than
// scalar charging on the hash-placement workload — the pipeline's whole
// point — so CI regression-tests the batched cost model here.
//
//   AMPC_BENCH_SCALE   scales the key count (default 1.0 => 200k keys)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <span>
#include <vector>

#include "bench_common.h"
#include "graph/graph.h"
#include "kv/placement.h"
#include "sim/cluster.h"

namespace {

using ampc::graph::kInvalidNode;
using ampc::graph::NodeId;

constexpr int kMachines = 8;
constexpr int64_t kChainLength = 64;

struct RunResult {
  double sim_sec = 0;
  int64_t trips = 0;
  int64_t lookups = 0;
};

// Pointer jumping over parent chains of kChainLength hops: every item
// chases its chain to the root. Latency-bound: records are 4 bytes, the
// chains are long, and with batching every adaptive step ships as one
// LookupMany per worker.
RunResult RunPointerJump(int64_t n, const ampc::bench::GridCell& cell) {
  ampc::sim::ClusterConfig config;
  config.num_machines = kMachines;
  cell.ApplyTo(config);
  // Track only the data-dependent (latency/bandwidth) component.
  config.round_spawn_sec = 0.0;
  ampc::sim::Cluster cluster(config);

  auto parent_store = cluster.MakeStore<NodeId>(n);
  cluster.RunKvWritePhase("build", parent_store, n, [&](int64_t k) {
    // Chains of kChainLength consecutive keys; chain heads are roots.
    return k % kChainLength == 0 ? kInvalidNode
                                 : static_cast<NodeId>(k - 1);
  });

  cluster.RunBatchMapPhase(
      "jump", n,
      [&](std::span<const int64_t> items, ampc::sim::MachineContext& ctx) {
        struct Chain {
          NodeId cur;
          bool done = false;
        };
        std::vector<Chain> chains;
        chains.reserve(items.size());
        for (const int64_t item : items) {
          chains.push_back(Chain{static_cast<NodeId>(item)});
        }
        ampc::sim::DriveLookupLockstep(
            ctx, parent_store, chains,
            [](const Chain& c) { return c.done; },
            [](const Chain& c) { return static_cast<uint64_t>(c.cur); },
            [](Chain& c, const NodeId* p) {
              if (p == nullptr || *p == kInvalidNode) {
                c.done = true;  // at root
              } else {
                c.cur = *p;
              }
            });
      });

  RunResult result;
  result.sim_sec = cluster.metrics().GetTime("sim:jump");
  result.trips = cluster.metrics().Get("kv_lookup_trips");
  result.lookups = cluster.metrics().Get("kv_reads");
  return result;
}

}  // namespace

int main() {
  const int64_t n = std::max<int64_t>(
      kChainLength, static_cast<int64_t>(200'000 * ampc::bench::BenchScale()));

  std::printf("micro_lookup: %lld keys, %d machines, chains of %lld hops\n",
              static_cast<long long>(n), kMachines,
              static_cast<long long>(kChainLength));

  struct PolicyRow {
    const char* name;
    ampc::kv::PlacementPolicy policy;
    RunResult batched;
    RunResult scalar;
  };
  std::vector<PolicyRow> rows = {
      {"hash", ampc::kv::PlacementPolicy::kHash, {}, {}},
      {"range", ampc::kv::PlacementPolicy::kRange, {}, {}},
      {"affinity", ampc::kv::PlacementPolicy::kAffinity, {}, {}},
  };
  // This bench isolates the *batching* stage of the lookup pipeline:
  // query-result caching is off (bench/micro_cache measures that stage)
  // and pipelining is off — depth 1, the lockstep baseline
  // (bench/micro_pipeline sweeps the depth axis) — so batched-vs-scalar
  // numbers track PR 3's batching-only pipeline bit-identically.
  ampc::bench::GridAxes axes;
  axes.placement = {rows[0].policy, rows[1].policy, rows[2].policy};
  axes.batch = {true, false};
  axes.cache = {false};
  axes.depth = {1};
  const std::vector<ampc::bench::GridCell> cells =
      ampc::bench::ConfigGrid(axes);
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i].batched = RunPointerJump(n, cells[2 * i]);
    rows[i].scalar = RunPointerJump(n, cells[2 * i + 1]);
  }

  ampc::bench::PrintHeader(
      "micro_lookup: pointer-jump simulated phase seconds",
      {"placement", "batched sim", "scalar sim", "speedup", "trips/lookup"});
  for (const PolicyRow& row : rows) {
    ampc::bench::PrintRow(
        {row.name, ampc::bench::FmtDouble(row.batched.sim_sec, 6),
         ampc::bench::FmtDouble(row.scalar.sim_sec, 6),
         ampc::bench::FmtDouble(row.scalar.sim_sec / row.batched.sim_sec) +
             "x",
         ampc::bench::FmtDouble(
             static_cast<double>(row.batched.trips) /
                 static_cast<double>(
                     std::max<int64_t>(1, row.batched.lookups)),
             5)});
  }
  ampc::bench::PrintPaperNote(
      "batching amortizes the DHT round trip across every chain a worker "
      "advances (Section 5.3); one LookupMany per adaptive step pays one "
      "latency per destination machine instead of one per key");

  const PolicyRow& hash_row = rows[0];
  if (hash_row.batched.sim_sec >= hash_row.scalar.sim_sec) {
    std::fprintf(stderr,
                 "FATAL: batched lookups not cheaper than scalar "
                 "(batched %.6f, scalar %.6f)\n",
                 hash_row.batched.sim_sec, hash_row.scalar.sim_sec);
    return 1;
  }

  FILE* out = std::fopen("BENCH_lookup.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_lookup.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"micro_lookup\",\n"
               "  \"num_keys\": %lld,\n"
               "  \"machines\": %d,\n"
               "  \"chain_length\": %lld,\n"
               "  \"policies\": [\n",
               static_cast<long long>(n), kMachines,
               static_cast<long long>(kChainLength));
  for (size_t i = 0; i < rows.size(); ++i) {
    const PolicyRow& row = rows[i];
    std::fprintf(
        out,
        "    {\"placement\": \"%s\", \"batched_sim_sec\": %.9f, "
        "\"scalar_sim_sec\": %.9f, \"batch_speedup\": %.4f, "
        "\"trips_per_lookup\": %.6f}%s\n",
        row.name, row.batched.sim_sec, row.scalar.sim_sec,
        row.scalar.sim_sec / row.batched.sim_sec,
        static_cast<double>(row.batched.trips) /
            static_cast<double>(std::max<int64_t>(1, row.batched.lookups)),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_lookup.json\n");
  return 0;
}
