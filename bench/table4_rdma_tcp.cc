// Reproduces Table 4: normalized running times of the 1-vs-2-Cycle and
// MIS algorithms when the key-value store communicates over RDMA vs
// TCP/IP, against the MPC baselines.
#include "bench_common.h"

#include "baselines/local_contraction.h"
#include "baselines/rootset_mis.h"
#include "core/mis.h"
#include "core/one_vs_two_cycle.h"
#include "graph/generators.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  constexpr uint64_t kSeed = 42;

  // --- 1-vs-2-Cycle on 2xk graphs (paper columns 2e8, 2e9, 2e10; scaled
  // stand-ins here).
  const int64_t ks[] = {100'000, 400'000, 1'600'000};
  std::vector<std::string> header = {"Algorithm"};
  for (int64_t k : ks) header.push_back("2x" + FmtInt(k));
  PrintHeader("Table 4a: 1-vs-2-Cycle normalized times", header);

  std::vector<double> cyc_rdma, cyc_tcp, cyc_mpc;
  for (int64_t k : ks) {
    graph::EdgeList list = graph::GenerateDoubleCycle(k);
    graph::Graph g = graph::BuildGraph(list);
    core::CycleOptions options;
    options.seed = kSeed;

    sim::ClusterConfig rdma_config = BenchConfig(g.num_arcs());
    sim::Cluster rdma(rdma_config);
    core::AmpcOneVsTwoCycle(rdma, g, options);
    cyc_rdma.push_back(rdma.SimSeconds());

    sim::ClusterConfig tcp_config = BenchConfig(g.num_arcs());
    tcp_config.network = kv::NetworkModel::TcpIp();
    sim::Cluster tcp(tcp_config);
    core::AmpcOneVsTwoCycle(tcp, g, options);
    cyc_tcp.push_back(tcp.SimSeconds());

    sim::Cluster mpc(BenchConfig(g.num_arcs()));
    baselines::MpcOneVsTwoCycle(mpc, list, kSeed);
    cyc_mpc.push_back(mpc.SimSeconds());
  }
  auto norm_row = [&](const char* name, const std::vector<double>& t,
                      const std::vector<double>& base) {
    std::vector<std::string> row = {name};
    for (size_t i = 0; i < t.size(); ++i) {
      row.push_back(FmtDouble(t[i] / base[i]));
    }
    PrintRow(row);
  };
  norm_row("2-Cyc (RDMA)", cyc_rdma, cyc_rdma);
  norm_row("2-Cyc (TCP/IP)", cyc_tcp, cyc_rdma);
  norm_row("MPC 2-Cyc", cyc_mpc, cyc_rdma);

  // --- MIS on the dataset stand-ins.
  std::vector<Dataset> datasets = LoadDatasets();
  std::vector<std::string> mis_header = {"Algorithm"};
  for (const Dataset& d : datasets) mis_header.push_back(d.name);
  PrintHeader("Table 4b: MIS normalized times", mis_header);

  std::vector<double> mis_rdma, mis_tcp, mis_mpc;
  for (const Dataset& d : datasets) {
    sim::Cluster rdma(BenchConfig(d.graph.num_arcs()));
    core::AmpcMis(rdma, d.graph, kSeed);
    mis_rdma.push_back(rdma.SimSeconds());

    sim::ClusterConfig tcp_config = BenchConfig(d.graph.num_arcs());
    tcp_config.network = kv::NetworkModel::TcpIp();
    sim::Cluster tcp(tcp_config);
    core::AmpcMis(tcp, d.graph, kSeed);
    mis_tcp.push_back(tcp.SimSeconds());

    sim::Cluster mpc(BenchConfig(d.graph.num_arcs()));
    baselines::MpcRootsetMis(mpc, d.graph, kSeed);
    mis_mpc.push_back(mpc.SimSeconds());
  }
  norm_row("MIS (RDMA)", mis_rdma, mis_rdma);
  norm_row("MIS (TCP/IP)", mis_tcp, mis_rdma);
  norm_row("MPC MIS", mis_mpc, mis_rdma);

  PrintPaperNote(
      "Table 4: TCP/IP 1.74-5.90x slower than RDMA for 1v2-Cycle "
      "(latency-bound walks) but only 1.50-1.85x for MIS; even TCP-based "
      "AMPC beats the MPC baselines (MPC 2-Cyc 3.40-9.87x, MPC MIS "
      "2.30-3.04x slower than RDMA AMPC).");
  return 0;
}
