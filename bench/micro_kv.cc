// micro_kv — sharded-DHT throughput, shard balance, and skew sensitivity.
//
// The paper's AMPC performance story is per machine (Table 4, Fig. 8,
// §5.7): each logical machine holds one shard of the DHT, and the round
// lasts as long as its hottest machine. This bench measures
//
//   1. concurrent Put throughput into kv::ShardedStore across thread
//      counts (all writers racing across all shards),
//   2. shard balance of the placement hash (max/mean bytes per shard),
//   3. skew sensitivity of the cluster cost model: simulated write and
//      lookup round times for a uniform workload vs a 90/10-style skewed
//      one (hot machine's shard receives ~90% of the bytes; hot key
//      serves every lookup) of the same total volume,
//
// prints a table, and writes the measurements to BENCH_kv.json
// (overwritten per run; CI uploads it as an artifact so skew sensitivity
// is tracked across PRs).
//
//   AMPC_BENCH_SCALE   scales the key count (default 1.0 => 1M keys)
//   AMPC_KV_REPS       repetitions per timing, best-of (default 3)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "kv/sharded_store.h"
#include "sim/cluster.h"

namespace {

using ampc::ThreadPool;
using ampc::WallTimer;
using ampc::kv::ShardedStore;

constexpr int kMachines = 8;
constexpr uint64_t kSeed = 42;

// Concurrent strided Put of n int64 records with `threads` writers.
double TimePuts(int64_t n, int threads) {
  ShardedStore<int64_t> store(n, kMachines, kSeed);
  WallTimer timer;
  std::vector<std::thread> writers;
  writers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    writers.emplace_back([&store, t, n, threads] {
      for (int64_t k = t; k < n; k += threads) store.Put(k, k);
    });
  }
  for (auto& t : writers) t.join();
  const double sec = timer.Seconds();
  if (store.size() != n) std::abort();
  return sec;
}

struct SkewResult {
  double uniform_write_sim_sec = 0;
  double skewed_write_sim_sec = 0;
  double uniform_read_sim_sec = 0;
  double skewed_read_sim_sec = 0;
};

// Simulated round times for uniform vs skewed workloads of equal total
// byte volume, through the cluster's skew-aware cost model.
SkewResult MeasureSkewSensitivity(int64_t n) {
  SkewResult result;
  // Write skew and read skew are measured independently: the skewed
  // write run concentrates payload bytes on one shard, while the skewed
  // read run hammers one hot key of a *uniform* store (so the byte skew
  // comes from the access pattern, not the record sizes).
  auto run = [&](bool skewed_write, bool skewed_read, double* write_sim,
                 double* read_sim) {
    ampc::sim::ClusterConfig config;
    config.num_machines = kMachines;
    // Strip the fixed per-round spawn constant: this measurement tracks
    // the data-dependent (skew-sensitive) component of the round time.
    config.round_spawn_sec = 0.0;
    // Caching off: this bench isolates the raw skew penalty of the cost
    // model — a query cache would absorb the hot-key read storm (that
    // rescue is measured by bench/micro_cache instead).
    config.query_cache.enabled = false;
    ampc::sim::Cluster cluster(config);
    // ~90% of the payload bytes land on machine 0's shard in the skewed
    // configuration; totals match the uniform configuration.
    int64_t hot_keys = 0;
    for (int64_t k = 0; k < n; ++k) hot_keys += cluster.MachineOf(k) == 0;
    const int64_t uniform_len = 256;
    const int64_t total = uniform_len * n;
    const int64_t hot_len = total * 9 / (10 * std::max<int64_t>(1, hot_keys));
    const int64_t cold_len =
        (total - hot_len * hot_keys) / std::max<int64_t>(1, n - hot_keys);
    auto store = cluster.MakeStore<std::vector<uint8_t>>(n);
    cluster.RunKvWritePhase("write", store, n, [&](int64_t k) {
      int64_t len = uniform_len;
      if (skewed_write) {
        len = cluster.MachineOf(k) == 0 ? hot_len : cold_len;
      }
      return std::vector<uint8_t>(static_cast<size_t>(len), 1);
    });
    cluster.RunMapPhase(
        "read", n, [&](int64_t item, ampc::sim::MachineContext& ctx) {
          // Skewed reads hammer one hot key; uniform reads spread out.
          ctx.Lookup(store, skewed_read ? 0 : static_cast<uint64_t>(item));
        });
    *write_sim = cluster.metrics().GetTime("sim:write");
    *read_sim = cluster.metrics().GetTime("sim:read");
  };
  double unused;
  run(false, false, &result.uniform_write_sim_sec,
      &result.uniform_read_sim_sec);
  run(true, false, &result.skewed_write_sim_sec, &unused);
  run(false, true, &unused, &result.skewed_read_sim_sec);
  return result;
}

}  // namespace

int main() {
  const int64_t n =
      static_cast<int64_t>(1'000'000 * ampc::bench::BenchScale());
  const int reps = ampc::bench::Reps("AMPC_KV_REPS");
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));

  std::printf("micro_kv: %lld keys, %d shards, %d hardware threads, "
              "best of %d reps\n",
              static_cast<long long>(n), kMachines, hw, reps);

  // 1. Put throughput.
  std::vector<int> thread_counts = {1, 2, 4, 8};
  if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
      thread_counts.end()) {
    thread_counts.push_back(hw);
    std::sort(thread_counts.begin(), thread_counts.end());
  }
  struct Row {
    int threads;
    double sec;
  };
  std::vector<Row> rows;
  for (int threads : thread_counts) {
    rows.push_back({threads, ampc::bench::BestOf(reps, [&] { return TimePuts(n, threads); })});
  }
  ampc::bench::PrintHeader("micro_kv: concurrent Put throughput",
                           {"threads", "sec", "Mkeys/s", "speedup"});
  for (const Row& row : rows) {
    ampc::bench::PrintRow(
        {ampc::bench::FmtInt(row.threads),
         ampc::bench::FmtDouble(row.sec, 4),
         ampc::bench::FmtDouble(n / row.sec / 1e6),
         ampc::bench::FmtDouble(rows.front().sec / row.sec) + "x"});
  }

  // 2. Shard balance of the placement hash.
  ShardedStore<int64_t> balance_store(n, kMachines, kSeed);
  for (int64_t k = 0; k < n; ++k) balance_store.Put(k, k);
  int64_t max_shard_bytes = 0, total_shard_bytes = 0;
  for (int s = 0; s < kMachines; ++s) {
    max_shard_bytes = std::max(max_shard_bytes, balance_store.ShardBytes(s));
    total_shard_bytes += balance_store.ShardBytes(s);
  }
  const double max_over_mean =
      static_cast<double>(max_shard_bytes) * kMachines / total_shard_bytes;
  std::printf("\nshard balance: max/mean bytes = %.4f (1.0 = perfect)\n",
              max_over_mean);

  // 3. Skew sensitivity of the simulated cost model.
  const int64_t skew_n = std::max<int64_t>(1000, n / 16);
  const SkewResult skew = MeasureSkewSensitivity(skew_n);
  ampc::bench::PrintHeader(
      "micro_kv: skew sensitivity (simulated round seconds)",
      {"workload", "write sim", "read sim"});
  ampc::bench::PrintRow({"uniform",
                         ampc::bench::FmtDouble(skew.uniform_write_sim_sec, 6),
                         ampc::bench::FmtDouble(skew.uniform_read_sim_sec, 6)});
  ampc::bench::PrintRow({"90/10 skew",
                         ampc::bench::FmtDouble(skew.skewed_write_sim_sec, 6),
                         ampc::bench::FmtDouble(skew.skewed_read_sim_sec, 6)});
  const double write_ratio =
      skew.skewed_write_sim_sec / skew.uniform_write_sim_sec;
  const double read_ratio =
      skew.skewed_read_sim_sec / skew.uniform_read_sim_sec;
  ampc::bench::PrintPaperNote(
      "per-machine accounting makes hot shards the round's straggler "
      "(§5.7); skewed/uniform sim ratios above must exceed 1");
  if (write_ratio <= 1.0 || read_ratio <= 1.0) {
    std::fprintf(stderr,
                 "FATAL: skewed workload not costlier than uniform "
                 "(write %.3f, read %.3f)\n",
                 write_ratio, read_ratio);
    return 1;
  }

  FILE* out = std::fopen("BENCH_kv.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_kv.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"micro_kv\",\n"
               "  \"num_keys\": %lld,\n"
               "  \"shards\": %d,\n"
               "  \"hardware_concurrency\": %d,\n"
               "  \"reps\": %d,\n"
               "  \"shard_balance_max_over_mean\": %.6f,\n"
               "  \"put\": [\n",
               static_cast<long long>(n), kMachines, hw, reps,
               max_over_mean);
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"threads\": %d, \"sec\": %.6f, "
                 "\"mkeys_per_sec\": %.3f, \"speedup\": %.3f}%s\n",
                 rows[i].threads, rows[i].sec, n / rows[i].sec / 1e6,
                 rows.front().sec / rows[i].sec,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"skew\": {\n"
               "    \"num_keys\": %lld,\n"
               "    \"uniform_write_sim_sec\": %.9f,\n"
               "    \"skewed_write_sim_sec\": %.9f,\n"
               "    \"write_skew_ratio\": %.4f,\n"
               "    \"uniform_read_sim_sec\": %.9f,\n"
               "    \"skewed_read_sim_sec\": %.9f,\n"
               "    \"read_skew_ratio\": %.4f\n"
               "  }\n"
               "}\n",
               static_cast<long long>(skew_n), skew.uniform_write_sim_sec,
               skew.skewed_write_sim_sec, write_ratio,
               skew.uniform_read_sim_sec, skew.skewed_read_sim_sec,
               read_ratio);
  std::fclose(out);
  std::printf("wrote BENCH_kv.json\n");
  return 0;
}
