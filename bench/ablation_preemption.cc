// Preemption ablation (Sections 5.1 and 5.7): what the measured round
// traces of the AMPC and MPC MIS implementations cost in a shared data
// center where low-priority machines are preempted, under (a) Flume-style
// per-round fault tolerance and (b) a hypothetical in-memory engine that
// restarts the job on any preemption. This quantifies the paper's
// positioning of AMPC as a middle ground: it keeps the fault-tolerant
// discipline but needs far fewer (and cheaper) rounds than MPC.
//
// Memory pressure uses the *replayed* phase-resolved footprints
// (sim::ReplayMemoryPressureSeconds over Cluster::RoundKvWriteBytes):
// each round's preemption rates derive from the KV bytes accumulated up
// to that round, so early rounds run at the base rate and only the
// rounds after a shard fills pay the elevated risk. The final-footprint
// estimate (MemoryPressureRates over the cumulative bytes) is printed
// alongside — it judges the whole job by its end state and so
// overcharges every early round.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>

#include "bench_common.h"

#include "baselines/boruvka.h"
#include "baselines/rootset_mis.h"
#include "core/mis.h"
#include "core/msf.h"
#include "sim/faults.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  constexpr uint64_t kSeed = 42;

  // The stand-in datasets compress the paper's 100-4500 second jobs by
  // roughly three orders of magnitude, so the hourly preemption rates of
  // a real cell are compressed identically: "lo" ~ one preemption per
  // machine per 50 sim-seconds, "hi" ~ one per 5.
  constexpr double kLoRate = 1.0 / 50;
  constexpr double kHiRate = 1.0 / 5;

  PrintHeader("Ablation: preemption resilience (MIS round traces)",
              {"Dataset", "Engine", "Rounds", "Fault-free(s)", "FT@lo",
               "FT@hi", "Mem@hi(final)", "Mem@hi(replay)", "InMem@hi",
               "Inject@hi", "Lost"});
  for (const Dataset& d : LoadDatasets(3)) {
    // `job` runs one algorithm on a fresh cluster; report() runs it
    // twice — fault-free for the analytic treatments, then with the
    // same kHiRate actually *injected* (replicated recovery,
    // ClusterConfig::faults) so the closed-form expectations and one
    // deterministic realization of the event model sit side by side.
    auto report = [&](const char* engine,
                      const std::function<void(sim::Cluster&)>& job) {
      sim::Cluster cluster(BenchConfig(d.graph.num_arcs()));
      job(cluster);
      sim::PreemptionModel model;
      model.machines = cluster.config().num_machines;
      auto fmt = [](double seconds) {
        if (seconds < 1e4) return FmtDouble(seconds);
        // Whole-job restarts grow as e^{rate * job}: print the exponent
        // rather than a meaningless 20-digit figure.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1e", seconds);
        return std::string(buf);
      };
      auto at = [&](double rate, sim::RecoveryDiscipline discipline) {
        sim::PreemptionModel m = model;
        m.rate_per_machine_sec = rate;
        return fmt(sim::ExpectedCompletionSeconds(cluster.round_log(), m,
                                                  discipline));
      };
      // Memory pressure: the soft limit is half the hottest machine's
      // final KV footprint, so the pressured regime is entered partway
      // through the job — exactly where final-footprint and replayed
      // charging disagree.
      const std::vector<int64_t>& footprint =
          cluster.machine_kv_write_bytes();
      const int64_t hottest =
          *std::max_element(footprint.begin(), footprint.end());
      const int64_t soft_limit = std::max<int64_t>(1, hottest / 2);
      sim::PreemptionModel hi = model;
      hi.rate_per_machine_sec = kHiRate;
      const double mem_final = sim::ExpectedCompletionSeconds(
          cluster.round_log(),
          sim::MemoryPressureRates(hi, footprint, soft_limit),
          sim::RecoveryDiscipline::kFaultTolerant);
      const double mem_replay = sim::ReplayMemoryPressureSeconds(
          cluster.round_log(), cluster.RoundKvWriteBytes(), hi, soft_limit);
      // The injected treatment: the same job with machines actually
      // dying at kHiRate, recovered by re-streaming shards from
      // replicas (the new elastic-cluster subsystem).
      sim::ClusterConfig churn_config = BenchConfig(d.graph.num_arcs());
      churn_config.faults.fault_rate_per_machine_sec = kHiRate;
      churn_config.faults.replication = 2;
      sim::Cluster churn_cluster(churn_config);
      job(churn_cluster);
      PrintRow({d.name, engine,
                FmtInt(static_cast<int64_t>(cluster.round_log().size())),
                FmtDouble(cluster.SimSeconds()),
                at(kLoRate, sim::RecoveryDiscipline::kFaultTolerant),
                at(kHiRate, sim::RecoveryDiscipline::kFaultTolerant),
                fmt(mem_final), fmt(mem_replay),
                at(kHiRate, sim::RecoveryDiscipline::kInMemory),
                fmt(churn_cluster.SimSeconds()),
                FmtInt(churn_cluster.metrics().Get("machines_lost"))});
    };
    report("AMPC MIS", [&](sim::Cluster& cluster) {
      core::AmpcMis(cluster, d.graph, kSeed);
    });
    report("MPC MIS", [&](sim::Cluster& cluster) {
      baselines::MpcRootsetMis(cluster, d.graph, kSeed);
    });
    // MSF is the longest-running job in the study (Figure 7): the
    // fault-tolerance gap widens with job length.
    report("AMPC MSF", [&](sim::Cluster& cluster) {
      graph::WeightedEdgeList weighted =
          graph::MakeDegreeWeighted(d.edges, d.graph);
      core::MsfOptions options;
      options.seed = kSeed;
      core::AmpcMsf(cluster, weighted, options);
    });
    report("MPC MSF", [&](sim::Cluster& cluster) {
      graph::WeightedEdgeList weighted =
          graph::MakeDegreeWeighted(d.edges, d.graph);
      baselines::MpcBoruvkaMsf(cluster, weighted, kSeed);
    });
  }
  PrintPaperNote(
      "Sections 5.1/5.7: both engines tolerate preemptions by re-running "
      "only the current round; AMPC's fewer, shorter rounds lose less "
      "work per preemption. An in-memory engine (whole-job restart) "
      "degrades fastest, which is why production batch systems accept "
      "the durable-storage shuffle cost. Mem@hi compares final-footprint "
      "vs phase-replayed memory-pressure charging: the replay runs early "
      "rounds at the base rate, so Mem@hi(replay) <= Mem@hi(final). "
      "Inject@hi is the same rate realized as seeded kill events with "
      "replicated recovery (bench/micro_churn sweeps that model): one "
      "draw, so it scatters around FT@hi instead of matching it.");
  return 0;
}
