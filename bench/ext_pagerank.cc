// Extension experiment (paper Section 5.7, "Random-walk and Embedding"):
// PageRank with the AMPC Monte-Carlo engine (graph staged in the DHT
// once; every walk is a chain of KV lookups) against the MPC power
// iteration (one shuffle per iteration). The AMPC engine trades a small
// estimation error (reported as L1 distance to the exact ranks) for a
// constant number of costly rounds.
#include "bench_common.h"

#include "baselines/mpc_pagerank.h"
#include "core/pagerank.h"
#include "seq/pagerank.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;

  PrintHeader("Extension: PageRank (Section 5.7)",
              {"Dataset", "Engine", "Iters/Walks", "Shuffles", "KV-bytes",
               "Sim(s)", "L1-err"});
  for (const Dataset& d : LoadDatasets(4)) {
    seq::PageRankOptions exact_options;
    exact_options.tolerance = 1e-9;
    const seq::PageRankResult exact =
        seq::PageRankExact(d.graph, exact_options);
    {
      sim::Cluster cluster(BenchConfig(d.graph.num_arcs()));
      core::PageRankMcOptions options;
      options.walks_per_node = 16;
      core::PageRankMcResult mc =
          core::AmpcMonteCarloPageRank(cluster, d.graph, options);
      PrintRow({d.name, "AMPC-MC", FmtInt(options.walks_per_node) + "w",
                FmtInt(cluster.metrics().Get("shuffles")),
                FmtBytes(cluster.metrics().Get("kv_read_bytes") +
                         cluster.metrics().Get("kv_write_bytes")),
                FmtDouble(cluster.SimSeconds()),
                FmtDouble(seq::L1Distance(mc.rank, exact.rank), 4)});
    }
    {
      sim::Cluster cluster(BenchConfig(d.graph.num_arcs()));
      seq::PageRankOptions options;
      options.tolerance = 1e-6;  // production-style stopping rule
      baselines::MpcPageRankResult mpc =
          baselines::MpcPageRank(cluster, d.graph, options);
      PrintRow({d.name, "MPC-PI", FmtInt(mpc.iterations) + "it",
                FmtInt(cluster.metrics().Get("shuffles")),
                FmtBytes(cluster.metrics().Get("kv_read_bytes") +
                         cluster.metrics().Get("kv_write_bytes")),
                FmtDouble(cluster.SimSeconds()),
                FmtDouble(seq::L1Distance(mpc.rank, exact.rank), 4)});
    }
  }
  PrintPaperNote(
      "Section 5.7 names random-walk problems as promising AMPC targets. "
      "Expected shape: AMPC-MC uses 1 shuffle against the power "
      "iteration's one per iteration, at a modest L1 estimation error "
      "that shrinks as walks increase.");
  return 0;
}
