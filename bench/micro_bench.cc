// ampc-lint: allow(bench-gate): google-benchmark harness, not a gated
// invariant bench; the CI gates live in the self-contained micro_* mains.
// google-benchmark microbenchmarks for the substrate hot paths: hashing,
// KV store operations, RMQ construction/query, CSR construction, and the
// sequential finishers. These are the per-operation costs the simulated
// cost model abstracts over.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/kcore.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "kv/store.h"
#include "seq/exact_matching.h"
#include "seq/greedy.h"
#include "seq/kcore.h"
#include "seq/msf.h"
#include "seq/pagerank.h"
#include "sim/faults.h"
#include "trees/rmq.h"

namespace {

using namespace ampc;

void BM_Hash64(benchmark::State& state) {
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(x = Hash64(x, 42));
  }
}
BENCHMARK(BM_Hash64);

void BM_RngNextBelow(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextBelow(1000));
  }
}
BENCHMARK(BM_RngNextBelow);

void BM_KvStorePut(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    kv::Store<uint64_t> store(n);
    state.ResumeTiming();
    for (int64_t k = 0; k < n; ++k) store.Put(k, k);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KvStorePut)->Arg(1 << 14)->Arg(1 << 17);

void BM_KvStoreLookup(benchmark::State& state) {
  const int64_t n = state.range(0);
  kv::Store<uint64_t> store(n);
  for (int64_t k = 0; k < n; ++k) store.Put(k, k);
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Lookup(key));
    key = (key * 2654435761u + 1) % n;
  }
}
BENCHMARK(BM_KvStoreLookup)->Arg(1 << 17);

void BM_SparseTableBuild(benchmark::State& state) {
  const int64_t k = state.range(0);
  Rng rng(7);
  std::vector<int64_t> values(k);
  for (auto& v : values) v = static_cast<int64_t>(rng.Next());
  for (auto _ : state) {
    trees::MinSparseTable<int64_t> rmq(values);
    benchmark::DoNotOptimize(rmq.size());
  }
}
BENCHMARK(BM_SparseTableBuild)->Arg(1 << 12)->Arg(1 << 16);

void BM_SparseTableQuery(benchmark::State& state) {
  Rng rng(7);
  std::vector<int64_t> values(1 << 16);
  for (auto& v : values) v = static_cast<int64_t>(rng.Next());
  trees::MinSparseTable<int64_t> rmq(values);
  uint64_t x = 1;
  for (auto _ : state) {
    int64_t lo = static_cast<int64_t>(x % values.size());
    x = x * 6364136223846793005ULL + 1;
    int64_t hi = lo + static_cast<int64_t>(x % (values.size() - lo));
    x = x * 6364136223846793005ULL + 1;
    benchmark::DoNotOptimize(rmq.Query(lo, hi));
  }
}
BENCHMARK(BM_SparseTableQuery);

void BM_BuildGraphCsr(benchmark::State& state) {
  graph::EdgeList list =
      graph::GenerateRmat(14, state.range(0), 3);
  for (auto _ : state) {
    graph::Graph g = graph::BuildGraph(list);
    benchmark::DoNotOptimize(g.num_arcs());
  }
  state.SetItemsProcessed(state.iterations() * list.edges.size());
}
BENCHMARK(BM_BuildGraphCsr)->Arg(100'000);

void BM_KruskalFinisher(benchmark::State& state) {
  graph::EdgeList raw = graph::GenerateRmat(13, state.range(0), 5);
  graph::WeightedEdgeList list = graph::MakeRandomWeighted(raw, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::KruskalMsf(list));
  }
  state.SetItemsProcessed(state.iterations() * list.edges.size());
}
BENCHMARK(BM_KruskalFinisher)->Arg(100'000);

void BM_GreedyMisFinisher(benchmark::State& state) {
  graph::EdgeList list = graph::GenerateRmat(13, 100'000, 5);
  graph::Graph g = graph::BuildGraph(list);
  std::vector<uint64_t> ranks(g.num_nodes());
  for (size_t i = 0; i < ranks.size(); ++i) ranks[i] = Hash64(i, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::GreedyMis(g, ranks));
  }
}
BENCHMARK(BM_GreedyMisFinisher);

void BM_GreedyWeightMatchingFinisher(benchmark::State& state) {
  graph::EdgeList raw = graph::GenerateRmat(13, 100'000, 5);
  graph::WeightedEdgeList list = graph::MakeRandomWeighted(raw, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::GreedyWeightMatching(list));
  }
  state.SetItemsProcessed(state.iterations() * list.edges.size());
}
BENCHMARK(BM_GreedyWeightMatchingFinisher);

void BM_CorePeelingOracle(benchmark::State& state) {
  graph::Graph g =
      graph::BuildGraph(graph::GenerateRmat(14, state.range(0), 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::CoreDecomposition(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_CorePeelingOracle)->Arg(200'000);

void BM_HIndex(benchmark::State& state) {
  Rng rng(5);
  std::vector<int32_t> base(state.range(0));
  for (auto& v : base) v = static_cast<int32_t>(rng.NextBelow(1000));
  for (auto _ : state) {
    std::vector<int32_t> values = base;
    benchmark::DoNotOptimize(core::HIndex(values));
  }
  state.SetItemsProcessed(state.iterations() * base.size());
}
BENCHMARK(BM_HIndex)->Arg(64)->Arg(4096);

void BM_PageRankPowerIteration(benchmark::State& state) {
  graph::Graph g = graph::BuildGraph(graph::GenerateRmat(12, 80'000, 9));
  seq::PageRankOptions options;
  options.max_iterations = 10;
  options.tolerance = 0.0;  // fixed 10 iterations for a stable measure
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::PageRankExact(g, options));
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs() * 10);
}
BENCHMARK(BM_PageRankPowerIteration);

void BM_ExactMatchingDp(benchmark::State& state) {
  graph::EdgeList list =
      graph::GenerateErdosRenyi(state.range(0), 3 * state.range(0), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq::ExactMaximumMatchingSize(list));
  }
}
BENCHMARK(BM_ExactMatchingDp)->Arg(16)->Arg(20);

void BM_PreemptionModel(benchmark::State& state) {
  std::vector<double> rounds(state.range(0), 0.5);
  sim::PreemptionModel model;
  model.rate_per_machine_sec = 0.01;
  model.machines = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::ExpectedCompletionSeconds(
        rounds, model, sim::RecoveryDiscipline::kFaultTolerant));
  }
}
BENCHMARK(BM_PreemptionModel)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
