// Shared benchmark harness: the stand-in dataset registry and table
// printing helpers.
//
// The paper evaluates on five real graphs (Table 2): com-Orkut (OK),
// Twitter (TW), Friendster (FS), ClueWeb (CW) and Hyperlink2012 (HL),
// spanning 234M to 226B arcs. Those crawls cannot be shipped or fit on
// one host, so every bench runs on *structural stand-ins*: RMAT graphs
// whose relative size ordering and degree skew mirror the originals
// (social graphs: moderate skew; web graphs: heavy skew with large hubs).
// Absolute numbers therefore differ from the paper; the *shape* of each
// table/figure (who wins, by what factor, how it trends with size) is
// what each bench reproduces. Set AMPC_BENCH_SCALE to grow or shrink
// every dataset (default 1.0).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "sim/cluster.h"

namespace ampc::bench {

/// One stand-in dataset.
struct Dataset {
  std::string name;       // OK', TW', FS', CW', HL'
  std::string stands_for; // the paper dataset it substitutes
  graph::EdgeList edges;  // generated undirected edge list
  graph::Graph graph;     // symmetrized simple CSR
};

/// Generates the five stand-ins at the configured scale. `max_datasets`
/// truncates the list (benches that sweep many configurations use the
/// first 3 to stay fast).
std::vector<Dataset> LoadDatasets(int max_datasets = 5);

/// The benchmark cluster configuration used across all benches:
/// 8 machines x 8 worker threads, RDMA network, caching+multithreading
/// on, in-memory fallback threshold proportional to the graph (the paper
/// uses a fixed 5e7 edges against 234M-226B edge inputs; proportional
/// scaling preserves the phase counts).
sim::ClusterConfig BenchConfig(int64_t num_arcs);

/// The optimization-grid axes a bench sweeps. Every axis defaults to a
/// singleton (the standard benchmark value), so a bench declares only
/// the axes it varies and ConfigGrid enumerates the cross product —
/// the per-variant config-flipping previously repeated across
/// micro_lookup/micro_cache/micro_pipeline/fig4, declared once. New
/// axes (e.g. the tuner) are added here and every grid bench can sweep
/// them without new plumbing.
struct GridAxes {
  std::vector<kv::PlacementPolicy> placement = {kv::PlacementPolicy::kHash};
  std::vector<FrontierMode> frontier = {FrontierMode::kSparse};
  std::vector<bool> batch = {true};
  std::vector<bool> cache = {true};
  std::vector<bool> multithreading = {true};
  std::vector<int> depth = {4};
  std::vector<bool> auto_tune = {false};
};

/// One cell of the cross product: the knob values plus a label naming
/// the axes that actually vary across the grid.
struct GridCell {
  kv::PlacementPolicy placement = kv::PlacementPolicy::kHash;
  FrontierMode frontier = FrontierMode::kSparse;
  bool batch = true;
  bool cache = true;
  bool multithreading = true;
  int depth = 4;
  bool auto_tune = false;
  std::string label;

  /// Writes the cell's knobs into `config` (only the grid axes; the
  /// caller keeps ownership of everything else — machines, network,
  /// spawn cost, thresholds).
  void ApplyTo(sim::ClusterConfig& config) const;
};

/// Enumerates the cross product of `axes`, outermost axis first in the
/// declaration order of GridAxes (placement, frontier, batch, cache,
/// multithreading, depth, auto_tune); each axis iterates in the order
/// its values were given. Cell labels name only the varying axes.
std::vector<GridCell> ConfigGrid(const GridAxes& axes);

/// AMPC_BENCH_SCALE (default 1.0).
double BenchScale();

/// Repetition count from the named environment variable (benches keep
/// their historical per-bench names, e.g. AMPC_SHUFFLE_REPS /
/// AMPC_KV_REPS), falling back to `default_reps` when unset or invalid.
int Reps(const char* env_name, int default_reps = 3);

/// Best-of-N timing: the minimum of `reps` runs of `fn`.
template <typename Fn>
double BestOf(int reps, Fn fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double sec = fn();
    if (sec < best) best = sec;
  }
  return best;
}

/// Simple fixed-width table printing.
void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);
void PrintPaperNote(const std::string& note);

std::string FmtInt(int64_t v);
std::string FmtDouble(double v, int precision = 2);
std::string FmtBytes(int64_t bytes);

}  // namespace ampc::bench
