// micro_churn — injected machine failures under three recovery
// disciplines: whole-job restart, shard replication, and periodic
// checkpoints.
//
// The paper frames AMPC as the middle ground between persistent-storage
// systems and all-in-memory systems that "do not tolerate preemptions
// well" (Sections 5.1/5.7). sim/faults.h prices that risk analytically;
// this bench makes it happen: a seeded FaultInjector
// (ClusterConfig::faults) kills machines mid-job at Poisson rates, and
// the cluster recovers by whichever discipline the config allows —
// re-streaming the dead machine's shards from surviving replicas
// (replication > 1), restoring its last checkpoint and replaying the
// rounds since (checkpoint_period > 0), or replaying the whole job
// (neither: the in-memory baseline). One job — the adaptive cores MIS,
// maximal matching, k-core, connected components and Monte-Carlo
// PageRank run back to back on one stand-in graph — is swept over
// kill-rate x treatment, and every cell's outputs are compared
// bit-for-bit against the fault-free run.
//
// The run FAILS (exit 1) unless
//   (a) replicated and checkpointed recovery each *strictly* beat
//       whole-job restart at every non-zero kill rate (and machines
//       actually died in every such cell — the sweep is vacuous
//       otherwise), and
//   (b) every algorithm's output under injected churn is bit-identical
//       to its fault-free run: recovery is a cost event, never a
//       correctness event.
// Everything is a pure function of the seeds, so the gates are
// deterministic: CI regression-tests the recovery cost model here.
//
//   AMPC_BENCH_SCALE   scales the graph (default 1.0 => 4096 nodes)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/connectivity.h"
#include "graph/generators.h"
#include "core/kcore.h"
#include "core/matching.h"
#include "core/mis.h"
#include "core/pagerank.h"
#include "graph/graph.h"
#include "sim/cluster.h"

namespace {

constexpr int kMachines = 8;
constexpr uint64_t kAlgoSeed = 17;
constexpr uint64_t kKillSeed = 42;

// The three recovery disciplines, as fault-config shapes.
struct Treatment {
  const char* name;
  int replication;
  double checkpoint_period;  // resolved against the fault-free job time
};

struct JobOutputs {
  std::vector<uint8_t> mis;
  std::vector<ampc::graph::NodeId> matching;
  std::vector<int32_t> kcore;
  std::vector<ampc::graph::NodeId> components;
  std::vector<double> pagerank;

  bool operator==(const JobOutputs&) const = default;
};

struct CellResult {
  JobOutputs outputs;
  double sim_sec = 0;
  double recovery_sec = 0;
  double replay_sec = 0;
  int64_t machines_lost = 0;
  int64_t domains_lost = 0;
  int64_t replication_bytes = 0;
  int64_t checkpoints = 0;
  int64_t checkpoint_bytes = 0;
};

// One job: the five adaptive cores back to back on one cluster, so the
// kill schedule sees every driver path (scalar lookups, batched and
// pipelined frontiers, write phases, shuffles) in one simulated
// timeline.
CellResult RunJob(const ampc::graph::EdgeList& edges,
                  const ampc::graph::Graph& g, double fault_rate,
                  const Treatment& treatment) {
  ampc::sim::ClusterConfig config;
  config.num_machines = kMachines;
  config.threads_per_machine = 4;
  config.faults.fault_rate_per_machine_sec = fault_rate;
  config.faults.fault_seed = kKillSeed;
  config.faults.replication = treatment.replication;
  config.faults.checkpoint_period_sec = treatment.checkpoint_period;
  ampc::sim::Cluster cluster(config);

  CellResult cell;
  cell.outputs.mis = ampc::core::AmpcMis(cluster, g, kAlgoSeed).in_mis;
  ampc::core::MatchingOptions matching_options;
  matching_options.seed = kAlgoSeed;
  cell.outputs.matching =
      ampc::core::AmpcMatching(cluster, g, matching_options).partner;
  cell.outputs.kcore = ampc::core::AmpcKCore(cluster, g).coreness;
  cell.outputs.components =
      ampc::core::AmpcConnectivity(cluster, edges).component;
  ampc::core::PageRankMcOptions pr_options;
  pr_options.seed = kAlgoSeed;
  pr_options.walks_per_node = 4;
  cell.outputs.pagerank =
      ampc::core::AmpcMonteCarloPageRank(cluster, g, pr_options).rank;

  cell.sim_sec = cluster.SimSeconds();
  cell.recovery_sec = cluster.metrics().GetTime("sim:recovery");
  cell.replay_sec = cluster.metrics().GetTime("recovery_replay_seconds");
  cell.machines_lost = cluster.metrics().Get("machines_lost");
  cell.domains_lost = cluster.metrics().Get("domains_lost");
  cell.replication_bytes = cluster.metrics().Get("kv_replication_bytes");
  cell.checkpoints = cluster.metrics().Get("checkpoints");
  cell.checkpoint_bytes = cluster.metrics().Get("checkpoint_bytes");
  return cell;
}

}  // namespace

int main() {
  const double scale = ampc::bench::BenchScale();
  const int64_t nodes =
      std::max<int64_t>(256, static_cast<int64_t>(4096 * scale));
  const int64_t num_edges =
      std::max<int64_t>(1024, static_cast<int64_t>(24576 * scale));
  int log2_nodes = 1;
  while ((int64_t{1} << log2_nodes) < nodes) ++log2_nodes;
  const ampc::graph::EdgeList edges =
      ampc::graph::GenerateRmat(log2_nodes, num_edges, kAlgoSeed);
  const ampc::graph::Graph g = ampc::graph::BuildGraph(edges);

  std::printf(
      "micro_churn: %lld nodes, %lld arcs, %d machines, kill seed %llu\n",
      static_cast<long long>(g.num_nodes()),
      static_cast<long long>(g.num_arcs()),
      kMachines, static_cast<unsigned long long>(kKillSeed));

  // Fault-free reference (restart shape, rate 0): the bit-identity
  // baseline and the yardstick for the checkpoint period.
  const Treatment kRestart = {"restart", 1, 0.0};
  const CellResult reference = RunJob(edges, g, 0.0, kRestart);
  const double cp_period = reference.sim_sec / 8.0;
  const Treatment kReplicated = {"replicated", 2, 0.0};
  const Treatment kCheckpointed = {"checkpointed", 1, cp_period};
  const Treatment* kTreatments[] = {&kRestart, &kReplicated,
                                    &kCheckpointed};
  // Kill rates per machine-second of simulated time. The job runs a few
  // simulated seconds across 8 machines, so these give a handful of
  // kills through a few dozen — enough churn that every treatment's
  // recovery path actually runs. Higher rates make the *unprotected*
  // job's renewal blow-up (exp in rate x job seconds, sim/faults.h)
  // overflow the nanosecond-resolution metric timers, so the sweep
  // stops at 1.0.
  const double kRates[] = {0.0, 0.25, 0.5, 1.0};

  struct GridRow {
    double rate;
    const Treatment* treatment;
    CellResult cell;
  };
  std::vector<GridRow> grid;
  for (const double rate : kRates) {
    for (const Treatment* treatment : kTreatments) {
      grid.push_back(GridRow{rate, treatment,
                             RunJob(edges, g, rate, *treatment)});
    }
  }
  auto find = [&](double rate, const Treatment& t) -> const CellResult& {
    for (const GridRow& row : grid) {
      if (row.rate == rate && row.treatment == &t) return row.cell;
    }
    std::abort();
  };

  ampc::bench::PrintHeader(
      "micro_churn: five-core job under injected machine failures",
      {"kill rate", "treatment", "sim sec", "lost", "recovery s",
       "replay s", "ckpts"});
  for (const GridRow& row : grid) {
    ampc::bench::PrintRow(
        {ampc::bench::FmtDouble(row.rate, 1), row.treatment->name,
         ampc::bench::FmtDouble(row.cell.sim_sec, 4),
         ampc::bench::FmtInt(row.cell.machines_lost),
         ampc::bench::FmtDouble(row.cell.recovery_sec, 4),
         ampc::bench::FmtDouble(row.cell.replay_sec, 4),
         ampc::bench::FmtInt(row.cell.checkpoints)});
  }
  ampc::bench::PrintPaperNote(
      "a lost machine costs a bounded replay, never a full restart "
      "(Section 5.7): replicas re-stream the dead shard over the NIC, "
      "checkpoints restore it from durable storage plus the rounds "
      "since; with neither, the whole job re-runs — the in-memory "
      "baseline both disciplines must beat");

  // Gate (b): outputs never move. Every cell, every algorithm,
  // bit-identical to the fault-free reference.
  for (const GridRow& row : grid) {
    if (!(row.cell.outputs == reference.outputs)) {
      std::fprintf(stderr,
                   "FATAL: outputs diverged under churn (rate %.1f, "
                   "treatment %s) — recovery must never be a "
                   "correctness event\n",
                   row.rate, row.treatment->name);
      return 1;
    }
  }

  // Gate (a): at every non-zero kill rate, both protected disciplines
  // strictly beat whole-job restart, and the comparison is not vacuous.
  for (const double rate : kRates) {
    if (rate == 0.0) continue;
    const CellResult& restart = find(rate, kRestart);
    for (const Treatment* t : {&kReplicated, &kCheckpointed}) {
      const CellResult& protected_cell = find(rate, *t);
      if (protected_cell.machines_lost == 0 ||
          restart.machines_lost == 0) {
        std::fprintf(stderr,
                     "FATAL: no machines died at rate %.1f (%s %lld, "
                     "restart %lld) — the sweep is vacuous; raise the "
                     "rate\n",
                     rate, t->name,
                     static_cast<long long>(protected_cell.machines_lost),
                     static_cast<long long>(restart.machines_lost));
        return 1;
      }
      if (protected_cell.sim_sec >= restart.sim_sec) {
        std::fprintf(stderr,
                     "FATAL: %s recovery did not strictly beat "
                     "whole-job restart at rate %.1f (%.4f vs %.4f "
                     "simulated seconds)\n",
                     t->name, rate, protected_cell.sim_sec,
                     restart.sim_sec);
        return 1;
      }
    }
  }

  FILE* out = std::fopen("BENCH_churn.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_churn.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"micro_churn\",\n"
               "  \"nodes\": %lld,\n"
               "  \"edges\": %lld,\n"
               "  \"machines\": %d,\n"
               "  \"kill_seed\": %llu,\n"
               "  \"checkpoint_period_sec\": %.9f,\n"
               "  \"fault_free_sim_sec\": %.9f,\n"
               "  \"grid\": [\n",
               static_cast<long long>(g.num_nodes()),
               static_cast<long long>(g.num_arcs()), kMachines,
               static_cast<unsigned long long>(kKillSeed), cp_period,
               reference.sim_sec);
  for (size_t i = 0; i < grid.size(); ++i) {
    const GridRow& row = grid[i];
    std::fprintf(
        out,
        "    {\"kill_rate\": %.2f, \"treatment\": \"%s\", "
        "\"replication\": %d, \"sim_sec\": %.9f, "
        "\"machines_lost\": %lld, \"domains_lost\": %lld, "
        "\"recovery_sec\": %.9f, "
        "\"replay_sec\": %.9f, \"replication_bytes\": %lld, "
        "\"checkpoints\": %lld, \"checkpoint_bytes\": %lld, "
        "\"outputs_identical\": true}%s\n",
        row.rate, row.treatment->name, row.treatment->replication,
        row.cell.sim_sec, static_cast<long long>(row.cell.machines_lost),
        static_cast<long long>(row.cell.domains_lost),
        row.cell.recovery_sec, row.cell.replay_sec,
        static_cast<long long>(row.cell.replication_bytes),
        static_cast<long long>(row.cell.checkpoints),
        static_cast<long long>(row.cell.checkpoint_bytes),
        i + 1 < grid.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_churn.json\n");
  return 0;
}
