// Reproduces Figure 3: bytes shuffled by the AMPC and MPC MIS
// implementations, and the AMPC algorithm's total communication with the
// key-value store, per dataset.
#include "bench_common.h"

#include "baselines/rootset_mis.h"
#include "core/mis.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  constexpr uint64_t kSeed = 42;

  PrintHeader("Figure 3: MIS shuffle bytes & KV communication",
              {"Dataset", "AMPC-Shuffle", "AMPC-KV-Comm", "MPC-Shuffle",
               "MPC/AMPC"});
  for (const Dataset& d : LoadDatasets()) {
    sim::Cluster ampc_cluster(BenchConfig(d.graph.num_arcs()));
    core::AmpcMis(ampc_cluster, d.graph, kSeed);
    const int64_t ampc_shuffle =
        ampc_cluster.metrics().Get("shuffle_bytes");
    const int64_t ampc_kv = ampc_cluster.metrics().Get("kv_read_bytes") +
                            ampc_cluster.metrics().Get("kv_write_bytes");

    sim::Cluster mpc_cluster(BenchConfig(d.graph.num_arcs()));
    baselines::MpcRootsetMis(mpc_cluster, d.graph, kSeed);
    const int64_t mpc_shuffle = mpc_cluster.metrics().Get("shuffle_bytes");

    PrintRow({d.name, FmtBytes(ampc_shuffle), FmtBytes(ampc_kv),
              FmtBytes(mpc_shuffle),
              FmtDouble(static_cast<double>(mpc_shuffle) / ampc_shuffle)});
  }
  PrintPaperNote(
      "Figure 3: AMPC always shuffles significantly fewer bytes (its one "
      "shuffle writes ~the input graph); KV communication is typically "
      "below the MPC shuffle volume except on ClueWeb-like skew.");
  return 0;
}
