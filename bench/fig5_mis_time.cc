// Reproduces Figure 5: normalized running times for the AMPC and MPC MIS
// implementations, with the AMPC time broken into its three phases
// (DirectGraph shuffle, KV-Write, IsInMIS search).
#include "bench_common.h"

#include "baselines/rootset_mis.h"
#include "core/mis.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  constexpr uint64_t kSeed = 42;

  PrintHeader("Figure 5: MIS time breakdown (simulated seconds)",
              {"Dataset", "DirectGraph", "KV-Write", "IsInMIS", "AMPC-total",
               "MPC-total", "Speedup"});
  for (const Dataset& d : LoadDatasets()) {
    sim::Cluster ampc_cluster(BenchConfig(d.graph.num_arcs()));
    core::AmpcMis(ampc_cluster, d.graph, kSeed);
    Metrics& am = ampc_cluster.metrics();
    const double direct = am.GetTime("sim:DirectGraph");
    const double kv_write = am.GetTime("sim:KV-Write");
    const double search = am.GetTime("sim:IsInMIS");
    const double ampc_total = ampc_cluster.SimSeconds();

    sim::Cluster mpc_cluster(BenchConfig(d.graph.num_arcs()));
    baselines::MpcRootsetMis(mpc_cluster, d.graph, kSeed);
    const double mpc_total = mpc_cluster.SimSeconds();

    PrintRow({d.name, FmtDouble(direct), FmtDouble(kv_write),
              FmtDouble(search), FmtDouble(ampc_total),
              FmtDouble(mpc_total), FmtDouble(mpc_total / ampc_total)});
  }
  PrintPaperNote(
      "Figure 5: AMPC 2.31-3.18x faster than MPC on every input; "
      "DirectGraph shuffle dominates small graphs (2.06-3.24x IsInMIS), "
      "IsInMIS grows to 1.38-1.43x DirectGraph on the largest; KV-Write "
      "<= 8% of total.");
  return 0;
}
