// Reproduces Figure 9: total bytes of communication to the key-value
// store by the AMPC algorithms (MIS, MM, MSF) as a function of the number
// of edges — the paper observes a consistent linear trend.
#include "bench_common.h"

#include "core/matching.h"
#include "core/mis.h"
#include "core/msf.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  constexpr uint64_t kSeed = 42;

  PrintHeader("Figure 9: KV-store communication vs edges (bytes)",
              {"Dataset", "m(arcs)", "MIS", "MM", "MSF", "MIS/m", "MM/m",
               "MSF/m"});
  for (const Dataset& d : LoadDatasets()) {
    const int64_t arcs = d.graph.num_arcs();
    auto kv_total = [](sim::Cluster& cluster) {
      return cluster.metrics().Get("kv_read_bytes") +
             cluster.metrics().Get("kv_write_bytes");
    };

    sim::Cluster mis_cluster(BenchConfig(arcs));
    core::AmpcMis(mis_cluster, d.graph, kSeed);
    const int64_t mis_bytes = kv_total(mis_cluster);

    sim::Cluster mm_cluster(BenchConfig(arcs));
    core::MatchingOptions mm_options;
    mm_options.seed = kSeed;
    core::AmpcMatching(mm_cluster, d.graph, mm_options);
    const int64_t mm_bytes = kv_total(mm_cluster);

    sim::Cluster msf_cluster(BenchConfig(arcs));
    graph::WeightedEdgeList weighted =
        graph::MakeDegreeWeighted(d.edges, d.graph);
    core::MsfOptions msf_options;
    msf_options.seed = kSeed;
    core::AmpcMsf(msf_cluster, weighted, msf_options);
    const int64_t msf_bytes = kv_total(msf_cluster);

    PrintRow({d.name, FmtInt(arcs), FmtBytes(mis_bytes), FmtBytes(mm_bytes),
              FmtBytes(msf_bytes),
              FmtDouble(static_cast<double>(mis_bytes) / arcs, 1),
              FmtDouble(static_cast<double>(mm_bytes) / arcs, 1),
              FmtDouble(static_cast<double>(msf_bytes) / arcs, 1)});
  }
  PrintPaperNote(
      "Figure 9: KV communication grows linearly with the number of edges "
      "for all three algorithms (near-constant bytes-per-edge columns).");
  return 0;
}
