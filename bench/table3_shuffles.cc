// Reproduces Table 3: the number of shuffles (costly rounds) used by the
// AMPC and MPC implementations of MIS, Maximal Matching and MSF on every
// dataset.
#include "bench_common.h"

#include "baselines/boruvka.h"
#include "baselines/rootset_matching.h"
#include "baselines/rootset_mis.h"
#include "core/matching.h"
#include "core/mis.h"
#include "core/msf.h"

int main() {
  using namespace ampc;
  using namespace ampc::bench;
  constexpr uint64_t kSeed = 42;

  std::vector<Dataset> datasets = LoadDatasets();
  std::vector<std::string> header = {"Algorithm"};
  for (const Dataset& d : datasets) header.push_back(d.name);
  PrintHeader("Table 3: shuffles (costly rounds)", header);

  std::vector<std::string> ampc_mis = {"AMPC MIS"};
  std::vector<std::string> ampc_mm = {"AMPC MM"};
  std::vector<std::string> ampc_msf = {"AMPC MSF"};
  std::vector<std::string> mpc_mis = {"MPC MIS"};
  std::vector<std::string> mpc_mm = {"MPC MM"};
  std::vector<std::string> mpc_msf = {"MPC MSF"};

  for (const Dataset& d : datasets) {
    const int64_t arcs = d.graph.num_arcs();
    {
      sim::Cluster cluster(BenchConfig(arcs));
      core::AmpcMis(cluster, d.graph, kSeed);
      ampc_mis.push_back(FmtInt(cluster.metrics().Get("shuffles")));
    }
    {
      sim::Cluster cluster(BenchConfig(arcs));
      core::MatchingOptions options;
      options.seed = kSeed;
      core::AmpcMatching(cluster, d.graph, options);
      ampc_mm.push_back(FmtInt(cluster.metrics().Get("shuffles")));
    }
    {
      sim::Cluster cluster(BenchConfig(arcs));
      graph::WeightedEdgeList weighted =
          graph::MakeDegreeWeighted(d.edges, d.graph);
      core::MsfOptions options;
      options.seed = kSeed;
      core::AmpcMsf(cluster, weighted, options);
      ampc_msf.push_back(FmtInt(cluster.metrics().Get("shuffles")));
    }
    {
      sim::Cluster cluster(BenchConfig(arcs));
      baselines::MpcRootsetMis(cluster, d.graph, kSeed);
      mpc_mis.push_back(FmtInt(cluster.metrics().Get("shuffles")));
    }
    {
      sim::Cluster cluster(BenchConfig(arcs));
      baselines::MpcRootsetMatching(cluster, d.graph, kSeed);
      mpc_mm.push_back(FmtInt(cluster.metrics().Get("shuffles")));
    }
    {
      sim::Cluster cluster(BenchConfig(arcs));
      graph::WeightedEdgeList weighted =
          graph::MakeDegreeWeighted(d.edges, d.graph);
      baselines::MpcBoruvkaMsf(cluster, weighted, kSeed);
      mpc_msf.push_back(FmtInt(cluster.metrics().Get("shuffles")));
    }
  }
  PrintRow(ampc_mis);
  PrintRow(ampc_mm);
  PrintRow(ampc_msf);
  PrintRow(mpc_mis);
  PrintRow(mpc_mm);
  PrintRow(mpc_msf);
  PrintPaperNote(
      "Table 3: AMPC MIS/MM = 1 shuffle, AMPC MSF = 5; MPC MIS 8-14, "
      "MPC MM 8-16, MPC MSF 33-84 growing with graph size.");
  return 0;
}
