// Network cost models for the simulated distributed hash table.
//
// The paper's DHT is backed by RDMA, with a TCP/IP fallback evaluated in
// Table 4, and observes (Section 5.7) an aggregate network ceiling of
// about 80 Gb/s across the job. We model a KV operation's simulated cost
// as  latency + bytes / per_machine_bytes_per_sec,  and cap the cluster's
// aggregate KV throughput at aggregate_bytes_per_sec, which produces the
// sublinear self-speedup shape of Figure 8.
#pragma once

#include <string>

namespace ampc::kv {

/// Cost model for one side of the KV communication.
struct NetworkModel {
  std::string name;
  /// Per-lookup round-trip latency (seconds).
  double lookup_latency_sec = 0;
  /// Per-write latency (seconds); writes are batched in practice so this
  /// is lower than lookup latency.
  double write_latency_sec = 0;
  /// Per-machine NIC throughput for KV payload bytes.
  double bytes_per_sec = 1e12;
  /// Cluster-wide ceiling on aggregate KV throughput (paper §5.7: about
  /// 80 Gb/s ≈ 1e10 bytes/s).
  double aggregate_bytes_per_sec = 1e13;

  /// RDMA-backed store: ~2.5us lookups (an order of magnitude slower than
  /// DRAM, per §5.3), 20 Gbps NIC, 80 Gb/s aggregate ceiling.
  static NetworkModel Rdma();

  /// TCP/IP RPC store, calibrated against Table 4's published slowdown
  /// bands: 5x the RDMA round-trip latency (latency-bound phases land in
  /// the 1.74-5.90x 1-vs-2-Cycle band) and ~1.56x less per-NIC KV
  /// throughput (bandwidth-bound phases land in the 1.50-1.85x MIS band).
  static NetworkModel TcpIp();

  /// Zero-cost network for unit tests that only check outputs.
  static NetworkModel Free();
};

}  // namespace ampc::kv
