#include "kv/network_model.h"

namespace ampc::kv {

NetworkModel NetworkModel::Rdma() {
  NetworkModel m;
  m.name = "RDMA";
  m.lookup_latency_sec = 2.5e-6;
  m.write_latency_sec = 0.5e-6;
  m.bytes_per_sec = 2.5e9;            // 20 Gbps NIC
  m.aggregate_bytes_per_sec = 1.0e10;  // ~80 Gb/s ceiling (paper §5.7)
  return m;
}

NetworkModel NetworkModel::TcpIp() {
  NetworkModel m;
  m.name = "TCP/IP";
  m.lookup_latency_sec = 25e-6;
  m.write_latency_sec = 5e-6;
  m.bytes_per_sec = 1.2e9;
  m.aggregate_bytes_per_sec = 1.0e10;
  return m;
}

NetworkModel NetworkModel::Free() {
  NetworkModel m;
  m.name = "free";
  m.lookup_latency_sec = 0;
  m.write_latency_sec = 0;
  m.bytes_per_sec = 1e15;
  m.aggregate_bytes_per_sec = 1e15;
  return m;
}

}  // namespace ampc::kv
