#include "kv/network_model.h"

namespace ampc::kv {

// Calibration targets (paper Table 4 + Sections 5.3/5.7):
//   * RDMA lookups take ~2.5us, "an order of magnitude slower than
//     DRAM" (Section 5.3); NICs are 20 Gbps with an ~80 Gb/s aggregate
//     job ceiling (Section 5.7).
//   * Table 4 pins the TCP/IP penalty band: the latency-bound
//     1-vs-2-Cycle walks run 1.74x-5.90x slower over TCP, while the
//     bandwidth-heavier MIS only loses 1.50x-1.85x. We therefore model
//     TCP as 5x the RDMA round-trip latency (a latency-bound phase
//     asymptotically lands at 5.0x, inside the published 1.74-5.90
//     band) and 1.5625x less per-NIC KV throughput (a bandwidth-bound
//     phase lands at 1.5625x, inside the published 1.50-1.85 band).
//     tests/network_calibration_test.cc pins both bands.

NetworkModel NetworkModel::Rdma() {
  NetworkModel m;
  m.name = "RDMA";
  m.lookup_latency_sec = 2.5e-6;
  m.write_latency_sec = 0.5e-6;
  m.bytes_per_sec = 2.5e9;            // 20 Gbps NIC
  m.aggregate_bytes_per_sec = 1.0e10;  // ~80 Gb/s ceiling (paper §5.7)
  return m;
}

NetworkModel NetworkModel::TcpIp() {
  NetworkModel m;
  m.name = "TCP/IP";
  m.lookup_latency_sec = 12.5e-6;      // 5x RDMA (Table 4 latency band)
  m.write_latency_sec = 2.5e-6;
  m.bytes_per_sec = 1.6e9;             // 1.5625x below RDMA (Table 4 MIS band)
  m.aggregate_bytes_per_sec = 1.0e10;
  return m;
}

NetworkModel NetworkModel::Free() {
  NetworkModel m;
  m.name = "free";
  m.lookup_latency_sec = 0;
  m.write_latency_sec = 0;
  m.bytes_per_sec = 1e15;
  m.aggregate_bytes_per_sec = 1e15;
  return m;
}

}  // namespace ampc::kv
