// A dense slot table: the building block of the simulated DHT.
//
// AMPC computations write each round's data into a fresh store D_i and the
// next round reads D_i with random access (paper Section 2). The paper's
// stores key by consecutive integers ("the input data is stored in D0 and
// uses a set of keys known to all machines (e.g., consecutive integers)"),
// so this simulation uses dense, fixed-capacity slot tables: key k lives
// in slot k. The DHT itself is kv::ShardedStore (sharded_store.h), which
// hash-partitions the key space across logical machines and owns one
// Store per shard; Store remains usable directly when per-machine
// placement is irrelevant (unit tests, scratch tables).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/logging.h"
#include "kv/byte_size.h"

namespace ampc::kv {

/// A dense key -> V store. Keys must be < capacity. Writes are
/// thread-safe (per-slot publication via an atomic presence flag);
/// Lookup is thread-safe with respect to completed writes of other keys.
/// Re-writing an existing key is not supported (AMPC stores are
/// write-once per round).
template <typename V>
class Store {
 public:
  explicit Store(int64_t capacity)
      : slots_(capacity), present_(capacity) {
    for (auto& p : present_) p.store(0, std::memory_order_relaxed);
  }

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  int64_t capacity() const { return static_cast<int64_t>(slots_.size()); }

  /// Inserts (key, value). Returns the wire size of the record.
  int64_t Put(uint64_t key, V value) {
    AMPC_CHECK_LT(key, slots_.size());
    AMPC_CHECK_EQ(present_[key].load(std::memory_order_acquire), 0)
        << "duplicate Put for key " << key;
    slots_[key] = std::move(value);
    present_[key].store(1, std::memory_order_release);
    count_.fetch_add(1, std::memory_order_relaxed);
    const int64_t record_bytes = kKeyBytes + KvByteSize(slots_[key]);
    bytes_.fetch_add(record_bytes, std::memory_order_relaxed);
    return record_bytes;
  }

  /// Returns the value for `key`, or nullptr when absent.
  const V* Lookup(uint64_t key) const {
    if (key >= slots_.size()) return nullptr;
    if (present_[key].load(std::memory_order_acquire) == 0) return nullptr;
    return &slots_[key];
  }

  bool Contains(uint64_t key) const { return Lookup(key) != nullptr; }

  /// Wire size of the record for `key` (0 when absent).
  int64_t RecordBytes(uint64_t key) const {
    const V* v = Lookup(key);
    return v == nullptr ? 0 : kKeyBytes + KvByteSize(*v);
  }

  /// Number of present keys. O(1): maintained as an atomic insert
  /// counter (keys are write-once, so inserts never repeat).
  int64_t size() const { return count_.load(std::memory_order_relaxed); }

  /// Total wire bytes of every record inserted so far. O(1): maintained
  /// as an atomic byte counter alongside the insert counter.
  int64_t total_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<V> slots_;
  mutable std::vector<std::atomic<uint8_t>> present_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> bytes_{0};
};

}  // namespace ampc::kv
