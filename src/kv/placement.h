// Placement policies and batched-lookup types for the simulated DHT.
//
// The paper's DHT hides its ~2.5us RDMA round-trip by batching and
// pipelining adaptive queries (Section 5.3): a client gathers the keys an
// adaptive step needs, groups them by owning machine, and ships one
// request per destination instead of one per key. Two pieces of that
// pipeline live here:
//
//   * Placement — the key -> machine assignment, pluggable behind the
//     hash baseline (kv::ShardForKey). Range and affinity variants let
//     the simulator study placement policies (ROADMAP): range keeps the
//     key space contiguous per machine, affinity keeps fixed-size blocks
//     of consecutive keys together so pointer chains over nearby ids hit
//     fewer destinations per batch.
//   * LookupBatch / LookupBatchResult — the request/response pair of a
//     batched read. The response carries the per-batch accounting the
//     cost model charges (total wire bytes, distinct destinations).
//   * ReplicaSet — the replication side of placement: with a
//     replication factor R, each shard's records also live on R - 1
//     *follower* machines (distinct from the primary), so a machine
//     lost to preemption can be rebuilt by streaming its shard from a
//     surviving follower instead of replaying the job
//     (sim::ClusterConfig::faults). FailoverTarget picks the follower a
//     dead machine's shard re-routes to.
//
// Both kv::ShardedStore and sim::Cluster::MachineOf place through the
// same Placement, so the machine running work item v is still the
// machine whose shard holds record v under every policy.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace ampc::kv {

/// The shard (= logical machine) owning `key` under `seed` for the hash
/// baseline. Kept as a free function: it is the default placement and
/// the one the paper's implementation uses.
inline int ShardForKey(uint64_t key, uint64_t seed, int num_shards) {
  return static_cast<int>(Hash64(key, seed ^ 0x6d61636821ULL) %
                          static_cast<uint64_t>(num_shards));
}

/// How keys map to machines.
enum class PlacementPolicy {
  /// Seeded hash of the key (the paper's DHT; load-balanced, oblivious).
  kHash,
  /// Contiguous key ranges: shard = key * num_shards / capacity. Best
  /// locality for id-ordered scans, worst exposure to id-correlated
  /// hot spots.
  kRange,
  /// Hash of the key's block (key / block_size): consecutive keys stay
  /// together, blocks scatter like the hash baseline.
  kAffinity,
};

inline const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kHash:
      return "hash";
    case PlacementPolicy::kRange:
      return "range";
    case PlacementPolicy::kAffinity:
      return "affinity";
  }
  return "?";
}

/// Rack-level fault domain of a machine: machines [d * per, (d+1) * per)
/// share switch and power, so a correlated failure takes them out
/// together. per <= 1 means every machine is its own domain (the
/// domain-oblivious historical model).
inline int FaultDomainOf(int machine, int machines_per_domain) {
  return machines_per_domain > 1 ? machine / machines_per_domain : machine;
}

/// The machines holding copies of one shard: `machines[0]` is the
/// primary (the Placement's ShardOf), `machines[1..R-1]` the followers,
/// all distinct. A pure value type minted by Placement::ReplicasOfShard.
struct ReplicaSet {
  std::vector<int> machines;

  int primary() const { return machines.empty() ? 0 : machines[0]; }
  int replication() const { return static_cast<int>(machines.size()); }

  /// The surviving machine a dead primary's shard re-routes to — the
  /// first follower not in `dead` (dead[m] != 0 means machine m is
  /// currently down) — or -1 when every copy is lost and the shard must
  /// be restored from a checkpoint or recomputed.
  int FailoverTarget(const std::vector<uint8_t>& dead) const {
    for (size_t i = 1; i < machines.size(); ++i) {
      const int m = machines[i];
      if (static_cast<size_t>(m) >= dead.size() || !dead[m]) return m;
    }
    return -1;
  }

  /// Whether the copies cover as many distinct fault domains as they
  /// possibly can — min(copies, number of domains) — so no single rack
  /// loss wipes every replica while a spare domain existed. This is the
  /// invariant domain-aware placement guarantees; domain-oblivious
  /// placement can violate it whenever machines_per_domain > 1.
  bool SpansDomains(int machines_per_domain, int num_machines) const {
    const int per = std::max(1, machines_per_domain);
    const int num_domains = (num_machines + per - 1) / per;
    std::vector<uint8_t> seen(num_domains, 0);
    int distinct = 0;
    for (const int m : machines) {
      const int d = FaultDomainOf(m, machines_per_domain);
      if (d >= 0 && d < num_domains && !seen[d]) {
        seen[d] = 1;
        ++distinct;
      }
    }
    return distinct >= std::min(replication(), num_domains);
  }
};

/// A concrete key -> machine assignment: policy plus the parameters it
/// needs. A pure value type shared by kv::ShardedStore (record placement)
/// and sim::Cluster (work placement).
struct Placement {
  PlacementPolicy policy = PlacementPolicy::kHash;
  int num_shards = 1;
  uint64_t seed = 0;
  /// Size of the key space; required by kRange (ignored otherwise).
  int64_t capacity = 0;
  /// Consecutive keys per block under kAffinity.
  int64_t affinity_block = 32;
  /// Copies of every record: 1 = primary only (the historical model),
  /// R > 1 = primary plus R - 1 followers on distinct machines
  /// (clamped to num_shards). Replication never moves the primary —
  /// ShardOf and all cost charging are unchanged — it only adds the
  /// follower copies ReplicasOfShard describes, so R = 1 is
  /// bit-identical to the pre-replication placement.
  int replication = 1;
  /// Rack-level fault-domain width for *replica* placement: > 1 makes
  /// ReplicasOfShard prefer followers in fault domains the shard's
  /// earlier copies do not already occupy (see FaultDomainOf), so a
  /// single rack loss can never take out a whole ReplicaSet while a
  /// spare domain exists. 0 (or 1) is the domain-oblivious historical
  /// walk, bit-identical to the pre-domain placement; ShardOf — and
  /// with it every primary and all cost charging — is unaffected
  /// either way.
  int machines_per_domain = 0;

  int ShardOf(uint64_t key) const {
    switch (policy) {
      case PlacementPolicy::kHash:
        return ShardForKey(key, seed, num_shards);
      case PlacementPolicy::kRange: {
        AMPC_CHECK_GT(capacity, 0)
            << "range placement needs the key-space capacity";
        // Clamp: cost-attribution callers may probe keys past the key
        // space (e.g. missing-key lookups); charge them to the last
        // range owner rather than indexing out of bounds.
        const uint64_t k =
            key < static_cast<uint64_t>(capacity)
                ? key
                : static_cast<uint64_t>(capacity) - 1;
        return static_cast<int>(
            k * static_cast<uint64_t>(num_shards) /
            static_cast<uint64_t>(capacity));
      }
      case PlacementPolicy::kAffinity:
        AMPC_CHECK_GT(affinity_block, 0);
        return ShardForKey(key / static_cast<uint64_t>(affinity_block),
                           seed, num_shards);
    }
    return 0;
  }

  /// Effective copies per record (replication clamped to the machine
  /// count: with P machines there are at most P distinct homes).
  int EffectiveReplication() const {
    return std::max(1, std::min(replication, num_shards));
  }

  /// The machines holding shard `s`: the primary followed by
  /// EffectiveReplication() - 1 followers. Followers are placed by
  /// chained declustering — follower j of shard s is machine
  /// (s + stride * j) mod P with a seeded stride coprime-by-probing —
  /// so each machine's shard scatters its copies across distinct
  /// survivors and a single machine loss never takes out every copy.
  /// With machines_per_domain > 1 the probe additionally skips machines
  /// whose fault domain already holds a copy, for as long as an unused
  /// domain remains — the ReplicaSet::SpansDomains invariant — then
  /// relaxes to machine-distinctness once every domain is covered.
  /// Deterministic in (seed, num_shards, replication,
  /// machines_per_domain) alone: the set is stable across rounds, which
  /// is what lets a follower serve as a recovery source for every store
  /// the cluster ever minted.
  ReplicaSet ReplicasOfShard(int s) const {
    const int copies = EffectiveReplication();
    ReplicaSet set;
    set.machines.reserve(copies);
    set.machines.push_back(s);
    if (copies > 1) {
      // A stride sharing a factor with P would revisit machines before
      // covering `copies` distinct ones; probing forward from the
      // seeded start finds the nearest stride that covers.
      uint64_t stride =
          1 + Hash64(static_cast<uint64_t>(s), seed ^ 0x7265706c69636aULL) %
                  static_cast<uint64_t>(num_shards - 1);
      std::vector<uint8_t> taken(num_shards, 0);
      taken[s] = 1;
      // Domain-aware mode: track which fault domains already hold a
      // copy. While fewer domains are used than exist, a follower in a
      // used domain is rejected the same way a taken machine is — every
      // machine of an unused domain is untaken, so the probe always
      // terminates.
      const int per = std::max(1, machines_per_domain);
      const int num_domains = (num_shards + per - 1) / per;
      std::vector<uint8_t> domain_used;
      int domains_used = 0;
      if (per > 1) {
        domain_used.assign(num_domains, 0);
        domain_used[FaultDomainOf(s, per)] = 1;
        domains_used = 1;
      }
      int follower = s;
      for (int j = 1; j < copies; ++j) {
        follower = static_cast<int>(
            (static_cast<uint64_t>(follower) + stride) %
            static_cast<uint64_t>(num_shards));
        const bool want_new_domain =
            !domain_used.empty() && domains_used < num_domains;
        while (taken[follower] ||
               (want_new_domain && domain_used[FaultDomainOf(follower, per)])) {
          follower = (follower + 1) % num_shards;
        }
        taken[follower] = 1;
        if (!domain_used.empty()) {
          const int d = FaultDomainOf(follower, per);
          if (!domain_used[d]) {
            domain_used[d] = 1;
            ++domains_used;
          }
        }
        set.machines.push_back(follower);
      }
    }
    return set;
  }

  /// ReplicasOfShard for the shard owning `key`.
  ReplicaSet ReplicasOf(uint64_t key) const {
    return ReplicasOfShard(ShardOf(key));
  }

  friend bool operator==(const Placement& a, const Placement& b) {
    if (a.policy != b.policy || a.num_shards != b.num_shards ||
        a.seed != b.seed || a.replication != b.replication) {
      return false;
    }
    // machines_per_domain only shapes follower choice, which only
    // exists with real replication.
    if (a.EffectiveReplication() > 1 &&
        a.machines_per_domain != b.machines_per_domain) {
      return false;
    }
    if (a.policy == PlacementPolicy::kRange && a.capacity != b.capacity) {
      return false;
    }
    if (a.policy == PlacementPolicy::kAffinity &&
        a.affinity_block != b.affinity_block) {
      return false;
    }
    return true;
  }
};

/// A batched DHT read request: the keys one adaptive step needs. The
/// client pipeline groups them by owning machine and issues one round
/// trip per destination.
struct LookupBatch {
  std::vector<uint64_t> keys;
};

/// The response side of a batch, aligned with the request's keys.
/// `values[i]` is the record for `keys[i]` (nullptr when absent);
/// `bytes` and `destinations` are the accounting the cost model charges
/// (total wire bytes moved, distinct owning machines contacted).
template <typename V>
struct LookupBatchResult {
  std::vector<const V*> values;
  int64_t bytes = 0;
  int destinations = 0;
};

/// One in-flight pipelined sub-batch: the handle returned by
/// sim::MachineContext::LookupManyAsync and settled by Await. The
/// simulator resolves the values eagerly at issue time (the ticket
/// carries them), but the *cost model* treats the sub-batch as in
/// flight until Await: its round-trip latency overlaps with the other
/// tickets the worker holds open (up to ClusterConfig::pipeline_depth
/// are charged concurrently), and its keys count toward the worker's
/// in-flight memory watermark (kv_peak_inflight_keys) until settled.
template <typename V>
struct LookupTicket {
  /// Move-only: Await decrements the issuing context's outstanding
  /// count exactly once per ticket, so a copy that could also be
  /// awaited would corrupt the pipeline accounting. Moving transfers
  /// the in-flight obligation; the moved-from ticket is left settled
  /// and empty.
  LookupTicket() = default;
  LookupTicket(LookupTicket&& other) noexcept { *this = std::move(other); }
  LookupTicket& operator=(LookupTicket&& other) noexcept {
    result = std::move(other.result);
    keys_in_flight = other.keys_in_flight;
    settled = other.settled;
    other.keys_in_flight = 0;
    other.settled = true;
    return *this;
  }
  LookupTicket(const LookupTicket&) = delete;
  LookupTicket& operator=(const LookupTicket&) = delete;

  /// The resolved response, populated at issue time. The first Await
  /// consumes it (moves it out); a repeat Await charges nothing and
  /// returns an empty response.
  LookupBatchResult<V> result;
  /// Keys this ticket holds in flight — request plus response footprint
  /// — until Await settles it.
  int64_t keys_in_flight = 0;
  /// False while the ticket is outstanding. An empty issue starts
  /// settled.
  bool settled = true;
};

}  // namespace ampc::kv
