// Per-machine query-result caching for the simulated DHT.
//
// The paper's largest single Figure-4 win is caching: each machine keeps
// the results of its recent DHT queries locally, so adaptive query
// processes that revisit hot structure (roots near convergence, hub
// adjacency heads, walk-frontier collisions) stop paying the network
// round trip for keys the machine has already seen. QueryCache models
// that client-side cache as a first-class citizen:
//
//   * Bounded: `capacity` entries, sharded-LRU eviction, so a machine's
//     cache footprint is a config knob rather than an O(n) side array.
//   * Versioned: every entry is stamped with the epoch observed when it
//     was inserted, and Get() treats any entry from another epoch as
//     absent (and drops it). Read-through callers stamp entries with
//     kv::ShardedStore::version() captured *before* the underlying
//     lookup, so a cached value — including a cached negative — can
//     never survive a later write phase: stale reads are impossible.
//   * Thread-safe: the machine's worker threads share one cache; the
//     key space is split over internal lock shards (concurrency only —
//     nothing to do with the DHT's machine sharding).
//
// Two uses share this type. MachineContext::Lookup/LookupMany consult a
// per-(store, machine) QueryCache<const V*> read-through instance
// (attached by sim::Cluster::MakeStore); hits are served locally with
// no trip and no owner bytes. Algorithms additionally park *derived*
// per-key facts — mis's three-valued states, matching's vertex status
// words — in per-machine caches minted by
// sim::Cluster::MakeMachineCaches<V>(), replacing the bespoke unbounded
// atomic arrays they owned before. Hit/miss accounting stays with the
// caller (MachineContext::CountCacheHit/Miss) in both cases.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace ampc::kv {

/// Type-erased handle to a cache that can be dropped wholesale — the
/// hook the fault model uses: when a simulated machine is lost, its
/// replacement starts with cold caches, so every cache attached to that
/// machine is cleared (see CacheDropRegistry). Epoch semantics make the
/// drop safe by construction: entries only ever mirror the backing
/// store (which recovery restores bit-identically), so a cleared cache
/// re-warms through the normal read-through path with no correctness
/// effect — only extra misses, which is exactly the cost a cold
/// replacement machine should pay.
class QueryCacheBase {
 public:
  virtual ~QueryCacheBase() = default;
  /// Drops every entry (all epochs, all lock shards).
  virtual void Clear() = 0;
};

/// A bounded, versioned, thread-safe key -> V cache (sharded LRU).
template <typename V>
class QueryCache : public QueryCacheBase {
 public:
  /// `capacity` total entries, split over `lock_shards` internal shards
  /// (each shard holds capacity / lock_shards entries and its own lock).
  /// Effective lock shards are clamped to min(lock_shards, capacity):
  /// with more shards than entries, the per-shard floor of one entry
  /// would silently inflate tiny budgets (a capacity-4 cache with 8
  /// lock shards could hold 8 entries), so capacity() never exceeds the
  /// requested bound.
  explicit QueryCache(int64_t capacity, int lock_shards = 8) {
    AMPC_CHECK_GE(capacity, 1);
    const int shards = static_cast<int>(
        std::min<int64_t>(std::max(1, lock_shards), capacity));
    per_shard_capacity_ = std::max<int64_t>(1, capacity / shards);
    shards_.reserve(shards);
    for (int s = 0; s < shards; ++s) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// The cached value for `key` at `epoch`, or nullopt. An entry stamped
  /// with a different epoch is stale — it is dropped and reported absent
  /// (epochs only move forward, so it can never become valid again).
  std::optional<V> Get(uint64_t key, uint64_t epoch) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) return std::nullopt;
    if (it->second->epoch != epoch) {
      shard.lru.erase(it->second);
      shard.index.erase(it);
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return shard.lru.front().value;
  }

  /// Inserts (or refreshes) `key` -> `value` at `epoch`, evicting the
  /// least recently used entry of the key's lock shard when full.
  void Put(uint64_t key, uint64_t epoch, V value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->epoch = epoch;
      it->second->value = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    InsertLocked(shard, key, epoch, std::move(value));
  }

  /// Atomic read-modify-write under the key's shard lock:
  /// `fn(std::optional<V>)` receives the current epoch-valid value (or
  /// nullopt) and returns the value to store. Replaces the
  /// compare-exchange loops of the old bespoke atomic-array caches
  /// (e.g. matching's monotone prefix extension).
  template <typename Fn>
  void Update(uint64_t key, uint64_t epoch, Fn&& fn) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it != shard.index.end() && it->second->epoch == epoch) {
      it->second->value = fn(std::optional<V>(it->second->value));
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (it != shard.index.end()) {  // stale: replace wholesale
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    InsertLocked(shard, key, epoch, fn(std::nullopt));
  }

  /// Drops every entry. Used by the fault model when this cache's
  /// machine is lost: the replacement machine starts cold and re-warms
  /// through the read-through path. Not counted as eviction (capacity
  /// pressure) — the entries were lost with the machine, not displaced.
  void Clear() override {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->lru.clear();
      shard->index.clear();
    }
  }

  /// Entries currently held (all lock shards). O(lock_shards).
  int64_t size() const {
    int64_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += static_cast<int64_t>(shard->index.size());
    }
    return total;
  }

  /// Total entry budget across lock shards.
  int64_t capacity() const {
    return per_shard_capacity_ * static_cast<int64_t>(shards_.size());
  }

  /// LRU evictions so far (capacity pressure, not epoch staleness).
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    uint64_t key;
    uint64_t epoch;
    V value;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<uint64_t, typename std::list<Entry>::iterator> index;
  };

  Shard& ShardFor(uint64_t key) {
    return *shards_[Hash64(key, 0x7163616368ULL) %
                    static_cast<uint64_t>(shards_.size())];
  }

  void InsertLocked(Shard& shard, uint64_t key, uint64_t epoch, V value) {
    shard.lru.push_front(Entry{key, epoch, std::move(value)});
    shard.index.emplace(key, shard.lru.begin());
    if (static_cast<int64_t>(shard.index.size()) > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  int64_t per_shard_capacity_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> evictions_{0};
};

/// One QueryCache per logical machine, for algorithms caching *derived*
/// per-key facts (sim::Cluster::MakeMachineCaches). Default-constructed
/// = caching disabled: every ForMachine() is nullptr and callers fall
/// back to uncached resolution.
template <typename V>
class MachineCaches {
 public:
  MachineCaches() = default;
  MachineCaches(int num_machines, int64_t capacity_per_machine,
                int lock_shards = 8) {
    caches_.reserve(num_machines);
    for (int m = 0; m < num_machines; ++m) {
      caches_.push_back(std::make_unique<QueryCache<V>>(capacity_per_machine,
                                                        lock_shards));
    }
  }

  bool enabled() const { return !caches_.empty(); }
  QueryCache<V>* ForMachine(int m) {
    return caches_.empty() ? nullptr : caches_[m].get();
  }

 private:
  std::vector<std::unique_ptr<QueryCache<V>>> caches_;
};

/// Weak registry of every per-machine cache a cluster has minted,
/// keyed by machine id. Stores register their read-through caches at
/// creation (kv::ShardedStore::EnableQueryCache); when the fault model
/// kills machine m, DropMachine(m) clears whichever of m's caches are
/// still alive — the replacement machine's RAM starts cold — without
/// the registry ever owning a cache or extending its lifetime (stores
/// are minted and dropped every round; expired entries are pruned as
/// they are encountered).
class CacheDropRegistry {
 public:
  void Register(int machine, std::weak_ptr<QueryCacheBase> cache) {
    std::lock_guard<std::mutex> lock(mu_);
    if (machine >= static_cast<int>(by_machine_.size())) {
      by_machine_.resize(machine + 1);
    }
    by_machine_[machine].push_back(std::move(cache));
  }

  /// Clears machine `m`'s live caches; returns how many were cleared.
  int64_t DropMachine(int m) {
    std::lock_guard<std::mutex> lock(mu_);
    if (m < 0 || m >= static_cast<int>(by_machine_.size())) return 0;
    int64_t dropped = 0;
    auto& caches = by_machine_[m];
    size_t out = 0;
    for (size_t i = 0; i < caches.size(); ++i) {
      if (std::shared_ptr<QueryCacheBase> cache = caches[i].lock()) {
        cache->Clear();
        ++dropped;
        caches[out++] = std::move(caches[i]);
      }
    }
    caches.resize(out);
    return dropped;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<std::weak_ptr<QueryCacheBase>>> by_machine_;
};

}  // namespace ampc::kv
