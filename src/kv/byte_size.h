// Byte-size accounting for values stored in / fetched from the simulated
// DHT. Communication metrics (Figs 3 and 9 of the paper) are computed from
// these sizes, so they model wire size, not C++ object overheads.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace ampc::kv {

/// Wire size of a trivially copyable scalar/struct.
template <typename T>
int64_t KvByteSize(const T&) {
  static_assert(std::is_trivially_copyable_v<T>,
                "provide a KvByteSize overload for non-trivial types");
  return sizeof(T);
}

/// Wire size of a vector payload: packed elements (length is part of the
/// record framing and is charged as one word).
template <typename T>
int64_t KvByteSize(const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return static_cast<int64_t>(sizeof(int64_t) + v.size() * sizeof(T));
}

template <typename A, typename B>
int64_t KvByteSize(const std::pair<A, B>& p) {
  return KvByteSize(p.first) + KvByteSize(p.second);
}

/// Wire size of a key (all DHT keys are 64-bit).
inline constexpr int64_t kKeyBytes = sizeof(uint64_t);

}  // namespace ampc::kv
