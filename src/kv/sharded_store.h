// The simulated distributed hash table, sharded per logical machine.
//
// The paper's AMPC model stores each round's data in a DHT partitioned
// across the cluster's machines, and its performance analysis (Table 4,
// Figure 8, Section 5.7) is per machine: each machine has bounded local
// space and a NIC of finite bandwidth, so a key whose records concentrate
// on one shard makes that machine the round's straggler. ShardedStore
// models exactly that placement: keys are hash-partitioned across
// `num_shards` shards with the same seeded hash the cluster simulator
// uses to place work (sim::Cluster::MachineOf), so shard s of a store is
// precisely the slice of the DHT held by logical machine s. Each shard
// owns its own dense slot table, presence flags, insert counter, and
// byte counter; per-shard occupancy/size/bytes are exposed so the cost
// model (sim/cluster.h) and the fault model (sim/faults.h) can charge
// skew and memory pressure to the machine that actually bears them.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "kv/byte_size.h"
#include "kv/store.h"

namespace ampc::kv {

/// The shard (= logical machine) owning `key` under `seed`. This is the
/// single placement function of the whole simulator: ShardedStore uses it
/// to place records and sim::Cluster uses it to place work items, so a
/// map phase's item v runs on the machine holding v's record.
inline int ShardForKey(uint64_t key, uint64_t seed, int num_shards) {
  return static_cast<int>(Hash64(key, seed ^ 0x6d61636821ULL) %
                          static_cast<uint64_t>(num_shards));
}

/// The key -> (shard, local slot) assignment of a sharded store: a pure
/// function of (capacity, num_shards, seed), so factories that mint many
/// same-shaped stores (one fresh DHT per round) build it once and share
/// it (see sim::Cluster::MakeStore).
struct ShardMap {
  /// local_slot[k] = slot of key k within its owning shard.
  std::vector<uint32_t> local_slot;
  /// shard_counts[s] = number of keys owned by shard s.
  std::vector<int64_t> shard_counts;
  int64_t capacity = 0;
  int num_shards = 1;
  uint64_t seed = 0;

  static std::shared_ptr<const ShardMap> Build(int64_t capacity,
                                               int num_shards,
                                               uint64_t seed) {
    AMPC_CHECK_GE(num_shards, 1);
    AMPC_CHECK_GE(capacity, 0);
    AMPC_CHECK_LE(capacity,
                  static_cast<int64_t>(std::numeric_limits<uint32_t>::max()));
    auto map = std::make_shared<ShardMap>();
    map->capacity = capacity;
    map->num_shards = num_shards;
    map->seed = seed;
    // One sequential pass keeps the assignment deterministic; the cost
    // is one hash per key, the same order as the slot tables' own
    // O(capacity) initialization.
    map->local_slot.resize(capacity);
    map->shard_counts.assign(num_shards, 0);
    for (int64_t k = 0; k < capacity; ++k) {
      map->local_slot[k] = static_cast<uint32_t>(
          map->shard_counts[ShardForKey(k, seed, num_shards)]++);
    }
    return map;
  }
};

/// A dense key -> V store hash-partitioned into per-machine shards. Keys
/// must be < capacity. Writes are thread-safe (delegated to the owning
/// shard's per-slot atomic publication); lookups are thread-safe with
/// respect to completed writes of other keys. Re-writing an existing key
/// is not supported (AMPC stores are write-once per round). Movable so
/// factories (sim::Cluster::MakeStore) can return it by value.
template <typename V>
class ShardedStore {
 public:
  ShardedStore(int64_t capacity, int num_shards, uint64_t seed)
      : ShardedStore(ShardMap::Build(capacity, num_shards, seed)) {}

  /// Shares a prebuilt key assignment (must match this store's shape).
  explicit ShardedStore(std::shared_ptr<const ShardMap> map)
      : capacity_(map->capacity),
        num_shards_(map->num_shards),
        seed_(map->seed),
        map_(std::move(map)) {
    shards_.reserve(num_shards_);
    for (int s = 0; s < num_shards_; ++s) {
      shards_.push_back(std::make_unique<Store<V>>(map_->shard_counts[s]));
    }
  }

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;
  ShardedStore(ShardedStore&&) noexcept = default;
  ShardedStore& operator=(ShardedStore&&) noexcept = default;

  int64_t capacity() const { return capacity_; }
  int num_shards() const { return num_shards_; }
  uint64_t seed() const { return seed_; }

  /// The shard (= logical machine) owning `key`.
  int ShardOf(uint64_t key) const {
    return ShardForKey(key, seed_, num_shards_);
  }

  /// Inserts (key, value) into the owning shard. Returns the wire size of
  /// the record.
  int64_t Put(uint64_t key, V value) {
    AMPC_CHECK_LT(key, static_cast<uint64_t>(capacity_));
    return shards_[ShardOf(key)]->Put(map_->local_slot[key],
                                      std::move(value));
  }

  /// Returns the value for `key`, or nullptr when absent.
  const V* Lookup(uint64_t key) const {
    if (key >= static_cast<uint64_t>(capacity_)) return nullptr;
    return shards_[ShardOf(key)]->Lookup(map_->local_slot[key]);
  }

  bool Contains(uint64_t key) const { return Lookup(key) != nullptr; }

  /// Wire size of the record for `key` (0 when absent).
  int64_t RecordBytes(uint64_t key) const {
    const V* v = Lookup(key);
    return v == nullptr ? 0 : kKeyBytes + KvByteSize(*v);
  }

  /// Number of present keys across all shards. O(num_shards).
  int64_t size() const {
    int64_t total = 0;
    for (const auto& shard : shards_) total += shard->size();
    return total;
  }

  /// Total wire bytes inserted across all shards. O(num_shards).
  int64_t total_bytes() const {
    int64_t total = 0;
    for (const auto& shard : shards_) total += shard->total_bytes();
    return total;
  }

  // Per-shard introspection — the cost and fault models read these.

  /// Present keys on shard `s`.
  int64_t ShardSize(int s) const { return shards_[s]->size(); }

  /// Key-space slice assigned to shard `s` (its slot-table capacity).
  int64_t ShardCapacity(int s) const { return shards_[s]->capacity(); }

  /// Wire bytes held by shard `s`.
  int64_t ShardBytes(int s) const { return shards_[s]->total_bytes(); }

  /// Fraction of shard `s`'s slots that hold a record (0 for an empty
  /// key-space slice).
  double ShardOccupancy(int s) const {
    const int64_t cap = shards_[s]->capacity();
    if (cap == 0) return 0.0;
    return static_cast<double>(shards_[s]->size()) /
           static_cast<double>(cap);
  }

  /// Snapshot of every shard's wire bytes, indexed by shard id.
  std::vector<int64_t> ShardBytesSnapshot() const {
    std::vector<int64_t> bytes(num_shards_);
    for (int s = 0; s < num_shards_; ++s) bytes[s] = ShardBytes(s);
    return bytes;
  }

 private:
  int64_t capacity_ = 0;
  int num_shards_ = 1;
  uint64_t seed_ = 0;
  // key -> slot within its owning shard (the shard id is recomputed from
  // the hash; storing it would double the table's footprint). Shared:
  // every same-shaped store minted by a cluster reuses one map.
  std::shared_ptr<const ShardMap> map_;
  // unique_ptr keeps the atomic-bearing slot tables movable as a group.
  std::vector<std::unique_ptr<Store<V>>> shards_;
};

}  // namespace ampc::kv
