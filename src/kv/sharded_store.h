// The simulated distributed hash table, sharded per logical machine.
//
// The paper's AMPC model stores each round's data in a DHT partitioned
// across the cluster's machines, and its performance analysis (Table 4,
// Figure 8, Section 5.7) is per machine: each machine has bounded local
// space and a NIC of finite bandwidth, so a key whose records concentrate
// on one shard makes that machine the round's straggler. ShardedStore
// models exactly that placement: keys are partitioned across
// `num_shards` shards with the same kv::Placement the cluster simulator
// uses to place work (sim::Cluster::MachineOf), so shard s of a store is
// precisely the slice of the DHT held by logical machine s. The policy
// is pluggable (hash baseline, range, affinity — see kv/placement.h).
// Each shard owns its own dense slot table, presence flags, insert
// counter, and byte counter; per-shard occupancy/size/bytes are exposed
// so the cost model (sim/cluster.h) and the fault model (sim/faults.h)
// can charge skew and memory pressure to the machine that actually bears
// them.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "kv/byte_size.h"
#include "kv/placement.h"
#include "kv/query_cache.h"
#include "kv/store.h"

namespace ampc::kv {

/// The key -> (shard, local slot) assignment of a sharded store: a pure
/// function of the Placement, so factories that mint many same-shaped
/// stores (one fresh DHT per round) build it once and share it (see
/// sim::Cluster::MakeStore).
struct ShardMap {
  /// local_slot[k] = slot of key k within its owning shard.
  std::vector<uint32_t> local_slot;
  /// shard_counts[s] = number of keys owned by shard s.
  std::vector<int64_t> shard_counts;
  Placement placement;

  static std::shared_ptr<const ShardMap> Build(Placement placement) {
    AMPC_CHECK_GE(placement.num_shards, 1);
    AMPC_CHECK_GE(placement.capacity, 0);
    AMPC_CHECK_LE(placement.capacity,
                  static_cast<int64_t>(std::numeric_limits<uint32_t>::max()));
    auto map = std::make_shared<ShardMap>();
    map->placement = placement;
    // One sequential pass keeps the assignment deterministic; the cost
    // is one placement evaluation per key, the same order as the slot
    // tables' own O(capacity) initialization.
    map->local_slot.resize(placement.capacity);
    map->shard_counts.assign(placement.num_shards, 0);
    for (int64_t k = 0; k < placement.capacity; ++k) {
      map->local_slot[k] = static_cast<uint32_t>(
          map->shard_counts[placement.ShardOf(k)]++);
    }
    return map;
  }

  /// Hash-baseline convenience, the historical constructor shape.
  static std::shared_ptr<const ShardMap> Build(int64_t capacity,
                                               int num_shards,
                                               uint64_t seed) {
    Placement placement;
    placement.policy = PlacementPolicy::kHash;
    placement.num_shards = num_shards;
    placement.seed = seed;
    placement.capacity = capacity;
    return Build(placement);
  }
};

/// A dense key -> V store partitioned into per-machine shards by a
/// kv::Placement. Keys must be < capacity. Writes are thread-safe
/// (delegated to the owning shard's per-slot atomic publication);
/// lookups are thread-safe with respect to completed writes of other
/// keys. Re-writing an existing key is not supported (AMPC stores are
/// write-once per round). Movable so factories
/// (sim::Cluster::MakeStore) can return it by value.
template <typename V>
class ShardedStore {
 public:
  ShardedStore(int64_t capacity, int num_shards, uint64_t seed)
      : ShardedStore(ShardMap::Build(capacity, num_shards, seed)) {}

  /// Shares a prebuilt key assignment (must match this store's shape).
  explicit ShardedStore(std::shared_ptr<const ShardMap> map)
      : map_(std::move(map)) {
    shards_.reserve(map_->placement.num_shards);
    for (int s = 0; s < map_->placement.num_shards; ++s) {
      shards_.push_back(std::make_unique<Store<V>>(map_->shard_counts[s]));
    }
  }

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;
  ShardedStore(ShardedStore&&) noexcept = default;
  ShardedStore& operator=(ShardedStore&&) noexcept = default;

  int64_t capacity() const { return map_->placement.capacity; }
  int num_shards() const { return map_->placement.num_shards; }
  uint64_t seed() const { return map_->placement.seed; }
  const Placement& placement() const { return map_->placement; }

  /// The shard (= logical machine) owning `key`.
  int ShardOf(uint64_t key) const { return map_->placement.ShardOf(key); }

  /// Inserts (key, value) into the owning shard. Returns the wire size of
  /// the record.
  int64_t Put(uint64_t key, V value) {
    AMPC_CHECK_LT(key, static_cast<uint64_t>(capacity()));
    const int64_t bytes =
        shards_[ShardOf(key)]->Put(map_->local_slot[key], std::move(value));
    // Bumped *after* the shard publishes the record: a reader that
    // captures the pre-bump version and still misses the value stamps
    // its cached negative with an epoch the bump immediately outdates.
    version_->fetch_add(1, std::memory_order_relaxed);
    return bytes;
  }

  /// Returns the value for `key`, or nullptr when absent.
  const V* Lookup(uint64_t key) const {
    if (key >= static_cast<uint64_t>(capacity())) return nullptr;
    return shards_[ShardOf(key)]->Lookup(map_->local_slot[key]);
  }

  bool Contains(uint64_t key) const { return Lookup(key) != nullptr; }

  /// Wire size of the record for `key` (0 when absent).
  int64_t RecordBytes(uint64_t key) const {
    const V* v = Lookup(key);
    return v == nullptr ? 0 : kKeyBytes + KvByteSize(*v);
  }

  /// Number of present keys across all shards. O(num_shards).
  int64_t size() const {
    int64_t total = 0;
    for (const auto& shard : shards_) total += shard->size();
    return total;
  }

  /// Total wire bytes inserted across all shards. O(num_shards).
  int64_t total_bytes() const {
    int64_t total = 0;
    for (const auto& shard : shards_) total += shard->total_bytes();
    return total;
  }

  // Per-shard introspection — the cost and fault models read these.

  /// Present keys on shard `s`.
  int64_t ShardSize(int s) const { return shards_[s]->size(); }

  /// Key-space slice assigned to shard `s` (its slot-table capacity).
  int64_t ShardCapacity(int s) const { return shards_[s]->capacity(); }

  /// Wire bytes held by shard `s`.
  int64_t ShardBytes(int s) const { return shards_[s]->total_bytes(); }

  /// Fraction of shard `s`'s slots that hold a record (0 for an empty
  /// key-space slice).
  double ShardOccupancy(int s) const {
    const int64_t cap = shards_[s]->capacity();
    if (cap == 0) return 0.0;
    return static_cast<double>(shards_[s]->size()) /
           static_cast<double>(cap);
  }

  /// Snapshot of every shard's wire bytes, indexed by shard id.
  std::vector<int64_t> ShardBytesSnapshot() const {
    std::vector<int64_t> bytes(num_shards());
    for (int s = 0; s < num_shards(); ++s) bytes[s] = ShardBytes(s);
    return bytes;
  }

  // Replication (kv/placement.h ReplicaSet; the fault-tolerance side of
  // placement). The store never materializes follower copies — the
  // simulator charges their write traffic and memory footprint through
  // the cost model — so these are pure placement queries.

  /// Effective copies per record (Placement::EffectiveReplication).
  int replication() const {
    return map_->placement.EffectiveReplication();
  }

  /// The machines holding copies of `key`'s shard (primary first).
  ReplicaSet ReplicasOf(uint64_t key) const {
    return map_->placement.ReplicasOf(key);
  }

  /// The machines holding copies of shard `s` (primary first) — the
  /// drain/migration and hedging paths ask per shard, not per key.
  ReplicaSet ReplicasOfShard(int s) const {
    return map_->placement.ReplicasOfShard(s);
  }

  /// Per-machine resident wire bytes *including* follower copies:
  /// machine m holds its own shard plus a copy of every shard it
  /// follows. Equal to ShardBytesSnapshot() at replication 1.
  std::vector<int64_t> ReplicatedShardBytesSnapshot() const {
    std::vector<int64_t> bytes = ShardBytesSnapshot();
    if (replication() > 1) {
      for (int s = 0; s < num_shards(); ++s) {
        const ReplicaSet replicas = map_->placement.ReplicasOfShard(s);
        const int64_t shard_bytes = ShardBytes(s);
        for (size_t i = 1; i < replicas.machines.size(); ++i) {
          bytes[replicas.machines[i]] += shard_bytes;
        }
      }
    }
    return bytes;
  }

  // Query-result caching (sim::Cluster::MakeStore wires this to
  // ClusterConfig::query_cache; see kv/query_cache.h).

  /// Monotone content version: the number of records inserted so far
  /// (stores are write-once per key, so every write moves it). Query
  /// caches stamp entries with the version captured *before* the
  /// underlying lookup and treat entries from older versions as stale,
  /// so a cached value — including a cached negative — can never
  /// survive a later write phase. O(1): a dedicated counter, not the
  /// per-shard size sum, because this sits on the hot cached-lookup
  /// path of every machine.
  uint64_t version() const {
    return version_->load(std::memory_order_relaxed);
  }

  /// Attaches one bounded read-through cache per shard-owning machine
  /// (cache m serves machine m's repeated lookups locally). Idempotent
  /// per call: replaces any existing caches. When `registry` is given,
  /// each machine's cache is registered with it so the fault model can
  /// clear the caches of a machine lost mid-job (the replacement starts
  /// cold); the registry holds weak references only, so the caches
  /// still die with the store.
  void EnableQueryCache(int64_t capacity_per_machine, int lock_shards = 8,
                        CacheDropRegistry* registry = nullptr) {
    query_caches_.clear();
    query_caches_.reserve(static_cast<size_t>(num_shards()));
    for (int s = 0; s < num_shards(); ++s) {
      query_caches_.push_back(std::make_shared<QueryCache<const V*>>(
          capacity_per_machine, lock_shards));
      if (registry != nullptr) registry->Register(s, query_caches_.back());
    }
  }

  /// Machine `m`'s read-through cache, or nullptr when caching is off.
  /// Cached values are pointers into this store's slot tables (stable:
  /// shards live behind unique_ptr and records are write-once), so a
  /// hit returns exactly what the remote lookup would have.
  QueryCache<const V*>* QueryCacheFor(int m) const {
    return query_caches_.empty() ? nullptr : query_caches_[m].get();
  }

 private:
  // key -> slot within its owning shard (the shard id is recomputed from
  // the placement; storing it would double the table's footprint).
  // Shared: every same-shaped store minted by a cluster reuses one map.
  std::shared_ptr<const ShardMap> map_;
  // unique_ptr keeps the atomic-bearing slot tables movable as a group.
  std::vector<std::unique_ptr<Store<V>>> shards_;
  // Per-machine read-through caches (empty = caching off). Mutable: the
  // cache warms through const lookup paths (MachineContext::Lookup takes
  // the store by const reference — caching never changes answers).
  // shared_ptr so a CacheDropRegistry can hold weak references that the
  // fault model clears when a machine dies (kv/query_cache.h).
  mutable std::vector<std::shared_ptr<QueryCache<const V*>>> query_caches_;
  // Insert counter behind version() (unique_ptr keeps the store movable).
  std::unique_ptr<std::atomic<uint64_t>> version_ =
      std::make_unique<std::atomic<uint64_t>>(0);
};

}  // namespace ampc::kv
