// Lowest common ancestors via Euler tour + range-minimum queries
// (Algorithm 5, lines 4-6: "Compute an Euler tour traversal of each tree
// ... assign to each vertex the weight equal to its level and compute an
// RMQ data structure ... compute LCA(u, w)").
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "trees/rmq.h"
#include "trees/rooted_forest.h"

namespace ampc::trees {

/// O(1) LCA queries over a rooted forest after O(n log n) preprocessing.
class LcaOracle {
 public:
  explicit LcaOracle(const RootedForest& forest);

  /// LCA of u and v, or kInvalidNode when they are in different trees.
  graph::NodeId Lca(graph::NodeId u, graph::NodeId v) const;

  /// Length of the Euler tour (2n - #trees entries).
  int64_t TourLength() const { return static_cast<int64_t>(tour_.size()); }

 private:
  const RootedForest& forest_;
  std::vector<graph::NodeId> tour_;      // vertices in Euler order
  std::vector<int64_t> tour_depth_;      // depth of tour_[i]
  std::vector<int64_t> first_occurrence_;
  MinSparseTable<int64_t> rmq_;
};

}  // namespace ampc::trees
