// Sparse-table range queries in O(1) after O(k log k) preprocessing —
// the RMQ data structure of Appendix B ("Andoni et al. showed how to
// compute the RMQ data structure in the MPC model in O(1) rounds"; here
// the build is a parallelizable doubling scan, used in-process).
#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace ampc::trees {

/// Range-minimum (or maximum) query over a fixed array. Returns the
/// *index* of the extreme element; ties break toward the smaller index.
template <typename T, bool kMax = false>
class SparseTable {
 public:
  SparseTable() = default;

  explicit SparseTable(std::vector<T> values) : values_(std::move(values)) {
    const size_t k = values_.size();
    if (k == 0) return;
    log2_.resize(k + 1, 0);
    for (size_t i = 2; i <= k; ++i) log2_[i] = log2_[i / 2] + 1;
    const int levels = log2_[k] + 1;
    table_.resize(levels);
    table_[0].resize(k);
    for (size_t i = 0; i < k; ++i) table_[0][i] = static_cast<int64_t>(i);
    for (int level = 1; level < levels; ++level) {
      const size_t width = size_t{1} << level;
      table_[level].resize(k - width + 1);
      for (size_t i = 0; i + width <= k; ++i) {
        table_[level][i] = Pick(table_[level - 1][i],
                                table_[level - 1][i + width / 2]);
      }
    }
  }

  /// Index of the extreme value in [lo, hi] (inclusive).
  int64_t QueryIndex(int64_t lo, int64_t hi) const {
    AMPC_CHECK_LE(lo, hi);
    AMPC_CHECK_GE(lo, 0);
    AMPC_CHECK_LT(hi, static_cast<int64_t>(values_.size()));
    const int level = log2_[static_cast<size_t>(hi - lo + 1)];
    return Pick(table_[level][lo],
                table_[level][hi - (int64_t{1} << level) + 1]);
  }

  const T& Query(int64_t lo, int64_t hi) const {
    return values_[QueryIndex(lo, hi)];
  }

  int64_t size() const { return static_cast<int64_t>(values_.size()); }
  const std::vector<T>& values() const { return values_; }

 private:
  int64_t Pick(int64_t a, int64_t b) const {
    if constexpr (kMax) {
      if (values_[a] > values_[b]) return a;
      if (values_[b] > values_[a]) return b;
    } else {
      if (values_[a] < values_[b]) return a;
      if (values_[b] < values_[a]) return b;
    }
    return a < b ? a : b;
  }

  std::vector<T> values_;
  std::vector<int> log2_;
  std::vector<std::vector<int64_t>> table_;
};

template <typename T>
using MinSparseTable = SparseTable<T, false>;
template <typename T>
using MaxSparseTable = SparseTable<T, true>;

}  // namespace ampc::trees
