// Rooted-forest construction (Algorithm 5, lines 1-3: find components,
// root each tree, compute levels). Input is an undirected forest given as
// weighted edges; output is parent pointers with per-vertex depth/root.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace ampc::trees {

/// A forest rooted at the minimum-id vertex of each component.
struct RootedForest {
  int64_t num_nodes = 0;
  /// parent[v]; roots point to themselves.
  std::vector<graph::NodeId> parent;
  /// Weight / id of the edge (v, parent[v]); undefined for roots.
  std::vector<graph::Weight> parent_weight;
  std::vector<graph::EdgeId> parent_edge_id;
  /// Number of edges on the path to the root.
  std::vector<int64_t> depth;
  /// Root of v's tree.
  std::vector<graph::NodeId> root;
  /// Children adjacency in CSR form.
  std::vector<int64_t> child_offsets;
  std::vector<graph::NodeId> children;
  /// Vertices in BFS order (parents before children) — a valid
  /// topological order for bottom-up/top-down sweeps.
  std::vector<graph::NodeId> bfs_order;

  bool IsRoot(graph::NodeId v) const { return parent[v] == v; }
  bool SameTree(graph::NodeId u, graph::NodeId v) const {
    return root[u] == root[v];
  }
};

/// Builds the rooted forest. CHECK-fails if `edges` contain a cycle.
RootedForest BuildRootedForest(int64_t num_nodes,
                               const std::vector<graph::WeightedEdge>& edges);

}  // namespace ampc::trees
