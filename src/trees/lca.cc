#include "trees/lca.h"

#include <utility>

#include "common/logging.h"

namespace ampc::trees {

using graph::kInvalidNode;
using graph::NodeId;

LcaOracle::LcaOracle(const RootedForest& forest) : forest_(forest) {
  const int64_t n = forest.num_nodes;
  first_occurrence_.assign(n, -1);
  tour_.reserve(2 * n);
  tour_depth_.reserve(2 * n);

  // Iterative Euler tour: push (vertex, child cursor) frames.
  std::vector<std::pair<NodeId, int64_t>> stack;
  for (int64_t s = 0; s < n; ++s) {
    const NodeId root = static_cast<NodeId>(s);
    if (!forest.IsRoot(root)) continue;
    stack.emplace_back(root, forest.child_offsets[root]);
    first_occurrence_[root] = static_cast<int64_t>(tour_.size());
    tour_.push_back(root);
    tour_depth_.push_back(forest.depth[root]);
    while (!stack.empty()) {
      auto& [v, cursor] = stack.back();
      if (cursor < forest.child_offsets[v + 1]) {
        const NodeId child = forest.children[cursor++];
        stack.emplace_back(child, forest.child_offsets[child]);
        first_occurrence_[child] = static_cast<int64_t>(tour_.size());
        tour_.push_back(child);
        tour_depth_.push_back(forest.depth[child]);
      } else {
        stack.pop_back();
        if (!stack.empty()) {
          tour_.push_back(stack.back().first);
          tour_depth_.push_back(forest.depth[stack.back().first]);
        }
      }
    }
  }
  rmq_ = MinSparseTable<int64_t>(tour_depth_);
}

NodeId LcaOracle::Lca(NodeId u, NodeId v) const {
  if (!forest_.SameTree(u, v)) return kInvalidNode;
  int64_t a = first_occurrence_[u];
  int64_t b = first_occurrence_[v];
  if (a > b) std::swap(a, b);
  return tour_[rmq_.QueryIndex(a, b)];
}

}  // namespace ampc::trees
