// Ternary treaps (paper Appendix A). Given a tree T with max degree <= 3
// and a random rank permutation pi, the ternary treap is the unique
// recursive decomposition whose root is the minimum-rank vertex and whose
// children are the treaps of the components of T - root. The paper bounds
// truncated-Prim query cost by subtree sizes in this structure
// (Lemma A.2) and its height by O(log n) w.h.p. (Lemma A.1); both are
// property-tested against this reference implementation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace ampc::trees {

/// The ternary treap of a forest under a rank permutation.
struct TernaryTreap {
  /// Treap parent; component treap roots point to themselves.
  std::vector<graph::NodeId> parent;
  /// Depth within the treap (roots have depth 0).
  std::vector<int64_t> depth;
  /// Size of the treap subtree rooted at v.
  std::vector<int64_t> subtree_size;
  /// Maximum depth + 1 over all vertices (0 for an empty forest).
  int64_t height = 0;
};

/// Builds the ternary treap of the forest given by `edges` over vertices
/// [0, num_nodes) with priority order: smaller rank first, ties by id.
/// CHECK-fails if any vertex has degree > 3 or the edges contain a cycle.
TernaryTreap BuildTernaryTreap(int64_t num_nodes,
                               const std::vector<graph::Edge>& edges,
                               std::span<const uint64_t> rank);

}  // namespace ampc::trees
