#include "trees/path_max.h"

#include <limits>
#include <utility>

#include "common/logging.h"

namespace ampc::trees {

using graph::kInvalidEdge;
using graph::kInvalidNode;
using graph::NodeId;
using graph::Weight;

PathMaxOracle::PathMaxOracle(const RootedForest& forest)
    : forest_(forest), lca_(forest) {
  const int64_t n = forest.num_nodes;
  head_.assign(n, kInvalidNode);
  pos_.assign(n, -1);
  heavy_.assign(n, kInvalidNode);

  // Subtree sizes bottom-up over reverse BFS order.
  std::vector<int64_t> size(n, 1);
  for (auto it = forest.bfs_order.rbegin(); it != forest.bfs_order.rend();
       ++it) {
    const NodeId v = *it;
    int64_t best = 0;
    for (int64_t i = forest.child_offsets[v]; i < forest.child_offsets[v + 1];
         ++i) {
      const NodeId c = forest.children[i];
      size[v] += size[c];
      if (size[c] > best) {
        best = size[c];
        heavy_[v] = c;
      }
    }
  }

  // Assign heavy-path-contiguous positions: walk each heavy chain from its
  // head; light children start new chains.
  std::vector<MaxEdge> base(n);
  int64_t counter = 0;
  std::vector<NodeId> stack;
  for (int64_t s = 0; s < n; ++s) {
    if (!forest.IsRoot(static_cast<NodeId>(s))) continue;
    stack.push_back(static_cast<NodeId>(s));
    while (!stack.empty()) {
      const NodeId chain_head = stack.back();
      stack.pop_back();
      for (NodeId v = chain_head; v != kInvalidNode; v = heavy_[v]) {
        head_[v] = chain_head;
        pos_[v] = counter++;
        base[pos_[v]] =
            forest.IsRoot(v)
                ? MaxEdge{-std::numeric_limits<Weight>::infinity(),
                          kInvalidEdge}
                : MaxEdge{forest.parent_weight[v], forest.parent_edge_id[v]};
        for (int64_t i = forest.child_offsets[v];
             i < forest.child_offsets[v + 1]; ++i) {
          const NodeId c = forest.children[i];
          if (c != heavy_[v]) stack.push_back(c);
        }
      }
    }
  }
  AMPC_CHECK_EQ(counter, n);
  table_ = MaxSparseTable<MaxEdge>(std::move(base));
}

void PathMaxOracle::QueryUp(NodeId u, NodeId top,
                            std::optional<MaxEdge>& acc) const {
  auto fold = [&acc](const MaxEdge& e) {
    if (!acc.has_value() || *acc < e) acc = e;
  };
  while (head_[u] != head_[top]) {
    fold(table_.Query(pos_[head_[u]], pos_[u]));
    u = forest_.parent[head_[u]];
  }
  if (u != top) fold(table_.Query(pos_[top] + 1, pos_[u]));
}

std::optional<PathMaxOracle::MaxEdge> PathMaxOracle::MaxEdgeOnPath(
    NodeId u, NodeId v) const {
  if (u == v) return std::nullopt;
  const NodeId l = lca_.Lca(u, v);
  AMPC_CHECK_NE(l, kInvalidNode)
      << "MaxEdgeOnPath across trees; callers must check SameTree";
  std::optional<MaxEdge> acc;
  QueryUp(u, l, acc);
  QueryUp(v, l, acc);
  return acc;
}

int64_t PathMaxOracle::CountLightEdgesToRoot(NodeId v) const {
  int64_t light = 0;
  while (!forest_.IsRoot(v)) {
    const NodeId p = forest_.parent[v];
    if (heavy_[p] != v) ++light;
    v = p;
  }
  return light;
}

}  // namespace ampc::trees
