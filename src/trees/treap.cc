#include "trees/treap.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace ampc::trees {

using graph::Edge;
using graph::kInvalidNode;
using graph::NodeId;

TernaryTreap BuildTernaryTreap(int64_t num_nodes,
                               const std::vector<Edge>& edges,
                               std::span<const uint64_t> rank) {
  AMPC_CHECK_EQ(static_cast<int64_t>(rank.size()), num_nodes);

  // Adjacency (CSR) with the degree <= 3 guarantee checked.
  std::vector<int64_t> deg(num_nodes, 0);
  for (const Edge& e : edges) {
    AMPC_CHECK_NE(e.u, e.v);
    ++deg[e.u];
    ++deg[e.v];
  }
  for (int64_t v = 0; v < num_nodes; ++v) {
    AMPC_CHECK_LE(deg[v], 3) << "ternary treap requires max degree 3";
  }
  std::vector<int64_t> offsets(num_nodes + 1, 0);
  for (int64_t v = 0; v < num_nodes; ++v) offsets[v + 1] = offsets[v] + deg[v];
  std::vector<NodeId> adj(offsets.back());
  std::vector<int64_t> cursor = offsets;
  for (const Edge& e : edges) {
    adj[cursor[e.u]++] = e.v;
    adj[cursor[e.v]++] = e.u;
  }

  TernaryTreap treap;
  treap.parent.assign(num_nodes, kInvalidNode);
  treap.depth.assign(num_nodes, 0);
  treap.subtree_size.assign(num_nodes, 1);

  auto less_rank = [&rank](NodeId a, NodeId b) {
    if (rank[a] != rank[b]) return rank[a] < rank[b];
    return a < b;
  };

  // Work items: (component vertex list, treap parent of its root).
  struct Item {
    std::vector<NodeId> vertices;
    NodeId treap_parent;
    int64_t depth;
  };
  std::vector<uint8_t> removed(num_nodes, 0);
  std::vector<uint8_t> seen(num_nodes, 0);

  // Seed: one component list per tree of the forest.
  std::vector<Item> stack;
  {
    std::vector<uint8_t> visited(num_nodes, 0);
    for (int64_t s = 0; s < num_nodes; ++s) {
      if (visited[s]) continue;
      Item item;
      item.treap_parent = kInvalidNode;
      item.depth = 0;
      std::deque<NodeId> queue{static_cast<NodeId>(s)};
      visited[s] = 1;
      while (!queue.empty()) {
        NodeId v = queue.front();
        queue.pop_front();
        item.vertices.push_back(v);
        for (int64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
          if (!visited[adj[i]]) {
            visited[adj[i]] = 1;
            queue.push_back(adj[i]);
          }
        }
      }
      stack.push_back(std::move(item));
    }
  }

  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    // Root = minimum-rank vertex of the component.
    NodeId root = item.vertices.front();
    for (NodeId v : item.vertices) {
      if (less_rank(v, root)) root = v;
    }
    treap.parent[root] = item.treap_parent == kInvalidNode
                             ? root
                             : item.treap_parent;
    treap.depth[root] = item.depth;
    treap.height = std::max(treap.height, item.depth + 1);
    removed[root] = 1;

    // Split the remaining vertices into connected subcomponents.
    for (NodeId v : item.vertices) seen[v] = 0;
    seen[root] = 1;
    for (int64_t i = offsets[root]; i < offsets[root + 1]; ++i) {
      const NodeId start = adj[i];
      if (removed[start] || seen[start]) continue;
      Item child;
      child.treap_parent = root;
      child.depth = item.depth + 1;
      std::deque<NodeId> queue{start};
      seen[start] = 1;
      while (!queue.empty()) {
        NodeId v = queue.front();
        queue.pop_front();
        child.vertices.push_back(v);
        for (int64_t j = offsets[v]; j < offsets[v + 1]; ++j) {
          const NodeId u = adj[j];
          if (!removed[u] && !seen[u]) {
            seen[u] = 1;
            queue.push_back(u);
          }
        }
      }
      stack.push_back(std::move(child));
    }
  }

  // Subtree sizes bottom-up: order vertices by decreasing depth.
  std::vector<NodeId> order(num_nodes);
  for (int64_t v = 0; v < num_nodes; ++v) order[v] = static_cast<NodeId>(v);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return treap.depth[a] > treap.depth[b];
  });
  for (NodeId v : order) {
    if (treap.parent[v] != v) {
      treap.subtree_size[treap.parent[v]] += treap.subtree_size[v];
    }
  }
  return treap;
}

}  // namespace ampc::trees
