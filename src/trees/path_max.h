// Maximum-weight edge on tree paths, via heavy-light decomposition plus
// sparse-table range-maximum queries — the machinery of Appendix B
// (Algorithm 5, lines 7-10) used to classify F-light edges in O(log n)
// per query after linearithmic preprocessing.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "trees/lca.h"
#include "trees/rmq.h"
#include "trees/rooted_forest.h"

namespace ampc::trees {

/// Answers "heaviest edge on the tree path u..v" queries over a rooted
/// forest. Edge order is (weight, edge id) — the library's total order —
/// so the returned edge is unique.
class PathMaxOracle {
 public:
  /// The heaviest edge of a path.
  struct MaxEdge {
    graph::Weight w = 0;
    graph::EdgeId id = graph::kInvalidEdge;

    bool operator<(const MaxEdge& o) const {
      if (w != o.w) return w < o.w;
      return id < o.id;
    }
    bool operator>(const MaxEdge& o) const { return o < *this; }
  };

  explicit PathMaxOracle(const RootedForest& forest);

  /// The LCA oracle built for the same forest (exposed for reuse).
  const LcaOracle& lca() const { return lca_; }

  /// Heaviest edge on the u..v path. nullopt when u == v (empty path).
  /// CHECK-fails when u and v are in different trees — callers must test
  /// SameTree first (different trees mean w_F = infinity, Definition 3.7).
  std::optional<MaxEdge> MaxEdgeOnPath(graph::NodeId u,
                                       graph::NodeId v) const;

  /// Number of light (non-heavy) edges on v's root path. Lemma B.1 bounds
  /// this by O(log n); property-tested.
  int64_t CountLightEdgesToRoot(graph::NodeId v) const;

 private:
  // Heaviest edge on the path from u up to ancestor `top` (exclusive of
  // top's parent edge), folded into acc.
  void QueryUp(graph::NodeId u, graph::NodeId top,
               std::optional<MaxEdge>& acc) const;

  const RootedForest& forest_;
  LcaOracle lca_;
  std::vector<graph::NodeId> head_;  // top of v's heavy path
  std::vector<int64_t> pos_;         // position in the HLD base array
  std::vector<graph::NodeId> heavy_; // heavy child (kInvalidNode if leaf)
  MaxSparseTable<MaxEdge> table_;
};

}  // namespace ampc::trees
