#include "trees/rooted_forest.h"

#include <deque>

#include "common/logging.h"

namespace ampc::trees {

using graph::EdgeId;
using graph::kInvalidNode;
using graph::NodeId;
using graph::Weight;
using graph::WeightedEdge;

RootedForest BuildRootedForest(int64_t num_nodes,
                               const std::vector<WeightedEdge>& edges) {
  RootedForest f;
  f.num_nodes = num_nodes;
  f.parent.resize(num_nodes);
  f.parent_weight.assign(num_nodes, 0);
  f.parent_edge_id.assign(num_nodes, graph::kInvalidEdge);
  f.depth.assign(num_nodes, 0);
  f.root.resize(num_nodes);

  // Adjacency of the forest in CSR form.
  std::vector<int64_t> deg(num_nodes, 0);
  for (const WeightedEdge& e : edges) {
    AMPC_CHECK_NE(e.u, e.v) << "forest has a self-loop";
    ++deg[e.u];
    ++deg[e.v];
  }
  std::vector<int64_t> offsets(num_nodes + 1, 0);
  for (int64_t v = 0; v < num_nodes; ++v) offsets[v + 1] = offsets[v] + deg[v];
  struct Arc {
    NodeId to;
    Weight w;
    EdgeId id;
  };
  std::vector<Arc> arcs(offsets.back());
  std::vector<int64_t> cursor = offsets;
  for (const WeightedEdge& e : edges) {
    arcs[cursor[e.u]++] = Arc{e.v, e.w, e.id};
    arcs[cursor[e.v]++] = Arc{e.u, e.w, e.id};
  }

  std::vector<uint8_t> visited(num_nodes, 0);
  f.bfs_order.reserve(num_nodes);
  int64_t tree_edges = 0;
  for (int64_t s = 0; s < num_nodes; ++s) {
    if (visited[s]) continue;
    const NodeId root = static_cast<NodeId>(s);
    visited[s] = 1;
    f.parent[s] = root;
    f.root[s] = root;
    f.depth[s] = 0;
    std::deque<NodeId> queue{root};
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      f.bfs_order.push_back(v);
      for (int64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
        const Arc& arc = arcs[i];
        if (visited[arc.to]) continue;
        visited[arc.to] = 1;
        f.parent[arc.to] = v;
        f.parent_weight[arc.to] = arc.w;
        f.parent_edge_id[arc.to] = arc.id;
        f.depth[arc.to] = f.depth[v] + 1;
        f.root[arc.to] = root;
        ++tree_edges;
        queue.push_back(arc.to);
      }
    }
  }
  AMPC_CHECK_EQ(tree_edges, static_cast<int64_t>(edges.size()))
      << "input edges contain a cycle";

  // Children CSR.
  std::vector<int64_t> child_count(num_nodes, 0);
  for (int64_t v = 0; v < num_nodes; ++v) {
    if (!f.IsRoot(static_cast<NodeId>(v))) ++child_count[f.parent[v]];
  }
  f.child_offsets.assign(num_nodes + 1, 0);
  for (int64_t v = 0; v < num_nodes; ++v) {
    f.child_offsets[v + 1] = f.child_offsets[v] + child_count[v];
  }
  f.children.resize(f.child_offsets.back());
  std::vector<int64_t> child_cursor(f.child_offsets.begin(),
                                    f.child_offsets.end() - 1);
  for (int64_t v = 0; v < num_nodes; ++v) {
    if (!f.IsRoot(static_cast<NodeId>(v))) {
      f.children[child_cursor[f.parent[v]]++] = static_cast<NodeId>(v);
    }
  }
  return f;
}

}  // namespace ampc::trees
