#include "sim/autotuner.h"

#include <algorithm>
#include <sstream>

namespace ampc::sim {
namespace {

std::string KnobsToString(const TunedKnobs& knobs) {
  std::ostringstream os;
  os << "placement=" << kv::PlacementPolicyName(knobs.placement_policy)
     << " depth=" << knobs.pipeline_depth
     << " max_batch_keys=" << knobs.max_batch_keys
     << " cache_capacity=" << knobs.query_cache_capacity
     << " frontier=" << FrontierModeName(knobs.frontier_mode);
  return os.str();
}

}  // namespace

AutoTuner::AutoTuner(const AutoTuneConfig& config, const TunedKnobs& base,
                     bool caching_enabled)
    : config_(config),
      caching_enabled_(caching_enabled),
      base_knobs_(base),
      next_knobs_(base),
      committed_knobs_(base) {}

void AutoTuner::BuildPlan(const RoundSignals& s) {
  plan_.clear();
  candidate_index_ = 0;

  // Every candidate varies exactly ONE axis off base_knobs_, so an
  // accepted candidate's axis can be composed into the committed config
  // independently of the others. Gates read the first base round's
  // signals: an axis is only worth a probe round when its signal says
  // the knob is live on this workload.

  // Placement: the only signal that distinguishes hash from range (or
  // back) is paying per-destination trips at all — pull-only phases
  // (trips == 0) make the flip unmeasurable, so skip it.
  if (s.kv_lookup_trips > 0) {
    Candidate c;
    c.axis = Axis::kPlacement;
    c.knobs = base_knobs_;
    c.knobs.placement_policy =
        base_knobs_.placement_policy == kv::PlacementPolicy::kRange
            ? kv::PlacementPolicy::kHash
            : kv::PlacementPolicy::kRange;
    c.name = std::string("placement->") +
             kv::PlacementPolicyName(c.knobs.placement_policy);
    plan_.push_back(std::move(c));
  }

  // Frontier: try promoting pure-sparse to the hybrid alpha/beta
  // policy. Like placement, it only changes anything when rounds pay
  // per-destination trips; it is measured, not assumed — hybrid's pull
  // rounds bypass the query cache, so on cache-friendly adaptive
  // workloads (pagerank walks) sparse legitimately wins and the probe
  // rejects the flip. A core that bound its engine path at start sees
  // the flip as a no-op (ratio ~1) and also rejects it.
  if (base_knobs_.frontier_mode == FrontierMode::kSparse &&
      s.kv_lookup_trips > 0) {
    Candidate c;
    c.axis = Axis::kFrontier;
    c.knobs = base_knobs_;
    c.knobs.frontier_mode = FrontierMode::kHybrid;
    c.name = "frontier->hybrid";
    plan_.push_back(std::move(c));
  }

  // Depth: doubling only helps when the pipeline is actually saturated
  // (the realized in-flight watermark reached the current window
  // ceiling), and never past the in-flight key budget.
  {
    const int64_t window =
        static_cast<int64_t>(base_knobs_.pipeline_depth) *
        base_knobs_.max_batch_keys;
    const int64_t doubled =
        static_cast<int64_t>(2 * base_knobs_.pipeline_depth) *
        base_knobs_.max_batch_keys;
    if (s.kv_lookup_trips > 0 && s.peak_inflight_keys >= window &&
        doubled <= config_.inflight_key_budget) {
      Candidate c;
      c.axis = Axis::kDepth;
      c.knobs = base_knobs_;
      c.knobs.pipeline_depth = 2 * base_knobs_.pipeline_depth;
      c.name = "depth->" + std::to_string(c.knobs.pipeline_depth);
      plan_.push_back(std::move(c));
    }
  }

  // Batch bound: widen only when the bound is binding — the keys that
  // actually reached the batcher (cache misses, or all queries with
  // caching off) filled ~every batch to the brim.
  if (s.kv_batches > 0) {
    const int64_t batched_keys = caching_enabled_ ? s.cache_misses
                                                  : s.kv_queries;
    const double keys_per_batch =
        static_cast<double>(batched_keys) / static_cast<double>(s.kv_batches);
    if (keys_per_batch >=
        0.9 * static_cast<double>(base_knobs_.max_batch_keys)) {
      Candidate c;
      c.axis = Axis::kBatchKeys;
      c.knobs = base_knobs_;
      c.knobs.max_batch_keys = 4 * base_knobs_.max_batch_keys;
      c.name = "max_batch_keys->" + std::to_string(c.knobs.max_batch_keys);
      plan_.push_back(std::move(c));
    }
  }

  // Cache capacity: grow only when the cache is both cold (low hit
  // rate) and demonstrably too small (more misses than slots — a
  // larger cache could have retained them).
  if (caching_enabled_ && s.cache_hits + s.cache_misses > 0) {
    const double hit_rate =
        static_cast<double>(s.cache_hits) /
        static_cast<double>(s.cache_hits + s.cache_misses);
    if (hit_rate < 0.5 && s.cache_misses > base_knobs_.query_cache_capacity) {
      Candidate c;
      c.axis = Axis::kCacheCapacity;
      c.knobs = base_knobs_;
      c.knobs.query_cache_capacity = 4 * base_knobs_.query_cache_capacity;
      c.name =
          "cache_capacity->" + std::to_string(c.knobs.query_cache_capacity);
      plan_.push_back(std::move(c));
    }
  }

  plan_built_ = true;
}

void AutoTuner::Commit(double base_cost_ref) {
  committed_knobs_ = base_knobs_;
  double accepted_ratio_product = 1.0;
  for (Candidate& c : plan_) {
    if (c.accepted) {
      switch (c.axis) {
        case Axis::kPlacement:
          committed_knobs_.placement_policy = c.knobs.placement_policy;
          break;
        case Axis::kFrontier:
          committed_knobs_.frontier_mode = c.knobs.frontier_mode;
          break;
        case Axis::kDepth:
          committed_knobs_.pipeline_depth = c.knobs.pipeline_depth;
          break;
        case Axis::kBatchKeys:
          committed_knobs_.max_batch_keys = c.knobs.max_batch_keys;
          break;
        case Axis::kCacheCapacity:
          committed_knobs_.query_cache_capacity = c.knobs.query_cache_capacity;
          break;
      }
      accepted_ratio_product *= c.ratio;
    }
    decided_.push_back(c);
  }
  plan_.clear();
  base_costs_.clear();
  plan_built_ = false;
  awaiting_candidate_ = false;

  // Future re-probes explore around the committed point, and the drift
  // reference is the last measured base cost scaled by the accepted
  // improvements (the committed config's expected per-query cost).
  base_knobs_ = committed_knobs_;
  next_knobs_ = committed_knobs_;
  committed_cost_ref_ = base_cost_ref * accepted_ratio_product;
  cooldown_remaining_ = config_.reprobe_cooldown_rounds;
  drift_streak_ = 0;
  state_ = State::kCommitted;
  ++commits_;
}

void AutoTuner::BeginProbe() {
  plan_.clear();
  base_costs_.clear();
  plan_built_ = false;
  awaiting_candidate_ = false;
  candidate_index_ = 0;
  next_knobs_ = base_knobs_;
  state_ = State::kProbing;
}

void AutoTuner::ObserveRound(const RoundSignals& s) {
  // KV-write and spawn-only rounds carry no lookup telemetry; they run
  // under the current knobs and pass through without advancing either
  // the probe schedule or the drift counter.
  if (!Informative(s)) return;

  if (state_ == State::kProbing) {
    ++probe_rounds_observed_;
    const double cost = PerQueryCost(s);

    if (awaiting_candidate_) {
      // This round ran under plan_[candidate_index_]'s knobs.
      Candidate& c = plan_[candidate_index_];
      c.cand_cost = cost;
      awaiting_candidate_ = false;
      ++candidate_index_;
      next_knobs_ = base_knobs_;  // interleave: a base round follows
      return;
    }

    // A base round.
    base_costs_.push_back(cost);
    if (!plan_built_) BuildPlan(s);

    // Score the candidate whose neighboring base rounds are now both
    // in: candidate i sits between base_costs_[i] and base_costs_[i+1].
    if (candidate_index_ > 0 && base_costs_.size() > candidate_index_) {
      Candidate& c = plan_[candidate_index_ - 1];
      c.base_cost = 0.5 * (base_costs_[candidate_index_ - 1] +
                           base_costs_[candidate_index_]);
      c.ratio = c.base_cost > 0 ? c.cand_cost / c.base_cost : 1.0;
      c.accepted = c.ratio < config_.accept_ratio;
      c.decided = true;
    }

    if (candidate_index_ >= plan_.size()) {
      // Every candidate decided (or the plan was empty): commit,
      // referenced to the freshest base measurement.
      Commit(base_costs_.back());
      return;
    }

    // Schedule the next candidate.
    next_knobs_ = plan_[candidate_index_].knobs;
    awaiting_candidate_ = true;
    return;
  }

  // Committed: cheap per-round drift re-check with hysteresis.
  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
    return;
  }
  const double cost = PerQueryCost(s);
  const bool drifted =
      committed_cost_ref_ > 0 &&
      (cost > committed_cost_ref_ * (1.0 + config_.drift_band) ||
       cost < committed_cost_ref_ * (1.0 - config_.drift_band));
  if (drifted) {
    if (++drift_streak_ >= config_.drift_patience) {
      ++reprobes_;
      BeginProbe();
    }
  } else {
    drift_streak_ = 0;
  }
}

std::string AutoTuner::DecisionSummary() const {
  std::ostringstream os;
  for (const Candidate& c : decided_) {
    os << "  probe   " << c.name;
    if (c.decided) {
      os << "  ratio=" << c.ratio << "  "
         << (c.accepted ? "accepted" : "rejected");
    } else {
      os << "  undecided";
    }
    os << "\n";
  }
  os << "  state   " << (committed() ? "committed" : "probing")
     << "  probe_rounds=" << probe_rounds_observed_
     << "  commits=" << commits_ << "  reprobes=" << reprobes_ << "\n";
  os << "  knobs   " << KnobsToString(committed() ? committed_knobs_
                                                  : next_knobs_);
  return os.str();
}

}  // namespace ampc::sim
