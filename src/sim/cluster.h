// The AMPC cluster simulator.
//
// Executes an AMPC (or MPC) computation's phases on a pool of logical
// machines backed by real threads, while charging a simulated distributed
// cost model. Two clocks are kept per phase:
//
//   wall:<phase>  real seconds spent on this multicore host, and
//   sim:<phase>   modeled seconds in the paper's environment: per-machine
//                 KV latency/throughput (kv::NetworkModel), an aggregate
//                 network ceiling (paper Section 5.7), durable-storage
//                 shuffle throughput, and fixed per-round spawn overhead.
//
// Cost accounting is per machine and skew-aware: the DHT
// (kv::ShardedStore) is hash-partitioned across machines with the same
// placement function the simulator uses for work items, and every KV
// write or lookup is charged to the machine whose shard actually serves
// it. A round's simulated duration is the *slowest machine's* time (plus
// the aggregate network ceiling), so hot keys and byte skew surface as
// stragglers in sim: times instead of vanishing into a total/P average.
//
// Round accounting matches the paper's conventions: a *shuffle* is a
// costly round (Table 3 counts these); KV writes and map rounds are cheap
// rounds.
//
// Reads flow through a four-stage lookup pipeline (Section 5.3), each
// stage an independently togglable Figure-4 optimization axis:
//
//   1. query cache   — each machine's bounded kv::QueryCache answers
//                      repeated keys locally (no trip, no owner bytes);
//                      ClusterConfig::query_cache.
//   2. batch coalesce — LookupMany groups one adaptive step's misses by
//                      owning machine; duplicate keys in a batch are
//                      fetched once; ClusterConfig::batch_lookups.
//   3. pipeline      — a worker keeps up to
//                      ClusterConfig::pipeline_depth sub-batches in
//                      flight (LookupManyAsync/Await tickets); the
//                      round-trip latencies of concurrently in-flight
//                      sub-batches overlap, so a destination contacted
//                      by w in-flight windows costs ceil(w / depth)
//                      serialized trips instead of w. depth = 1 is
//                      strict lockstep, the bit-identical baseline.
//   4. per-destination trips — each sub-batch (bounded by
//                      ClusterConfig::max_batch_keys, the adaptive
//                      sub-batching knob) pays one round-trip latency
//                      per distinct destination machine; bytes stay
//                      charged per machine, max-over-machines.
//
// The multithreading toggle (overlapping trips across a machine's worker
// threads) completes the Figure-4 ablation grid. None of the toggles
// ever changes a returned value — only the cost model.
//
// The cluster is elastic under injected churn (ClusterConfig::faults):
// a seeded sim::FaultInjector kills machines mid-phase at a Poisson
// rate, and the cluster recovers each loss — re-routing the dead
// machine's shards to surviving replicas (kv::ReplicaSet), restoring
// from the last periodic checkpoint, or replaying from scratch — and
// charges the recovery through the same max-over-machines cost model.
// Recovery is a *cost* event, never a correctness event: values are
// resolved eagerly as always, so outputs under churn are bit-identical
// to a fault-free run.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/frontier.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "kv/network_model.h"
#include "kv/placement.h"
#include "kv/query_cache.h"
#include "kv/sharded_store.h"
#include "sim/autotuner.h"
#include "sim/faults.h"

namespace ampc::sim {

/// Cluster-wide configuration. Defaults model the paper's setting scaled
/// to a single multicore host.
struct ClusterConfig {
  /// Number of logical machines (paper: up to 100). A scale parameter
  /// of the simulated topology, not a feature toggle: outputs are
  /// bit-identical across values (the determinism matrix), only the
  /// cost distribution moves.
  int num_machines = 8;
  /// Worker threads per machine used to overlap synchronous KV lookups
  /// (the multithreading optimization of Section 5.3). A scale
  /// parameter: outputs are bit-identical across thread counts, only
  /// simulated overlap changes.
  int threads_per_machine = 8;
  /// Disables the multithreading optimization when false (Figure 4).
  bool multithreading = true;
  /// Per-machine query-result caching (the Section 5.3 caching
  /// optimization, the largest single Figure-4 win). When enabled,
  /// every store minted by MakeStore carries one bounded read-through
  /// kv::QueryCache per machine, consulted by MachineContext::Lookup
  /// and LookupMany before any trip is charged: hits are served locally
  /// (counted via cache_hits; no round trip, no owner bytes) and
  /// duplicate keys within one batch are fetched once. Algorithms park
  /// derived per-key facts in MakeMachineCaches() instances under the
  /// same budget. Disabling it reverts to the uncached client without
  /// changing any returned value — the caching axis of the Figure-4
  /// ablation grid.
  struct QueryCacheConfig {
    /// false disables caching entirely — the uncached historical
    /// client, bit-identical outputs, cost-only difference.
    bool enabled = true;
    /// Cached entries per machine (per store, and per derived-fact
    /// cache set minted by MakeMachineCaches). Cost-only: capacity
    /// never changes returned values, just the hit rate.
    int64_t capacity = 1 << 16;
    /// Internal lock shards of each cache — a concurrency knob for the
    /// machine's worker threads, unrelated to DHT placement. Cost- and
    /// value-neutral; any value yields identical outputs and charges.
    int lock_shards = 8;
  };
  QueryCacheConfig query_cache;
  /// Batches DHT reads issued through MachineContext::LookupMany into one
  /// round trip per destination machine (the batching/pipelining
  /// optimization of Section 5.3). When false every key in a batch is
  /// charged a full round trip — the unbatched scalar client, kept as an
  /// ablation toggle (outputs are identical either way; only the cost
  /// model differs).
  bool batch_lookups = true;
  /// Adaptive sub-batching: the most keys one in-flight LookupMany
  /// sub-batch may carry, and the frontier window DriveLookupPipelined
  /// gathers per adaptive step. Huge frontiers split into sub-batches
  /// of this size — each sub-batch still pays one trip per distinct
  /// destination machine, preserving the batching amortization, but a
  /// worker never holds every in-flight request and response at once.
  /// <= 0 disables splitting (one sub-batch per call). The default is
  /// tuned so typical per-worker frontiers at this library's benchmark
  /// scale stay whole while hub-degree and giant-frontier outliers are
  /// bounded.
  int64_t max_batch_keys = 4096;
  /// Bounded-depth pipelining of asynchronous lookups — the third
  /// Section 5.3 client optimization, after caching and batching. A
  /// worker keeps up to this many sub-batches in flight at once
  /// (MachineContext::LookupManyAsync issues a ticket, Await settles
  /// it; DriveLookupPipelined and LookupMany drive the pattern), and
  /// the round-trip latencies of concurrently in-flight sub-batches
  /// overlap: per adaptive step (one fully drained pipeline), a
  /// destination machine contacted by w in-flight windows costs
  /// ceil(w / pipeline_depth) serialized trips instead of w, while
  /// bytes stay charged per machine (client NIC receives, owning
  /// shard's NIC serves, max-over-machines) exactly as in lockstep.
  /// 1 = strict lockstep, the bit-identical ablation baseline (the
  /// pre-pipelining cost model). The memory trade-off is depth x
  /// max_batch_keys keys held in flight per worker; the
  /// kv_peak_inflight_keys metric measures the realized peak.
  int pipeline_depth = 4;
  /// Key -> machine placement policy, shared by every store minted with
  /// MakeStore and by the work-item placement of map phases. kHash is
  /// the historical default; every policy returns bit-identical
  /// outputs, only locality (and so cost) differs.
  kv::PlacementPolicy placement_policy = kv::PlacementPolicy::kHash;
  /// Consecutive keys per block under the affinity placement policy.
  /// Ignored (cost- and value-neutral) under every other policy.
  int64_t affinity_block = 32;
  /// KV-store network cost model (RDMA vs TCP/IP, Table 4). Cost-only:
  /// the network model scales charged latencies/bytes, never values.
  kv::NetworkModel network = kv::NetworkModel::Rdma();
  /// Fixed simulated cost of spawning any round (stage scheduling,
  /// worker startup). Dominates when the graph is small or P is large.
  /// Calibrated so that fixed-vs-data cost ratios at this library's
  /// benchmark scale (1e5..1e7 arcs) match the paper's at its scale
  /// (1e8..1e11 arcs). Cost-only.
  double round_spawn_sec = 0.05;
  /// Per-machine throughput of shuffle writes to durable storage.
  /// Cost-only.
  double shuffle_bytes_per_sec = 2.0e7;
  /// Simulated floor per shuffle (fault-tolerant checkpointing).
  /// Cost-only.
  double shuffle_min_sec = 0.02;
  /// Simulated CPU cost per item touched in a map phase. Cost-only.
  double map_item_cpu_sec = 2e-8;
  /// Injected machine failures and the recovery machinery that absorbs
  /// them. Defaults are all-off and reproduce the fault-free cost model
  /// bit-identically: rate 0 means the injector never fires,
  /// replication 1 means no follower copies are charged, period 0 means
  /// no checkpoint rounds are taken.
  struct FaultConfig {
    /// Poisson kill rate per machine-second of *simulated* time. A
    /// killed machine is immediately replaced (the scheduler reruns the
    /// slot), but its shard contents, caches, and in-flight slice are
    /// lost and recovered at a cost. 0 disables injection.
    double fault_rate_per_machine_sec = 0.0;
    /// Seed of the injected kill schedule — independent of `seed` so
    /// churn can vary while algorithmic randomness stays fixed. Inert
    /// (cost- and value-neutral) while every fault rate is 0.
    uint64_t fault_seed = 42;
    /// Copies of every DHT record (kv::Placement::replication): R > 1
    /// places R - 1 followers on distinct machines via chained
    /// declustering, so a lost machine re-streams its shard from a
    /// surviving replica instead of replaying history. Follower write
    /// traffic and memory are charged through the normal cost model
    /// (kv_replication_bytes). 1 = no followers, the unreplicated
    /// historical model, bit-identical to pre-replication builds.
    int replication = 1;
    /// Simulated seconds between periodic shard checkpoints to durable
    /// storage. A checkpoint is a costly round (charged like a sharded
    /// shuffle of each machine's KV-byte delta since the previous one);
    /// recovery of an unreplicated machine then replays only the rounds
    /// since the last checkpoint instead of the whole job. 0 disables
    /// checkpointing.
    double checkpoint_period_sec = 0.0;
    /// Rack-level fault-domain width: machines [d*k, (d+1)*k) share a
    /// switch and power domain. <= 1 keeps every machine its own domain
    /// (the historical model). Feeds both the injector's correlated
    /// kill streams and — when domain_aware_placement is on — the
    /// replica placement's SpansDomains invariant.
    int machines_per_domain = 0;
    /// Poisson rate per domain-second of correlated domain kills: one
    /// arrival takes out every machine of a fault domain at the same
    /// simulated instant (a rack loss). Counted per group in
    /// "domains_lost". 0 disables the correlated streams.
    double domain_fault_rate_sec = 0.0;
    /// When machines_per_domain > 1, place each shard's replicas across
    /// distinct fault domains (kv::Placement::machines_per_domain), so
    /// a single rack loss never wipes a whole ReplicaSet while a spare
    /// domain exists. Off = the domain-oblivious historical walk — the
    /// naive baseline bench/micro_degrade measures rack kills against.
    bool domain_aware_placement = true;
    /// Seconds of advance notice ahead of every kill. > 0 makes the
    /// injector emit warning events warning_lead_sec before each kill
    /// (machine or domain), and the cluster reacts by *draining* the
    /// marked machine: its hosted shards migrate to their least-loaded
    /// live replica (or a fresh least-loaded owner at replication 1) at
    /// shuffle bandwidth on the sim clock ("sim:drain",
    /// kv_migration_bytes), the shard map is hot-swapped mid-job, and
    /// the kill — when it lands — loses zero in-flight slice and
    /// replays nothing. 0 = unannounced kills, the reactive historical
    /// model.
    double warning_lead_sec = 0.0;
    /// Per-round probability that a destination machine is a straggler:
    /// each round, each machine is independently slow with this
    /// probability (seeded StragglerModel — a pure function of
    /// (fault_seed, round, machine)), and every lookup round trip to a
    /// slow machine takes straggler_slowdown x the normal latency.
    /// Cost-only, like every fault knob. 0 disables the model.
    double slow_machine_rate = 0.0;
    /// Latency multiplier of a slow destination's round trips. Inert
    /// (cost- and value-neutral) while slow_machine_rate is 0.
    double straggler_slowdown = 4.0;
    /// Hedged lookups: after a timeout of one normal round-trip latency
    /// (the non-straggler quantile of the trip distribution), re-issue
    /// a slow destination's window to the shard's first replica and
    /// take the first response. A hedge against a non-slow replica
    /// completes in 2 x latency instead of straggler_slowdown x; both
    /// trips are charged honestly (kv_hedged_trips, kv_hedge_wins).
    /// Needs replication > 1 to have a replica to hedge to. false =
    /// wait out stragglers, the historical model, bit-identical costs.
    bool hedge_lookups = false;
  };
  FaultConfig faults;
  /// The frontier engine (common/frontier.h): how frontier-shaped cores
  /// (pagerank's walk phases, connectivity/msf, kcore's h-index
  /// peeling) represent and drive their active sets. kSparse — the
  /// default — is the legacy flat-work-list path and reproduces the
  /// pre-frontier cost model bit-identically (same discipline as
  /// batch_lookups/query_cache/pipeline_depth: an ablation toggle that
  /// never changes returned values). kDense forces every frontier
  /// phase through the pull model (Cluster::RunPullPhase: broadcast
  /// the frontier bitmap, sweep local shards — no per-vertex round
  /// trips); kHybrid lets the Beamer-style FrontierPolicy pick per
  /// round with alpha/beta hysteresis.
  struct FrontierConfig {
    /// kSparse — the default — is the legacy flat-work-list engine and
    /// reproduces the pre-frontier cost model bit-identically.
    FrontierMode mode = FrontierMode::kSparse;
    /// Switch sparse -> dense when frontier out-edges exceed
    /// total_edges / alpha. Inert under the default kSparse mode;
    /// cost-only otherwise.
    double alpha = FrontierPolicy::kDefaultAlpha;
    /// Switch dense -> sparse when the frontier shrinks below
    /// num_vertices / beta. Inert under the default kSparse mode;
    /// cost-only otherwise.
    double beta = FrontierPolicy::kDefaultBeta;
    /// Minimum items per worker slice when a map phase's per-machine
    /// share is too small to feed every worker (the small-frontier
    /// regrouping in RunMapPhaseImpl): shares below
    /// threads_per_machine x this grain are split into grain-sized
    /// chunks instead of machine_share / threads slivers, so a tiny
    /// sparse round does not shatter into near-empty per-worker
    /// sub-batches (each paying its own per-destination trips). Only
    /// applied when the engine is active (mode != kSparse): kSparse
    /// keeps the historical slicing, and with it the historical cost
    /// model, untouched.
    int64_t min_worker_grain = 32;
  };
  FrontierConfig frontier;
  /// The telemetry-driven AutoTuner (sim/autotuner.h): probe-then-commit
  /// auto-configuration of placement_policy, pipeline_depth,
  /// max_batch_keys, query_cache.capacity, and frontier.mode. Off by
  /// default — the historical cost model is reproduced byte-identically
  /// and no tuner is constructed. When enabled, the tuner's rule layer
  /// may rewrite the knobs above at construction (frontier kSparse ->
  /// kHybrid) and its probe layer hot-swaps them between rounds; every
  /// knob it moves is a value-neutral ablation toggle, so outputs never
  /// change — only the simulated cost.
  AutoTuneConfig auto_tune;
  /// Seed from which all algorithmic randomness is derived. Outputs are
  /// a pure function of (input, seed, config): rerunning any seed
  /// reproduces its outputs bit-identically on any machine.
  uint64_t seed = 42;
  /// Baselines switch to a single-machine in-memory algorithm below this
  /// many arcs (paper: 5e7; default scaled to our dataset sizes).
  int64_t in_memory_threshold_arcs = 2'000'000;
};

class MachineContext;

/// Per-machine KV traffic of one simulated round, aligned with
/// Cluster::round_log(): read_bytes[m] is what machine m's shard served,
/// write_bytes[m] what landed on it. Rounds without KV traffic carry
/// zeros. sim::ReplayMemoryPressureSeconds (sim/faults.h) consumes the
/// write columns to replay memory pressure round by round.
struct RoundFootprint {
  std::string phase;
  std::vector<int64_t> kv_read_bytes;
  std::vector<int64_t> kv_write_bytes;
};

/// A simulated AMPC cluster: phase executor + metric accountant.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  const ClusterConfig& config() const { return config_; }
  Metrics& metrics() { return metrics_; }
  ThreadPool& pool() { return *pool_; }

  /// The cluster's placement for a key space of `capacity` keys: the
  /// single key -> machine assignment shared by MakeStore's records and
  /// the map phases' work items.
  kv::Placement PlacementFor(int64_t capacity) const {
    kv::Placement placement;
    placement.policy = config_.placement_policy;
    placement.num_shards = config_.num_machines;
    placement.seed = config_.seed;
    placement.capacity = capacity;
    placement.affinity_block = config_.affinity_block;
    placement.replication = config_.faults.replication;
    if (config_.faults.domain_aware_placement &&
        config_.faults.machines_per_domain > 1) {
      placement.machines_per_domain = config_.faults.machines_per_domain;
    }
    return placement;
  }

  /// The machine currently *hosting* base shard `shard`. Identity until
  /// a proactive drain migrates a marked machine's shards to new owners
  /// (DrainMachine); from then on work items and server-side charges of
  /// a migrated shard follow its new host while the base-shard-indexed
  /// slot tables of every live store keep serving unchanged. Mutated
  /// only between rounds (same discipline as the tuner's retired
  /// placements), read concurrently by workers.
  int HostOf(int shard) const {
    return shard_hosts_.empty() ? shard : shard_hosts_[shard];
  }

  /// The machine that owns key/item `key` in a key space of `capacity`
  /// keys. The machine running item v is the machine whose shard holds
  /// record v of any store made by MakeStore(capacity) — after a drain
  /// migration, that is the shard's new host.
  int MachineOf(uint64_t key, int64_t capacity) const {
    return HostOf(PlacementFor(capacity).ShardOf(key));
  }

  /// Capacity-oblivious convenience for the policies that do not need
  /// the key-space size (hash, affinity). Range placement requires the
  /// capacity-taking overload.
  int MachineOf(uint64_t key) const {
    AMPC_CHECK(config_.placement_policy != kv::PlacementPolicy::kRange)
        << "range placement needs MachineOf(key, capacity)";
    return HostOf(PlacementFor(0).ShardOf(key));
  }

  /// Creates a DHT store for keys [0, capacity) sharded across this
  /// cluster's machines (shard s = machine s). The key assignment is a
  /// pure function of (capacity, machines, seed), so it is computed once
  /// per capacity and shared across the run's stores (algorithms mint a
  /// fresh same-shaped store every round). When query caching is on the
  /// store carries one bounded read-through cache per machine.
  template <typename V>
  kv::ShardedStore<V> MakeStore(int64_t capacity) const {
    kv::ShardedStore<V> store(ShardMapFor(capacity));
    if (config_.query_cache.enabled) {
      // Registering with the drop registry lets the fault model clear a
      // lost machine's caches (the replacement starts cold).
      store.EnableQueryCache(config_.query_cache.capacity,
                             config_.query_cache.lock_shards,
                             &cache_registry_);
    }
    return store;
  }

  /// Per-machine bounded caches for *derived* per-key facts (mis's
  /// three-valued vertex states, matching's status words), sized by the
  /// query_cache config. Disabled config => every ForMachine() is
  /// nullptr and algorithms fall back to uncached resolution. Hit/miss
  /// accounting stays with the caller via
  /// MachineContext::CountCacheHit/Miss.
  template <typename V>
  kv::MachineCaches<V> MakeMachineCaches() const {
    if (!config_.query_cache.enabled) return {};
    return kv::MachineCaches<V>(config_.num_machines,
                                config_.query_cache.capacity,
                                config_.query_cache.lock_shards);
  }

  /// Per-machine byte attribution for sharded-shuffle accounting:
  /// bytes[m] = sum of bytes_of(i) over i in [0, items) with
  /// machine_of(i) == m, computed with the per-thread-histogram pattern
  /// RunMapPhaseImpl uses for bucket counting (one local histogram per
  /// chunk, a single atomic merge per machine). Replaces the serial
  /// per-key hash loops that were an O(items)-per-round single-thread
  /// hot spot in the cost attribution of connectivity/kkt/clustering
  /// and the simulated-AMPC baseline.
  template <typename MachineFn, typename BytesFn>
  std::vector<int64_t> AttributeShardedBytes(int64_t items,
                                             MachineFn&& machine_of,
                                             BytesFn&& bytes_of) {
    std::vector<std::atomic<int64_t>> totals(config_.num_machines);
    for (auto& t : totals) t.store(0, std::memory_order_relaxed);
    ParallelForChunked(*pool_, 0, items, 4096, [&](int64_t lo, int64_t hi) {
      std::vector<int64_t> local(config_.num_machines, 0);
      for (int64_t i = lo; i < hi; ++i) local[machine_of(i)] += bytes_of(i);
      for (int m = 0; m < config_.num_machines; ++m) {
        if (local[m] != 0) {
          totals[m].fetch_add(local[m], std::memory_order_relaxed);
        }
      }
    });
    std::vector<int64_t> bytes(config_.num_machines);
    for (int m = 0; m < config_.num_machines; ++m) bytes[m] = totals[m].load();
    return bytes;
  }

  /// Records a shuffle that moved `bytes` through durable storage,
  /// spread evenly over the machines. Counts one costly round.
  /// `wall_seconds` is the real time the caller spent materializing the
  /// shuffle (already measured by the caller).
  void AccountShuffle(const std::string& phase, int64_t bytes,
                      double wall_seconds = 0.0);

  /// Records a shuffle whose bytes land unevenly: per_machine_bytes[m] is
  /// the traffic machine m writes/receives. The round lasts as long as
  /// the hottest machine needs (skewed key distributions cost more than
  /// uniform ones of the same total). Counts one costly round.
  void AccountShardedShuffle(const std::string& phase,
                             const std::vector<int64_t>& per_machine_bytes,
                             double wall_seconds = 0.0);

  /// Records a cheap (map-only) round that is not a shuffle.
  void AccountMapRound(const std::string& phase);

  /// Records work done by the single-machine in-memory fallback: one
  /// gather shuffle of `bytes` plus `items` sequential item costs.
  void AccountInMemoryFinish(const std::string& phase, int64_t bytes,
                             int64_t items);

  /// Records a single-machine in-memory computation whose input was
  /// already materialized on one machine by a previous shuffle (no
  /// additional gather is charged).
  void AccountInMemoryCompute(const std::string& phase, int64_t items);

  /// Runs `fn(item, ctx)` for every item in [0, n), with items placement-
  /// partitioned onto machines and each machine's share processed by
  /// `threads_per_machine` workers. Charges KV costs accumulated through
  /// the MachineContext plus per-item CPU cost; lookup traffic is charged
  /// to the machine whose shard serves it. Counts one cheap round.
  void RunMapPhase(const std::string& phase, int64_t n,
                   const std::function<void(int64_t, MachineContext&)>& fn);

  /// Slice-level variant for algorithms that batch DHT reads across the
  /// items of a worker: `fn(items, ctx)` receives each worker's whole
  /// share at once (the concatenation over workers covers [0, n) exactly
  /// once, machine-partitioned like RunMapPhase), so an adaptive step
  /// can gather every active item's key and issue one
  /// MachineContext::LookupMany per step instead of one scalar Lookup
  /// per item. Cost accounting is identical to RunMapPhase.
  void RunBatchMapPhase(
      const std::string& phase, int64_t n,
      const std::function<void(std::span<const int64_t>, MachineContext&)>&
          fn);

  /// Frontier-subset variant of RunBatchMapPhase — the sparse
  /// (sliding-queue) view of the frontier engine. Runs `fn` over
  /// exactly the items of `items` (each appearing once, machine-
  /// partitioned by the same placement a capacity-`key_space` store
  /// uses, so item v still runs on the machine owning record v)
  /// instead of all of [0, key_space). Cost accounting is identical to
  /// RunBatchMapPhase over an equal work list.
  void RunBatchMapPhase(
      const std::string& phase, int64_t key_space,
      std::span<const int64_t> items,
      const std::function<void(std::span<const int64_t>, MachineContext&)>&
          fn);

  /// Dense-frontier pull round — the frontier engine's pull mode
  /// (ROADMAP item 3). Instead of per-vertex LookupMany round trips,
  /// the round broadcasts the frontier bitmap (ceil(key_space/8)
  /// bytes, one machines-th to each machine) and every machine
  /// resolves its share by sweeping its *local* shard against the
  /// exchanged records: `fn` receives worker slices exactly like
  /// RunBatchMapPhase, but resolves reads through
  /// MachineContext::PullMany / DrivePullSteps, which charge bytes
  /// (client NIC receives, owning shard's NIC serves — one aggregate
  /// exchange) and *no* kv_lookup_trips. The settle charges each
  /// machine, per pull step, one broadcast slice plus two round-trip
  /// latencies (scatter + gather of the exchange), with the swept
  /// share of the key space costed at map-item CPU rate; steps advance
  /// in lockstep across machines (max over workers). Counts one cheap
  /// round; bumps frontier_dense_rounds / frontier_broadcast_bytes /
  /// frontier_exchange_bytes.
  void RunPullPhase(
      const std::string& phase, int64_t key_space,
      const std::function<void(std::span<const int64_t>, MachineContext&)>&
          fn);

  /// Frontier-subset pull round: like RunPullPhase over [0, key_space)
  /// but running `fn` only over the active items (the dense bitmap's
  /// set bits, in index order).
  void RunPullPhase(
      const std::string& phase, int64_t key_space,
      std::span<const int64_t> items,
      const std::function<void(std::span<const int64_t>, MachineContext&)>&
          fn);

  /// Counts a frontier-shaped round that ran in its sparse
  /// representation. Called by frontier-aware cores only when the
  /// engine is active (mode != kSparse) — the legacy sparse mode
  /// leaves the frontier metrics untouched, preserving bit-identical
  /// metric output.
  // ampc-lint: allow(metric-zero-guard): callers gate on an active
  // engine (mode != kSparse); legacy sparse mode never reaches this.
  void NoteSparseFrontierRound() { metrics_.Add("frontier_sparse_rounds", 1); }

  /// Writes records for keys [0, n) into `store` using value = producer(key)
  /// and charges each machine for the writes landing on its shard (the
  /// round lasts as long as the hottest shard needs). Producers run
  /// concurrently. Counts one cheap round.
  template <typename V, typename Producer>
  void RunKvWritePhase(const std::string& phase, kv::ShardedStore<V>& store,
                       int64_t n, Producer producer);

  /// Total simulated seconds accumulated so far.
  double SimSeconds() const { return metrics_.GetTime("sim_total"); }
  double WallSeconds() const { return metrics_.GetTime("wall_total"); }

  /// Simulated duration of every round charged so far, in order. One
  /// entry per "rounds" metric increment; in-memory compute time extends
  /// the round that gathered its input. Consumed by sim/faults.h to
  /// model per-round preemption behaviour.
  const std::vector<double>& round_log() const { return round_log_; }

  /// Per-round, per-machine KV traffic, aligned index-for-index with
  /// round_log(). Where machine_kv_write_bytes() is the cumulative
  /// footprint, this is the phase-resolved history: feed the write
  /// columns to sim::ReplayMemoryPressureSeconds to replay memory
  /// pressure round by round instead of judging the whole job by its
  /// final footprint.
  const std::vector<RoundFootprint>& round_footprints() const {
    return round_footprints_;
  }

  /// The write columns of round_footprints(), shaped for
  /// sim::ReplayMemoryPressureSeconds: [round][machine] KV bytes landing
  /// that round.
  std::vector<std::vector<int64_t>> RoundKvWriteBytes() const {
    std::vector<std::vector<int64_t>> bytes;
    bytes.reserve(round_footprints_.size());
    for (const RoundFootprint& fp : round_footprints_) {
      bytes.push_back(fp.kv_write_bytes);
    }
    return bytes;
  }

  /// Cumulative KV wire bytes written to each machine's shards across
  /// every RunKvWritePhase so far (including follower copies when
  /// replication > 1 — the machine's resident footprint). A per-machine
  /// memory-pressure signal: feed it to sim::MemoryPressureRates
  /// (sim/faults.h) to make machines holding hot shards
  /// preemption-prone, or inspect a single store's footprint directly
  /// via kv::ShardedStore::ShardBytesSnapshot.
  const std::vector<int64_t>& machine_kv_write_bytes() const {
    return machine_kv_write_bytes_;
  }

  /// The cluster's position on its simulated clock: the sum of every
  /// round charged so far, including recovery and checkpoint time.
  /// Mirrors the "sim_total" metric; the fault injector advances along
  /// this clock.
  double sim_clock() const { return sim_clock_; }

  /// Kills machine `machine` at the current simulated time, as if the
  /// injector had fired at the very end of the last charged round (the
  /// whole round is the lost in-flight portion). Deterministic and
  /// independent of the injector's schedule — the hook tests use to pin
  /// exact replay-vs-restart arithmetic against round_log().
  void InjectMachineFailure(int machine);

  /// Kills every machine of fault domain `domain` at the current
  /// simulated time — a correlated rack loss, with all members dead
  /// simultaneously, so recovery sees replica wipeouts exactly as an
  /// injected domain kill would. The deterministic hook the
  /// domain-aware-vs-naive placement tests pin against.
  void InjectDomainFailure(int domain);

  /// Proactively drains machine `machine` as if the injector had warned
  /// it: every shard it hosts migrates to its least-loaded live replica
  /// (fresh least-loaded owner at replication 1) at shuffle bandwidth
  /// on the sim clock ("sim:drain", kv_migration_bytes), the machine's
  /// query caches are dropped (a migrated shard can never serve a stale
  /// epoch from the old owner), and the shard map is hot-swapped so
  /// subsequent rounds route the shard's work and server charges to the
  /// new host. A later kill of a drained machine costs nothing — that
  /// is the whole point of the warning. Idempotent until the kill
  /// lands.
  void DrainMachine(int machine);

  /// Straggler model (ClusterConfig::faults.slow_machine_rate): whether
  /// any destination can be slow this run, and whether `machine` is
  /// slow during the currently accumulating round.
  bool stragglers_enabled() const { return straggler_.enabled(); }
  bool DestinationSlow(int machine) const {
    return straggler_.Slow(static_cast<int64_t>(round_log_.size()), machine);
  }

  /// Hedged lookups (ClusterConfig::faults.hedge_lookups), and the
  /// machine a hedged re-issue of shard `shard`'s window goes to: the
  /// current host of the shard's first follower, or -1 when the shard
  /// has no replica to hedge to.
  bool hedging_enabled() const { return config_.faults.hedge_lookups; }
  int HedgeHostOf(int shard) const {
    if (hedge_follower_.empty() || hedge_follower_[shard] < 0) return -1;
    return HostOf(hedge_follower_[shard]);
  }

  /// The AutoTuner driving this cluster's knobs, or nullptr when
  /// config.auto_tune.enabled is false. Read-only: the cluster owns the
  /// observe/apply cycle.
  const AutoTuner* auto_tuner() const { return tuner_.get(); }

  /// Whether `placement` is a placement this cluster could have handed a
  /// MakeStore(capacity) store: the *current* one, or one minted under a
  /// policy the tuner has since retired. Stores outlive tuner hot-swaps
  /// (algorithms hold them across rounds), so the consistency check in
  /// MachineContext accepts both — the store keeps serving under the
  /// placement it was built with, and cost charging follows the store's
  /// own ShardOf, so the model stays coherent either way.
  bool AcceptsStorePlacement(const kv::Placement& placement,
                             int64_t capacity) const {
    if (placement == PlacementFor(capacity)) return true;
    for (const RetiredPlacement& retired : retired_placements_) {
      kv::Placement p = PlacementFor(capacity);
      p.policy = retired.policy;
      p.affinity_block = retired.affinity_block;
      if (placement == p) return true;
    }
    return false;
  }

 private:
  friend class MachineContext;

  struct PhaseCounters {
    // Charged to the machine *running* the item (client side): query
    // latency, received record bytes, per-item CPU.
    std::atomic<int64_t> kv_queries{0};
    // Latency-bearing round trips. A scalar Lookup is one trip; a
    // LookupMany is one trip per distinct destination machine (or one
    // per key when batch_lookups is off). This — not kv_queries — is
    // what the settle math multiplies by lookup latency.
    std::atomic<int64_t> kv_lookup_trips{0};
    std::atomic<int64_t> kv_batches{0};
    std::atomic<int64_t> kv_read_bytes{0};
    std::atomic<int64_t> items{0};
    std::atomic<int64_t> cache_hits{0};
    std::atomic<int64_t> cache_misses{0};
    // Peak keys any of this machine's workers held in flight at once
    // (outstanding LookupManyAsync tickets; max-merged, not summed) —
    // the measured side of the pipeline_depth x max_batch_keys memory
    // trade-off.
    std::atomic<int64_t> peak_inflight_keys{0};
    // Charged to the machine whose shard *serves* the lookup (server
    // side): its NIC ships the record regardless of who asked.
    std::atomic<int64_t> kv_served_bytes{0};
    // Pull-mode (RunPullPhase) traffic: exchange bytes this machine's
    // workers received via PullMany, and the most pull steps
    // (frontier-bitmap broadcasts) any of its workers advanced through
    // (max-merged, not summed — the machine's workers share its view
    // of each global step).
    std::atomic<int64_t> pull_bytes{0};
    std::atomic<int64_t> pull_steps{0};
    // Straggler/hedging accounting, charged to the *client* machine
    // (integer trip counts, converted to extra latency once at settle —
    // never accumulated as doubles, so the cost model stays
    // bit-deterministic across thread interleavings): trips that hit a
    // slow destination this round, the subset re-issued to a replica
    // after the hedge timeout, and the subset the hedge won (replica
    // answered first).
    std::atomic<int64_t> kv_slow_trips{0};
    std::atomic<int64_t> kv_hedged_trips{0};
    std::atomic<int64_t> kv_hedge_wins{0};
  };

  // Marks a map phase as a pull round (RunPullPhase) for the settle:
  // key_space sizes the broadcast bitmap and the per-machine shard
  // sweep.
  struct PullPhaseInfo {
    int64_t key_space = 0;
  };

  // Converts per-machine phase counters into simulated round time (the
  // slowest machine's client + server + CPU time, floored by the
  // aggregate network ceiling) and folds everything into metrics. A
  // non-null `pull` adds the pull model's charges (bitmap broadcast,
  // exchange latency, local shard sweep) on top; null leaves the
  // historical arithmetic untouched.
  void SettleMapPhase(const std::string& phase,
                      std::vector<PhaseCounters>& per_machine,
                      double wall_seconds,
                      const PullPhaseInfo* pull = nullptr);

  // Same for a KV write phase, from per-machine write/byte deltas.
  void SettleKvWritePhase(const std::string& phase,
                          const std::vector<int64_t>& writes,
                          const std::vector<int64_t>& bytes,
                          double wall_seconds);

  // Shared executor behind RunMapPhase/RunBatchMapPhase/RunPullPhase:
  // partitions the work items (all of [0, key_space), or the explicit
  // `items` subset when `explicit_items` is set) onto machines by
  // MachineOf(item, key_space), runs one slice per (machine, worker),
  // settles. `pull` switches the settle onto the pull cost model.
  void RunMapPhaseImpl(
      const std::string& phase, int64_t key_space,
      std::span<const int64_t> items, bool explicit_items,
      const std::function<void(std::span<const int64_t>, MachineContext&)>&
          slice_fn,
      const PullPhaseInfo* pull = nullptr);

  // Appends a round of simulated duration `sim` to the log, with the
  // per-machine KV traffic it carried (empty vectors = a KV-free round).
  // Also moves the simulated clock: the round occupies
  // [last_round_start_, sim_clock_), the interval the fault injector is
  // advanced across when the round settles.
  void RecordRound(const std::string& phase, double sim,
                   std::vector<int64_t> kv_read_bytes = {},
                   std::vector<int64_t> kv_write_bytes = {}) {
    round_log_.push_back(sim);
    last_round_start_ = sim_clock_;
    sim_clock_ += sim;
    RoundFootprint fp;
    fp.phase = phase;
    fp.kv_read_bytes = std::move(kv_read_bytes);
    fp.kv_write_bytes = std::move(kv_write_bytes);
    if (fp.kv_read_bytes.empty()) {
      fp.kv_read_bytes.assign(config_.num_machines, 0);
    }
    if (fp.kv_write_bytes.empty()) {
      fp.kv_write_bytes.assign(config_.num_machines, 0);
    }
    round_footprints_.push_back(std::move(fp));
  }
  // Extends the most recent round (in-memory compute riding a gather,
  // recovery extending the round the kill interrupted). Advances the
  // clock unconditionally to stay an exact mirror of "sim_total".
  void ExtendLastRound(double sim) {
    if (!round_log_.empty()) round_log_.back() += sim;
    sim_clock_ += sim;
  }

  // The churn hook every Account*/Settle* path runs after charging its
  // round: harvests the injector's kills over the round's interval,
  // recovers each one (replica stream, checkpoint restore + windowed
  // replay, or whole-job replay — whichever the config provides), and
  // takes a periodic checkpoint when one is due. No-op when injection
  // and checkpointing are both off.
  void ProcessFaultsAndCheckpoints();

  // Recovers one machine loss and charges it: the recovery extends the
  // interrupted round (charged under the "sim:recovery" phase) and the
  // injector is advanced past the recovery interval afterwards (a
  // freshly scheduled machine does the recovering). `dead` marks every
  // machine down at the same instant (the kill's whole correlated
  // group, or just the machine for an independent kill): replicated
  // recovery streams from a replica only if each hosted shard still has
  // a copy on a live machine — a rack loss that beat the whole
  // ReplicaSet is a replica_wipeout and falls back to checkpoint
  // restore or whole-job replay. A drained machine's kill short-
  // circuits to zero cost.
  void RecoverFromKill(const FaultEvent& kill,
                       const std::vector<uint8_t>& dead);

  // Checkpoints every machine's KV-byte delta since the last checkpoint
  // as one costly round.
  void TakeCheckpoint();

  // Machine `machine`'s share of round `round`'s work for replay
  // purposes: its KV traffic over the round's hottest machine's (the
  // round lasts as long as its hottest machine, so a machine that moved
  // a fraction of the straggler's bytes replays that fraction of the
  // round). 1.0 for KV-free rounds — spawn/compute rounds replay whole.
  double ReplaySliceShare(size_t round, int machine) const;

  // A placement the tuner moved away from. Stores minted before the
  // swap keep serving under it (AcceptsStorePlacement). Mutated only
  // between rounds (ApplyTunedKnobs), read concurrently by workers —
  // safe because no round is in flight while it grows.
  struct RetiredPlacement {
    kv::PlacementPolicy policy;
    int64_t affinity_block;
  };

  // The per-round tuner handshake. BeginRound applies the knobs the
  // tuner wants the coming round to run under and snapshots the
  // metrics; EndRound feeds the round's telemetry delta back. Both are
  // no-ops (active == false) without a tuner, keeping the historical
  // path free of even a snapshot.
  struct TuneScope {
    MetricsSnapshot before;
    bool active = false;
  };
  TuneScope AutoTuneBeginRound();
  void AutoTuneEndRound(const TuneScope& scope, int64_t key_space,
                        int64_t items);
  // Copies `knobs` into config_ between rounds. A placement change
  // retires the old policy and clears the shard-map LRU so the next
  // MakeStore mints under the new assignment; the other knobs are read
  // live by MachineContext and take effect immediately.
  void ApplyTunedKnobs(const TunedKnobs& knobs);

  // The cached key assignment for stores of `capacity` (see MakeStore).
  std::shared_ptr<const kv::ShardMap> ShardMapFor(int64_t capacity) const;

  ClusterConfig config_;
  Metrics metrics_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<double> round_log_;
  std::vector<RoundFootprint> round_footprints_;
  std::vector<int64_t> machine_kv_write_bytes_;
  // Elasticity state. sim_clock_/last_round_start_ mirror "sim_total"
  // (maintained by RecordRound/ExtendLastRound) so kills land inside
  // the round that was in flight when they fired.
  FaultInjector fault_injector_;
  double sim_clock_ = 0.0;
  double last_round_start_ = 0.0;
  // Proactive-drain state. shard_hosts_[s] is the machine hosting base
  // shard s (identity until a drain migrates it; see HostOf);
  // drained_[m] marks a warned machine whose shards have been migrated
  // away and whose announced kill is still pending (cleared when it
  // lands — the kill then costs nothing); shard_primary_bytes_[s]
  // tracks the primary wire bytes resident on base shard s (the bytes
  // a drain migration must move). All mutated only between rounds.
  std::vector<int> shard_hosts_;
  std::vector<uint8_t> drained_;
  std::vector<int64_t> shard_primary_bytes_;
  // Straggler model and the hedge target table: hedge_follower_[s] is
  // shard s's first follower under the run's replica placement (-1 at
  // replication 1 — nothing to hedge to).
  StragglerModel straggler_;
  std::vector<int> hedge_follower_;
  // Per-machine KV bytes captured by the last checkpoint, the matching
  // clock/round positions, and the registry recovery uses to cold-start
  // a replaced machine's caches. The registry is mutable because
  // MakeStore (const) registers the caches it mints.
  std::vector<int64_t> checkpointed_bytes_;
  double last_checkpoint_time_ = 0.0;
  size_t last_checkpoint_round_ = 0;
  mutable kv::CacheDropRegistry cache_registry_;
  mutable std::mutex shard_map_mu_;
  // Bounded LRU of key assignments: same-shaped stores within (and
  // across adjacent) rounds share one map, while contraction-style
  // algorithms minting ever-smaller capacities cannot accumulate an
  // O(capacity) table per round for the cluster's lifetime.
  static constexpr size_t kMaxCachedShardMaps = 16;
  mutable std::unordered_map<int64_t, std::shared_ptr<const kv::ShardMap>>
      shard_maps_;
  mutable std::vector<int64_t> shard_map_recency_;  // back = most recent
  // The probe-then-commit tuner (null unless config.auto_tune.enabled)
  // and the placements it has moved away from.
  std::unique_ptr<AutoTuner> tuner_;
  std::vector<RetiredPlacement> retired_placements_;
};

/// Per-(machine, worker) handle passed to map-phase functions. KV lookups
/// made through the context charge the requesting machine for query
/// latency and the owning machine for the bytes its shard serves.
class MachineContext {
 public:
  MachineContext(Cluster* cluster,
                 std::vector<Cluster::PhaseCounters>* all_counters,
                 int machine_id, int worker_id, uint64_t rng_seed)
      : cluster_(cluster),
        all_counters_(all_counters),
        counters_(&(*all_counters)[machine_id]),
        machine_id_(machine_id),
        worker_id_(worker_id),
        rng_(rng_seed),
        destination_seen_(all_counters->size(), 0),
        pipeline_window_counts_(all_counters->size(), 0) {}

  MachineContext(const MachineContext&) = delete;
  MachineContext& operator=(const MachineContext&) = delete;

  // Settles any trips still deferred behind un-awaited tickets and
  // folds the worker's in-flight-keys watermark into the phase
  // counters (callers normally drain their tickets; this is the
  // backstop that keeps the cost model complete either way).
  ~MachineContext() { FlushPipelineTrips(); }

  int machine_id() const { return machine_id_; }
  int worker_id() const { return worker_id_; }

  /// True when the caching optimization is enabled for this run.
  bool caching_enabled() const {
    return cluster_->config().query_cache.enabled;
  }

  /// Sub-batch bound for batched lookups (ClusterConfig::max_batch_keys;
  /// <= 0 = unbounded). DriveLookupPipelined gathers frontier windows of
  /// at most this many keys per sub-batch.
  int64_t max_batch_keys() const { return cluster_->config().max_batch_keys; }

  /// Pipeline depth for asynchronous lookups
  /// (ClusterConfig::pipeline_depth, clamped to >= 1): how many
  /// sub-batch tickets a worker keeps in flight at once, and the
  /// divisor of the serialized-trip charge at pipeline drain.
  int pipeline_depth() const {
    return std::max(1, cluster_->config().pipeline_depth);
  }

  /// Looks up `key` through the lookup pipeline: the machine's
  /// query cache first (a hit is served locally — cache_hits, no trip,
  /// no owner bytes), then the remote shard, charging one round trip to
  /// this machine and the record's wire size to the shard-owning machine
  /// (the server pays for skew). Returns nullptr when the key is absent
  /// (callers must handle this: the store is a remote service, not
  /// library-internal state).
  template <typename V>
  const V* Lookup(const kv::ShardedStore<V>& store, uint64_t key) {
    CheckStoreMatchesCluster(store);
    counters_->kv_queries.fetch_add(1, std::memory_order_relaxed);
    kv::QueryCache<const V*>* cache =
        caching_enabled() ? store.QueryCacheFor(machine_id_) : nullptr;
    uint64_t epoch = 0;
    if (cache != nullptr) {
      // Capture the version *before* the lookup: if a concurrent write
      // phase interleaves, the inserted entry is already stale.
      epoch = store.version();
      if (const std::optional<const V*> hit = cache->Get(key, epoch)) {
        CountCacheHit();
        return *hit;
      }
    }
    const int shard = store.ShardOf(key);
    counters_->kv_lookup_trips.fetch_add(1, std::memory_order_relaxed);
    NoteTrips(shard, 1);
    // A scalar miss momentarily holds one key in flight on top of any
    // open tickets.
    peak_inflight_keys_ = std::max(peak_inflight_keys_, inflight_keys_ + 1);
    const V* value = store.Lookup(key);
    const int64_t bytes =
        value == nullptr ? kv::kKeyBytes : kv::kKeyBytes + kv::KvByteSize(*value);
    counters_->kv_read_bytes.fetch_add(bytes, std::memory_order_relaxed);
    // Served by whichever machine currently hosts the shard (the shard's
    // new owner after a drain migration).
    Cluster::PhaseCounters& server =
        (*all_counters_)[cluster_->HostOf(shard)];
    server.kv_served_bytes.fetch_add(bytes, std::memory_order_relaxed);
    if (cache != nullptr) {
      CountCacheMiss();
      cache->Put(key, epoch, value);
    }
    return value;
  }

  /// Issues one pipelined sub-batch asynchronously: resolves `keys`
  /// (one window, at most max_batch_keys of them — DriveLookupPipelined
  /// and LookupMany enforce the bound) through the cache and batch
  /// coalescing stages immediately, but leaves the sub-batch's
  /// round-trip latency *in flight* until Await settles the returned
  /// ticket. All sub-batches issued between two full drains of the
  /// worker's pipeline (outstanding tickets returning to zero — one
  /// adaptive step under the drivers) overlap: a destination contacted
  /// by w of them is charged ceil(w / pipeline_depth) serialized trips
  /// at the drain, not w. Everything else is charged at issue time
  /// exactly as the synchronous path charges it — cache hits are free,
  /// bytes go to the client and the owning shard's machine, duplicate
  /// keys within the window are fetched once — and the epoch is
  /// captured per issued window, so a write phase settling between two
  /// in-flight windows can never hand the later window a stale cached
  /// value. With batch_lookups == false the scalar client pays one
  /// full trip per miss at issue time and the pipeline overlaps
  /// nothing (pipelining is an optimization of the batched client).
  template <typename V>
  kv::LookupTicket<V> LookupManyAsync(const kv::ShardedStore<V>& store,
                                      std::span<const uint64_t> keys) {
    CheckStoreMatchesCluster(store);
    kv::LookupTicket<V> ticket;
    if (keys.empty()) return ticket;
    ticket.result.values.reserve(keys.size());
    const bool batching = cluster_->config().batch_lookups;
    kv::QueryCache<const V*>* cache =
        caching_enabled() ? store.QueryCacheFor(machine_id_) : nullptr;
    // Epoch captured per sub-batch window, not per multi-window call: in
    // the async model a write phase can settle while earlier windows are
    // still in flight, and entries this window inserts must be stamped
    // against the store as this window saw it.
    const uint64_t epoch = cache != nullptr ? store.version() : 0;
    int sub_destinations = 0;
    int64_t sub_misses = 0, hits = 0;
    for (const uint64_t key : keys) {
      if (cache != nullptr) {
        if (const std::optional<const V*> hit = cache->Get(key, epoch)) {
          ++hits;
          ticket.result.values.push_back(*hit);
          continue;
        }
      }
      const V* value = store.Lookup(key);
      const int64_t bytes = value == nullptr
                                ? kv::kKeyBytes
                                : kv::kKeyBytes + kv::KvByteSize(*value);
      const int shard = store.ShardOf(key);
      if (!destination_seen_[shard]) {
        destination_seen_[shard] = 1;
        touched_destinations_.push_back(shard);
        ++sub_destinations;
      }
      ++sub_misses;
      ticket.result.bytes += bytes;
      (*all_counters_)[cluster_->HostOf(shard)].kv_served_bytes.fetch_add(
          bytes, std::memory_order_relaxed);
      if (cache != nullptr) cache->Put(key, epoch, value);
      // The scalar (unbatched) client pays its per-miss trip to this
      // destination now, so its straggler exposure is noted per miss;
      // the batched client's trips settle at pipeline drain instead.
      if (!batching) NoteTrips(shard, 1);
      ticket.result.values.push_back(value);
    }
    // Reset only the destinations this window touched (the flags array
    // is O(machines); re-zeroing it wholesale made every forced small
    // window cost O(windows x machines)), and roll the window's
    // destinations into the in-flight overlap group.
    for (const int shard : touched_destinations_) {
      destination_seen_[shard] = 0;
      if (batching && pipeline_window_counts_[shard]++ == 0) {
        touched_pipeline_destinations_.push_back(shard);
      }
    }
    touched_destinations_.clear();
    ticket.result.destinations = sub_destinations;
    counters_->kv_queries.fetch_add(static_cast<int64_t>(keys.size()),
                                    std::memory_order_relaxed);
    if (hits != 0) {
      counters_->cache_hits.fetch_add(hits, std::memory_order_relaxed);
    }
    if (cache != nullptr && sub_misses != 0) {
      counters_->cache_misses.fetch_add(sub_misses,
                                        std::memory_order_relaxed);
    }
    counters_->kv_read_bytes.fetch_add(ticket.result.bytes,
                                       std::memory_order_relaxed);
    // With batching disabled the client model is scalar: every miss
    // pays a full trip at issue time, no wire batch is formed, and the
    // pipeline has nothing to overlap. A fully cache-served sub-batch
    // likewise forms no wire batch.
    if (!batching) {
      counters_->kv_lookup_trips.fetch_add(sub_misses,
                                           std::memory_order_relaxed);
    } else if (cache == nullptr || sub_misses > 0) {
      counters_->kv_batches.fetch_add(1, std::memory_order_relaxed);
    }
    ticket.keys_in_flight = static_cast<int64_t>(keys.size());
    ticket.settled = false;
    ++outstanding_tickets_;
    inflight_keys_ += ticket.keys_in_flight;
    peak_inflight_keys_ = std::max(peak_inflight_keys_, inflight_keys_);
    return ticket;
  }

  /// Settles a ticket issued by LookupManyAsync and returns its
  /// response, consuming it (the first Await moves the result out; a
  /// repeat Await on the same — or a moved-from — ticket charges
  /// nothing and returns an empty response). When the settle drains the
  /// worker's pipeline (no ticket left outstanding — the end of an
  /// adaptive step), the deferred round-trip latency of the drained
  /// group is charged: ceil(windows / pipeline_depth) trips per
  /// destination contacted.
  template <typename V>
  kv::LookupBatchResult<V> Await(kv::LookupTicket<V>& ticket) {
    if (!ticket.settled) {
      ticket.settled = true;
      inflight_keys_ -= ticket.keys_in_flight;
      ticket.keys_in_flight = 0;
      if (--outstanding_tickets_ == 0) FlushPipelineTrips();
    }
    return std::move(ticket.result);
  }

  /// Batched lookup: resolves every key of one adaptive step together
  /// through the four-stage pipeline — query cache, batch coalescing,
  /// pipelining, per-destination trips. Cache hits (including duplicate
  /// keys within the batch, which are fetched once and hit thereafter)
  /// are served locally: no trip, no wire bytes on either side. The
  /// misses of each sub-batch (at most max_batch_keys keys; see
  /// adaptive sub-batching) are grouped by owning machine and pay one
  /// round trip per distinct destination — not one per key — while
  /// bytes stay charged per machine exactly as scalar Lookup charges
  /// them (client NIC receives, owning shard's NIC serves, no thread
  /// overlap of either). Up to pipeline_depth sub-batches are kept in
  /// flight (LookupManyAsync tickets), so with depth > 1 a destination
  /// contacted by w windows of the call costs ceil(w / depth)
  /// serialized trips; depth = 1 reproduces lockstep charging
  /// bit-identically. With config.batch_lookups == false every missed
  /// key is charged a full trip, modeling the unbatched client (caching
  /// still applies, so the Figure-4 axes stay independent); returned
  /// values are identical under every toggle combination. values[i]
  /// answers keys[i] (nullptr = absent).
  template <typename V>
  kv::LookupBatchResult<V> LookupMany(const kv::ShardedStore<V>& store,
                                      std::span<const uint64_t> keys) {
    kv::LookupBatchResult<V> result;
    if (keys.empty()) return result;
    result.values.reserve(keys.size());
    const int64_t max_keys = cluster_->config().max_batch_keys;
    const size_t window =
        max_keys > 0 ? static_cast<size_t>(max_keys) : keys.size();
    const size_t depth = static_cast<size_t>(pipeline_depth());
    std::deque<kv::LookupTicket<V>> inflight;
    const auto settle_oldest = [&] {
      kv::LookupBatchResult<V> part = Await(inflight.front());
      inflight.pop_front();
      result.values.insert(result.values.end(), part.values.begin(),
                           part.values.end());
      result.bytes += part.bytes;
      result.destinations += part.destinations;
    };
    for (size_t begin = 0; begin < keys.size(); begin += window) {
      if (inflight.size() == depth) settle_oldest();
      const size_t count = std::min(window, keys.size() - begin);
      inflight.push_back(LookupManyAsync(store, keys.subspan(begin, count)));
    }
    while (!inflight.empty()) settle_oldest();
    return result;
  }

  /// Request-object overload of LookupMany.
  template <typename V>
  kv::LookupBatchResult<V> LookupMany(const kv::ShardedStore<V>& store,
                                      const kv::LookupBatch& batch) {
    return LookupMany(store, std::span<const uint64_t>(batch.keys));
  }

  /// Dense-frontier pull resolution (the frontier engine's pull mode,
  /// common/frontier.h — only meaningful inside Cluster::RunPullPhase).
  /// Resolves keys[i] against the store as a *local shard sweep*: the
  /// records were shipped to this machine by the pull step's bitmap
  /// broadcast + aggregate exchange, not by per-destination round
  /// trips, so **no kv_lookup_trips are charged** — the per-step
  /// exchange latency is charged once by the phase settle, not per
  /// key. Bytes are charged exactly like a lookup's (client NIC
  /// receives, owning shard's NIC serves), once per distinct key per
  /// pull step: the exchange ships one copy of each needed record to
  /// each machine, so duplicates within a step are free. Returned
  /// values are identical to LookupMany's (values[i] answers keys[i],
  /// nullptr = absent).
  template <typename V>
  kv::LookupBatchResult<V> PullMany(const kv::ShardedStore<V>& store,
                                    std::span<const uint64_t> keys) {
    CheckStoreMatchesCluster(store);
    kv::LookupBatchResult<V> result;
    if (keys.empty()) return result;
    result.values.reserve(keys.size());
    for (const uint64_t key : keys) {
      const V* value = store.Lookup(key);
      result.values.push_back(value);
      if (!pull_seen_.insert(key).second) continue;  // already exchanged
      const int64_t bytes = value == nullptr
                                ? kv::kKeyBytes
                                : kv::kKeyBytes + kv::KvByteSize(*value);
      result.bytes += bytes;
      (*all_counters_)[cluster_->HostOf(store.ShardOf(key))]
          .kv_served_bytes.fetch_add(bytes, std::memory_order_relaxed);
    }
    counters_->kv_queries.fetch_add(static_cast<int64_t>(keys.size()),
                                    std::memory_order_relaxed);
    counters_->kv_read_bytes.fetch_add(result.bytes,
                                       std::memory_order_relaxed);
    counters_->pull_bytes.fetch_add(result.bytes, std::memory_order_relaxed);
    return result;
  }

  /// Opens the next pull step — one broadcast of the frontier bitmap
  /// to every machine. Bumps this worker's step count (the settle
  /// charges the *maximum* over workers: machines advance through the
  /// global steps together, each paying one broadcast slice and one
  /// exchange per step) and resets the per-step exchange dedup.
  void BeginPullStep() {
    ++pull_steps_;
    pull_seen_.clear();
  }

  /// Reads the machine-local input record for `key` without charging KV
  /// costs. In the dataflow model the ParDo input element (e.g. the
  /// vertex's own adjacency) arrives with the work item; only lookups of
  /// *other* records are remote.
  template <typename V>
  const V* LookupLocal(const kv::ShardedStore<V>& store, uint64_t key) {
    return store.Lookup(key);
  }

  /// Cache accounting. The read-through paths (Lookup/LookupMany) count
  /// their own hits and misses; algorithms caching *derived* facts in
  /// MakeMachineCaches() instances count theirs through these, so every
  /// cache probe at every layer flows into the same two metrics
  /// (Section 5.3).
  void CountCacheHit() {
    counters_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  }
  void CountCacheMiss() {
    counters_->cache_misses.fetch_add(1, std::memory_order_relaxed);
  }

  /// Per-worker deterministic RNG (seeded from cluster seed, phase,
  /// machine and worker ids). Must not influence algorithm outputs that
  /// are compared across runtimes.
  Rng& rng() { return rng_; }

 private:
  template <typename V>
  void CheckStoreMatchesCluster(const kv::ShardedStore<V>& store) const {
    AMPC_CHECK_EQ(static_cast<size_t>(store.num_shards()),
                  all_counters_->size())
        << "store sharding disagrees with the cluster (use MakeStore)";
    // Current placement, or one the tuner retired mid-run (stores
    // outlive hot-swaps; see Cluster::AcceptsStorePlacement).
    AMPC_CHECK(cluster_->AcceptsStorePlacement(store.placement(),
                                               store.capacity()))
        << "store placement disagrees with the cluster (use MakeStore)";
  }

  // Straggler/hedging bookkeeping for `trips` round trips bound for
  // shard `shard` (sim/faults.h StragglerModel): if the shard's hosting
  // machine is slow this round the trips are noted as slow; with
  // hedging on, each is re-issued to the shard's replica host after the
  // one-latency timeout and counts as hedged, winning when the replica
  // is not itself slow. Pure counter bumps — the settle converts them
  // to extra latency once, so the charge stays bit-deterministic across
  // thread schedules. No-op (one predictable branch) at rate 0.
  void NoteTrips(int shard, int64_t trips) {
    if (!cluster_->stragglers_enabled() || trips == 0) return;
    const int host = cluster_->HostOf(shard);
    if (!cluster_->DestinationSlow(host)) return;
    counters_->kv_slow_trips.fetch_add(trips, std::memory_order_relaxed);
    if (!cluster_->hedging_enabled()) return;
    const int hedge = cluster_->HedgeHostOf(shard);
    if (hedge < 0 || hedge == host) return;
    counters_->kv_hedged_trips.fetch_add(trips, std::memory_order_relaxed);
    if (!cluster_->DestinationSlow(hedge)) {
      counters_->kv_hedge_wins.fetch_add(trips, std::memory_order_relaxed);
    }
  }

  static void AtomicMaxRelaxed(std::atomic<int64_t>& target, int64_t value) {
    int64_t seen = target.load(std::memory_order_relaxed);
    while (value > seen &&
           !target.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
  }

  // Charges the deferred round-trip latency of the drained overlap
  // group — every sub-batch issued since the last drain: a destination
  // contacted by w of those windows costs ceil(w / pipeline_depth)
  // serialized trips (depth = 1 degenerates to one trip per window per
  // destination, the lockstep charge). Also folds the worker's
  // in-flight-keys watermark into the machine's phase counters.
  void FlushPipelineTrips() {
    const int64_t depth = static_cast<int64_t>(pipeline_depth());
    int64_t trips = 0;
    for (const int shard : touched_pipeline_destinations_) {
      const int64_t windows = pipeline_window_counts_[shard];
      pipeline_window_counts_[shard] = 0;
      const int64_t shard_trips = (windows + depth - 1) / depth;
      trips += shard_trips;
      NoteTrips(shard, shard_trips);
    }
    touched_pipeline_destinations_.clear();
    if (trips != 0) {
      counters_->kv_lookup_trips.fetch_add(trips, std::memory_order_relaxed);
    }
    if (peak_inflight_keys_ != 0) {
      AtomicMaxRelaxed(counters_->peak_inflight_keys, peak_inflight_keys_);
    }
    if (pull_steps_ != 0) {
      AtomicMaxRelaxed(counters_->pull_steps, pull_steps_);
    }
  }

  Cluster* cluster_;
  std::vector<Cluster::PhaseCounters>* all_counters_;
  Cluster::PhaseCounters* counters_;
  int machine_id_;
  int worker_id_;
  Rng rng_;
  // Scratch distinct-destination flags for the sub-batch being issued,
  // with the list of flags actually set — resetting only those keeps a
  // window O(keys + touched), not O(machines). Contexts are per worker,
  // so no synchronization is needed on any of the state below.
  std::vector<uint8_t> destination_seen_;
  std::vector<int> touched_destinations_;
  // The in-flight overlap group: how many outstanding-or-settled
  // windows contacted each destination since the pipeline last drained,
  // plus the list of destinations with a nonzero count.
  std::vector<int64_t> pipeline_window_counts_;
  std::vector<int> touched_pipeline_destinations_;
  int64_t outstanding_tickets_ = 0;
  int64_t inflight_keys_ = 0;
  int64_t peak_inflight_keys_ = 0;
  // Pull-mode state (RunPullPhase): keys already exchanged this pull
  // step (duplicates are free within a step) and how many steps this
  // worker has advanced through.
  std::unordered_set<uint64_t> pull_seen_;
  int64_t pull_steps_ = 0;
};

namespace internal {

/// Shared scaffold of the lockstep and pipelined drivers: each adaptive
/// step gathers the pending key of every unfinished state into bounded
/// frontier windows (at most ClusterConfig::max_batch_keys keys each),
/// keeps up to `depth` windows in flight as LookupManyAsync tickets,
/// and feeds each settled window's records back through `resume`.
template <typename V, typename State, typename DoneFn, typename KeyFn,
          typename ResumeFn>
void DriveLookupWindows(MachineContext& ctx,
                        const kv::ShardedStore<V>& store,
                        std::vector<State>& states, DoneFn&& done,
                        KeyFn&& pending_key, ResumeFn&& resume,
                        size_t depth) {
  std::vector<size_t> active;
  active.reserve(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    if (!done(states[i])) active.push_back(i);
  }
  const int64_t max_keys = ctx.max_batch_keys();
  const size_t window = max_keys > 0 ? static_cast<size_t>(max_keys)
                                     : std::max<size_t>(1, active.size());
  depth = std::max<size_t>(1, depth);
  // One in-flight frontier window: the sub-batch ticket plus the slice
  // of `active` it answers. Windows settle in issue (FIFO) order, so
  // the compaction cursor `out` below never overtakes an unsettled
  // window's slice.
  struct InflightWindow {
    kv::LookupTicket<V> ticket;
    size_t begin;
    size_t end;
  };
  std::deque<InflightWindow> inflight;
  std::vector<uint64_t> keys;
  keys.reserve(std::min(window, active.size()));
  while (!active.empty()) {
    size_t out = 0;
    const auto settle_oldest = [&] {
      InflightWindow w = std::move(inflight.front());
      inflight.pop_front();
      const kv::LookupBatchResult<V> batch = ctx.Await(w.ticket);
      for (size_t j = w.begin; j < w.end; ++j) {
        State& state = states[active[j]];
        resume(state, batch.values[j - w.begin]);
        if (!done(state)) active[out++] = active[j];
      }
    };
    for (size_t begin = 0; begin < active.size(); begin += window) {
      const size_t end = std::min(active.size(), begin + window);
      if (inflight.size() == depth) settle_oldest();
      keys.clear();
      for (size_t j = begin; j < end; ++j) {
        keys.push_back(pending_key(states[active[j]]));
      }
      inflight.push_back(InflightWindow{
          ctx.LookupManyAsync(store, std::span<const uint64_t>(keys)),
          begin, end});
    }
    // Drain the step: the pending keys of the next step depend on every
    // resume of this one, and the drain is what closes the overlap
    // group the cost model charges.
    while (!inflight.empty()) settle_oldest();
    active.resize(out);
  }
}

}  // namespace internal

/// Drives a worker's batched state machines with bounded-depth
/// pipelining — the shared scaffold of every RunBatchMapPhase
/// algorithm, and the third Section 5.3 client optimization. Each
/// adaptive step gathers the pending key of every unfinished state into
/// frontier windows of at most ClusterConfig::max_batch_keys keys and
/// keeps up to ClusterConfig::pipeline_depth windows in flight at once
/// (LookupManyAsync tickets, settled FIFO): the in-flight windows'
/// round-trip latencies overlap, so a destination contacted by w of a
/// step's windows costs ceil(w / depth) serialized trips instead of w,
/// while a worker holds at most depth x max_batch_keys keys in flight.
/// depth = 1 is strict lockstep (DriveLookupLockstep), the
/// bit-identical ablation baseline. Callers initialize their states
/// (running them up to their first pending lookup) and harvest results
/// afterwards; `done(state)` says whether a state needs no more
/// lookups, `pending_key(state)` names the key it is waiting on, and
/// `resume(state, value)` consumes the fetched record and advances the
/// state to its next pending lookup or to completion. Values are
/// identical at every depth: windows are resolved and resumed in the
/// same order regardless of how many are in flight.
template <typename V, typename State, typename DoneFn, typename KeyFn,
          typename ResumeFn>
void DriveLookupPipelined(MachineContext& ctx,
                          const kv::ShardedStore<V>& store,
                          std::vector<State>& states, DoneFn&& done,
                          KeyFn&& pending_key, ResumeFn&& resume) {
  internal::DriveLookupWindows(
      ctx, store, states, std::forward<DoneFn>(done),
      std::forward<KeyFn>(pending_key), std::forward<ResumeFn>(resume),
      static_cast<size_t>(ctx.pipeline_depth()));
}

/// The depth-1 specialization of DriveLookupPipelined: strict lockstep
/// (each frontier window settles before the next is issued) regardless
/// of ClusterConfig::pipeline_depth — the historical driver, kept as
/// the explicit ablation baseline.
template <typename V, typename State, typename DoneFn, typename KeyFn,
          typename ResumeFn>
void DriveLookupLockstep(MachineContext& ctx,
                         const kv::ShardedStore<V>& store,
                         std::vector<State>& states, DoneFn&& done,
                         KeyFn&& pending_key, ResumeFn&& resume) {
  internal::DriveLookupWindows(
      ctx, store, states, std::forward<DoneFn>(done),
      std::forward<KeyFn>(pending_key), std::forward<ResumeFn>(resume),
      /*depth=*/1);
}

/// Pull-mode counterpart of DriveLookupPipelined for dense frontiers
/// (the frontier engine, common/frontier.h — use only inside
/// Cluster::RunPullPhase). Each adaptive step opens one pull step
/// (MachineContext::BeginPullStep — one frontier-bitmap broadcast),
/// resolves every unfinished state's pending key as a local sweep
/// against the exchanged records (MachineContext::PullMany — bytes,
/// no round trips), and resumes states in exactly the order the
/// sparse drivers resume them, so outputs are identical to
/// DriveLookupPipelined's under the same states/callbacks.
template <typename V, typename State, typename DoneFn, typename KeyFn,
          typename ResumeFn>
void DrivePullSteps(MachineContext& ctx, const kv::ShardedStore<V>& store,
                    std::vector<State>& states, DoneFn&& done,
                    KeyFn&& pending_key, ResumeFn&& resume) {
  std::vector<size_t> active;
  active.reserve(states.size());
  for (size_t i = 0; i < states.size(); ++i) {
    if (!done(states[i])) active.push_back(i);
  }
  std::vector<uint64_t> keys;
  while (!active.empty()) {
    ctx.BeginPullStep();
    keys.clear();
    keys.reserve(active.size());
    for (const size_t i : active) keys.push_back(pending_key(states[i]));
    const kv::LookupBatchResult<V> batch =
        ctx.PullMany(store, std::span<const uint64_t>(keys));
    size_t out = 0;
    for (size_t j = 0; j < active.size(); ++j) {
      State& state = states[active[j]];
      resume(state, batch.values[j]);
      if (!done(state)) active[out++] = active[j];
    }
    active.resize(out);
  }
}

template <typename V, typename Producer>
void Cluster::RunKvWritePhase(const std::string& phase,
                              kv::ShardedStore<V>& store, int64_t n,
                              Producer producer) {
  AMPC_CHECK_EQ(store.num_shards(), config_.num_machines)
      << "store must be sharded per machine (create it with MakeStore)";
  const TuneScope tune_scope = AutoTuneBeginRound();
  WallTimer timer;
  // Stores are write-once but may take several write phases (one per key
  // range), so charge the per-shard *delta* of this phase.
  std::vector<int64_t> bytes_before = store.ShardBytesSnapshot();
  std::vector<int64_t> writes_before(config_.num_machines);
  for (int m = 0; m < config_.num_machines; ++m) {
    writes_before[m] = store.ShardSize(m);
  }
  ParallelForChunked(*pool_, 0, n, 1024, [&](int64_t lo, int64_t hi) {
    for (int64_t key = lo; key < hi; ++key) {
      store.Put(static_cast<uint64_t>(key), producer(key));
    }
  });
  const double wall = timer.Seconds();
  std::vector<int64_t> bytes(config_.num_machines);
  std::vector<int64_t> writes(config_.num_machines);
  for (int m = 0; m < config_.num_machines; ++m) {
    bytes[m] = store.ShardBytes(m) - bytes_before[m];
    writes[m] = store.ShardSize(m) - writes_before[m];
  }
  SettleKvWritePhase(phase, writes, bytes, wall);
  AutoTuneEndRound(tune_scope, /*key_space=*/n, /*items=*/n);
}

}  // namespace ampc::sim
