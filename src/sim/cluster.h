// The AMPC cluster simulator.
//
// Executes an AMPC (or MPC) computation's phases on a pool of logical
// machines backed by real threads, while charging a simulated distributed
// cost model. Two clocks are kept per phase:
//
//   wall:<phase>  real seconds spent on this multicore host, and
//   sim:<phase>   modeled seconds in the paper's environment: per-machine
//                 KV latency/throughput (kv::NetworkModel), an aggregate
//                 network ceiling (paper Section 5.7), durable-storage
//                 shuffle throughput, and fixed per-round spawn overhead.
//
// Round accounting matches the paper's conventions: a *shuffle* is a
// costly round (Table 3 counts these); KV writes and map rounds are cheap
// rounds. The multithreading and caching toggles correspond to the
// optimizations ablated in Figure 4.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "kv/network_model.h"
#include "kv/store.h"

namespace ampc::sim {

/// Cluster-wide configuration. Defaults model the paper's setting scaled
/// to a single multicore host.
struct ClusterConfig {
  /// Number of logical machines (paper: up to 100).
  int num_machines = 8;
  /// Worker threads per machine used to overlap synchronous KV lookups
  /// (the multithreading optimization of Section 5.3).
  int threads_per_machine = 8;
  /// Disables the multithreading optimization when false (Figure 4).
  bool multithreading = true;
  /// Enables per-machine query-result caching. The runtime exposes this
  /// flag; algorithms consult it (Figure 4).
  bool caching = true;
  /// KV-store network cost model (RDMA vs TCP/IP, Table 4).
  kv::NetworkModel network = kv::NetworkModel::Rdma();
  /// Fixed simulated cost of spawning any round (stage scheduling,
  /// worker startup). Dominates when the graph is small or P is large.
  /// Calibrated so that fixed-vs-data cost ratios at this library's
  /// benchmark scale (1e5..1e7 arcs) match the paper's at its scale
  /// (1e8..1e11 arcs).
  double round_spawn_sec = 0.05;
  /// Per-machine throughput of shuffle writes to durable storage.
  double shuffle_bytes_per_sec = 2.0e7;
  /// Simulated floor per shuffle (fault-tolerant checkpointing).
  double shuffle_min_sec = 0.02;
  /// Simulated CPU cost per item touched in a map phase.
  double map_item_cpu_sec = 2e-8;
  /// Seed from which all algorithmic randomness is derived.
  uint64_t seed = 42;
  /// Baselines switch to a single-machine in-memory algorithm below this
  /// many arcs (paper: 5e7; default scaled to our dataset sizes).
  int64_t in_memory_threshold_arcs = 2'000'000;
};

class MachineContext;

/// A simulated AMPC cluster: phase executor + metric accountant.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  const ClusterConfig& config() const { return config_; }
  Metrics& metrics() { return metrics_; }
  ThreadPool& pool() { return *pool_; }

  /// The machine that owns key/item `key` (stable hash partition).
  int MachineOf(uint64_t key) const {
    return static_cast<int>(Hash64(key, config_.seed ^ 0x6d61636821ULL) %
                            static_cast<uint64_t>(config_.num_machines));
  }

  /// Records a shuffle that moved `bytes` through durable storage.
  /// Counts one costly round. `wall_seconds` is the real time the caller
  /// spent materializing the shuffle (already measured by the caller).
  void AccountShuffle(const std::string& phase, int64_t bytes,
                      double wall_seconds = 0.0);

  /// Records a cheap (map-only) round that is not a shuffle.
  void AccountMapRound(const std::string& phase);

  /// Records work done by the single-machine in-memory fallback: one
  /// gather shuffle of `bytes` plus `items` sequential item costs.
  void AccountInMemoryFinish(const std::string& phase, int64_t bytes,
                             int64_t items);

  /// Records a single-machine in-memory computation whose input was
  /// already materialized on one machine by a previous shuffle (no
  /// additional gather is charged).
  void AccountInMemoryCompute(const std::string& phase, int64_t items);

  /// Runs `fn(item, ctx)` for every item in [0, n), with items hash-
  /// partitioned onto machines and each machine's share processed by
  /// `threads_per_machine` workers. Charges KV costs accumulated through
  /// the MachineContext plus per-item CPU cost. Counts one cheap round.
  void RunMapPhase(const std::string& phase, int64_t n,
                   const std::function<void(int64_t, MachineContext&)>& fn);

  /// Writes records for keys [0, n) into `store` using value = producer(key)
  /// and charges distributed write costs. Producers run concurrently.
  /// Counts one cheap round.
  template <typename V, typename Producer>
  void RunKvWritePhase(const std::string& phase, kv::Store<V>& store,
                       int64_t n, Producer producer);

  /// Total simulated seconds accumulated so far.
  double SimSeconds() const { return metrics_.GetTime("sim_total"); }
  double WallSeconds() const { return metrics_.GetTime("wall_total"); }

  /// Simulated duration of every round charged so far, in order. One
  /// entry per "rounds" metric increment; in-memory compute time extends
  /// the round that gathered its input. Consumed by sim/faults.h to
  /// model per-round preemption behaviour.
  const std::vector<double>& round_log() const { return round_log_; }

 private:
  friend class MachineContext;

  struct PhaseCounters {
    std::atomic<int64_t> kv_queries{0};
    std::atomic<int64_t> kv_read_bytes{0};
    std::atomic<int64_t> items{0};
    std::atomic<int64_t> cache_hits{0};
    std::atomic<int64_t> cache_misses{0};
  };

  // Converts per-machine phase counters into simulated round time and
  // folds everything into metrics.
  void SettleMapPhase(const std::string& phase,
                      std::vector<PhaseCounters>& per_machine,
                      double wall_seconds);

  // Appends a round of simulated duration `sim` to the log.
  void RecordRound(double sim) { round_log_.push_back(sim); }
  // Extends the most recent round (in-memory compute riding a gather).
  void ExtendLastRound(double sim) {
    if (!round_log_.empty()) round_log_.back() += sim;
  }

  ClusterConfig config_;
  Metrics metrics_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<double> round_log_;
};

/// Per-(machine, worker) handle passed to map-phase functions. KV lookups
/// made through the context are charged to the owning machine.
class MachineContext {
 public:
  MachineContext(Cluster* cluster, Cluster::PhaseCounters* counters,
                 int machine_id, int worker_id, uint64_t rng_seed)
      : cluster_(cluster),
        counters_(counters),
        machine_id_(machine_id),
        worker_id_(worker_id),
        rng_(rng_seed) {}

  int machine_id() const { return machine_id_; }
  int worker_id() const { return worker_id_; }

  /// True when the caching optimization is enabled for this run.
  bool caching_enabled() const { return cluster_->config().caching; }

  /// Looks up `key`, charging one query and the record's wire size.
  /// Returns nullptr when the key is absent (callers must handle this:
  /// the store is a remote service, not library-internal state).
  template <typename V>
  const V* Lookup(const kv::Store<V>& store, uint64_t key) {
    counters_->kv_queries.fetch_add(1, std::memory_order_relaxed);
    const V* value = store.Lookup(key);
    const int64_t bytes =
        value == nullptr ? kv::kKeyBytes : kv::kKeyBytes + kv::KvByteSize(*value);
    counters_->kv_read_bytes.fetch_add(bytes, std::memory_order_relaxed);
    return value;
  }

  /// Reads the machine-local input record for `key` without charging KV
  /// costs. In the dataflow model the ParDo input element (e.g. the
  /// vertex's own adjacency) arrives with the work item; only lookups of
  /// *other* records are remote.
  template <typename V>
  const V* LookupLocal(const kv::Store<V>& store, uint64_t key) {
    return store.Lookup(key);
  }

  /// Cache accounting (algorithms own the cache arrays; see Section 5.3).
  void CountCacheHit() {
    counters_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  }
  void CountCacheMiss() {
    counters_->cache_misses.fetch_add(1, std::memory_order_relaxed);
  }

  /// Per-worker deterministic RNG (seeded from cluster seed, phase,
  /// machine and worker ids). Must not influence algorithm outputs that
  /// are compared across runtimes.
  Rng& rng() { return rng_; }

 private:
  Cluster* cluster_;
  Cluster::PhaseCounters* counters_;
  int machine_id_;
  int worker_id_;
  Rng rng_;
};

template <typename V, typename Producer>
void Cluster::RunKvWritePhase(const std::string& phase, kv::Store<V>& store,
                              int64_t n, Producer producer) {
  WallTimer timer;
  std::atomic<int64_t> total_bytes{0};
  ParallelForChunked(*pool_, 0, n, 1024, [&](int64_t lo, int64_t hi) {
    int64_t bytes = 0;
    for (int64_t key = lo; key < hi; ++key) {
      bytes += store.Put(static_cast<uint64_t>(key), producer(key));
    }
    total_bytes.fetch_add(bytes, std::memory_order_relaxed);
  });
  const double wall = timer.Seconds();
  const int64_t bytes = total_bytes.load();

  metrics_.Add("rounds", 1);
  metrics_.Add("kv_writes", n);
  metrics_.Add("kv_write_bytes", bytes);

  // Writes stream from all machines concurrently.
  const double per_machine_bytes =
      static_cast<double>(bytes) / config_.num_machines;
  const double per_machine_writes =
      static_cast<double>(n) / config_.num_machines;
  const int overlap = config_.multithreading ? config_.threads_per_machine : 1;
  double machine_time = (per_machine_writes * config_.network.write_latency_sec +
                         per_machine_bytes / config_.network.bytes_per_sec) /
                        overlap;
  machine_time = std::max(
      machine_time,
      static_cast<double>(bytes) / config_.network.aggregate_bytes_per_sec);
  const double sim = machine_time + config_.round_spawn_sec;
  RecordRound(sim);
  metrics_.AddTime("sim:" + phase, sim);
  metrics_.AddTime("sim_total", sim);
  metrics_.AddTime("wall:" + phase, wall);
  metrics_.AddTime("wall_total", wall);
}

}  // namespace ampc::sim
