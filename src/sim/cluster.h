// The AMPC cluster simulator.
//
// Executes an AMPC (or MPC) computation's phases on a pool of logical
// machines backed by real threads, while charging a simulated distributed
// cost model. Two clocks are kept per phase:
//
//   wall:<phase>  real seconds spent on this multicore host, and
//   sim:<phase>   modeled seconds in the paper's environment: per-machine
//                 KV latency/throughput (kv::NetworkModel), an aggregate
//                 network ceiling (paper Section 5.7), durable-storage
//                 shuffle throughput, and fixed per-round spawn overhead.
//
// Cost accounting is per machine and skew-aware: the DHT
// (kv::ShardedStore) is hash-partitioned across machines with the same
// placement function the simulator uses for work items, and every KV
// write or lookup is charged to the machine whose shard actually serves
// it. A round's simulated duration is the *slowest machine's* time (plus
// the aggregate network ceiling), so hot keys and byte skew surface as
// stragglers in sim: times instead of vanishing into a total/P average.
//
// Round accounting matches the paper's conventions: a *shuffle* is a
// costly round (Table 3 counts these); KV writes and map rounds are cheap
// rounds. The multithreading and caching toggles correspond to the
// optimizations ablated in Figure 4.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "kv/network_model.h"
#include "kv/sharded_store.h"

namespace ampc::sim {

/// Cluster-wide configuration. Defaults model the paper's setting scaled
/// to a single multicore host.
struct ClusterConfig {
  /// Number of logical machines (paper: up to 100).
  int num_machines = 8;
  /// Worker threads per machine used to overlap synchronous KV lookups
  /// (the multithreading optimization of Section 5.3).
  int threads_per_machine = 8;
  /// Disables the multithreading optimization when false (Figure 4).
  bool multithreading = true;
  /// Enables per-machine query-result caching. The runtime exposes this
  /// flag; algorithms consult it (Figure 4).
  bool caching = true;
  /// KV-store network cost model (RDMA vs TCP/IP, Table 4).
  kv::NetworkModel network = kv::NetworkModel::Rdma();
  /// Fixed simulated cost of spawning any round (stage scheduling,
  /// worker startup). Dominates when the graph is small or P is large.
  /// Calibrated so that fixed-vs-data cost ratios at this library's
  /// benchmark scale (1e5..1e7 arcs) match the paper's at its scale
  /// (1e8..1e11 arcs).
  double round_spawn_sec = 0.05;
  /// Per-machine throughput of shuffle writes to durable storage.
  double shuffle_bytes_per_sec = 2.0e7;
  /// Simulated floor per shuffle (fault-tolerant checkpointing).
  double shuffle_min_sec = 0.02;
  /// Simulated CPU cost per item touched in a map phase.
  double map_item_cpu_sec = 2e-8;
  /// Seed from which all algorithmic randomness is derived.
  uint64_t seed = 42;
  /// Baselines switch to a single-machine in-memory algorithm below this
  /// many arcs (paper: 5e7; default scaled to our dataset sizes).
  int64_t in_memory_threshold_arcs = 2'000'000;
};

class MachineContext;

/// A simulated AMPC cluster: phase executor + metric accountant.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  const ClusterConfig& config() const { return config_; }
  Metrics& metrics() { return metrics_; }
  ThreadPool& pool() { return *pool_; }

  /// The machine that owns key/item `key`. Delegates to the DHT's
  /// placement hash, so the machine running item v is the machine whose
  /// shard holds record v of any store made by MakeStore.
  int MachineOf(uint64_t key) const {
    return kv::ShardForKey(key, config_.seed, config_.num_machines);
  }

  /// Creates a DHT store for keys [0, capacity) sharded across this
  /// cluster's machines (shard s = machine s). The key assignment is a
  /// pure function of (capacity, machines, seed), so it is computed once
  /// per capacity and shared across the run's stores (algorithms mint a
  /// fresh same-shaped store every round).
  template <typename V>
  kv::ShardedStore<V> MakeStore(int64_t capacity) const {
    return kv::ShardedStore<V>(ShardMapFor(capacity));
  }

  /// Records a shuffle that moved `bytes` through durable storage,
  /// spread evenly over the machines. Counts one costly round.
  /// `wall_seconds` is the real time the caller spent materializing the
  /// shuffle (already measured by the caller).
  void AccountShuffle(const std::string& phase, int64_t bytes,
                      double wall_seconds = 0.0);

  /// Records a shuffle whose bytes land unevenly: per_machine_bytes[m] is
  /// the traffic machine m writes/receives. The round lasts as long as
  /// the hottest machine needs (skewed key distributions cost more than
  /// uniform ones of the same total). Counts one costly round.
  void AccountShardedShuffle(const std::string& phase,
                             const std::vector<int64_t>& per_machine_bytes,
                             double wall_seconds = 0.0);

  /// Records a cheap (map-only) round that is not a shuffle.
  void AccountMapRound(const std::string& phase);

  /// Records work done by the single-machine in-memory fallback: one
  /// gather shuffle of `bytes` plus `items` sequential item costs.
  void AccountInMemoryFinish(const std::string& phase, int64_t bytes,
                             int64_t items);

  /// Records a single-machine in-memory computation whose input was
  /// already materialized on one machine by a previous shuffle (no
  /// additional gather is charged).
  void AccountInMemoryCompute(const std::string& phase, int64_t items);

  /// Runs `fn(item, ctx)` for every item in [0, n), with items hash-
  /// partitioned onto machines and each machine's share processed by
  /// `threads_per_machine` workers. Charges KV costs accumulated through
  /// the MachineContext plus per-item CPU cost; lookup traffic is charged
  /// to the machine whose shard serves it. Counts one cheap round.
  void RunMapPhase(const std::string& phase, int64_t n,
                   const std::function<void(int64_t, MachineContext&)>& fn);

  /// Writes records for keys [0, n) into `store` using value = producer(key)
  /// and charges each machine for the writes landing on its shard (the
  /// round lasts as long as the hottest shard needs). Producers run
  /// concurrently. Counts one cheap round.
  template <typename V, typename Producer>
  void RunKvWritePhase(const std::string& phase, kv::ShardedStore<V>& store,
                       int64_t n, Producer producer);

  /// Total simulated seconds accumulated so far.
  double SimSeconds() const { return metrics_.GetTime("sim_total"); }
  double WallSeconds() const { return metrics_.GetTime("wall_total"); }

  /// Simulated duration of every round charged so far, in order. One
  /// entry per "rounds" metric increment; in-memory compute time extends
  /// the round that gathered its input. Consumed by sim/faults.h to
  /// model per-round preemption behaviour.
  const std::vector<double>& round_log() const { return round_log_; }

  /// Cumulative KV wire bytes written to each machine's shards across
  /// every RunKvWritePhase so far. A per-machine memory-pressure signal:
  /// feed it to sim::MemoryPressureRates (sim/faults.h) to make machines
  /// holding hot shards preemption-prone, or inspect a single store's
  /// footprint directly via kv::ShardedStore::ShardBytesSnapshot.
  const std::vector<int64_t>& machine_kv_write_bytes() const {
    return machine_kv_write_bytes_;
  }

 private:
  friend class MachineContext;

  struct PhaseCounters {
    // Charged to the machine *running* the item (client side): query
    // latency, received record bytes, per-item CPU.
    std::atomic<int64_t> kv_queries{0};
    std::atomic<int64_t> kv_read_bytes{0};
    std::atomic<int64_t> items{0};
    std::atomic<int64_t> cache_hits{0};
    std::atomic<int64_t> cache_misses{0};
    // Charged to the machine whose shard *serves* the lookup (server
    // side): its NIC ships the record regardless of who asked.
    std::atomic<int64_t> kv_served_bytes{0};
  };

  // Converts per-machine phase counters into simulated round time (the
  // slowest machine's client + server + CPU time, floored by the
  // aggregate network ceiling) and folds everything into metrics.
  void SettleMapPhase(const std::string& phase,
                      std::vector<PhaseCounters>& per_machine,
                      double wall_seconds);

  // Same for a KV write phase, from per-machine write/byte deltas.
  void SettleKvWritePhase(const std::string& phase,
                          const std::vector<int64_t>& writes,
                          const std::vector<int64_t>& bytes,
                          double wall_seconds);

  // Appends a round of simulated duration `sim` to the log.
  void RecordRound(double sim) { round_log_.push_back(sim); }
  // Extends the most recent round (in-memory compute riding a gather).
  void ExtendLastRound(double sim) {
    if (!round_log_.empty()) round_log_.back() += sim;
  }

  // The cached key assignment for stores of `capacity` (see MakeStore).
  std::shared_ptr<const kv::ShardMap> ShardMapFor(int64_t capacity) const;

  ClusterConfig config_;
  Metrics metrics_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<double> round_log_;
  std::vector<int64_t> machine_kv_write_bytes_;
  mutable std::mutex shard_map_mu_;
  mutable std::unordered_map<int64_t, std::shared_ptr<const kv::ShardMap>>
      shard_maps_;
};

/// Per-(machine, worker) handle passed to map-phase functions. KV lookups
/// made through the context charge the requesting machine for query
/// latency and the owning machine for the bytes its shard serves.
class MachineContext {
 public:
  MachineContext(Cluster* cluster,
                 std::vector<Cluster::PhaseCounters>* all_counters,
                 int machine_id, int worker_id, uint64_t rng_seed)
      : cluster_(cluster),
        all_counters_(all_counters),
        counters_(&(*all_counters)[machine_id]),
        machine_id_(machine_id),
        worker_id_(worker_id),
        rng_(rng_seed) {}

  int machine_id() const { return machine_id_; }
  int worker_id() const { return worker_id_; }

  /// True when the caching optimization is enabled for this run.
  bool caching_enabled() const { return cluster_->config().caching; }

  /// Looks up `key`, charging one query to this machine and the record's
  /// wire size to the shard-owning machine (the server pays for skew).
  /// Returns nullptr when the key is absent (callers must handle this:
  /// the store is a remote service, not library-internal state).
  template <typename V>
  const V* Lookup(const kv::ShardedStore<V>& store, uint64_t key) {
    AMPC_CHECK_EQ(static_cast<size_t>(store.num_shards()),
                  all_counters_->size())
        << "store sharding disagrees with the cluster (use MakeStore)";
    AMPC_CHECK_EQ(store.seed(), cluster_->config().seed)
        << "store placement seed disagrees with the cluster (use MakeStore)";
    counters_->kv_queries.fetch_add(1, std::memory_order_relaxed);
    const V* value = store.Lookup(key);
    const int64_t bytes =
        value == nullptr ? kv::kKeyBytes : kv::kKeyBytes + kv::KvByteSize(*value);
    counters_->kv_read_bytes.fetch_add(bytes, std::memory_order_relaxed);
    Cluster::PhaseCounters& server = (*all_counters_)[store.ShardOf(key)];
    server.kv_served_bytes.fetch_add(bytes, std::memory_order_relaxed);
    return value;
  }

  /// Reads the machine-local input record for `key` without charging KV
  /// costs. In the dataflow model the ParDo input element (e.g. the
  /// vertex's own adjacency) arrives with the work item; only lookups of
  /// *other* records are remote.
  template <typename V>
  const V* LookupLocal(const kv::ShardedStore<V>& store, uint64_t key) {
    return store.Lookup(key);
  }

  /// Cache accounting (algorithms own the cache arrays; see Section 5.3).
  void CountCacheHit() {
    counters_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  }
  void CountCacheMiss() {
    counters_->cache_misses.fetch_add(1, std::memory_order_relaxed);
  }

  /// Per-worker deterministic RNG (seeded from cluster seed, phase,
  /// machine and worker ids). Must not influence algorithm outputs that
  /// are compared across runtimes.
  Rng& rng() { return rng_; }

 private:
  Cluster* cluster_;
  std::vector<Cluster::PhaseCounters>* all_counters_;
  Cluster::PhaseCounters* counters_;
  int machine_id_;
  int worker_id_;
  Rng rng_;
};

template <typename V, typename Producer>
void Cluster::RunKvWritePhase(const std::string& phase,
                              kv::ShardedStore<V>& store, int64_t n,
                              Producer producer) {
  AMPC_CHECK_EQ(store.num_shards(), config_.num_machines)
      << "store must be sharded per machine (create it with MakeStore)";
  WallTimer timer;
  // Stores are write-once but may take several write phases (one per key
  // range), so charge the per-shard *delta* of this phase.
  std::vector<int64_t> bytes_before = store.ShardBytesSnapshot();
  std::vector<int64_t> writes_before(config_.num_machines);
  for (int m = 0; m < config_.num_machines; ++m) {
    writes_before[m] = store.ShardSize(m);
  }
  ParallelForChunked(*pool_, 0, n, 1024, [&](int64_t lo, int64_t hi) {
    for (int64_t key = lo; key < hi; ++key) {
      store.Put(static_cast<uint64_t>(key), producer(key));
    }
  });
  const double wall = timer.Seconds();
  std::vector<int64_t> bytes(config_.num_machines);
  std::vector<int64_t> writes(config_.num_machines);
  for (int m = 0; m < config_.num_machines; ++m) {
    bytes[m] = store.ShardBytes(m) - bytes_before[m];
    writes[m] = store.ShardSize(m) - writes_before[m];
  }
  SettleKvWritePhase(phase, writes, bytes, wall);
}

}  // namespace ampc::sim
