#include "sim/cluster.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "common/parallel.h"

namespace ampc::sim {

Cluster::Cluster(ClusterConfig config) : config_(config) {
  AMPC_CHECK_GE(config_.num_machines, 1);
  AMPC_CHECK_GE(config_.threads_per_machine, 1);
  AMPC_CHECK_GE(config_.pipeline_depth, 1);
  AMPC_CHECK_GE(config_.faults.fault_rate_per_machine_sec, 0.0);
  AMPC_CHECK_GE(config_.faults.replication, 1);
  AMPC_CHECK_GE(config_.faults.checkpoint_period_sec, 0.0);
  AMPC_CHECK_GE(config_.faults.machines_per_domain, 0);
  AMPC_CHECK_GE(config_.faults.domain_fault_rate_sec, 0.0);
  AMPC_CHECK_GE(config_.faults.warning_lead_sec, 0.0);
  AMPC_CHECK_GE(config_.faults.slow_machine_rate, 0.0);
  AMPC_CHECK_LE(config_.faults.slow_machine_rate, 1.0);
  AMPC_CHECK_GE(config_.faults.straggler_slowdown, 1.0);
  const int logical_threads =
      config_.num_machines *
      (config_.multithreading ? config_.threads_per_machine : 1);
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  pool_ = std::make_unique<ThreadPool>(
      std::max(1, std::min(logical_threads, hw)));
  machine_kv_write_bytes_.assign(config_.num_machines, 0);
  checkpointed_bytes_.assign(config_.num_machines, 0);
  shard_hosts_.resize(config_.num_machines);
  for (int m = 0; m < config_.num_machines; ++m) shard_hosts_[m] = m;
  drained_.assign(config_.num_machines, 0);
  shard_primary_bytes_.assign(config_.num_machines, 0);
  if (config_.faults.fault_rate_per_machine_sec > 0.0 ||
      config_.faults.domain_fault_rate_sec > 0.0) {
    FaultInjector::Config injector;
    injector.rate_per_machine_sec = config_.faults.fault_rate_per_machine_sec;
    injector.machines = config_.num_machines;
    injector.seed = config_.faults.fault_seed;
    injector.machines_per_domain = config_.faults.machines_per_domain;
    injector.domain_fault_rate_sec = config_.faults.domain_fault_rate_sec;
    injector.warning_lead_sec = config_.faults.warning_lead_sec;
    fault_injector_ = FaultInjector(injector);
  }
  straggler_.slow_rate = config_.faults.slow_machine_rate;
  straggler_.slowdown = config_.faults.straggler_slowdown;
  straggler_.seed = config_.faults.fault_seed;
  // The hedge target table: replica sets are pure functions of
  // (seed, machines, replication, domain width) — none of which the
  // tuner ever moves — so shard s's first follower is fixed for the
  // cluster's lifetime.
  hedge_follower_.assign(config_.num_machines, -1);
  if (config_.faults.replication > 1) {
    const kv::Placement placement = PlacementFor(0);
    for (int s = 0; s < config_.num_machines; ++s) {
      const kv::ReplicaSet replicas = placement.ReplicasOfShard(s);
      if (replicas.machines.size() > 1) hedge_follower_[s] = replicas.machines[1];
    }
  }
  if (config_.auto_tune.enabled) {
    TunedKnobs base;
    base.placement_policy = config_.placement_policy;
    base.pipeline_depth = config_.pipeline_depth;
    base.max_batch_keys = config_.max_batch_keys;
    base.query_cache_capacity = config_.query_cache.capacity;
    base.frontier_mode = config_.frontier.mode;
    tuner_ = std::make_unique<AutoTuner>(config_.auto_tune, base,
                                         config_.query_cache.enabled);
  }
}

Cluster::TuneScope Cluster::AutoTuneBeginRound() {
  TuneScope scope;
  if (tuner_ == nullptr) return scope;
  // Idempotent between probe steps; cheap when nothing changed.
  ApplyTunedKnobs(tuner_->KnobsForNextRound());
  scope.before = metrics_.Snapshot();
  scope.active = true;
  return scope;
}

void Cluster::AutoTuneEndRound(const TuneScope& scope, int64_t key_space,
                               int64_t items) {
  if (!scope.active) return;
  const MetricsSnapshot delta = metrics_.DeltaSince(scope.before);
  const auto counter = [&delta](const char* name) -> int64_t {
    const auto it = delta.counters.find(name);
    return it == delta.counters.end() ? 0 : it->second;
  };
  const auto timer = [&delta](const char* name) -> double {
    const auto it = delta.timers_sec.find(name);
    return it == delta.timers_sec.end() ? 0.0 : it->second;
  };
  RoundSignals signals;
  signals.key_space = key_space;
  signals.items = items;
  signals.kv_queries = counter("kv_reads");
  signals.kv_lookup_trips = counter("kv_lookup_trips");
  signals.kv_batches = counter("kv_batches");
  signals.cache_hits = counter("cache_hits");
  signals.cache_misses = counter("cache_misses");
  // A watermark, not a delta (SettleMapPhase tops it up).
  signals.peak_inflight_keys = metrics_.Get("kv_peak_inflight_keys");
  signals.kv_read_bytes = counter("kv_read_bytes");
  signals.hot_machine_read_bytes = counter("kv_hot_machine_read_bytes");
  // The data-dependent component the knobs actually move: the round's
  // sim time minus any recovery/checkpoint charges that settled inside
  // it and minus the fixed spawn constant.
  const double round_sim =
      timer("sim_total") - timer("sim:recovery") - timer("sim:checkpoint");
  signals.data_sim_seconds =
      std::max(0.0, round_sim - config_.round_spawn_sec);
  // The honestly charged probe bill: every query-bearing round spent
  // under the A/B schedule, in rounds and in simulated seconds.
  if (tuner_->probing() && signals.kv_queries > 0 &&
      signals.data_sim_seconds > 0) {
    metrics_.Add("autotune_probe_rounds", 1);
    metrics_.AddTime("sim:autotune_probe", round_sim);
  }
  tuner_->ObserveRound(signals);
}

void Cluster::ApplyTunedKnobs(const TunedKnobs& knobs) {
  if (knobs.placement_policy != config_.placement_policy) {
    // Swapping placement retires the old policy (stores minted under it
    // keep serving; MachineContext::CheckStoreMatchesCluster accepts
    // any retired placement) and drops the shard-map LRU so the next
    // MakeStore builds under the new assignment. Runs strictly between
    // rounds — no worker is in flight — but the LRU lock is held
    // anyway to pair with ShardMapFor's const-path locking.
    std::lock_guard<std::mutex> lock(shard_map_mu_);
    const RetiredPlacement retired{config_.placement_policy,
                                   config_.affinity_block};
    bool already_retired = false;
    for (const RetiredPlacement& r : retired_placements_) {
      if (r.policy == retired.policy &&
          r.affinity_block == retired.affinity_block) {
        already_retired = true;
        break;
      }
    }
    if (!already_retired) retired_placements_.push_back(retired);
    shard_maps_.clear();
    shard_map_recency_.clear();
    config_.placement_policy = knobs.placement_policy;
  }
  config_.pipeline_depth = knobs.pipeline_depth;
  config_.max_batch_keys = knobs.max_batch_keys;
  config_.query_cache.capacity = knobs.query_cache_capacity;
  // Never changes after the rule layer; kept in lockstep for coherence.
  config_.frontier.mode = knobs.frontier_mode;
}

void Cluster::AccountShuffle(const std::string& phase, int64_t bytes,
                             double wall_seconds) {
  metrics_.Add("shuffles", 1);
  metrics_.Add("rounds", 1);
  metrics_.Add("shuffle_bytes", bytes);
  const double throughput =
      config_.shuffle_bytes_per_sec * config_.num_machines;
  const double sim =
      std::max(config_.shuffle_min_sec,
               static_cast<double>(bytes) / throughput) +
      config_.round_spawn_sec;
  RecordRound(phase, sim);
  metrics_.AddTime("sim:" + phase, sim);
  metrics_.AddTime("sim_total", sim);
  metrics_.AddTime("wall:" + phase, wall_seconds);
  metrics_.AddTime("wall_total", wall_seconds);
  ProcessFaultsAndCheckpoints();
}

void Cluster::AccountShardedShuffle(
    const std::string& phase, const std::vector<int64_t>& per_machine_bytes,
    double wall_seconds) {
  int64_t total = 0;
  int64_t hottest = 0;
  for (const int64_t bytes : per_machine_bytes) {
    total += bytes;
    hottest = std::max(hottest, bytes);
  }
  metrics_.Add("shuffles", 1);
  metrics_.Add("rounds", 1);
  metrics_.Add("shuffle_bytes", total);
  metrics_.Add("shuffle_hot_machine_bytes", hottest);
  // Machines shuffle concurrently; the round lasts as long as the
  // hottest machine's durable-storage writes. Matches AccountShuffle
  // (total / (per-machine throughput * P)) when the bytes are uniform.
  const double sim =
      std::max(config_.shuffle_min_sec,
               static_cast<double>(hottest) / config_.shuffle_bytes_per_sec) +
      config_.round_spawn_sec;
  RecordRound(phase, sim);
  metrics_.AddTime("sim:" + phase, sim);
  metrics_.AddTime("sim_total", sim);
  metrics_.AddTime("wall:" + phase, wall_seconds);
  metrics_.AddTime("wall_total", wall_seconds);
  ProcessFaultsAndCheckpoints();
}

void Cluster::AccountMapRound(const std::string& phase) {
  metrics_.Add("rounds", 1);
  RecordRound(phase, config_.round_spawn_sec);
  metrics_.AddTime("sim:" + phase, config_.round_spawn_sec);
  metrics_.AddTime("sim_total", config_.round_spawn_sec);
  ProcessFaultsAndCheckpoints();
}

void Cluster::AccountInMemoryFinish(const std::string& phase, int64_t bytes,
                                    int64_t items) {
  // Gathering the residual graph onto one machine is a shuffle...
  AccountShuffle(phase, bytes);
  // ...followed by a sequential in-memory solve.
  AccountInMemoryCompute(phase, items);
}

void Cluster::AccountInMemoryCompute(const std::string& phase,
                                     int64_t items) {
  const double sim = static_cast<double>(items) * config_.map_item_cpu_sec;
  ExtendLastRound(sim);
  metrics_.AddTime("sim:" + phase, sim);
  metrics_.AddTime("sim_total", sim);
  ProcessFaultsAndCheckpoints();
}

void Cluster::SettleMapPhase(const std::string& phase,
                             std::vector<PhaseCounters>& per_machine,
                             double wall_seconds,
                             const PullPhaseInfo* pull) {
  const int overlap =
      config_.multithreading ? config_.threads_per_machine : 1;
  // Pull rounds (RunPullPhase) advance through global lockstep steps:
  // the most pull steps any machine's workers opened. Per step, every
  // machine receives its broadcast slice of the frontier bitmap
  // (ceil(key_space/8) / machines bytes), pays the aggregate
  // exchange's scatter + gather latency (two round trips), and sweeps
  // its local share of the key space against the bitmap at map-item
  // CPU rate — the cost that makes pull a *dense*-frontier win and
  // keeps tiny frontiers cheaper in their sparse representation.
  int64_t pull_steps = 0;
  int64_t pull_exchange_bytes = 0;
  int64_t bitmap_slice_bytes = 0;
  double pull_machine_time = 0.0;
  if (pull != nullptr) {
    for (PhaseCounters& counters : per_machine) {
      pull_steps = std::max(pull_steps, counters.pull_steps.load());
      pull_exchange_bytes += counters.pull_bytes.load();
    }
    pull_steps = std::max<int64_t>(1, pull_steps);
    const int64_t bitmap_bytes = (pull->key_space + 7) / 8;
    bitmap_slice_bytes =
        (bitmap_bytes + config_.num_machines - 1) / config_.num_machines;
    const int64_t sweep_items =
        (pull->key_space + config_.num_machines - 1) / config_.num_machines;
    const double step_time =
        2.0 * config_.network.lookup_latency_sec +
        static_cast<double>(bitmap_slice_bytes) /
            config_.network.bytes_per_sec +
        static_cast<double>(sweep_items) * config_.map_item_cpu_sec /
            overlap;
    pull_machine_time = static_cast<double>(pull_steps) * step_time;
  }
  double slowest_machine = 0;
  int64_t total_queries = 0, total_trips = 0, total_batches = 0;
  int64_t total_bytes = 0, total_items = 0;
  int64_t total_hits = 0, total_misses = 0, hottest_served = 0;
  int64_t peak_inflight = 0;
  int64_t total_slow = 0, total_hedged = 0, total_hedge_wins = 0;
  std::vector<int64_t> served(per_machine.size(), 0);
  for (size_t m = 0; m < per_machine.size(); ++m) {
    const PhaseCounters& counters = per_machine[m];
    const int64_t trips = counters.kv_lookup_trips.load();
    const int64_t bytes = counters.kv_read_bytes.load();
    const int64_t items = counters.items.load();
    const int64_t served_bytes = counters.kv_served_bytes.load();
    total_queries += counters.kv_queries.load();
    total_trips += trips;
    total_batches += counters.kv_batches.load();
    total_bytes += bytes;
    total_items += items;
    total_hits += counters.cache_hits.load();
    total_misses += counters.cache_misses.load();
    peak_inflight = std::max(peak_inflight, counters.peak_inflight_keys.load());
    hottest_served = std::max(hottest_served, served_bytes);
    served[m] = served_bytes;
    // Straggler tax on this machine's trips (StragglerModel): a slow
    // destination's trip runs at slowdown x latency — extra
    // (slowdown - 1) trips' worth — unless a hedge won, in which case
    // the trip completed at 2 x latency (timeout + replica round trip:
    // extra 1), with both legs charged. Integer trip counts converted
    // to seconds exactly once, here.
    const int64_t slow = counters.kv_slow_trips.load();
    const int64_t wins = counters.kv_hedge_wins.load();
    double straggler_extra_sec = 0.0;
    if (slow != 0) {
      total_slow += slow;
      total_hedged += counters.kv_hedged_trips.load();
      total_hedge_wins += wins;
      straggler_extra_sec =
          (static_cast<double>(slow - wins) *
               (config_.faults.straggler_slowdown - 1.0) +
           static_cast<double>(wins)) *
          config_.network.lookup_latency_sec;
    }
    // Client side: round-trip latency (one trip per scalar lookup, one
    // per destination machine of a batch — the Section 5.3 batching
    // pipeline) and per-item CPU, hidden behind `overlap` worker threads
    // (Section 5.3 multithreading), plus the fetched records arriving
    // through this machine's NIC (a hot *reader* gathering from every
    // shard is also a straggler).
    const double client_time =
        (trips * config_.network.lookup_latency_sec + straggler_extra_sec +
         items * config_.map_item_cpu_sec) /
            overlap +
        bytes / config_.network.bytes_per_sec;
    // Server side: this machine's NIC ships every byte its shard serves;
    // extra worker threads do not widen a NIC, so no overlap division.
    // Hot shards make their machine the round's straggler.
    const double server_time =
        served_bytes / config_.network.bytes_per_sec;
    slowest_machine = std::max(
        slowest_machine, client_time + server_time + pull_machine_time);
  }
  // The cluster-wide network ceiling (paper Section 5.7) floors the
  // round; a pull round's bitmap broadcasts cross the network too.
  const int64_t broadcast_bytes =
      pull == nullptr
          ? 0
          : pull_steps * bitmap_slice_bytes * config_.num_machines;
  const double network_floor =
      static_cast<double>(total_bytes + broadcast_bytes) /
      config_.network.aggregate_bytes_per_sec;
  const double sim =
      std::max(slowest_machine, network_floor) + config_.round_spawn_sec;

  if (pull != nullptr) {
    metrics_.Add("frontier_dense_rounds", 1);
    metrics_.Add("frontier_broadcast_bytes", broadcast_bytes);
    metrics_.Add("frontier_exchange_bytes", pull_exchange_bytes);
  }
  metrics_.Add("rounds", 1);
  RecordRound(phase, sim, std::move(served));
  metrics_.Add("kv_reads", total_queries);
  metrics_.Add("kv_lookup_trips", total_trips);
  metrics_.Add("kv_batches", total_batches);
  metrics_.Add("kv_read_bytes", total_bytes);
  metrics_.Add("kv_hot_machine_read_bytes", hottest_served);
  metrics_.Add("map_items", total_items);
  metrics_.Add("cache_hits", total_hits);
  metrics_.Add("cache_misses", total_misses);
  // Guarded like kv_replication_bytes: the straggler metrics only exist
  // in runs where the model fired, keeping zero-rate metric output
  // byte-identical to the historical model.
  if (total_slow != 0) metrics_.Add("kv_slow_trips", total_slow);
  if (total_hedged != 0) metrics_.Add("kv_hedged_trips", total_hedged);
  if (total_hedge_wins != 0) metrics_.Add("kv_hedge_wins", total_hedge_wins);
  // A watermark, not a sum: the metric holds the largest per-worker
  // in-flight key count seen by any phase so far (settles run serially,
  // so the read-then-top-up is race-free).
  const int64_t prior_peak = metrics_.Get("kv_peak_inflight_keys");
  if (peak_inflight > prior_peak) {
    metrics_.Add("kv_peak_inflight_keys", peak_inflight - prior_peak);
  }
  metrics_.AddTime("sim:" + phase, sim);
  metrics_.AddTime("sim_total", sim);
  metrics_.AddTime("wall:" + phase, wall_seconds);
  metrics_.AddTime("wall_total", wall_seconds);
  ProcessFaultsAndCheckpoints();
}

void Cluster::SettleKvWritePhase(const std::string& phase,
                                 const std::vector<int64_t>& writes,
                                 const std::vector<int64_t>& bytes,
                                 double wall_seconds) {
  const int overlap =
      config_.multithreading ? config_.threads_per_machine : 1;
  // Inbound traffic lands on each shard's current *host* (identity
  // until a drain migration remaps it), and shard_primary_bytes_
  // remembers the primary bytes resident per base shard — the bytes a
  // later drain of the host must move. Replication: shard s's records
  // also land on its followers' hosts, whose NICs absorb a full copy.
  // The guards keep replication 1 and the unmigrated case
  // byte-for-byte identical to the historical model.
  std::vector<int64_t> inbound(config_.num_machines, 0);
  std::vector<int64_t> host_writes(config_.num_machines, 0);
  for (int s = 0; s < config_.num_machines; ++s) {
    inbound[HostOf(s)] += bytes[s];
    host_writes[HostOf(s)] += writes[s];
    shard_primary_bytes_[s] += bytes[s];
  }
  int64_t replication_bytes = 0;
  if (config_.faults.replication > 1) {
    const kv::Placement placement = PlacementFor(0);
    for (int s = 0; s < config_.num_machines; ++s) {
      if (bytes[s] == 0) continue;
      const kv::ReplicaSet replicas = placement.ReplicasOfShard(s);
      for (size_t i = 1; i < replicas.machines.size(); ++i) {
        inbound[HostOf(replicas.machines[i])] += bytes[s];
        replication_bytes += bytes[s];
      }
    }
  }
  int64_t total_writes = 0, total_bytes = 0, hottest_bytes = 0;
  double slowest_machine = 0;
  for (int m = 0; m < config_.num_machines; ++m) {
    total_writes += writes[m];
    total_bytes += inbound[m];
    hottest_bytes = std::max(hottest_bytes, bytes[m]);
    machine_kv_write_bytes_[m] += inbound[m];
    // Writes stream from all machines concurrently; machine m absorbs
    // the records landing on the shards it hosts (and the follower
    // copies), so a skewed key distribution stalls the round on the
    // hottest shard's machine. Worker threads overlap per-write latency
    // but cannot widen the machine's NIC, so only the latency term
    // divides by `overlap`.
    const double machine_time =
        host_writes[m] * config_.network.write_latency_sec / overlap +
        inbound[m] / config_.network.bytes_per_sec;
    slowest_machine = std::max(slowest_machine, machine_time);
  }
  const double sim =
      std::max(slowest_machine,
               static_cast<double>(total_bytes) /
                   config_.network.aggregate_bytes_per_sec) +
      config_.round_spawn_sec;

  metrics_.Add("rounds", 1);
  RecordRound(phase, sim, /*kv_read_bytes=*/{},
              /*kv_write_bytes=*/inbound);
  metrics_.Add("kv_writes", total_writes);
  metrics_.Add("kv_write_bytes", total_bytes - replication_bytes);
  metrics_.Add("kv_hot_machine_write_bytes", hottest_bytes);
  if (replication_bytes != 0) {
    metrics_.Add("kv_replication_bytes", replication_bytes);
  }
  metrics_.AddTime("sim:" + phase, sim);
  metrics_.AddTime("sim_total", sim);
  metrics_.AddTime("wall:" + phase, wall_seconds);
  metrics_.AddTime("wall_total", wall_seconds);
  ProcessFaultsAndCheckpoints();
}

void Cluster::ProcessFaultsAndCheckpoints() {
  const bool checkpointing = config_.faults.checkpoint_period_sec > 0.0;
  if (!fault_injector_.enabled() && !checkpointing) return;
  if (fault_injector_.enabled()) {
    const std::vector<FaultEvent> events =
        fault_injector_.AdvanceTo(sim_clock_);
    // Warnings first (they sort ahead of same-time kills): each drains
    // its machine, migrating the hosted shards away before the
    // announced kill can land.
    for (const FaultEvent& event : events) {
      if (event.warning) DrainMachine(event.machine);
    }
    // Kills, in correlated groups: the members of one domain kill share
    // (time, domain) and are adjacent in the sorted stream, and every
    // member's recovery must see the whole group down at once —
    // that simultaneity is what can wipe an entire ReplicaSet.
    size_t i = 0;
    while (i < events.size()) {
      if (events[i].warning) {
        ++i;
        continue;
      }
      size_t j = i + 1;
      if (events[i].domain >= 0) {
        while (j < events.size() && !events[j].warning &&
               events[j].domain == events[i].domain &&
               events[j].time == events[i].time) {
          ++j;
        }
        metrics_.Add("domains_lost", 1);
      }
      std::vector<uint8_t> dead(config_.num_machines, 0);
      for (size_t k = i; k < j; ++k) dead[events[k].machine] = 1;
      for (size_t k = i; k < j; ++k) RecoverFromKill(events[k], dead);
      i = j;
    }
    // Recovery intervals are failure-free: the recovering machine was
    // just scheduled. Skipping redraws any arrival the recovery time
    // would otherwise have swallowed.
    if (!events.empty()) fault_injector_.SkipTo(sim_clock_);
  }
  if (checkpointing && sim_clock_ - last_checkpoint_time_ >=
                           config_.faults.checkpoint_period_sec) {
    TakeCheckpoint();
  }
}

void Cluster::RecoverFromKill(const FaultEvent& kill,
                              const std::vector<uint8_t>& dead) {
  // ampc-lint: allow(metric-zero-guard): only reached when a kill fires;
  // a fault-free config never calls RecoverFromKill.
  metrics_.Add("machines_lost", 1);
  // The replacement machine's RAM starts cold: every read-through cache
  // the dead machine held is dropped (extra misses, never wrong values).
  cache_registry_.DropMachine(kill.machine);
  if (!drained_.empty() && drained_[kill.machine]) {
    // The warned-and-drained kill: the machine's shards migrated away
    // when the warning fired, no work has been scheduled here since,
    // and nothing resident is lost — the kill costs zero and the
    // replacement slot rejoins empty. This is the payoff the
    // drain-vs-reactive bench gate measures.
    drained_[kill.machine] = 0;
    return;
  }
  const size_t round = round_log_.empty() ? 0 : round_log_.size() - 1;
  // How far into the interrupted round the kill landed — the in-flight
  // work the dead machine loses.
  const double elapsed = std::clamp(kill.time - last_round_start_, 0.0,
                                    sim_clock_ - last_round_start_);
  const double partial = elapsed * ReplaySliceShare(round, kill.machine);
  double transfer = 0.0;
  double replay = 0.0;
  // Replicated recovery needs a live copy of every shard the dead
  // machine hosted. A correlated domain kill can take out a whole
  // ReplicaSet at once (domain-oblivious placement permits co-domain
  // copies); each wiped set is counted and recovery falls back to the
  // checkpoint/restart paths below.
  bool replicas_survive = config_.faults.replication > 1;
  if (replicas_survive) {
    const kv::Placement placement = PlacementFor(0);
    for (int s = 0; s < config_.num_machines; ++s) {
      if (HostOf(s) != kill.machine) continue;
      const kv::ReplicaSet replicas = placement.ReplicasOfShard(s);
      bool survivor = false;
      for (const int copy : replicas.machines) {
        const int host = HostOf(copy);
        if (static_cast<size_t>(host) >= dead.size() || !dead[host]) {
          survivor = true;
          break;
        }
      }
      if (!survivor) {
        metrics_.Add("replica_wipeouts", 1);
        replicas_survive = false;
      }
    }
  }
  if (replicas_survive) {
    // Re-replicate: stream the machine's resident shard bytes from the
    // surviving replicas over its NIC, then redo the in-flight slice.
    transfer = static_cast<double>(machine_kv_write_bytes_[kill.machine]) /
               config_.network.bytes_per_sec;
    replay = partial;
  } else if (config_.faults.checkpoint_period_sec > 0.0) {
    // Restore the machine's checkpointed shard from durable storage,
    // then replay its slice of every round since that checkpoint.
    transfer = static_cast<double>(checkpointed_bytes_[kill.machine]) /
               config_.shuffle_bytes_per_sec;
    for (size_t r = last_checkpoint_round_; r < round; ++r) {
      replay += round_log_[r] * ReplaySliceShare(r, kill.machine);
    }
    replay += partial;
  } else {
    // Nothing persisted anywhere: the whole job restarts — the
    // kInMemory discipline of sim/faults.h, and the baseline the
    // recovery paths above must beat (bench/micro_churn).
    for (size_t r = 0; r < round; ++r) replay += round_log_[r];
    replay += elapsed;
  }
  const double recovery = transfer + replay;
  ExtendLastRound(recovery);
  metrics_.AddTime("sim:recovery", recovery);
  metrics_.AddTime("sim_total", recovery);
  metrics_.AddTime("recovery_replay_seconds", replay);
}

void Cluster::TakeCheckpoint() {
  int64_t total = 0, hottest = 0;
  for (int m = 0; m < config_.num_machines; ++m) {
    const int64_t delta =
        machine_kv_write_bytes_[m] - checkpointed_bytes_[m];
    total += delta;
    hottest = std::max(hottest, delta);
  }
  if (total > 0) {
    // Charged like a sharded shuffle of each machine's delta: machines
    // checkpoint concurrently, so the round lasts as long as the
    // hottest machine's durable write.
    const double sim =
        std::max(config_.shuffle_min_sec,
                 static_cast<double>(hottest) /
                     config_.shuffle_bytes_per_sec) +
        config_.round_spawn_sec;
    metrics_.Add("rounds", 1);
    metrics_.Add("checkpoints", 1);
    metrics_.Add("checkpoint_bytes", total);
    RecordRound("checkpoint", sim);
    metrics_.AddTime("sim:checkpoint", sim);
    metrics_.AddTime("sim_total", sim);
  }
  // The snapshot and clock move even when nothing new landed — an idle
  // period must not retry a checkpoint every subsequent round.
  checkpointed_bytes_ = machine_kv_write_bytes_;
  last_checkpoint_time_ = sim_clock_;
  last_checkpoint_round_ = round_log_.size();
  fault_injector_.SkipTo(sim_clock_);
}

double Cluster::ReplaySliceShare(size_t round, int machine) const {
  if (round >= round_footprints_.size()) return 1.0;
  const RoundFootprint& fp = round_footprints_[round];
  int64_t hottest = 0;
  for (size_t m = 0; m < fp.kv_read_bytes.size(); ++m) {
    hottest =
        std::max(hottest, fp.kv_read_bytes[m] + fp.kv_write_bytes[m]);
  }
  if (hottest == 0) return 1.0;
  const int64_t mine =
      fp.kv_read_bytes[machine] + fp.kv_write_bytes[machine];
  return static_cast<double>(mine) / static_cast<double>(hottest);
}

void Cluster::InjectMachineFailure(int machine) {
  AMPC_CHECK_GE(machine, 0);
  AMPC_CHECK_LT(machine, config_.num_machines);
  std::vector<uint8_t> dead(config_.num_machines, 0);
  dead[machine] = 1;
  RecoverFromKill(FaultEvent{sim_clock_, machine}, dead);
  fault_injector_.SkipTo(sim_clock_);
}

void Cluster::InjectDomainFailure(int domain) {
  AMPC_CHECK_GE(domain, 0);
  const int per = std::max(1, config_.faults.machines_per_domain);
  const int lo = domain * per;
  const int hi = std::min(config_.num_machines, lo + per);
  AMPC_CHECK_LT(lo, config_.num_machines);
  // ampc-lint: allow(metric-zero-guard): only reached when a correlated
  // domain kill arrives; rate-0 configs never call InjectDomainFailure.
  metrics_.Add("domains_lost", 1);
  // The whole rack goes down at once: every member's recovery must see
  // the full group dead — that simultaneity is what can take out an
  // entire ReplicaSet under domain-oblivious placement.
  std::vector<uint8_t> dead(config_.num_machines, 0);
  for (int m = lo; m < hi; ++m) dead[m] = 1;
  for (int m = lo; m < hi; ++m) {
    RecoverFromKill(FaultEvent{sim_clock_, m, domain}, dead);
  }
  fault_injector_.SkipTo(sim_clock_);
}

void Cluster::DrainMachine(int machine) {
  AMPC_CHECK_GE(machine, 0);
  AMPC_CHECK_LT(machine, config_.num_machines);
  if (drained_[machine]) return;
  drained_[machine] = 1;
  // ampc-lint: allow(metric-zero-guard): only reached on a warned kill;
  // warning_lead_sec 0 never drains a machine.
  metrics_.Add("machines_drained", 1);
  // The drained machine's read-through caches leave with it; the new
  // hosts start cold (extra misses, never wrong values).
  cache_registry_.DropMachine(machine);
  const kv::Placement placement = PlacementFor(0);
  int64_t moved_bytes = 0;
  int64_t shards_moved = 0;
  for (int s = 0; s < config_.num_machines; ++s) {
    if (shard_hosts_[s] != machine) continue;
    // Prefer the least-loaded live replica host — a copy of the shard
    // is already resident there, which is the point of chained
    // declustering. Fall back to the least-loaded live machine when no
    // follower survives (or at replication 1, where migration is a full
    // re-stream either way). Ties break to the lowest machine id so the
    // choice is deterministic.
    int target = -1;
    if (placement.EffectiveReplication() > 1) {
      const kv::ReplicaSet replicas = placement.ReplicasOfShard(s);
      for (size_t i = 1; i < replicas.machines.size(); ++i) {
        const int host = HostOf(replicas.machines[i]);
        if (host == machine || drained_[host]) continue;
        if (target < 0 ||
            machine_kv_write_bytes_[host] < machine_kv_write_bytes_[target] ||
            (machine_kv_write_bytes_[host] ==
                 machine_kv_write_bytes_[target] &&
             host < target)) {
          target = host;
        }
      }
    }
    if (target < 0) {
      for (int m = 0; m < config_.num_machines; ++m) {
        if (m == machine || drained_[m]) continue;
        if (target < 0 ||
            machine_kv_write_bytes_[m] < machine_kv_write_bytes_[target]) {
          target = m;
        }
      }
    }
    // Every other machine already drained: nowhere to move — the kill
    // will be recovered reactively instead.
    if (target < 0) {
      drained_[machine] = 0;
      return;
    }
    const int64_t bytes = shard_primary_bytes_[s];
    shard_hosts_[s] = target;
    ++shards_moved;
    moved_bytes += bytes;
    if (bytes > 0) {
      // The resident bytes follow the shard, and so does their
      // checkpoint credit — leaving it behind would let a later
      // checkpoint delta on the emptied machine go negative.
      machine_kv_write_bytes_[machine] =
          std::max<int64_t>(0, machine_kv_write_bytes_[machine] - bytes);
      machine_kv_write_bytes_[target] += bytes;
      const int64_t credit = std::min(bytes, checkpointed_bytes_[machine]);
      checkpointed_bytes_[machine] -= credit;
      checkpointed_bytes_[target] += credit;
    }
  }
  if (shards_moved > 0) {
    metrics_.Add("shards_migrated", shards_moved);
    if (moved_bytes > 0) metrics_.Add("kv_migration_bytes", moved_bytes);
    // The migration streams the primary's resident bytes to the new
    // host at shuffle bandwidth on the sim clock — the price the
    // drain-vs-reactive bench weighs against replaying lost work.
    const double sim =
        static_cast<double>(moved_bytes) / config_.shuffle_bytes_per_sec;
    if (sim > 0.0) {
      ExtendLastRound(sim);
      metrics_.AddTime("sim:drain", sim);
      metrics_.AddTime("sim_total", sim);
    }
  }
}

std::shared_ptr<const kv::ShardMap> Cluster::ShardMapFor(
    int64_t capacity) const {
  std::lock_guard<std::mutex> lock(shard_map_mu_);
  auto recent = std::find(shard_map_recency_.begin(),
                          shard_map_recency_.end(), capacity);
  if (recent != shard_map_recency_.end()) {
    shard_map_recency_.erase(recent);
  } else if (shard_maps_.size() >= kMaxCachedShardMaps) {
    shard_maps_.erase(shard_map_recency_.front());
    shard_map_recency_.erase(shard_map_recency_.begin());
  }
  shard_map_recency_.push_back(capacity);
  std::shared_ptr<const kv::ShardMap>& map = shard_maps_[capacity];
  if (map == nullptr) {
    map = kv::ShardMap::Build(PlacementFor(capacity));
  }
  return map;
}

void Cluster::RunMapPhase(
    const std::string& phase, int64_t n,
    const std::function<void(int64_t, MachineContext&)>& fn) {
  RunMapPhaseImpl(phase, n, {}, /*explicit_items=*/false,
                  [&fn](std::span<const int64_t> items, MachineContext& ctx) {
                    for (const int64_t item : items) fn(item, ctx);
                  });
}

void Cluster::RunBatchMapPhase(
    const std::string& phase, int64_t n,
    const std::function<void(std::span<const int64_t>, MachineContext&)>&
        fn) {
  RunMapPhaseImpl(phase, n, {}, /*explicit_items=*/false, fn);
}

void Cluster::RunBatchMapPhase(
    const std::string& phase, int64_t key_space,
    std::span<const int64_t> items,
    const std::function<void(std::span<const int64_t>, MachineContext&)>&
        fn) {
  RunMapPhaseImpl(phase, key_space, items, /*explicit_items=*/true, fn);
}

void Cluster::RunPullPhase(
    const std::string& phase, int64_t key_space,
    const std::function<void(std::span<const int64_t>, MachineContext&)>&
        fn) {
  const PullPhaseInfo pull{key_space};
  RunMapPhaseImpl(phase, key_space, {}, /*explicit_items=*/false, fn, &pull);
}

void Cluster::RunPullPhase(
    const std::string& phase, int64_t key_space,
    std::span<const int64_t> items,
    const std::function<void(std::span<const int64_t>, MachineContext&)>&
        fn) {
  const PullPhaseInfo pull{key_space};
  RunMapPhaseImpl(phase, key_space, items, /*explicit_items=*/true, fn,
                  &pull);
}

void Cluster::RunMapPhaseImpl(
    const std::string& phase, int64_t key_space,
    std::span<const int64_t> items, bool explicit_items,
    const std::function<void(std::span<const int64_t>, MachineContext&)>&
        slice_fn,
    const PullPhaseInfo* pull) {
  // Before anything reads the placement: the tuner may hot-swap knobs
  // (including placement_policy) for the coming round.
  const TuneScope tune_scope = AutoTuneBeginRound();
  WallTimer timer;
  const int num_machines = config_.num_machines;
  std::vector<PhaseCounters> counters(num_machines);
  // The work list: all of [0, key_space), or the caller's explicit
  // frontier subset.
  const int64_t n =
      explicit_items ? static_cast<int64_t>(items.size()) : key_space;

  // Bucket items by owning machine (the machine holding record i of a
  // capacity-key_space store under the configured placement).
  std::vector<std::atomic<int64_t>> machine_sizes(num_machines);
  for (auto& s : machine_sizes) s.store(0, std::memory_order_relaxed);
  ParallelForChunked(*pool_, 0, n, 4096, [&](int64_t lo, int64_t hi) {
    std::vector<int64_t> local(num_machines, 0);
    for (int64_t i = lo; i < hi; ++i) {
      const int64_t item = explicit_items ? items[i] : i;
      ++local[MachineOf(item, key_space)];
    }
    for (int m = 0; m < num_machines; ++m) {
      if (local[m] != 0) {
        machine_sizes[m].fetch_add(local[m], std::memory_order_relaxed);
      }
    }
  });
  std::vector<int64_t> offsets(num_machines + 1, 0);
  for (int m = 0; m < num_machines; ++m) {
    offsets[m + 1] = offsets[m] + machine_sizes[m].load();
  }
  std::vector<int64_t> buckets(n);
  std::vector<std::atomic<int64_t>> cursors(num_machines);
  for (int m = 0; m < num_machines; ++m) {
    cursors[m].store(offsets[m], std::memory_order_relaxed);
  }
  ParallelForChunked(*pool_, 0, n, 4096, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const int64_t item = explicit_items ? items[i] : i;
      const int m = MachineOf(item, key_space);
      buckets[cursors[m].fetch_add(1, std::memory_order_relaxed)] = item;
    }
  });

  // Execute: each machine's slice split over its worker threads. With
  // the frontier engine active, a machine share too small to feed
  // every worker is regrouped into min_worker_grain-sized chunks
  // instead of span/workers slivers: a tiny sparse round then issues a
  // few well-filled per-worker sub-batches (each sub-batch pays its
  // own per-destination trips) rather than `workers` nearly-empty
  // ones. kSparse keeps the historical split, and with it the
  // historical cost model, bit-identically.
  const int workers = config_.threads_per_machine;
  const bool regroup_small =
      config_.frontier.mode != FrontierMode::kSparse &&
      config_.frontier.min_worker_grain > 0;
  struct WorkerSlice {
    int machine;
    int worker;
    int64_t lo;
    int64_t hi;
  };
  std::vector<WorkerSlice> slices;
  slices.reserve(static_cast<size_t>(num_machines) * workers);
  for (int m = 0; m < num_machines; ++m) {
    const int64_t begin = offsets[m];
    const int64_t end = offsets[m + 1];
    const int64_t span = end - begin;
    if (regroup_small &&
        span < static_cast<int64_t>(workers) *
                   config_.frontier.min_worker_grain) {
      const std::vector<IndexChunk> chunks = SplitIndexChunks(
          begin, end, config_.frontier.min_worker_grain, workers);
      for (size_t c = 0; c < chunks.size(); ++c) {
        slices.push_back(WorkerSlice{m, static_cast<int>(c),
                                     chunks[c].begin, chunks[c].end});
      }
    } else {
      for (int w = 0; w < workers; ++w) {
        slices.push_back(WorkerSlice{m, w, begin + span * w / workers,
                                     begin + span * (w + 1) / workers});
      }
    }
  }
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    int remaining;
  };
  Latch latch;
  latch.remaining = static_cast<int>(slices.size());
  for (const WorkerSlice& slice : slices) {
    const int m = slice.machine;
    const int w = slice.worker;
    const int64_t lo = slice.lo;
    const int64_t hi = slice.hi;
    pool_->Schedule([&, m, w, lo, hi] {
      {
        // Scoped so the context's destructor — which settles any
        // deferred pipeline trips and folds the worker's in-flight
        // watermark into the counters — runs before the latch
        // releases the settle.
        MachineContext ctx(
            this, &counters, m, w,
            Hash64(HashCombine(Hash64(m, config_.seed), w),
                   HashCombine(config_.seed,
                               std::hash<std::string>{}(phase))));
        slice_fn(std::span<const int64_t>(buckets.data() + lo, hi - lo),
                 ctx);
        counters[m].items.fetch_add(hi - lo, std::memory_order_relaxed);
      }
      std::unique_lock<std::mutex> lock(latch.mu);
      if (--latch.remaining == 0) latch.cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(latch.mu);
    latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
  }
  SettleMapPhase(phase, counters, timer.Seconds(), pull);
  AutoTuneEndRound(tune_scope, key_space, n);
}

}  // namespace ampc::sim
