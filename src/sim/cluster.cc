#include "sim/cluster.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"

namespace ampc::sim {

Cluster::Cluster(ClusterConfig config) : config_(config) {
  AMPC_CHECK_GE(config_.num_machines, 1);
  AMPC_CHECK_GE(config_.threads_per_machine, 1);
  AMPC_CHECK_GE(config_.pipeline_depth, 1);
  const int logical_threads =
      config_.num_machines *
      (config_.multithreading ? config_.threads_per_machine : 1);
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  pool_ = std::make_unique<ThreadPool>(
      std::max(1, std::min(logical_threads, hw)));
  machine_kv_write_bytes_.assign(config_.num_machines, 0);
}

void Cluster::AccountShuffle(const std::string& phase, int64_t bytes,
                             double wall_seconds) {
  metrics_.Add("shuffles", 1);
  metrics_.Add("rounds", 1);
  metrics_.Add("shuffle_bytes", bytes);
  const double throughput =
      config_.shuffle_bytes_per_sec * config_.num_machines;
  const double sim =
      std::max(config_.shuffle_min_sec,
               static_cast<double>(bytes) / throughput) +
      config_.round_spawn_sec;
  RecordRound(phase, sim);
  metrics_.AddTime("sim:" + phase, sim);
  metrics_.AddTime("sim_total", sim);
  metrics_.AddTime("wall:" + phase, wall_seconds);
  metrics_.AddTime("wall_total", wall_seconds);
}

void Cluster::AccountShardedShuffle(
    const std::string& phase, const std::vector<int64_t>& per_machine_bytes,
    double wall_seconds) {
  int64_t total = 0;
  int64_t hottest = 0;
  for (const int64_t bytes : per_machine_bytes) {
    total += bytes;
    hottest = std::max(hottest, bytes);
  }
  metrics_.Add("shuffles", 1);
  metrics_.Add("rounds", 1);
  metrics_.Add("shuffle_bytes", total);
  metrics_.Add("shuffle_hot_machine_bytes", hottest);
  // Machines shuffle concurrently; the round lasts as long as the
  // hottest machine's durable-storage writes. Matches AccountShuffle
  // (total / (per-machine throughput * P)) when the bytes are uniform.
  const double sim =
      std::max(config_.shuffle_min_sec,
               static_cast<double>(hottest) / config_.shuffle_bytes_per_sec) +
      config_.round_spawn_sec;
  RecordRound(phase, sim);
  metrics_.AddTime("sim:" + phase, sim);
  metrics_.AddTime("sim_total", sim);
  metrics_.AddTime("wall:" + phase, wall_seconds);
  metrics_.AddTime("wall_total", wall_seconds);
}

void Cluster::AccountMapRound(const std::string& phase) {
  metrics_.Add("rounds", 1);
  RecordRound(phase, config_.round_spawn_sec);
  metrics_.AddTime("sim:" + phase, config_.round_spawn_sec);
  metrics_.AddTime("sim_total", config_.round_spawn_sec);
}

void Cluster::AccountInMemoryFinish(const std::string& phase, int64_t bytes,
                                    int64_t items) {
  // Gathering the residual graph onto one machine is a shuffle...
  AccountShuffle(phase, bytes);
  // ...followed by a sequential in-memory solve.
  AccountInMemoryCompute(phase, items);
}

void Cluster::AccountInMemoryCompute(const std::string& phase,
                                     int64_t items) {
  const double sim = static_cast<double>(items) * config_.map_item_cpu_sec;
  ExtendLastRound(sim);
  metrics_.AddTime("sim:" + phase, sim);
  metrics_.AddTime("sim_total", sim);
}

void Cluster::SettleMapPhase(const std::string& phase,
                             std::vector<PhaseCounters>& per_machine,
                             double wall_seconds) {
  const int overlap =
      config_.multithreading ? config_.threads_per_machine : 1;
  double slowest_machine = 0;
  int64_t total_queries = 0, total_trips = 0, total_batches = 0;
  int64_t total_bytes = 0, total_items = 0;
  int64_t total_hits = 0, total_misses = 0, hottest_served = 0;
  int64_t peak_inflight = 0;
  std::vector<int64_t> served(per_machine.size(), 0);
  for (size_t m = 0; m < per_machine.size(); ++m) {
    const PhaseCounters& counters = per_machine[m];
    const int64_t trips = counters.kv_lookup_trips.load();
    const int64_t bytes = counters.kv_read_bytes.load();
    const int64_t items = counters.items.load();
    const int64_t served_bytes = counters.kv_served_bytes.load();
    total_queries += counters.kv_queries.load();
    total_trips += trips;
    total_batches += counters.kv_batches.load();
    total_bytes += bytes;
    total_items += items;
    total_hits += counters.cache_hits.load();
    total_misses += counters.cache_misses.load();
    peak_inflight = std::max(peak_inflight, counters.peak_inflight_keys.load());
    hottest_served = std::max(hottest_served, served_bytes);
    served[m] = served_bytes;
    // Client side: round-trip latency (one trip per scalar lookup, one
    // per destination machine of a batch — the Section 5.3 batching
    // pipeline) and per-item CPU, hidden behind `overlap` worker threads
    // (Section 5.3 multithreading), plus the fetched records arriving
    // through this machine's NIC (a hot *reader* gathering from every
    // shard is also a straggler).
    const double client_time =
        (trips * config_.network.lookup_latency_sec +
         items * config_.map_item_cpu_sec) /
            overlap +
        bytes / config_.network.bytes_per_sec;
    // Server side: this machine's NIC ships every byte its shard serves;
    // extra worker threads do not widen a NIC, so no overlap division.
    // Hot shards make their machine the round's straggler.
    const double server_time =
        served_bytes / config_.network.bytes_per_sec;
    slowest_machine =
        std::max(slowest_machine, client_time + server_time);
  }
  // The cluster-wide network ceiling (paper Section 5.7) floors the round.
  const double network_floor =
      total_bytes / config_.network.aggregate_bytes_per_sec;
  const double sim =
      std::max(slowest_machine, network_floor) + config_.round_spawn_sec;

  metrics_.Add("rounds", 1);
  RecordRound(phase, sim, std::move(served));
  metrics_.Add("kv_reads", total_queries);
  metrics_.Add("kv_lookup_trips", total_trips);
  metrics_.Add("kv_batches", total_batches);
  metrics_.Add("kv_read_bytes", total_bytes);
  metrics_.Add("kv_hot_machine_read_bytes", hottest_served);
  metrics_.Add("map_items", total_items);
  metrics_.Add("cache_hits", total_hits);
  metrics_.Add("cache_misses", total_misses);
  // A watermark, not a sum: the metric holds the largest per-worker
  // in-flight key count seen by any phase so far (settles run serially,
  // so the read-then-top-up is race-free).
  const int64_t prior_peak = metrics_.Get("kv_peak_inflight_keys");
  if (peak_inflight > prior_peak) {
    metrics_.Add("kv_peak_inflight_keys", peak_inflight - prior_peak);
  }
  metrics_.AddTime("sim:" + phase, sim);
  metrics_.AddTime("sim_total", sim);
  metrics_.AddTime("wall:" + phase, wall_seconds);
  metrics_.AddTime("wall_total", wall_seconds);
}

void Cluster::SettleKvWritePhase(const std::string& phase,
                                 const std::vector<int64_t>& writes,
                                 const std::vector<int64_t>& bytes,
                                 double wall_seconds) {
  const int overlap =
      config_.multithreading ? config_.threads_per_machine : 1;
  int64_t total_writes = 0, total_bytes = 0, hottest_bytes = 0;
  double slowest_machine = 0;
  for (int m = 0; m < config_.num_machines; ++m) {
    total_writes += writes[m];
    total_bytes += bytes[m];
    hottest_bytes = std::max(hottest_bytes, bytes[m]);
    machine_kv_write_bytes_[m] += bytes[m];
    // Writes stream from all machines concurrently; machine m absorbs
    // the records landing on its shard, so a skewed key distribution
    // stalls the round on the hottest shard's machine. Worker threads
    // overlap per-write latency but cannot widen the machine's NIC, so
    // only the latency term divides by `overlap`.
    const double machine_time =
        writes[m] * config_.network.write_latency_sec / overlap +
        bytes[m] / config_.network.bytes_per_sec;
    slowest_machine = std::max(slowest_machine, machine_time);
  }
  const double sim =
      std::max(slowest_machine,
               static_cast<double>(total_bytes) /
                   config_.network.aggregate_bytes_per_sec) +
      config_.round_spawn_sec;

  metrics_.Add("rounds", 1);
  RecordRound(phase, sim, /*kv_read_bytes=*/{}, /*kv_write_bytes=*/bytes);
  metrics_.Add("kv_writes", total_writes);
  metrics_.Add("kv_write_bytes", total_bytes);
  metrics_.Add("kv_hot_machine_write_bytes", hottest_bytes);
  metrics_.AddTime("sim:" + phase, sim);
  metrics_.AddTime("sim_total", sim);
  metrics_.AddTime("wall:" + phase, wall_seconds);
  metrics_.AddTime("wall_total", wall_seconds);
}

std::shared_ptr<const kv::ShardMap> Cluster::ShardMapFor(
    int64_t capacity) const {
  std::lock_guard<std::mutex> lock(shard_map_mu_);
  auto recent = std::find(shard_map_recency_.begin(),
                          shard_map_recency_.end(), capacity);
  if (recent != shard_map_recency_.end()) {
    shard_map_recency_.erase(recent);
  } else if (shard_maps_.size() >= kMaxCachedShardMaps) {
    shard_maps_.erase(shard_map_recency_.front());
    shard_map_recency_.erase(shard_map_recency_.begin());
  }
  shard_map_recency_.push_back(capacity);
  std::shared_ptr<const kv::ShardMap>& map = shard_maps_[capacity];
  if (map == nullptr) {
    map = kv::ShardMap::Build(PlacementFor(capacity));
  }
  return map;
}

void Cluster::RunMapPhase(
    const std::string& phase, int64_t n,
    const std::function<void(int64_t, MachineContext&)>& fn) {
  RunMapPhaseImpl(phase, n,
                  [&fn](std::span<const int64_t> items, MachineContext& ctx) {
                    for (const int64_t item : items) fn(item, ctx);
                  });
}

void Cluster::RunBatchMapPhase(
    const std::string& phase, int64_t n,
    const std::function<void(std::span<const int64_t>, MachineContext&)>&
        fn) {
  RunMapPhaseImpl(phase, n, fn);
}

void Cluster::RunMapPhaseImpl(
    const std::string& phase, int64_t n,
    const std::function<void(std::span<const int64_t>, MachineContext&)>&
        slice_fn) {
  WallTimer timer;
  const int num_machines = config_.num_machines;
  std::vector<PhaseCounters> counters(num_machines);

  // Bucket items by owning machine (the machine holding record i of a
  // capacity-n store under the configured placement).
  std::vector<std::atomic<int64_t>> machine_sizes(num_machines);
  for (auto& s : machine_sizes) s.store(0, std::memory_order_relaxed);
  ParallelForChunked(*pool_, 0, n, 4096, [&](int64_t lo, int64_t hi) {
    std::vector<int64_t> local(num_machines, 0);
    for (int64_t i = lo; i < hi; ++i) ++local[MachineOf(i, n)];
    for (int m = 0; m < num_machines; ++m) {
      if (local[m] != 0) {
        machine_sizes[m].fetch_add(local[m], std::memory_order_relaxed);
      }
    }
  });
  std::vector<int64_t> offsets(num_machines + 1, 0);
  for (int m = 0; m < num_machines; ++m) {
    offsets[m + 1] = offsets[m] + machine_sizes[m].load();
  }
  std::vector<int64_t> buckets(n);
  std::vector<std::atomic<int64_t>> cursors(num_machines);
  for (int m = 0; m < num_machines; ++m) {
    cursors[m].store(offsets[m], std::memory_order_relaxed);
  }
  ParallelForChunked(*pool_, 0, n, 4096, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const int m = MachineOf(i, n);
      buckets[cursors[m].fetch_add(1, std::memory_order_relaxed)] = i;
    }
  });

  // Execute: each machine's slice split over its worker threads.
  const int workers = config_.threads_per_machine;
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    int remaining;
  };
  Latch latch;
  latch.remaining = num_machines * workers;
  for (int m = 0; m < num_machines; ++m) {
    const int64_t begin = offsets[m];
    const int64_t end = offsets[m + 1];
    const int64_t span = end - begin;
    for (int w = 0; w < workers; ++w) {
      const int64_t lo = begin + span * w / workers;
      const int64_t hi = begin + span * (w + 1) / workers;
      pool_->Schedule([&, m, w, lo, hi] {
        {
          // Scoped so the context's destructor — which settles any
          // deferred pipeline trips and folds the worker's in-flight
          // watermark into the counters — runs before the latch
          // releases the settle.
          MachineContext ctx(
              this, &counters, m, w,
              Hash64(HashCombine(Hash64(m, config_.seed), w),
                     HashCombine(config_.seed,
                                 std::hash<std::string>{}(phase))));
          slice_fn(std::span<const int64_t>(buckets.data() + lo, hi - lo),
                   ctx);
          counters[m].items.fetch_add(hi - lo, std::memory_order_relaxed);
        }
        std::unique_lock<std::mutex> lock(latch.mu);
        if (--latch.remaining == 0) latch.cv.notify_all();
      });
    }
  }
  {
    std::unique_lock<std::mutex> lock(latch.mu);
    latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
  }
  SettleMapPhase(phase, counters, timer.Seconds());
}

}  // namespace ampc::sim
