// Telemetry-driven auto-configuration of the lookup pipeline — the
// probe-then-commit loop that closes ROADMAP item 5.
//
// PRs 2-7 built every cost knob (placement policy, pipeline_depth,
// max_batch_keys, query-cache capacity, frontier mode) and every signal
// (kv_lookup_trips, cache hits/misses, kv_peak_inflight_keys, per-round
// footprints, frontier density); the AutoTuner is the consumer. It is a
// deterministic state machine driven by per-round telemetry deltas:
//
//   1. *Probe layer*: the first few query-bearing rounds of the job run
//      under an A/B-interleaved schedule [base, C1, base, C2, base, ...]
//      of single-axis candidate configs, gated on the base round's
//      signals (no placement probe when rounds pay no trips, no cache
//      probe when the hit rate is already high, no depth probe when the
//      pipeline never fills or the in-flight key budget would be
//      blown). Probe rounds are *real* rounds — the job advances and
//      their cost lands on the simulated clock honestly; the only
//      overhead is the delta of running a few rounds under a
//      not-chosen config. Each candidate is scored on per-query
//      data-dependent simulated cost against the mean of its two
//      neighboring base rounds (cancelling the linear drift of
//      shrinking adaptive frontiers), and accepted only when it beats
//      base by the accept margin. Frontier mode is one of the probed
//      axes, not a blanket rule: cores that consult the frontier policy
//      per phase (msf, pagerank, connectivity) feel the flip during its
//      probe round, while a core that bound its engine path at start
//      (kcore's one-shot branch) measures it as a no-op — ratio ~1,
//      honestly rejected.
//
//   2. *Commit + drift re-check*: the accepted axes compose into one
//      committed configuration held for the rest of the job. Every
//      subsequent query-bearing round is a cheap re-check: only when
//      the per-query cost leaves the hysteresis band for
//      `drift_patience` *consecutive* rounds — after a post-commit
//      cooldown — does the tuner re-probe (mirroring FrontierPolicy's
//      sticky no-flap design; oscillating signals never trigger).
//
// Tuning is strictly a cost decision: every knob the tuner moves is one
// of the value-neutral ablation toggles, so outputs are bit-identical
// to the untuned run on every decision path
// (tests/sharding_determinism_test.cc drives every core through the
// tuner), and auto_tune.enabled = false leaves the cluster byte-for-byte
// on the historical cost model.
//
// The class is cluster-agnostic on purpose: it consumes RoundSignals
// and emits TunedKnobs, so tests can drive the full decision machine
// with synthetic telemetry (tests/autotuner_test.cc) without a Cluster.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/frontier.h"
#include "kv/placement.h"

namespace ampc::sim {

/// ClusterConfig::auto_tune — the probe-then-commit policy knobs.
/// Defaults are all a probe needs on this library's workloads; `enabled`
/// is the only switch benches and tools normally touch.
struct AutoTuneConfig {
  /// Master switch. Off (the default) constructs no tuner and
  /// reproduces every existing cost model byte-identically.
  bool enabled = false;
  /// A candidate axis is accepted when its per-query cost is below
  /// accept_ratio x the neighboring base rounds' — a ~3% margin keeps
  /// measurement noise from committing a sideways move.
  double accept_ratio = 0.97;
  /// Committed-phase hysteresis: a round drifts when its per-query cost
  /// leaves [ref x (1-band), ref x (1+band)].
  double drift_band = 0.5;
  /// Consecutive drifted query-bearing rounds before a re-probe
  /// (mirrors FrontierPolicy's sticky direction flips: oscillation
  /// inside the patience window never re-probes).
  int drift_patience = 3;
  /// Query-bearing rounds after a commit during which drift is not even
  /// counted — the committed config gets a stable measurement window,
  /// and back-to-back re-probes (flapping) are structurally impossible.
  int reprobe_cooldown_rounds = 8;
  /// Ceiling on pipeline_depth x max_batch_keys per worker — the
  /// pipelining memory trade-off (kv_peak_inflight_keys measures the
  /// realized side). The depth probe never proposes a config whose
  /// worst-case in-flight keys exceed this.
  int64_t inflight_key_budget = 1 << 16;
};

/// The configuration axes the tuner owns. A value object so candidate
/// configs, the committed config, and the per-round hot-swap all move
/// through one type (Cluster::ApplyTunedKnobs consumes it).
struct TunedKnobs {
  kv::PlacementPolicy placement_policy = kv::PlacementPolicy::kHash;
  int pipeline_depth = 4;
  int64_t max_batch_keys = 4096;
  int64_t query_cache_capacity = 1 << 16;
  FrontierMode frontier_mode = FrontierMode::kSparse;

  bool operator==(const TunedKnobs&) const = default;
};

/// One settled round's telemetry delta, as fed by
/// Cluster::AutoTuneEndRound from Metrics::DeltaSince. A round is
/// *informative* (advances the probe schedule / drift counter) when it
/// carried queries and data-dependent cost; KV-write and spawn-only
/// rounds pass through without advancing the machine.
struct RoundSignals {
  int64_t key_space = 0;
  int64_t items = 0;
  int64_t kv_queries = 0;
  int64_t kv_lookup_trips = 0;
  int64_t kv_batches = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// Watermark (not a delta): the most keys any worker has held in
  /// flight so far — the realized pipeline saturation.
  int64_t peak_inflight_keys = 0;
  int64_t kv_read_bytes = 0;
  /// The round's hottest server-side machine bytes — footprint skew.
  int64_t hot_machine_read_bytes = 0;
  /// The round's simulated seconds excluding the fixed spawn constant
  /// and any recovery/checkpoint time that settled inside it — the
  /// data-dependent component the knobs actually move.
  double data_sim_seconds = 0;
};

class AutoTuner {
 public:
  /// `base` is the job's configured starting point; `caching_enabled`
  /// gates the cache-capacity probe.
  AutoTuner(const AutoTuneConfig& config, const TunedKnobs& base,
            bool caching_enabled);

  /// The knobs the next round must run under. Constant within a probe
  /// step; the cluster applies them at every round start (idempotent).
  const TunedKnobs& KnobsForNextRound() const { return next_knobs_; }

  /// Feeds the telemetry of a completed round (run under the knobs
  /// KnobsForNextRound() returned before it). Advances the probe
  /// schedule, commits, or counts drift.
  void ObserveRound(const RoundSignals& signals);

  bool committed() const { return state_ == State::kCommitted; }
  bool probing() const { return state_ == State::kProbing; }
  const TunedKnobs& committed_knobs() const { return committed_knobs_; }

  /// Query-bearing rounds observed while probing (the honestly charged
  /// probe cost, in rounds; "sim:autotune_probe" holds the seconds).
  int64_t probe_rounds_observed() const { return probe_rounds_observed_; }
  int64_t commits() const { return commits_; }
  int64_t reprobes() const { return reprobes_; }

  /// Human-readable decision trace: each probed candidate with its
  /// measured ratio and verdict, and the committed knobs. Printed by
  /// `ampc_cli --auto-tune`.
  std::string DecisionSummary() const;

 private:
  enum class State { kProbing, kCommitted };
  enum class Axis { kPlacement, kFrontier, kDepth, kBatchKeys, kCacheCapacity };

  struct Candidate {
    Axis axis;
    std::string name;
    TunedKnobs knobs;
    bool decided = false;
    bool accepted = false;
    double cand_cost = 0.0;
    double base_cost = 0.0;
    double ratio = 0.0;
  };

  static double PerQueryCost(const RoundSignals& signals) {
    return signals.data_sim_seconds /
           static_cast<double>(signals.kv_queries);
  }
  static bool Informative(const RoundSignals& signals) {
    return signals.kv_queries > 0 && signals.data_sim_seconds > 0;
  }

  void BuildPlan(const RoundSignals& base_round);
  void Commit(double base_cost_ref);
  void BeginProbe();

  const AutoTuneConfig config_;
  const bool caching_enabled_;

  State state_ = State::kProbing;
  // The point candidates vary off: the job's base config initially, the
  // committed config after a commit (re-probes explore around it).
  TunedKnobs base_knobs_;
  TunedKnobs next_knobs_;
  TunedKnobs committed_knobs_;

  // Probe-schedule state: base[0], cand[0], base[1], cand[1], ... with
  // candidate i scored against mean(base[i], base[i+1]).
  bool plan_built_ = false;
  bool awaiting_candidate_ = false;
  std::vector<Candidate> plan_;
  std::vector<Candidate> decided_;  // across commits, for the summary
  size_t candidate_index_ = 0;
  std::vector<double> base_costs_;

  // Committed-phase drift tracking.
  double committed_cost_ref_ = 0.0;
  int cooldown_remaining_ = 0;
  int drift_streak_ = 0;

  int64_t probe_rounds_observed_ = 0;
  int64_t commits_ = 0;
  int64_t reprobes_ = 0;
};

}  // namespace ampc::sim
