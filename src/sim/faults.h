// Preemption modeling for the shared-data-center setting of Section 5.1:
// "batch jobs are typically run at low priorities (i.e., using resources
// that are currently not used by high priority jobs), which makes them
// susceptible to preemptions. [...] This is why systems like MapReduce,
// Hadoop or Flume-C++ have strong fault tolerance properties and write
// the results of each computation round to durable storage."
//
// Preemptions arrive as a Poisson process with rate `rate_per_machine_sec`
// on each of `machines` machines. Two execution disciplines:
//
//   * kFaultTolerant (Flume-style): round outputs persist, so a
//     preemption only restarts the *current round*. Expected time of a
//     round of length t under full-round restarts is the classic renewal
//     quantity (e^{Λt} − 1) / Λ with Λ = machines × rate.
//   * kInMemory: nothing persists; any preemption restarts the whole
//     job, giving (e^{ΛT} − 1) / Λ for total length T.
//
// This quantifies the Section 5.7 positioning of AMPC as "an interesting
// middle-ground between systems that communicate through persistent
// storage [...] and systems that run fully in memory, which deliver
// better performance at the cost of not tolerating preemptions well".
// An analytic model and a Monte-Carlo simulator are both provided; tests
// verify they agree.
//
// Two complementary views of the same risk live here:
//
//   * The *analytic* model above (ExpectedCompletionSeconds and friends)
//     prices preemption risk in closed form over a measured round trace
//     — nothing fails, the formulas integrate over every possible kill.
//   * The *injected* model (FaultInjector) makes machine loss an actual
//     event: a seeded, deterministic Poisson process per machine whose
//     arrivals sim::Cluster consumes mid-job to kill machines, re-route
//     their shards to surviving replicas (kv::ReplicaSet), restore from
//     the last checkpoint, and replay only the lost machine's slice of
//     the in-flight phase (ClusterConfig::faults). Recovery is a cost
//     event, never a correctness event: outputs under injected churn
//     are bit-identical to a fault-free run, which
//     tests/sharding_determinism_test.cc pins and bench/micro_churn
//     sweeps. The recomputation-bound framing follows Behnezhad et al.
//     (Near-Optimal Massively Parallel Graph Connectivity) and Andoni
//     et al. (Log Diameter Rounds): a lost round costs a bounded
//     replay, never a full restart — unless neither replicas nor
//     checkpoints exist, which is exactly the whole-job-restart
//     baseline the bench must beat.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace ampc::sim {

enum class RecoveryDiscipline {
  kFaultTolerant,  // per-round restart from durable storage
  kInMemory,       // whole-job restart
};

struct PreemptionModel {
  /// Poisson preemption rate per machine-second (e.g. 1/3600 = each
  /// machine is preempted about once an hour).
  double rate_per_machine_sec = 0.0;
  /// Machines participating in every round.
  int machines = 1;
};

/// Expected completion seconds of a job whose rounds take
/// `round_seconds` (e.g. Cluster::round_log()) under `model`.
double ExpectedCompletionSeconds(const std::vector<double>& round_seconds,
                                 const PreemptionModel& model,
                                 RecoveryDiscipline discipline);

/// Heterogeneous variant: per_machine_rates[m] is machine m's Poisson
/// preemption rate. Superposing independent Poisson processes gives a
/// job-wide rate of sum(rates), so any restart formula below applies
/// unchanged; machines with hot DHT shards raise the whole job's risk.
double ExpectedCompletionSeconds(const std::vector<double>& round_seconds,
                                 const std::vector<double>& per_machine_rates,
                                 RecoveryDiscipline discipline);

/// Derives per-machine preemption rates from per-machine memory
/// footprints — the memory-pressure signal of the sharded DHT. Machine
/// m's KV bytes (e.g. Cluster::machine_kv_write_bytes() or a store's
/// ShardBytesSnapshot()) are compared against `soft_limit_bytes`; a
/// machine within its budget keeps the base rate, and one exceeding it
/// becomes increasingly likely to be OOM-killed or evicted:
///
///   rate_m = base * (1 + overshoot_penalty * max(0, bytes_m/limit - 1))
///
/// With uniform shards nothing changes; a skewed key distribution makes
/// the hot machine dominate the job's preemption risk.
std::vector<double> MemoryPressureRates(
    const PreemptionModel& base, const std::vector<int64_t>& machine_bytes,
    int64_t soft_limit_bytes, double overshoot_penalty = 4.0);

/// Round-by-round memory-pressure replay under the fault-tolerant
/// (per-round restart) discipline. Where ExpectedCompletionSeconds with
/// MemoryPressureRates judges every round by the job's *final* footprint,
/// this replays the footprint as it grows: round r's preemption rates
/// derive from the cumulative per-machine KV bytes after rounds 0..r
/// (each round's own traffic is already resident while it runs), so
/// early rounds run at the base rate and only the rounds after a shard
/// fills up pay the elevated risk. `round_machine_kv_bytes[r][m]` is the
/// KV bytes machine m's shard absorbed in round r — the write columns of
/// sim::Cluster::round_footprints() (see Cluster::RoundKvWriteBytes).
double ReplayMemoryPressureSeconds(
    const std::vector<double>& round_seconds,
    const std::vector<std::vector<int64_t>>& round_machine_kv_bytes,
    const PreemptionModel& base, int64_t soft_limit_bytes,
    double overshoot_penalty = 4.0);

struct PreemptionTrialStats {
  double mean_seconds = 0;
  double max_seconds = 0;
  /// Mean preemptions (= restarts) per trial.
  double mean_preemptions = 0;
};

/// Monte-Carlo validation of the analytic model: runs `trials`
/// executions with exponential preemption inter-arrivals.
PreemptionTrialStats SimulatePreemptions(
    const std::vector<double>& round_seconds, const PreemptionModel& model,
    RecoveryDiscipline discipline, int trials, uint64_t seed);

/// Heterogeneous Monte-Carlo variant: per_machine_rates[m] is machine
/// m's Poisson rate. Superposing independent Poisson processes yields a
/// Poisson process with the summed rate, so this validates the
/// per-machine-rate ExpectedCompletionSeconds overload the same way the
/// homogeneous simulator validates the uniform one.
PreemptionTrialStats SimulatePreemptions(
    const std::vector<double>& round_seconds,
    const std::vector<double>& per_machine_rates,
    RecoveryDiscipline discipline, int trials, uint64_t seed);

/// One injected fault-stream event on the cluster's sim clock.
///
///   * A *kill* (warning == false): machine `machine` is preempted at
///     absolute simulated time `time`. `domain >= 0` marks it part of a
///     correlated domain loss — every machine of that rack-level fault
///     domain dies at the same instant, and the events of one domain
///     kill share (time, domain).
///   * A *warning* (warning == true): advance notice, emitted
///     `warning_lead_sec` ahead of the kill it announces (same machine,
///     same domain). The cluster reacts by draining the machine —
///     migrating its shards away — so the kill, when it lands, loses
///     nothing.
struct FaultEvent {
  double time = 0.0;
  int machine = 0;
  int domain = -1;
  bool warning = false;
};

/// A seeded, deterministic source of injected machine failures: each
/// machine carries an independent exponential arrival stream (rate
/// `rate_per_machine_sec`), and the cluster advances the injector along
/// its simulated clock, harvesting the kills that landed inside each
/// round. A killed machine is immediately replaced (the scheduler
/// re-runs the task on a fresh machine, the standard shared-cell
/// behaviour), so the machine count and placement never change — what
/// is lost is the dead machine's shard contents, caches, and in-flight
/// slice, which sim::Cluster recovers and charges for.
///
/// Determinism: the arrival streams are pure functions of
/// (seed, machine), independent of round shapes and of each other, so a
/// fixed (rate, seed, machines) triple yields one fixed kill schedule
/// regardless of thread schedules — the property the churn determinism
/// tests rely on.
class FaultInjector {
 public:
  /// Full injector shape: independent per-machine kills, correlated
  /// rack-level domain kills, and advance warnings.
  struct Config {
    /// Independent Poisson kill rate per machine-second. 0 disables the
    /// per-machine streams.
    double rate_per_machine_sec = 0.0;
    int machines = 1;
    uint64_t seed = 42;
    /// Rack-level fault-domain topology: machine m belongs to domain
    /// m / machines_per_domain. <= 1 means every machine is its own
    /// domain and the correlated streams are off.
    int machines_per_domain = 0;
    /// Poisson rate per domain-second of correlated domain kills: one
    /// arrival takes out *every* machine of the domain at the same
    /// instant (a rack/switch loss). 0 disables the domain streams.
    double domain_fault_rate_sec = 0.0;
    /// Seconds of advance notice before each kill. > 0 makes every
    /// kill (machine or domain) emit a warning event `warning_lead_sec`
    /// earlier; 0 means kills arrive unannounced.
    double warning_lead_sec = 0.0;
  };

  /// Disabled injector (rate 0): AdvanceTo never yields events.
  FaultInjector() = default;

  /// Independent-kills-only injector, the historical shape.
  FaultInjector(double rate_per_machine_sec, int machines, uint64_t seed);

  explicit FaultInjector(const Config& config);

  bool enabled() const {
    return (rate_ > 0.0 && !next_arrival_.empty()) ||
           (domain_rate_ > 0.0 && !domain_next_arrival_.empty());
  }
  double now() const { return now_; }

  /// Fault domain of machine `m` under this injector's topology.
  int DomainOf(int machine) const {
    return machines_per_domain_ > 1 ? machine / machines_per_domain_
                                    : machine;
  }

  /// The events in (now(), t], sorted by time (warnings before kills at
  /// a tie, then domain, then machine id), advancing the clock to `t`.
  /// A machine killed twice within the interval appears twice: it
  /// respawned after the first kill and the replacement was preempted
  /// again. With warning_lead_sec > 0, the warning of a kill landing in
  /// (t, t + lead] is emitted *this* call (its warning time is <= t)
  /// even though the kill itself is still pending — that is the whole
  /// point of a warning — and each pending kill is warned exactly once.
  /// A domain kill yields one warning and one kill per member machine,
  /// all sharing (time, domain).
  std::vector<FaultEvent> AdvanceTo(double t);

  /// Advances the clock to `t` treating (now(), t] as failure-free —
  /// used for recovery and checkpoint intervals, which run on freshly
  /// scheduled machines. Arrivals that would have landed inside the
  /// skipped interval are redrawn from `t` (exponentials are
  /// memoryless, so this stays distributionally exact and
  /// deterministic). Exception: an arrival whose *warning* already
  /// fired is committed — it is never redrawn, so every warning is
  /// followed by exactly one kill even when drain or recovery time
  /// pushes the clock past it.
  void SkipTo(double t);

 private:
  double NextGap(int machine);
  double NextDomainGap(int domain);

  double rate_ = 0.0;
  double now_ = 0.0;
  std::vector<double> next_arrival_;
  std::vector<Rng> rng_;
  // Correlated domain-kill streams: one exponential arrival stream per
  // fault domain, seeded by (domain, seed) alone — like the machine
  // streams, a pure function of the seed, independent of round shapes.
  double domain_rate_ = 0.0;
  int machines_per_domain_ = 0;
  int machines_ = 0;
  std::vector<double> domain_next_arrival_;
  std::vector<Rng> domain_rng_;
  // Advance-warning state: whether the *current* next arrival of each
  // stream has already been announced (reset when the arrival fires or
  // is redrawn).
  double warning_lead_ = 0.0;
  std::vector<uint8_t> machine_warned_;
  std::vector<uint8_t> domain_warned_;
};

/// A seeded model of per-round stragglers: in any given round, each
/// destination machine is independently "slow" with probability
/// `slow_rate` — its lookup round trips take `slowdown` times the
/// normal latency (a GC pause, a noisy neighbour, a flaky NIC; the
/// tail that dominates max-over-machines round time in Behnezhad et
/// al.'s connectivity work). Pure function of (seed, round, machine):
/// deterministic across thread schedules, independent of everything
/// the job does, and value-neutral — sim::Cluster charges the slowdown
/// through the cost model only. slow_rate 0 reproduces the historical
/// cost model bit-identically.
struct StragglerModel {
  double slow_rate = 0.0;
  double slowdown = 4.0;
  uint64_t seed = 0;

  bool enabled() const { return slow_rate > 0.0; }

  /// Whether `machine` is slow during round index `round`.
  bool Slow(int64_t round, int machine) const {
    if (slow_rate <= 0.0) return false;
    const uint64_t h =
        Hash64(HashCombine(static_cast<uint64_t>(round),
                           static_cast<uint64_t>(machine)),
               seed ^ 0x736c6f776d63ULL);
    return ToUnitDouble(h) < slow_rate;
  }
};

}  // namespace ampc::sim
