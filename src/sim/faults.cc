#include "sim/faults.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/random.h"

namespace ampc::sim {
namespace {

// Expected time to complete a unit of work of length `t` when any
// preemption during the attempt restarts it: (e^{lambda t} - 1) / lambda.
// The lambda -> 0 limit is t; expm1 keeps the small-rate case accurate.
double RestartRenewalTime(double t, double lambda) {
  if (lambda <= 0.0) return t;
  return std::expm1(lambda * t) / lambda;
}

double CompletionWithLambda(const std::vector<double>& round_seconds,
                            double lambda, RecoveryDiscipline discipline) {
  switch (discipline) {
    case RecoveryDiscipline::kFaultTolerant: {
      double total = 0.0;
      for (const double t : round_seconds) {
        total += RestartRenewalTime(t, lambda);
      }
      return total;
    }
    case RecoveryDiscipline::kInMemory: {
      double job = 0.0;
      for (const double t : round_seconds) job += t;
      return RestartRenewalTime(job, lambda);
    }
  }
  return 0.0;
}

}  // namespace

double ExpectedCompletionSeconds(const std::vector<double>& round_seconds,
                                 const PreemptionModel& model,
                                 RecoveryDiscipline discipline) {
  AMPC_CHECK_GE(model.rate_per_machine_sec, 0.0);
  AMPC_CHECK_GE(model.machines, 1);
  const double lambda =
      model.rate_per_machine_sec * static_cast<double>(model.machines);
  return CompletionWithLambda(round_seconds, lambda, discipline);
}

double ExpectedCompletionSeconds(const std::vector<double>& round_seconds,
                                 const std::vector<double>& per_machine_rates,
                                 RecoveryDiscipline discipline) {
  AMPC_CHECK_GE(per_machine_rates.size(), 1u);
  double lambda = 0.0;
  for (const double rate : per_machine_rates) {
    AMPC_CHECK_GE(rate, 0.0);
    lambda += rate;
  }
  return CompletionWithLambda(round_seconds, lambda, discipline);
}

std::vector<double> MemoryPressureRates(
    const PreemptionModel& base, const std::vector<int64_t>& machine_bytes,
    int64_t soft_limit_bytes, double overshoot_penalty) {
  AMPC_CHECK_GE(base.rate_per_machine_sec, 0.0);
  AMPC_CHECK_GT(soft_limit_bytes, 0);
  AMPC_CHECK_GE(overshoot_penalty, 0.0);
  std::vector<double> rates(machine_bytes.size());
  for (size_t m = 0; m < machine_bytes.size(); ++m) {
    const double utilization = static_cast<double>(machine_bytes[m]) /
                               static_cast<double>(soft_limit_bytes);
    const double overshoot = std::max(0.0, utilization - 1.0);
    rates[m] =
        base.rate_per_machine_sec * (1.0 + overshoot_penalty * overshoot);
  }
  return rates;
}

double ReplayMemoryPressureSeconds(
    const std::vector<double>& round_seconds,
    const std::vector<std::vector<int64_t>>& round_machine_kv_bytes,
    const PreemptionModel& base, int64_t soft_limit_bytes,
    double overshoot_penalty) {
  AMPC_CHECK_EQ(round_seconds.size(), round_machine_kv_bytes.size())
      << "footprint history must align with the round log";
  std::vector<int64_t> cumulative;
  double total = 0.0;
  for (size_t r = 0; r < round_seconds.size(); ++r) {
    const std::vector<int64_t>& delta = round_machine_kv_bytes[r];
    if (cumulative.empty()) cumulative.assign(delta.size(), 0);
    AMPC_CHECK_EQ(cumulative.size(), delta.size());
    for (size_t m = 0; m < delta.size(); ++m) cumulative[m] += delta[m];
    const std::vector<double> rates = MemoryPressureRates(
        base, cumulative, soft_limit_bytes, overshoot_penalty);
    double lambda = 0.0;
    for (const double rate : rates) lambda += rate;
    total += RestartRenewalTime(round_seconds[r], lambda);
  }
  return total;
}

PreemptionTrialStats SimulatePreemptions(
    const std::vector<double>& round_seconds, const PreemptionModel& model,
    RecoveryDiscipline discipline, int trials, uint64_t seed) {
  AMPC_CHECK_GT(trials, 0);
  const double lambda =
      model.rate_per_machine_sec * static_cast<double>(model.machines);
  PreemptionTrialStats stats;

  for (int trial = 0; trial < trials; ++trial) {
    Rng rng(Hash64(trial, seed ^ 0x707265656d7074ULL));
    auto next_gap = [&]() {
      // Exponential inter-arrival; infinite when preemptions are off.
      if (lambda <= 0.0) return std::numeric_limits<double>::infinity();
      return -std::log(1.0 - rng.NextDouble()) / lambda;
    };

    double elapsed = 0.0;
    int64_t preemptions = 0;
    if (discipline == RecoveryDiscipline::kFaultTolerant) {
      for (const double t : round_seconds) {
        for (;;) {
          const double gap = next_gap();
          if (gap >= t) {
            elapsed += t;
            break;
          }
          elapsed += gap;  // work lost, round restarts
          ++preemptions;
        }
      }
    } else {
      double job = 0.0;
      for (const double t : round_seconds) job += t;
      for (;;) {
        const double gap = next_gap();
        if (gap >= job) {
          elapsed += job;
          break;
        }
        elapsed += gap;
        ++preemptions;
      }
    }
    stats.mean_seconds += elapsed;
    stats.max_seconds = std::max(stats.max_seconds, elapsed);
    stats.mean_preemptions += static_cast<double>(preemptions);
  }
  stats.mean_seconds /= trials;
  stats.mean_preemptions /= trials;
  return stats;
}

}  // namespace ampc::sim
