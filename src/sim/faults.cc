#include "sim/faults.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/random.h"

namespace ampc::sim {
namespace {

// Expected time to complete a unit of work of length `t` when any
// preemption during the attempt restarts it: (e^{lambda t} - 1) / lambda.
// The lambda -> 0 limit is t; expm1 keeps the small-rate case accurate.
double RestartRenewalTime(double t, double lambda) {
  if (lambda <= 0.0) return t;
  return std::expm1(lambda * t) / lambda;
}

double CompletionWithLambda(const std::vector<double>& round_seconds,
                            double lambda, RecoveryDiscipline discipline) {
  switch (discipline) {
    case RecoveryDiscipline::kFaultTolerant: {
      double total = 0.0;
      for (const double t : round_seconds) {
        total += RestartRenewalTime(t, lambda);
      }
      return total;
    }
    case RecoveryDiscipline::kInMemory: {
      double job = 0.0;
      for (const double t : round_seconds) job += t;
      return RestartRenewalTime(job, lambda);
    }
  }
  return 0.0;
}

}  // namespace

double ExpectedCompletionSeconds(const std::vector<double>& round_seconds,
                                 const std::vector<double>& per_machine_rates,
                                 RecoveryDiscipline discipline) {
  AMPC_CHECK_GE(per_machine_rates.size(), 1u);
  double lambda = 0.0;
  for (const double rate : per_machine_rates) {
    AMPC_CHECK_GE(rate, 0.0);
    lambda += rate;
  }
  return CompletionWithLambda(round_seconds, lambda, discipline);
}

double ExpectedCompletionSeconds(const std::vector<double>& round_seconds,
                                 const PreemptionModel& model,
                                 RecoveryDiscipline discipline) {
  AMPC_CHECK_GE(model.rate_per_machine_sec, 0.0);
  AMPC_CHECK_GE(model.machines, 1);
  // A homogeneous cluster is the per-machine-rate model with every rate
  // equal; delegating keeps one restart-formula code path for both
  // overloads.
  return ExpectedCompletionSeconds(
      round_seconds,
      std::vector<double>(model.machines, model.rate_per_machine_sec),
      discipline);
}

std::vector<double> MemoryPressureRates(
    const PreemptionModel& base, const std::vector<int64_t>& machine_bytes,
    int64_t soft_limit_bytes, double overshoot_penalty) {
  AMPC_CHECK_GE(base.rate_per_machine_sec, 0.0);
  AMPC_CHECK_GT(soft_limit_bytes, 0);
  AMPC_CHECK_GE(overshoot_penalty, 0.0);
  std::vector<double> rates(machine_bytes.size());
  for (size_t m = 0; m < machine_bytes.size(); ++m) {
    const double utilization = static_cast<double>(machine_bytes[m]) /
                               static_cast<double>(soft_limit_bytes);
    const double overshoot = std::max(0.0, utilization - 1.0);
    rates[m] =
        base.rate_per_machine_sec * (1.0 + overshoot_penalty * overshoot);
  }
  return rates;
}

double ReplayMemoryPressureSeconds(
    const std::vector<double>& round_seconds,
    const std::vector<std::vector<int64_t>>& round_machine_kv_bytes,
    const PreemptionModel& base, int64_t soft_limit_bytes,
    double overshoot_penalty) {
  AMPC_CHECK_EQ(round_seconds.size(), round_machine_kv_bytes.size())
      << "footprint history must align with the round log";
  std::vector<int64_t> cumulative;
  double total = 0.0;
  for (size_t r = 0; r < round_seconds.size(); ++r) {
    const std::vector<int64_t>& delta = round_machine_kv_bytes[r];
    if (cumulative.empty()) cumulative.assign(delta.size(), 0);
    AMPC_CHECK_EQ(cumulative.size(), delta.size());
    for (size_t m = 0; m < delta.size(); ++m) cumulative[m] += delta[m];
    const std::vector<double> rates = MemoryPressureRates(
        base, cumulative, soft_limit_bytes, overshoot_penalty);
    double lambda = 0.0;
    for (const double rate : rates) lambda += rate;
    total += RestartRenewalTime(round_seconds[r], lambda);
  }
  return total;
}

namespace {

// Shared Monte-Carlo core: both SimulatePreemptions overloads reduce to
// a single job-wide Poisson rate (superposition of the per-machine
// processes), so the trial loop is written once against that rate.
PreemptionTrialStats SimulateWithLambda(
    const std::vector<double>& round_seconds, double lambda,
    RecoveryDiscipline discipline, int trials, uint64_t seed) {
  AMPC_CHECK_GT(trials, 0);
  PreemptionTrialStats stats;

  for (int trial = 0; trial < trials; ++trial) {
    Rng rng(Hash64(trial, seed ^ 0x707265656d7074ULL));
    auto next_gap = [&]() {
      // Exponential inter-arrival; infinite when preemptions are off.
      if (lambda <= 0.0) return std::numeric_limits<double>::infinity();
      return -std::log(1.0 - rng.NextDouble()) / lambda;
    };

    double elapsed = 0.0;
    int64_t preemptions = 0;
    if (discipline == RecoveryDiscipline::kFaultTolerant) {
      for (const double t : round_seconds) {
        for (;;) {
          const double gap = next_gap();
          if (gap >= t) {
            elapsed += t;
            break;
          }
          elapsed += gap;  // work lost, round restarts
          ++preemptions;
        }
      }
    } else {
      double job = 0.0;
      for (const double t : round_seconds) job += t;
      for (;;) {
        const double gap = next_gap();
        if (gap >= job) {
          elapsed += job;
          break;
        }
        elapsed += gap;
        ++preemptions;
      }
    }
    stats.mean_seconds += elapsed;
    stats.max_seconds = std::max(stats.max_seconds, elapsed);
    stats.mean_preemptions += static_cast<double>(preemptions);
  }
  stats.mean_seconds /= trials;
  stats.mean_preemptions /= trials;
  return stats;
}

}  // namespace

PreemptionTrialStats SimulatePreemptions(
    const std::vector<double>& round_seconds, const PreemptionModel& model,
    RecoveryDiscipline discipline, int trials, uint64_t seed) {
  AMPC_CHECK_GE(model.rate_per_machine_sec, 0.0);
  AMPC_CHECK_GE(model.machines, 1);
  return SimulateWithLambda(
      round_seconds,
      model.rate_per_machine_sec * static_cast<double>(model.machines),
      discipline, trials, seed);
}

PreemptionTrialStats SimulatePreemptions(
    const std::vector<double>& round_seconds,
    const std::vector<double>& per_machine_rates,
    RecoveryDiscipline discipline, int trials, uint64_t seed) {
  AMPC_CHECK_GE(per_machine_rates.size(), 1u);
  double lambda = 0.0;
  for (const double rate : per_machine_rates) {
    AMPC_CHECK_GE(rate, 0.0);
    lambda += rate;
  }
  return SimulateWithLambda(round_seconds, lambda, discipline, trials, seed);
}

FaultInjector::FaultInjector(double rate_per_machine_sec, int machines,
                             uint64_t seed)
    : FaultInjector(Config{rate_per_machine_sec, machines, seed}) {}

FaultInjector::FaultInjector(const Config& config) {
  AMPC_CHECK_GE(config.rate_per_machine_sec, 0.0);
  AMPC_CHECK_GE(config.domain_fault_rate_sec, 0.0);
  AMPC_CHECK_GE(config.warning_lead_sec, 0.0);
  AMPC_CHECK_GE(config.machines, 1);
  rate_ = config.rate_per_machine_sec;
  domain_rate_ = config.domain_fault_rate_sec;
  machines_per_domain_ = config.machines_per_domain;
  machines_ = config.machines;
  warning_lead_ = config.warning_lead_sec;
  if (rate_ > 0.0) {
    rng_.reserve(machines_);
    next_arrival_.reserve(machines_);
    for (int m = 0; m < machines_; ++m) {
      // One stream per machine, seeded by (machine, seed) alone: the
      // schedule is independent of everything else the job does.
      rng_.emplace_back(Hash64(static_cast<uint64_t>(m),
                               config.seed ^ 0x696e6a656374ULL));
      next_arrival_.push_back(NextGap(m));
    }
    machine_warned_.assign(machines_, 0);
  }
  if (domain_rate_ > 0.0) {
    const int per = std::max(1, machines_per_domain_);
    const int domains = (machines_ + per - 1) / per;
    domain_rng_.reserve(domains);
    domain_next_arrival_.reserve(domains);
    for (int d = 0; d < domains; ++d) {
      // One stream per rack-level domain, seeded by (domain, seed)
      // alone — same purity contract as the machine streams.
      domain_rng_.emplace_back(Hash64(static_cast<uint64_t>(d),
                                      config.seed ^ 0x646f6d61696eULL));
      domain_next_arrival_.push_back(NextDomainGap(d));
    }
    domain_warned_.assign(domains, 0);
  }
}

double FaultInjector::NextGap(int machine) {
  return -std::log(1.0 - rng_[machine].NextDouble()) / rate_;
}

double FaultInjector::NextDomainGap(int domain) {
  return -std::log(1.0 - domain_rng_[domain].NextDouble()) / domain_rate_;
}

std::vector<FaultEvent> FaultInjector::AdvanceTo(double t) {
  std::vector<FaultEvent> events;
  if (!enabled()) {
    now_ = std::max(now_, t);
    return events;
  }
  AMPC_CHECK_GE(t, now_);
  // Warnings look ahead of the kill horizon: an arrival at time A is
  // announced once its warning instant A - lead has been reached, i.e.
  // once A <= t + lead. A warning drawn with its instant already in the
  // past (lead longer than the gap since the last harvest) is clamped
  // into [now, t] — late notice beats none.
  const double warn_horizon = t + warning_lead_;
  for (int m = 0; m < static_cast<int>(next_arrival_.size()); ++m) {
    // The replacement machine inherits the same arrival stream, so one
    // interval can kill the same slot repeatedly.
    for (;;) {
      if (warning_lead_ > 0.0 && !machine_warned_[m] &&
          next_arrival_[m] <= warn_horizon) {
        const double when =
            std::clamp(next_arrival_[m] - warning_lead_, now_, t);
        events.push_back(FaultEvent{when, m, -1, true});
        machine_warned_[m] = 1;
      }
      if (next_arrival_[m] > t) break;
      events.push_back(FaultEvent{next_arrival_[m], m, -1, false});
      next_arrival_[m] += NextGap(m);
      machine_warned_[m] = 0;
    }
  }
  const int per = std::max(1, machines_per_domain_);
  for (int d = 0; d < static_cast<int>(domain_next_arrival_.size()); ++d) {
    const int lo = d * per;
    const int hi = std::min(machines_, lo + per);
    for (;;) {
      if (warning_lead_ > 0.0 && !domain_warned_[d] &&
          domain_next_arrival_[d] <= warn_horizon) {
        const double when =
            std::clamp(domain_next_arrival_[d] - warning_lead_, now_, t);
        for (int m = lo; m < hi; ++m) {
          events.push_back(FaultEvent{when, m, d, true});
        }
        domain_warned_[d] = 1;
      }
      if (domain_next_arrival_[d] > t) break;
      for (int m = lo; m < hi; ++m) {
        events.push_back(FaultEvent{domain_next_arrival_[d], m, d, false});
      }
      domain_next_arrival_[d] += NextDomainGap(d);
      domain_warned_[d] = 0;
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.warning != b.warning) return a.warning;  // warnings first
              if (a.domain != b.domain) return a.domain < b.domain;
              return a.machine < b.machine;
            });
  now_ = t;
  return events;
}

void FaultInjector::SkipTo(double t) {
  if (!enabled()) {
    now_ = std::max(now_, t);
    return;
  }
  AMPC_CHECK_GE(t, now_);
  for (int m = 0; m < static_cast<int>(next_arrival_.size()); ++m) {
    // Memoryless: restarting the exponential clock at t is the same
    // distribution as conditioning on no arrival in (now, t]. A
    // *warned* arrival is exempt: the preemption was announced, so it
    // is committed — it rides through the skipped interval and lands on
    // the next AdvanceTo, keeping every warning paired with exactly one
    // kill.
    if (!machine_warned_.empty() && machine_warned_[m]) continue;
    while (next_arrival_[m] <= t) next_arrival_[m] = t + NextGap(m);
  }
  for (int d = 0; d < static_cast<int>(domain_next_arrival_.size()); ++d) {
    if (!domain_warned_.empty() && domain_warned_[d]) continue;
    while (domain_next_arrival_[d] <= t) {
      domain_next_arrival_[d] = t + NextDomainGap(d);
    }
  }
  now_ = t;
}

}  // namespace ampc::sim
