// A miniature Flume/Beam-style dataflow layer over the cluster simulator.
//
// The paper implements everything in Flume-C++ (Section 5.1): stages
// consume PCollections and emit PCollections, and the only way workers
// exchange bulk data is a *shuffle* (GroupByKey), which writes to durable
// storage. This header reproduces that programming model in-process:
// ParDo runs a stage in parallel and counts a cheap round; GroupByKey
// counts a costly shuffle round and charges its wire bytes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/concurrent_bag.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "kv/byte_size.h"
#include "sim/cluster.h"

namespace ampc::mpc {

/// A distributed multi-element dataset (materialized in memory here).
template <typename T>
using PCollection = std::vector<T>;

/// A key-value record.
template <typename K, typename V>
using KV = std::pair<K, V>;

/// Runs `fn(element, emit)` over the input in parallel; `emit` appends
/// output elements. Counts one cheap (non-shuffle) round.
template <typename In, typename Out, typename Fn>
PCollection<Out> ParDo(sim::Cluster& cluster, const std::string& phase,
                       const PCollection<In>& input, Fn fn) {
  WallTimer timer;
  ConcurrentBag<Out> bag;
  ParallelForChunked(
      cluster.pool(), 0, static_cast<int64_t>(input.size()), 1024,
      [&](int64_t lo, int64_t hi) {
        std::vector<Out> local;
        auto emit = [&local](Out value) { local.push_back(std::move(value)); };
        for (int64_t i = lo; i < hi; ++i) fn(input[i], emit);
        bag.Merge(std::move(local));
      });
  cluster.AccountMapRound(phase);
  cluster.metrics().AddTime("wall:" + phase, timer.Seconds());
  cluster.metrics().AddTime("wall_total", timer.Seconds());
  return bag.Take();
}

/// Wire size of a PCollection of KV records.
template <typename K, typename V>
int64_t ShuffleBytes(const PCollection<KV<K, V>>& records) {
  int64_t bytes = 0;
  for (const auto& [k, v] : records) {
    bytes += kv::KvByteSize(k) + kv::KvByteSize(v);
  }
  return bytes;
}

/// Groups records by key. Counts one shuffle and charges the records'
/// wire bytes. Output groups are sorted by key; values preserve no
/// particular order (as in a real shuffle).
template <typename K, typename V>
PCollection<KV<K, std::vector<V>>> GroupByKey(
    sim::Cluster& cluster, const std::string& phase,
    PCollection<KV<K, V>> records) {
  WallTimer timer;
  const int64_t bytes = ShuffleBytes(records);
  std::sort(records.begin(), records.end(),
            [](const KV<K, V>& a, const KV<K, V>& b) {
              return a.first < b.first;
            });
  PCollection<KV<K, std::vector<V>>> out;
  for (size_t i = 0; i < records.size();) {
    size_t j = i;
    std::vector<V> values;
    while (j < records.size() && records[j].first == records[i].first) {
      values.push_back(std::move(records[j].second));
      ++j;
    }
    out.emplace_back(records[i].first, std::move(values));
    i = j;
  }
  cluster.AccountShuffle(phase, bytes, timer.Seconds());
  return out;
}

/// Keys of a KV collection.
template <typename K, typename V>
PCollection<K> Keys(const PCollection<KV<K, V>>& records) {
  PCollection<K> out;
  out.reserve(records.size());
  for (const auto& [k, v] : records) out.push_back(k);
  return out;
}

/// Concatenates collections.
template <typename T>
PCollection<T> Flatten(std::vector<PCollection<T>> parts) {
  PCollection<T> out;
  for (auto& part : parts) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

}  // namespace ampc::mpc
