// A miniature Flume/Beam-style dataflow layer over the cluster simulator.
//
// The paper implements everything in Flume-C++ (Section 5.1): stages
// consume PCollections and emit PCollections, and the only way workers
// exchange bulk data is a *shuffle* (GroupByKey), which writes to durable
// storage. This header reproduces that programming model in-process:
// ParDo runs a stage in parallel and counts a cheap round; GroupByKey
// counts a costly shuffle round and charges its wire bytes.
//
// Both operators are backed by the primitives in common/parallel.h and
// are deterministic: ParDo assembles per-chunk output slots in index
// order (its output order equals the serial emission order), and
// GroupByKey hash-partitions records into shards, sorts and groups each
// shard concurrently, and reassembles the groups in global key order.
// The shuffle is the cost the paper's evaluation revolves around
// (Table 3, Fig. 3), so it must scale with cores to be a fair baseline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "kv/byte_size.h"
#include "sim/cluster.h"

namespace ampc::mpc {

/// A distributed multi-element dataset (materialized in memory here).
template <typename T>
using PCollection = std::vector<T>;

/// A key-value record.
template <typename K, typename V>
using KV = std::pair<K, V>;

/// Concatenates collections (in order, with one exact allocation).
template <typename T>
PCollection<T> Flatten(std::vector<PCollection<T>> parts) {
  int64_t total = 0;
  for (const PCollection<T>& part : parts) {
    total += static_cast<int64_t>(part.size());
  }
  PCollection<T> out;
  out.reserve(total);
  for (auto& part : parts) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

/// Runs `fn(element, emit)` over the input on `pool`; `emit` appends
/// output elements. Chunk outputs land in per-chunk slots that are
/// concatenated in index order, so the result is exactly the sequence a
/// serial run would emit — deterministic and mutex-free. This is the pure
/// data-plane half of ParDo; the Cluster overload below adds accounting.
template <typename In, typename Out, typename Fn>
PCollection<Out> ParDoEngine(ThreadPool& pool, const PCollection<In>& input,
                             Fn fn) {
  const std::vector<IndexChunk> chunks =
      SplitIndexChunks(0, static_cast<int64_t>(input.size()), 1024,
                       DefaultChunksForPool(pool));
  std::vector<std::vector<Out>> slots(chunks.size());
  ParallelForEachChunk(pool, chunks, [&](int64_t c) {
    std::vector<Out>& local = slots[c];
    auto emit = [&local](Out value) { local.push_back(std::move(value)); };
    for (int64_t i = chunks[c].begin; i < chunks[c].end; ++i) {
      fn(input[i], emit);
    }
  });
  return Flatten(std::move(slots));
}

/// Runs `fn(element, emit)` over the input in parallel; `emit` appends
/// output elements. Counts one cheap (non-shuffle) round. Output order is
/// deterministic (equal to serial emission order).
template <typename In, typename Out, typename Fn>
PCollection<Out> ParDo(sim::Cluster& cluster, const std::string& phase,
                       const PCollection<In>& input, Fn fn) {
  WallTimer timer;
  PCollection<Out> out = ParDoEngine<In, Out>(cluster.pool(), input, fn);
  cluster.AccountMapRound(phase);
  cluster.metrics().AddTime("wall:" + phase, timer.Seconds());
  cluster.metrics().AddTime("wall_total", timer.Seconds());
  return out;
}

/// Wire size of a PCollection of KV records.
template <typename K, typename V>
int64_t ShuffleBytes(const PCollection<KV<K, V>>& records) {
  int64_t bytes = 0;
  for (const auto& [k, v] : records) {
    bytes += kv::KvByteSize(k) + kv::KvByteSize(v);
  }
  return bytes;
}

/// Parallel wire-size accounting for large collections.
template <typename K, typename V>
int64_t ShuffleBytes(ThreadPool& pool, const PCollection<KV<K, V>>& records) {
  return ParallelSum<int64_t>(
      pool, static_cast<int64_t>(records.size()), 0, [&records](int64_t i) {
        return kv::KvByteSize(records[i].first) +
               kv::KvByteSize(records[i].second);
      });
}

namespace dataflow_internal {

// Salt for the shard hash; fixed so shard assignment is reproducible.
constexpr uint64_t kShardSalt = 0x73686172645f6b65ULL;

// Below this many records the serial sort-and-scan path wins.
constexpr int64_t kShardCutoff = 1 << 14;

template <typename K>
int ShardOf(const K& key, int num_shards) {
  return static_cast<int>(
      Hash64(static_cast<uint64_t>(std::hash<K>{}(key)), kShardSalt) %
      static_cast<uint64_t>(num_shards));
}

// Sorts `records` by key (stably, so values keep their input order) and
// folds runs of equal keys into groups appended to `out`.
template <typename K, typename V>
void SortAndGroup(std::vector<KV<K, V>>& records,
                  PCollection<KV<K, std::vector<V>>>& out) {
  std::stable_sort(records.begin(), records.end(),
            [](const KV<K, V>& a, const KV<K, V>& b) {
              return a.first < b.first;
            });
  for (size_t i = 0; i < records.size();) {
    size_t j = i;
    std::vector<V> values;
    while (j < records.size() && records[j].first == records[i].first) {
      values.push_back(std::move(records[j].second));
      ++j;
    }
    out.emplace_back(records[i].first, std::move(values));
    i = j;
  }
}

}  // namespace dataflow_internal

/// The data plane of a shuffle: groups `records` by key, returning groups
/// sorted by key. K must be std::hash-able as well as operator<-ordered
/// (the serial engine needed only the ordering; sharding adds the hash). Records are hash-partitioned into one shard per pool
/// thread under chunked parallelism (a record's shard depends only on its
/// key, so all records of a key meet in one shard); each shard is sorted
/// and grouped concurrently; the shards' groups are concatenated and the
/// group headers re-sorted so the output is globally key-sorted. Keys are
/// unique across shards, so the final sort has no ties and the whole
/// pipeline is deterministic: chunk-order gathering plus a stable shard
/// sort make each group's value order the records' input order, so the
/// result is byte-identical to the serial path for any thread count.
template <typename K, typename V>
PCollection<KV<K, std::vector<V>>> GroupByKeyEngine(
    ThreadPool& pool, PCollection<KV<K, V>> records) {
  const int64_t n = static_cast<int64_t>(records.size());
  PCollection<KV<K, std::vector<V>>> out;
  if (n == 0) return out;

  const int num_shards = std::max(1, pool.num_threads());
  if (num_shards == 1 || n < dataflow_internal::kShardCutoff) {
    dataflow_internal::SortAndGroup(records, out);
    return out;
  }

  // Scatter: each chunk splits its records into per-shard parts. Parts
  // are indexed [chunk][shard] so no two tasks touch the same vector.
  const std::vector<IndexChunk> chunks =
      SplitIndexChunks(0, n, 4096, DefaultChunksForPool(pool));
  const int64_t num_chunks = static_cast<int64_t>(chunks.size());
  std::vector<std::vector<KV<K, V>>> parts(num_chunks * num_shards);
  ParallelForEachChunk(pool, chunks, [&](int64_t c) {
    std::vector<KV<K, V>>* chunk_parts = &parts[c * num_shards];
    // Count first so each part is allocated exactly once; the shard hash
    // is cheap relative to the reallocation churn it avoids.
    std::vector<int64_t> counts(num_shards, 0);
    for (int64_t i = chunks[c].begin; i < chunks[c].end; ++i) {
      ++counts[dataflow_internal::ShardOf(records[i].first, num_shards)];
    }
    for (int s = 0; s < num_shards; ++s) chunk_parts[s].reserve(counts[s]);
    for (int64_t i = chunks[c].begin; i < chunks[c].end; ++i) {
      const int s = dataflow_internal::ShardOf(records[i].first, num_shards);
      chunk_parts[s].push_back(std::move(records[i]));
    }
  });
  records.clear();
  records.shrink_to_fit();

  // Gather + sort + group each shard concurrently. Chunk-order
  // concatenation keeps each shard's record sequence deterministic.
  std::vector<PCollection<KV<K, std::vector<V>>>> shard_groups(num_shards);
  ParallelFor(pool, 0, num_shards, 1, [&](int64_t s) {
    int64_t shard_size = 0;
    for (int64_t c = 0; c < num_chunks; ++c) {
      shard_size += static_cast<int64_t>(parts[c * num_shards + s].size());
    }
    std::vector<KV<K, V>> shard;
    shard.reserve(shard_size);
    for (int64_t c = 0; c < num_chunks; ++c) {
      std::vector<KV<K, V>>& part = parts[c * num_shards + s];
      shard.insert(shard.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
    }
    dataflow_internal::SortAndGroup(shard, shard_groups[s]);
  });

  // Concatenate the shards' groups and restore global key order. Group
  // headers are few relative to records and moves are cheap, so this
  // final sort is a small fraction of the shuffle.
  out = Flatten(std::move(shard_groups));
  ParallelSort(pool, out,
               [](const KV<K, std::vector<V>>& a,
                  const KV<K, std::vector<V>>& b) { return a.first < b.first; });
  return out;
}

/// Groups records by key. Counts one shuffle and charges the records'
/// wire bytes. Output groups are sorted by key; value order within a
/// group is deterministic (input order of that key's records).
template <typename K, typename V>
PCollection<KV<K, std::vector<V>>> GroupByKey(
    sim::Cluster& cluster, const std::string& phase,
    PCollection<KV<K, V>> records) {
  WallTimer timer;
  const int64_t bytes = ShuffleBytes(cluster.pool(), records);
  PCollection<KV<K, std::vector<V>>> out =
      GroupByKeyEngine(cluster.pool(), std::move(records));
  cluster.AccountShuffle(phase, bytes, timer.Seconds());
  return out;
}

/// Keys of a KV collection.
template <typename K, typename V>
PCollection<K> Keys(const PCollection<KV<K, V>>& records) {
  PCollection<K> out;
  out.reserve(records.size());
  for (const auto& [k, v] : records) out.push_back(k);
  return out;
}

}  // namespace ampc::mpc
