// Deterministic hashing and pseudo-random generation.
//
// All randomness in the library flows through these primitives so that (a)
// AMPC and MPC implementations given the same seed observe the *same*
// random priorities — the paper relies on this to compare outputs — and
// (b) results are reproducible across runs and thread schedules.
#pragma once

#include <cstdint>
#include <limits>

namespace ampc {

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixing function.
/// Stateless; suitable for deriving per-id priorities (paper Fig. 1:
/// "Uses hashing to determine a priority for each node").
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hashes `value` under a seed; distinct seeds give independent streams.
inline uint64_t Hash64(uint64_t value, uint64_t seed) {
  return Mix64(value ^ Mix64(seed));
}

/// Combines two hashes (order-sensitive).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Hash of an undirected edge that is symmetric in its endpoints, so both
/// copies (u,v) and (v,u) derive the same edge priority.
inline uint64_t HashEdge(uint64_t u, uint64_t v, uint64_t seed) {
  uint64_t lo = u < v ? u : v;
  uint64_t hi = u < v ? v : u;
  return Hash64(HashCombine(lo, hi), seed);
}

/// Maps a 64-bit hash to a double in [0, 1).
inline double ToUnitDouble(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// A small, fast xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed);

  uint64_t Next();
  uint64_t operator()() { return Next(); }

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Uniform in [0, bound) without modulo bias (Lemire reduction).
  uint64_t NextBelow(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble() { return ToUnitDouble(Next()); }

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
};

}  // namespace ampc
