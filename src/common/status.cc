#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace ampc {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kIoError:
      return "IO_ERROR";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

namespace internal {

void DieOnBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: accessed value of errored StatusOr: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace ampc
