#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace ampc {

ThreadPool::ThreadPool(int num_threads) {
  AMPC_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    AMPC_CHECK(!shutdown_);
    queue_.push(std::move(task));
    ++outstanding_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--outstanding_ == 0) done_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(
      std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

void ParallelForChunked(ThreadPool& pool, int64_t begin, int64_t end,
                        int64_t grain,
                        const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t n = end - begin;
  const int64_t max_chunks = 4 * pool.num_threads();
  const int64_t chunk = std::max(grain, (n + max_chunks - 1) / max_chunks);
  if (n <= chunk) {
    fn(begin, end);
    return;
  }
  // Per-call completion latch so that concurrent ParallelFor calls sharing
  // one pool do not wait on each other's tasks.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    int64_t remaining;
  };
  Latch latch;
  latch.remaining = (n + chunk - 1) / chunk;
  for (int64_t lo = begin; lo < end; lo += chunk) {
    const int64_t hi = std::min(end, lo + chunk);
    pool.Schedule([&fn, &latch, lo, hi] {
      fn(lo, hi);
      std::unique_lock<std::mutex> lock(latch.mu);
      if (--latch.remaining == 0) latch.cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(latch.mu);
  latch.cv.wait(lock, [&latch] { return latch.remaining == 0; });
}

void ParallelFor(ThreadPool& pool, int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t)>& fn) {
  ParallelForChunked(pool, begin, end, grain,
                     [&fn](int64_t lo, int64_t hi) {
                       for (int64_t i = lo; i < hi; ++i) fn(i);
                     });
}

}  // namespace ampc
