#include "common/frontier.h"

namespace ampc {

const char* FrontierModeName(FrontierMode mode) {
  switch (mode) {
    case FrontierMode::kSparse:
      return "sparse";
    case FrontierMode::kDense:
      return "dense";
    case FrontierMode::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

bool ParseFrontierMode(const std::string& name, FrontierMode* mode) {
  if (name == "sparse") {
    *mode = FrontierMode::kSparse;
    return true;
  }
  if (name == "dense") {
    *mode = FrontierMode::kDense;
    return true;
  }
  if (name == "hybrid") {
    *mode = FrontierMode::kHybrid;
    return true;
  }
  return false;
}

bool FrontierPolicy::UseDense(int64_t frontier_size, int64_t frontier_edges) {
  switch (mode_) {
    case FrontierMode::kSparse:
      dense_ = false;
      return dense_;
    case FrontierMode::kDense:
      dense_ = true;
      return dense_;
    case FrontierMode::kHybrid:
      break;
  }
  // Hysteresis: the grow threshold (edges-based) only switches sparse
  // -> dense and the shrink threshold (size-based) only switches dense
  // -> sparse. A frontier inside the band between them keeps its
  // previous representation.
  if (!dense_) {
    if (static_cast<double>(frontier_edges) >
        static_cast<double>(total_edges_) / alpha_) {
      dense_ = true;
    }
  } else {
    if (static_cast<double>(frontier_size) <
        static_cast<double>(num_vertices_) / beta_) {
      dense_ = false;
    }
  }
  return dense_;
}

}  // namespace ampc
