// An atomic word-packed bitmap — the dense frontier representation of
// the frontier engine (common/frontier.h).
//
// A dense frontier is a bit per vertex, packed into 64-bit words that
// many workers set concurrently while building the next frontier; the
// whole bitmap is then broadcast to every machine of the simulated
// cluster (sim::Cluster::RunPullPhase charges ceil(bits/8) wire bytes
// for it), and each machine tests membership locally while sweeping its
// own shard. Bit -> word assignment is fixed, so the bitmap's contents
// are a pure function of which bits were set — never of the order the
// setters ran in — matching the library-wide determinism contract.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace ampc {

/// Fixed-size bitmap over [0, num_bits) with lock-free concurrent
/// setters (relaxed atomic fetch-or). Readers racing setters see each
/// bit either set or not yet set — fine for frontier construction,
/// where every Set happens-before the round that consumes the bitmap
/// (the map-phase latch is the barrier).
class AtomicBitmap {
 public:
  AtomicBitmap() = default;
  explicit AtomicBitmap(int64_t num_bits)
      : num_bits_(num_bits),
        words_((num_bits + kWordBits - 1) / kWordBits) {}

  int64_t num_bits() const { return num_bits_; }
  int64_t num_words() const { return static_cast<int64_t>(words_.size()); }

  /// Wire size of the bitmap when broadcast: one bit per entry, byte
  /// padded (the n/8 of the pull-mode broadcast charge).
  int64_t SizeBytes() const { return (num_bits_ + 7) / 8; }

  /// Sets bit `i`. Safe to call concurrently with other setters.
  void Set(int64_t i) {
    words_[i >> kWordShift].fetch_or(uint64_t{1} << (i & kWordMask),
                                     std::memory_order_relaxed);
  }

  /// Sets bit `i` and reports whether this call flipped it (false when
  /// some earlier Set/TestAndSet already had it). The claim a sliding
  /// queue uses to push each newly-discovered vertex exactly once.
  bool TestAndSet(int64_t i) {
    const uint64_t mask = uint64_t{1} << (i & kWordMask);
    return (words_[i >> kWordShift].fetch_or(
                mask, std::memory_order_relaxed) &
            mask) == 0;
  }

  bool Test(int64_t i) const {
    return (words_[i >> kWordShift].load(std::memory_order_relaxed) &
            (uint64_t{1} << (i & kWordMask))) != 0;
  }

  /// Raw word `w` — the unit a dense sweep scans (skip zero words).
  uint64_t Word(int64_t w) const {
    return words_[w].load(std::memory_order_relaxed);
  }

  /// Number of set bits. Not atomic with respect to concurrent setters;
  /// call after the building phase's barrier.
  int64_t Count() const {
    int64_t count = 0;
    for (const auto& word : words_) {
      count += std::popcount(word.load(std::memory_order_relaxed));
    }
    return count;
  }

  /// Zeroes every bit. Not safe against concurrent setters.
  void Clear() {
    for (auto& word : words_) word.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr int kWordBits = 64;
  static constexpr int kWordShift = 6;
  static constexpr int kWordMask = 63;

  int64_t num_bits_ = 0;
  std::vector<std::atomic<uint64_t>> words_;
};

}  // namespace ampc
