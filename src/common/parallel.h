// Reusable parallel primitives over ThreadPool: ParallelTabulate,
// ParallelReduce and ParallelSort (a deterministic sample sort).
//
// The paper's practical claim is that shuffle cost dominates MPC graph
// algorithms (Section 5.7, Table 3), so the simulated runtime's shuffle
// path must itself scale with cores to be a credible baseline. These
// primitives are the Parlay-style building blocks the shuffle engine in
// mpc/dataflow.h is written against: partition deterministically, process
// shards in parallel, reassemble in index order. Every primitive here
// produces output that is a pure function of its input — never of the
// thread schedule — because algorithm outputs are compared across
// runtimes (see common/random.h for the same contract on randomness).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iterator>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace ampc {

/// A half-open index range [begin, end).
struct IndexChunk {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t size() const { return end - begin; }
};

/// Splits [begin, end) into at most `max_chunks` contiguous chunks of at
/// least `grain` indices each. Boundaries depend only on the arguments
/// (never on thread scheduling), so per-chunk results can be reassembled
/// in chunk order to give deterministic output. Returns an empty vector
/// when begin >= end.
std::vector<IndexChunk> SplitIndexChunks(int64_t begin, int64_t end,
                                         int64_t grain, int64_t max_chunks);

/// Chunk count used by the primitives below for a pool: enough chunks to
/// load-balance, few enough to keep per-chunk overhead negligible.
int64_t DefaultChunksForPool(const ThreadPool& pool);

/// Runs fn(c) for every chunk index c in [0, chunks.size()) on the pool.
/// Blocks until complete.
void ParallelForEachChunk(ThreadPool& pool,
                          const std::vector<IndexChunk>& chunks,
                          const std::function<void(int64_t)>& fn);

/// Builds {gen(0), gen(1), ..., gen(n-1)} in parallel. T must be default
/// constructible; gen must be safe to call concurrently for distinct i.
template <typename T, typename Gen>
std::vector<T> ParallelTabulate(ThreadPool& pool, int64_t n, Gen gen,
                                int64_t grain = 2048) {
  std::vector<T> out(std::max<int64_t>(n, 0));
  ParallelForChunked(pool, 0, n, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) out[i] = gen(i);
  });
  return out;
}

/// Reduces map(i) for i in [begin, end) with `reduce`, starting from
/// `identity`. Each chunk folds locally; partials are folded in chunk
/// order, so the result is deterministic for any associative `reduce`
/// (it need not be commutative). Returns `identity` on an empty range.
template <typename T, typename MapFn, typename ReduceOp>
T ParallelReduce(ThreadPool& pool, int64_t begin, int64_t end, T identity,
                 MapFn map, ReduceOp reduce, int64_t grain = 1024) {
  const std::vector<IndexChunk> chunks =
      SplitIndexChunks(begin, end, grain, DefaultChunksForPool(pool));
  if (chunks.empty()) return identity;
  if (chunks.size() == 1) {
    T acc = identity;
    for (int64_t i = begin; i < end; ++i) acc = reduce(std::move(acc), map(i));
    return acc;
  }
  std::vector<T> partial(chunks.size(), identity);
  ParallelForEachChunk(pool, chunks, [&](int64_t c) {
    T acc = identity;
    for (int64_t i = chunks[c].begin; i < chunks[c].end; ++i) {
      acc = reduce(std::move(acc), map(i));
    }
    partial[c] = std::move(acc);
  });
  T acc = identity;
  for (T& p : partial) acc = reduce(std::move(acc), std::move(p));
  return acc;
}

/// Convenience overload: sums map(i) over [0, n) with operator+.
template <typename T, typename MapFn>
T ParallelSum(ThreadPool& pool, int64_t n, T identity, MapFn map,
              int64_t grain = 1024) {
  return ParallelReduce(
      pool, 0, n, identity, map,
      [](T a, T b) { return std::move(a) + std::move(b); }, grain);
}

namespace parallel_internal {

// Below this size the sequential sort wins outright.
constexpr int64_t kSortCutoff = 1 << 13;

// Merges `runs` (each sorted under cmp) located back-to-back inside
// [first, last) by a binary tree of std::inplace_merge passes. `bounds`
// holds the run boundaries as offsets from `first` (bounds.front() == 0,
// bounds.back() == last - first).
template <typename It, typename Cmp>
void MergeAdjacentRuns(It first, std::vector<int64_t> bounds, Cmp cmp) {
  while (bounds.size() > 2) {
    std::vector<int64_t> next;
    next.reserve(bounds.size() / 2 + 1);
    next.push_back(bounds[0]);
    for (size_t i = 0; i + 2 < bounds.size(); i += 2) {
      std::inplace_merge(first + bounds[i], first + bounds[i + 1],
                         first + bounds[i + 2], cmp);
      next.push_back(bounds[i + 2]);
    }
    if ((bounds.size() - 1) % 2 == 1) next.push_back(bounds.back());
    bounds = std::move(next);
  }
}

}  // namespace parallel_internal

/// Sorts `items` under `cmp` using a stable, deterministic sample sort:
///   1. split into chunks and stable-sort each chunk on the pool;
///   2. pick bucket splitters from a regular sample of the sorted chunks;
///   3. locate each chunk's bucket boundaries by binary search (chunks
///      are sorted, so every bucket is one contiguous run per chunk);
///   4. scatter runs to their bucket's output region and merge the runs
///      of each bucket in parallel.
/// Chunks are gathered in index order and every merge is stable, so the
/// result equals std::stable_sort's: equal elements keep input order, and
/// the output is a pure function of the input — identical across runs
/// and thread counts. Falls back to std::stable_sort for small inputs or
/// single-thread pools.
template <typename T, typename Cmp = std::less<T>>
void ParallelSort(ThreadPool& pool, std::vector<T>& items, Cmp cmp = Cmp()) {
  const int64_t n = static_cast<int64_t>(items.size());
  if (n < parallel_internal::kSortCutoff || pool.num_threads() <= 1) {
    std::stable_sort(items.begin(), items.end(), cmp);
    return;
  }

  const std::vector<IndexChunk> chunks = SplitIndexChunks(
      0, n, parallel_internal::kSortCutoff / 4, DefaultChunksForPool(pool));
  const int64_t num_chunks = static_cast<int64_t>(chunks.size());
  ParallelForEachChunk(pool, chunks, [&](int64_t c) {
    std::stable_sort(items.begin() + chunks[c].begin,
                     items.begin() + chunks[c].end, cmp);
  });

  // A regular sample (every chunk contributes `kOversample` evenly spaced
  // elements) is already sorted within each chunk; merging via sort is
  // cheap because the sample is tiny. Sampling works on indices so heavy
  // elements (e.g. groups holding large value vectors) are never copied.
  constexpr int64_t kOversample = 8;
  const int64_t num_buckets = num_chunks;
  std::vector<int64_t> sample;
  sample.reserve(num_chunks * kOversample);
  for (const IndexChunk& chunk : chunks) {
    for (int64_t s = 0; s < kOversample; ++s) {
      const int64_t offset = chunk.size() * (2 * s + 1) / (2 * kOversample);
      sample.push_back(chunk.begin + offset);
    }
  }
  std::sort(sample.begin(), sample.end(), [&](int64_t a, int64_t b) {
    return cmp(items[a], items[b]);
  });
  std::vector<int64_t> splitters;  // indices into `items`
  splitters.reserve(num_buckets - 1);
  for (int64_t b = 1; b < num_buckets; ++b) {
    splitters.push_back(
        sample[b * static_cast<int64_t>(sample.size()) / num_buckets]);
  }

  // run_end[c][b]: end offset (within chunk c) of the run bound for
  // bucket b. Runs are contiguous because each chunk is sorted. Splitter
  // indices stay valid here: items is not mutated again until the
  // scatter below.
  std::vector<std::vector<int64_t>> run_end(
      num_chunks, std::vector<int64_t>(num_buckets, 0));
  ParallelForEachChunk(pool, chunks, [&](int64_t c) {
    const auto chunk_begin = items.begin() + chunks[c].begin;
    const auto chunk_end = items.begin() + chunks[c].end;
    for (int64_t b = 0; b + 1 < num_buckets; ++b) {
      run_end[c][b] =
          std::lower_bound(chunk_begin, chunk_end, splitters[b],
                           [&](const T& element, int64_t splitter) {
                             return cmp(element, items[splitter]);
                           }) -
          chunk_begin;
    }
    run_end[c][num_buckets - 1] = chunks[c].size();
  });

  // Bucket output regions: bucket b holds run b of every chunk, chunks in
  // index order (this fixes the order of equal elements deterministically).
  std::vector<int64_t> bucket_begin(num_buckets + 1, 0);
  for (int64_t b = 0; b < num_buckets; ++b) {
    int64_t size = 0;
    for (int64_t c = 0; c < num_chunks; ++c) {
      const int64_t lo = b == 0 ? 0 : run_end[c][b - 1];
      size += run_end[c][b] - lo;
    }
    bucket_begin[b + 1] = bucket_begin[b] + size;
  }

  std::vector<T> scratch(n);
  std::vector<IndexChunk> buckets(num_buckets);
  for (int64_t b = 0; b < num_buckets; ++b) {
    buckets[b] = {bucket_begin[b], bucket_begin[b + 1]};
  }
  ParallelForEachChunk(pool, buckets, [&](int64_t b) {
    int64_t out = bucket_begin[b];
    std::vector<int64_t> bounds;
    bounds.reserve(num_chunks + 1);
    bounds.push_back(0);
    for (int64_t c = 0; c < num_chunks; ++c) {
      const int64_t lo = chunks[c].begin + (b == 0 ? 0 : run_end[c][b - 1]);
      const int64_t hi = chunks[c].begin + run_end[c][b];
      std::move(items.begin() + lo, items.begin() + hi, scratch.begin() + out);
      out += hi - lo;
      if (out - bucket_begin[b] != bounds.back()) {
        bounds.push_back(out - bucket_begin[b]);
      }
    }
    parallel_internal::MergeAdjacentRuns(scratch.begin() + bucket_begin[b],
                                         std::move(bounds), cmp);
  });
  items = std::move(scratch);
}

}  // namespace ampc
