// Reusable parallel primitives over ThreadPool: ParallelTabulate,
// ParallelReduce and ParallelSort (a deterministic sample sort).
//
// The paper's practical claim is that shuffle cost dominates MPC graph
// algorithms (Section 5.7, Table 3), so the simulated runtime's shuffle
// path must itself scale with cores to be a credible baseline. These
// primitives are the Parlay-style building blocks the shuffle engine in
// mpc/dataflow.h is written against: partition deterministically, process
// shards in parallel, reassemble in index order. Every primitive here
// produces output that is a pure function of its input — never of the
// thread schedule — because algorithm outputs are compared across
// runtimes (see common/random.h for the same contract on randomness).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iterator>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace ampc {

/// A half-open index range [begin, end).
struct IndexChunk {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t size() const { return end - begin; }
};

/// Splits [begin, end) into at most `max_chunks` contiguous chunks of at
/// least `grain` indices each. Boundaries depend only on the arguments
/// (never on thread scheduling), so per-chunk results can be reassembled
/// in chunk order to give deterministic output. Returns an empty vector
/// when begin >= end.
std::vector<IndexChunk> SplitIndexChunks(int64_t begin, int64_t end,
                                         int64_t grain, int64_t max_chunks);

/// Chunk count used by the primitives below for a pool: enough chunks to
/// load-balance, few enough to keep per-chunk overhead negligible.
int64_t DefaultChunksForPool(const ThreadPool& pool);

/// Runs fn(c) for every chunk index c in [0, chunks.size()) on the pool.
/// Blocks until complete.
void ParallelForEachChunk(ThreadPool& pool,
                          const std::vector<IndexChunk>& chunks,
                          const std::function<void(int64_t)>& fn);

/// Builds {gen(0), gen(1), ..., gen(n-1)} in parallel. T must be default
/// constructible; gen must be safe to call concurrently for distinct i.
template <typename T, typename Gen>
std::vector<T> ParallelTabulate(ThreadPool& pool, int64_t n, Gen gen,
                                int64_t grain = 2048) {
  std::vector<T> out(std::max<int64_t>(n, 0));
  ParallelForChunked(pool, 0, n, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) out[i] = gen(i);
  });
  return out;
}

/// Reduces map(i) for i in [begin, end) with `reduce`, starting from
/// `identity`. Each chunk folds locally; partials are folded in chunk
/// order, so the result is deterministic for any associative `reduce`
/// (it need not be commutative). Returns `identity` on an empty range.
template <typename T, typename MapFn, typename ReduceOp>
T ParallelReduce(ThreadPool& pool, int64_t begin, int64_t end, T identity,
                 MapFn map, ReduceOp reduce, int64_t grain = 1024) {
  const std::vector<IndexChunk> chunks =
      SplitIndexChunks(begin, end, grain, DefaultChunksForPool(pool));
  if (chunks.empty()) return identity;
  if (chunks.size() == 1) {
    T acc = identity;
    for (int64_t i = begin; i < end; ++i) acc = reduce(std::move(acc), map(i));
    return acc;
  }
  std::vector<T> partial(chunks.size(), identity);
  ParallelForEachChunk(pool, chunks, [&](int64_t c) {
    T acc = identity;
    for (int64_t i = chunks[c].begin; i < chunks[c].end; ++i) {
      acc = reduce(std::move(acc), map(i));
    }
    partial[c] = std::move(acc);
  });
  T acc = identity;
  for (T& p : partial) acc = reduce(std::move(acc), std::move(p));
  return acc;
}

/// Convenience overload: sums map(i) over [0, n) with operator+.
template <typename T, typename MapFn>
T ParallelSum(ThreadPool& pool, int64_t n, T identity, MapFn map,
              int64_t grain = 1024) {
  return ParallelReduce(
      pool, 0, n, identity, map,
      [](T a, T b) { return std::move(a) + std::move(b); }, grain);
}

namespace parallel_internal {

// Below this size the sequential sort wins outright.
constexpr int64_t kSortCutoff = 1 << 13;

// Target elements per split-point merge segment.
constexpr int64_t kMergeGrain = 1 << 14;

// One contiguous piece of a two-run merge: stable-merges src[a_lo, a_hi)
// with src[b_lo, b_hi) into dst starting at `out`.
struct MergeSegment {
  int64_t a_lo, a_hi, b_lo, b_hi, out;
};

// Plans the stable merge of adjacent runs src[lo, mid) and src[mid, hi)
// as split-point segments of roughly kMergeGrain elements and appends
// them to `out`. Split points cut the larger run at even positions and
// locate the matching boundary in the other run by binary search; the
// tie rules (right boundary = lower_bound of a left split value, left
// boundary = upper_bound of a right split value) keep every element of
// the left run ahead of its equals from the right run, so the segmented
// merge equals one stable merge. The plan is a pure function of the
// data — never of the thread schedule.
template <typename T, typename Cmp>
void PlanMerge(const std::vector<T>& src, int64_t lo, int64_t mid,
               int64_t hi, Cmp cmp, std::vector<MergeSegment>& out) {
  const int64_t left_len = mid - lo;
  const int64_t right_len = hi - mid;
  const int64_t pieces =
      std::max<int64_t>(1, (hi - lo + kMergeGrain - 1) / kMergeGrain);
  if (pieces == 1) {
    out.push_back(MergeSegment{lo, mid, mid, hi, lo});
    return;
  }
  const bool split_left = left_len >= right_len;
  int64_t prev_a = lo, prev_b = mid, dst = lo;
  for (int64_t s = 1; s <= pieces; ++s) {
    int64_t cur_a = mid, cur_b = hi;
    if (s < pieces) {
      if (split_left) {
        cur_a = lo + left_len * s / pieces;
        cur_b = std::lower_bound(src.begin() + prev_b, src.begin() + hi,
                                 src[cur_a], cmp) -
                src.begin();
      } else {
        cur_b = mid + right_len * s / pieces;
        cur_a = std::upper_bound(src.begin() + prev_a, src.begin() + mid,
                                 src[cur_b], cmp) -
                src.begin();
      }
    }
    out.push_back(MergeSegment{prev_a, cur_a, prev_b, cur_b, dst});
    dst += (cur_a - prev_a) + (cur_b - prev_b);
    prev_a = cur_a;
    prev_b = cur_b;
  }
}

}  // namespace parallel_internal

/// Sorts `items` under `cmp` using a stable, deterministic sample sort:
///   1. split into chunks and stable-sort each chunk on the pool;
///   2. pick bucket splitters from a regular sample of the sorted chunks;
///   3. locate each chunk's bucket boundaries by binary search (chunks
///      are sorted, so every bucket is one contiguous run per chunk);
///   4. scatter runs to their bucket's output region and merge the runs
///      of each bucket in parallel.
/// Chunks are gathered in index order and every merge is stable, so the
/// result equals std::stable_sort's: equal elements keep input order, and
/// the output is a pure function of the input — identical across runs
/// and thread counts. Falls back to std::stable_sort for small inputs or
/// single-thread pools.
template <typename T, typename Cmp = std::less<T>>
void ParallelSort(ThreadPool& pool, std::vector<T>& items, Cmp cmp = Cmp()) {
  const int64_t n = static_cast<int64_t>(items.size());
  if (n < parallel_internal::kSortCutoff || pool.num_threads() <= 1) {
    std::stable_sort(items.begin(), items.end(), cmp);
    return;
  }

  const std::vector<IndexChunk> chunks = SplitIndexChunks(
      0, n, parallel_internal::kSortCutoff / 4, DefaultChunksForPool(pool));
  const int64_t num_chunks = static_cast<int64_t>(chunks.size());
  ParallelForEachChunk(pool, chunks, [&](int64_t c) {
    std::stable_sort(items.begin() + chunks[c].begin,
                     items.begin() + chunks[c].end, cmp);
  });

  // A regular sample (every chunk contributes `kOversample` evenly spaced
  // elements) is already sorted within each chunk; merging via sort is
  // cheap because the sample is tiny. Sampling works on indices so heavy
  // elements (e.g. groups holding large value vectors) are never copied.
  constexpr int64_t kOversample = 8;
  const int64_t num_buckets = num_chunks;
  std::vector<int64_t> sample;
  sample.reserve(num_chunks * kOversample);
  for (const IndexChunk& chunk : chunks) {
    for (int64_t s = 0; s < kOversample; ++s) {
      const int64_t offset = chunk.size() * (2 * s + 1) / (2 * kOversample);
      sample.push_back(chunk.begin + offset);
    }
  }
  std::sort(sample.begin(), sample.end(), [&](int64_t a, int64_t b) {
    return cmp(items[a], items[b]);
  });
  std::vector<int64_t> splitters;  // indices into `items`
  splitters.reserve(num_buckets - 1);
  for (int64_t b = 1; b < num_buckets; ++b) {
    splitters.push_back(
        sample[b * static_cast<int64_t>(sample.size()) / num_buckets]);
  }

  // run_end[c][b]: end offset (within chunk c) of the run bound for
  // bucket b. Runs are contiguous because each chunk is sorted. Splitter
  // indices stay valid here: items is not mutated again until the
  // scatter below.
  std::vector<std::vector<int64_t>> run_end(
      num_chunks, std::vector<int64_t>(num_buckets, 0));
  ParallelForEachChunk(pool, chunks, [&](int64_t c) {
    const auto chunk_begin = items.begin() + chunks[c].begin;
    const auto chunk_end = items.begin() + chunks[c].end;
    for (int64_t b = 0; b + 1 < num_buckets; ++b) {
      run_end[c][b] =
          std::lower_bound(chunk_begin, chunk_end, splitters[b],
                           [&](const T& element, int64_t splitter) {
                             return cmp(element, items[splitter]);
                           }) -
          chunk_begin;
    }
    run_end[c][num_buckets - 1] = chunks[c].size();
  });

  // Bucket output regions: bucket b holds run b of every chunk, chunks in
  // index order (this fixes the order of equal elements deterministically).
  std::vector<int64_t> bucket_begin(num_buckets + 1, 0);
  for (int64_t b = 0; b < num_buckets; ++b) {
    int64_t size = 0;
    for (int64_t c = 0; c < num_chunks; ++c) {
      const int64_t lo = b == 0 ? 0 : run_end[c][b - 1];
      size += run_end[c][b] - lo;
    }
    bucket_begin[b + 1] = bucket_begin[b] + size;
  }

  // Scatter runs to their bucket's output region, chunks in index order
  // (this fixes the order of equal elements deterministically), recording
  // the surviving (non-empty) run boundaries as global offsets.
  std::vector<T> scratch(n);
  std::vector<IndexChunk> buckets(num_buckets);
  for (int64_t b = 0; b < num_buckets; ++b) {
    buckets[b] = {bucket_begin[b], bucket_begin[b + 1]};
  }
  std::vector<std::vector<int64_t>> bounds(num_buckets);
  ParallelForEachChunk(pool, buckets, [&](int64_t b) {
    int64_t out = bucket_begin[b];
    std::vector<int64_t>& bd = bounds[b];
    bd.reserve(num_chunks + 1);
    bd.push_back(out);
    for (int64_t c = 0; c < num_chunks; ++c) {
      const int64_t lo = chunks[c].begin + (b == 0 ? 0 : run_end[c][b - 1]);
      const int64_t hi = chunks[c].begin + run_end[c][b];
      std::move(items.begin() + lo, items.begin() + hi, scratch.begin() + out);
      out += hi - lo;
      if (out != bd.back()) bd.push_back(out);
    }
  });

  // Split-point parallel bucket merge. Each pass pairs up adjacent runs
  // of every bucket and plans each pair as independent ~kMergeGrain
  // segments, which the whole pool chews through together — a bucket
  // with one giant run pair no longer serializes on a single core.
  // Passes ping-pong between two full-size buffers (std::merge segments
  // can't overlap in place), copying leftover runs so every pass's
  // output buffer holds the complete range.
  std::vector<T> aux(n);
  std::vector<T>* src = &scratch;
  std::vector<T>* dst = &aux;
  auto has_unmerged_runs = [&bounds] {
    for (const std::vector<int64_t>& bd : bounds) {
      if (bd.size() > 2) return true;
    }
    return false;
  };
  while (has_unmerged_runs()) {
    std::vector<parallel_internal::MergeSegment> segments;
    for (int64_t b = 0; b < num_buckets; ++b) {
      std::vector<int64_t>& bd = bounds[b];
      std::vector<int64_t> next;
      next.reserve(bd.size() / 2 + 2);
      next.push_back(bd[0]);
      size_t i = 0;
      for (; i + 2 < bd.size(); i += 2) {
        parallel_internal::PlanMerge(*src, bd[i], bd[i + 1], bd[i + 2], cmp,
                                     segments);
        next.push_back(bd[i + 2]);
      }
      if (i + 1 < bd.size()) {
        // Leftover run without a partner: plan it as a merge with an
        // empty right side, i.e. a parallel copy into the output buffer.
        parallel_internal::PlanMerge(*src, bd[i], bd[i + 1], bd[i + 1], cmp,
                                     segments);
        next.push_back(bd[i + 1]);
      }
      bd = std::move(next);
    }
    ParallelFor(pool, 0, static_cast<int64_t>(segments.size()), 1,
                [&](int64_t s) {
                  const parallel_internal::MergeSegment& seg = segments[s];
                  std::merge(std::make_move_iterator(src->begin() + seg.a_lo),
                             std::make_move_iterator(src->begin() + seg.a_hi),
                             std::make_move_iterator(src->begin() + seg.b_lo),
                             std::make_move_iterator(src->begin() + seg.b_hi),
                             dst->begin() + seg.out, cmp);
                });
    std::swap(src, dst);
  }
  items = std::move(*src);
}

}  // namespace ampc
