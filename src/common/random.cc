#include "common/random.h"

namespace ampc {
namespace {

inline uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four lanes via SplitMix64, per the xoshiro authors' guidance.
  uint64_t x = seed;
  for (auto& lane : s_) {
    lane = Mix64(x);
    x += 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

}  // namespace ampc
