#include "common/parallel.h"

#include <algorithm>

namespace ampc {

std::vector<IndexChunk> SplitIndexChunks(int64_t begin, int64_t end,
                                         int64_t grain, int64_t max_chunks) {
  std::vector<IndexChunk> chunks;
  if (begin >= end) return chunks;
  grain = std::max<int64_t>(1, grain);
  max_chunks = std::max<int64_t>(1, max_chunks);
  const int64_t n = end - begin;
  const int64_t chunk =
      std::max(grain, (n + max_chunks - 1) / max_chunks);
  chunks.reserve((n + chunk - 1) / chunk);
  for (int64_t lo = begin; lo < end; lo += chunk) {
    chunks.push_back({lo, std::min(end, lo + chunk)});
  }
  return chunks;
}

int64_t DefaultChunksForPool(const ThreadPool& pool) {
  // 4x the thread count: enough slack that an unlucky chunk does not
  // serialize the tail, cheap enough that chunk dispatch is noise.
  return 4 * static_cast<int64_t>(pool.num_threads());
}

void ParallelForEachChunk(ThreadPool& pool,
                          const std::vector<IndexChunk>& chunks,
                          const std::function<void(int64_t)>& fn) {
  const int64_t num_chunks = static_cast<int64_t>(chunks.size());
  if (num_chunks == 0) return;
  if (num_chunks == 1) {
    fn(0);
    return;
  }
  ParallelFor(pool, 0, num_chunks, 1, fn);
}

}  // namespace ampc
