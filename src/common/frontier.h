// The frontier engine: sparse/dense frontier representations and the
// Beamer-style direction policy that picks between them per round
// (ROADMAP item 3; the PaperWasp hybrid_bfs/bitmap/sliding_queue
// pattern adapted to the AMPC cost model).
//
// A frontier-shaped core advances a set of active vertices each
// adaptive round. Two representations:
//
//  - *Sparse* (SlidingQueue): the active vertices as an explicit work
//    list. The round costs per-vertex remote lookups through the
//    batched/pipelined read path — cheap when the frontier is small,
//    latency-bound when it covers most of the graph.
//  - *Dense* (common/bitmap.h AtomicBitmap): one bit per vertex. The
//    round broadcasts the bitmap to every machine and each machine
//    sweeps its *local* shard against it (sim::Cluster::RunPullPhase),
//    replacing per-vertex round trips with one broadcast plus one
//    aggregate exchange — cheap when the frontier is large.
//
// FrontierPolicy implements the switch: go dense when the frontier's
// out-edges exceed total_edges / alpha, back to sparse when the
// frontier shrinks below num_vertices / beta. The two thresholds plus
// the sticky current state give hysteresis — sizes inside the band
// keep the previous representation, so a frontier hovering near one
// threshold never flaps. Decisions are a pure function of the
// (size, edges) sequence, preserving the determinism contract.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ampc {

/// Which frontier representation a cluster's frontier-shaped phases
/// use. kSparse is the legacy work-list path and reproduces the
/// pre-frontier cost model bit-identically; kDense forces every
/// frontier phase through the pull model; kHybrid lets FrontierPolicy
/// choose per round.
enum class FrontierMode {
  kSparse,
  kDense,
  kHybrid,
};

/// "sparse" / "dense" / "hybrid" — stable names used by the CLI flags
/// and bench JSON.
const char* FrontierModeName(FrontierMode mode);

/// Parses a FrontierModeName back; returns false (mode untouched) on
/// an unknown name.
bool ParseFrontierMode(const std::string& name, FrontierMode* mode);

/// The sparse frontier: a queue with an explicit window. Producers
/// Push next-round vertices behind the window while consumers read the
/// current window; SlideWindow promotes everything pushed since the
/// last slide into the new window. Single-threaded by design — cores
/// collect per-chunk discoveries deterministically and push them in
/// chunk order, so the window's element order is schedule-independent.
class SlidingQueue {
 public:
  SlidingQueue() = default;
  explicit SlidingQueue(int64_t capacity_hint) {
    items_.reserve(static_cast<size_t>(capacity_hint));
  }

  /// Appends `v` to the *next* window (not visible until SlideWindow).
  void Push(int64_t v) { items_.push_back(v); }

  /// Promotes everything pushed since the previous slide into the
  /// current window.
  void SlideWindow() {
    window_begin_ = window_end_;
    window_end_ = items_.size();
  }

  /// The current window — the frontier a round consumes.
  std::span<const int64_t> Window() const {
    return std::span<const int64_t>(items_.data() + window_begin_,
                                    window_end_ - window_begin_);
  }

  int64_t WindowSize() const {
    return static_cast<int64_t>(window_end_ - window_begin_);
  }
  bool WindowEmpty() const { return window_end_ == window_begin_; }

  /// Items pushed since the last slide (the next window's size so far).
  int64_t PendingSize() const {
    return static_cast<int64_t>(items_.size() - window_end_);
  }

  /// Total items ever pushed (all windows).
  int64_t TotalPushed() const { return static_cast<int64_t>(items_.size()); }

  void Reset() {
    items_.clear();
    window_begin_ = 0;
    window_end_ = 0;
  }

 private:
  std::vector<int64_t> items_;
  size_t window_begin_ = 0;
  size_t window_end_ = 0;
};

/// Per-phase direction selector. Construct once per frontier-shaped
/// phase (so the sticky state carries across that phase's rounds) with
/// the graph's vertex and directed-edge totals, then ask UseDense once
/// per round with the current frontier's size and out-edge count.
class FrontierPolicy {
 public:
  /// Beamer's growing-frontier threshold: dense when
  /// frontier_edges > total_edges / alpha.
  static constexpr double kDefaultAlpha = 15.0;
  /// Beamer's shrinking-frontier threshold: back to sparse when
  /// frontier_size < num_vertices / beta.
  static constexpr double kDefaultBeta = 18.0;

  FrontierPolicy(FrontierMode mode, double alpha, double beta,
                 int64_t num_vertices, int64_t total_edges)
      : mode_(mode),
        alpha_(alpha > 0 ? alpha : kDefaultAlpha),
        beta_(beta > 0 ? beta : kDefaultBeta),
        num_vertices_(num_vertices),
        total_edges_(total_edges),
        dense_(mode == FrontierMode::kDense) {}

  /// Picks this round's representation and updates the sticky state.
  bool UseDense(int64_t frontier_size, int64_t frontier_edges);

  /// The representation the last UseDense call chose.
  bool dense() const { return dense_; }

  FrontierMode mode() const { return mode_; }

 private:
  FrontierMode mode_;
  double alpha_;
  double beta_;
  int64_t num_vertices_;
  int64_t total_edges_;
  bool dense_;
};

}  // namespace ampc
