// A fixed-size thread pool plus ParallelFor. Used by the AMPC/MPC runtimes
// to execute logical machines' work on physical cores.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ampc {

/// Fixed-size worker pool. Tasks are arbitrary std::function<void()>;
/// Wait() blocks until every scheduled task has finished.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Schedule(std::function<void()> task);

  /// Blocks until all scheduled tasks have completed.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// A process-wide pool sized to the hardware concurrency.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int64_t outstanding_ = 0;  // queued + running tasks
  bool shutdown_ = false;
};

/// Runs fn(i) for i in [begin, end) on `pool`, splitting the range into
/// chunks of at least `grain` indices. Blocks until complete. Safe to call
/// with begin >= end (no-op). Must not be called from inside a pool task
/// of the same pool (it would deadlock on Wait).
void ParallelFor(ThreadPool& pool, int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t)>& fn);

/// Runs fn(chunk_begin, chunk_end) over disjoint chunks covering
/// [begin, end). Lower overhead than per-index dispatch.
void ParallelForChunked(ThreadPool& pool, int64_t begin, int64_t end,
                        int64_t grain,
                        const std::function<void(int64_t, int64_t)>& fn);

}  // namespace ampc
