#include "common/metrics.h"

#include <cmath>
#include <sstream>

namespace ampc {

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    auto it = earlier.counters.find(name);
    out.counters[name] = value - (it == earlier.counters.end() ? 0 : it->second);
  }
  for (const auto& [name, value] : timers_sec) {
    auto it = earlier.timers_sec.find(name);
    out.timers_sec[name] =
        value - (it == earlier.timers_sec.end() ? 0.0 : it->second);
  }
  return out;
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    os << name << "=" << value << " ";
  }
  for (const auto& [name, value] : timers_sec) {
    os << name << "=" << value << "s ";
  }
  return os.str();
}

Metrics::Cell* Metrics::GetCell(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = counters_[name];
  if (!cell) cell = std::make_unique<Cell>();
  return cell.get();
}

Metrics::TimeCell* Metrics::GetTimeCell(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& cell = timers_[name];
  if (!cell) cell = std::make_unique<TimeCell>();
  return cell.get();
}

void Metrics::Add(const std::string& name, int64_t delta) {
  GetCell(name)->value.fetch_add(delta, std::memory_order_relaxed);
}

int64_t Metrics::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) return 0;
  return it->second->value.load(std::memory_order_relaxed);
}

void Metrics::AddTime(const std::string& phase, double seconds) {
  GetTimeCell(phase)->nanos.fetch_add(
      static_cast<int64_t>(std::llround(seconds * 1e9)),
      std::memory_order_relaxed);
}

double Metrics::GetTime(const std::string& phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(phase);
  if (it == timers_.end()) return 0.0;
  return static_cast<double>(it->second->nanos.load(std::memory_order_relaxed)) *
         1e-9;
}

MetricsSnapshot Metrics::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, cell] : counters_) {
    snap.counters[name] = cell->value.load(std::memory_order_relaxed);
  }
  for (const auto& [name, cell] : timers_) {
    snap.timers_sec[name] =
        static_cast<double>(cell->nanos.load(std::memory_order_relaxed)) * 1e-9;
  }
  return snap;
}

MetricsSnapshot Metrics::DeltaSince(const MetricsSnapshot& earlier) const {
  return Snapshot().Delta(earlier);
}

void Metrics::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, cell] : counters_) {
    cell->value.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : timers_) {
    cell->nanos.store(0, std::memory_order_relaxed);
  }
}

}  // namespace ampc
