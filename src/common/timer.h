// Wall-clock timing helpers.
#pragma once

#include <chrono>

namespace ampc {

/// Measures elapsed wall-clock time from construction or the last Reset().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction/Reset.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ampc
