// Status and StatusOr: exception-free error propagation across public API
// boundaries, following the RocksDB/Arrow idiom. Algorithm-internal code
// uses CHECK macros from common/logging.h for invariant violations.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace ampc {

/// Error categories used across the library.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kResourceExhausted = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIoError = 8,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. An OK status carries no
/// allocation; error statuses carry a code and message.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Holds either a value of type T or an error Status. Accessing the value
/// of an errored StatusOr aborts (CHECK failure semantics).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnBadStatusAccess(const Status& status);
}  // namespace internal

template <typename T>
void StatusOr<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadStatusAccess(status_);
}

/// Propagates an error Status from an expression to the caller.
#define AMPC_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::ampc::Status _ampc_status = (expr);          \
    if (!_ampc_status.ok()) return _ampc_status;   \
  } while (false)

}  // namespace ampc
