// Minimal logging and CHECK macros. CHECK failures abort; they signal
// library invariant violations (programmer error), never bad user input —
// user input errors surface as Status.
#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace ampc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is actually emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

// Voidifies a log stream so it can appear in a ternary expression.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace ampc

#define AMPC_LOG(level)                                                    \
  ::ampc::internal::LogMessage(::ampc::LogLevel::k##level, __FILE__,       \
                               __LINE__)                                   \
      .stream()

#define AMPC_CHECK(cond)                                                   \
  (cond) ? (void)0                                                         \
         : ::ampc::internal::LogVoidify() &                                \
               ::ampc::internal::LogMessage(::ampc::LogLevel::kError,      \
                                            __FILE__, __LINE__, true)      \
                   .stream()                                               \
               << "CHECK failed: " #cond " "

#define AMPC_CHECK_EQ(a, b) AMPC_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define AMPC_CHECK_NE(a, b) AMPC_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define AMPC_CHECK_LT(a, b) AMPC_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define AMPC_CHECK_LE(a, b) AMPC_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define AMPC_CHECK_GT(a, b) AMPC_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define AMPC_CHECK_GE(a, b) AMPC_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#define AMPC_CHECK_OK(expr)                              \
  do {                                                   \
    ::ampc::Status _s = (expr);                          \
    AMPC_CHECK(_s.ok()) << _s.ToString();                \
  } while (false)
