// Metric accounting shared by the AMPC and MPC runtimes.
//
// The paper's evaluation reports model-level quantities — shuffles
// (Table 3), bytes shuffled (Fig. 3), KV-store communication (Figs 3, 9),
// per-phase times (Figs 5-7) — so every runtime operation credits one of
// these counters. Counters are atomic: logical machines run concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ampc {

/// Snapshot of all counters at a point in time; subtractable for deltas.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> timers_sec;

  MetricsSnapshot Delta(const MetricsSnapshot& earlier) const;
  std::string ToString() const;
};

/// A registry of named atomic counters and accumulating phase timers.
///
/// Canonical counter names used across the library:
///   "shuffles"            number of shuffle phases (costly rounds)
///   "shuffle_bytes"       total bytes moved through shuffles
///   "rounds"              total AMPC rounds (shuffles + map-only rounds)
///   "kv_reads"            KV-store lookup operations
///   "kv_read_bytes"       bytes returned by KV lookups
///   "kv_writes"           KV-store write operations
///   "kv_write_bytes"      bytes written to the KV store
///   "cache_hits"/"cache_misses"  per-machine query-cache behaviour
///   "kv_lookup_trips"     latency-bearing round trips (after batching
///                         and pipeline overlap)
///   "kv_peak_inflight_keys"  watermark: most keys any worker held in
///                         flight at once (pipelining memory cost)
///   "machines_lost"       injected machine failures absorbed so far
///   "domains_lost"        correlated domain (rack) failures absorbed —
///                         each counts once however many machines it
///                         takes down
///   "machines_drained"    machines proactively drained on a failure
///                         warning before their kill landed
///   "shards_migrated"/"kv_migration_bytes"  shards moved off drained
///                         machines and the primary bytes re-streamed
///   "replica_wipeouts"    shards whose every replica died in one
///                         correlated kill (recovery falls back to
///                         checkpoint/restart)
///   "kv_slow_trips"       lookup trips that landed on a straggling
///                         destination machine
///   "kv_hedged_trips"/"kv_hedge_wins"  straggler trips re-issued to a
///                         replica, and those the replica answered first
///   "kv_replication_bytes"  follower-copy bytes charged by replicated
///                         KV writes (replication > 1)
///   "checkpoints"/"checkpoint_bytes"  periodic shard checkpoints taken
///                         and the byte deltas they persisted
///   "frontier_dense_rounds"/"frontier_sparse_rounds"  frontier-shaped
///                         rounds by representation (pull vs push; only
///                         counted when ClusterConfig::frontier.mode is
///                         not kSparse)
///   "frontier_broadcast_bytes"  frontier-bitmap bytes broadcast by
///                         pull rounds (steps x ceil(key_space/8))
///   "frontier_exchange_bytes"  record bytes moved by pull rounds'
///                         aggregate exchanges (the pull-side analogue
///                         of per-lookup read bytes)
/// Fault-model timers: "sim:recovery" (total recovery time charged),
/// "recovery_replay_seconds" (its replay component, excluding replica
/// streams and checkpoint restores), "sim:checkpoint" (checkpoint
/// rounds), "sim:drain" (live shard migration off warned machines).
class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  /// Adds `delta` to counter `name` (creating it at 0 if absent).
  void Add(const std::string& name, int64_t delta);

  /// Current value of a counter (0 if never touched).
  int64_t Get(const std::string& name) const;

  /// Accumulates wall/simulated seconds into a named phase timer.
  void AddTime(const std::string& phase, double seconds);

  double GetTime(const std::string& phase) const;

  /// Atomically reads every counter and timer.
  MetricsSnapshot Snapshot() const;

  /// The change since `earlier` (a snapshot taken from this registry):
  /// Snapshot().Delta(earlier) as one call. The first-class way to read
  /// per-phase telemetry — the AutoTuner's round signals and the
  /// benches' per-variant deltas both consume this instead of diffing
  /// raw counters by hand.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;

  /// Zeroes all counters and timers.
  void Reset();

 private:
  struct Cell {
    std::atomic<int64_t> value{0};
  };
  struct TimeCell {
    std::atomic<int64_t> nanos{0};
  };

  Cell* GetCell(const std::string& name);
  TimeCell* GetTimeCell(const std::string& name);

  mutable std::mutex mu_;
  // Pointers are stable after insertion; hot paths hold a Cell*.
  std::map<std::string, std::unique_ptr<Cell>> counters_;
  std::map<std::string, std::unique_ptr<TimeCell>> timers_;
};

}  // namespace ampc
