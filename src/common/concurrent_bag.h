// A concurrent append-only collection: tasks accumulate into local
// vectors and merge them in one lock acquisition.
#pragma once

#include <mutex>
#include <utility>
#include <vector>

namespace ampc {

template <typename T>
class ConcurrentBag {
 public:
  /// Moves the contents of `chunk` into the bag.
  void Merge(std::vector<T>&& chunk) {
    if (chunk.empty()) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      items_ = std::move(chunk);
    } else {
      items_.insert(items_.end(), std::make_move_iterator(chunk.begin()),
                    std::make_move_iterator(chunk.end()));
    }
  }

  void Push(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    items_.push_back(std::move(item));
  }

  /// Takes all accumulated items (bag becomes empty).
  std::vector<T> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::exchange(items_, {});
  }

  int64_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(items_.size());
  }

 private:
  mutable std::mutex mu_;
  std::vector<T> items_;
};

}  // namespace ampc
